package orion_test

import (
	"testing"

	"orion/internal/fleet"
)

// benchFleetSpec is the golden 1k-device heterogeneous topology: 2
// zones × 4 racks × 16 nodes × 8 GPUs with an a100/v100/mig2g mix.
const benchFleetSpec = "zones=2,racks=4,nodes=16,gpus=8,mix=a100:1+v100:2+mig2g:1,seed=7"

// BenchmarkFleetPlacement measures the placement pipeline's decision
// rate on a 1k-device fleet: filter → score → bind for a synthetic
// 2k-job stream. The headline decisions/s metric carries an absolute
// floor in the CI gate (`make bench-compare` passes
// -floor 'FleetPlacement:decisions/s:10000').
func BenchmarkFleetPlacement(b *testing.B) {
	topo, err := fleet.ParseSpec(benchFleetSpec)
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := fleet.SyntheticStream(2000, 42)
	if err != nil {
		b.Fatal(err)
	}

	var placed int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The fleet mutates as jobs bind, so each iteration places onto a
		// fresh build; construction stays outside the timed region.
		b.StopTimer()
		f, err := topo.Build()
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		ps, _, err := f.PlaceBatch(jobs)
		if err != nil {
			b.Fatal(err)
		}
		placed = len(ps)
	}
	b.StopTimer()
	if placed == 0 {
		b.Fatal("no jobs placed")
	}
	b.ReportMetric(float64(b.N*len(jobs))/b.Elapsed().Seconds(), "decisions/s")
	b.ReportMetric(float64(placed), "jobs-placed")
}
