package orion_test

import (
	"testing"

	"orion/internal/fleet"
)

// benchFleetSpec is the golden 1k-device heterogeneous topology: 2
// zones × 4 racks × 16 nodes × 8 GPUs with an a100/v100/mig2g mix.
const benchFleetSpec = "zones=2,racks=4,nodes=16,gpus=8,mix=a100:1+v100:2+mig2g:1,seed=7"

// BenchmarkFleetPlacement measures the placement pipeline's decision
// rate on a 1k-device fleet: filter → score → bind for a synthetic
// 2k-job stream. The headline decisions/s metric carries an absolute
// floor in the CI gate (`make bench-compare` passes
// -floor 'FleetPlacement:decisions/s:10000').
func BenchmarkFleetPlacement(b *testing.B) {
	topo, err := fleet.ParseSpec(benchFleetSpec)
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := fleet.SyntheticStream(2000, 42)
	if err != nil {
		b.Fatal(err)
	}

	var placed int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The fleet mutates as jobs bind, so each iteration places onto a
		// fresh build; construction stays outside the timed region.
		b.StopTimer()
		f, err := topo.Build()
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		ps, _, err := f.PlaceBatch(jobs)
		if err != nil {
			b.Fatal(err)
		}
		placed = len(ps)
	}
	b.StopTimer()
	if placed == 0 {
		b.Fatal("no jobs placed")
	}
	b.ReportMetric(float64(b.N*len(jobs))/b.Elapsed().Seconds(), "decisions/s")
	b.ReportMetric(float64(placed), "jobs-placed")
}

// BenchmarkFleetReplacement measures the failure-recovery path on the
// same 1k-device fleet: take a whole rack Down (displacing its
// residents) and re-place the displaced jobs through the scored
// pipeline. Each iteration fails a different rack and heals it
// afterwards, so capacity stays available across iterations. The
// headline replaced/s metric carries an absolute floor in the CI gate
// (`make bench-compare` passes -floor 'FleetReplacement:replaced/s:2000').
func BenchmarkFleetReplacement(b *testing.B) {
	topo, err := fleet.ParseSpec(benchFleetSpec)
	if err != nil {
		b.Fatal(err)
	}
	f, err := topo.Build()
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := fleet.SyntheticStream(2000, 42)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := f.PlaceBatch(jobs); err != nil {
		b.Fatal(err)
	}

	// Group device indexes by rack once, outside the timed region.
	racks := map[[2]int][]int{}
	var rackKeys [][2]int
	for _, d := range f.Devices() {
		k := [2]int{d.Zone, d.Rack}
		if racks[k] == nil {
			rackKeys = append(rackKeys, k)
		}
		racks[k] = append(racks[k], d.Index)
	}

	var tick int64
	var replaced, displaced int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		devs := racks[rackKeys[i%len(rackKeys)]]
		tick++
		var pending []fleet.JobSpec
		for _, idx := range devs {
			specs, err := f.ApplyHealth(idx, fleet.HealthDown, tick)
			if err != nil {
				b.Fatal(err)
			}
			pending = append(pending, specs...)
		}
		displaced += len(pending)
		for _, spec := range pending {
			if _, err := f.Place(spec); err == nil {
				replaced++
			}
		}
		b.StopTimer()
		// Heal the rack so the next iteration has full capacity; the
		// repair is recovery bookkeeping, not the measured path.
		tick++
		for _, idx := range devs {
			if _, err := f.ApplyHealth(idx, fleet.HealthHealthy, tick); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
	b.StopTimer()
	if displaced == 0 {
		b.Fatal("rack failure displaced nothing; the initial placement or topology is broken")
	}
	b.ReportMetric(float64(replaced)/b.Elapsed().Seconds(), "replaced/s")
	b.ReportMetric(float64(displaced)/float64(b.N), "displaced/op")
}
