//go:build chaos

package orion_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"orion/internal/client"
	"orion/internal/harness"
	"orion/internal/server"
	"orion/internal/sim"
)

// TestChaosCrashRecovery is the end-to-end crash drill against a real
// orion-serve process: submit a fleet of experiments, SIGKILL the daemon
// at randomized points, restart it against the same journal directory,
// and repeat. The invariants checked at the end:
//
//   - no acknowledged job is lost across any number of kills;
//   - idempotent resubmission never creates a duplicate (exactly one job
//     per key, no job runs twice to a different answer);
//   - every recovered summary is bit-identical to the summary an
//     uninterrupted in-process run of the same config produces.
//
// Build-tagged `chaos` (run via `make chaos`): it SIGKILLs real
// processes and takes tens of seconds, so it stays out of `make test`.
// On failure the journal directory is copied to $CHAOS_ARTIFACT_DIR (if
// set) for postmortem.
func TestChaosCrashRecovery(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	work := t.TempDir()
	journalDir := filepath.Join(work, "journal")
	logPath := filepath.Join(work, "orion-serve.log")
	defer func() {
		if t.Failed() {
			saveArtifacts(t, journalDir, logPath)
		}
	}()

	bin := filepath.Join(work, "orion-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/orion-serve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build orion-serve: %v\n%s", err, out)
	}

	// The victim fleet: every scheme, distinct seeds, short horizons so
	// several jobs complete (and several are mid-flight) at kill time.
	var cfgs []harness.Config
	for i, scheme := range []harness.Scheme{
		harness.Orion, harness.Reef, harness.Streams,
		harness.Orion, harness.Reef, harness.Streams,
	} {
		cfgs = append(cfgs, harness.Config{
			Scheme:  scheme,
			Horizon: 2 * sim.Second,
			Warmup:  500 * sim.Millisecond,
			Seed:    int64(100 + i),
			Jobs: []harness.JobConfig{
				{Workload: "resnet50-inf", Priority: "hp", Arrival: "poisson", RPS: 40},
				{Workload: "mobilenetv2-train", Priority: "be"},
			},
			DefaultFaults: true,
			FaultSeed:     int64(7 + i),
		})
	}

	// Control answers: uninterrupted in-process runs of the same configs.
	controls := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		res, err := harness.RunWire(context.Background(), cfg)
		if err != nil {
			t.Fatalf("control run %d: %v", i, err)
		}
		b, err := json.Marshal(harness.Summarize(res))
		if err != nil {
			t.Fatal(err)
		}
		controls[i] = string(b)
	}

	addr := freeAddr(t)
	base := "http://" + addr
	c := client.New(base, client.Options{
		Timeout:     5 * time.Second,
		MaxAttempts: 8,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
	})
	rng := rand.New(rand.NewSource(1)) // fixed seed: reproducible kill schedule

	start := func() *exec.Cmd {
		logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin,
			"-addr", addr,
			"-journal-dir", journalDir,
			"-workers", "2",
			"-queue", "32",
			"-drain-timeout", "60s",
		)
		cmd.Stdout = logf
		cmd.Stderr = logf
		if err := cmd.Start(); err != nil {
			t.Fatalf("start orion-serve: %v", err)
		}
		logf.Close() // the child holds its own descriptor
		waitReady(t, base)
		return cmd
	}

	// submitAll (re)submits every config under its stable idempotency
	// key. Rounds after a kill re-send everything: acknowledged jobs
	// deduplicate, unacknowledged ones get their one real admission.
	submitAll := func() {
		for i, cfg := range cfgs {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_, err := c.Submit(ctx, cfg, fmt.Sprintf("chaos-%d", i))
			cancel()
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
		}
	}

	const kills = 4
	cmd := start()
	for round := 0; round < kills; round++ {
		submitAll()
		// Let the daemon make some progress — sometimes none (kill while
		// everything is queued), sometimes plenty (kill after several
		// completions).
		time.Sleep(time.Duration(30+rng.Intn(400)) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatalf("round %d: SIGKILL: %v", round, err)
		}
		_ = cmd.Wait()
		cmd = start()
	}

	// Final incarnation: resubmit (idempotent), then wait everything out.
	submitAll()
	for i := range cfgs {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		st, err := c.Submit(ctx, cfgs[i], fmt.Sprintf("chaos-%d", i))
		if err != nil {
			cancel()
			t.Fatalf("final lookup %d: %v", i, err)
		}
		final, err := c.Await(ctx, st.ID, 100*time.Millisecond)
		cancel()
		if err != nil {
			t.Fatalf("await %d (%s): %v", i, st.ID, err)
		}
		if final.State != server.StateDone {
			t.Fatalf("job %d (%s): state %q (%s)", i, st.ID, final.State, final.Error)
		}
		got, err := json.Marshal(final.Result)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != controls[i] {
			t.Errorf("job %d (%s, recovered=%v restarts=%d): summary diverged after crashes:\n got %s\nwant %s",
				i, st.ID, final.Recovered, final.RestartCount, got, controls[i])
		}
	}

	// Exactly one job per key: kills and resubmissions created no
	// duplicates and lost no acknowledged work.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	jobs, err := c.List(ctx)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(cfgs) {
		b, _ := json.Marshal(jobs)
		t.Errorf("job table holds %d jobs after %d kills, want %d: %s", len(jobs), kills, len(cfgs), b)
	}

	// Graceful exit for the last incarnation.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	waitExit(t, cmd, 60*time.Second)
}

// freeAddr, waitReady, waitExit and saveArtifacts live in
// drill_helpers_test.go, shared with the torture drill.
