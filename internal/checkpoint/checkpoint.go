// Package checkpoint serializes the state of an in-flight simulation so
// orion-serve can resume a killed job without re-executing it from event
// zero. A checkpoint is NOT a process image: event callbacks are Go
// closures and cannot cross a process boundary. Instead it is a replay
// cursor plus a verifiable fingerprint:
//
//   - Meta pins the run's identity — the canonical wire config, the seed,
//     the event cursor (events processed at capture, always a multiple of
//     sim.InterruptStride) and the virtual clock;
//   - Sections carry one deterministic binary snapshot per stateful
//     component (engine, devices, drivers, scheduler policy), encoded
//     with Encoder.
//
// Restore rebuilds the simulation from the config and deterministically
// re-executes events up to the cursor — far cheaper than a full run for
// long horizons killed near the end, and the only faithful way to rebuild
// closure-holding state. The replayed components are then re-snapshotted
// and byte-compared against the stored sections (Diff): any divergence
// fails the restore instead of silently continuing from wrong state.
//
// On disk a checkpoint reuses internal/journal's length+CRC framing: one
// frame of meta JSON followed by one frame per section. Files are written
// to a temp name and renamed, so a torn checkpoint never appears under
// the final path; Read treats any framing damage as fatal (a partial
// checkpoint is useless, unlike a journal tail).
package checkpoint

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"path/filepath"

	"orion/internal/errfs"
	"orion/internal/journal"
)

// FormatVersion guards against reading checkpoints written by an older
// incompatible layout.
const FormatVersion = 1

// Meta identifies the run a checkpoint belongs to and where in the event
// stream it was captured.
type Meta struct {
	FormatVersion int `json:"format_version"`
	// Scheme and Seed are informational (they also live inside Config).
	Scheme string `json:"scheme,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	// Cursor is Engine.Processed() at capture — the number of events a
	// restore must replay. It is always a multiple of sim.InterruptStride.
	Cursor uint64 `json:"cursor"`
	// Clock is the virtual time at capture, in sim.Duration units.
	Clock int64 `json:"clock"`
	// Config is the canonical wire config the run was built from. A
	// restore must rebuild from these exact bytes.
	Config json.RawMessage `json:"config,omitempty"`
}

// Section is one component's snapshot.
type Section struct {
	Name string
	Data []byte
}

// Checkpoint is a captured simulation state.
type Checkpoint struct {
	Meta     Meta
	Sections []Section
}

// Section returns the named section's bytes.
func (c *Checkpoint) Section(name string) ([]byte, bool) {
	for _, s := range c.Sections {
		if s.Name == name {
			return s.Data, true
		}
	}
	return nil, false
}

// SizeBytes reports the encoded size of the checkpoint (what Write will
// produce), for the checkpoint_bytes metric.
func (c *Checkpoint) SizeBytes() int {
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		return 0
	}
	return buf.Len()
}

// Diff compares a stored checkpoint against one captured after replaying
// to the same cursor. It returns nil when they are byte-identical, and a
// descriptive error naming the first divergent section otherwise — the
// signal that determinism was broken (config drift, code change, cosmic
// ray) and the checkpoint must be discarded.
func Diff(stored, replayed *Checkpoint) error {
	if stored.Meta.Cursor != replayed.Meta.Cursor {
		return fmt.Errorf("checkpoint: cursor mismatch: stored %d, replayed %d",
			stored.Meta.Cursor, replayed.Meta.Cursor)
	}
	if stored.Meta.Clock != replayed.Meta.Clock {
		return fmt.Errorf("checkpoint: clock mismatch: stored %d, replayed %d",
			stored.Meta.Clock, replayed.Meta.Clock)
	}
	if len(stored.Sections) != len(replayed.Sections) {
		return fmt.Errorf("checkpoint: section count mismatch: stored %d, replayed %d",
			len(stored.Sections), len(replayed.Sections))
	}
	for i, s := range stored.Sections {
		r := replayed.Sections[i]
		if s.Name != r.Name {
			return fmt.Errorf("checkpoint: section %d name mismatch: stored %q, replayed %q", i, s.Name, r.Name)
		}
		if !bytes.Equal(s.Data, r.Data) {
			return fmt.Errorf("checkpoint: section %q diverged after replay (%d vs %d bytes)",
				s.Name, len(s.Data), len(r.Data))
		}
	}
	return nil
}

// sectionWire is the JSON payload of one section frame; binary snapshot
// bytes travel base64-encoded so every frame payload stays JSON, exactly
// like journal records.
type sectionWire struct {
	Name string `json:"name"`
	Data string `json:"data"`
}

// Write serializes the checkpoint: a meta frame followed by one frame per
// section, all in journal framing.
func Write(w io.Writer, c *Checkpoint) error {
	meta := c.Meta
	meta.FormatVersion = FormatVersion
	payload, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal meta: %w", err)
	}
	if _, err := w.Write(journal.EncodeFrame(payload)); err != nil {
		return fmt.Errorf("checkpoint: write meta: %w", err)
	}
	for _, s := range c.Sections {
		payload, err := json.Marshal(sectionWire{
			Name: s.Name,
			Data: base64.StdEncoding.EncodeToString(s.Data),
		})
		if err != nil {
			return fmt.Errorf("checkpoint: marshal section %q: %w", s.Name, err)
		}
		if _, err := w.Write(journal.EncodeFrame(payload)); err != nil {
			return fmt.Errorf("checkpoint: write section %q: %w", s.Name, err)
		}
	}
	return nil
}

// Read parses a checkpoint. Unlike journal replay, any torn or corrupt
// frame is fatal: a partial checkpoint cannot be restored from.
func Read(r io.Reader) (*Checkpoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	payload, n, ok := journal.DecodeFrame(data)
	if !ok {
		return nil, fmt.Errorf("checkpoint: corrupt meta frame")
	}
	c := &Checkpoint{}
	if err := json.Unmarshal(payload, &c.Meta); err != nil {
		return nil, fmt.Errorf("checkpoint: decode meta: %w", err)
	}
	if c.Meta.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("checkpoint: format version %d, want %d", c.Meta.FormatVersion, FormatVersion)
	}
	off := n
	for off < len(data) {
		payload, n, ok := journal.DecodeFrame(data[off:])
		if !ok {
			return nil, fmt.Errorf("checkpoint: corrupt section frame at offset %d", off)
		}
		var sw sectionWire
		if err := json.Unmarshal(payload, &sw); err != nil {
			return nil, fmt.Errorf("checkpoint: decode section at offset %d: %w", off, err)
		}
		raw, err := base64.StdEncoding.DecodeString(sw.Data)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: decode section %q data: %w", sw.Name, err)
		}
		c.Sections = append(c.Sections, Section{Name: sw.Name, Data: raw})
		off += n
	}
	return c, nil
}

// WriteFile atomically persists the checkpoint over the real filesystem.
func WriteFile(path string, c *Checkpoint) error {
	return WriteFileFS(errfs.OS{}, path, c)
}

// WriteFileFS atomically persists the checkpoint through fsys: write to
// a temp file in the same directory, fsync, rename over the final path,
// fsync the directory. A crash at any point leaves either the previous
// checkpoint or the new one, never a torn file under the final name. A
// failed fsync is never retried on the same descriptor — the temp file
// is discarded and the whole write reports failure (the caller's next
// checkpoint stride produces a fresh file).
func WriteFileFS(fsys errfs.FS, path string, c *Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer fsys.Remove(tmp.Name())
	if err := Write(tmp, c); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}

// ReadFile loads a checkpoint written by WriteFile.
func ReadFile(path string) (*Checkpoint, error) {
	return ReadFileFS(errfs.OS{}, path)
}

// ReadFileFS loads a checkpoint through fsys.
func ReadFileFS(fsys errfs.FS, path string) (*Checkpoint, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Read(bytes.NewReader(data))
}

// Quarantine moves a damaged checkpoint aside to path+".bad" so it stops
// shadowing recovery but stays available for post-mortem. It returns the
// quarantine path. An already-present .bad file is overwritten — the
// newest corpse is the interesting one.
func Quarantine(fsys errfs.FS, path string) (string, error) {
	bad := path + ".bad"
	if err := fsys.Rename(path, bad); err != nil {
		return bad, fmt.Errorf("checkpoint: quarantine: %w", err)
	}
	return bad, nil
}

// --- deterministic binary encoding ------------------------------------------

// Encoder builds a component snapshot: a flat, deterministic byte string.
// Components append their logical state field by field in a fixed order;
// equality of the resulting bytes across a replay is the verification
// Restore relies on. Pool and capacity state (free lists, warm slices)
// must never be encoded — arena reuse varies it without affecting
// behaviour.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded snapshot.
func (e *Encoder) Bytes() []byte { return e.buf }

// U64 appends an unsigned 64-bit value.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// I64 appends a signed 64-bit value.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool appends a boolean.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64 appends a float64 bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Snapshotter is implemented by every stateful simulation component that
// participates in checkpoint verification. SnapshotTo must append only
// logical state that is a pure function of (config, events processed) —
// deterministic across a replay — in a fixed field order. Section names
// are assigned by the harness (components may be indexed, e.g. one
// section per device).
type Snapshotter interface {
	// SnapshotTo appends the component's state to the encoder.
	SnapshotTo(e *Encoder)
}
