package checkpoint

// Storage-fault torture for checkpoint files: every fault site in the
// temp-write → fsync → rename → dir-sync pipeline is injected via errfs,
// and the invariant checked afterwards is atomicity — the final path
// holds either the previous intact checkpoint or the new one, never a
// torn file, no matter which step failed.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"orion/internal/errfs"
)

// writeUnderFault writes sample() through an injector armed by arm, then
// reports (writeErr, finalReadable, finalIsNew).
func writeUnderFault(t *testing.T, arm func(*errfs.Injector)) (err error, readable, isNew bool) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt-exp-1.ck")

	// Seed a valid "previous" checkpoint so overwrite faults have
	// something to clobber.
	prev := sample()
	prev.Meta.Cursor = 111
	if err := WriteFile(path, prev); err != nil {
		t.Fatal(err)
	}

	inj := errfs.New(errfs.OS{}, 1)
	arm(inj)
	next := sample()
	next.Meta.Cursor = 222
	werr := WriteFileFS(inj, path, next)
	if werr != nil && inj.Faults() == 0 {
		t.Fatalf("write failed without the fault firing: %v", werr)
	}

	got, rerr := ReadFile(path)
	if rerr != nil {
		return werr, false, false
	}
	return werr, true, got.Meta.Cursor == 222
}

func TestTortureCheckpointWriteFaultMatrix(t *testing.T) {
	cases := []struct {
		name string
		arm  func(*errfs.Injector)
	}{
		{"temp-create-fails", func(i *errfs.Injector) {
			i.AddRule(errfs.Rule{Op: errfs.OpOpen, Path: ".ckpt-*", Effect: errfs.EffectErr})
		}},
		{"write-fails", func(i *errfs.Injector) {
			i.AddRule(errfs.Rule{Op: errfs.OpWrite, Path: ".ckpt-*", Nth: 1, Effect: errfs.EffectErr})
		}},
		{"torn-write", func(i *errfs.Injector) {
			i.AddRule(errfs.Rule{Op: errfs.OpWrite, Path: ".ckpt-*", Nth: 2, Effect: errfs.EffectShortWrite, TearAt: 5})
		}},
		{"sync-loss", func(i *errfs.Injector) {
			i.AddRule(errfs.Rule{Op: errfs.OpSync, Path: ".ckpt-*", Nth: 1, Effect: errfs.EffectSyncLoss})
		}},
		{"rename-fails", func(i *errfs.Injector) {
			i.AddRule(errfs.Rule{Op: errfs.OpRename, Path: ".ckpt-*", Nth: 1, Effect: errfs.EffectErr})
		}},
		{"enospc", func(i *errfs.Injector) {
			i.SetWriteBudget(16, 0)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err, readable, isNew := writeUnderFault(t, tc.arm)
			if err == nil {
				t.Fatal("checkpoint write succeeded despite the injected fault")
			}
			if !readable {
				t.Fatal("final path unreadable after failed write: atomicity broken")
			}
			if isNew {
				t.Fatal("failed write left the NEW checkpoint visible")
			}
		})
	}
	// Control: dir-sync failure after the rename. The new checkpoint may
	// legitimately be visible (rename already happened) — the caller just
	// cannot count on it surviving a power cut, which is why the error
	// still propagates.
	t.Run("dir-sync-fails", func(t *testing.T) {
		err, readable, _ := writeUnderFault(t, func(i *errfs.Injector) {
			i.AddRule(errfs.Rule{Op: errfs.OpSyncDir, Nth: 1, Effect: errfs.EffectErr})
		})
		if err == nil {
			t.Fatal("dir-sync failure not surfaced")
		}
		if !readable {
			t.Fatal("final path unreadable after dir-sync failure")
		}
	})
}

// TestTortureWriteFaultLeavesNoTempDebris: failed writes must not
// accumulate .ckpt-* temp files.
func TestTortureWriteFaultLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt-exp-1.ck")
	inj := errfs.New(errfs.OS{}, 1)
	inj.AddRule(errfs.Rule{Op: errfs.OpSync, Path: ".ckpt-*", Nth: 0, Effect: errfs.EffectSyncLoss})
	for k := 0; k < 5; k++ {
		if err := WriteFileFS(inj, path, sample()); err == nil {
			t.Fatal("write over failing sync was acked")
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("temp debris left behind: %v", ents)
	}
}

// TestQuarantine: a corrupt checkpoint moves to path+".bad", the
// original path is freed, and the corpse keeps the damaged bytes.
func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt-exp-1.ck")
	if err := os.WriteFile(path, []byte("damaged"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad, err := Quarantine(errfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if bad != path+".bad" {
		t.Fatalf("quarantine path = %q", bad)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("original path still occupied after quarantine")
	}
	corpse, err := os.ReadFile(bad)
	if err != nil || string(corpse) != "damaged" {
		t.Fatalf("corpse = %q, %v", corpse, err)
	}
	// A second quarantine of a fresh corpse overwrites the old one.
	if err := os.WriteFile(path, []byte("damaged2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Quarantine(errfs.OS{}, path); err != nil {
		t.Fatal(err)
	}
	corpse, _ = os.ReadFile(bad)
	if string(corpse) != "damaged2" {
		t.Fatalf("second quarantine kept the stale corpse: %q", corpse)
	}
}
