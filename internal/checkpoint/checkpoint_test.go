package checkpoint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"orion/internal/journal"
)

func sample() *Checkpoint {
	enc := NewEncoder()
	enc.U64(42)
	enc.I64(-7)
	enc.Bool(true)
	enc.F64(3.25)
	enc.Str("stream-0")
	return &Checkpoint{
		Meta: Meta{
			Scheme: "orion",
			Seed:   3,
			Cursor: 2048,
			Clock:  1_500_000_000,
			Config: json.RawMessage(`{"scheme":"orion","seed":3}`),
		},
		Sections: []Section{
			{Name: "engine", Data: enc.Bytes()},
			{Name: "device/0", Data: []byte{0x00, 0x0a, '\n', 0xff}}, // binary incl. newline
		},
	}
}

func TestRoundTrip(t *testing.T) {
	c := sample()
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Cursor != c.Meta.Cursor || got.Meta.Clock != c.Meta.Clock {
		t.Fatalf("meta drifted: %+v", got.Meta)
	}
	if string(got.Meta.Config) != string(c.Meta.Config) {
		t.Fatalf("config drifted: %s", got.Meta.Config)
	}
	if err := Diff(c, got); err != nil {
		t.Fatalf("round-tripped checkpoint differs: %v", err)
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	c := sample()
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Torn tail: a checkpoint missing its last byte must not load.
	if _, err := Read(bytes.NewReader(full[:len(full)-1])); err == nil {
		t.Fatal("Read accepted a torn checkpoint")
	}
	// Bit flip inside the meta frame's payload: CRC must catch it.
	flipped := append([]byte(nil), full...)
	flipped[journal.FrameHeaderLen+3] ^= 0x01
	if _, err := Read(bytes.NewReader(flipped)); err == nil {
		t.Fatal("Read accepted a bit-flipped checkpoint")
	}
	// Empty input.
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("Read accepted empty input")
	}
}

func TestDiffDetectsDivergence(t *testing.T) {
	a, b := sample(), sample()
	if err := Diff(a, b); err != nil {
		t.Fatalf("identical checkpoints differ: %v", err)
	}
	b.Sections[1].Data[0] ^= 0x01
	if err := Diff(a, b); err == nil {
		t.Fatal("Diff missed a section byte flip")
	}
	b = sample()
	b.Meta.Cursor++
	if err := Diff(a, b); err == nil {
		t.Fatal("Diff missed a cursor mismatch")
	}
	b = sample()
	b.Sections = b.Sections[:1]
	if err := Diff(a, b); err == nil {
		t.Fatal("Diff missed a missing section")
	}
}

func TestWriteFileAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt-exp-1.ck")
	c := sample()
	if err := WriteFile(path, c); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a later checkpoint; the file must stay loadable and
	// reflect the newest state.
	c.Meta.Cursor = 4096
	if err := WriteFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Cursor != 4096 {
		t.Fatalf("cursor = %d, want 4096", got.Meta.Cursor)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want 1 (no temp litter)", len(entries))
	}
}

func TestEncoderDeterminism(t *testing.T) {
	build := func() []byte {
		e := NewEncoder()
		e.U64(1)
		e.Str("abc")
		e.Bool(false)
		e.F64(-0.5)
		return e.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("encoder output not deterministic")
	}
}
