package harness

import (
	"fmt"
	"strings"

	"orion/internal/cluster"
	"orion/internal/gpu"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/trace"
	"orion/internal/workload"
)

// The experiments below go beyond the paper's evaluation and prototype
// its §7 discussion items: applying Orion's resource-aware policy to
// large-language-model inference, and cluster-manager co-design that
// places complementary-profile jobs on the same GPU.

// extensionRegistry lists the §7 prototype experiments.
func extensionRegistry() []Experiment {
	return []Experiment{
		{"llm", "LLM token generation collocated with compute-bound inference (§7)", LLMCollocation},
		{"cluster", "Cluster placement: complementary-profile pairing vs naive (§7)", ClusterPlacement},
	}
}

// --- LLM collocation ----------------------------------------------------------

// LLMResult compares the LLM job alone and collocated.
type LLMResult struct {
	Rows []LLMRow
}

// LLMRow is one scheme's outcome.
type LLMRow struct {
	Scheme       Scheme
	LLMp50       sim.Duration
	LLMp99       sim.Duration
	BEThroughput float64
	Compute      float64
}

// Render prints the LLM collocation table.
func (l *LLMResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "LLM (memory-bound decode) + BERT inference (compute-bound), one V100\n")
	fmt.Fprintf(&b, "%-10s %-12s %-12s %-12s %-12s\n",
		"scheme", "llm p50(ms)", "llm p99(ms)", "be req/s", "compute%")
	for _, r := range l.Rows {
		fmt.Fprintf(&b, "%-10s %-12.1f %-12.1f %-12.2f %-12.0f\n",
			r.Scheme, r.LLMp50.Millis(), r.LLMp99.Millis(), r.BEThroughput, r.Compute*100)
	}
	return b.String()
}

// LLMCollocation prototypes §7: the sequential token-generation phase of
// LLM inference is memory-bound and underutilizes compute throughput, so
// a compute-intensive best-effort job (BERT inference) can harvest the
// idle compute units. Memory capacity limits the partner choice: the LLM
// holds ~75% of the device, so only small-footprint jobs fit.
func LLMCollocation(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(15), sim.Seconds(5))
	llm := workload.LLMInference()
	partner := workload.BERTInference()
	if llm.WeightsBytes+partner.WeightsBytes > gpu.V100().MemoryBytes {
		return nil, fmt.Errorf("llm: partner does not fit in memory")
	}
	jobs := []JobSpec{
		{Model: llm, Priority: sched.HighPriority, Arrival: Poisson, RPS: 2},
		{Model: partner, Priority: sched.BestEffort, Arrival: Closed},
	}
	schemes := []Scheme{Ideal, MPSScheme, Orion}
	if opt.Quick {
		schemes = []Scheme{Ideal, Orion}
	}
	var out LLMResult
	for _, s := range schemes {
		r, err := Run(RunConfig{
			Scheme: s, Jobs: jobs,
			Horizon: horizon, Warmup: warmup, Seed: opt.Seed,
		})
		if err != nil {
			return nil, err
		}
		hp := r.HP()
		out.Rows = append(out.Rows, LLMRow{
			Scheme: s,
			LLMp50: hp.Stats.Latency.P50(), LLMp99: hp.Stats.Latency.P99(),
			BEThroughput: r.BestEffort()[0].Stats.Throughput(),
			Compute:      r.Utilization.Compute,
		})
	}
	return &out, nil
}

// --- cluster placement ----------------------------------------------------------

// ClusterResult compares placement strategies for a job set over a GPU
// fleet.
type ClusterResult struct {
	Jobs       []string
	NaivePairs []string
	GreedyPair []string
	NaiveThr   float64
	GreedyThr  float64
}

// Render prints the placement comparison.
func (c *ClusterResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster placement of %d jobs over %d GPUs\n", len(c.Jobs), len(c.NaivePairs))
	fmt.Fprintf(&b, "naive (arrival order):        %s -> %.2f req/s total\n",
		strings.Join(c.NaivePairs, "  "), c.NaiveThr)
	fmt.Fprintf(&b, "complementarity-aware greedy: %s -> %.2f req/s total\n",
		strings.Join(c.GreedyPair, "  "), c.GreedyThr)
	fmt.Fprintf(&b, "improvement: %.2fx\n", c.GreedyThr/c.NaiveThr)
	return b.String()
}

// ClusterPlacement prototypes the §7 cluster-manager co-design: four
// inference services must be packed two-per-GPU; pairing jobs with
// complementary compute/memory profiles (via the offline profiles Orion
// already collects) beats arrival-order pairing on aggregate throughput.
func ClusterPlacement(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(12), sim.Seconds(4))
	// Arrival order interleaves the two compute-bound NLP models first,
	// so the naive packer pairs compute with compute.
	models := []*workload.Model{
		workload.BERTInference(),        // compute-bound
		workload.TransformerInference(), // compute-leaning
		workload.ResNet101Inference(),   // memory-leaning
		workload.MobileNetV2Inference(), // memory-leaning
	}
	var sums []cluster.Summary
	res := &ClusterResult{}
	for _, m := range models {
		p, err := ProfileFor(m, gpu.V100())
		if err != nil {
			return nil, err
		}
		s, err := cluster.Summarize(p, m.WeightsBytes)
		if err != nil {
			return nil, err
		}
		sums = append(sums, s)
		res.Jobs = append(res.Jobs, m.ID())
	}

	evaluate := func(pairs []cluster.Pair) ([]string, float64, error) {
		var names []string
		var gpus [][]JobSpec
		for _, p := range pairs {
			label := p.A.Workload
			jobs := []JobSpec{jobFor(p.A, sched.HighPriority)}
			if p.HasB() {
				label += "+" + p.B.Workload
				jobs = append(jobs, jobFor(p.B, sched.BestEffort))
			}
			names = append(names, "["+label+"]")
			gpus = append(gpus, jobs)
		}
		// One simulation for the whole fleet: every GPU runs its Orion
		// instance concurrently, as a cluster deployment would.
		r, err := RunFleet(FleetConfig{
			Scheme: Orion, GPUs: gpus,
			Horizon: horizon, Warmup: warmup, Seed: opt.Seed,
		})
		if err != nil {
			return nil, 0, err
		}
		return names, r.AggregateThroughput(), nil
	}

	var err error
	res.NaivePairs, res.NaiveThr, err = evaluate(cluster.PlaceNaive(sums, gpu.V100().MemoryBytes))
	if err != nil {
		return nil, err
	}
	res.GreedyPair, res.GreedyThr, err = evaluate(cluster.PlaceGreedy(sums, gpu.V100().MemoryBytes))
	if err != nil {
		return nil, err
	}
	return res, nil
}

// jobFor turns a placement summary back into a runnable job spec at a
// sustainable open-loop rate (Table 3 Poisson where known, otherwise
// closed loop).
func jobFor(s cluster.Summary, prio sched.Priority) JobSpec {
	m, err := workload.ByID(s.Workload)
	if err != nil {
		panic(fmt.Sprintf("cluster experiment: %v", err))
	}
	spec := JobSpec{Model: m, Priority: prio, Arrival: Closed}
	// Offline scoring for the best-effort slot; the high-priority service
	// receives open-loop traffic.
	if prio == sched.HighPriority {
		if rps, err2 := rpsFor(m.Name); err2 == nil {
			spec.Arrival = Poisson
			spec.RPS = rps
		}
	}
	return spec
}

func rpsFor(name string) (float64, error) {
	return trace.RPS(name, trace.InfInfPoisson)
}
