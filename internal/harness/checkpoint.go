package harness

import (
	"encoding/json"
	"fmt"

	"orion/internal/checkpoint"
	"orion/internal/fault"
	"orion/internal/gpu"
	"orion/internal/sched"
	"orion/internal/sim"
)

// DefaultCheckpointStride is the capture interval in processed events
// when CheckpointConfig.Stride is zero: 64 Interrupt polls apart, so the
// capture cost (which allocates) stays invisible next to the dispatch
// work between boundaries.
const DefaultCheckpointStride = 64 * sim.InterruptStride

// CheckpointConfig makes a run resumable: the harness captures a
// checkpoint of every stateful component at event-stride boundaries and
// hands it to Sink; a later run with the identical config Resume-verifies
// itself against the stored checkpoint once the replay reaches its
// cursor. Capture piggybacks on the engine's Interrupt poll, so a run
// without a CheckpointConfig pays nothing.
type CheckpointConfig struct {
	// Stride is the capture interval in processed events. It is rounded
	// up to a multiple of sim.InterruptStride (captures can only happen
	// at Interrupt polls); zero selects DefaultCheckpointStride.
	Stride uint64
	// Sink receives each captured checkpoint, newest last. A Sink error
	// aborts the run: the simulation must not outrun its durability
	// guarantee, and the golden resume suite uses exactly this to emulate
	// a crash at a deterministic boundary.
	Sink func(*checkpoint.Checkpoint) error
	// Resume, when non-nil, is a checkpoint captured by an earlier run of
	// the identical config. The run re-executes deterministically from
	// event zero; when it reaches the checkpoint's cursor every component
	// is re-snapshotted and byte-compared against the stored sections
	// (checkpoint.Diff) — divergence aborts the run instead of silently
	// continuing from state that no longer matches what was persisted.
	Resume *checkpoint.Checkpoint
	// Config, when non-nil, is the canonical wire config stamped into
	// each captured checkpoint's meta so a restore can rebuild the run
	// from the checkpoint file alone.
	Config json.RawMessage
}

// checkpointer drives capture and resume verification from inside the
// engine's Interrupt hook.
type checkpointer struct {
	cfg      *CheckpointConfig
	stride   uint64
	eng      *sim.Engine
	devices  []*gpu.Device
	drivers  []*sched.Driver
	backends []sched.Backend // deduped
	injector *fault.Injector

	scheme string
	seed   int64

	lastCaptured uint64
	resumeCursor uint64 // 0 when not resuming
	verified     bool
	err          error
}

func newCheckpointer(cfg RunConfig, eng *sim.Engine, devices []*gpu.Device,
	drivers []*sched.Driver, backends []sched.Backend, injector *fault.Injector) (*checkpointer, error) {
	cc := cfg.Checkpoint
	stride := cc.Stride
	if stride == 0 {
		stride = DefaultCheckpointStride
	}
	// Captures can only happen when the engine polls Interrupt, i.e. at
	// multiples of sim.InterruptStride.
	if rem := stride % sim.InterruptStride; rem != 0 {
		stride += sim.InterruptStride - rem
	}
	c := &checkpointer{
		cfg: cc, stride: stride, eng: eng,
		devices: devices, drivers: drivers, backends: backends, injector: injector,
		scheme: string(cfg.Scheme), seed: cfg.Seed,
	}
	if r := cc.Resume; r != nil {
		if r.Meta.Cursor == 0 {
			return nil, fmt.Errorf("harness: resume checkpoint has zero cursor")
		}
		if r.Meta.Cursor%sim.InterruptStride != 0 {
			return nil, fmt.Errorf("harness: resume cursor %d is not a multiple of the interrupt stride %d",
				r.Meta.Cursor, sim.InterruptStride)
		}
		if r.Meta.Scheme != "" && r.Meta.Scheme != c.scheme {
			return nil, fmt.Errorf("harness: resume checkpoint is for scheme %q, run is %q", r.Meta.Scheme, c.scheme)
		}
		if r.Meta.Seed != 0 && r.Meta.Seed != c.seed {
			return nil, fmt.Errorf("harness: resume checkpoint seed %d, run seed %d", r.Meta.Seed, c.seed)
		}
		c.resumeCursor = r.Meta.Cursor
	}
	return c, nil
}

// poll runs at every Interrupt check. It returns true (stop the run) only
// on a sink or verification failure, recorded in c.err.
func (c *checkpointer) poll() bool {
	p := c.eng.Processed()
	if c.resumeCursor != 0 && !c.verified {
		if p == c.resumeCursor {
			if err := checkpoint.Diff(c.cfg.Resume, c.capture()); err != nil {
				c.err = fmt.Errorf("harness: resume diverged from checkpoint: %w", err)
				return true
			}
			c.verified = true
		}
		// Replay phase: the stored checkpoint already covers this prefix,
		// so nothing is sunk until the run passes the cursor.
		return false
	}
	if c.cfg.Sink != nil && p != 0 && p%c.stride == 0 && p != c.lastCaptured {
		if err := c.cfg.Sink(c.capture()); err != nil {
			c.err = fmt.Errorf("harness: checkpoint sink: %w", err)
			return true
		}
		c.lastCaptured = p
	}
	return false
}

// finish validates end-of-run invariants and reports how many events were
// replayed to reach the resume cursor.
func (c *checkpointer) finish() (replayed uint64, err error) {
	if c.err != nil {
		return 0, c.err
	}
	if c.resumeCursor != 0 && !c.verified {
		return 0, fmt.Errorf("harness: resume cursor %d never reached (run processed %d events — config mismatch?)",
			c.resumeCursor, c.eng.Processed())
	}
	if c.resumeCursor != 0 {
		return c.resumeCursor, nil
	}
	return 0, nil
}

// capture snapshots every stateful component. It allocates freely — it
// only ever runs at stride boundaries, never on the per-event path.
func (c *checkpointer) capture() *checkpoint.Checkpoint {
	ck := &checkpoint.Checkpoint{
		Meta: checkpoint.Meta{
			Scheme: c.scheme,
			Seed:   c.seed,
			Cursor: c.eng.Processed(),
			Clock:  int64(c.eng.Now()),
			Config: c.cfg.Config,
		},
	}
	add := func(name string, s checkpoint.Snapshotter) {
		enc := checkpoint.NewEncoder()
		s.SnapshotTo(enc)
		ck.Sections = append(ck.Sections, checkpoint.Section{Name: name, Data: enc.Bytes()})
	}
	engEnc := checkpoint.NewEncoder()
	encodeEngineState(engEnc, c.eng.Snapshot())
	ck.Sections = append(ck.Sections, checkpoint.Section{Name: "engine", Data: engEnc.Bytes()})
	for i, d := range c.devices {
		add(fmt.Sprintf("device/%d", i), d)
	}
	for i, d := range c.drivers {
		add(fmt.Sprintf("driver/%d", i), d)
	}
	for i, b := range c.backends {
		if s, ok := b.(checkpoint.Snapshotter); ok {
			add(fmt.Sprintf("backend/%d", i), s)
		}
	}
	if c.injector != nil {
		add("injector", c.injector)
	}
	return ck
}

// encodeEngineState flattens an engine fingerprint into checkpoint bytes.
func encodeEngineState(e *checkpoint.Encoder, st sim.EngineState) {
	e.I64(int64(st.Now))
	e.U64(st.Seq)
	e.Int(st.Strong)
	e.U64(st.Processed)
	e.Int(len(st.Events))
	for _, ev := range st.Events {
		e.I64(int64(ev.Time))
		e.U64(ev.Seq)
		e.Bool(ev.Weak)
	}
}
