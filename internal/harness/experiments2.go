package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"orion/internal/core"
	"orion/internal/gpu"
	"orion/internal/parallel"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/trace"
	"orion/internal/viz"
	"orion/internal/workload"
)

// CollocationCell aggregates one (high-priority model, scheme) point,
// averaged over the best-effort partner models.
type CollocationCell struct {
	HPp50        sim.Duration
	HPp95        sim.Duration
	HPp99        sim.Duration
	HPThroughput float64
	BEThroughput float64
	Samples      int
}

// CollocationFigure is a p99/throughput matrix over (HP model x scheme) —
// the shape of Figures 2, 6, 7, 10, 11, 12 and 13.
type CollocationFigure struct {
	Title   string
	Schemes []Scheme
	HPs     []string
	Cells   map[string]map[Scheme]*CollocationCell
}

// Cell returns the aggregated cell for an HP model and scheme.
func (f *CollocationFigure) Cell(hp string, s Scheme) *CollocationCell {
	if f.Cells[hp] == nil {
		return nil
	}
	return f.Cells[hp][s]
}

// Render prints one block per HP model: p99 and throughputs per scheme,
// with the p99 ratio to Ideal and a bar chart of the tails.
func (f *CollocationFigure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	for _, hp := range f.HPs {
		fmt.Fprintf(&b, "\nhigh-priority %s:\n", hp)
		fmt.Fprintf(&b, "  %-10s %-10s %-10s %-10s %-10s %-10s\n",
			"scheme", "p50(ms)", "p99(ms)", "p99/ideal", "hp(thr)", "be(thr)")
		ideal := f.Cell(hp, Ideal)
		var bars []viz.Bar
		for _, s := range f.Schemes {
			c := f.Cell(hp, s)
			if c == nil {
				continue
			}
			ratio := 0.0
			if ideal != nil && ideal.HPp99 > 0 {
				ratio = float64(c.HPp99) / float64(ideal.HPp99)
			}
			fmt.Fprintf(&b, "  %-10s %-10.2f %-10.2f %-10.2f %-10.2f %-10.2f\n",
				s, c.HPp50.Millis(), c.HPp99.Millis(), ratio, c.HPThroughput, c.BEThroughput)
			bars = append(bars, viz.Bar{
				Label: string(s), Value: c.HPp99.Millis(),
				Annotation: fmt.Sprintf("%.2fx ideal", ratio),
			})
		}
		b.WriteString(indent(viz.BarChart("p99 latency", "ms", 36, bars), "  "))
	}
	return b.String()
}

// indent prefixes every non-empty line.
func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = prefix + l
		}
	}
	return strings.Join(lines, "\n")
}

// collocationSweep runs every (HP, BE partner, scheme) combination and
// averages cells over partners. The independent runs fan out across the
// batch worker pool (par = 0 means GOMAXPROCS); cells are laid out and
// aggregated in the same canonical (hp, scheme, partner) nesting the
// old serial triple loop used, so the figure — and anything rendered
// from it — is byte-identical at every parallelism.
func collocationSweep(title string, hps []JobSpec, partnersFor func(hp JobSpec) []JobSpec,
	schemes []Scheme, device gpu.Spec, horizon, warmup sim.Duration, seed int64, par int,
	custom func(cfg *RunConfig)) (*CollocationFigure, error) {

	fig := &CollocationFigure{
		Title:   title,
		Schemes: schemes,
		Cells:   map[string]map[Scheme]*CollocationCell{},
	}
	partners := make([][]JobSpec, len(hps))
	var cfgs []RunConfig
	for hi, hp := range hps {
		hpID := hp.Model.ID()
		fig.HPs = append(fig.HPs, hpID)
		fig.Cells[hpID] = map[Scheme]*CollocationCell{}
		partners[hi] = partnersFor(hp)
		for _, s := range schemes {
			for _, be := range partners[hi] {
				cfg := RunConfig{
					Scheme: s, Device: device,
					Jobs:    []JobSpec{hp, be},
					Horizon: horizon, Warmup: warmup,
					Seed: seed + int64(len(hpID)) + int64(len(be.Model.ID()))*131,
				}
				if custom != nil {
					custom(&cfg)
				}
				cfgs = append(cfgs, cfg)
			}
		}
	}
	results, err := RunBatch(context.Background(), cfgs, par)
	if err != nil {
		return nil, sweepError(err, func(i int) string {
			for hi, hp := range hps {
				for _, s := range schemes {
					for _, be := range partners[hi] {
						if i == 0 {
							return fmt.Sprintf("%s/%s vs %s", s, hp.Model.ID(), be.Model.ID())
						}
						i--
					}
				}
			}
			return "?"
		})
	}
	idx := 0
	for hi := range hps {
		hpID := hps[hi].Model.ID()
		for _, s := range schemes {
			agg := &CollocationCell{}
			var p50, p95, p99 sim.Duration
			for range partners[hi] {
				r := results[idx]
				idx++
				h := r.HP()
				p50 += h.Stats.Latency.P50()
				p95 += h.Stats.Latency.P95()
				p99 += h.Stats.Latency.P99()
				agg.HPThroughput += h.Stats.Throughput()
				for _, bj := range r.BestEffort() {
					agg.BEThroughput += bj.Stats.Throughput()
				}
				agg.Samples++
			}
			n := sim.Duration(agg.Samples)
			if n > 0 {
				agg.HPp50 = p50 / n
				agg.HPp95 = p95 / n
				agg.HPp99 = p99 / n
				agg.HPThroughput /= float64(agg.Samples)
				agg.BEThroughput /= float64(agg.Samples)
			}
			fig.Cells[hpID][s] = agg
		}
	}
	return fig, nil
}

// sweepError re-attaches a failed batch cell's human-readable label
// ("orion/resnet50-inf vs mobilenetv2-train") to the underlying run
// error, preserving the message shape of the old serial loops.
func sweepError(err error, label func(cell int) string) error {
	var ce *parallel.CellError
	if errors.As(err, &ce) {
		return fmt.Errorf("%s: %w", label(ce.Cell), ce.Err)
	}
	return err
}

// trainPartnersExcept returns the training workloads other than the HP
// model, as closed-loop best-effort jobs.
func trainPartnersExcept(name string) []JobSpec {
	var out []JobSpec
	for _, m := range workload.TrainingModels() {
		if m.Name == name {
			continue
		}
		out = append(out, JobSpec{Model: m, Priority: sched.BestEffort, Arrival: Closed})
	}
	return out
}

// allTrainPartners returns every training workload as a closed-loop
// best-effort job.
func allTrainPartners() []JobSpec {
	var out []JobSpec
	for _, m := range workload.TrainingModels() {
		out = append(out, JobSpec{Model: m, Priority: sched.BestEffort, Arrival: Closed})
	}
	return out
}

// --- Figure 2: motivation ----------------------------------------------------

// Figure2 reproduces the motivational comparison: three job pairs, each
// job in a closed loop, across all techniques.
func Figure2(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(10), sim.Seconds(3))
	pairs := []struct{ hp, be *workload.Model }{
		{workload.ResNet50Inference(), workload.MobileNetV2Training()},
		{workload.TransformerInference(), workload.ResNet50Training()},
		{workload.ResNet101Training(), workload.MobileNetV2Training()},
	}
	if opt.Quick {
		pairs = pairs[:1]
	}
	schemes := []Scheme{Ideal, Temporal, Streams, MPSScheme, Reef, Orion}
	var cfgs []RunConfig
	for _, p := range pairs {
		for _, s := range schemes {
			cfgs = append(cfgs, RunConfig{
				Scheme: s,
				Jobs: []JobSpec{
					{Model: p.hp, Priority: sched.HighPriority, Arrival: Closed},
					{Model: p.be, Priority: sched.BestEffort, Arrival: Closed},
				},
				Horizon: horizon, Warmup: warmup, Seed: opt.Seed,
			})
		}
	}
	results, err := RunBatch(context.Background(), cfgs, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: closed-loop job pairs, throughput per scheme (req or it /s)\n")
	idx := 0
	for _, p := range pairs {
		fmt.Fprintf(&b, "\npair: %s (hp) + %s (be)\n", p.hp.ID(), p.be.ID())
		fmt.Fprintf(&b, "  %-10s %-10s %-10s %-12s\n", "scheme", "hp(thr)", "be(thr)", "aggregate")
		for _, s := range schemes {
			r := results[idx]
			idx++
			fmt.Fprintf(&b, "  %-10s %-10.2f %-10.2f %-12.2f\n",
				s, r.HP().Stats.Throughput(), r.BestEffort()[0].Stats.Throughput(),
				r.AggregateThroughput())
		}
	}
	return Text(b.String()), nil
}

// --- Figures 6 and 7: inference-training -------------------------------------

func infTrainFigure(opt Options, arrival ArrivalKind, label string) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(12), sim.Seconds(4))
	models := workload.InferenceModels()
	schemes := []Scheme{Ideal, Temporal, Streams, MPSScheme, Reef, Orion}
	partners := func(hp JobSpec) []JobSpec { return allTrainPartners() }
	if opt.Quick {
		models = models[:2]
		schemes = []Scheme{Ideal, Reef, Orion}
		partners = func(hp JobSpec) []JobSpec { return allTrainPartners()[:1] }
	}
	var hps []JobSpec
	for _, m := range models {
		rps, err := trace.RPS(m.Name, trace.InfTrainPoisson)
		if err != nil {
			return nil, err
		}
		hps = append(hps, JobSpec{Model: m, Priority: sched.HighPriority, Arrival: arrival, RPS: rps})
	}
	return collocationSweep(label, hps, partners, schemes, gpu.V100(), horizon, warmup, opt.Seed, opt.Parallelism, nil)
}

// Figure6 is inference-training with Apollo-trace arrivals.
func Figure6(opt Options) (Rendered, error) {
	return infTrainFigure(opt, Apollo,
		"Figure 6: inf-train (Apollo trace), p99 and throughput averaged over training partners")
}

// Figure7 is inference-training with Poisson arrivals at Table 3 rates.
func Figure7(opt Options) (Rendered, error) {
	return infTrainFigure(opt, Poisson,
		"Figure 7: inf-train (Poisson), p99 and throughput averaged over training partners")
}

// --- Figures 8 and 9: utilization traces --------------------------------------

func utilizationTraces(opt Options) (alone, collocated *Result, err error) {
	horizon, warmup := opt.horizons(sim.Seconds(4), sim.Seconds(1))
	hp := JobSpec{Model: workload.ResNet50Inference(), Priority: sched.HighPriority, Arrival: Uniform, RPS: 100}
	alone, err = Run(RunConfig{
		Scheme: Ideal, Jobs: []JobSpec{hp},
		Horizon: horizon, Warmup: warmup, Seed: opt.Seed, Tracing: true,
	})
	if err != nil {
		return nil, nil, err
	}
	collocated, err = Run(RunConfig{
		Scheme: Orion,
		Jobs: []JobSpec{hp,
			{Model: workload.ResNet50Training(), Priority: sched.BestEffort, Arrival: Closed}},
		Horizon: horizon, Warmup: warmup, Seed: opt.Seed, Tracing: true,
	})
	if err != nil {
		return nil, nil, err
	}
	return alone, collocated, nil
}

// UtilCompareResult is the alone-vs-collocated utilization comparison of
// Figures 8 and 9.
type UtilCompareResult struct {
	Metric         string
	AloneAvg       float64
	CollocatedAvg  float64
	AloneTrace     []gpu.UtilSample
	CollocatedTrac []gpu.UtilSample
}

// Render prints the averages, a sparkline panel, and the series.
func (u *UtilCompareResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s utilization: alone %.1f%% -> collocated with Orion %.1f%%\n\n",
		u.Metric, u.AloneAvg*100, u.CollocatedAvg*100)
	pick := func(s gpu.UtilSample) float64 {
		if u.Metric == "membw" {
			return s.MemBW
		}
		return s.Compute
	}
	series := func(tr []gpu.UtilSample) []float64 {
		out := make([]float64, len(tr))
		for i, s := range tr {
			out[i] = pick(s) * 100
		}
		return out
	}
	panel := viz.TimeSeries{
		Title:  fmt.Sprintf("%s utilization over time (%%)", u.Metric),
		XLabel: "5ms buckets",
		Rows: []viz.TimeSeriesRow{
			{Name: "alone", Values: series(u.AloneTrace)},
			{Name: "collocated", Values: series(u.CollocatedTrac)},
		},
	}
	b.WriteString(panel.Render())
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-10s %-10s %-12s\n", "t(ms)", "alone%", "collocated%")
	n := len(u.AloneTrace)
	if len(u.CollocatedTrac) < n {
		n = len(u.CollocatedTrac)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%-10.1f %-10.1f %-12.1f\n",
			float64(u.AloneTrace[i].Start)/1e6, pick(u.AloneTrace[i])*100, pick(u.CollocatedTrac[i])*100)
	}
	return b.String()
}

func figure89(opt Options, metric string) (Rendered, error) {
	alone, col, err := utilizationTraces(opt)
	if err != nil {
		return nil, err
	}
	_, warmup := opt.horizons(sim.Seconds(4), sim.Seconds(1))
	from := sim.Time(warmup)
	to := from.Add(sim.Millis(200))
	bucket := sim.Millis(5)
	res := &UtilCompareResult{
		Metric:         metric,
		AloneTrace:     gpu.ResampleTrace(alone.Trace, from, to, bucket),
		CollocatedTrac: gpu.ResampleTrace(col.Trace, from, to, bucket),
	}
	if metric == "membw" {
		res.AloneAvg = alone.Utilization.MemBW
		res.CollocatedAvg = col.Utilization.MemBW
	} else {
		res.AloneAvg = alone.Utilization.Compute
		res.CollocatedAvg = col.Utilization.Compute
	}
	return res, nil
}

// Figure8 compares compute-throughput utilization of ResNet50 inference
// alone vs collocated with ResNet50 training under Orion.
func Figure8(opt Options) (Rendered, error) { return figure89(opt, "compute") }

// Figure9 compares memory-bandwidth utilization for the same setup.
func Figure9(opt Options) (Rendered, error) { return figure89(opt, "membw") }

// --- Figure 10: training-training ---------------------------------------------

// Figure10 collocates high-priority and best-effort training jobs across
// schemes, reporting both jobs' throughput.
func Figure10(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(12), sim.Seconds(4))
	models := workload.TrainingModels()
	schemes := []Scheme{Ideal, Streams, MPSScheme, Reef, TickTock, Orion}
	partners := func(hp JobSpec) []JobSpec { return trainPartnersExcept(hp.Model.Name) }
	if opt.Quick {
		models = models[:2]
		schemes = []Scheme{Ideal, Reef, TickTock, Orion}
		partners = func(hp JobSpec) []JobSpec { return trainPartnersExcept(hp.Model.Name)[:1] }
	}
	var hps []JobSpec
	for _, m := range models {
		hps = append(hps, JobSpec{Model: m, Priority: sched.HighPriority, Arrival: Closed})
	}
	return collocationSweep(
		"Figure 10: train-train, high-priority and best-effort throughput averaged over partners",
		hps, partners, schemes, gpu.V100(), horizon, warmup, opt.Seed, opt.Parallelism, nil)
}

// --- Table 4: cost savings ----------------------------------------------------

// Table4Row is one training model's dedicated vs collocated throughput.
type Table4Row struct {
	Model       string
	Dedicated   float64
	Collocated  float64
	CostSavings float64
}

// Table4Result is the cost-savings table.
type Table4Result struct{ Rows []Table4Row }

// Render prints the Table 4 layout.
func (t *Table4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-16s %-16s %-12s\n",
		"training model", "dedicated it/s", "collocated it/s", "cost savings")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-20s %-16.2f %-16.2f %.2fx\n",
			r.Model, r.Dedicated, r.Collocated, r.CostSavings)
	}
	return b.String()
}

// Table4 measures each training model's throughput dedicated vs collocated
// (as best-effort under Orion) with Poisson inference jobs, and the
// resulting cost savings (2 * collocated / dedicated).
func Table4(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(12), sim.Seconds(4))
	trainModels := workload.TrainingModels()
	infModels := workload.InferenceModels()
	if opt.Quick {
		trainModels = trainModels[:2]
		infModels = infModels[:1]
	}
	// Cells per training model: one dedicated run, then one Orion run per
	// inference partner — flattened so the whole table fans out at once.
	var cfgs []RunConfig
	for _, tm := range trainModels {
		be := JobSpec{Model: tm, Priority: sched.BestEffort, Arrival: Closed}
		cfgs = append(cfgs, RunConfig{
			Scheme: Ideal, Device: gpu.V100(), Jobs: []JobSpec{be},
			Horizon: horizon, Warmup: warmup, Seed: opt.Seed,
		})
		for _, im := range infModels {
			rps, err := trace.RPS(im.Name, trace.InfTrainPoisson)
			if err != nil {
				return nil, err
			}
			cfgs = append(cfgs, RunConfig{
				Scheme: Orion,
				Jobs: []JobSpec{
					{Model: im, Priority: sched.HighPriority, Arrival: Poisson, RPS: rps},
					be,
				},
				Horizon: horizon, Warmup: warmup, Seed: opt.Seed,
			})
		}
	}
	results, err := RunBatch(context.Background(), cfgs, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	var out Table4Result
	idx := 0
	for _, tm := range trainModels {
		ded := results[idx].Jobs[0].Stats.Throughput()
		idx++
		var col float64
		var n int
		for range infModels {
			col += results[idx].BestEffort()[0].Stats.Throughput()
			idx++
			n++
		}
		col /= float64(n)
		out.Rows = append(out.Rows, Table4Row{
			Model: tm.ID(), Dedicated: ded, Collocated: col,
			CostSavings: 2 * col / ded,
		})
	}
	return &out, nil
}

// --- Figures 11 and 12: inference-inference ------------------------------------

func infInfFigure(opt Options, hpArrival, beArrival ArrivalKind, hpScenario, beScenario trace.Scenario, hpModels []*workload.Model, label string) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(12), sim.Seconds(4))
	schemes := []Scheme{Ideal, Streams, MPSScheme, Reef, Orion}
	if opt.Quick {
		hpModels = hpModels[:1]
		schemes = []Scheme{Ideal, Reef, Orion}
	}
	var hps []JobSpec
	for _, m := range hpModels {
		rps, err := trace.RPS(m.Name, hpScenario)
		if err != nil {
			return nil, err
		}
		hps = append(hps, JobSpec{Model: m, Priority: sched.HighPriority, Arrival: hpArrival, RPS: rps})
	}
	partners := func(hp JobSpec) []JobSpec {
		var out []JobSpec
		for _, m := range workload.InferenceModels() {
			if m.Name == hp.Model.Name {
				continue
			}
			rps, err := trace.RPS(m.Name, beScenario)
			if err != nil {
				continue
			}
			out = append(out, JobSpec{Model: m, Priority: sched.BestEffort, Arrival: beArrival, RPS: rps})
		}
		if opt.Quick {
			out = out[:1]
		}
		return out
	}
	return collocationSweep(label, hps, partners, schemes, gpu.V100(), horizon, warmup, opt.Seed, opt.Parallelism, nil)
}

// Figure11 is inf-inf with the Apollo trace driving the high-priority
// vision model and uniform best-effort arrivals.
func Figure11(opt Options) (Rendered, error) {
	return infInfFigure(opt, Apollo, Uniform, trace.InfInfPoisson, trace.InfInfUniform,
		workload.VisionInference(),
		"Figure 11: inf-inf (Apollo hp, uniform be), p99 averaged over partners")
}

// Figure12 is inf-inf with Poisson arrivals for both jobs.
func Figure12(opt Options) (Rendered, error) {
	return infInfFigure(opt, Poisson, Poisson, trace.InfInfPoisson, trace.InfInfPoisson,
		workload.InferenceModels(),
		"Figure 12: inf-inf (Poisson both), p99 averaged over partners")
}

// --- Figure 13: A100, five clients ---------------------------------------------

// Figure13 runs one high-priority inference client against four
// best-effort inference clients on an A100, across MPS, REEF and Orion.
func Figure13(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(12), sim.Seconds(4))
	models := workload.InferenceModels()
	schemes := []Scheme{Ideal, MPSScheme, Reef, Orion}
	if opt.Quick {
		models = models[:2]
		schemes = []Scheme{Ideal, Orion}
	}
	fig := &CollocationFigure{
		Title:   "Figure 13: A100, 1 high-priority + 4 best-effort inference clients (Poisson)",
		Schemes: schemes,
		Cells:   map[string]map[Scheme]*CollocationCell{},
	}
	var cfgs []RunConfig
	for _, hpM := range models {
		hpID := hpM.ID()
		fig.HPs = append(fig.HPs, hpID)
		fig.Cells[hpID] = map[Scheme]*CollocationCell{}
		rps, err := trace.RPS(hpM.Name, trace.InfInfPoisson)
		if err != nil {
			return nil, err
		}
		jobs := []JobSpec{{Model: hpM, Priority: sched.HighPriority, Arrival: Poisson, RPS: rps}}
		for _, beM := range workload.InferenceModels() {
			if beM.Name == hpM.Name {
				continue
			}
			beRPS, err := trace.RPS(beM.Name, trace.InfInfPoisson)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, JobSpec{Model: beM, Priority: sched.BestEffort, Arrival: Poisson, RPS: beRPS})
		}
		for _, s := range schemes {
			cfgs = append(cfgs, RunConfig{
				Scheme: s, Device: gpu.A100(), Jobs: jobs,
				Horizon: horizon, Warmup: warmup, Seed: opt.Seed,
			})
		}
	}
	results, err := RunBatch(context.Background(), cfgs, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, hpM := range models {
		hpID := hpM.ID()
		for _, s := range schemes {
			r := results[idx]
			idx++
			h := r.HP()
			cell := &CollocationCell{
				HPp50: h.Stats.Latency.P50(), HPp95: h.Stats.Latency.P95(),
				HPp99: h.Stats.Latency.P99(), HPThroughput: h.Stats.Throughput(),
				Samples: 1,
			}
			for _, bj := range r.BestEffort() {
				cell.BEThroughput += bj.Stats.Throughput()
			}
			fig.Cells[hpID][s] = cell
		}
	}
	return fig, nil
}

// --- Figure 14: policy ablation -------------------------------------------------

// AblationRow is one policy variant's aggregate tail latency.
type AblationRow struct {
	Variant string
	P95     sim.Duration
	P99     sim.Duration
}

// AblationResult is the Figure 14 breakdown.
type AblationResult struct{ Rows []AblationRow }

// Render prints variants in cumulative order with p95 reduction vs the
// first row.
func (a *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-10s %-10s %-12s\n", "variant", "p95(ms)", "p99(ms)", "p95 vs base")
	base := float64(a.Rows[0].P95)
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-28s %-10.2f %-10.2f %-12.2f\n",
			r.Variant, r.P95.Millis(), r.P99.Millis(), float64(r.P95)/base)
	}
	return b.String()
}

// Figure14 decomposes Orion's policy: plain GPU Streams, stream
// priorities, compute/memory profile gating, SM-size gating (full Orion),
// and full Orion without stream priorities.
func Figure14(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(12), sim.Seconds(4))
	hpModels := []*workload.Model{
		workload.ResNet50Inference(), workload.ResNet101Inference(), workload.MobileNetV2Inference(),
	}
	beModels := []*workload.Model{workload.ResNet50Training(), workload.MobileNetV2Training()}
	if opt.Quick {
		hpModels = hpModels[:1]
		beModels = beModels[:1]
	}

	type variant struct {
		name   string
		scheme Scheme
		custom func(cfg *RunConfig)
	}
	variants := []variant{
		{"GPU Streams", Streams, func(cfg *RunConfig) { cfg.streamsNoPriorities = true }},
		{"+ Stream Priorities", Streams, nil},
		{"+ Compute/Mem profiles", Orion, func(cfg *RunConfig) {
			cfg.OrionConfig = &core.Config{DisableSMCheck: true}
		}},
		{"+ SM size (full Orion)", Orion, nil},
		{"Orion w/o priorities", Orion, func(cfg *RunConfig) {
			cfg.OrionConfig = &core.Config{DisableStreamPriorities: true}
		}},
	}

	var cfgs []RunConfig
	for _, v := range variants {
		for _, hpM := range hpModels {
			rps, err := trace.RPS(hpM.Name, trace.InfTrainPoisson)
			if err != nil {
				return nil, err
			}
			for _, beM := range beModels {
				cfg := RunConfig{
					Scheme: v.scheme,
					Jobs: []JobSpec{
						{Model: hpM, Priority: sched.HighPriority, Arrival: Poisson, RPS: rps},
						{Model: beM, Priority: sched.BestEffort, Arrival: Closed},
					},
					Horizon: horizon, Warmup: warmup, Seed: opt.Seed,
				}
				if v.custom != nil {
					v.custom(&cfg)
				}
				cfgs = append(cfgs, cfg)
			}
		}
	}
	results, err := RunBatch(context.Background(), cfgs, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	var out AblationResult
	idx := 0
	for _, v := range variants {
		var p95, p99 sim.Duration
		var n int
		for range hpModels {
			for range beModels {
				r := results[idx]
				idx++
				p95 += r.HP().Stats.Latency.P95()
				p99 += r.HP().Stats.Latency.P99()
				n++
			}
		}
		out.Rows = append(out.Rows, AblationRow{
			Variant: v.name,
			P95:     p95 / sim.Duration(n),
			P99:     p99 / sim.Duration(n),
		})
	}
	return &out, nil
}

// --- §6.4: DUR_THRESHOLD sensitivity ---------------------------------------------

// DurThreshRow is one sweep point.
type DurThreshRow struct {
	Threshold    float64
	HPp99        sim.Duration
	BEThroughput float64
}

// DurThreshResult is the sensitivity sweep.
type DurThreshResult struct{ Rows []DurThreshRow }

// Render prints the sweep.
func (d *DurThreshResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-12s %-14s\n", "DUR_THRESHOLD", "hp p99(ms)", "be it/s")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%-14.1f%% %-12.2f %-14.2f\n", r.Threshold*100, r.HPp99.Millis(), r.BEThroughput)
	}
	return b.String()
}

// DurThresholdSensitivity sweeps DUR_THRESHOLD for ResNet101 inference
// collocated with best-effort training (§6.4): larger thresholds trade
// high-priority latency for best-effort throughput.
func DurThresholdSensitivity(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(12), sim.Seconds(4))
	sweep := []float64{0.01, 0.025, 0.05, 0.10, 0.15, 0.20}
	if opt.Quick {
		sweep = []float64{0.025, 0.20}
	}
	hpM := workload.ResNet101Inference()
	beM := workload.MobileNetV2Training()
	rps, err := trace.RPS(hpM.Name, trace.InfTrainPoisson)
	if err != nil {
		return nil, err
	}
	var cfgs []RunConfig
	for _, th := range sweep {
		cfgs = append(cfgs, RunConfig{
			Scheme: Orion,
			Jobs: []JobSpec{
				{Model: hpM, Priority: sched.HighPriority, Arrival: Poisson, RPS: rps},
				{Model: beM, Priority: sched.BestEffort, Arrival: Closed},
			},
			Horizon: horizon, Warmup: warmup, Seed: opt.Seed,
			OrionConfig: &core.Config{DurThreshold: th},
		})
	}
	results, err := RunBatch(context.Background(), cfgs, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	var out DurThreshResult
	for i, th := range sweep {
		r := results[i]
		out.Rows = append(out.Rows, DurThreshRow{
			Threshold: th, HPp99: r.HP().Stats.Latency.P99(),
			BEThroughput: r.BestEffort()[0].Stats.Throughput(),
		})
	}
	return &out, nil
}

// --- §6.5: interception overhead ----------------------------------------------

// OverheadRow is one workload's native-vs-intercepted latency.
type OverheadRow struct {
	Workload string
	Native   sim.Duration
	Orion    sim.Duration
	Overhead float64
}

// OverheadResult is the interception-overhead table.
type OverheadResult struct{ Rows []OverheadRow }

// Render prints the overhead table.
func (o *OverheadResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-12s %-12s %-10s\n", "workload", "native(ms)", "orion(ms)", "overhead")
	for _, r := range o.Rows {
		fmt.Fprintf(&b, "%-20s %-12.3f %-12.3f %.2f%%\n",
			r.Workload, r.Native.Millis(), r.Orion.Millis(), r.Overhead*100)
	}
	return b.String()
}

// Overhead measures Orion's kernel-launch interception cost on dedicated
// jobs (§6.5: under 1%).
func Overhead(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(6), sim.Seconds(2))
	models := []*workload.Model{
		workload.ResNet50Inference(), workload.BERTInference(), workload.ResNet50Training(),
	}
	if opt.Quick {
		models = models[:1]
	}
	var cfgs []RunConfig
	for _, m := range models {
		job := JobSpec{Model: m, Priority: sched.HighPriority, Arrival: Closed}
		cfgs = append(cfgs,
			RunConfig{Scheme: Ideal, Jobs: []JobSpec{job},
				Horizon: horizon, Warmup: warmup, Seed: opt.Seed},
			RunConfig{Scheme: Orion, Jobs: []JobSpec{job},
				Horizon: horizon, Warmup: warmup, Seed: opt.Seed})
	}
	results, err := RunBatch(context.Background(), cfgs, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	var out OverheadResult
	for i, m := range models {
		nm := results[2*i].Jobs[0].Stats.Latency.Mean()
		om := results[2*i+1].Jobs[0].Stats.Latency.Mean()
		out.Rows = append(out.Rows, OverheadRow{
			Workload: m.ID(), Native: nm, Orion: om,
			Overhead: float64(om-nm) / float64(nm),
		})
	}
	return &out, nil
}
