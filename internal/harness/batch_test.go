package harness_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"orion/internal/checkpoint"
	"orion/internal/harness"
	"orion/internal/parallel"
	"orion/internal/sim"
)

// TestGoldenArenaSeedIsolation is the RNG-leak regression test: one
// arena reused across different seeds must reproduce each seed's
// fresh-engine hash exactly. Before the pooled master RNG was reseeded
// per run (instead of recreated), a reused arena could carry one
// cell's injector/arrival draw state into the next cell of a batch.
func TestGoldenArenaSeedIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("seed-isolation sweep runs 5 simulations")
	}
	fresh := map[int64]string{
		1: goldenHash(t, goldenConfig(harness.Orion, 1)),
		2: goldenHash(t, goldenConfig(harness.Orion, 2)),
	}
	arena := harness.NewArena()
	// 1 → 2 → 1: the third run catches state leaked by the second.
	for _, seed := range []int64{1, 2, 1} {
		rc, err := goldenConfig(harness.Orion, seed).Build()
		if err != nil {
			t.Fatal(err)
		}
		rc.Arena = arena
		res, err := harness.RunContext(context.Background(), rc)
		if err != nil {
			t.Fatal(err)
		}
		if got := wireHash(t, harness.Summarize(res)); got != fresh[seed] {
			t.Fatalf("seed %d through reused arena drifted from fresh engine:\n  got  %s\n  want %s",
				seed, got, fresh[seed])
		}
	}
}

// TestGoldenSerialParallelEquivalence runs the full golden grid (4
// schemes × 3 seeds) through the batch runner at parallelism 1, 2 and
// NumCPU and checks every cell against the pinned golden hashes: the
// parallel path must be bit-identical to the serial reference at every
// pool size.
func TestGoldenSerialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep runs 12 simulations per parallelism level")
	}
	schemes := []harness.Scheme{harness.Orion, harness.Reef, harness.Streams, harness.Temporal}
	seeds := []int64{1, 2, 3}
	var cfgs []harness.RunConfig
	var keys []string
	for _, scheme := range schemes {
		for _, seed := range seeds {
			rc, err := goldenConfig(scheme, seed).Build()
			if err != nil {
				t.Fatal(err)
			}
			cfgs = append(cfgs, rc)
			keys = append(keys, goldenKey(scheme, seed))
		}
	}
	for _, par := range dedupInts(1, 2, runtime.NumCPU()) {
		par := par
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			results, err := harness.RunBatch(context.Background(), cfgs, par)
			if err != nil {
				t.Fatal(err)
			}
			for i, res := range results {
				got := wireHash(t, harness.Summarize(res))
				if want := goldenSummaries[keys[i]]; got != want {
					t.Errorf("%s at parallelism %d drifted from the pinned golden hash:\n  got  %s\n  want %s",
						keys[i], par, got, want)
				}
			}
		})
	}
}

// TestRunWireBatchAggregateStable: the multi-seed aggregate (including
// the per-seed summaries riding along under Seeds) is byte-identical at
// every parallelism level.
func TestRunWireBatchAggregateStable(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate sweep runs 3 simulations per parallelism level")
	}
	cfg := goldenConfig(harness.Orion, 1)
	cfg.Seeds = 3
	var want []byte
	for _, par := range dedupInts(1, 2, runtime.NumCPU()) {
		out, err := harness.RunWireBatch(context.Background(), cfg, harness.BatchOptions{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(out.Summary)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = b
			if len(out.Summary.Seeds) != 3 {
				t.Fatalf("aggregate carries %d per-seed summaries, want 3", len(out.Summary.Seeds))
			}
			continue
		}
		if string(b) != string(want) {
			t.Errorf("aggregate at parallelism %d differs from parallelism 1:\n  got  %s\n  want %s", par, b, want)
		}
	}
}

// TestRunWireBatchSingleSeed: a Seeds<=1 config through the batch path
// produces exactly the single-run summary — no aggregate wrapper, no
// Seeds field, same bytes, so the golden wire format is untouched.
func TestRunWireBatchSingleSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2 simulations")
	}
	cfg := goldenConfig(harness.Reef, 2)
	out, err := harness.RunWireBatch(context.Background(), cfg, harness.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := wireHash(t, out.Summary), goldenSummaries[goldenKey(harness.Reef, 2)]; got != want {
		t.Fatalf("single-seed batch drifted from golden hash:\n  got  %s\n  want %s", got, want)
	}
	if out.Summary.Seeds != nil {
		t.Fatal("single-seed batch grew a Seeds field")
	}
}

// TestRunWireBatchCheckpointResume emulates a crash mid-batch in
// process: the checkpoint sink records container checkpoints, then
// starts failing, which aborts the batch exactly like a died worker.
// Resuming from the last durable container must reproduce the
// uninterrupted aggregate byte-for-byte while re-executing only the
// interrupted cells' remainders.
func TestRunWireBatchCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 6+ simulations")
	}
	cfg := goldenConfig(harness.Orion, 1)
	cfg.Seeds = 3

	control, err := harness.RunWireBatch(context.Background(), cfg, harness.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(control.Summary)
	if err != nil {
		t.Fatal(err)
	}

	// Crash run: serial so the sink sees a deterministic capture order;
	// fail after a few captures, keeping the last successful container.
	var last *checkpoint.Checkpoint
	sinks := 0
	boom := errors.New("disk died")
	_, err = harness.RunWireBatch(context.Background(), cfg, harness.BatchOptions{
		Parallelism: 1,
		Checkpoint: &harness.CheckpointConfig{
			Stride: sim.InterruptStride,
			Sink: func(ck *checkpoint.Checkpoint) error {
				sinks++
				if sinks > 40 {
					return boom
				}
				last = ck
				return nil
			},
		},
	})
	if err == nil {
		t.Fatal("crash run unexpectedly succeeded")
	}
	var ce *parallel.CellError
	if !errors.As(err, &ce) || !errors.Is(err, boom) {
		t.Fatalf("crash run error %v, want a CellError wrapping the sink failure", err)
	}
	if last == nil {
		t.Fatal("no container checkpoint was persisted before the crash")
	}

	resumed, err := harness.RunWireBatch(context.Background(), cfg, harness.BatchOptions{
		Checkpoint: &harness.CheckpointConfig{
			Stride: sim.InterruptStride,
			Resume: last,
		},
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	gotJSON, err := json.Marshal(resumed.Summary)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("resumed aggregate differs from uninterrupted control:\n  got  %s\n  want %s", gotJSON, wantJSON)
	}
	if resumed.Replayed == 0 {
		t.Error("resumed batch replayed nothing — the container carried no in-flight cell state")
	}
	if resumed.Replayed >= control.Events {
		t.Errorf("resumed batch replayed %d events, control ran %d total — nothing was skipped",
			resumed.Replayed, control.Events)
	}
}

// TestRunWireBatchRejectsForeignCheckpoint: a single-cell checkpoint is
// not a batch container and must be rejected with a clear error rather
// than resumed into nonsense.
func TestRunWireBatchRejectsForeignCheckpoint(t *testing.T) {
	cfg := goldenConfig(harness.Orion, 1)
	cfg.Seeds = 2
	_, err := harness.RunWireBatch(context.Background(), cfg, harness.BatchOptions{
		Checkpoint: &harness.CheckpointConfig{
			Stride: sim.InterruptStride,
			Resume: &checkpoint.Checkpoint{
				Meta:     checkpoint.Meta{Scheme: "orion", Seed: 1},
				Sections: []checkpoint.Section{{Name: "engine/clock", Data: []byte("x")}},
			},
		},
	})
	if err == nil {
		t.Fatal("foreign checkpoint accepted")
	}
	if want := "unknown section"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func wireHash(t *testing.T, s *harness.Summary) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

func dedupInts(vals ...int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
