package harness

import (
	"testing"

	"orion/internal/core"
	"orion/internal/fault"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

// faultedRunConfig is the shared scenario of the robustness regression
// tests: the faults experiment's topology at a shorter horizon.
func faultedRunConfig(arrivalSeed, faultSeed int64) RunConfig {
	return RunConfig{
		Scheme: Orion,
		Jobs: []JobSpec{
			{Model: workload.ResNet50Inference(), Priority: sched.HighPriority,
				Arrival: Poisson, RPS: 15, Deadline: sim.Millis(8)},
			{Model: workload.MobileNetV2Training(), Priority: sched.BestEffort, Arrival: Closed},
			{Model: workload.ResNet50Training(), Priority: sched.BestEffort, Arrival: Closed},
		},
		Horizon: sim.Seconds(6), Warmup: sim.Seconds(1),
		Seed:        arrivalSeed,
		OrionConfig: &core.Config{SLOGuard: true},
		Faults: &fault.Config{
			Seed:               faultSeed,
			CrashMTBF:          4 * sim.Second,
			LaunchFailMTBF:     sim.Second,
			LaunchFailDuration: 5 * sim.Millisecond,
			AllocFailMTBF:      2 * sim.Second,
			AllocFailDuration:  5 * sim.Millisecond,
		},
	}
}

// Seeded fault runs are bit-identical: same seeds give the same fault
// log, the same scheduler decision log, and the same latency percentiles;
// a different fault seed changes the fault log.
func TestFaultedRunDeterminism(t *testing.T) {
	a, err := Run(faultedRunConfig(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(faultedRunConfig(3, 5))
	if err != nil {
		t.Fatal(err)
	}

	logA := fault.FormatLog(a.Robustness.Events)
	logB := fault.FormatLog(b.Robustness.Events)
	if logA == "" {
		t.Fatal("no faults fired; rates too low for the horizon")
	}
	if logA != logB {
		t.Errorf("same seeds, different fault logs:\n--- run 1\n%s--- run 2\n%s", logA, logB)
	}
	if len(a.Decisions) == 0 || len(a.Decisions) != len(b.Decisions) {
		t.Fatalf("decision logs sized %d vs %d", len(a.Decisions), len(b.Decisions))
	}
	for i := range a.Decisions {
		if a.Decisions[i] != b.Decisions[i] {
			t.Errorf("decision %d differs: %+v vs %+v", i, a.Decisions[i], b.Decisions[i])
			break
		}
	}
	for _, q := range []struct {
		name string
		a, b sim.Duration
	}{
		{"hp p50", a.HP().Stats.Latency.P50(), b.HP().Stats.Latency.P50()},
		{"hp p99", a.HP().Stats.Latency.P99(), b.HP().Stats.Latency.P99()},
	} {
		if q.a != q.b {
			t.Errorf("%s differs: %v vs %v", q.name, q.a, q.b)
		}
	}
	if a.Robustness.DeniedLaunches != b.Robustness.DeniedLaunches ||
		a.Robustness.DeniedAllocs != b.Robustness.DeniedAllocs ||
		a.Robustness.Evictions != b.Robustness.Evictions ||
		a.Robustness.PurgedOps != b.Robustness.PurgedOps ||
		a.Robustness.SchedulerRetries != b.Robustness.SchedulerRetries {
		t.Errorf("robustness counters differ: %+v vs %+v", a.Robustness, b.Robustness)
	}

	c, err := Run(faultedRunConfig(3, 6))
	if err != nil {
		t.Fatal(err)
	}
	if logC := fault.FormatLog(c.Robustness.Events); logC == logA {
		t.Error("different fault seeds produced identical fault logs")
	}
}

// Acceptance: under the default fault mix Orion's high-priority p99 stays
// within 1.2x of the fault-free run, and the crashes leak nothing — every
// queued op of an evicted client is accounted purged, and the evicted
// clients stop costing scheduler work.
func TestOrionP99UnderInjectionWithin1_2x(t *testing.T) {
	cfg := faultedRunConfig(3, 5)
	faults := cfg.Faults
	cfg.Faults = nil
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = faults
	faulted, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cleanP99 := clean.HP().Stats.Latency.P99()
	fltP99 := faulted.HP().Stats.Latency.P99()
	if cleanP99 == 0 || faulted.HP().Stats.Completed == 0 {
		t.Fatal("runs recorded no high-priority latencies")
	}
	if ratio := float64(fltP99) / float64(cleanP99); ratio > 1.2 {
		t.Errorf("hp p99 %.2fms under faults vs %.2fms clean: %.2fx > 1.2x budget",
			fltP99.Millis(), cleanP99.Millis(), ratio)
	}

	rb := faulted.Robustness
	var crashes int
	for _, e := range rb.Events {
		if e.Kind == fault.KindCrash {
			crashes++
		}
	}
	if crashes == 0 {
		t.Fatal("fault mix produced no crash; the leak assertions need one")
	}
	if rb.Evictions != uint64(crashes) {
		t.Errorf("%d crashes but %d evictions; a crash must deregister its client", crashes, rb.Evictions)
	}
	if rb.PurgedOps == 0 {
		t.Error("crashes purged no queued ops; trainers always have work queued")
	}
	if rb.DeniedLaunches == 0 {
		t.Error("no launches denied despite launch-failure windows")
	}
	if rb.SchedulerRetries == 0 {
		t.Error("scheduler recorded no transient retries")
	}
}
