package harness

import (
	"strings"
	"testing"

	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

// MIG slices must show the capacity cost of static partitioning: the
// high-priority job's median rises above both the full-GPU Ideal and
// Orion's shared-device run.
func TestMIGShowsCapacityCost(t *testing.T) {
	hp := JobSpec{Model: workload.ResNet50Inference(), Priority: sched.HighPriority, Arrival: Poisson, RPS: 50}
	be := JobSpec{Model: workload.MobileNetV2Inference(), Priority: sched.BestEffort, Arrival: Uniform, RPS: 100}
	run := func(s Scheme) *Result {
		r, err := Run(RunConfig{
			Scheme: s, Jobs: []JobSpec{hp, be},
			Horizon: sim.Seconds(5), Warmup: sim.Seconds(1), Seed: 11,
		})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		return r
	}
	ideal := run(Ideal).HP().Stats.Latency.P50()
	mig := run(MIG).HP().Stats.Latency.P50()
	orion := run(Orion).HP().Stats.Latency.P50()
	if mig <= ideal {
		t.Errorf("MIG p50 %.2fms <= ideal %.2fms: half-slice cost missing", mig.Millis(), ideal.Millis())
	}
	if orion >= mig {
		t.Errorf("orion p50 %.2fms >= MIG %.2fms: fine-grained sharing should beat static slices", orion.Millis(), mig.Millis())
	}
}

// Graph-granularity best-effort submission must hurt the high-priority
// tail relative to per-kernel interception.
func TestGraphGranularityHurtsTail(t *testing.T) {
	run := func(graph bool) sim.Duration {
		r, err := Run(RunConfig{
			Scheme: Orion,
			Jobs: []JobSpec{
				{Model: workload.ResNet50Inference(), Priority: sched.HighPriority, Arrival: Poisson, RPS: 15},
				{Model: workload.ResNet50Training(), Priority: sched.BestEffort, Arrival: Closed, GraphMode: graph},
			},
			Horizon: sim.Seconds(6), Warmup: sim.Seconds(1), Seed: 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.HP().Stats.Latency.P99()
	}
	kernelP99 := run(false)
	graphP99 := run(true)
	if graphP99 <= kernelP99 {
		t.Errorf("graph-mode p99 %.2fms <= kernel-mode %.2fms; coarse granularity should cost tail latency",
			graphP99.Millis(), kernelP99.Millis())
	}
}

// The swapping experiment: oversubscribed collocation rejected without a
// window, admitted with one, high-priority job keeps most throughput.
func TestSwapWindowAdmitsOversubscribedJob(t *testing.T) {
	hp := JobSpec{Model: workload.ResNet50Training(), Priority: sched.HighPriority, Arrival: Closed}
	be := JobSpec{Model: workload.LLMInference(), Priority: sched.BestEffort, Arrival: Poisson, RPS: 2}
	cfg := RunConfig{
		Scheme: Orion, Jobs: []JobSpec{hp, be},
		Horizon: sim.Seconds(5), Warmup: sim.Seconds(1), Seed: 17,
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("oversubscribed collocation admitted without swapping")
	}
	cfg.Jobs[1].SwapWindow = 8 << 30
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.HP().Stats.Throughput() < 0.7*10.3 {
		t.Errorf("hp training %.2f it/s under swapped partner", r.HP().Stats.Throughput())
	}
	if r.BestEffort()[0].Stats.Completed == 0 {
		t.Error("swapped job made no measured progress")
	}
}

// Determinism must hold for every scheme, not only Orion.
func TestAllSchemesDeterministic(t *testing.T) {
	jobs := []JobSpec{
		{Model: workload.ResNet50Inference(), Priority: sched.HighPriority, Arrival: Apollo, RPS: 30},
		{Model: workload.MobileNetV2Inference(), Priority: sched.BestEffort, Arrival: Uniform, RPS: 60},
	}
	for _, s := range []Scheme{Ideal, Temporal, Streams, MPSScheme, Reef, Orion, MIG} {
		run := func() (sim.Duration, float64) {
			r, err := Run(RunConfig{
				Scheme: s, Jobs: jobs,
				Horizon: sim.Seconds(3), Warmup: sim.Seconds(1), Seed: 23,
			})
			if err != nil {
				t.Fatalf("%s: %v", s, err)
			}
			return r.HP().Stats.Latency.P99(), r.AggregateThroughput()
		}
		p1, t1 := run()
		p2, t2 := run()
		if p1 != p2 || t1 != t2 {
			t.Errorf("%s: nondeterministic (p99 %v vs %v, thr %v vs %v)", s, p1, p2, t1, t2)
		}
	}
}

// The rendered extension outputs carry their headline fields.
func TestExtensionRenders(t *testing.T) {
	for id, want := range map[string]string{
		"mig":      "gpus",
		"graphs":   "granularity",
		"swapping": "swap window",
	} {
		e, err := ByIDExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Run(Options{Quick: true, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(r.Render(), want) {
			t.Errorf("%s render missing %q:\n%s", id, want, r.Render())
		}
	}
}

// §6.2.2: Orion's makespan savings beat MPS's, both beat sequential.
func TestMakespanOrdering(t *testing.T) {
	r, err := Makespan(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := r.(*MakespanResult)
	if m.Orion >= m.Sequential {
		t.Errorf("orion makespan %.1fs >= sequential %.1fs", m.Orion, m.Sequential)
	}
	if m.Orion > m.MPS {
		t.Errorf("orion makespan %.1fs worse than MPS %.1fs (paper: 1.29x vs 1.14x savings)", m.Orion, m.MPS)
	}
	savings := m.Sequential / m.Orion
	if savings < 1.1 || savings > 1.6 {
		t.Errorf("orion savings %.2fx, paper: 1.29x", savings)
	}
}

// The fleet runner executes several GPUs concurrently in one simulation.
func TestRunFleet(t *testing.T) {
	gpus := [][]JobSpec{
		{
			{Model: workload.ResNet50Inference(), Priority: sched.HighPriority, Arrival: Poisson, RPS: 30},
			{Model: workload.MobileNetV2Training(), Priority: sched.BestEffort, Arrival: Closed},
		},
		{
			{Model: workload.BERTInference(), Priority: sched.HighPriority, Arrival: Poisson, RPS: 4},
			{Model: workload.TransformerTraining(), Priority: sched.BestEffort, Arrival: Closed},
		},
	}
	r, err := RunFleet(FleetConfig{
		Scheme: Orion, GPUs: gpus,
		Horizon: sim.Seconds(5), Warmup: sim.Seconds(1), Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerGPU) != 2 {
		t.Fatalf("%d GPUs, want 2", len(r.PerGPU))
	}
	for g := range r.PerGPU {
		for _, j := range r.PerGPU[g].Jobs {
			if j.Stats.Completed == 0 {
				t.Errorf("GPU %d job %s made no progress", g, j.Name)
			}
		}
		if r.PerGPU[g].Utilization.Compute <= 0 {
			t.Errorf("GPU %d reported no utilization", g)
		}
	}
	if len(r.FleetStats()) != 4 {
		t.Fatalf("FleetStats returned %d jobs, want 4", len(r.FleetStats()))
	}
	if r.AggregateThroughput() <= 0 {
		t.Fatal("no aggregate throughput")
	}
}

func TestRunFleetValidation(t *testing.T) {
	if _, err := RunFleet(FleetConfig{Scheme: Orion, Horizon: sim.Seconds(1)}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := RunFleet(FleetConfig{Scheme: Ideal, Horizon: sim.Seconds(1),
		GPUs: [][]JobSpec{{{Model: workload.ResNet50Inference()}}}}); err == nil {
		t.Error("ideal scheme accepted for fleet")
	}
	if _, err := RunFleet(FleetConfig{Scheme: Orion, Horizon: sim.Seconds(1),
		GPUs: [][]JobSpec{{}}}); err == nil {
		t.Error("jobless GPU accepted")
	}
	if _, err := RunFleet(FleetConfig{Scheme: Orion, Horizon: 0,
		GPUs: [][]JobSpec{{{Model: workload.ResNet50Inference()}}}}); err == nil {
		t.Error("zero horizon accepted")
	}
}
