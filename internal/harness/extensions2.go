package harness

import (
	"fmt"
	"strings"

	"orion/internal/gpu"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/trace"
	"orion/internal/workload"
)

// moreExtensions lists the remaining prototype experiments: MIG
// comparison, scheduling-granularity ablation, and layer swapping.
func moreExtensions() []Experiment {
	return []Experiment{
		{"mig", "Static MIG partitioning vs fine-grained sharing (§4)", MIGComparison},
		{"graphs", "Scheduling granularity: per-kernel vs CUDA-graph interception (§7)", GraphGranularity},
		{"swapping", "Layer-by-layer swapping for an oversubscribed best-effort job (§5.1.3)", Swapping},
		{"serving", "Oversubscribed serving: state swap vs layer window (§3, §4)", Serving},
		{"faults", "Fault injection: BE crashes + transient CUDA errors, SLO-guarded degradation", Faults},
		{"seedsweep", "Multi-seed parallel sweep: schemes x seeds on all cores (§7)", SeedSweep},
	}
}

// --- MIG ----------------------------------------------------------------------

// MIGComparison pits static GPU partitioning against fine-grained sharing
// on an inf-inf pair: MIG isolates perfectly but halves every job's
// hardware, so the high-priority job's latency floor rises; Orion keeps
// the full device available to whoever needs it.
func MIGComparison(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(10), sim.Seconds(3))
	hpM := workload.ResNet50Inference()
	beM := workload.MobileNetV2Inference()
	hpRPS, err := trace.RPS(hpM.Name, trace.InfInfPoisson)
	if err != nil {
		return nil, err
	}
	beRPS, err := trace.RPS(beM.Name, trace.InfInfUniform)
	if err != nil {
		return nil, err
	}
	jobs := []JobSpec{
		{Model: hpM, Priority: sched.HighPriority, Arrival: Poisson, RPS: hpRPS},
		{Model: beM, Priority: sched.BestEffort, Arrival: Uniform, RPS: beRPS},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (hp, %g rps poisson) + %s (be, %g rps uniform)\n\n", hpM.ID(), hpRPS, beM.ID(), beRPS)
	fmt.Fprintf(&b, "%-8s %-9s %-10s %-10s %-12s %-6s\n", "scheme", "hp p50", "hp p99", "be p99", "aggregate", "gpus")
	for _, s := range []Scheme{Ideal, MIG, Orion} {
		r, err := Run(RunConfig{
			Scheme: s, Jobs: jobs,
			Horizon: horizon, Warmup: warmup, Seed: opt.Seed,
		})
		if err != nil {
			return nil, err
		}
		gpus := 1
		if s == Ideal {
			gpus = 2
		}
		hp := r.HP()
		be := r.BestEffort()[0]
		fmt.Fprintf(&b, "%-8s %-9.2f %-10.2f %-10.2f %-12.1f %-6d\n",
			s, hp.Stats.Latency.P50().Millis(), hp.Stats.Latency.P99().Millis(),
			be.Stats.Latency.P99().Millis(), r.AggregateThroughput(), gpus)
	}
	b.WriteString("\nMIG slices isolate the jobs but halve each one's SMs and bandwidth;\n")
	b.WriteString("Orion shares the whole device and still protects the high-priority tail.\n")
	return Text(b.String()), nil
}

// --- scheduling granularity -----------------------------------------------------

// GraphGranularity quantifies why Orion intercepts at kernel granularity:
// the same best-effort training job is collocated under Orion, first
// submitting individual kernels (Orion can gate each one), then submitting
// whole iterations as fused CUDA-graph-style units (Orion sees one
// non-preemptible block of work). Coarse granularity destroys the
// high-priority job's tail latency, as §7 argues when discussing CUDA
// graphs.
func GraphGranularity(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(10), sim.Seconds(3))
	hpM := workload.ResNet50Inference()
	beM := workload.ResNet50Training()
	rps, err := trace.RPS(hpM.Name, trace.InfTrainPoisson)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "hp %s (%g rps poisson) + be %s under Orion\n\n", hpM.ID(), rps, beM.ID())
	fmt.Fprintf(&b, "%-24s %-10s %-10s %-10s\n", "be granularity", "hp p50", "hp p99", "be it/s")
	for _, graph := range []bool{false, true} {
		label := "per-kernel (Orion)"
		if graph {
			label = "per-iteration (graph)"
		}
		r, err := Run(RunConfig{
			Scheme: Orion,
			Jobs: []JobSpec{
				{Model: hpM, Priority: sched.HighPriority, Arrival: Poisson, RPS: rps},
				{Model: beM, Priority: sched.BestEffort, Arrival: Closed, GraphMode: graph},
			},
			Horizon: horizon, Warmup: warmup, Seed: opt.Seed,
		})
		if err != nil {
			return nil, err
		}
		hp := r.HP()
		fmt.Fprintf(&b, "%-24s %-10.2f %-10.2f %-10.2f\n",
			label, hp.Stats.Latency.P50().Millis(), hp.Stats.Latency.P99().Millis(),
			r.BestEffort()[0].Stats.Throughput())
	}
	return Text(b.String()), nil
}

// --- swapping -----------------------------------------------------------------

// Swapping reproduces the §5.1.3 plan: a best-effort job whose weights do
// not fit next to the high-priority job (LLM, 12 GB, beside a 5.1 GB
// trainer on a 16 GB card) runs anyway behind the layer-swapping manager,
// while the high-priority job keeps its throughput.
func Swapping(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(10), sim.Seconds(3))
	hpM := workload.ResNet50Training()
	beM := workload.LLMInference()
	window := gpu.V100().MemoryBytes - hpM.WeightsBytes - (1 << 30)

	var b strings.Builder
	fmt.Fprintf(&b, "hp %s (%.1f GB) + be %s (%.1f GB) on a 16 GB V100: %.1f GB over capacity\n",
		hpM.ID(), gbf(hpM.WeightsBytes), beM.ID(), gbf(beM.WeightsBytes),
		gbf(hpM.WeightsBytes+beM.WeightsBytes-gpu.V100().MemoryBytes))

	// Without swapping: the collocation is rejected.
	_, err := Run(RunConfig{
		Scheme: Orion,
		Jobs: []JobSpec{
			{Model: hpM, Priority: sched.HighPriority, Arrival: Closed},
			{Model: beM, Priority: sched.BestEffort, Arrival: Poisson, RPS: 2},
		},
		Horizon: horizon, Warmup: warmup, Seed: opt.Seed,
	})
	if err == nil {
		return nil, fmt.Errorf("swapping: oversubscribed collocation unexpectedly admitted")
	}
	fmt.Fprintf(&b, "without swapping: collocation rejected (%v)\n\n", err)

	hpAlone, err := DedicatedThroughput(
		JobSpec{Model: hpM, Priority: sched.HighPriority, Arrival: Closed},
		gpu.V100(), horizon, warmup, opt.Seed)
	if err != nil {
		return nil, err
	}
	r, err := Run(RunConfig{
		Scheme: Orion,
		Jobs: []JobSpec{
			{Model: hpM, Priority: sched.HighPriority, Arrival: Closed},
			{Model: beM, Priority: sched.BestEffort, Arrival: Poisson, RPS: 2, SwapWindow: window},
		},
		Horizon: horizon, Warmup: warmup, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "with a %.1f GB swap window:\n", gbf(window))
	fmt.Fprintf(&b, "  hp training: %.2f it/s (dedicated %.2f)\n", r.HP().Stats.Throughput(), hpAlone)
	fmt.Fprintf(&b, "  be llm:      %.2f generations/s (PCIe-bound: each request streams its layers in)\n",
		r.BestEffort()[0].Stats.Throughput())
	return Text(b.String()), nil
}

func gbf(b int64) float64 { return float64(b) / (1 << 30) }
