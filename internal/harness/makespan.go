package harness

import (
	"fmt"
	"strings"

	"orion/internal/gpu"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

// MakespanResult is the §6.2.2 job-set completion study: the GPU time
// needed to finish a fixed set of training jobs under sequential
// execution vs collocation.
type MakespanResult struct {
	// Iterations per job (same set in every plan).
	Iterations map[string]float64
	// Seconds of GPU time per plan.
	Sequential float64
	MPS        float64
	Orion      float64
}

// Render prints the §6.2.2 comparison.
func (m *MakespanResult) Render() string {
	var b strings.Builder
	b.WriteString("job set: ")
	first := true
	for id, it := range m.Iterations {
		if !first {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s x%.0f", id, it)
		first = false
	}
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "%-28s %-12s %-10s\n", "plan", "GPU seconds", "savings")
	fmt.Fprintf(&b, "%-28s %-12.1f %-10s\n", "sequential (one at a time)", m.Sequential, "1.00x")
	fmt.Fprintf(&b, "%-28s %-12.1f %.2fx\n", "MPS pairs", m.MPS, m.Sequential/m.MPS)
	fmt.Fprintf(&b, "%-28s %-12.1f %.2fx (paper: 1.29x; MPS: 1.14x)\n",
		"Orion collocation", m.Orion, m.Sequential/m.Orion)
	return b.String()
}

// Makespan reproduces the §6.2.2 cost study: train all five models on one
// GPU. ResNet50, ResNet101 and BERT run as high-priority jobs;
// MobileNetV2 and Transformer as best-effort partners harvesting spare
// capacity. Orion reduces the makespan (and thus cost) versus running the
// jobs sequentially; MPS helps less and hurts the high-priority jobs'
// completion times.
func Makespan(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(10), sim.Seconds(3))

	hpJobs := []struct {
		model *workload.Model
		iters float64
	}{
		{workload.ResNet50Training(), 200},
		{workload.ResNet101Training(), 120},
		{workload.BERTTraining(), 100},
	}
	beJobs := []struct {
		model *workload.Model
		iters float64
	}{
		{workload.MobileNetV2Training(), 240},
		{workload.TransformerTraining(), 120},
	}
	if opt.Quick {
		hpJobs = hpJobs[:1]
		beJobs = beJobs[:1]
	}

	res := &MakespanResult{Iterations: map[string]float64{}}
	dedicated := map[string]float64{}
	for _, j := range hpJobs {
		res.Iterations[j.model.ID()] = j.iters
	}
	for _, j := range beJobs {
		res.Iterations[j.model.ID()] += j.iters
	}
	for id := range res.Iterations {
		m, err := workload.ByID(id)
		if err != nil {
			return nil, err
		}
		thr, err := DedicatedThroughput(
			JobSpec{Model: m, Priority: sched.HighPriority, Arrival: Closed},
			gpu.V100(), horizon, warmup, opt.Seed)
		if err != nil {
			return nil, err
		}
		dedicated[id] = thr
		res.Sequential += res.Iterations[id] / thr
	}

	// Collocation plans: pair each high-priority job with a best-effort
	// partner round-robin; leftovers finish dedicated.
	plan := func(scheme Scheme) (float64, error) {
		remaining := map[string]float64{}
		for _, b := range beJobs {
			remaining[b.model.ID()] = b.iters
		}
		var total float64
		for i, h := range hpJobs {
			partner := beJobs[i%len(beJobs)]
			r, err := Run(RunConfig{
				Scheme: scheme,
				Jobs: []JobSpec{
					{Model: h.model, Priority: sched.HighPriority, Arrival: Closed},
					{Model: partner.model, Priority: sched.BestEffort, Arrival: Closed},
				},
				Horizon: horizon, Warmup: warmup, Seed: opt.Seed,
			})
			if err != nil {
				return 0, err
			}
			hpRate := r.HP().Stats.Throughput()
			if hpRate <= 0 {
				return 0, fmt.Errorf("makespan: %s starved under %s", h.model.ID(), scheme)
			}
			span := h.iters / hpRate
			harvested := r.BestEffort()[0].Stats.Throughput() * span
			if left := remaining[partner.model.ID()]; harvested > left {
				harvested = left
			}
			remaining[partner.model.ID()] -= harvested
			total += span
		}
		for id, left := range remaining {
			if left > 0 {
				total += left / dedicated[id]
			}
		}
		return total, nil
	}

	var err error
	if res.MPS, err = plan(MPSScheme); err != nil {
		return nil, err
	}
	if res.Orion, err = plan(Orion); err != nil {
		return nil, err
	}
	return res, nil
}
