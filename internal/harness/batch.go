package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"orion/internal/checkpoint"
	"orion/internal/parallel"
)

// RunBatch executes independent simulation cells on a bounded worker
// pool and returns the results in cell order. Each worker owns one
// pooled Arena reused across the cells it claims (engine Reset + RNG
// Reseed make arena runs bit-identical to fresh-engine runs), so the
// merged results — and anything rendered from them — are byte-identical
// to running the cells serially, at any parallelism. Parallelism <= 0
// means GOMAXPROCS. On failure the error wraps *parallel.CellError
// identifying the lowest-indexed failed cell.
func RunBatch(ctx context.Context, cfgs []RunConfig, parallelism int) ([]*Result, error) {
	res, _, err := RunBatchTimed(ctx, cfgs, parallelism)
	return res, err
}

// RunBatchTimed is RunBatch plus the per-cell wall-clock durations, in
// cell order — the benchmark suite reports their max/min ratio as
// scheduling skew.
func RunBatchTimed(ctx context.Context, cfgs []RunConfig, parallelism int) ([]*Result, []time.Duration, error) {
	durs := make([]time.Duration, len(cfgs))
	results, err := parallel.Map(ctx, parallelism, len(cfgs), NewArena,
		func(ctx context.Context, i int, a *Arena) (*Result, error) {
			cfg := cfgs[i]
			if cfg.Arena == nil {
				cfg.Arena = a
			}
			start := time.Now()
			r, err := RunContext(ctx, cfg)
			durs[i] = time.Since(start)
			return r, err
		})
	if err != nil {
		return nil, nil, err
	}
	return results, durs, nil
}

// --- multi-seed wire batches ------------------------------------------------

// buildBatchCells expands a wire Config with Seeds = N into N runnable
// cells at consecutive seeds, plus each cell's own canonical wire config
// (Seeds/Parallelism cleared) for stamping into per-cell checkpoints.
func buildBatchCells(c Config) ([]RunConfig, []json.RawMessage, error) {
	n := c.Seeds
	if n <= 0 {
		n = 1
	}
	base := c.Seed
	if base == 0 {
		base = DefaultSeed
	}
	rcs := make([]RunConfig, n)
	wires := make([]json.RawMessage, n)
	for i := range rcs {
		ci := c
		ci.Seed = base + int64(i)
		ci.Seeds = 0
		ci.Parallelism = 0
		rc, err := ci.Build()
		if err != nil {
			return nil, nil, err
		}
		rcs[i] = rc
		w, err := json.Marshal(ci)
		if err != nil {
			return nil, nil, err
		}
		wires[i] = w
	}
	return rcs, wires, nil
}

// SummarizeBatch folds per-seed summaries (in seed order) into one
// aggregate: latency/throughput/utilization fields are the mean across
// seeds, request and verdict counts are totals, and the inputs ride
// along under Seeds. Everything is computed in fixed seed order, so the
// aggregate is bit-deterministic regardless of how the cells were
// scheduled. A single-element batch returns its summary unchanged.
func SummarizeBatch(seeds []*Summary) *Summary {
	if len(seeds) == 1 {
		return seeds[0]
	}
	n := float64(len(seeds))
	agg := &Summary{Scheme: seeds[0].Scheme, Seeds: seeds}
	for j := range seeds[0].Jobs {
		js := JobSummary{Name: seeds[0].Jobs[j].Name, Priority: seeds[0].Jobs[j].Priority}
		for _, s := range seeds {
			sj := s.Jobs[j]
			js.Completed += sj.Completed
			js.Failed += sj.Failed
			js.TimedOut += sj.TimedOut
			js.Retried += sj.Retried
			js.ThroughputRPS += sj.ThroughputRPS
			js.P50Ms += sj.P50Ms
			js.P95Ms += sj.P95Ms
			js.P99Ms += sj.P99Ms
			js.MeanMs += sj.MeanMs
			js.DedicatedMs += sj.DedicatedMs
		}
		js.ThroughputRPS /= n
		js.P50Ms /= n
		js.P95Ms /= n
		js.P99Ms /= n
		js.MeanMs /= n
		js.DedicatedMs /= n
		agg.Jobs = append(agg.Jobs, js)
	}
	for _, s := range seeds {
		agg.Utilization.SMBusy += s.Utilization.SMBusy
		agg.Utilization.Compute += s.Utilization.Compute
		agg.Utilization.MemBW += s.Utilization.MemBW
		agg.Utilization.MemCapacity += s.Utilization.MemCapacity
		for k, v := range s.Verdicts {
			if agg.Verdicts == nil {
				agg.Verdicts = map[string]uint64{}
			}
			agg.Verdicts[k] += v
		}
	}
	agg.Utilization.SMBusy /= n
	agg.Utilization.Compute /= n
	agg.Utilization.MemBW /= n
	agg.Utilization.MemCapacity /= n
	return agg
}

// BatchOptions configures RunWireBatch.
type BatchOptions struct {
	// Parallelism overrides Config.Parallelism when positive.
	Parallelism int
	// Progress receives per-cell stage strings ("seed 43: simulate").
	// Cells run concurrently, so the callback must be safe for
	// concurrent use.
	Progress func(stage string)
	// Checkpoint makes the batch resumable. Sink receives container
	// checkpoints holding every cell's state (see batchCkpt); Resume
	// takes a previously sunk container: finished cells restore their
	// recorded summaries without re-executing, in-flight cells replay
	// only their own prefix and re-execute their own remainder.
	Checkpoint *CheckpointConfig
}

// BatchOutcome is what a multi-seed batch produces.
type BatchOutcome struct {
	// Summary is the cross-seed aggregate; Summary.Seeds holds the
	// per-seed summaries in seed order.
	Summary *Summary
	// Events is the total of every cell's engine events (for cells
	// restored from a checkpoint: the events their original run
	// processed). Replayed totals the events cells re-executed to reach
	// their resume cursors.
	Events   uint64
	Replayed uint64
}

// RunWireBatch expands a wire Config's Seeds into independent cells,
// fans them out with RunBatch semantics, and folds the results with
// SummarizeBatch. Output is bit-identical at every parallelism level; a
// Config with Seeds <= 1 degenerates to a single cell whose summary is
// exactly the single-run one.
func RunWireBatch(ctx context.Context, c Config, opt BatchOptions) (*BatchOutcome, error) {
	rcs, wires, err := buildBatchCells(c)
	if err != nil {
		return nil, err
	}
	n := len(rcs)

	var bk *batchCkpt
	if cc := opt.Checkpoint; cc != nil {
		bk = &batchCkpt{
			scheme: string(c.Scheme), seed: rcs[0].Seed, cfgJSON: cc.Config,
			stride: cc.Stride, sink: cc.Sink,
			latest: make([]*checkpoint.Checkpoint, n),
			done:   make([]*batchCellDone, n),
			cells:  make([]*checkpoint.Checkpoint, n),
		}
		if cc.Resume != nil {
			if err := bk.decode(cc.Resume, c.Scheme, n); err != nil {
				return nil, err
			}
		}
	}

	par := opt.Parallelism
	if par <= 0 {
		par = c.Parallelism
	}
	outcomes := make([]*batchCellDone, n)
	_, err = parallel.Map(ctx, par, n, NewArena, func(ctx context.Context, i int, a *Arena) (struct{}, error) {
		if bk != nil {
			if d := bk.doneCell(i); d != nil {
				outcomes[i] = d
				return struct{}{}, nil
			}
		}
		rc := rcs[i]
		if rc.Arena == nil {
			rc.Arena = a
		}
		if opt.Progress != nil {
			seed := rc.Seed
			rc.Progress = func(stage string) { opt.Progress(fmt.Sprintf("seed %d: %s", seed, stage)) }
		}
		if bk != nil {
			rc.Checkpoint = &CheckpointConfig{
				Stride: bk.stride,
				Config: wires[i],
				Resume: bk.resumeCell(i),
				Sink:   bk.cellSink(i),
			}
		}
		res, err := RunContext(ctx, rc)
		if err != nil {
			return struct{}{}, err
		}
		d := &batchCellDone{Summary: Summarize(res), Events: res.Events, Replayed: res.Replayed}
		outcomes[i] = d
		if bk != nil {
			if err := bk.finish(i, d); err != nil {
				return struct{}{}, fmt.Errorf("harness: batch checkpoint sink: %w", err)
			}
		}
		return struct{}{}, nil
	})
	if err != nil {
		return nil, err
	}

	sums := make([]*Summary, n)
	out := &BatchOutcome{}
	for i, d := range outcomes {
		sums[i] = d.Summary
		out.Events += d.Events
		out.Replayed += d.Replayed
	}
	out.Summary = SummarizeBatch(sums)
	return out, nil
}

// --- batch checkpoint container ---------------------------------------------

// batchCellDone records one finished cell inside a batch checkpoint: the
// cell's full summary plus its event counts, so a resumed batch restores
// the cell without re-executing a single event.
type batchCellDone struct {
	Summary  *Summary `json:"summary"`
	Events   uint64   `json:"events"`
	Replayed uint64   `json:"replayed"`
}

// batchCkpt folds per-cell checkpoints into one container checkpoint —
// the on-disk unit of batch resumability. The container's sections are
// "cell/NNNNN" (an in-flight cell's own serialized checkpoint: its
// cursor covers only that cell's prefix) and "done/NNNNN" (a finished
// cell's recorded outcome). Every sink call persists the whole batch
// state, so whichever container was durable last names, per cell,
// exactly what a resume may skip.
type batchCkpt struct {
	mu      sync.Mutex
	scheme  string
	seed    int64 // base seed
	cfgJSON json.RawMessage
	stride  uint64
	sink    func(*checkpoint.Checkpoint) error
	latest  []*checkpoint.Checkpoint // in-flight cells' newest checkpoints
	done    []*batchCellDone         // finished cells
	cells   []*checkpoint.Checkpoint // resume checkpoints from a prior container
}

// decode splits a container checkpoint back into per-cell resume state.
func (b *batchCkpt) decode(ck *checkpoint.Checkpoint, scheme Scheme, n int) error {
	if ck.Meta.Scheme != "" && ck.Meta.Scheme != string(scheme) {
		return fmt.Errorf("harness: batch checkpoint is for scheme %q, run is %q", ck.Meta.Scheme, scheme)
	}
	if ck.Meta.Seed != 0 && ck.Meta.Seed != b.seed {
		return fmt.Errorf("harness: batch checkpoint base seed %d, run base seed %d", ck.Meta.Seed, b.seed)
	}
	for _, s := range ck.Sections {
		var i int
		switch {
		case strings.HasPrefix(s.Name, "done/"):
			if _, err := fmt.Sscanf(s.Name, "done/%d", &i); err != nil || i < 0 || i >= n {
				return fmt.Errorf("harness: batch checkpoint section %q does not name a cell in [0,%d)", s.Name, n)
			}
			var d batchCellDone
			if err := json.Unmarshal(s.Data, &d); err != nil {
				return fmt.Errorf("harness: batch checkpoint section %q: %w", s.Name, err)
			}
			b.done[i] = &d
		case strings.HasPrefix(s.Name, "cell/"):
			if _, err := fmt.Sscanf(s.Name, "cell/%d", &i); err != nil || i < 0 || i >= n {
				return fmt.Errorf("harness: batch checkpoint section %q does not name a cell in [0,%d)", s.Name, n)
			}
			cell, err := checkpoint.Read(bytes.NewReader(s.Data))
			if err != nil {
				return fmt.Errorf("harness: batch checkpoint section %q: %w", s.Name, err)
			}
			b.cells[i] = cell
		default:
			return fmt.Errorf("harness: batch checkpoint has unknown section %q (not a batch container?)", s.Name)
		}
	}
	return nil
}

func (b *batchCkpt) doneCell(i int) *batchCellDone {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.done[i]
}

func (b *batchCkpt) resumeCell(i int) *checkpoint.Checkpoint {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cells[i]
}

// cellSink wraps the batch sink for one cell: each per-cell capture
// updates the cell's slot and persists the whole container. A sink
// error propagates — the cell (and with it the batch) must not outrun
// its durability guarantee.
func (b *batchCkpt) cellSink(i int) func(*checkpoint.Checkpoint) error {
	if b.sink == nil {
		return nil
	}
	return func(ck *checkpoint.Checkpoint) error {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.latest[i] = ck
		return b.sinkLocked()
	}
}

// finish records a finished cell and persists the container so a crash
// after this point never re-executes the cell.
func (b *batchCkpt) finish(i int, d *batchCellDone) error {
	if b.sink == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.done[i] = d
	b.latest[i] = nil
	return b.sinkLocked()
}

func (b *batchCkpt) sinkLocked() error {
	ck := &checkpoint.Checkpoint{Meta: checkpoint.Meta{
		Scheme: b.scheme, Seed: b.seed, Config: b.cfgJSON,
	}}
	for i := range b.latest {
		if d := b.done[i]; d != nil {
			data, err := json.Marshal(d)
			if err != nil {
				return err
			}
			ck.Sections = append(ck.Sections, checkpoint.Section{Name: fmt.Sprintf("done/%05d", i), Data: data})
			ck.Meta.Cursor += d.Events
			continue
		}
		if c := b.latest[i]; c != nil {
			var buf bytes.Buffer
			if err := checkpoint.Write(&buf, c); err != nil {
				return err
			}
			ck.Sections = append(ck.Sections, checkpoint.Section{Name: fmt.Sprintf("cell/%05d", i), Data: buf.Bytes()})
			ck.Meta.Cursor += c.Meta.Cursor
			if c.Meta.Clock > ck.Meta.Clock {
				ck.Meta.Clock = c.Meta.Clock
			}
		}
	}
	return b.sink(ck)
}
