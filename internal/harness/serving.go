package harness

import (
	"fmt"
	"strings"

	"orion/internal/gpu"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

// Serving synthesizes the two memory-pressure mechanisms: a
// high-priority trainer must share one 16 GB V100 with an LLM scorer
// whose weights push the set ~1.1 GB past device memory (§3's
// limited-sharing regime). Three deployments are compared:
//
//   - temporal sharing with Gandiva/Salus-style state swapping: the set
//     fits by swapping whole models on context switches, but every switch
//     moves ~17 GB over PCIe, stretching the trainer's iterations;
//   - Orion with the layer-swapping window (§5.1.3) on the LLM: the
//     trainer's state stays resident, the LLM streams its layers through
//     the leftover window, and the fine-grained policy keeps the trainer
//     near its dedicated throughput;
//   - the dedicated reference (two GPUs).
func Serving(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(12), sim.Seconds(3))
	trn := workload.ResNet50Training() // 5.1 GB, throughput-critical
	llm := workload.LLMInference()     // 12 GB, offline scoring

	hp := JobSpec{Model: trn, Priority: sched.HighPriority, Arrival: Closed}
	be := JobSpec{Model: llm, Priority: sched.BestEffort, Arrival: Poisson, RPS: 2}

	over := trn.WeightsBytes + llm.WeightsBytes - gpu.V100().MemoryBytes
	var b strings.Builder
	fmt.Fprintf(&b, "trainer %s + %s scorer: %.1f GB over a 16 GB V100\n\n",
		trn.ID(), llm.ID(), float64(over)/(1<<30))
	fmt.Fprintf(&b, "%-26s %-12s %-14s %-12s %-6s\n",
		"deployment", "train it/s", "iter p99(ms)", "llm gen/s", "gpus")

	type row struct {
		name string
		cfg  RunConfig
		gpus int
	}
	window := gpu.V100().MemoryBytes - trn.WeightsBytes - (1 << 30)
	beSwapped := be
	beSwapped.SwapWindow = window
	rows := []row{
		{"dedicated (2 GPUs)", RunConfig{Scheme: Ideal, Jobs: []JobSpec{hp, be},
			Horizon: horizon, Warmup: warmup, Seed: opt.Seed}, 2},
		{"temporal + state swap", RunConfig{Scheme: Temporal, Jobs: []JobSpec{hp, be},
			Horizon: horizon, Warmup: warmup, Seed: opt.Seed, TemporalSwapStates: true}, 1},
		{"orion + layer window", RunConfig{Scheme: Orion, Jobs: []JobSpec{hp, beSwapped},
			Horizon: horizon, Warmup: warmup, Seed: opt.Seed}, 1},
	}
	if opt.Quick {
		rows = rows[1:]
	}
	for _, r := range rows {
		res, err := Run(r.cfg)
		if err != nil {
			return nil, fmt.Errorf("serving/%s: %w", r.name, err)
		}
		h := res.HP()
		fmt.Fprintf(&b, "%-26s %-12.2f %-14.0f %-12.2f %-6d\n",
			r.name, h.Stats.Throughput(), h.Stats.Latency.P99().Millis(),
			res.BestEffort()[0].Stats.Throughput(), r.gpus)
	}
	b.WriteString("\nTemporal sharing admits the set via state swapping but, granting the\n")
	b.WriteString("closed-loop trainer strictly first, never runs the scorer — and each\n")
	b.WriteString("grant it did make would move ~17 GB over PCIe. The layer window keeps\n")
	b.WriteString("the trainer resident and streams only the scorer's layers.\n")
	return Text(b.String()), nil
}
