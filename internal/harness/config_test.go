package harness

import (
	"context"
	"strings"
	"testing"

	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

func TestConfigFromSimFlags(t *testing.T) {
	cases := []struct {
		name  string
		flags SimFlags
		check func(t *testing.T, c Config)
	}{
		{
			name: "basic orion hp+be",
			flags: SimFlags{
				Scheme: "orion", HP: "resnet50-inf", HPArrival: "poisson", HPRPS: 15,
				BE: "resnet50-train", Device: "v100", Horizon: 10, Warmup: 2, Seed: 42,
			},
			check: func(t *testing.T, c Config) {
				if c.Scheme != Orion {
					t.Errorf("scheme = %q", c.Scheme)
				}
				if len(c.Jobs) != 2 {
					t.Fatalf("jobs = %d, want 2", len(c.Jobs))
				}
				if c.Jobs[0].Workload != "resnet50-inf" || c.Jobs[0].Priority != "hp" ||
					c.Jobs[0].Arrival != "poisson" || c.Jobs[0].RPS != 15 {
					t.Errorf("hp job = %+v", c.Jobs[0])
				}
				if c.Jobs[1].Workload != "resnet50-train" || c.Jobs[1].Priority != "be" ||
					c.Jobs[1].Arrival != "closed" {
					t.Errorf("be job = %+v", c.Jobs[1])
				}
				if c.Horizon != 10*sim.Second || c.Warmup != 2*sim.Second || c.Seed != 42 {
					t.Errorf("horizon/warmup/seed = %v/%v/%d", c.Horizon, c.Warmup, c.Seed)
				}
			},
		},
		{
			name: "be list parsing trims and skips empties",
			flags: SimFlags{
				Scheme: "reef", HP: "resnet101-inf",
				BE: " mobilenetv2-train , ,bert-train ",
			},
			check: func(t *testing.T, c Config) {
				if len(c.Jobs) != 3 {
					t.Fatalf("jobs = %d, want 3", len(c.Jobs))
				}
				if c.Jobs[1].Workload != "mobilenetv2-train" || c.Jobs[2].Workload != "bert-train" {
					t.Errorf("be jobs = %+v %+v", c.Jobs[1], c.Jobs[2])
				}
			},
		},
		{
			name: "faults flag maps to default fault mix",
			flags: SimFlags{
				Scheme: "orion", HP: "resnet50-inf", Faults: true, FaultSeed: 7,
			},
			check: func(t *testing.T, c Config) {
				if !c.DefaultFaults || c.FaultSeed != 7 {
					t.Errorf("faults = %v seed %d", c.DefaultFaults, c.FaultSeed)
				}
			},
		},
		{
			name: "preloaded hp model survives",
			flags: SimFlags{
				Scheme: "ideal", HPModel: workload.ResNet50Inference(),
			},
			check: func(t *testing.T, c Config) {
				if c.Jobs[0].Model == nil || c.Jobs[0].Workload != "" {
					t.Errorf("hp job = %+v", c.Jobs[0])
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { c.check(t, ConfigFromSimFlags(c.flags)) })
	}
}

func TestConfigBuild(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string
		check   func(t *testing.T, rc RunConfig)
	}{
		{
			name: "defaults applied",
			cfg: Config{
				Scheme: Orion,
				Jobs:   []JobConfig{{Workload: "resnet50-inf", Priority: "hp"}},
			},
			check: func(t *testing.T, rc RunConfig) {
				if rc.Horizon != DefaultHorizon || rc.Warmup != DefaultWarmup || rc.Seed != DefaultSeed {
					t.Errorf("defaults: horizon=%v warmup=%v seed=%d", rc.Horizon, rc.Warmup, rc.Seed)
				}
				if rc.Device.Name != "V100" && !strings.Contains(strings.ToLower(rc.Device.Name), "v100") {
					t.Errorf("device = %q, want a V100", rc.Device.Name)
				}
				if rc.Jobs[0].Priority != sched.HighPriority {
					t.Errorf("priority = %v", rc.Jobs[0].Priority)
				}
			},
		},
		{
			name: "default faults filled in",
			cfg: Config{
				Scheme:        Reef,
				Jobs:          []JobConfig{{Workload: "resnet50-inf", Priority: "hp"}},
				DefaultFaults: true,
			},
			check: func(t *testing.T, rc RunConfig) {
				if rc.Faults == nil {
					t.Fatal("faults not filled in")
				}
				if rc.Faults.Seed != DefaultFaultSeed {
					t.Errorf("fault seed = %d", rc.Faults.Seed)
				}
				want := DefaultFaultConfig(DefaultFaultSeed)
				if *rc.Faults != *want {
					t.Errorf("faults = %+v, want default mix %+v", rc.Faults, want)
				}
			},
		},
		{
			name:    "unknown scheme",
			cfg:     Config{Scheme: "fifo", Jobs: []JobConfig{{Workload: "resnet50-inf"}}},
			wantErr: "unknown scheme",
		},
		{
			name:    "no jobs",
			cfg:     Config{Scheme: Orion},
			wantErr: "no jobs",
		},
		{
			name: "unknown workload",
			cfg: Config{
				Scheme: Orion,
				Jobs:   []JobConfig{{Workload: "gpt5-inf"}},
			},
			wantErr: "unknown id",
		},
		{
			name: "unknown arrival",
			cfg: Config{
				Scheme: Orion,
				Jobs:   []JobConfig{{Workload: "resnet50-inf", Arrival: "bursty"}},
			},
			wantErr: "unknown arrival",
		},
		{
			name: "open loop needs rps",
			cfg: Config{
				Scheme: Orion,
				Jobs:   []JobConfig{{Workload: "resnet50-inf", Arrival: "poisson"}},
			},
			wantErr: "needs rps",
		},
		{
			name: "unknown device",
			cfg: Config{
				Scheme: Orion,
				Device: "h100",
				Jobs:   []JobConfig{{Workload: "resnet50-inf"}},
			},
			wantErr: "unknown device",
		},
		{
			name: "unknown priority",
			cfg: Config{
				Scheme: Orion,
				Jobs:   []JobConfig{{Workload: "resnet50-inf", Priority: "urgent"}},
			},
			wantErr: "unknown priority",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rc, err := c.cfg.Build()
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if c.check != nil {
				c.check(t, rc)
			}
		})
	}

	t.Run("explicit faults win over default flag", func(t *testing.T) {
		explicit := DefaultFaultConfig(99)
		rc, err := (Config{
			Scheme:        Orion,
			Jobs:          []JobConfig{{Workload: "resnet50-inf", Priority: "hp"}},
			DefaultFaults: true,
			FaultSeed:     3,
			Faults:        explicit,
		}).Build()
		if err != nil {
			t.Fatal(err)
		}
		if rc.Faults.Seed != 99 {
			t.Errorf("fault seed = %d, want explicit 99", rc.Faults.Seed)
		}
		if rc.Faults == explicit {
			t.Error("Build must copy the fault config, not alias the caller's")
		}
	})
}

func TestParseConfigRejectsUnknownFields(t *testing.T) {
	_, err := ParseConfig(strings.NewReader(`{"scheme":"orion","jobz":[]}`))
	if err == nil {
		t.Fatal("want error for unknown field")
	}
}

func TestParseConfigDurationStrings(t *testing.T) {
	c, err := ParseConfig(strings.NewReader(`{
		"scheme": "orion",
		"horizon": "4s",
		"warmup": "1s",
		"jobs": [{"workload": "resnet50-inf", "priority": "hp", "deadline": "5ms"}],
		"faults": {"seed": 2, "crash_mtbf": "8s", "launch_fail_mtbf": "2s", "launch_fail_duration": "5ms"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Horizon != 4*sim.Second || c.Warmup != 1*sim.Second {
		t.Errorf("horizon/warmup = %v/%v", c.Horizon, c.Warmup)
	}
	if c.Jobs[0].Deadline != 5*sim.Millisecond {
		t.Errorf("deadline = %v", c.Jobs[0].Deadline)
	}
	if c.Faults == nil || c.Faults.CrashMTBF != 8*sim.Second || c.Faults.LaunchFailDuration != 5*sim.Millisecond {
		t.Errorf("faults = %+v", c.Faults)
	}
}

// TestWireMatchesDirect is the determinism contract the serving layer
// relies on: building a RunConfig from the wire and running it produces
// bit-identical results to a hand-built RunConfig with the same seeds.
func TestWireMatchesDirect(t *testing.T) {
	wire := Config{
		Scheme:  Orion,
		Horizon: 2 * sim.Second,
		Warmup:  500 * sim.Millisecond,
		Seed:    7,
		Jobs: []JobConfig{
			{Workload: "resnet50-inf", Priority: "hp", Arrival: "poisson", RPS: 40},
			{Workload: "mobilenetv2-train", Priority: "be"},
		},
	}
	viaWire, err := RunWire(context.Background(), wire)
	if err != nil {
		t.Fatal(err)
	}

	hp, err := workload.ByID("resnet50-inf")
	if err != nil {
		t.Fatal(err)
	}
	be, err := workload.ByID("mobilenetv2-train")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(RunConfig{
		Scheme: Orion, Horizon: 2 * sim.Second, Warmup: 500 * sim.Millisecond, Seed: 7,
		Jobs: []JobSpec{
			{Model: hp, Priority: sched.HighPriority, Arrival: Poisson, RPS: 40},
			{Model: be, Priority: sched.BestEffort, Arrival: Closed},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	a, b := Summarize(viaWire), Summarize(direct)
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Errorf("job %d differs:\nwire:   %+v\ndirect: %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
	if a.Utilization != b.Utilization {
		t.Errorf("utilization differs: %+v vs %+v", a.Utilization, b.Utilization)
	}
}
