package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"orion/internal/gpu"
	"orion/internal/kernels"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/viz"
	"orion/internal/workload"
)

// Experiment is a named, runnable reproduction of one of the paper's
// tables or figures.
type Experiment struct {
	// ID is the experiment identifier (e.g. "fig6", "table4").
	ID string
	// Title describes what the paper artifact shows.
	Title string
	// Quick reduces horizons/model counts for fast smoke runs.
	Run func(opt Options) (Rendered, error)
}

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks horizons and sweeps for smoke testing; the full
	// configuration reproduces the paper's setup.
	Quick bool
	// Seed randomizes arrivals deterministically.
	Seed int64
	// Parallelism bounds the worker pool the sweep-shaped experiments
	// fan their independent cells out on; zero means GOMAXPROCS. Any
	// value renders byte-identical output (see internal/parallel).
	Parallelism int
}

// Rendered is a displayable experiment result.
type Rendered interface {
	// Render returns the paper-style rows/series as text.
	Render() string
}

// Text is a plain pre-rendered result.
type Text string

// Render implements Rendered.
func (t Text) Render() string { return string(t) }

// horizons returns (horizon, warmup) for an experiment given Quick mode.
func (o Options) horizons(full, quick sim.Duration) (sim.Duration, sim.Duration) {
	h := full
	if o.Quick {
		h = quick
	}
	return h, h / 5
}

// Registry lists all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "GPU utilization trace of a MobileNetV2 training iteration", Figure1},
		{"table1", "Average GPU utilization for the ten DNN workloads", Table1},
		{"fig2", "Throughput of existing collocation techniques vs Ideal", Figure2},
		{"table2", "Toy kernel collocation: Conv2d/BN2d pairs", Table2},
		{"fig4", "Compute- vs memory-intensive kernel mix per workload", Figure4},
		{"fig6", "Inference-Training (Apollo trace): p99 latency and throughput", Figure6},
		{"fig7", "Inference-Training (Poisson): p99 latency and throughput", Figure7},
		{"fig8", "Compute-throughput utilization: inference alone vs collocated", Figure8},
		{"fig9", "Memory-bandwidth utilization: inference alone vs collocated", Figure9},
		{"fig10", "Training-Training: aggregate throughput per scheme", Figure10},
		{"table4", "Cost savings of inf-train collocation with Orion", Table4},
		{"fig11", "Inference-Inference (Apollo): p99 of the high-priority model", Figure11},
		{"fig12", "Inference-Inference (Poisson): p99 of the high-priority model", Figure12},
		{"fig13", "A100, 1 high-priority + 4 best-effort inference clients", Figure13},
		{"fig14", "Policy ablation: which parts of Orion matter", Figure14},
		{"makespan", "Job-set makespan: sequential vs MPS vs Orion (§6.2.2)", Makespan},
		{"durthresh", "DUR_THRESHOLD sensitivity (§6.4)", DurThresholdSensitivity},
		{"overhead", "Kernel-launch interception overhead (§6.5)", Overhead},
	}
}

// FullRegistry lists the paper experiments plus the §7 extension
// prototypes (LLM collocation, cluster placement).
func FullRegistry() []Experiment {
	out := append(Registry(), extensionRegistry()...)
	return append(out, moreExtensions()...)
}

// ByIDExperiment finds an experiment by id, searching the paper set and
// the §7 extensions.
func ByIDExperiment(id string) (Experiment, error) {
	for _, e := range FullRegistry() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range FullRegistry() {
		ids = append(ids, e.ID)
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// --- Figure 1: utilization trace -------------------------------------------

// TraceResult is a resampled utilization time series.
type TraceResult struct {
	Label   string
	Bucket  sim.Duration
	Samples []gpu.UtilSample
	AvgComp float64
	AvgMem  float64
}

// Render prints a sparkline panel and the bucketized series.
func (r *TraceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (bucket %v)\n", r.Label, r.Bucket)
	comp := make([]float64, len(r.Samples))
	mem := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		comp[i] = s.Compute * 100
		mem[i] = s.MemBW * 100
	}
	panel := viz.TimeSeries{
		Rows: []viz.TimeSeriesRow{
			{Name: "compute%", Values: comp},
			{Name: "membw%", Values: mem},
		},
	}
	b.WriteString(panel.Render())
	fmt.Fprintf(&b, "%-10s %-10s %-10s\n", "t(ms)", "compute%", "membw%")
	for _, s := range r.Samples {
		fmt.Fprintf(&b, "%-10.2f %-10.1f %-10.1f\n",
			float64(s.Start)/1e6, s.Compute*100, s.MemBW*100)
	}
	fmt.Fprintf(&b, "avg compute %.1f%%  avg membw %.1f%%\n", r.AvgComp*100, r.AvgMem*100)
	return b.String()
}

// Figure1 reproduces the bursty utilization trace of a MobileNetV2
// training run on a dedicated GPU, at the paper's batch size 96 (the
// recipe is calibrated at 64 and rescaled).
func Figure1(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(3), sim.Seconds(1))
	model, err := workload.MobileNetV2Training().WithBatch(96)
	if err != nil {
		return nil, err
	}
	r, err := Run(RunConfig{
		Scheme: Ideal,
		Jobs: []JobSpec{{
			Model: model, Priority: sched.HighPriority, Arrival: Closed,
		}},
		Horizon: horizon, Warmup: warmup, Seed: opt.Seed, Tracing: true,
	})
	if err != nil {
		return nil, err
	}
	bucket := sim.Millis(2)
	from := sim.Time(warmup)
	to := sim.Time(warmup + 160*sim.Millisecond) // ~2 iterations
	samples := gpu.ResampleTrace(r.Trace, from, to, bucket)
	return &TraceResult{
		Label:   "MobileNetV2 training (batch 96), dedicated V100 (Figure 1)",
		Bucket:  bucket,
		Samples: samples,
		AvgComp: r.Utilization.Compute,
		AvgMem:  r.Utilization.MemBW,
	}, nil
}

// --- Table 1: per-workload utilization -------------------------------------

// Table1Row is one workload's measured utilization averages.
type Table1Row struct {
	Workload string
	Batch    int
	SMBusy   float64
	Compute  float64
	MemBW    float64
	MemCap   float64
}

// Table1Result is the full utilization table.
type Table1Result struct{ Rows []Table1Row }

// Render prints the Table 1 layout.
func (t *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-6s %-10s %-12s %-10s %-10s\n",
		"workload", "batch", "SMbusy%", "compute%", "membw%", "memcap%")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-20s %-6d %-10.0f %-12.0f %-10.0f %-10.0f\n",
			r.Workload, r.Batch, r.SMBusy*100, r.Compute*100, r.MemBW*100, r.MemCap*100)
	}
	return b.String()
}

// Table1 measures average utilization of each workload running without
// stalls on a dedicated V100.
func Table1(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(4), sim.Seconds(1))
	models := workload.Catalog()
	if opt.Quick {
		models = []*workload.Model{workload.ResNet50Inference(), workload.ResNet50Training()}
	}
	cfgs := make([]RunConfig, len(models))
	for i, m := range models {
		cfgs[i] = RunConfig{
			Scheme:  Ideal,
			Jobs:    []JobSpec{{Model: m, Priority: sched.HighPriority, Arrival: Closed}},
			Horizon: horizon, Warmup: warmup, Seed: opt.Seed,
		}
	}
	results, err := RunBatch(context.Background(), cfgs, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	var out Table1Result
	for i, m := range models {
		u := results[i].Utilization
		out.Rows = append(out.Rows, Table1Row{
			Workload: m.ID(), Batch: m.Batch,
			SMBusy: u.SMBusy, Compute: u.Compute, MemBW: u.MemBW, MemCap: u.MemCapacity,
		})
	}
	return &out, nil
}

// --- Table 2: toy kernel collocation ----------------------------------------

// Table2Row is one kernel-pair measurement.
type Table2Row struct {
	Pair       string
	Sequential sim.Duration
	Collocated sim.Duration
	Speedup    float64
}

// Table2Result is the toy experiment table.
type Table2Result struct{ Rows []Table2Row }

// Render prints the Table 2 layout.
func (t *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-12s %-12s %-8s\n", "kernel pair", "sequential", "collocated", "speedup")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-16s %-12.2f %-12.2f %.2fx\n",
			r.Pair, r.Sequential.Millis(), r.Collocated.Millis(), r.Speedup)
	}
	return b.String()
}

// toyConv is the paper's Conv2d toy kernel: 1.35 ms, saturates the SMs,
// 89% compute / 20% memory-bandwidth utilization.
func toyConv(id int) *kernels.Descriptor {
	return &kernels.Descriptor{
		ID: id, Name: "conv2d", Op: kernels.OpKernel,
		Launch:   kernels.LaunchConfig{Blocks: 2560, ThreadsPerBlock: 256, RegsPerThread: 64},
		Duration: sim.Millis(1.35), ComputeUtil: 0.89, MemBWUtil: 0.20,
	}
}

// toyBN is the paper's BN2d toy kernel: 0.93 ms, 40% of SMs, 14% compute /
// 80% memory bandwidth.
func toyBN(id int) *kernels.Descriptor {
	return &kernels.Descriptor{
		ID: id, Name: "bn2d", Op: kernels.OpKernel,
		Launch:   kernels.LaunchConfig{Blocks: 128, ThreadsPerBlock: 512, RegsPerThread: 32},
		Duration: sim.Millis(0.93), ComputeUtil: 0.14, MemBWUtil: 0.80,
	}
}

// Table2 measures sequential vs collocated execution of the Conv2d/BN2d
// kernel pairs on the device model.
func Table2(Options) (Rendered, error) {
	pairs := []struct {
		name string
		a, b *kernels.Descriptor
	}{
		{"Conv2d-Conv2d", toyConv(0), toyConv(1)},
		{"BN2d-BN2d", toyBN(0), toyBN(1)},
		{"Conv2d-BN2d", toyConv(0), toyBN(1)},
	}
	var out Table2Result
	for _, p := range pairs {
		seq, err := runToy(p.a, p.b, false)
		if err != nil {
			return nil, err
		}
		col, err := runToy(p.a, p.b, true)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table2Row{
			Pair: p.name, Sequential: seq, Collocated: col,
			Speedup: float64(seq) / float64(col),
		})
	}
	return &out, nil
}

// ToyPairTime runs two toy kernels ("conv" or "bn") on a device of the
// given spec, sequentially or collocated, returning the makespan — the
// Table 2 measurement exposed for the interference-model ablation benches.
func ToyPairTime(spec gpu.Spec, a, b string, collocate bool) (sim.Duration, error) {
	pick := func(name string, id int) (*kernels.Descriptor, error) {
		switch name {
		case "conv":
			return toyConv(id), nil
		case "bn":
			return toyBN(id), nil
		default:
			return nil, fmt.Errorf("harness: unknown toy kernel %q", name)
		}
	}
	ka, err := pick(a, 0)
	if err != nil {
		return 0, err
	}
	kb, err := pick(b, 1)
	if err != nil {
		return 0, err
	}
	return runToyOn(spec, ka, kb, collocate)
}

func runToy(a, b *kernels.Descriptor, collocate bool) (sim.Duration, error) {
	return runToyOn(gpu.V100(), a, b, collocate)
}

func runToyOn(spec gpu.Spec, a, b *kernels.Descriptor, collocate bool) (sim.Duration, error) {
	eng := sim.NewEngine()
	dev, err := gpu.NewDevice(eng, spec)
	if err != nil {
		return 0, err
	}
	s1 := dev.CreateStream(0)
	s2 := s1
	if collocate {
		s2 = dev.CreateStream(0)
	}
	var last sim.Time
	done := func(at sim.Time) {
		if at > last {
			last = at
		}
	}
	if err := dev.Submit(s1, gpu.NewKernelTask(a, done)); err != nil {
		return 0, err
	}
	if err := dev.Submit(s2, gpu.NewKernelTask(b, done)); err != nil {
		return 0, err
	}
	eng.Run()
	return sim.Duration(last), nil
}

// --- Figure 4: kernel classification ----------------------------------------

// Fig4Row is one workload's kernel-profile census.
type Fig4Row struct {
	Workload string
	Compute  int
	Memory   int
	Unknown  int
	MinDur   sim.Duration
	MaxDur   sim.Duration
}

// Fig4Result is the kernel classification census.
type Fig4Result struct{ Rows []Fig4Row }

// Render prints per-workload kernel class counts and duration ranges.
func (f *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-9s %-8s %-9s %-12s %-12s\n",
		"workload", "compute", "memory", "unknown", "min(us)", "max(us)")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-20s %-9d %-8d %-9d %-12.0f %-12.0f\n",
			r.Workload, r.Compute, r.Memory, r.Unknown, r.MinDur.Micros(), r.MaxDur.Micros())
	}
	return b.String()
}

// Figure4 classifies every workload's kernels by roofline profile.
func Figure4(opt Options) (Rendered, error) {
	var out Fig4Result
	for _, m := range workload.Catalog() {
		p, err := ProfileFor(m, gpu.V100())
		if err != nil {
			return nil, err
		}
		row := Fig4Row{Workload: m.ID(), MinDur: 1 << 62}
		for _, k := range p.Kernels {
			if k.Duration == 0 {
				continue
			}
			switch k.Class {
			case kernels.ProfileCompute:
				row.Compute++
			case kernels.ProfileMemory:
				row.Memory++
			default:
				row.Unknown++
			}
			if k.Duration < row.MinDur {
				row.MinDur = k.Duration
			}
			if k.Duration > row.MaxDur {
				row.MaxDur = k.Duration
			}
		}
		out.Rows = append(out.Rows, row)
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i].Workload < out.Rows[j].Workload })
	return &out, nil
}
