package harness

import (
	"context"
	"fmt"

	"orion/internal/gpu"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

// EvalJob is one resident of a device in a fleet placement evaluation:
// a catalog workload plus its wire priority ("hp" or "be").
type EvalJob struct {
	Workload string `json:"workload"`
	Priority string `json:"priority,omitempty"`
}

// EvalConfig describes a per-device interference evaluation for the
// fleet placer: the device the fleet bound jobs to (any gpu.Spec,
// including MIG slices — not just the named v100/a100 wire devices)
// and the resident job set. The zero values of Scheme/Horizon/Warmup/
// Seed select Orion and the harness defaults, so a fleet evaluation
// with equal inputs is bit-identical across processes.
type EvalConfig struct {
	Device  gpu.Spec
	Scheme  Scheme
	Jobs    []EvalJob
	Horizon sim.Duration
	Warmup  sim.Duration
	Seed    int64
}

// EvalPlacement runs the resident job set of one fleet device through
// the per-device simulator and returns the wire Summary the fleet API
// reports for that device. All jobs run closed-loop: the fleet layer
// asks "how do these residents interfere at saturation", not "does this
// arrival rate meet its SLO" — the latter stays with /v1/experiments.
func EvalPlacement(ctx context.Context, cfg EvalConfig) (*Summary, error) {
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("harness: eval placement: no jobs")
	}
	rc := RunConfig{
		Scheme:  cfg.Scheme,
		Device:  cfg.Device,
		Horizon: cfg.Horizon,
		Warmup:  cfg.Warmup,
		Seed:    cfg.Seed,
	}
	if rc.Scheme == "" {
		rc.Scheme = Orion
	}
	if !validScheme(rc.Scheme) {
		return nil, fmt.Errorf("harness: eval placement: unknown scheme %q", rc.Scheme)
	}
	if rc.Horizon == 0 {
		rc.Horizon = DefaultHorizon
	}
	if rc.Warmup == 0 {
		rc.Warmup = DefaultWarmup
	}
	if rc.Seed == 0 {
		rc.Seed = DefaultSeed
	}
	hp := 0
	for i, ej := range cfg.Jobs {
		m, err := workload.ByID(ej.Workload)
		if err != nil {
			return nil, fmt.Errorf("harness: eval placement job %d: %w", i, err)
		}
		prio, err := ParsePriority(ej.Priority)
		if err != nil {
			return nil, fmt.Errorf("harness: eval placement job %d: %w", i, err)
		}
		if prio == sched.HighPriority {
			hp++
		}
		rc.Jobs = append(rc.Jobs, JobSpec{Model: m, Priority: prio, Arrival: Closed})
	}
	// The fleet placer guarantees at most one high-priority resident per
	// device (the Orion leaf scheduler serves exactly one HP client);
	// catch violations here so a placement bug fails loudly instead of
	// surfacing as an opaque Register error mid-simulation.
	if rc.Scheme == Orion && hp > 1 {
		return nil, fmt.Errorf("harness: eval placement: %d high-priority residents on one device (orion serves at most 1)", hp)
	}
	r, err := RunContext(ctx, rc)
	if err != nil {
		return nil, err
	}
	return Summarize(r), nil
}
