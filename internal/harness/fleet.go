package harness

import (
	"fmt"

	"orion/internal/cudart"
	"orion/internal/gpu"
	"orion/internal/metrics"
	"orion/internal/profiler"
	"orion/internal/sched"
	"orion/internal/sim"
)

// FleetConfig runs several GPUs inside one simulation: each GPU hosts its
// own scheduler instance over its own job set — how Orion deploys in a
// cluster (one scheduler per device, §5) under a cluster manager that
// decided the placement (§7).
type FleetConfig struct {
	// Scheme is the per-GPU scheduling backend (Ideal is meaningless
	// here; each GPU is already dedicated to its job set).
	Scheme Scheme
	// Device is the per-GPU spec (zero value: V100).
	Device gpu.Spec
	// GPUs holds one job set per device.
	GPUs    [][]JobSpec
	Horizon sim.Duration
	Warmup  sim.Duration
	Seed    int64
}

// FleetResult aggregates per-GPU outcomes.
type FleetResult struct {
	// PerGPU holds each device's job results and utilization.
	PerGPU []Result
}

// AggregateThroughput sums throughput across the fleet.
func (f *FleetResult) AggregateThroughput() float64 {
	var t float64
	for i := range f.PerGPU {
		t += f.PerGPU[i].AggregateThroughput()
	}
	return t
}

// RunFleet executes every GPU's job set concurrently on one engine.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	if len(cfg.GPUs) == 0 {
		return nil, fmt.Errorf("harness: fleet needs at least one GPU")
	}
	if cfg.Horizon <= 0 || cfg.Warmup < 0 || cfg.Warmup >= cfg.Horizon {
		return nil, fmt.Errorf("harness: bad fleet horizon/warmup %v/%v", cfg.Horizon, cfg.Warmup)
	}
	if cfg.Device.Name == "" {
		cfg.Device = gpu.V100()
	}
	if cfg.Scheme == Ideal || cfg.Scheme == MIG {
		return nil, fmt.Errorf("harness: fleet scheme must be a sharing backend, got %q", cfg.Scheme)
	}

	eng := sim.NewEngine()
	eng.MaxEvents = 4_000_000_000
	master := sim.NewRand(cfg.Seed + 31)

	out := &FleetResult{}
	var devices []*gpu.Device
	var drivers [][]*sched.Driver
	for g, jobs := range cfg.GPUs {
		if len(jobs) == 0 {
			return nil, fmt.Errorf("harness: GPU %d has no jobs", g)
		}
		dev, err := gpu.NewDevice(eng, cfg.Device)
		if err != nil {
			return nil, err
		}
		devices = append(devices, dev)
		ctx := cudart.NewContext(dev)

		profiles := map[string]*profiler.Profile{}
		runCfg := RunConfig{Scheme: cfg.Scheme, Device: cfg.Device}
		for _, j := range jobs {
			if j.Model == nil {
				return nil, fmt.Errorf("harness: GPU %d job without model", g)
			}
			p, err := ProfileFor(j.Model, cfg.Device)
			if err != nil {
				return nil, err
			}
			profiles[j.Model.ID()] = p
		}
		backend, err := makeBackend(runCfg, eng, ctx, profiles)
		if err != nil {
			return nil, err
		}

		var gpuDrivers []*sched.Driver
		res := Result{Scheme: cfg.Scheme}
		for ji, j := range jobs {
			cl, err := backend.Register(sched.ClientConfig{
				Name: j.Model.ID(), Priority: j.Priority, Model: j.Model,
			})
			if err != nil {
				return nil, fmt.Errorf("harness: GPU %d: %w", g, err)
			}
			arr, err := arrivalsFor(j, master.Split(fmt.Sprintf("gpu%d-job%d", g, ji)))
			if err != nil {
				return nil, err
			}
			d, err := sched.NewDriver(sched.DriverConfig{
				Engine: eng, Client: cl, Model: j.Model, Arrivals: arr,
				Horizon: sim.Time(cfg.Horizon), Warmup: cfg.Warmup,
			})
			if err != nil {
				return nil, err
			}
			gpuDrivers = append(gpuDrivers, d)
			res.Jobs = append(res.Jobs, JobResult{
				Name:             j.Model.ID(),
				Priority:         j.Priority,
				DedicatedLatency: profiles[j.Model.ID()].RequestLatency,
			})
		}
		backend.Start()
		drivers = append(drivers, gpuDrivers)
		out.PerGPU = append(out.PerGPU, res)
	}

	for _, gpuDrivers := range drivers {
		for _, d := range gpuDrivers {
			if err := d.Start(); err != nil {
				return nil, err
			}
		}
	}
	eng.At(sim.Time(cfg.Warmup), func() {
		for _, d := range devices {
			d.ResetUtilization()
		}
	})
	eng.RunUntil(sim.Time(cfg.Horizon))

	for g := range out.PerGPU {
		for ji := range out.PerGPU[g].Jobs {
			out.PerGPU[g].Jobs[ji].Stats = drivers[g][ji].Stats()
		}
		out.PerGPU[g].Utilization = devices[g].Utilization()
	}
	return out, nil
}

// FleetStats flattens every job's stats across the fleet.
func (f *FleetResult) FleetStats() []*metrics.JobStats {
	var out []*metrics.JobStats
	for i := range f.PerGPU {
		for j := range f.PerGPU[i].Jobs {
			out = append(out, f.PerGPU[i].Jobs[j].Stats)
		}
	}
	return out
}
