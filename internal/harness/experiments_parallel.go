package harness

import (
	"context"
	"fmt"
	"strings"
	"time"

	"orion/internal/parallel"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

// SeedSweepCell is one (scheme, seed) point of the multi-seed sweep.
type SeedSweepCell struct {
	Scheme Scheme
	Seed   int64
	HPp99  sim.Duration
	HPThr  float64
	Wall   time.Duration
}

// SeedSweepResult is the schemes × seeds grid plus batch timing.
type SeedSweepResult struct {
	Schemes     []Scheme
	SeedsPer    int
	Parallelism int
	Cells       []SeedSweepCell
	Wall        time.Duration
}

// Render prints per-scheme mean ± spread of the high-priority p99
// across seeds, then the batch timing line the benchmark scrapes.
func (r *SeedSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-seed sweep: %d schemes x %d seeds on %d workers\n\n",
		len(r.Schemes), r.SeedsPer, parallel.Workers(r.Parallelism))
	fmt.Fprintf(&b, "%-10s %-14s %-14s %-14s %-12s\n",
		"scheme", "p99 mean(ms)", "p99 min(ms)", "p99 max(ms)", "hp thr(r/s)")
	for _, s := range r.Schemes {
		var sum, thr float64
		lo, hi := sim.Duration(1<<62), sim.Duration(0)
		var n int
		for _, c := range r.Cells {
			if c.Scheme != s {
				continue
			}
			sum += c.HPp99.Millis()
			thr += c.HPThr
			if c.HPp99 < lo {
				lo = c.HPp99
			}
			if c.HPp99 > hi {
				hi = c.HPp99
			}
			n++
		}
		if n == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s %-14.2f %-14.2f %-14.2f %-12.2f\n",
			s, sum/float64(n), lo.Millis(), hi.Millis(), thr/float64(n))
	}
	fmt.Fprintf(&b, "\n%d cells in %v (%.1f cells/s)\n",
		len(r.Cells), r.Wall.Round(time.Millisecond),
		float64(len(r.Cells))/r.Wall.Seconds())
	return b.String()
}

// SeedSweepCells builds the sweep's canonical cell list: every scheme at
// every consecutive seed of the standard collocation shape (Poisson
// ResNet50 inference against closed-loop MobileNetV2 training — the
// golden-suite scenario). Exposed so the SweepParallel benchmark and the
// serial-vs-parallel equivalence suite run the exact same cells.
func SeedSweepCells(schemes []Scheme, seeds int, baseSeed int64, horizon, warmup sim.Duration) []RunConfig {
	var cfgs []RunConfig
	for _, s := range schemes {
		for i := 0; i < seeds; i++ {
			cfgs = append(cfgs, RunConfig{
				Scheme: s,
				Jobs: []JobSpec{
					{Model: workload.ResNet50Inference(), Priority: sched.HighPriority, Arrival: Poisson, RPS: 20},
					{Model: workload.MobileNetV2Training(), Priority: sched.BestEffort, Arrival: Closed},
				},
				Horizon: horizon, Warmup: warmup, Seed: baseSeed + int64(i),
			})
		}
	}
	return cfgs
}

// SeedSweep runs the schemes × seeds grid through the parallel batch
// runner — the §7 scaling prototype behind the SweepParallel benchmark.
// Results merge in canonical cell order, so the per-scheme grid is
// byte-identical at every parallelism; only the trailing wall-clock
// line varies run to run.
func SeedSweep(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(4), sim.Seconds(1))
	schemes := []Scheme{Orion, Reef, Streams, Temporal}
	seeds := 3
	if opt.Quick {
		schemes = schemes[:2]
		seeds = 2
	}
	cfgs := SeedSweepCells(schemes, seeds, opt.Seed, horizon, warmup)
	start := time.Now()
	results, durs, err := RunBatchTimed(context.Background(), cfgs, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	out := &SeedSweepResult{
		Schemes: schemes, SeedsPer: seeds, Parallelism: opt.Parallelism,
		Wall: time.Since(start),
	}
	for i, r := range results {
		out.Cells = append(out.Cells, SeedSweepCell{
			Scheme: cfgs[i].Scheme, Seed: cfgs[i].Seed,
			HPp99: r.HP().Stats.Latency.P99(), HPThr: r.HP().Stats.Throughput(),
			Wall: durs[i],
		})
	}
	return out, nil
}
