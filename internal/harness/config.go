package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"orion/internal/core"
	"orion/internal/fault"
	"orion/internal/gpu"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

// Defaults applied by Config.Build when the corresponding field is zero.
const (
	DefaultHorizon   = 10 * sim.Second
	DefaultWarmup    = 2 * sim.Second
	DefaultSeed      = 42
	DefaultFaultSeed = 1
)

// JobConfig is the wire-level description of one client in a collocation
// run: a JSON-friendly mirror of JobSpec that names the workload by
// catalog ID instead of holding a built model.
type JobConfig struct {
	// Workload is the workload catalog ID ("resnet50-inf"; see
	// workload.ByID / orion-profile -list).
	Workload string `json:"workload"`
	// Priority is "hp" (aliases "high", "high-priority") or "be"
	// (aliases "best-effort", and the default when empty).
	Priority string `json:"priority,omitempty"`
	// Arrival is "closed" (default), "poisson", "uniform" or "apollo".
	Arrival string `json:"arrival,omitempty"`
	// RPS is the open-loop request rate; required for non-closed arrivals.
	RPS float64 `json:"rps,omitempty"`
	// Deadline is the per-request latency SLO ("5ms"-style strings or
	// nanosecond integers on the wire); zero disables deadline tracking.
	Deadline sim.Duration `json:"deadline,omitempty"`
	// GraphMode submits each request as one fused CUDA-graph-style unit.
	GraphMode bool `json:"graph_mode,omitempty"`
	// SwapWindow, when positive, runs the job behind the layer-swapping
	// manager with this resident-weight byte budget.
	SwapWindow int64 `json:"swap_window,omitempty"`
	// Model, when non-nil, overrides Workload with an already-built model
	// (the -hp-file path of cmd/orion-sim). Never crosses the wire.
	Model *workload.Model `json:"-"`
}

// Config is the wire-level description of one collocation run: what a
// client POSTs to orion-serve and what cmd/orion-sim builds from its
// flags. Config carries only serializable data — workload IDs, device
// names, policy knobs — and Build resolves it into a runnable RunConfig.
type Config struct {
	// Scheme selects the sharing technique (see AllSchemes, plus "mig").
	Scheme Scheme `json:"scheme"`
	// Device is "v100" (default) or "a100".
	Device string `json:"device,omitempty"`
	// Jobs lists the collocated clients.
	Jobs []JobConfig `json:"jobs"`
	// Horizon and Warmup bound the simulation ("10s"-style strings or
	// nanosecond integers); zero selects DefaultHorizon / DefaultWarmup.
	Horizon sim.Duration `json:"horizon,omitempty"`
	Warmup  sim.Duration `json:"warmup,omitempty"`
	// Seed drives the arrival processes; zero selects DefaultSeed.
	Seed int64 `json:"seed,omitempty"`
	// Orion overrides the Orion scheduler's policy knobs (ablations).
	Orion *core.Config `json:"orion,omitempty"`
	// ReefQueueDepth overrides REEF's software queue depth.
	ReefQueueDepth int `json:"reef_queue_depth,omitempty"`
	// TemporalSwapStates enables state swapping in the temporal backend.
	TemporalSwapStates bool `json:"temporal_swap_states,omitempty"`
	// Faults runs the experiment under explicit fault-injection options.
	Faults *fault.Config `json:"faults,omitempty"`
	// DefaultFaults enables the standard robustness fault mix
	// (DefaultFaultConfig) seeded by FaultSeed; ignored when Faults is
	// set explicitly.
	DefaultFaults bool `json:"default_faults,omitempty"`
	// FaultSeed seeds DefaultFaults; zero selects DefaultFaultSeed.
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// Seeds, when > 1, runs the same scenario at Seeds consecutive seeds
	// (Seed, Seed+1, ...) as one batch: per-seed cells fan out across the
	// worker pool and the summary carries the per-seed results plus a
	// deterministic aggregate (see RunWireBatch). Zero or one means a
	// single run, and the field stays off the wire (omitempty) so
	// single-run summaries and golden hashes are unchanged.
	Seeds int `json:"seeds,omitempty"`
	// Parallelism bounds the batch worker pool; zero means GOMAXPROCS.
	// Any value yields bit-identical output — the knob trades wall-clock
	// for cores, never determinism.
	Parallelism int `json:"parallelism,omitempty"`
}

// MaxBatchSeeds bounds Config.Seeds so one wire submission cannot ask a
// server for an unbounded amount of work.
const MaxBatchSeeds = 512

// ParseConfig strictly decodes a wire Config from JSON: unknown fields
// are rejected so that a typoed knob fails loudly instead of silently
// running the default experiment.
func ParseConfig(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("harness: decode config: %w", err)
	}
	return c, nil
}

// ParsePriority maps a wire priority string to sched.Priority.
func ParsePriority(s string) (sched.Priority, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "be", "best-effort", "besteffort", "low":
		return sched.BestEffort, nil
	case "hp", "high", "high-priority", "highpriority":
		return sched.HighPriority, nil
	default:
		return 0, fmt.Errorf("harness: unknown priority %q (want hp or be)", s)
	}
}

// ParseArrival maps a wire arrival string to an ArrivalKind.
func ParseArrival(s string) (ArrivalKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "closed":
		return Closed, nil
	case "poisson":
		return Poisson, nil
	case "uniform":
		return Uniform, nil
	case "apollo":
		return Apollo, nil
	default:
		return 0, fmt.Errorf("harness: unknown arrival %q (want closed, poisson, uniform or apollo)", s)
	}
}

// ParseDevice maps a wire device name to its spec.
func ParseDevice(s string) (gpu.Spec, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "v100":
		return gpu.V100(), nil
	case "a100":
		return gpu.A100(), nil
	default:
		return gpu.Spec{}, fmt.Errorf("harness: unknown device %q (want v100 or a100)", s)
	}
}

// validScheme reports whether s names a scheme Build can construct.
func validScheme(s Scheme) bool {
	switch s {
	case Ideal, Temporal, Streams, MPSScheme, Reef, TickTock, Orion, MIG:
		return true
	}
	return false
}

// Build resolves a wire Config into a runnable RunConfig: workload IDs
// are looked up in the catalog, the device and arrival names are parsed,
// and defaults are applied. The resulting RunConfig runs through the
// exact same Run path as a hand-built one, so an orion-serve submission
// and a direct library call with equal seeds produce bit-identical
// results.
func (c Config) Build() (RunConfig, error) {
	if !validScheme(c.Scheme) {
		return RunConfig{}, fmt.Errorf("harness: unknown scheme %q", c.Scheme)
	}
	if len(c.Jobs) == 0 {
		return RunConfig{}, fmt.Errorf("harness: config has no jobs")
	}
	if c.Seeds < 0 || c.Seeds > MaxBatchSeeds {
		return RunConfig{}, fmt.Errorf("harness: seeds %d out of range [0,%d]", c.Seeds, MaxBatchSeeds)
	}
	if c.Parallelism < 0 {
		return RunConfig{}, fmt.Errorf("harness: negative parallelism %d", c.Parallelism)
	}
	spec, err := ParseDevice(c.Device)
	if err != nil {
		return RunConfig{}, err
	}
	rc := RunConfig{
		Scheme:             c.Scheme,
		Device:             spec,
		Horizon:            c.Horizon,
		Warmup:             c.Warmup,
		Seed:               c.Seed,
		OrionConfig:        c.Orion,
		ReefQueueDepth:     c.ReefQueueDepth,
		TemporalSwapStates: c.TemporalSwapStates,
	}
	if rc.Horizon == 0 {
		rc.Horizon = DefaultHorizon
	}
	if rc.Warmup == 0 {
		rc.Warmup = DefaultWarmup
	}
	if rc.Seed == 0 {
		rc.Seed = DefaultSeed
	}
	for i, jc := range c.Jobs {
		m := jc.Model
		if m == nil {
			if jc.Workload == "" {
				return RunConfig{}, fmt.Errorf("harness: job %d has no workload", i)
			}
			m, err = workload.ByID(jc.Workload)
			if err != nil {
				return RunConfig{}, err
			}
		}
		prio, err := ParsePriority(jc.Priority)
		if err != nil {
			return RunConfig{}, fmt.Errorf("job %d: %w", i, err)
		}
		arr, err := ParseArrival(jc.Arrival)
		if err != nil {
			return RunConfig{}, fmt.Errorf("job %d: %w", i, err)
		}
		if arr != Closed && jc.RPS <= 0 {
			return RunConfig{}, fmt.Errorf("harness: job %d: open-loop arrival %q needs rps > 0", i, jc.Arrival)
		}
		if jc.Deadline < 0 {
			return RunConfig{}, fmt.Errorf("harness: job %d: negative deadline", i)
		}
		rc.Jobs = append(rc.Jobs, JobSpec{
			Model:      m,
			Priority:   prio,
			Arrival:    arr,
			RPS:        jc.RPS,
			GraphMode:  jc.GraphMode,
			SwapWindow: jc.SwapWindow,
			Deadline:   jc.Deadline,
		})
	}
	switch {
	case c.Faults != nil:
		fc := *c.Faults // copy: Run mutates Engine/Horizon
		rc.Faults = &fc
	case c.DefaultFaults:
		seed := c.FaultSeed
		if seed == 0 {
			seed = DefaultFaultSeed
		}
		rc.Faults = DefaultFaultConfig(seed)
	}
	return rc, nil
}

// RunWire builds and runs a wire Config in one call. The context cancels
// the run mid-simulation (see RunContext); pass context.Background() for
// an unbounded run.
func RunWire(ctx context.Context, c Config) (*Result, error) {
	rc, err := c.Build()
	if err != nil {
		return nil, err
	}
	return RunContext(ctx, rc)
}

// --- cmd/orion-sim flag mapping --------------------------------------------

// SimFlags holds cmd/orion-sim's parsed flag values, decoupled from the
// flag package so the flags→Config mapping is a pure, testable function.
type SimFlags struct {
	Scheme    string
	HP        string // high-priority workload ID ("" when HPModel is set)
	HPArrival string
	HPRPS     float64
	BE        string // comma-separated best-effort workload IDs
	Device    string
	Horizon   float64 // simulated seconds
	Warmup    float64
	Seed      int64
	Faults    bool
	FaultSeed int64
	// Seeds > 1 runs the scenario at that many consecutive seeds as one
	// batch; Parallelism bounds the batch worker pool (0 = GOMAXPROCS).
	Seeds       int
	Parallelism int
	// HPModel overrides HP with a pre-loaded trace model (-hp-file).
	HPModel *workload.Model
}

// ConfigFromSimFlags maps orion-sim flag values onto a wire Config. It is
// pure — no file or catalog I/O — so every flag combination is testable;
// semantic validation (unknown scheme, missing rps, bad workload ID)
// happens in Config.Build, shared with the JSON path.
func ConfigFromSimFlags(f SimFlags) Config {
	c := Config{
		Scheme:        Scheme(f.Scheme),
		Device:        f.Device,
		Horizon:       sim.Seconds(f.Horizon),
		Warmup:        sim.Seconds(f.Warmup),
		Seed:          f.Seed,
		DefaultFaults: f.Faults,
		FaultSeed:     f.FaultSeed,
		Parallelism:   f.Parallelism,
	}
	if f.Seeds > 1 {
		c.Seeds = f.Seeds
	}
	c.Jobs = append(c.Jobs, JobConfig{
		Workload: f.HP,
		Model:    f.HPModel,
		Priority: "hp",
		Arrival:  f.HPArrival,
		RPS:      f.HPRPS,
	})
	for _, id := range strings.Split(f.BE, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		c.Jobs = append(c.Jobs, JobConfig{Workload: id, Priority: "be", Arrival: "closed"})
	}
	return c
}

// --- result summaries -------------------------------------------------------

// JobSummary is the wire-level rendering of one JobResult.
type JobSummary struct {
	Name          string  `json:"name"`
	Priority      string  `json:"priority"`
	Completed     int     `json:"completed"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MeanMs        float64 `json:"mean_ms"`
	DedicatedMs   float64 `json:"dedicated_ms"`
	Failed        int     `json:"failed,omitempty"`
	TimedOut      int     `json:"timed_out,omitempty"`
	Retried       int     `json:"retried,omitempty"`
}

// UtilSummary is the wire-level rendering of the device utilization report.
type UtilSummary struct {
	SMBusy      float64 `json:"sm_busy"`
	Compute     float64 `json:"compute"`
	MemBW       float64 `json:"mem_bw"`
	MemCapacity float64 `json:"mem_capacity"`
}

// RobustnessSummary is the wire-level rendering of a RobustnessReport.
type RobustnessSummary struct {
	Events           []string `json:"events,omitempty"`
	DeniedLaunches   uint64   `json:"denied_launches"`
	DeniedAllocs     uint64   `json:"denied_allocs"`
	Evictions        uint64   `json:"evictions,omitempty"`
	PurgedOps        uint64   `json:"purged_ops,omitempty"`
	SchedulerRetries uint64   `json:"scheduler_retries,omitempty"`
}

// Summary is the wire-level rendering of a Result: everything a serving
// client needs (percentiles, throughput, utilization, verdicts,
// robustness counters) with latencies flattened to milliseconds, since
// raw per-request samples stay server-side.
type Summary struct {
	Scheme      Scheme             `json:"scheme"`
	Jobs        []JobSummary       `json:"jobs"`
	Utilization UtilSummary        `json:"utilization"`
	Verdicts    map[string]uint64  `json:"verdicts,omitempty"`
	Robustness  *RobustnessSummary `json:"robustness,omitempty"`
	// Seeds carries the per-seed summaries of a multi-seed batch, in
	// seed order; the outer fields then hold the cross-seed aggregate
	// (see SummarizeBatch). Empty — and off the wire — for single runs,
	// which keeps the golden summary hashes unchanged.
	Seeds []*Summary `json:"seeds,omitempty"`
}

// Summarize flattens a Result for the wire.
func Summarize(r *Result) *Summary {
	s := &Summary{
		Scheme: r.Scheme,
		Utilization: UtilSummary{
			SMBusy:      r.Utilization.SMBusy,
			Compute:     r.Utilization.Compute,
			MemBW:       r.Utilization.MemBW,
			MemCapacity: r.Utilization.MemCapacity,
		},
		Verdicts: r.Verdicts,
	}
	for i := range r.Jobs {
		j := &r.Jobs[i]
		s.Jobs = append(s.Jobs, JobSummary{
			Name:          j.Name,
			Priority:      j.Priority.String(),
			Completed:     j.Stats.Completed,
			ThroughputRPS: j.Stats.Throughput(),
			P50Ms:         j.Stats.Latency.P50().Millis(),
			P95Ms:         j.Stats.Latency.P95().Millis(),
			P99Ms:         j.Stats.Latency.P99().Millis(),
			MeanMs:        j.Stats.Latency.Mean().Millis(),
			DedicatedMs:   j.DedicatedLatency.Millis(),
			Failed:        j.Stats.Failed,
			TimedOut:      j.Stats.TimedOut,
			Retried:       j.Stats.Retried,
		})
	}
	if rb := r.Robustness; rb != nil {
		rs := &RobustnessSummary{
			DeniedLaunches:   rb.DeniedLaunches,
			DeniedAllocs:     rb.DeniedAllocs,
			Evictions:        rb.Evictions,
			PurgedOps:        rb.PurgedOps,
			SchedulerRetries: rb.SchedulerRetries,
		}
		for _, e := range rb.Events {
			rs.Events = append(rs.Events, e.String())
		}
		s.Robustness = rs
	}
	return s
}
