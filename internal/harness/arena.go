package harness

import "orion/internal/sim"

// Arena is a reusable bundle of per-run scratch state. A worker that
// executes many experiments back to back hands the same Arena to each
// RunContext call: the simulation engine inside is Reset between runs, so
// its event pool, queue capacity and free lists stay warm instead of being
// reallocated and re-grown for every experiment. An Arena is not safe for
// concurrent use — give each worker its own.
//
// Runs through an arena are bit-identical to runs on a fresh engine:
// Engine.Reset restores the exact initial state (clock, sequence numbers,
// counters), and Rand.Reseed rewinds the pooled master RNG to the exact
// (seed, draws=0) state a fresh generator starts from, which the
// golden-hash determinism tests pin down.
type Arena struct {
	eng *sim.Engine
	rng *sim.Rand
}

// NewArena returns an empty arena; the first run through it warms the
// pools.
func NewArena() *Arena {
	return &Arena{eng: sim.NewEngine(), rng: sim.NewRand(0)}
}

// engine returns the arena's engine, reset and ready for a new run.
func (a *Arena) engine() *sim.Engine {
	a.eng.Reset()
	return a.eng
}

// rand returns the arena's pooled master generator, reseeded so no draw
// state from the previous run's cell leaks into this one.
func (a *Arena) rand(seed int64) *sim.Rand {
	a.rng.Reseed(seed)
	return a.rng
}
