package harness

import (
	"testing"

	"orion/internal/gpu"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

func infTrainJobs() []JobSpec {
	return []JobSpec{
		{Model: workload.ResNet50Inference(), Priority: sched.HighPriority, Arrival: Poisson, RPS: 15},
		{Model: workload.ResNet50Training(), Priority: sched.BestEffort, Arrival: Closed},
	}
}

func runScheme(t *testing.T, s Scheme) *Result {
	t.Helper()
	r, err := Run(RunConfig{
		Scheme: s, Jobs: infTrainJobs(),
		Horizon: sim.Seconds(6), Warmup: sim.Seconds(1), Seed: 1,
	})
	if err != nil {
		t.Fatalf("%s: %v", s, err)
	}
	return r
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(RunConfig{Jobs: infTrainJobs()}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Run(RunConfig{Jobs: infTrainJobs(), Horizon: 100, Warmup: 200}); err == nil {
		t.Error("warmup >= horizon accepted")
	}
	if _, err := Run(RunConfig{Scheme: "nope", Jobs: infTrainJobs(), Horizon: sim.Seconds(1)}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := Run(RunConfig{Scheme: Ideal, Jobs: []JobSpec{{}}, Horizon: sim.Seconds(1)}); err == nil {
		t.Error("job without model accepted")
	}
}

func TestIdealGivesDedicatedPerformance(t *testing.T) {
	r := runScheme(t, Ideal)
	hp := r.HP()
	if hp == nil {
		t.Fatal("no high-priority job in result")
	}
	// Dedicated GPU at Poisson 15rps: p99 includes light queueing (an
	// arrival colliding with one in-flight request), so up to ~2x the
	// service time but no more.
	if hp.Stats.Latency.P99() > hp.DedicatedLatency*5/2 {
		t.Errorf("ideal p99 %.2fms vs dedicated %.2fms",
			hp.Stats.Latency.P99().Millis(), hp.DedicatedLatency.Millis())
	}
	be := r.BestEffort()
	if len(be) != 1 {
		t.Fatalf("%d best-effort jobs", len(be))
	}
	if thr := be[0].Stats.Throughput(); thr < 9 || thr > 11.5 {
		t.Errorf("ideal training throughput %.2f, want ~10.3", thr)
	}
}

// The headline shape: Orion keeps HP p99 near ideal while temporal sharing
// suffers head-of-line blocking; Orion's best-effort job outruns REEF's.
func TestSchemeOrderingShape(t *testing.T) {
	ideal := runScheme(t, Ideal)
	orion := runScheme(t, Orion)
	temporal := runScheme(t, Temporal)
	reef := runScheme(t, Reef)

	idealP99 := ideal.HP().Stats.Latency.P99()
	orionP99 := orion.HP().Stats.Latency.P99()
	temporalP99 := temporal.HP().Stats.Latency.P99()

	if orionP99 > idealP99*2 {
		t.Errorf("orion p99 %.2fms > 2x ideal %.2fms", orionP99.Millis(), idealP99.Millis())
	}
	if temporalP99 < orionP99*2 {
		t.Errorf("temporal p99 %.2fms should be far above orion %.2fms",
			temporalP99.Millis(), orionP99.Millis())
	}
	// REEF lacks interference awareness: its HP tail must sit above
	// Orion's (paper Fig 7: REEF ~2.5x ideal, Orion within 14%).
	reefP99 := reef.HP().Stats.Latency.P99()
	if reefP99 <= orionP99 {
		t.Errorf("reef p99 %.2fms <= orion %.2fms; REEF should interfere more",
			reefP99.Millis(), orionP99.Millis())
	}
	orionBE := orion.BestEffort()[0].Stats.Throughput()
	if orionBE < 1 {
		t.Errorf("orion best-effort %.2f it/s, starving", orionBE)
	}
}

func TestRunDeterminism(t *testing.T) {
	a := runScheme(t, Orion)
	b := runScheme(t, Orion)
	if a.HP().Stats.Latency.P99() != b.HP().Stats.Latency.P99() {
		t.Fatal("same seed produced different p99")
	}
	if a.AggregateThroughput() != b.AggregateThroughput() {
		t.Fatal("same seed produced different throughput")
	}
}

func TestTracingCapturesSegments(t *testing.T) {
	r, err := Run(RunConfig{
		Scheme:  Ideal,
		Jobs:    []JobSpec{{Model: workload.MobileNetV2Training(), Priority: sched.HighPriority, Arrival: Closed}},
		Horizon: sim.Seconds(2), Warmup: sim.Seconds(0.5), Seed: 3, Tracing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) == 0 {
		t.Fatal("tracing produced no segments")
	}
	if r.Utilization.Compute <= 0 {
		t.Fatal("no utilization recorded")
	}
}

func TestProfileForCaches(t *testing.T) {
	m := workload.BERTInference()
	p1, err := ProfileFor(m, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ProfileFor(workload.BERTInference(), gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("profile not cached")
	}
}

func TestDedicatedThroughput(t *testing.T) {
	thr, err := DedicatedThroughput(
		JobSpec{Model: workload.MobileNetV2Training(), Priority: sched.HighPriority, Arrival: Closed},
		gpu.V100(), sim.Seconds(4), sim.Seconds(1), 9)
	if err != nil {
		t.Fatal(err)
	}
	if thr < 11 || thr > 14 {
		t.Errorf("dedicated MobileNetV2 training %.2f it/s, want ~12.5 (Table 4)", thr)
	}
}

func TestSortSchemes(t *testing.T) {
	m := map[Scheme]float64{Orion: 1, Ideal: 2, Reef: 3}
	got := SortSchemes(m)
	want := []Scheme{Ideal, Reef, Orion}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestArrivalKindString(t *testing.T) {
	if Closed.String() != "closed" || Poisson.String() != "poisson" ||
		Uniform.String() != "uniform" || Apollo.String() != "apollo" {
		t.Fatal("ArrivalKind.String mismatch")
	}
}
