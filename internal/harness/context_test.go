package harness

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"orion/internal/sim"
)

func cancelConfig() Config {
	return Config{
		Scheme:  Orion,
		Horizon: 5 * sim.Second,
		Warmup:  500 * sim.Millisecond,
		Seed:    7,
		Jobs: []JobConfig{
			{Workload: "resnet50-inf", Priority: "hp", Arrival: "poisson", RPS: 40},
			{Workload: "mobilenetv2-train", Priority: "be"},
		},
	}
}

// TestRunContextPreCanceled: an already-expired context fails before any
// simulation work happens.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunWire(ctx, cancelConfig())
	if err == nil {
		t.Fatal("canceled context must fail the run")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
}

// TestRunContextDeadlineMidSimulation: a deadline that lands while the
// engine is stepping stops the run instead of letting it complete.
func TestRunContextDeadlineMidSimulation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	// A long horizon keeps the engine busy well past the 10ms wall
	// deadline on any machine.
	cfg := cancelConfig()
	cfg.Horizon = 600 * sim.Second
	_, err := RunWire(ctx, cfg)
	if err == nil {
		t.Fatal("deadline must cancel a long run")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap DeadlineExceeded: %v", err)
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("unexpected error text: %v", err)
	}
}

// TestRunContextBackgroundUnchanged: a background context changes
// nothing — Run and RunContext produce bit-identical results.
func TestRunContextBackgroundUnchanged(t *testing.T) {
	cfg := cancelConfig()
	cfg.Horizon = 2 * sim.Second
	a, err := RunWire(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := Summarize(a), Summarize(b)
	if len(sa.Jobs) != len(sb.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(sa.Jobs), len(sb.Jobs))
	}
	for i := range sa.Jobs {
		if sa.Jobs[i] != sb.Jobs[i] {
			t.Errorf("job %d differs: %+v vs %+v", i, sa.Jobs[i], sb.Jobs[i])
		}
	}
}
