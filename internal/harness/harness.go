// Package harness assembles collocation experiments: it wires workloads,
// arrival processes, scheduling backends and the simulated device together,
// runs them, and produces the rows of the paper's tables and the series of
// its figures. Every evaluation artifact of the paper (Figures 1-14,
// Tables 1-4) has a runner here; cmd/orion-bench and the repository's
// bench_test.go are thin wrappers over this package.
package harness

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"orion/internal/baselines"
	"orion/internal/core"
	"orion/internal/cudart"
	"orion/internal/fault"
	"orion/internal/gpu"
	"orion/internal/metrics"
	"orion/internal/profiler"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/swap"
	"orion/internal/trace"
	"orion/internal/workload"
)

// Scheme identifies a GPU-sharing technique.
type Scheme string

// The schemes the paper evaluates.
const (
	// Ideal runs every job on its own dedicated GPU: the latency lower
	// bound and throughput upper bound.
	Ideal Scheme = "ideal"
	// Temporal time-slices the GPU one request at a time.
	Temporal Scheme = "temporal"
	// Streams shares via CUDA streams from one process (GIL-contended).
	Streams Scheme = "streams"
	// MPSScheme shares via NVIDIA MPS processes.
	MPSScheme Scheme = "mps"
	// Reef is the REEF-N bypass + size-based policy.
	Reef Scheme = "reef"
	// TickTock offsets forward/backward passes of two trainers.
	TickTock Scheme = "ticktock"
	// Orion is the paper's scheduler.
	Orion Scheme = "orion"
	// MIG statically partitions the GPU into one fixed slice per job —
	// the coarse-grained spatial sharing of §4: perfect isolation, no
	// opportunistic harvesting of a neighbour's idle resources.
	MIG Scheme = "mig"
)

// AllSchemes lists every scheme in canonical presentation order.
func AllSchemes() []Scheme {
	return []Scheme{Ideal, Temporal, Streams, MPSScheme, Reef, TickTock, Orion}
}

// ArrivalKind selects a job's request arrival process.
type ArrivalKind int

const (
	// Closed runs back-to-back requests (training jobs, offline inference).
	Closed ArrivalKind = iota
	// Poisson arrivals at JobSpec.RPS.
	Poisson
	// Uniform arrivals at JobSpec.RPS.
	Uniform
	// Apollo replays the synthetic bursty autonomous-driving trace with
	// long-run mean JobSpec.RPS.
	Apollo
)

func (a ArrivalKind) String() string {
	switch a {
	case Poisson:
		return "poisson"
	case Uniform:
		return "uniform"
	case Apollo:
		return "apollo"
	default:
		return "closed"
	}
}

// JobSpec is one client in a collocation experiment.
type JobSpec struct {
	Model    *workload.Model
	Priority sched.Priority
	Arrival  ArrivalKind
	RPS      float64
	// GraphMode submits each request as one fused CUDA-graph-style unit
	// instead of individual kernels (the §7 granularity ablation).
	GraphMode bool
	// SwapWindow, when positive, runs the job behind the layer-swapping
	// manager with this resident-weight budget (§5.1.3 extension).
	SwapWindow int64
	// Deadline, when positive, is the job's per-request latency SLO:
	// completions later than arrival+Deadline count into
	// JobStats.TimedOut.
	Deadline sim.Duration
}

// RunConfig describes one collocation run.
type RunConfig struct {
	Scheme  Scheme
	Device  gpu.Spec
	Jobs    []JobSpec
	Horizon sim.Duration
	Warmup  sim.Duration
	Seed    int64
	// OrionConfig overrides Orion's policy knobs (ablation); Profiles is
	// filled in by the harness.
	OrionConfig *core.Config
	// ReefQueueDepth overrides REEF's software queue depth (0 = default).
	ReefQueueDepth int
	// TemporalSwapStates enables Gandiva/Salus-style state swapping in
	// the temporal backend, admitting job sets that exceed device memory.
	TemporalSwapStates bool
	// Tracing records device utilization segments.
	Tracing bool
	// Faults, when non-nil, runs the experiment under fault injection:
	// the harness fills in the injector's Engine and (if zero) Horizon,
	// installs its hook on every CUDA context, attaches every device for
	// slowdown windows, and registers each best-effort job as a crash
	// target (crash = driver killed + client deregistered from the
	// backend).
	Faults *fault.Config
	// streamsNoPriorities runs the Streams scheme without mapping the
	// high-priority client onto a high-priority stream — the plain "GPU
	// Streams" point of the Figure 14 ablation.
	streamsNoPriorities bool
	// Progress, when non-nil, receives coarse stage notifications as the
	// run advances ("profile <id>", "simulate", "collect") — the hook
	// orion-serve's event stream is fed from. Calls happen synchronously
	// on the running goroutine.
	Progress func(stage string)
	// Arena, when non-nil, supplies reusable per-run scratch state (the
	// simulation engine with its warmed event pool). Results are
	// bit-identical with or without an arena.
	Arena *Arena
	// Checkpoint, when non-nil, makes the run resumable: checkpoints are
	// captured at event-stride boundaries and handed to the config's
	// Sink, and a Resume checkpoint is verified once the deterministic
	// replay reaches its cursor. Nil costs nothing.
	Checkpoint *CheckpointConfig
}

// progress invokes the Progress hook if one is installed.
func (c *RunConfig) progress(stage string) {
	if c.Progress != nil {
		c.Progress(stage)
	}
}

// JobResult is one client's outcome.
type JobResult struct {
	Name     string
	Priority sched.Priority
	Stats    *metrics.JobStats
	// DedicatedLatency is the job's offline-profiled dedicated-GPU
	// request latency (the latency component of the Ideal reference).
	DedicatedLatency sim.Duration
}

// Result is one collocation run's outcome.
type Result struct {
	Scheme      Scheme
	Jobs        []JobResult
	Utilization gpu.UtilReport
	// Trace holds utilization segments when RunConfig.Tracing was set
	// (one trace per device; index 0 is the shared device, or the first
	// job's device under Ideal).
	Trace []gpu.UtilSample
	// Verdicts tallies the Orion scheduler's admission decisions by
	// reason (empty for other schemes).
	Verdicts map[string]uint64
	// Decisions is the tail of the Orion scheduler's decision log (empty
	// for other schemes).
	Decisions []core.Decision
	// Robustness aggregates fault-injection outcomes (set only when
	// RunConfig.Faults was non-nil).
	Robustness *RobustnessReport
	// Events counts engine events processed over the whole run. Not part
	// of Summary: it is an execution detail, not an experiment outcome.
	Events uint64
	// Replayed counts the events re-executed to reach a resume
	// checkpoint's cursor (zero when the run was not resumed).
	Replayed uint64
}

// RobustnessReport aggregates what fault injection did to one run.
type RobustnessReport struct {
	// Events is the injector's chronological fault log.
	Events []fault.Event
	// DeniedLaunches / DeniedAllocs count operations failed inside open
	// transient-failure windows (retries of the same op count).
	DeniedLaunches uint64
	DeniedAllocs   uint64
	// Evictions, PurgedOps and SchedulerRetries are the Orion scheduler's
	// robustness counters (zero for other schemes).
	Evictions        uint64
	PurgedOps        uint64
	SchedulerRetries uint64
}

// HP returns the high-priority job's result, or nil.
func (r *Result) HP() *JobResult {
	for i := range r.Jobs {
		if r.Jobs[i].Priority == sched.HighPriority {
			return &r.Jobs[i]
		}
	}
	return nil
}

// BestEffort returns the best-effort jobs' results.
func (r *Result) BestEffort() []*JobResult {
	var out []*JobResult
	for i := range r.Jobs {
		if r.Jobs[i].Priority == sched.BestEffort {
			out = append(out, &r.Jobs[i])
		}
	}
	return out
}

// AggregateThroughput sums all jobs' throughput (requests or iterations
// per second).
func (r *Result) AggregateThroughput() float64 {
	var t float64
	for i := range r.Jobs {
		t += r.Jobs[i].Stats.Throughput()
	}
	return t
}

// --- profile cache ----------------------------------------------------------

var profCache sync.Map // "model@device" -> *profiler.Profile

// ProfileFor returns the (cached) offline profile of a workload on a
// device spec. Profiling is deterministic, so the cache is safe across
// experiments.
func ProfileFor(m *workload.Model, spec gpu.Spec) (*profiler.Profile, error) {
	key := fmt.Sprintf("%s@bs%d@%s", m.ID(), m.Batch, spec.Name)
	if v, ok := profCache.Load(key); ok {
		return v.(*profiler.Profile), nil
	}
	p, err := profiler.Collect(m, spec)
	if err != nil {
		return nil, err
	}
	profCache.Store(key, p)
	return p, nil
}

// --- run --------------------------------------------------------------------

// Run executes one collocation experiment.
func Run(cfg RunConfig) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes one collocation experiment under a context: when
// ctx is canceled or its deadline passes, the simulation loop stops
// (via the engine's Interrupt hook, so even a cascade of same-timestamp
// events cannot outrun it) and RunContext returns the context's error.
// The serving layer's per-job deadlines cancel runaway experiments
// through this path.
func RunContext(ctx context.Context, cfg RunConfig) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("harness: no jobs")
	}
	if cfg.Horizon <= 0 || cfg.Warmup < 0 || cfg.Warmup >= cfg.Horizon {
		return nil, fmt.Errorf("harness: bad horizon/warmup %v/%v", cfg.Horizon, cfg.Warmup)
	}
	if cfg.Device.Name == "" {
		cfg.Device = gpu.V100()
	}

	profiles := map[string]*profiler.Profile{}
	batches := map[string]int{}
	for _, j := range cfg.Jobs {
		if j.Model == nil {
			return nil, fmt.Errorf("harness: job without model")
		}
		// Backends key their profile tables by workload ID; two variants
		// of the same workload at different batch sizes would collide.
		if prev, ok := batches[j.Model.ID()]; ok && prev != j.Model.Batch {
			return nil, fmt.Errorf("harness: %s collocated at two batch sizes (%d and %d)",
				j.Model.ID(), prev, j.Model.Batch)
		}
		batches[j.Model.ID()] = j.Model.Batch
		// Profiling happens before the engine exists, so the deadline has
		// to be checked explicitly between (cached but potentially slow)
		// collections.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("harness: run canceled: %w", err)
		}
		cfg.progress("profile " + j.Model.ID())
		p, err := ProfileFor(j.Model, cfg.Device)
		if err != nil {
			return nil, err
		}
		profiles[j.Model.ID()] = p
	}

	var eng *sim.Engine
	if cfg.Arena != nil {
		eng = cfg.Arena.engine()
	} else {
		eng = sim.NewEngine()
	}
	eng.MaxEvents = 2_000_000_000
	var master *sim.Rand
	if cfg.Arena != nil {
		master = cfg.Arena.rand(cfg.Seed + 7)
	} else {
		master = sim.NewRand(cfg.Seed + 7)
	}

	// Devices: one shared device, or one per job under Ideal.
	var devices []*gpu.Device
	var contexts []*cudart.Context
	newContext := func(d *gpu.Device) *cudart.Context {
		ctx := cudart.NewContext(d)
		contexts = append(contexts, ctx)
		return ctx
	}
	newDevice := func() (*gpu.Device, error) {
		d, err := gpu.NewDevice(eng, cfg.Device)
		if err != nil {
			return nil, err
		}
		if cfg.Tracing {
			d.EnableTracing(4_000_000)
		}
		devices = append(devices, d)
		return d, nil
	}

	var backendFor func(i int) (sched.Backend, error)
	switch cfg.Scheme {
	case Ideal:
		backendFor = func(int) (sched.Backend, error) {
			d, err := newDevice()
			if err != nil {
				return nil, err
			}
			return sched.NewDirect(newContext(d)), nil
		}
	case MIG:
		// One fixed slice per job: SMs, memory bandwidth and capacity
		// divide evenly; the PCIe link is shared (and here dedicated per
		// slice, favouring MIG slightly).
		slice := cfg.Device
		n := len(cfg.Jobs)
		slice.Name = fmt.Sprintf("%s/mig-1of%d", cfg.Device.Name, n)
		slice.NumSMs = cfg.Device.NumSMs / n
		if slice.NumSMs < 1 {
			slice.NumSMs = 1
		}
		slice.MemBandwidth = cfg.Device.MemBandwidth / float64(n)
		slice.MemoryBytes = cfg.Device.MemoryBytes / int64(n)
		backendFor = func(int) (sched.Backend, error) {
			d, err := gpu.NewDevice(eng, slice)
			if err != nil {
				return nil, err
			}
			if cfg.Tracing {
				d.EnableTracing(4_000_000)
			}
			devices = append(devices, d)
			return sched.NewDirect(newContext(d)), nil
		}
	default:
		dev, err := newDevice()
		if err != nil {
			return nil, err
		}
		ctx := newContext(dev)
		shared, err := makeBackend(cfg, eng, ctx, profiles)
		if err != nil {
			return nil, err
		}
		backendFor = func(int) (sched.Backend, error) { return shared, nil }
	}

	res := &Result{Scheme: cfg.Scheme}
	var drivers []*sched.Driver
	var backends []sched.Backend
	// rawClients keeps each job's un-wrapped backend handle — the one
	// Backend.Deregister expects when a crash tears the client down.
	var rawClients []sched.Client
	for i, j := range cfg.Jobs {
		backend, err := backendFor(i)
		if err != nil {
			return nil, err
		}
		backends = append(backends, backend)
		cl, err := backend.Register(sched.ClientConfig{
			Name: j.Model.ID(), Priority: j.Priority, Model: j.Model,
		})
		if err != nil {
			return nil, err
		}
		rawClients = append(rawClients, cl)
		if j.GraphMode {
			cl, err = sched.NewGraphClient(cl)
			if err != nil {
				return nil, err
			}
		}
		if j.SwapWindow > 0 {
			cl, err = swap.Wrap(cl, j.Model, devices[len(devices)-1], j.SwapWindow)
			if err != nil {
				return nil, err
			}
		}
		arr, err := arrivalsFor(j, master.Split(fmt.Sprintf("job-%d", i)))
		if err != nil {
			return nil, err
		}
		d, err := sched.NewDriver(sched.DriverConfig{
			Engine: eng, Client: cl, Model: j.Model, Arrivals: arr,
			Horizon: sim.Time(cfg.Horizon), Warmup: cfg.Warmup,
			Deadline: j.Deadline,
		})
		if err != nil {
			return nil, err
		}
		drivers = append(drivers, d)
	}
	var injector *fault.Injector
	if cfg.Faults != nil {
		fc := *cfg.Faults
		fc.Engine = eng
		if fc.Horizon == 0 {
			fc.Horizon = sim.Time(cfg.Horizon)
		}
		inj, err := fault.New(fc)
		if err != nil {
			return nil, err
		}
		for _, ctx := range contexts {
			inj.InstallHook(ctx)
		}
		for _, d := range devices {
			inj.AttachDevice(d)
		}
		for i, j := range cfg.Jobs {
			if j.Priority != sched.BestEffort {
				continue
			}
			i := i
			name := fmt.Sprintf("%s#%d", j.Model.ID(), i)
			inj.RegisterCrashTarget(name, func() {
				drivers[i].Crash()
				if err := backends[i].Deregister(rawClients[i]); err != nil {
					panic(fmt.Sprintf("harness: deregister %s: %v", name, err))
				}
			})
		}
		if err := inj.Start(); err != nil {
			return nil, err
		}
		injector = inj
	}
	for _, b := range dedupBackends(backends) {
		b.Start()
	}
	for _, d := range drivers {
		if err := d.Start(); err != nil {
			return nil, err
		}
	}
	// Reset utilization accounting at the warmup boundary.
	eng.At(sim.Time(cfg.Warmup), func() {
		for _, d := range devices {
			d.ResetUtilization()
		}
	})
	cfg.progress("simulate")
	var ckp *checkpointer
	if cfg.Checkpoint != nil {
		c, err := newCheckpointer(cfg, eng, devices, drivers, dedupBackends(backends), injector)
		if err != nil {
			return nil, err
		}
		ckp = c
	}
	watchCtx := ctx.Done() != nil
	if watchCtx || ckp != nil {
		eng.Interrupt = func() bool {
			if watchCtx && ctx.Err() != nil {
				return true
			}
			return ckp != nil && ckp.poll()
		}
	}
	eng.RunUntil(sim.Time(cfg.Horizon))
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("harness: run canceled at t=%v: %w", eng.Now(), err)
	}
	res.Events = eng.Processed()
	if ckp != nil {
		replayed, err := ckp.finish()
		if err != nil {
			return nil, err
		}
		res.Replayed = replayed
	}

	cfg.progress("collect")
	for i, d := range drivers {
		j := cfg.Jobs[i]
		res.Jobs = append(res.Jobs, JobResult{
			Name:             j.Model.ID(),
			Priority:         j.Priority,
			Stats:            d.Stats(),
			DedicatedLatency: profiles[j.Model.ID()].RequestLatency,
		})
	}
	res.Utilization = devices[0].Utilization()
	if cfg.Tracing {
		res.Trace = devices[0].Trace()
	}
	if injector != nil {
		rep := &RobustnessReport{Events: injector.Log()}
		rep.DeniedLaunches, rep.DeniedAllocs = injector.Denied()
		res.Robustness = rep
	}
	for _, b := range dedupBackends(backends) {
		if o, ok := b.(*core.Orion); ok {
			res.Verdicts = map[string]uint64{}
			for v, n := range o.VerdictCounts() {
				res.Verdicts[v.String()] = n
			}
			res.Decisions = o.RecentDecisions(core.DefaultDecisionLogSize)
			if res.Robustness != nil {
				res.Robustness.Evictions, res.Robustness.PurgedOps, res.Robustness.SchedulerRetries = o.FaultStats()
			}
		}
	}
	return res, nil
}

func dedupBackends(in []sched.Backend) []sched.Backend {
	seen := map[sched.Backend]bool{}
	var out []sched.Backend
	for _, b := range in {
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

func arrivalsFor(j JobSpec, r *sim.Rand) (trace.Process, error) {
	switch j.Arrival {
	case Closed:
		return nil, nil
	case Poisson:
		return trace.NewPoisson(j.RPS, r)
	case Uniform:
		return trace.NewUniform(j.RPS, r)
	case Apollo:
		return trace.NewApollo(j.RPS, r)
	default:
		return nil, fmt.Errorf("harness: unknown arrival kind %d", int(j.Arrival))
	}
}

func makeBackend(cfg RunConfig, eng *sim.Engine, ctx *cudart.Context,
	profiles map[string]*profiler.Profile) (sched.Backend, error) {
	switch cfg.Scheme {
	case Temporal:
		b := baselines.NewTemporal(eng, ctx)
		b.SwapStates = cfg.TemporalSwapStates
		return b, nil
	case Streams:
		b := baselines.NewStreams(ctx)
		if cfg.streamsNoPriorities {
			b.UsePriorities = false
		}
		return b, nil
	case MPSScheme:
		return baselines.NewMPS(ctx), nil
	case Reef:
		r := baselines.NewReef(eng, ctx, profiles)
		if cfg.ReefQueueDepth > 0 {
			r.QueueDepth = cfg.ReefQueueDepth
		}
		return r, nil
	case TickTock:
		return baselines.NewTickTock(eng, ctx), nil
	case Orion:
		oc := core.Config{}
		if cfg.OrionConfig != nil {
			oc = *cfg.OrionConfig
		}
		oc.Profiles = profiles
		return core.New(eng, ctx, oc)
	default:
		return nil, fmt.Errorf("harness: unknown scheme %q", cfg.Scheme)
	}
}

// DedicatedThroughput measures a job's throughput alone on a dedicated
// device with the same arrival process — the per-job component of the
// Ideal reference.
func DedicatedThroughput(j JobSpec, device gpu.Spec, horizon, warmup sim.Duration, seed int64) (float64, error) {
	r, err := Run(RunConfig{
		Scheme: Ideal, Device: device, Jobs: []JobSpec{j},
		Horizon: horizon, Warmup: warmup, Seed: seed,
	})
	if err != nil {
		return 0, err
	}
	return r.Jobs[0].Stats.Throughput(), nil
}

// SortSchemes orders a scheme->value map's keys canonically for stable
// rendering.
func SortSchemes(m map[Scheme]float64) []Scheme {
	order := map[Scheme]int{}
	for i, s := range AllSchemes() {
		order[s] = i
	}
	keys := make([]Scheme, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return order[keys[i]] < order[keys[j]] })
	return keys
}
