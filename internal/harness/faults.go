package harness

import (
	"fmt"
	"strings"

	"orion/internal/core"
	"orion/internal/fault"
	"orion/internal/gpu"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/trace"
	"orion/internal/workload"
)

// DefaultFaultConfig is the robustness experiments' standard fault mix:
// best-effort clients crash with an 8 s MTBF, and the device suffers 5 ms
// transient kernel-launch and allocation failure windows every ~2 s and
// ~3 s respectively. Slowdown windows are off by default — they degrade
// every scheme alike and would mask the scheduling story. The Engine and
// Horizon fields are filled in by harness.Run.
func DefaultFaultConfig(seed int64) *fault.Config {
	return &fault.Config{
		Seed:               seed,
		CrashMTBF:          8 * sim.Second,
		LaunchFailMTBF:     2 * sim.Second,
		LaunchFailDuration: 5 * sim.Millisecond,
		AllocFailMTBF:      3 * sim.Second,
		AllocFailDuration:  5 * sim.Millisecond,
	}
}

// Faults is the robustness experiment: a high-priority inference job
// collocated with two best-effort trainers under crash and transient
// CUDA-error injection, across Orion (with the SLO guard), REEF-N and
// GPU Streams. Each scheme is run fault-free and faulted with the same
// arrival seed, so the p99 columns isolate what the faults cost; the
// fault schedule itself is identical across schemes (same fault seed).
func Faults(opt Options) (Rendered, error) {
	horizon, warmup := opt.horizons(sim.Seconds(10), sim.Seconds(3))
	hpM := workload.ResNet50Inference()
	beA := workload.MobileNetV2Training()
	beB := workload.ResNet50Training()
	rps, err := trace.RPS(hpM.Name, trace.InfTrainPoisson)
	if err != nil {
		return nil, err
	}
	hpProf, err := ProfileFor(hpM, gpu.V100())
	if err != nil {
		return nil, err
	}
	deadline := sim.Duration(3 * float64(hpProf.RequestLatency))
	jobs := []JobSpec{
		{Model: hpM, Priority: sched.HighPriority, Arrival: Poisson, RPS: rps, Deadline: deadline},
		{Model: beA, Priority: sched.BestEffort, Arrival: Closed},
		{Model: beB, Priority: sched.BestEffort, Arrival: Closed},
	}

	var b strings.Builder
	fmt.Fprintf(&b, "hp %s (%g rps poisson, deadline %.2fms) + be %s, %s\n",
		hpM.ID(), rps, deadline.Millis(), beA.ID(), beB.ID())
	fmt.Fprintf(&b, "faults: BE crash MTBF 8s, launch-fail 5ms windows ~2s apart, alloc-fail 5ms windows ~3s apart\n\n")
	fmt.Fprintf(&b, "%-8s %-12s %-11s %-7s %-9s %-8s %-8s %-8s %-8s\n",
		"scheme", "hp p99 clean", "hp p99 flt", "ratio", "be it/s", "crashes", "denied", "retried", "timedout")
	for _, s := range []Scheme{Orion, Reef, Streams} {
		cfg := RunConfig{
			Scheme: s, Jobs: jobs,
			Horizon: horizon, Warmup: warmup, Seed: opt.Seed,
		}
		if s == Orion {
			cfg.OrionConfig = &core.Config{SLOGuard: true}
		}
		clean, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		cfg.Faults = DefaultFaultConfig(opt.Seed)
		faulted, err := Run(cfg)
		if err != nil {
			return nil, err
		}

		cleanP99 := clean.HP().Stats.Latency.P99()
		fltP99 := faulted.HP().Stats.Latency.P99()
		ratio := 0.0
		if cleanP99 > 0 {
			ratio = float64(fltP99) / float64(cleanP99)
		}
		var beTput float64
		var crashes int
		var retried, timedout int
		for _, e := range faulted.Robustness.Events {
			if e.Kind == fault.KindCrash {
				crashes++
			}
		}
		for _, j := range faulted.Jobs {
			if j.Priority == sched.BestEffort {
				beTput += j.Stats.Throughput()
			}
			retried += j.Stats.Retried
			timedout += j.Stats.TimedOut
		}
		denied := faulted.Robustness.DeniedLaunches + faulted.Robustness.DeniedAllocs
		schedRetries := faulted.Robustness.SchedulerRetries
		fmt.Fprintf(&b, "%-8s %-12.2f %-11.2f %-7.2f %-9.2f %-8d %-8d %-8d %-8d\n",
			s, cleanP99.Millis(), fltP99.Millis(), ratio, beTput,
			crashes, denied, retried+int(schedRetries), timedout)
	}
	b.WriteString("\nOrion absorbs crashes by evicting the dead client (queued ops purged,\n")
	b.WriteString("throttle budget unpinned) and rides out transient windows with scheduler-\n")
	b.WriteString("side retries; the SLO guard suspends best-effort admission if the\n")
	b.WriteString("high-priority tail degrades anyway.\n")
	return Text(b.String()), nil
}
