package harness

import (
	"strings"
	"testing"
)

func TestLLMCollocationShape(t *testing.T) {
	r, err := LLMCollocation(Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*LLMResult)
	var ideal, orion *LLMRow
	for i := range res.Rows {
		switch res.Rows[i].Scheme {
		case Ideal:
			ideal = &res.Rows[i]
		case Orion:
			orion = &res.Rows[i]
		}
	}
	if ideal == nil || orion == nil {
		t.Fatal("missing rows")
	}
	// Orion holds the LLM's p99 near dedicated while the compute job runs.
	if float64(orion.LLMp99) > 1.5*float64(ideal.LLMp99) {
		t.Errorf("LLM p99 %.1fms vs ideal %.1fms: decode latency not protected",
			orion.LLMp99.Millis(), ideal.LLMp99.Millis())
	}
	if orion.BEThroughput < 1 {
		t.Errorf("compute partner at %.2f req/s, not harvesting idle compute", orion.BEThroughput)
	}
	// Collocation lifts compute utilization above the LLM-alone level.
	if orion.Compute < 1.5*idealComputeOf(res) {
		t.Errorf("compute util %.2f did not rise over LLM-alone %.2f", orion.Compute, idealComputeOf(res))
	}
	if !strings.Contains(r.Render(), "llm p99") {
		t.Error("render missing header")
	}
}

func idealComputeOf(res *LLMResult) float64 {
	for _, row := range res.Rows {
		if row.Scheme == Ideal {
			return row.Compute
		}
	}
	return 0
}

func TestClusterPlacementBeatsNaive(t *testing.T) {
	r, err := ClusterPlacement(Options{Seed: 4, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*ClusterResult)
	if res.GreedyThr < res.NaiveThr {
		t.Errorf("complementarity-aware placement %.2f req/s worse than naive %.2f",
			res.GreedyThr, res.NaiveThr)
	}
	if len(res.NaivePairs) != 2 || len(res.GreedyPair) != 2 {
		t.Fatalf("pair counts %d/%d, want 2/2", len(res.NaivePairs), len(res.GreedyPair))
	}
}
