package harness_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"orion/internal/harness"
	"orion/internal/sim"
)

// goldenConfig is the standard determinism probe: an open-loop inference
// client collocated with a closed-loop trainer, small enough to run twelve
// times in a unit test but long enough to exercise arrivals, contention,
// wave shedding, sync ops and the scheduler policy loops.
func goldenConfig(scheme harness.Scheme, seed int64) harness.Config {
	return harness.Config{
		Scheme: scheme,
		Jobs: []harness.JobConfig{
			{Workload: "resnet50-inf", Priority: "hp", Arrival: "poisson", RPS: 20},
			{Workload: "mobilenetv2-train", Priority: "be"},
		},
		Horizon: 2 * sim.Second,
		Warmup:  500 * sim.Millisecond,
		Seed:    seed,
	}
}

// goldenHash runs one config and hashes its wire Summary. The Summary
// carries every externally visible outcome (per-job counts, latency
// percentiles, throughput, utilization integrals, verdict tallies), so two
// runs with equal hashes produced bit-identical results.
func goldenHash(t *testing.T, cfg harness.Config) string {
	t.Helper()
	res, err := harness.RunWire(context.Background(), cfg)
	if err != nil {
		t.Fatalf("%s/seed=%d: %v", cfg.Scheme, cfg.Seed, err)
	}
	b, err := json.Marshal(harness.Summarize(res))
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// goldenSummaries pins the harness's end-to-end output for four schemes at
// three seeds. The hashes were generated BEFORE the allocation-light fast
// path landed (PR 4) and must never drift: the event pool, the 4-ary heap,
// the indexed dispatcher and the engine arena are all required to produce
// bit-identical summaries to the original implementation. Regenerate with
//
//	GOLDEN_PRINT=1 go test ./internal/harness -run TestGoldenSummaryHashes -v
//
// only when an intentional modelling change is being made, and say so in
// the commit message.
var goldenSummaries = map[string]string{
	"orion/seed=1":    "2af494a616fff0721948f954d002b7fe35a0c87b16a9cc2cb6b1a8d7a4b0d65d",
	"orion/seed=2":    "c09a5ed5649fa8f44226af4486be8e676817c129788f70e7e7490d4276a9f80b",
	"orion/seed=3":    "b88bd3727f05be62e86389bc5ea57f3127fd7112feb7cc24ac981afc8a326789",
	"reef/seed=1":     "afdd4ab621eb0d8e7cbdef70a3dcd22903f5d0dbfd128fbff1a860080a1ce7da",
	"reef/seed=2":     "98bdf378977f87fbfb27332a5f5aa5fd1ef67591427f6d2d52828a4cdfcd5396",
	"reef/seed=3":     "e2c0eda44fb654c8c5d9880e64e041e4ece12455b1630f6bf71f73ae37cd00e1",
	"streams/seed=1":  "a18434b0eec8f154c0a3b4f027e19959e3dff0876fda479bbbb1653035d5489f",
	"streams/seed=2":  "9d7fb100542a8a3efa589e73c0b19c64c57986cb420038babebbe7cf4adc4ebb",
	"streams/seed=3":  "00102ff90387a5bb3ef482909972f58ddad7591acef0fd8cb00d36bb6fb845ea",
	"temporal/seed=1": "1f19321356587c07f7ee2ccf4eabde359f0b4762354fe5aeb37c16dbdbb60419",
	"temporal/seed=2": "5add148d134714cafe4187e5189e563bb7ff37188813b8b8724385b84135d406",
	"temporal/seed=3": "97c8bc227548414677f2b71713490f593a6d48ff34f66814fb3643aa09ff47db",
}

func goldenKey(scheme harness.Scheme, seed int64) string {
	return fmt.Sprintf("%s/seed=%d", scheme, seed)
}

// TestGoldenArenaReuse proves runs through a reused Arena are
// bit-identical to runs on a fresh engine: the worker-side engine
// recycling cannot perturb outcomes.
func TestGoldenArenaReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("arena sweep runs 3 simulations")
	}
	cfg := goldenConfig(harness.Orion, 1)
	fresh := goldenHash(t, cfg)

	rc, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	rc.Arena = harness.NewArena()
	for run := 1; run <= 2; run++ {
		res, err := harness.RunContext(context.Background(), rc)
		if err != nil {
			t.Fatalf("arena run %d: %v", run, err)
		}
		b, err := json.Marshal(harness.Summarize(res))
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.Sum256(b)
		if got := hex.EncodeToString(h[:]); got != fresh {
			t.Fatalf("arena run %d drifted from fresh engine:\n  got  %s\n  want %s", run, got, fresh)
		}
	}
}

func TestGoldenSummaryHashes(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep runs 12 simulations")
	}
	schemes := []harness.Scheme{harness.Orion, harness.Reef, harness.Streams, harness.Temporal}
	seeds := []int64{1, 2, 3}
	print := os.Getenv("GOLDEN_PRINT") != ""
	for _, scheme := range schemes {
		for _, seed := range seeds {
			scheme, seed := scheme, seed
			t.Run(goldenKey(scheme, seed), func(t *testing.T) {
				t.Parallel()
				got := goldenHash(t, goldenConfig(scheme, seed))
				if print {
					t.Logf("%q: %q,", goldenKey(scheme, seed), got)
					return
				}
				want, ok := goldenSummaries[goldenKey(scheme, seed)]
				if !ok {
					t.Fatalf("no committed hash for %s", goldenKey(scheme, seed))
				}
				if got != want {
					t.Fatalf("summary hash drifted:\n  got  %s\n  want %s\n"+
						"the fast path must be bit-identical to the reference implementation",
						got, want)
				}
			})
		}
	}
}
