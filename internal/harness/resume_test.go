package harness_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"orion/internal/checkpoint"
	"orion/internal/harness"
	"orion/internal/sim"
)

// resumeStride keeps checkpoints frequent enough that a 2-second golden
// run captures several of them.
const resumeStride = sim.InterruptStride

// errEmulatedCrash is what the kill-sink returns: the harness aborts the
// run at exactly that capture boundary, deterministically emulating a
// process killed mid-simulation.
var errEmulatedCrash = errors.New("emulated crash")

// summaryHash flattens a Result the same way the golden suite does.
func summaryHash(t *testing.T, res *harness.Result) string {
	t.Helper()
	b, err := json.Marshal(harness.Summarize(res))
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// TestGoldenResumeEquivalence is the tentpole proof: for four schemes at
// three seeds, a run killed at a (seed-randomized) checkpoint boundary
// and resumed from its last persisted checkpoint produces a summary hash
// bit-identical to the uninterrupted run — and strictly fewer fresh
// events, since the checkpoint pinned a verified prefix.
func TestGoldenResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("resume sweep runs 36 simulations")
	}
	schemes := []harness.Scheme{harness.Orion, harness.Reef, harness.Streams, harness.Temporal}
	seeds := []int64{1, 2, 3}
	for _, scheme := range schemes {
		for _, seed := range seeds {
			scheme, seed := scheme, seed
			t.Run(goldenKey(scheme, seed), func(t *testing.T) {
				t.Parallel()
				cfg := goldenConfig(scheme, seed)
				rc, err := cfg.Build()
				if err != nil {
					t.Fatal(err)
				}
				wire, err := json.Marshal(cfg)
				if err != nil {
					t.Fatal(err)
				}

				// Uninterrupted reference run, capturing at every stride so
				// we know how many boundaries the run crosses.
				var captured []*checkpoint.Checkpoint
				rc.Checkpoint = &harness.CheckpointConfig{
					Stride: resumeStride,
					Config: wire,
					Sink: func(ck *checkpoint.Checkpoint) error {
						captured = append(captured, ck)
						return nil
					},
				}
				ref, err := harness.RunContext(context.Background(), rc)
				if err != nil {
					t.Fatal(err)
				}
				refHash := summaryHash(t, ref)
				if len(captured) < 2 {
					t.Fatalf("run crossed only %d checkpoint boundaries; stride too coarse for the test", len(captured))
				}
				if want, ok := goldenSummaries[goldenKey(scheme, seed)]; ok && refHash != want {
					t.Fatalf("checkpoint capture perturbed the run: hash %s, golden %s", refHash, want)
				}

				// Kill at a seed-randomized boundary: the sink accepts the
				// first kill captures and refuses the next one, aborting the
				// run right at that stride.
				kill := 1 + int(seed)%(len(captured)-1)
				var last *checkpoint.Checkpoint
				sunk := 0
				rc.Checkpoint = &harness.CheckpointConfig{
					Stride: resumeStride,
					Config: wire,
					Sink: func(ck *checkpoint.Checkpoint) error {
						if sunk >= kill {
							return errEmulatedCrash
						}
						sunk++
						last = ck
						return nil
					},
				}
				_, err = harness.RunContext(context.Background(), rc)
				if err == nil || !errors.Is(err, errEmulatedCrash) {
					t.Fatalf("killed run: err = %v, want emulated crash", err)
				}
				if last == nil {
					t.Fatal("no checkpoint survived the crash")
				}

				// The checkpoint file round-trips through the on-disk format.
				var buf bytes.Buffer
				if err := checkpoint.Write(&buf, last); err != nil {
					t.Fatal(err)
				}
				restored, err := checkpoint.Read(&buf)
				if err != nil {
					t.Fatal(err)
				}
				if err := checkpoint.Diff(last, restored); err != nil {
					t.Fatalf("on-disk round trip drifted: %v", err)
				}

				// Resume from the restored checkpoint: replay to the cursor,
				// verify, continue to the horizon.
				rc.Checkpoint = &harness.CheckpointConfig{
					Stride: resumeStride,
					Config: wire,
					Resume: restored,
				}
				res, err := harness.RunContext(context.Background(), rc)
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
				if got := summaryHash(t, res); got != refHash {
					t.Fatalf("resumed run diverged from uninterrupted run:\n  got  %s\n  want %s", got, refHash)
				}
				if res.Replayed != restored.Meta.Cursor {
					t.Fatalf("Replayed = %d, want cursor %d", res.Replayed, restored.Meta.Cursor)
				}
				if res.Replayed == 0 || res.Replayed >= res.Events {
					t.Fatalf("replayed %d of %d events — resume reused no verified prefix", res.Replayed, res.Events)
				}
			})
		}
	}
}

// TestResumeDetectsDivergence proves the verification bites: resuming
// under a different seed (a config that cannot reproduce the checkpoint's
// prefix) must fail with a divergence error, not silently continue.
func TestResumeDetectsDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2 simulations")
	}
	cfg := goldenConfig(harness.Orion, 1)
	rc, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	var last *checkpoint.Checkpoint
	rc.Checkpoint = &harness.CheckpointConfig{
		Stride: resumeStride,
		Sink:   func(ck *checkpoint.Checkpoint) error { last = ck; return nil },
	}
	if _, err := harness.RunContext(context.Background(), rc); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no checkpoint captured")
	}

	// Same scheme, different seed: arrivals diverge before the cursor.
	cfg2 := goldenConfig(harness.Orion, 2)
	rc2, err := cfg2.Build()
	if err != nil {
		t.Fatal(err)
	}
	last.Meta.Seed = 0 // defeat the cheap meta pre-check; force the Diff to catch it
	rc2.Checkpoint = &harness.CheckpointConfig{Resume: last}
	_, err = harness.RunContext(context.Background(), rc2)
	if err == nil {
		t.Fatal("resume under a different seed succeeded")
	}
	if !strings.Contains(err.Error(), "diverged") && !strings.Contains(err.Error(), "never reached") {
		t.Fatalf("unexpected resume error: %v", err)
	}
}

// TestResumeRejectsWrongScheme checks the cheap meta pre-checks.
func TestResumeRejectsWrongScheme(t *testing.T) {
	cfg := goldenConfig(harness.Reef, 1)
	rc, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	rc.Checkpoint = &harness.CheckpointConfig{
		Resume: &checkpoint.Checkpoint{Meta: checkpoint.Meta{
			Scheme: "orion", Seed: 1, Cursor: sim.InterruptStride,
		}},
	}
	if _, err := harness.RunContext(context.Background(), rc); err == nil || !strings.Contains(err.Error(), "scheme") {
		t.Fatalf("err = %v, want scheme mismatch", err)
	}
	rc.Checkpoint = &harness.CheckpointConfig{
		Resume: &checkpoint.Checkpoint{Meta: checkpoint.Meta{
			Scheme: "reef", Seed: 1, Cursor: sim.InterruptStride + 1,
		}},
	}
	if _, err := harness.RunContext(context.Background(), rc); err == nil || !strings.Contains(err.Error(), "stride") {
		t.Fatalf("err = %v, want stride error", err)
	}
}
