package harness

import (
	"strings"
	"testing"

	"orion/internal/sim"
)

// Every registered experiment (paper set + §7 extensions) must run in
// Quick mode and render output.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range FullRegistry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r, err := e.Run(Options{Quick: true, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := r.Render()
			if len(out) == 0 {
				t.Fatalf("%s rendered nothing", e.ID)
			}
		})
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range FullRegistry() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s missing title or runner", e.ID)
		}
	}
	if len(Registry()) != 18 {
		t.Errorf("paper registry has %d experiments, want 18", len(Registry()))
	}
	if len(seen) != 26 {
		t.Errorf("full registry has %d experiments, want 26", len(seen))
	}
}

func TestByIDExperiment(t *testing.T) {
	e, err := ByIDExperiment("table2")
	if err != nil || e.ID != "table2" {
		t.Fatalf("ByIDExperiment: %v %v", e.ID, err)
	}
	if _, err := ByIDExperiment("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// Table 2 full-fidelity shape check against the paper's measurements:
// Conv+Conv ~1x, BN+BN marginal, Conv+BN substantial speedup.
func TestTable2Shape(t *testing.T) {
	r, err := Table2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.(*Table2Result)
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	byPair := map[string]Table2Row{}
	for _, row := range tbl.Rows {
		byPair[row.Pair] = row
	}
	if s := byPair["Conv2d-Conv2d"].Speedup; s < 0.90 || s > 1.10 {
		t.Errorf("Conv2d-Conv2d speedup %.2f, paper: 0.98", s)
	}
	if s := byPair["BN2d-BN2d"].Speedup; s < 0.95 || s > 1.25 {
		t.Errorf("BN2d-BN2d speedup %.2f, paper: 1.08", s)
	}
	if s := byPair["Conv2d-BN2d"].Speedup; s < 1.20 || s > 1.60 {
		t.Errorf("Conv2d-BN2d speedup %.2f, paper: 1.41", s)
	}
}

// Figure 1's trace must be bursty: both near-idle and busy buckets.
func TestFigure1Bursty(t *testing.T) {
	r, err := Figure1(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := r.(*TraceResult)
	if len(tr.Samples) < 20 {
		t.Fatalf("only %d samples", len(tr.Samples))
	}
	var lo, hi float64 = 2, -1
	for _, s := range tr.Samples {
		if s.Compute < lo {
			lo = s.Compute
		}
		if s.Compute > hi {
			hi = s.Compute
		}
	}
	if hi-lo < 0.3 {
		t.Errorf("compute utilization range %.2f..%.2f not bursty", lo, hi)
	}
	// Table 1: MobileNetV2 training averages ~34% compute, ~49% membw.
	if tr.AvgComp < 0.25 || tr.AvgComp > 0.45 {
		t.Errorf("avg compute %.2f, Table 1 says 0.34", tr.AvgComp)
	}
	if tr.AvgMem < 0.38 || tr.AvgMem > 0.60 {
		t.Errorf("avg membw %.2f, Table 1 says 0.49", tr.AvgMem)
	}
}

// Figures 8/9: Orion collocation must lift utilization substantially, as
// in the paper (compute 7%->36%, membw 10%->47%).
func TestFigure89UtilizationLift(t *testing.T) {
	r8, err := Figure8(Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	u8 := r8.(*UtilCompareResult)
	if u8.CollocatedAvg < u8.AloneAvg*2 {
		t.Errorf("compute: alone %.2f collocated %.2f, want >=2x lift", u8.AloneAvg, u8.CollocatedAvg)
	}
	r9, err := Figure9(Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	u9 := r9.(*UtilCompareResult)
	if u9.CollocatedAvg < u9.AloneAvg*2 {
		t.Errorf("membw: alone %.2f collocated %.2f, want >=2x lift", u9.AloneAvg, u9.CollocatedAvg)
	}
	if !strings.Contains(r9.Render(), "membw") {
		t.Error("figure 9 render missing metric label")
	}
}

// The DUR_THRESHOLD sweep must show the paper's monotone trade-off:
// best-effort throughput grows with the threshold.
func TestDurThresholdTradeoffQuick(t *testing.T) {
	r, err := DurThresholdSensitivity(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := r.(*DurThreshResult).Rows
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].BEThroughput < rows[0].BEThroughput {
		t.Errorf("BE throughput fell from %.2f to %.2f as threshold grew",
			rows[0].BEThroughput, rows[1].BEThroughput)
	}
}

// Interception overhead stays under the paper's 1% bound.
func TestOverheadUnder1Percent(t *testing.T) {
	r, err := Overhead(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.(*OverheadResult).Rows {
		if row.Overhead > 0.01 {
			t.Errorf("%s: overhead %.2f%%, paper: <1%%", row.Workload, row.Overhead*100)
		}
	}
}

// Sanity on the rendered collocation figure structure.
func TestCollocationFigureRender(t *testing.T) {
	fig := &CollocationFigure{
		Title:   "t",
		Schemes: []Scheme{Ideal, Orion},
		HPs:     []string{"m"},
		Cells: map[string]map[Scheme]*CollocationCell{
			"m": {
				Ideal: {HPp50: sim.Millis(1), HPp99: sim.Millis(2), HPThroughput: 10, Samples: 1},
				Orion: {HPp50: sim.Millis(1), HPp99: sim.Millis(3), HPThroughput: 10, BEThroughput: 5, Samples: 1},
			},
		},
	}
	out := fig.Render()
	if !strings.Contains(out, "orion") || !strings.Contains(out, "1.50") {
		t.Errorf("render missing scheme or ratio:\n%s", out)
	}
	if fig.Cell("m", Ideal) == nil || fig.Cell("x", Ideal) != nil {
		t.Error("Cell lookup wrong")
	}
}
