package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"orion/internal/harness"
	"orion/internal/sim"
)

// submitKey is submit with a client-supplied Idempotency-Key.
func submitKey(t *testing.T, ts *httptest.Server, cfg harness.Config, key string) (JobStatus, *http.Response) {
	t.Helper()
	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/experiments", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

// waitRunning blocks until the job is observably running — which, with
// journaling on, also means its "running" record is durable (the server
// journals the transition before making it visible).
func waitRunning(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		j := s.jobs[id]
		running := j != nil && j.state == StateRunning
		s.mu.Unlock()
		if running {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

func summaryJSON(t *testing.T, s *harness.Summary) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCrashRecovery is the tentpole acceptance test: a daemon that dies
// with one job mid-flight and more queued loses nothing. The next
// incarnation re-enqueues the queued jobs as-is and re-executes the
// interrupted one with the recovered flag and a bumped restart count —
// and because the harness is deterministic per seed, the recovered
// job's summary is bit-identical to an uninterrupted run's.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	unblock := make(chan struct{})
	a := mustNew(t, Config{Workers: 1, QueueDepth: 8, JournalDir: dir, testBlock: unblock})
	tsA := httptest.NewServer(a.Handler())

	cfgs := []harness.Config{
		quickConfig(harness.Orion),
		quickConfig(harness.Reef),
		quickConfig(harness.Streams),
	}
	var ids []string
	for i, cfg := range cfgs {
		st, resp := submit(t, tsA, cfg)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	// The single pinned worker owns ids[0] (journaled running, then
	// parked); ids[1] and ids[2] sit in the queue.
	waitRunning(t, a, ids[0])

	// Crash: abandon incarnation A without any shutdown. Its worker stays
	// parked forever; its journal handle goes stale, exactly like a
	// SIGKILLed process's.
	tsA.Close()

	b := mustNew(t, Config{Workers: 2, QueueDepth: 8, JournalDir: dir})
	defer b.Shutdown(context.Background())
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()

	for i, id := range ids {
		got := pollDone(t, tsB, id)
		if got.State != StateDone {
			t.Fatalf("job %s after recovery: %q (%s)", id, got.State, got.Error)
		}
		wantRecovered := i == 0
		if got.Recovered != wantRecovered || got.RestartCount != b2i(wantRecovered) {
			t.Errorf("job %s: recovered=%v restarts=%d, want recovered=%v restarts=%d",
				id, got.Recovered, got.RestartCount, wantRecovered, b2i(wantRecovered))
		}
		direct, err := harness.RunWire(context.Background(), cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		want := summaryJSON(t, harness.Summarize(direct))
		if got := summaryJSON(t, got.Result); got != want {
			t.Errorf("job %s: recovered summary not bit-identical:\n got %s\nwant %s", id, got, want)
		}
	}
	if got := b.cRecovered.Value(); got != 1 {
		t.Errorf("recovered counter = %v, want 1", got)
	}

	var buf bytes.Buffer
	resp, err := http.Get(tsB.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "orion_serve_recovered_jobs_total 1") {
		t.Error("/metrics missing orion_serve_recovered_jobs_total 1")
	}
	if !strings.Contains(buf.String(), "orion_serve_journal_bytes") {
		t.Error("/metrics missing orion_serve_journal_bytes")
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestDoubleCrashRecovery: a job interrupted twice carries restart count
// 2 and still lands on the exact deterministic answer.
func TestDoubleCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := quickConfig(harness.Orion)

	a := mustNew(t, Config{Workers: 1, QueueDepth: 4, JournalDir: dir, testBlock: make(chan struct{})})
	tsA := httptest.NewServer(a.Handler())
	st, resp := submit(t, tsA, cfg)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitRunning(t, a, st.ID)
	tsA.Close() // crash 1

	b := mustNew(t, Config{Workers: 1, QueueDepth: 4, JournalDir: dir, testBlock: make(chan struct{})})
	waitRunning(t, b, st.ID) // recovered, running again, parked
	// crash 2: abandon b too

	c := mustNew(t, Config{Workers: 1, QueueDepth: 4, JournalDir: dir})
	defer c.Shutdown(context.Background())
	tsC := httptest.NewServer(c.Handler())
	defer tsC.Close()

	got := pollDone(t, tsC, st.ID)
	if got.State != StateDone || !got.Recovered || got.RestartCount != 2 {
		t.Fatalf("after two crashes: state=%q recovered=%v restarts=%d (%s)",
			got.State, got.Recovered, got.RestartCount, got.Error)
	}
	direct, err := harness.RunWire(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := summaryJSON(t, harness.Summarize(direct)); summaryJSON(t, got.Result) != want {
		t.Error("twice-recovered summary not bit-identical to direct run")
	}
}

// TestRestartRestoresTerminalJobs: a clean restart restores finished
// jobs with their summaries, keeps idempotency keys deduplicating, and
// lets a canceled job's key run for real on resubmission.
func TestRestartRestoresTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	unblock := make(chan struct{})
	a := mustNew(t, Config{Workers: 1, QueueDepth: 4, JournalDir: dir})
	a.testBlock = unblock
	tsA := httptest.NewServer(a.Handler())

	cfg := quickConfig(harness.Orion)
	stX, resp := submitKey(t, tsA, cfg, "key-done")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit X: %d", resp.StatusCode)
	}
	waitRunning(t, a, stX.ID)
	stY, resp := submitKey(t, tsA, cfg, "key-canceled")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit Y: %d", resp.StatusCode)
	}
	// Replaying the same key against the live server must not create a
	// second job.
	dup, resp := submitKey(t, tsA, cfg, "key-canceled")
	if resp.StatusCode != http.StatusOK || dup.ID != stY.ID {
		t.Fatalf("idempotent replay: code=%d id=%s want 200/%s", resp.StatusCode, dup.ID, stY.ID)
	}

	// Graceful drain: X (in flight) completes, Y (queued) cancels.
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		shutdownErr <- a.Shutdown(ctx)
	}()
	for !a.draining.Load() {
		time.Sleep(2 * time.Millisecond)
	}
	close(unblock)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	doneX := pollDone(t, tsA, stX.ID)
	if doneX.State != StateDone {
		t.Fatalf("X after drain: %q", doneX.State)
	}
	tsA.Close()

	b := mustNew(t, Config{Workers: 1, QueueDepth: 4, JournalDir: dir})
	defer b.Shutdown(context.Background())
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()

	// X restored done, summary intact, still deduplicating.
	gotX := pollDone(t, tsB, stX.ID)
	if gotX.State != StateDone || gotX.Recovered {
		t.Fatalf("restored X: state=%q recovered=%v", gotX.State, gotX.Recovered)
	}
	if summaryJSON(t, gotX.Result) != summaryJSON(t, doneX.Result) {
		t.Error("restored summary differs from pre-restart summary")
	}
	replay, resp := submitKey(t, tsB, cfg, "key-done")
	if resp.StatusCode != http.StatusOK || replay.ID != stX.ID {
		t.Errorf("idempotent replay across restart: code=%d id=%s want 200/%s",
			resp.StatusCode, replay.ID, stX.ID)
	}

	// Y restored canceled; its key is free again, so resubmitting runs a
	// fresh job instead of returning the tombstone.
	gotY := pollDone(t, tsB, stY.ID)
	if gotY.State != StateCanceled {
		t.Fatalf("restored Y: %q, want canceled", gotY.State)
	}
	fresh, resp := submitKey(t, tsB, cfg, "key-canceled")
	if resp.StatusCode != http.StatusAccepted || fresh.ID == stY.ID {
		t.Fatalf("canceled key resubmit: code=%d id=%s (old %s)", resp.StatusCode, fresh.ID, stY.ID)
	}
	if got := pollDone(t, tsB, fresh.ID); got.State != StateDone {
		t.Errorf("fresh job for canceled key: %q (%s)", got.State, got.Error)
	}
}

// TestWorkerPanicIsolated: a panicking experiment fails its own job —
// with the stack in the error — and the daemon keeps serving.
func TestWorkerPanicIsolated(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())
	calls := 0
	s.testRun = func(cfg harness.Config) (*harness.Result, error) {
		calls++
		if calls == 1 {
			panic("injected kernel fault")
		}
		rc, err := cfg.Build()
		if err != nil {
			return nil, err
		}
		return harness.Run(rc)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, resp := submit(t, ts, quickConfig(harness.Orion))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	got := pollDone(t, ts, st.ID)
	if got.State != StateFailed {
		t.Fatalf("panicking job: %q, want failed", got.State)
	}
	if !strings.Contains(got.Error, "injected kernel fault") || !strings.Contains(got.Error, "goroutine") {
		t.Errorf("panic error lacks message or stack: %q", got.Error)
	}
	if got := s.cPanics.Value(); got != 1 {
		t.Errorf("panic counter = %v, want 1", got)
	}
	// The daemon survived: the next submission runs normally.
	st2, resp := submit(t, ts, quickConfig(harness.Orion))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-panic submit: %d", resp.StatusCode)
	}
	if got := pollDone(t, ts, st2.ID); got.State != StateDone {
		t.Errorf("post-panic job: %q (%s)", got.State, got.Error)
	}
}

// TestJobDeadlineCancelsRunaway: a per-job deadline fails an experiment
// that would otherwise run (effectively) forever.
func TestJobDeadlineCancelsRunaway(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueDepth: 4, JobDeadline: 30 * time.Millisecond})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := quickConfig(harness.Orion)
	cfg.Horizon = 3600 * sim.Second // hours of virtual time: cannot finish in 30ms wall
	st, resp := submit(t, ts, cfg)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	got := pollDone(t, ts, st.ID)
	if got.State != StateFailed {
		t.Fatalf("runaway job: %q, want failed", got.State)
	}
	if !strings.Contains(got.Error, "deadline") {
		t.Errorf("deadline failure error = %q", got.Error)
	}
}

// TestEventStreamHeartbeatAndDisconnect: idle streams carry heartbeat
// comments, and a client that hangs up is unsubscribed promptly instead
// of leaking its channel until the job ends.
func TestEventStreamHeartbeatAndDisconnect(t *testing.T) {
	unblock := make(chan struct{})
	s := mustNew(t, Config{Workers: 1, QueueDepth: 4, Heartbeat: 25 * time.Millisecond})
	s.testBlock = unblock
	defer s.Shutdown(context.Background())
	defer close(unblock) // unpark the worker before Shutdown waits on it
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, resp := submit(t, ts, quickConfig(harness.Orion))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitRunning(t, s, st.ID)

	res, err := http.Get(ts.URL + "/v1/experiments/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(res.Body)
	heartbeats := 0
	deadline := time.Now().Add(10 * time.Second)
	for heartbeats < 2 && sc.Scan() {
		if strings.HasPrefix(sc.Text(), ": heartbeat") {
			heartbeats++
		}
		if time.Now().After(deadline) {
			break
		}
	}
	if heartbeats < 2 {
		t.Fatalf("saw %d heartbeats on an idle stream, want >= 2 (scan err %v)", heartbeats, sc.Err())
	}
	res.Body.Close() // client disconnect

	// The server must notice (canceled request context or failed
	// heartbeat write) and drop the subscription while the job is still
	// running.
	deadline = time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.jobs[st.ID].subs)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscription not torn down after disconnect: %d subscribers", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJournalDisabledUnchanged: without a journal dir the server behaves
// exactly as before — no files, no recovery, no journal metrics motion.
func TestJournalDisabledUnchanged(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	st, resp := submit(t, ts, quickConfig(harness.Orion))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if got := pollDone(t, ts, st.ID); got.State != StateDone || got.Recovered || got.RestartCount != 0 {
		t.Fatalf("journal-less job: state=%q recovered=%v restarts=%d", got.State, got.Recovered, got.RestartCount)
	}
	if got := s.gJournalBytes.Value(); got != 0 {
		t.Errorf("journal bytes gauge = %v without a journal", got)
	}
}
