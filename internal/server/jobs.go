package server

import (
	"fmt"
	"net/http"
	"time"

	"orion/internal/harness"
	"orion/internal/metrics"
)

// State is a job's lifecycle position.
type State string

// Job lifecycle: Queued → Running → Done | Failed. Canceled marks jobs
// that were still queued when the server began draining.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one progress notification on a job's event stream.
type Event struct {
	// Seq orders events within a job, starting at 1.
	Seq int `json:"seq"`
	// Time is the wall-clock emission time (the serving layer lives in
	// real time; only the experiment inside runs on virtual time).
	Time time.Time `json:"time"`
	// Stage describes the transition: "queued", "running",
	// "profile <workload>", "simulate", "collect", and finally one of
	// the terminal states.
	Stage string `json:"stage"`
}

// job is one submitted experiment. Mutable fields are guarded by the
// owning Server's mu.
type job struct {
	id        string
	state     State
	cfg       harness.Config
	submitted time.Time
	started   time.Time
	finished  time.Time
	summary   *harness.Summary
	errMsg    string
	events    []Event
	subs      map[chan Event]bool
}

// JobStatus is the wire-level view of a job.
type JobStatus struct {
	ID          string           `json:"id"`
	State       State            `json:"state"`
	Scheme      harness.Scheme   `json:"scheme"`
	SubmittedAt time.Time        `json:"submitted_at"`
	StartedAt   *time.Time       `json:"started_at,omitempty"`
	FinishedAt  *time.Time       `json:"finished_at,omitempty"`
	Error       string           `json:"error,omitempty"`
	Result      *harness.Summary `json:"result,omitempty"`
}

func (j *job) status() JobStatus {
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Scheme:      j.cfg.Scheme,
		SubmittedAt: j.submitted,
		Error:       j.errMsg,
		Result:      j.summary,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// emit appends a progress event and fans it out to subscribers. Callers
// hold s.mu. Slow subscribers lose events rather than stall the worker.
func (s *Server) emit(j *job, stage string) {
	e := Event{Seq: len(j.events) + 1, Time: time.Now(), Stage: stage}
	j.events = append(j.events, e)
	for ch := range j.subs {
		select {
		case ch <- e:
		default:
		}
	}
}

// subscribe registers a live event channel and returns the job's event
// history so the caller can replay it before streaming.
func (s *Server) subscribe(j *job) (chan Event, []Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan Event, 64)
	j.subs[ch] = true
	past := append([]Event(nil), j.events...)
	return ch, past
}

func (s *Server) unsubscribe(j *job, ch chan Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(j.subs, ch)
}

// worker pulls queued jobs and runs them until the server starts
// draining. In-flight jobs always run to completion; jobs still queued
// at drain time are canceled by Shutdown, not here.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// Bias toward quit: without this, the two-way select below may
		// keep picking up queued work while draining.
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one experiment on the calling worker goroutine.
func (s *Server) runJob(j *job) {
	s.gQueueDepth.Dec()
	s.gWorkersBusy.Inc()
	defer s.gWorkersBusy.Dec()

	s.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	s.emit(j, "running")
	progress := func(stage string) {
		s.mu.Lock()
		s.emit(j, stage)
		s.mu.Unlock()
	}
	cfg := j.cfg
	s.mu.Unlock()

	if s.testBlock != nil {
		<-s.testBlock
	}

	rc, err := cfg.Build()
	var res *harness.Result
	if err == nil {
		rc.Progress = progress
		res, err = harness.Run(rc)
	}
	wall := time.Since(j.started).Seconds()

	s.mu.Lock()
	defer s.mu.Unlock()
	j.finished = time.Now()
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		s.cJobs(StateFailed).Inc()
		s.emit(j, string(StateFailed))
		return
	}
	j.state = StateDone
	j.summary = harness.Summarize(res)
	s.cJobs(StateDone).Inc()
	scheme := string(cfg.Scheme)
	s.simSeconds(scheme).Observe(rc.Horizon.Seconds())
	s.wallSeconds(scheme).Observe(wall)
	s.emit(j, string(StateDone))
}

// cJobs returns the terminal-state counter for one state.
func (s *Server) cJobs(st State) *metrics.Counter {
	return s.reg.Counter("orion_serve_jobs_total",
		"Experiments finished, by terminal state.", metrics.Labels{"state": string(st)})
}

// simSeconds returns the per-scheme simulated-horizon histogram.
func (s *Server) simSeconds(scheme string) *metrics.Histogram {
	return s.reg.Histogram("orion_serve_sim_seconds",
		"Simulated seconds per completed experiment, by scheme.",
		[]float64{0.5, 1, 2, 5, 10, 30, 60, 120}, metrics.Labels{"scheme": scheme})
}

// wallSeconds returns the per-scheme wall-clock run-time histogram.
func (s *Server) wallSeconds(scheme string) *metrics.Histogram {
	return s.reg.Histogram("orion_serve_run_wall_seconds",
		"Wall-clock seconds per completed experiment, by scheme.",
		metrics.DefBuckets(), metrics.Labels{"scheme": scheme})
}

// admissionError is an admission-control rejection with its HTTP status.
type admissionError struct {
	code int
	msg  string
}

func (e *admissionError) Error() string { return e.msg }

// admit performs the whole admission step — draining check, bounded
// retention, record creation and enqueue — under one lock acquisition,
// so a job can never land in the queue after Shutdown's cancel sweep
// (Shutdown flips draining under the same lock). Retention evicts the
// oldest finished record when the cap is hit and rejects when every
// retained record is still live: the bound that keeps server memory
// finite no matter how many submissions arrive.
func (s *Server) admit(cfg harness.Config) (*job, *admissionError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return nil, &admissionError{http.StatusServiceUnavailable, "server is draining"}
	}
	if len(s.order) >= s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.order {
			if j := s.jobs[id]; j.state.terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return nil, &admissionError{http.StatusTooManyRequests,
				fmt.Sprintf("job table full (%d live jobs)", s.cfg.MaxJobs)}
		}
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("exp-%06d", s.seq),
		state:     StateQueued,
		cfg:       cfg,
		submitted: time.Now(),
		subs:      map[chan Event]bool{},
	}
	select {
	case s.queue <- j:
	default:
		return nil, &admissionError{http.StatusTooManyRequests,
			fmt.Sprintf("queue full (%d waiting)", s.cfg.QueueDepth)}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.gQueueDepth.Inc()
	s.cSubmitted.Inc()
	s.emit(j, string(StateQueued))
	return j, nil
}
