package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"orion/internal/checkpoint"
	"orion/internal/errfs"
	"orion/internal/harness"
	"orion/internal/metrics"
)

// State is a job's lifecycle position.
type State string

// Job lifecycle: Queued → Running → Done | Failed. Canceled marks jobs
// that were still queued when the server began draining. After a crash,
// a job that was Running re-enters Queued with its restart count bumped.
// Parked marks a job whose wall-clock deadline expired mid-run with a
// persisted checkpoint to show for it: not terminal — POST
// /v1/experiments/{id}/resume re-queues it (optionally with a larger
// deadline) and the run continues from the verified checkpoint.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
	StateParked   State = "parked"
)

func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Terminal reports whether the state is final (done, failed or
// canceled). Exported for clients polling JobStatus.
func (s State) Terminal() bool { return s.terminal() }

// Event is one progress notification on a job's event stream.
type Event struct {
	// Seq orders events within a job, starting at 1.
	Seq int `json:"seq"`
	// Time is the wall-clock emission time (the serving layer lives in
	// real time; only the experiment inside runs on virtual time).
	Time time.Time `json:"time"`
	// Stage describes the transition: "queued", "running",
	// "profile <workload>", "simulate", "collect", "recovered" (after a
	// crash replay), and finally one of the terminal states.
	Stage string `json:"stage"`
}

// job is one submitted experiment. Mutable fields are guarded by the
// owning Server's mu.
type job struct {
	id        string
	state     State
	cfg       harness.Config
	cfgJSON   json.RawMessage // canonical config bytes, as journaled
	idemKey   string
	recovered bool // re-executed after a crash interrupted it
	restarts  int  // how many times a crash forced re-execution
	// resume, when non-nil, is the persisted checkpoint the next
	// execution continues from (set by recovery and by handleResume).
	resume *checkpoint.Checkpoint
	// deadline overrides the server-wide JobDeadline for this job (set
	// by handleResume so a parked job can run with a larger budget).
	deadline  time.Duration
	submitted time.Time
	started   time.Time
	finished  time.Time
	summary   *harness.Summary
	errMsg    string
	// ckptErr is the most recent checkpoint write failure (kept after the
	// job finishes — it explains why a resume had less to work with).
	ckptErr string
	// ckptErrLogged dedups the operator log line to once per job.
	ckptErrLogged bool
	// degraded marks a job at least one of whose journal appends never
	// reached disk (full-disk window): its transitions lacked the usual
	// crash guarantee while it ran.
	degraded bool
	events   []Event
	subs     map[chan Event]bool
}

// JobStatus is the wire-level view of a job.
type JobStatus struct {
	ID          string           `json:"id"`
	State       State            `json:"state"`
	Scheme      harness.Scheme   `json:"scheme"`
	SubmittedAt time.Time        `json:"submitted_at"`
	StartedAt   *time.Time       `json:"started_at,omitempty"`
	FinishedAt  *time.Time       `json:"finished_at,omitempty"`
	Error       string           `json:"error,omitempty"`
	Result      *harness.Summary `json:"result,omitempty"`
	// Recovered marks a job re-executed because a crash interrupted it;
	// RestartCount says how many times. The result is still bit-identical
	// to an uninterrupted run (the harness is deterministic per seed).
	Recovered    bool `json:"recovered,omitempty"`
	RestartCount int  `json:"restart_count,omitempty"`
	// CheckpointError is the last failed checkpoint write, if any: the
	// job kept running, but a resume can only use the previous stride.
	CheckpointError string `json:"checkpoint_error,omitempty"`
	// DurabilityDegraded marks a job that ran through a full-disk window
	// journal-less: its transitions were not crash-durable at the time.
	DurabilityDegraded bool `json:"durability_degraded,omitempty"`
}

func (j *job) status() JobStatus {
	st := JobStatus{
		ID:                 j.id,
		State:              j.state,
		Scheme:             j.cfg.Scheme,
		SubmittedAt:        j.submitted,
		Error:              j.errMsg,
		Result:             j.summary,
		Recovered:          j.recovered,
		RestartCount:       j.restarts,
		CheckpointError:    j.ckptErr,
		DurabilityDegraded: j.degraded,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// emit appends a progress event and fans it out to subscribers. Callers
// hold s.mu. Slow subscribers lose events rather than stall the worker.
func (s *Server) emit(j *job, stage string) {
	e := Event{Seq: len(j.events) + 1, Time: time.Now(), Stage: stage}
	j.events = append(j.events, e)
	for ch := range j.subs {
		select {
		case ch <- e:
		default:
		}
	}
}

// subscribe registers a live event channel and returns the job's event
// history so the caller can replay it before streaming.
func (s *Server) subscribe(j *job) (chan Event, []Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan Event, 64)
	j.subs[ch] = true
	past := append([]Event(nil), j.events...)
	return ch, past
}

// unsubscribe drops and closes the subscriber channel. Closing under mu
// is safe — emit only sends under the same lock — and frees the channel
// immediately instead of waiting for the job to finish.
func (s *Server) unsubscribe(j *job, ch chan Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.subs[ch] {
		delete(j.subs, ch)
		close(ch)
	}
}

// worker pulls queued jobs and runs them until the server starts
// draining. In-flight jobs always run to completion; jobs still queued
// at drain time are canceled by Shutdown, not here. Each worker owns an
// arena of per-run scratch state (the simulation engine with its warmed
// event pool) reused across the jobs it executes.
func (s *Server) worker() {
	defer s.wg.Done()
	arena := harness.NewArena()
	for {
		// Bias toward quit: without this, the two-way select below may
		// keep picking up queued work while draining.
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.runJob(j, arena)
		}
	}
}

// execOpts describes one experiment execution attempt.
type execOpts struct {
	id       string
	cfg      harness.Config
	cfgJSON  json.RawMessage
	progress func(string)
	arena    *harness.Arena
	// deadline is the effective wall-clock budget (0 = unbounded).
	deadline time.Duration
	// ckptPath, when non-empty, persists checkpoints there as the run
	// crosses stride boundaries.
	ckptPath string
	// resume, when non-nil, continues from this verified checkpoint.
	resume *checkpoint.Checkpoint
}

// execResult is what one execution attempt produced: the wire summary
// plus the engine event totals the metrics layer reports.
type execResult struct {
	summary  *harness.Summary
	replayed uint64
}

// execute runs one experiment with the crash bulkheads in place: a
// panicking harness run is caught here (the job fails with the stack in
// its error; the daemon keeps serving), and the effective per-job
// deadline cancels runaway simulations through the harness's context
// plumbing. A multi-seed submission (cfg.Seeds > 1) fans its cells out
// across the batch worker pool instead of running on the one worker
// goroutine; everything else — deadline, checkpointing, parking — is
// identical.
func (s *Server) execute(o execOpts) (er *execResult, horizon time.Duration, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.cPanics.Inc()
			er = nil
			err = fmt.Errorf("experiment panicked: %v\n%s", p, debug.Stack())
		}
	}()
	if s.testRun != nil {
		res, err := s.testRun(o.cfg)
		if err != nil {
			return nil, 0, err
		}
		return &execResult{summary: harness.Summarize(res)}, 0, nil
	}
	ctx := context.Background()
	if o.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.deadline)
		defer cancel()
	}
	if o.cfg.Seeds > 1 {
		return s.executeBatch(ctx, o)
	}
	rc, err := o.cfg.Build()
	if err != nil {
		return nil, 0, err
	}
	rc.Progress = o.progress
	rc.Arena = o.arena
	if o.ckptPath != "" || o.resume != nil {
		cc := &harness.CheckpointConfig{
			Stride: s.cfg.CheckpointStride,
			Config: o.cfgJSON,
			Resume: o.resume,
		}
		if o.ckptPath != "" {
			cc.Sink = s.checkpointSink(o.id, o.ckptPath)
		}
		rc.Checkpoint = cc
	}
	var res *harness.Result
	// Label the run so CPU profiles of the daemon attribute samples to the
	// experiment kind being simulated.
	pprof.Do(ctx, pprof.Labels("experiment", string(o.cfg.Scheme)), func(ctx context.Context) {
		res, err = harness.RunContext(ctx, rc)
	})
	if err != nil {
		return nil, 0, err
	}
	return &execResult{summary: harness.Summarize(res), replayed: res.Replayed}, rc.Horizon.Std(), nil
}

// executeBatch fans one multi-seed job's cells out on the parallel
// batch runner. Checkpoints go through the same per-job ckpt-<id>.ck
// file, holding a container with every cell's state (finished cells'
// summaries plus in-flight cells' own checkpoints), so park/resume and
// crash recovery work exactly like single runs: a resumed batch skips
// finished cells entirely and replays only each in-flight cell's own
// prefix. Errors surface as *parallel.CellError, which unwraps to the
// cell's error — errors.Is(err, context.DeadlineExceeded) still parks.
func (s *Server) executeBatch(ctx context.Context, o execOpts) (*execResult, time.Duration, error) {
	bo := harness.BatchOptions{
		Parallelism: s.cfg.BatchParallelism,
		Progress:    o.progress,
	}
	if o.ckptPath != "" || o.resume != nil {
		cc := &harness.CheckpointConfig{
			Stride: s.cfg.CheckpointStride,
			Config: o.cfgJSON,
			Resume: o.resume,
		}
		if o.ckptPath != "" {
			cc.Sink = s.checkpointSink(o.id, o.ckptPath)
		}
		bo.Checkpoint = cc
	}
	var out *harness.BatchOutcome
	var err error
	pprof.Do(ctx, pprof.Labels("experiment", string(o.cfg.Scheme)), func(ctx context.Context) {
		out, err = harness.RunWireBatch(ctx, o.cfg, bo)
	})
	if err != nil {
		return nil, 0, err
	}
	h := o.cfg.Horizon
	if h == 0 {
		h = harness.DefaultHorizon
	}
	return &execResult{summary: out.Summary, replayed: out.Replayed},
		h.Std() * time.Duration(o.cfg.Seeds), nil
}

// checkpointPath is where a job's latest checkpoint lives, next to the
// journal segments.
func (s *Server) checkpointPath(id string) string {
	if s.cfg.JournalDir == "" || s.cfg.CheckpointStride == 0 {
		return ""
	}
	return filepath.Join(s.cfg.JournalDir, "ckpt-"+id+".ck")
}

// checkpointSink persists each captured checkpoint atomically. A write
// failure must not kill the experiment — it only shrinks how much a
// later resume can skip — but it is no longer silent: the counter bumps,
// the job is annotated with the error (visible on GET
// /v1/experiments/{id}), the operator log gets one line per job, and an
// ENOSPC flips the server into degraded mode. (Contrast the golden
// resume tests, which return an error here exactly to emulate a crash at
// a stride boundary.)
func (s *Server) checkpointSink(id, path string) func(*checkpoint.Checkpoint) error {
	return func(ck *checkpoint.Checkpoint) error {
		start := time.Now()
		if err := checkpoint.WriteFileFS(s.fsys, path, ck); err != nil {
			s.cCkptErrs.Inc()
			s.noteCheckpointError(id, err)
			s.noteJournalError(err)
			return nil
		}
		s.gCkptBytes.Set(float64(ck.SizeBytes()))
		s.hCkptWrite.Observe(time.Since(start).Seconds())
		return nil
	}
}

// noteCheckpointError annotates the job with its latest checkpoint write
// failure and logs the first one.
func (s *Server) noteCheckpointError(id string, err error) {
	logIt := false
	s.mu.Lock()
	if j := s.jobs[id]; j != nil {
		j.ckptErr = err.Error()
		if !j.ckptErrLogged {
			j.ckptErrLogged = true
			logIt = true
		}
	}
	s.mu.Unlock()
	if logIt {
		log.Printf("orion-serve: checkpoint write for %s failed: %v (further failures for this job counted but not logged)", id, err)
	}
}

// runJob executes one experiment on the calling worker goroutine.
func (s *Server) runJob(j *job, arena *harness.Arena) {
	s.gWorkersBusy.Inc()
	defer s.gWorkersBusy.Dec()

	s.mu.Lock()
	s.queued--
	s.gQueueDepth.Dec()
	cfg := j.cfg
	restarts := j.restarts
	resume := j.resume
	deadline := j.deadline
	if deadline == 0 {
		deadline = s.cfg.JobDeadline
	}
	s.mu.Unlock()

	// Journal the transition before making it visible, mirroring the
	// journal-before-ack rule on submit: once anyone can observe the job
	// running, a crash is guaranteed to replay it.
	s.journalState(j.id, StateRunning, "", nil, restarts)

	s.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	s.emit(j, "running")
	progress := func(stage string) {
		s.mu.Lock()
		s.emit(j, stage)
		s.mu.Unlock()
	}
	s.mu.Unlock()

	if s.testBlock != nil {
		<-s.testBlock
	}

	opts := execOpts{
		id: j.id, cfg: cfg, cfgJSON: j.cfgJSON, progress: progress, arena: arena,
		deadline: deadline, ckptPath: s.checkpointPath(j.id), resume: resume,
	}
	er, horizon, err := s.execute(opts)
	if err != nil && opts.resume != nil && !errors.Is(err, context.DeadlineExceeded) {
		// The checkpoint could not be verified against the replay (config
		// drift, code change, damaged file). Resuming is an optimization,
		// not an obligation: quarantine the file it came from and fall
		// back to full deterministic re-execution.
		if opts.ckptPath != "" && s.statExists(opts.ckptPath) {
			s.quarantineCheckpoint(j.id, opts.ckptPath, err)
		}
		s.mu.Lock()
		s.emit(j, "resume-fallback")
		s.mu.Unlock()
		opts.resume = nil
		er, horizon, err = s.execute(opts)
	}
	wall := time.Since(j.started).Seconds()

	var summary *harness.Summary
	if err == nil {
		summary = er.summary
	}
	// A deadline expiry parks the job instead of failing it when a
	// checkpoint was persisted: the spent work survives and the client
	// decides whether to grant a larger budget.
	parked := err != nil && errors.Is(err, context.DeadlineExceeded) &&
		opts.ckptPath != "" && s.statExists(opts.ckptPath)

	s.mu.Lock()
	j.finished = time.Now()
	j.resume = nil
	switch {
	case parked:
		j.state = StateParked
		j.errMsg = fmt.Sprintf("job deadline (%v) exceeded; parked at last checkpoint — resume with POST /v1/experiments/%s/resume", deadline, j.id)
		s.emit(j, string(StateParked))
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.cJobs(StateFailed).Inc()
		s.emit(j, string(StateFailed))
	default:
		j.state = StateDone
		j.summary = summary
		j.errMsg = ""
		s.cJobs(StateDone).Inc()
		scheme := string(cfg.Scheme)
		s.simSeconds(scheme).Observe(horizon.Seconds())
		s.wallSeconds(scheme).Observe(wall)
		if opts.resume != nil {
			s.cResumed.Inc()
			s.cReplayed.Add(float64(er.replayed))
		}
		s.emit(j, string(StateDone))
	}
	state, errMsg := j.state, j.errMsg
	s.mu.Unlock()
	s.journalState(j.id, state, errMsg, summary, restarts)
	if state.terminal() {
		// The checkpoint has served its purpose; parked jobs keep theirs.
		if p := opts.ckptPath; p != "" {
			_ = s.fsys.Remove(p)
		}
	}
	s.maybeCompact()
}

// statExists reports whether path exists on the server's filesystem.
func (s *Server) statExists(path string) bool {
	_, err := s.fsys.Stat(path)
	return err == nil
}

// fileExists reports whether path names an existing file.
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// cJobs returns the terminal-state counter for one state.
func (s *Server) cJobs(st State) *metrics.Counter {
	return s.reg.Counter("orion_serve_jobs_total",
		"Experiments finished, by terminal state.", metrics.Labels{"state": string(st)})
}

// simSeconds returns the per-scheme simulated-horizon histogram.
func (s *Server) simSeconds(scheme string) *metrics.Histogram {
	return s.reg.Histogram("orion_serve_sim_seconds",
		"Simulated seconds per completed experiment, by scheme.",
		[]float64{0.5, 1, 2, 5, 10, 30, 60, 120}, metrics.Labels{"scheme": scheme})
}

// wallSeconds returns the per-scheme wall-clock run-time histogram.
func (s *Server) wallSeconds(scheme string) *metrics.Histogram {
	return s.reg.Histogram("orion_serve_run_wall_seconds",
		"Wall-clock seconds per completed experiment, by scheme.",
		metrics.DefBuckets(), metrics.Labels{"scheme": scheme})
}

// admissionError is an admission-control rejection with its HTTP status.
type admissionError struct {
	code int
	msg  string
	// degraded routes the rejection through the durability_degraded
	// response shape (full journal disk) instead of the plain error body.
	degraded bool
}

func (e *admissionError) Error() string { return e.msg }

// admit performs the admission step: draining check, idempotency lookup,
// bounded retention, record creation, durable journaling, and enqueue.
// The job becomes visible (and the queue slot is reserved) under one
// lock acquisition; the journal append happens outside the lock so a
// slow fsync never blocks the job table, and the enqueue re-checks
// draining afterwards so a job can never land in the queue behind
// Shutdown's cancel sweep. The returned bool is false when an
// Idempotency-Key matched an existing job (nothing new was admitted).
func (s *Server) admit(cfg harness.Config, idemKey string) (*job, bool, *admissionError) {
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return nil, false, &admissionError{code: http.StatusInternalServerError, msg: err.Error()}
	}
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		return nil, false, &admissionError{code: http.StatusServiceUnavailable, msg: "server is draining"}
	}
	if idemKey != "" {
		if id, ok := s.idem[idemKey]; ok {
			j := s.jobs[id]
			// A canceled job never produced a result; let the client's
			// resubmission run it for real this time.
			if j != nil && j.state != StateCanceled {
				s.mu.Unlock()
				return j, false, nil
			}
		}
	}
	if s.queued >= s.cfg.QueueDepth {
		n := s.queued
		s.mu.Unlock()
		return nil, false, &admissionError{code: http.StatusTooManyRequests,
			msg: fmt.Sprintf("queue full (%d waiting)", n)}
	}
	if len(s.order) >= s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.order {
			if j := s.jobs[id]; j.state.terminal() {
				delete(s.jobs, id)
				if j.idemKey != "" && s.idem[j.idemKey] == id {
					delete(s.idem, j.idemKey)
				}
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			s.mu.Unlock()
			return nil, false, &admissionError{code: http.StatusTooManyRequests,
				msg: fmt.Sprintf("job table full (%d live jobs)", s.cfg.MaxJobs)}
		}
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("exp-%06d", s.seq),
		state:     StateQueued,
		cfg:       cfg,
		cfgJSON:   cfgJSON,
		idemKey:   idemKey,
		submitted: time.Now(),
		subs:      map[chan Event]bool{},
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if idemKey != "" {
		s.idem[idemKey] = j.id
	}
	s.queued++
	s.gQueueDepth.Inc()
	s.cSubmitted.Inc()
	s.emit(j, string(StateQueued))
	s.mu.Unlock()

	// Make the submission durable before acknowledging or running it: a
	// crash after this point re-creates the job from the journal.
	if err := s.journalSubmit(j); err != nil {
		s.mu.Lock()
		s.queued--
		s.gQueueDepth.Dec()
		j.state = StateFailed
		j.finished = time.Now()
		j.errMsg = "journal append failed: " + err.Error()
		s.cJobs(StateFailed).Inc()
		s.emit(j, string(StateFailed))
		s.mu.Unlock()
		if errfs.IsNoSpace(err) {
			// journalSubmit already flipped degraded mode; this submission
			// is the one that discovered the full disk.
			return nil, false, &admissionError{code: http.StatusServiceUnavailable,
				msg: "journal disk full: durability degraded, not accepting new work", degraded: true}
		}
		return nil, false, &admissionError{code: http.StatusInternalServerError,
			msg: "journal append failed: " + err.Error()}
	}

	s.mu.Lock()
	if s.draining.Load() {
		// Shutdown won the race while we were journaling; its sweep has
		// already run, so cancel here instead of enqueueing into nowhere.
		s.queued--
		s.gQueueDepth.Dec()
		j.state = StateCanceled
		j.finished = time.Now()
		j.errMsg = "server shut down before the job started"
		s.cJobs(StateCanceled).Inc()
		s.emit(j, string(StateCanceled))
		s.mu.Unlock()
		s.journalState(j.id, StateCanceled, j.errMsg, nil, 0)
		return nil, false, &admissionError{code: http.StatusServiceUnavailable, msg: "server is draining"}
	}
	s.queue <- j // capacity reserved by s.queued above; never blocks
	s.mu.Unlock()
	return j, true, nil
}
