package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// pinServer builds a server whose single worker parks on unblock, fills
// the worker with one job and the queue with QueueDepth more, and
// returns everything a backpressure/drain test needs.
func pinServer(t *testing.T, queueDepth, maxJobs int) (*Server, *httptest.Server, chan struct{}, []string) {
	t.Helper()
	unblock := make(chan struct{})
	s := mustNew(t, Config{Workers: 1, QueueDepth: queueDepth, MaxJobs: maxJobs, RetryAfter: 2 * time.Second})
	s.testBlock = unblock
	ts := httptest.NewServer(s.Handler())

	var ids []string
	st, resp := submit(t, ts, quickConfig("orion"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	ids = append(ids, st.ID)
	// Wait until the worker owns the first job so queue occupancy below
	// is exact.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		running := s.jobs[st.ID].state == StateRunning
		s.mu.Unlock()
		if running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < queueDepth; i++ {
		st, resp := submit(t, ts, quickConfig("orion"))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submit %d: %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	return s, ts, unblock, ids
}

// TestBackpressure is the acceptance test: with a full queue submissions
// get 429 + Retry-After, the job table stays bounded no matter how many
// submissions arrive, and admission recovers once capacity frees up.
func TestBackpressure(t *testing.T) {
	const queueDepth, maxJobs = 2, 8
	s, ts, unblock, ids := pinServer(t, queueDepth, maxJobs)
	defer ts.Close()
	defer s.Shutdown(context.Background())

	// Queue is now full: every further submission must bounce with 429
	// and a Retry-After hint, and must not grow the job table.
	for i := 0; i < 50; i++ {
		_, resp := submit(t, ts, quickConfig("orion"))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overload submit %d: code = %d, want 429", i, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "2" {
			t.Fatalf("Retry-After = %q, want \"2\"", ra)
		}
	}
	s.mu.Lock()
	records := len(s.jobs)
	s.mu.Unlock()
	if want := 1 + queueDepth; records != want {
		t.Errorf("job table holds %d records after 50 rejected submissions, want %d", records, want)
	}
	if got := s.cRejected.Value(); got != 50 {
		t.Errorf("rejections counter = %v, want 50", got)
	}

	// Unblock the worker: everything drains and admission recovers.
	close(unblock)
	for _, id := range ids {
		if st := pollDone(t, ts, id); st.State != StateDone {
			t.Errorf("job %s: state %q (%s)", id, st.State, st.Error)
		}
	}
	st, resp := submit(t, ts, quickConfig("orion"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain submit: %d", resp.StatusCode)
	}
	if got := pollDone(t, ts, st.ID); got.State != StateDone {
		t.Errorf("post-drain job: %q", got.State)
	}
}

// TestRetentionBound: finished records are evicted oldest-first once
// MaxJobs is hit, so long-running servers hold a bounded history.
func TestRetentionBound(t *testing.T) {
	const maxJobs = 4
	s := mustNew(t, Config{Workers: 1, QueueDepth: 2, MaxJobs: maxJobs})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 3*maxJobs; i++ {
		st, resp := submit(t, ts, quickConfig("orion"))
		if resp.StatusCode != http.StatusAccepted {
			// Full queue under a slow CI machine: wait for space.
			time.Sleep(50 * time.Millisecond)
			continue
		}
		ids = append(ids, st.ID)
		pollDone(t, ts, st.ID)
		s.mu.Lock()
		n := len(s.jobs)
		s.mu.Unlock()
		if n > maxJobs {
			t.Fatalf("job table grew to %d > MaxJobs %d", n, maxJobs)
		}
	}
	if len(ids) < maxJobs+1 {
		t.Fatalf("too few accepted jobs to exercise eviction: %d", len(ids))
	}
	// The oldest record must be gone, the newest still present.
	resp, err := http.Get(ts.URL + "/v1/experiments/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest job still retained: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/experiments/" + ids[len(ids)-1])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("newest job missing: %d", resp.StatusCode)
	}
}

// TestGracefulShutdown is the acceptance test's drain half: shutdown
// fails readiness and rejects submissions immediately, lets the in-flight
// job finish, cancels queued jobs, and keeps results pollable until the
// listener closes (which the caller does only after Shutdown returns).
func TestGracefulShutdown(t *testing.T) {
	const queueDepth = 2
	s, ts, unblock, ids := pinServer(t, queueDepth, 8)
	defer ts.Close()

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Readiness must fail as soon as draining begins, while the listener
	// is still up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never failed during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/healthz = %d during drain, want 200", resp.StatusCode)
		}
	}
	_, resp := submit(t, ts, quickConfig("orion"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain: %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("drain rejection missing Retry-After")
	}

	// Let the in-flight job complete; Shutdown must then return cleanly.
	close(unblock)
	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("shutdown never returned")
	}

	// In-flight job drained to completion; queued jobs were canceled;
	// both remain pollable before the listener closes.
	if st := pollDone(t, ts, ids[0]); st.State != StateDone || st.Result == nil {
		t.Errorf("in-flight job after drain: %q (result %v)", st.State, st.Result != nil)
	}
	for _, id := range ids[1:] {
		st := pollDone(t, ts, id)
		if st.State != StateCanceled {
			t.Errorf("queued job %s after drain: %q, want canceled", id, st.State)
		}
	}
}

// TestShutdownDeadline: a worker that cannot finish inside the drain
// deadline surfaces the context error instead of hanging forever.
func TestShutdownDeadline(t *testing.T) {
	unblock := make(chan struct{})
	s := mustNew(t, Config{Workers: 1, QueueDepth: 1})
	s.testBlock = unblock
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer close(unblock)

	st, resp := submit(t, ts, quickConfig("orion"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	_ = st
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("shutdown must report an incomplete drain")
	}
}
