package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"orion/internal/fleet"
)

// postFleetOp issues one operator POST (cordon/uncordon/drain/chaos)
// and decodes the body into out (when non-nil).
func postFleetOp(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func getFleetDevices(t *testing.T, ts *httptest.Server) []FleetDeviceStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/fleet/devices")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/fleet/devices = %d", resp.StatusCode)
	}
	var out []FleetDeviceStatus
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func getChaosStatus(t *testing.T, ts *httptest.Server) FleetChaosStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/fleet/chaos")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/fleet/chaos = %d", resp.StatusCode)
	}
	var st FleetChaosStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestFleetRetryTriagePinsOrder pins the pending-queue triage fix: a
// late high-priority arrival is re-placed before the best-effort
// backlog, and a large un-placeable job at the head of the queue cannot
// starve smaller jobs behind it.
func TestFleetRetryTriagePinsOrder(t *testing.T) {
	s := mustNew(t, fleetConfig(""))
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cap := fleet.ClassV100().MemoryBytes
	// Fill both devices with near-full HP residents (un-preemptible, so
	// the queued HP job genuinely waits).
	out, resp := postFleetJobs(t, ts, []fleet.JobSpec{
		{ID: "hp-a", Workload: "resnet50-inf", Priority: "hp", MemoryBytes: cap - (1 << 28)},
		{ID: "hp-b", Workload: "bert-inf", Priority: "hp", MemoryBytes: cap - (1 << 28)},
	})
	if resp.StatusCode != http.StatusAccepted || out[0].State != FleetPlaced || out[1].State != FleetPlaced {
		t.Fatalf("setup: %d %+v", resp.StatusCode, out)
	}
	// Queue, in FIFO order: a big BE job (head of line), a small BE job,
	// then an HP job. None fit right now.
	q, resp := postFleetJobs(t, ts, []fleet.JobSpec{
		{ID: "be-big", Workload: "resnet50-inf", MemoryBytes: cap - (1 << 28)},
		{ID: "be-small", Workload: "mobilenetv2-inf", MemoryBytes: 1 << 29},
		{ID: "hp-c", Workload: "transformer-inf", Priority: "hp", MemoryBytes: cap - (1 << 30)},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue submit = %d", resp.StatusCode)
	}
	for _, st := range q {
		if st.State != FleetPending {
			t.Fatalf("queued job %s = %s, want pending", st.ID, st.State)
		}
	}

	// Free one device. Triage must place hp-c first (despite its later
	// queue position), skip be-big (still does not fit), and then place
	// be-small into the remainder.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/fleet/jobs/hp-a", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	if st := getFleetJob(t, ts, "hp-c"); st.State != FleetPlaced {
		t.Fatalf("hp-c = %s, want placed (HP must jump the BE backlog)", st.State)
	}
	if st := getFleetJob(t, ts, "be-small"); st.State != FleetPlaced {
		t.Fatalf("be-small = %s, want placed (must not starve behind be-big)", st.State)
	}
	if st := getFleetJob(t, ts, "be-big"); st.State != FleetPending {
		t.Fatalf("be-big = %s, want pending", st.State)
	}
}

// TestFleetCordonDrainUncordon exercises the operator endpoints: drain
// cordons a device and displaces its residents for re-placement, and
// the cordon survives a restart.
func TestFleetCordonDrainUncordon(t *testing.T) {
	dir := t.TempDir()
	s := mustNew(t, fleetConfig(dir))
	ts := httptest.NewServer(s.Handler())

	out, resp := postFleetJobs(t, ts, []fleet.JobSpec{
		{ID: "a", Workload: "resnet50-inf", MemoryBytes: 2 << 30},
		{ID: "b", Workload: "bert-inf", MemoryBytes: 2 << 30},
	})
	if resp.StatusCode != http.StatusAccepted || out[0].State != FleetPlaced {
		t.Fatalf("setup: %d %+v", resp.StatusCode, out)
	}
	devA := out[0].Placement.DeviceIndex

	var dst FleetDeviceStatus
	if r := postFleetOp(t, ts, fmt.Sprintf("/v1/fleet/devices/%d/drain", devA), &dst); r.StatusCode != http.StatusOK {
		t.Fatalf("drain = %d", r.StatusCode)
	}
	if !dst.Cordoned || dst.Displaced < 1 || len(dst.Residents) != 0 {
		t.Fatalf("drained device = %+v", dst)
	}
	// The displaced job re-placed onto another device (capacity exists)
	// and must not land back on the cordoned one.
	st := getFleetJob(t, ts, "a")
	if st.State != FleetPlaced {
		t.Fatalf("a after drain = %s", st.State)
	}
	if st.Placement.DeviceIndex == devA {
		t.Fatalf("a re-placed onto the drained device %d", devA)
	}
	if fs := getFleetStatus(t, ts); fs.Stats.Displacements < 1 || fs.Stats.Cordoned != 1 {
		t.Fatalf("post-drain stats = %+v", fs.Stats)
	}

	// Unknown device and bad index answer 404/400.
	if r := postFleetOp(t, ts, "/v1/fleet/devices/99/cordon", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("cordon 99 = %d", r.StatusCode)
	}
	if r := postFleetOp(t, ts, "/v1/fleet/devices/x/cordon", nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("cordon x = %d", r.StatusCode)
	}

	// The cordon must survive a restart (journaled health stream).
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	s2 := mustNew(t, fleetConfig(dir))
	ts2 := httptest.NewServer(s2.Handler())
	for _, d := range getFleetDevices(t, ts2) {
		if d.Index == devA && !d.Cordoned {
			t.Fatalf("cordon on device %d lost across restart", devA)
		}
	}
	// Uncordon restores schedulability.
	var ust FleetDeviceStatus
	if r := postFleetOp(t, ts2, fmt.Sprintf("/v1/fleet/devices/%d/uncordon", devA), &ust); r.StatusCode != http.StatusOK {
		t.Fatalf("uncordon = %d", r.StatusCode)
	}
	if ust.Cordoned {
		t.Fatalf("uncordoned device still cordoned: %+v", ust)
	}
	ts2.Close()
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// chaosFleetConfig is fleetConfig plus an (unarmed) failure process.
func chaosFleetConfig(dir, profile string) Config {
	cfg := fleetConfig(dir)
	cfg.FleetChaosProfile = profile
	cfg.FleetChaosTick = time.Millisecond
	return cfg
}

// TestFleetFailedAfterDeadline drives a displaced job past its re-place
// deadline (no capacity anywhere) into the terminal failed state, and
// checks the state survives recovery and can be evicted.
func TestFleetFailedAfterDeadline(t *testing.T) {
	dir := t.TempDir()
	// Chaos is configured (so the deadline applies) but never armed; the
	// test drives health transitions directly for determinism.
	s := mustNew(t, chaosFleetConfig(dir, "mtbf=1000000,mttr=1000000,deadline=4,backoff=2,seed=1"))
	ts := httptest.NewServer(s.Handler())

	cap := fleet.ClassV100().MemoryBytes
	out, resp := postFleetJobs(t, ts, []fleet.JobSpec{
		{ID: "a", Workload: "resnet50-inf", MemoryBytes: cap - (1 << 28)},
		{ID: "b", Workload: "bert-inf", MemoryBytes: cap - (1 << 28)},
	})
	if resp.StatusCode != http.StatusAccepted || out[0].State != FleetPlaced || out[1].State != FleetPlaced {
		t.Fatalf("setup: %d %+v", resp.StatusCode, out)
	}
	devA := out[0].Placement.DeviceIndex

	// Step 1: device goes Down; "a" is displaced and cannot re-place
	// (its device is Down, the other is full).
	s.fleet.mu.Lock()
	s.fleetApplyHealthLocked(devA, fleet.HealthDown, 1)
	s.fleetRetryPendingLocked()
	s.fleet.mu.Unlock()

	st := getFleetJob(t, ts, "a")
	if st.State != FleetPending || st.ReplaceAttempts != 1 {
		t.Fatalf("after displacement: %+v", st)
	}

	// Step 5: deadline (4 steps) exhausted — the job fails terminally.
	s.fleet.mu.Lock()
	s.fleetApplyHealthLocked(devA, fleet.HealthDown, 5) // no-op transition, advances the clock
	s.fleetRetryPendingLocked()
	s.fleet.mu.Unlock()

	st = getFleetJob(t, ts, "a")
	if st.State != FleetFailed || st.Error == "" {
		t.Fatalf("after deadline: %+v", st)
	}
	if fs := getFleetStatus(t, ts); fs.Pending != 0 {
		t.Fatalf("failed job still pending: %+v", fs)
	}

	// The terminal state survives recovery.
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	s2 := mustNew(t, chaosFleetConfig(dir, "mtbf=1000000,mttr=1000000,deadline=4,backoff=2,seed=1"))
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	st = getFleetJob(t, ts2, "a")
	if st.State != FleetFailed {
		t.Fatalf("failed state recovered as %s", st.State)
	}
	// A failed job can be evicted (frees its table slot).
	req, _ := http.NewRequest(http.MethodDelete, ts2.URL+"/v1/fleet/jobs/a", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("evict failed job = %d", dresp.StatusCode)
	}
	if st := getFleetJob(t, ts2, "a"); st.State != FleetEvicted {
		t.Fatalf("evicted failed job = %s", st.State)
	}
}

// stormSpec / stormProfile drive a real (ticker-advanced) storm over an
// 8-device fleet: bounded at 60 steps so runs quiesce comparably.
const (
	stormTestSpec    = "zones=1,racks=2,nodes=2,gpus=2,mix=v100:1,seed=1"
	stormTestProfile = "mtbf=25,mttr=6,suspect=1,probation=3,pnode=30,deadline=10,backoff=4,steps=60,seed=3"
)

func stormTestConfig(dir string) Config {
	cfg := chaosFleetConfig(dir, stormTestProfile)
	cfg.FleetSpec = stormTestSpec
	return cfg
}

func stormJobs() []fleet.JobSpec {
	wls := []string{"resnet50-inf", "bert-inf", "mobilenetv2-inf", "transformer-inf"}
	var jobs []fleet.JobSpec
	for i := 0; i < 16; i++ {
		js := fleet.JobSpec{
			ID:          fmt.Sprintf("st-%03d", i),
			Workload:    wls[i%len(wls)],
			MemoryBytes: 4 << 30,
		}
		if i%4 == 0 {
			js.Priority = "hp"
		}
		jobs = append(jobs, js)
	}
	return jobs
}

func awaitChaos(t *testing.T, ts *httptest.Server, cond func(FleetChaosStatus) bool, what string) FleetChaosStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getChaosStatus(t, ts)
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("chaos never reached %s: %+v", what, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fleetWorldState digests everything the failure storm should leave
// behind: per-device health/cordon/residents, the placement hash, and
// every job's final state.
func fleetWorldState(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	var b bytes.Buffer
	for _, d := range getFleetDevices(t, ts) {
		fmt.Fprintf(&b, "dev%d health=%s cordoned=%v residents=%v\n", d.Index, d.Health, d.Cordoned, d.Residents)
	}
	fmt.Fprintf(&b, "hash=%s\n", getFleetStatus(t, ts).PlacementHash)
	resp, err := http.Get(ts.URL + "/v1/fleet/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs []FleetJobStatus
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		fmt.Fprintf(&b, "job %s state=%s\n", j.ID, j.State)
	}
	return b.String()
}

// TestFleetChaosStormRecoveryBitIdentical runs the same bounded failure
// storm twice — once straight through, once interrupted by a restart
// mid-storm — and requires both quiesced worlds to be identical: same
// device health, same placement hash, same per-job outcomes. This is
// the journaled failure history replaying bit-identically.
func TestFleetChaosStormRecoveryBitIdentical(t *testing.T) {
	run := func(interrupt bool) string {
		dir := t.TempDir()
		s := mustNew(t, stormTestConfig(dir))
		ts := httptest.NewServer(s.Handler())
		if _, resp := postFleetJobs(t, ts, stormJobs()); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit = %d", resp.StatusCode)
		}
		var cst FleetChaosStatus
		if r := postFleetOp(t, ts, "/v1/fleet/chaos/start", &cst); r.StatusCode != http.StatusOK || !cst.Armed {
			t.Fatalf("chaos start = %d %+v", r.StatusCode, cst)
		}
		if interrupt {
			// Let the storm run partway, then restart the daemon. The
			// recovered incarnation must resume the storm (arming is
			// journaled) and finish it on the exact pre-crash schedule.
			awaitChaos(t, ts, func(st FleetChaosStatus) bool { return st.Step >= 20 }, "step 20")
			ts.Close()
			if err := s.Shutdown(context.Background()); err != nil {
				t.Fatal(err)
			}
			s = mustNew(t, stormTestConfig(dir))
			ts = httptest.NewServer(s.Handler())
			if st := getChaosStatus(t, ts); !st.Armed {
				t.Fatalf("recovered daemon lost the armed storm: %+v", st)
			}
		}
		awaitChaos(t, ts, func(st FleetChaosStatus) bool { return st.Exhausted }, "exhaustion")
		world := fleetWorldState(t, ts)
		ts.Close()
		if err := s.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		return world
	}

	straight := run(false)
	interrupted := run(true)
	if straight != interrupted {
		t.Fatalf("storm outcomes diverged across mid-storm restart:\n--- straight ---\n%s--- interrupted ---\n%s", straight, interrupted)
	}
	// Guard against a vacuous pass: the storm must actually have
	// displaced something.
	if !bytes.Contains([]byte(straight), []byte("health=")) || straight == "" {
		t.Fatal("empty world state")
	}
}

// TestFleetChaosStormDisplaces sanity-checks the ticker path end to
// end: an armed storm takes devices down, displaces residents, and the
// metrics/counters move.
func TestFleetChaosStormDisplaces(t *testing.T) {
	s := mustNew(t, stormTestConfig(""))
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, resp := postFleetJobs(t, ts, stormJobs()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	// Status is visible before arming, and the process sits at step 0.
	if st := getChaosStatus(t, ts); st.Armed || st.Step != 0 {
		t.Fatalf("pre-arm status = %+v", st)
	}
	postFleetOp(t, ts, "/v1/fleet/chaos/start", nil)
	// Arming twice is idempotent.
	var cst FleetChaosStatus
	if r := postFleetOp(t, ts, "/v1/fleet/chaos/start", &cst); r.StatusCode != http.StatusOK || !cst.Armed {
		t.Fatalf("re-arm = %d %+v", r.StatusCode, cst)
	}
	st := awaitChaos(t, ts, func(st FleetChaosStatus) bool { return st.Exhausted }, "exhaustion")
	if st.Step != 60 || st.Events == 0 {
		t.Fatalf("exhausted status = %+v", st)
	}
	if fs := getFleetStatus(t, ts); fs.Stats.Displacements == 0 {
		t.Fatalf("storm displaced nothing: %+v", fs.Stats)
	}
}

// TestFleetOperatorEndpointsDegraded pins degraded-mode parity for the
// fleet surface: a durability-degraded daemon rejects operator and
// chaos mutations with 503 + durability_degraded + Retry-After, exactly
// like experiment submissions.
func TestFleetOperatorEndpointsDegraded(t *testing.T) {
	s := mustNew(t, chaosFleetConfig("", "deadline=4,seed=1"))
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.degraded.Store(true)
	for _, path := range []string{
		"/v1/fleet/devices/0/cordon",
		"/v1/fleet/devices/0/uncordon",
		"/v1/fleet/devices/0/drain",
		"/v1/fleet/chaos/start",
	} {
		resp, err := http.Post(ts.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error              string `json:"error"`
			DurabilityDegraded bool   `json:"durability_degraded"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || !body.DurabilityDegraded {
			t.Errorf("%s degraded = %d %+v, want 503 + durability_degraded", path, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s degraded rejection missing Retry-After", path)
		}
	}
	// Reads stay available while degraded.
	s.degraded.Store(false)
	if st := getChaosStatus(t, ts); st.Armed {
		t.Fatalf("degraded rejection armed the storm: %+v", st)
	}
}
