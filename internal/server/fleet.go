package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"orion/internal/fleet"
	"orion/internal/harness"
	"orion/internal/journal"
	"orion/internal/sim"
)

// Fleet job lifecycle: pending → placed → evaluated, with evicted as
// the terminal removal state (DELETE, or preemption by a high-priority
// job — preemption victims re-enter pending). Unlike experiments these
// are long-lived allocations, not runs: "evaluated" only means the
// per-device interference simulation finished; the job stays bound.
// With failure dynamics enabled a placed job can also be displaced back
// to pending by a device failure or drain, and a displaced job that
// exhausts its re-place deadline ends in the terminal failed state.
const (
	FleetPending   = "pending"
	FleetPlaced    = "placed"
	FleetEvaluated = "evaluated"
	FleetEvicted   = "evicted"
	FleetFailed    = "failed"
)

// maxFleetJobs bounds retained fleet job records (evicted ones are
// recycled first, mirroring the experiment table's bounded retention).
const maxFleetJobs = 16384

// fleetJob is one job in the placement stream. Guarded by fleetAPI.mu.
type fleetJob struct {
	spec      fleet.JobSpec
	specJSON  json.RawMessage
	state     string
	placement *fleet.Placement
	summary   *harness.Summary
	errMsg    string
	// bindSeq orders successful binds fleet-wide; compaction snapshots
	// carry it so recovery rebinds in the exact original order.
	bindSeq   int
	submitted time.Time
	updated   time.Time

	// Re-placement bookkeeping, journaled so a recovered daemon retries
	// on the exact pre-crash schedule: pendSeq is the job's pending-queue
	// position (1-based; 0 = not pending), dispTick the failure-clock
	// step it was displaced at (-1 = never displaced: no deadline or
	// backoff applies), attempts the failed re-place attempts since
	// displacement, lastTry the failure-clock step of the most recent
	// one, and dispWall the displacement wall time (metrics only).
	pendSeq  int
	dispTick int64
	attempts int
	lastTry  int64
	dispWall time.Time
}

// fleetAPI is the serving layer over one fleet.Fleet: it serializes all
// placement mutations, owns the pending queue, and memoizes per-device
// interference evaluations. Journal appends for fleet records happen
// under mu — the journaled bind order must equal the in-memory bind
// order, or recovery would rebuild different resident lists.
type fleetAPI struct {
	mu      sync.Mutex
	f       *fleet.Fleet
	jobs    map[string]*fleetJob
	order   []string
	pending []string // job IDs awaiting capacity, in pendSeq order
	seq     uint64
	binds   int
	// pendSeqCtr numbers entries into the pending queue (journaled, so
	// recovery rebuilds the retry order exactly).
	pendSeqCtr int

	// chaos is the deterministic failure process (-fleet-chaos-profile;
	// nil when disabled). It only advances once armed via POST
	// /v1/fleet/chaos/start, and the arming is journaled so a recovered
	// daemon resumes the storm where it left off.
	chaos        *fleet.Chaos
	chaosProfile string
	chaosArmed   bool

	evalQ chan string
	memo  map[string]*harness.Summary

	horizon, warmup sim.Duration
	seed            int64
}

// FleetJobStatus is the wire-level view of one fleet job.
type FleetJobStatus struct {
	ID          string           `json:"id"`
	State       string           `json:"state"`
	Workload    string           `json:"workload,omitempty"`
	Priority    string           `json:"priority,omitempty"`
	SubmittedAt time.Time        `json:"submitted_at"`
	UpdatedAt   time.Time        `json:"updated_at"`
	Placement   *fleet.Placement `json:"placement,omitempty"`
	// Result is the per-device interference outcome: the harness summary
	// of this job's device simulated with its full resident set.
	Result *harness.Summary `json:"result,omitempty"`
	// Preempted lists the best-effort jobs this submission displaced
	// (set only in the submit response; victims re-enter the pending
	// queue).
	Preempted []string `json:"preempted,omitempty"`
	// ReplaceAttempts counts failed re-place attempts since the job was
	// displaced by a device failure or drain (0 once re-placed).
	ReplaceAttempts int    `json:"replace_attempts,omitempty"`
	Error           string `json:"error,omitempty"`
}

// FleetStatus is the wire-level fleet snapshot.
type FleetStatus struct {
	Spec  string      `json:"spec"`
	Stats fleet.Stats `json:"stats"`
	// PlacementHash digests the current job → device bindings; the drill
	// compares it across a crash/restart for bit-identical recovery.
	PlacementHash string `json:"placement_hash"`
	Pending       int    `json:"pending"`
	Jobs          int    `json:"jobs"`
}

// fleetSubmitRequest is the POST /v1/fleet/jobs body.
type fleetSubmitRequest struct {
	Jobs []fleet.JobSpec `json:"jobs"`
}

func (s *Server) fleetEnabled() bool { return s.fleet != nil }

// newFleetAPI builds the fleet state from the configured topology spec.
func newFleetAPI(cfg Config) (*fleetAPI, error) {
	topo, err := fleet.ParseSpec(cfg.FleetSpec)
	if err != nil {
		return nil, err
	}
	f, err := topo.Build()
	if err != nil {
		return nil, err
	}
	fa := &fleetAPI{
		f:       f,
		jobs:    map[string]*fleetJob{},
		evalQ:   make(chan string, 4096),
		memo:    map[string]*harness.Summary{},
		horizon: cfg.FleetEvalHorizon,
		warmup:  cfg.FleetEvalWarmup,
		seed:    cfg.FleetSeed,
	}
	if cfg.FleetChaosProfile != "" {
		spec, err := fleet.ParseChaosSpec(cfg.FleetChaosProfile)
		if err != nil {
			return nil, err
		}
		c, err := fleet.NewChaos(spec, f)
		if err != nil {
			return nil, err
		}
		fa.chaos = c
		fa.chaosProfile = cfg.FleetChaosProfile
	}
	return fa, nil
}

func (fj *fleetJob) status() FleetJobStatus {
	return FleetJobStatus{
		ID:              fj.spec.ID,
		State:           fj.state,
		Workload:        fj.spec.Workload,
		Priority:        fj.spec.Priority,
		SubmittedAt:     fj.submitted,
		UpdatedAt:       fj.updated,
		Placement:       fj.placement,
		Result:          fj.summary,
		ReplaceAttempts: fj.attempts,
		Error:           fj.errMsg,
	}
}

// parseFleetSubmit strictly decodes the submission body; unknown fields
// fail loudly like harness.ParseConfig.
func parseFleetSubmit(r io.Reader) (fleetSubmitRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req fleetSubmitRequest
	if err := dec.Decode(&req); err != nil {
		return fleetSubmitRequest{}, fmt.Errorf("fleet: decode submission: %w", err)
	}
	return req, nil
}

func (s *Server) handleFleetSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.fleetEnabled() {
		writeJSON(w, http.StatusNotFound, errorBody{"fleet placement is not enabled (start with -fleet)"})
		return
	}
	if s.draining.Load() {
		s.rejectUnavailable(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.degraded.Load() {
		s.rejectDegraded(w)
		return
	}
	req, err := parseFleetSubmit(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	if len(req.Jobs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"fleet: submission has no jobs"})
		return
	}

	fa := s.fleet
	fa.mu.Lock()
	// Validate the whole batch before admitting any of it, so a rejected
	// batch leaves no partial state behind.
	specs := make([]fleet.JobSpec, len(req.Jobs))
	seen := make(map[string]bool, len(req.Jobs))
	for i, js := range req.Jobs {
		if js.ID == "" {
			js.ID = fmt.Sprintf("flt-%06d", fa.seq+uint64(i)+1)
		}
		if js.Workload == "" {
			fa.mu.Unlock()
			writeJSON(w, http.StatusUnprocessableEntity,
				errorBody{fmt.Sprintf("fleet: job %d has no workload (needed for interference evaluation)", i)})
			return
		}
		if js.Demand.IsZero() {
			d, derr := fleet.DemandFor(js.Workload)
			if derr != nil {
				fa.mu.Unlock()
				writeJSON(w, http.StatusUnprocessableEntity, errorBody{derr.Error()})
				return
			}
			js.Demand = d
		}
		if verr := js.Validate(); verr != nil {
			fa.mu.Unlock()
			writeJSON(w, http.StatusUnprocessableEntity, errorBody{verr.Error()})
			return
		}
		if _, dup := fa.jobs[js.ID]; dup || seen[js.ID] {
			fa.mu.Unlock()
			writeJSON(w, http.StatusConflict, errorBody{fmt.Sprintf("fleet: job %s already exists", js.ID)})
			return
		}
		seen[js.ID] = true
		specs[i] = js
	}
	if len(fa.order)+len(specs) > maxFleetJobs && !fa.reclaim(len(fa.order)+len(specs)-maxFleetJobs) {
		fa.mu.Unlock()
		s.rejectUnavailable(w, http.StatusTooManyRequests,
			fmt.Sprintf("fleet job table full (%d records)", maxFleetJobs))
		return
	}
	fa.seq += uint64(len(specs))

	out := make([]FleetJobStatus, 0, len(specs))
	for _, js := range specs {
		st, aerr := s.fleetAdmit(js)
		if aerr != nil {
			// The journal rejected the submission: everything admitted so
			// far stands (each was individually journaled-before-acked);
			// report the failure for this and the remaining jobs.
			fa.mu.Unlock()
			if derr := s.jnDegradedCheck(aerr); derr {
				s.rejectDegraded(w)
				return
			}
			writeJSON(w, http.StatusInternalServerError, errorBody{"journal append failed: " + aerr.Error()})
			return
		}
		out = append(out, st)
	}
	s.fleetGaugesLocked()
	fa.mu.Unlock()
	writeJSON(w, http.StatusAccepted, out)
}

// jnDegradedCheck routes a journal failure through degraded-mode
// rejection when it was an out-of-space condition (noteJournalError has
// already flipped the mode bit by the time this runs).
func (s *Server) jnDegradedCheck(err error) bool {
	return err != nil && s.degraded.Load()
}

// reclaim drops up to n of the oldest terminal (evicted or failed) job
// records to make room. Callers hold fa.mu. Returns false when fewer
// than n could be freed.
func (fa *fleetAPI) reclaim(n int) bool {
	kept := fa.order[:0]
	for _, id := range fa.order {
		if st := fa.jobs[id].state; n > 0 && (st == FleetEvicted || st == FleetFailed) {
			delete(fa.jobs, id)
			n--
			continue
		}
		kept = append(kept, id)
	}
	fa.order = kept
	return n <= 0
}

// fleetAdmit journals one accepted job (journal-before-ack: a crash
// after this point re-creates it), then runs the placement pipeline.
// Callers hold fa.mu; the journal append happens under it deliberately,
// so the journaled bind order always matches the in-memory bind order.
func (s *Server) fleetAdmit(js fleet.JobSpec) (FleetJobStatus, error) {
	fa := s.fleet
	specJSON, err := json.Marshal(js)
	if err != nil {
		return FleetJobStatus{}, err
	}
	now := time.Now()
	fj := &fleetJob{spec: js, specJSON: specJSON, state: FleetPending, bindSeq: -1, dispTick: -1, submitted: now, updated: now}
	if s.jn != nil {
		err := s.jn.Append(journal.Record{
			Op:     journal.OpFleetSubmit,
			ID:     js.ID,
			Time:   now,
			Config: specJSON,
		})
		if err != nil {
			s.noteJournalError(err)
			s.journalGauges()
			return FleetJobStatus{}, err
		}
		s.journalGauges()
	}
	fa.jobs[js.ID] = fj
	fa.order = append(fa.order, js.ID)
	s.cFleetSubmitted.Inc()

	st := s.fleetPlaceLocked(fj)
	return st, nil
}

// fleetPlaceLocked runs filter → score → bind for one admitted job and
// journals the outcome. High-priority jobs preempt best-effort
// residents when nothing fits; victims re-enter the pending queue.
// Callers hold fa.mu.
func (s *Server) fleetPlaceLocked(fj *fleetJob) FleetJobStatus {
	st, err := s.fleetTryPlaceLocked(fj)
	if err != nil {
		// No capacity anywhere: the job waits in the pending queue for an
		// eviction or repair to free room. Any other error is a validation
		// bug — specs were validated at admission — but is still surfaced.
		s.fleetPendLocked(fj)
		return fj.status()
	}
	return st
}

// fleetTryPlaceLocked attempts one placement and, on success, applies
// and journals the binding (including any preemption victims, which
// re-enter the pending queue). On failure the job's queue bookkeeping is
// untouched — the caller decides whether to (re-)pend it. Callers hold
// fa.mu.
func (s *Server) fleetTryPlaceLocked(fj *fleetJob) (FleetJobStatus, error) {
	fa := s.fleet
	start := time.Now()
	p, victims, err := fa.f.PlaceOrPreempt(fj.spec)
	s.hFleetPlace.Observe(time.Since(start).Seconds())
	if err != nil {
		return FleetJobStatus{}, err
	}
	var preempted []string
	for _, vid := range victims {
		s.cFleetPreempted.Inc()
		v := fa.jobs[vid]
		v.placement = nil
		v.summary = nil
		v.bindSeq = -1
		s.fleetPendLocked(v)
		preempted = append(preempted, vid)
	}
	wasDisplaced := fj.dispTick >= 0
	fj.state = FleetPlaced
	fj.placement = &p
	fj.bindSeq = fa.binds
	fa.binds++
	fj.pendSeq, fj.attempts, fj.lastTry = 0, 0, 0
	fj.dispTick = -1
	fj.updated = time.Now()
	s.journalFleetState(fj.spec.ID, FleetPlaced, "", fj.placement, nil)
	if wasDisplaced {
		s.cFleetReplaced.Inc()
		if !fj.dispWall.IsZero() {
			s.hFleetReplace.Observe(time.Since(fj.dispWall).Seconds())
			fj.dispWall = time.Time{}
		}
	}
	s.fleetEnqueueEval(fj.spec.ID)
	st := fj.status()
	st.Preempted = preempted
	return st, nil
}

// fleetPendLocked (re-)enters a job into the pending queue with a fresh
// queue position and journals the transition (the journaled pendSeq is
// what lets recovery rebuild the retry order exactly). Callers hold
// fa.mu.
func (s *Server) fleetPendLocked(fj *fleetJob) {
	fa := s.fleet
	fa.pendSeqCtr++
	fj.pendSeq = fa.pendSeqCtr
	fj.state = FleetPending
	fj.updated = time.Now()
	fa.pending = append(fa.pending, fj.spec.ID)
	s.journalFleetPending(fj, 0)
}

// fleetRetryPendingLocked re-runs placement for queued jobs in triage
// order — high-priority before best-effort, queue position within each
// band — so a late HP arrival is re-placed before BE backlog, and a
// large un-placeable job at the head cannot starve smaller jobs behind
// it (every eligible job is attempted each pass). Displaced jobs honor
// their exponential backoff and fail terminally once the re-place
// deadline passes; both apply only with a chaos profile configured, so
// a chaos-less daemon retries exactly as before. Jobs that still fit
// nowhere stay queued in band order. Callers hold fa.mu.
func (s *Server) fleetRetryPendingLocked() {
	fa := s.fleet
	if len(fa.pending) == 0 {
		return
	}
	tick := fa.f.Clock()
	var deadline, backoffCap int64
	if fa.chaos != nil {
		deadline = fa.chaos.Spec().ReplaceDeadlineSteps
		backoffCap = fa.chaos.Spec().BackoffCapSteps
	}
	waiting := make([]*fleetJob, 0, len(fa.pending))
	for _, id := range fa.pending {
		if fj := fa.jobs[id]; fj != nil && fj.state == FleetPending {
			waiting = append(waiting, fj)
		}
	}
	fa.pending = nil
	sort.SliceStable(waiting, func(a, b int) bool {
		if waiting[a].spec.HighPriority() != waiting[b].spec.HighPriority() {
			return waiting[a].spec.HighPriority()
		}
		return waiting[a].pendSeq < waiting[b].pendSeq
	})
	for _, fj := range waiting {
		if deadline > 0 && fj.dispTick >= 0 && fj.attempts > 0 &&
			tick < fj.lastTry+fleet.BackoffSteps(fj.attempts, backoffCap) {
			fa.pending = append(fa.pending, fj.spec.ID)
			continue
		}
		if _, err := s.fleetTryPlaceLocked(fj); err == nil {
			continue
		}
		if deadline > 0 && fj.dispTick >= 0 {
			if tick-fj.dispTick >= deadline {
				fj.state = FleetFailed
				fj.errMsg = fmt.Sprintf("fleet: re-place deadline exhausted (displaced at step %d, %d failed attempts)",
					fj.dispTick, fj.attempts)
				fj.updated = time.Now()
				s.cFleetFailed.Inc()
				s.journalFleetState(fj.spec.ID, FleetFailed, fj.errMsg, nil, nil)
				continue
			}
			// Journal the failed attempt so a recovered daemon resumes the
			// same backoff schedule.
			fj.attempts++
			fj.lastTry = tick
			fj.updated = time.Now()
			s.journalFleetPending(fj, tick)
		}
		fa.pending = append(fa.pending, fj.spec.ID)
	}
}

func (s *Server) handleFleetJob(w http.ResponseWriter, r *http.Request) {
	if !s.fleetEnabled() {
		writeJSON(w, http.StatusNotFound, errorBody{"fleet placement is not enabled (start with -fleet)"})
		return
	}
	fa := s.fleet
	fa.mu.Lock()
	fj := fa.jobs[r.PathValue("id")]
	if fj == nil {
		fa.mu.Unlock()
		writeJSON(w, http.StatusNotFound, errorBody{"no such fleet job"})
		return
	}
	st := fj.status()
	fa.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleFleetList(w http.ResponseWriter, _ *http.Request) {
	if !s.fleetEnabled() {
		writeJSON(w, http.StatusNotFound, errorBody{"fleet placement is not enabled (start with -fleet)"})
		return
	}
	fa := s.fleet
	fa.mu.Lock()
	out := make([]FleetJobStatus, 0, len(fa.order))
	for _, id := range fa.order {
		st := fa.jobs[id].status()
		st.Result = nil // keep the listing light; poll the job for results
		out = append(out, st)
	}
	fa.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFleetEvict(w http.ResponseWriter, r *http.Request) {
	if !s.fleetEnabled() {
		writeJSON(w, http.StatusNotFound, errorBody{"fleet placement is not enabled (start with -fleet)"})
		return
	}
	fa := s.fleet
	fa.mu.Lock()
	fj := fa.jobs[r.PathValue("id")]
	if fj == nil {
		fa.mu.Unlock()
		writeJSON(w, http.StatusNotFound, errorBody{"no such fleet job"})
		return
	}
	switch fj.state {
	case FleetEvicted:
		// Idempotent: evicting twice reports the same terminal state.
	case FleetPending, FleetFailed:
		// Nothing is bound; the record just moves to the terminal state
		// (and a failed job's eviction frees its table slot for reclaim).
		fj.state = FleetEvicted
		fj.updated = time.Now()
		s.journalFleetState(fj.spec.ID, FleetEvicted, "", nil, nil)
	default:
		if err := fa.f.Remove(fj.spec.ID); err != nil {
			fa.mu.Unlock()
			writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
			return
		}
		s.cFleetEvicted.Inc()
		fj.state = FleetEvicted
		fj.placement = nil
		fj.bindSeq = -1
		fj.updated = time.Now()
		s.journalFleetState(fj.spec.ID, FleetEvicted, "", nil, nil)
		// Freed capacity may unblock queued jobs.
		s.fleetRetryPendingLocked()
	}
	s.fleetGaugesLocked()
	st := fj.status()
	fa.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleFleetSnapshot(w http.ResponseWriter, _ *http.Request) {
	if !s.fleetEnabled() {
		writeJSON(w, http.StatusNotFound, errorBody{"fleet placement is not enabled (start with -fleet)"})
		return
	}
	fa := s.fleet
	fa.mu.Lock()
	st := FleetStatus{
		Spec:          s.cfg.FleetSpec,
		Stats:         fa.f.Snapshot(),
		PlacementHash: fa.f.HashString(),
		Pending:       len(fa.pending),
		Jobs:          len(fa.order),
	}
	fa.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// fleetGaugesLocked refreshes the fleet gauges from a fresh snapshot.
// Callers hold fa.mu.
func (s *Server) fleetGaugesLocked() {
	st := s.fleet.f.Snapshot()
	s.gFleetDevices.Set(float64(st.Allocated))
	s.gFleetFrag.Set(st.Fragmentation)
	s.gFleetPending.Set(float64(len(s.fleet.pending)))
	s.gFleetDown.Set(float64(st.Down))
	s.gFleetDegraded.Set(float64(st.Degraded))
	s.gFleetHaircut.Set(st.HaircutRatio)
	if s.fleet.chaos != nil {
		s.gFleetChaosStep.Set(float64(s.fleet.chaos.StepCount()))
	}
}

// journalFleetState records a fleet job transition, best-effort like
// journalState: a lost append means the transition replays after a
// crash, and replay (re-placing a pending job, re-evaluating a device)
// is deterministic. Callers hold fa.mu — see fleetAPI for why.
func (s *Server) journalFleetState(id, state, errMsg string, p *fleet.Placement, sum *harness.Summary) {
	if s.jn == nil {
		return
	}
	var praw, sraw json.RawMessage
	if p != nil {
		praw, _ = json.Marshal(p)
	}
	if sum != nil {
		sraw, _ = json.Marshal(sum)
	}
	err := s.jn.Append(journal.Record{
		Op:        journal.OpFleetState,
		ID:        id,
		Time:      time.Now(),
		State:     state,
		Error:     errMsg,
		Placement: praw,
		Summary:   sraw,
	})
	if err != nil {
		s.noteJournalError(err)
	}
	s.journalGauges()
}

// journalFleetPending records a pending transition with its queue
// position and retry bookkeeping (tick is the failure-clock step of a
// failed re-place attempt; 0 on first entry). Best-effort, like
// journalFleetState. Callers hold fa.mu.
func (s *Server) journalFleetPending(fj *fleetJob, tick int64) {
	if s.jn == nil {
		return
	}
	err := s.jn.Append(journal.Record{
		Op:       journal.OpFleetState,
		ID:       fj.spec.ID,
		Time:     time.Now(),
		State:    FleetPending,
		PendSeq:  fj.pendSeq,
		Attempts: fj.attempts,
		Tick:     tick,
	})
	if err != nil {
		s.noteJournalError(err)
	}
	s.journalGauges()
}

// fleetEnqueueEval queues a placed job for asynchronous interference
// evaluation. A full queue drops the request — evaluation is advisory
// (the binding already happened); the job simply stays "placed".
func (s *Server) fleetEnqueueEval(id string) {
	if s.fleet.horizon < 0 {
		return // evaluation disabled
	}
	select {
	case s.fleet.evalQ <- id:
	default:
	}
}

// fleetEvaluator turns "placed" into "evaluated": for each queued job
// it snapshots the bound device's resident set, simulates it with the
// per-device Orion scheduler (harness.EvalPlacement), and attaches the
// summary. Config.FleetEvalParallelism of these run concurrently — the
// per-device simulations are independent, snapshots and attachment
// happen under fa.mu, and the stale-drop rule in fleetAttachEval makes
// attachment order irrelevant. Results are memoized on (class, horizon,
// seed, resident multiset) — a fleet full of repeated archetype
// combinations evaluates each combination once (two evaluators racing
// the same cold key both compute it; the duplicate write is benign).
func (s *Server) fleetEvaluator() {
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-s.quit
		cancel()
	}()
	defer cancel()
	for {
		select {
		case <-s.quit:
			return
		case id := <-s.fleet.evalQ:
			s.fleetEvalOne(ctx, id)
		}
	}
}

func (s *Server) fleetEvalOne(ctx context.Context, id string) {
	fa := s.fleet
	fa.mu.Lock()
	fj := fa.jobs[id]
	if fj == nil || fj.placement == nil {
		fa.mu.Unlock()
		return
	}
	d := fa.f.Devices()[fj.placement.DeviceIndex]
	jobs := make([]harness.EvalJob, 0, len(d.Residents))
	keys := make([]string, 0, len(d.Residents))
	for _, rid := range d.Residents {
		spec, ok := fa.f.Job(rid)
		if !ok {
			continue
		}
		jobs = append(jobs, harness.EvalJob{Workload: spec.Workload, Priority: spec.Priority})
		keys = append(keys, spec.Workload+"/"+spec.Priority)
	}
	// The memo key is order-independent: two devices hosting the same
	// class and resident multiset interfere identically regardless of
	// bind order (client registration order does not change the
	// simulation for a fixed seed — but sort anyway so the cache hits).
	sort.Strings(keys)
	memoKey := fmt.Sprintf("%s|%d|%d|%d|%s", d.Class.Name, fa.horizon, fa.warmup, fa.seed, strings.Join(keys, ","))
	if sum, ok := fa.memo[memoKey]; ok {
		s.fleetAttachEval(fj, d.Residents, sum, "")
		fa.mu.Unlock()
		return
	}
	deviceSpec := d.Class.Spec()
	residents := append([]string(nil), d.Residents...)
	fa.mu.Unlock()

	sum, err := harness.EvalPlacement(ctx, harness.EvalConfig{
		Device:  deviceSpec,
		Jobs:    jobs,
		Horizon: fa.horizon,
		Warmup:  fa.warmup,
		Seed:    fa.seed,
	})
	errMsg := ""
	if err != nil {
		if ctx.Err() != nil {
			return // shutting down; leave the job "placed"
		}
		errMsg = err.Error()
	}

	fa.mu.Lock()
	if errMsg == "" {
		fa.memo[memoKey] = sum
	}
	s.fleetAttachEval(fj, residents, sum, errMsg)
	fa.mu.Unlock()
}

// fleetAttachEval applies an evaluation outcome if the job is still
// bound with the same resident set (a concurrent evict/preempt makes
// the result stale — drop it; the re-placement re-enqueues). Callers
// hold fa.mu.
func (s *Server) fleetAttachEval(fj *fleetJob, residents []string, sum *harness.Summary, errMsg string) {
	if fj.placement == nil || fj.state == FleetEvicted {
		return
	}
	cur := s.fleet.f.Devices()[fj.placement.DeviceIndex].Residents
	if len(cur) != len(residents) {
		return
	}
	for i := range cur {
		if cur[i] != residents[i] {
			return
		}
	}
	fj.updated = time.Now()
	if errMsg != "" {
		fj.errMsg = errMsg
		return
	}
	fj.summary = sum
	fj.state = FleetEvaluated
	s.journalFleetState(fj.spec.ID, FleetEvaluated, "", fj.placement, sum)
}

// recoverFleet rebuilds the fleet job table, bindings and device health
// from the journal's reduced fleet streams. Health applies first (a
// recovered device rejects placements exactly as the pre-crash one
// did), bindings replay through Fleet.Bind in BindSeq order — no
// re-scoring — so the recovered placement is bit-identical to the
// pre-crash one even across policy changes, and a post-bind sweep
// re-displaces residents of Down devices (covering a crash between the
// health record and its displacement records landing). Called from
// openJournal before the worker pool starts; no locking.
func (s *Server) recoverFleet(images []*journal.FleetImage, health *journal.FleetHealth) {
	fa := s.fleet
	if health != nil {
		for _, dh := range health.Devices {
			if dh.Device < 0 || dh.Device >= len(fa.f.Devices()) {
				log.Printf("orion-serve: fleet recovery: journaled device %d outside the topology (changed -fleet spec?)", dh.Device)
				continue
			}
			_ = fa.f.Cordon(dh.Device, dh.Cordoned)
			if dh.Health == "degraded" && len(dh.Haircut) == fleet.NumResources && dh.MemFactor > 0 {
				var vec fleet.Vector
				for r := 0; r < fleet.NumResources; r++ {
					vec[r] = dh.Haircut[r]
				}
				// No residents are bound yet, so nothing displaces here;
				// the post-bind sweep sheds any journaled overflow.
				_, _ = fa.f.ApplyDegrade(dh.Device, vec, dh.MemFactor, 0)
			} else if dh.Health != "" && dh.Health != "healthy" {
				if h, err := fleet.ParseHealthState(dh.Health); err == nil {
					// No residents are bound yet, so nothing displaces here.
					_, _ = fa.f.ApplyHealth(dh.Device, h, 0)
				}
			}
			if _, thresh := fa.f.FlapPolicy(); thresh > 0 {
				// Flap state restores verbatim — but only under an armed
				// detector, so pre-gray journals leave device state
				// byte-identical to the live run.
				fa.f.RestoreFlapState(dh.Device, dh.FlapTicks, dh.Quarantined, dh.Reason)
			}
		}
		fa.f.RestoreDomainFailures(health.Domains)
		fa.f.SetClock(health.Step)
		// Converge the flap window to the recovered clock and discard the
		// re-derived latch events — the journal already recorded them.
		fa.f.TickHealth(health.Step)
		fa.f.TakeQuarantineEvents()
		if fa.chaos != nil {
			fa.chaosArmed = health.Started
			fa.chaos.FastForward(health.Step)
		}
	}
	type bound struct {
		fj  *fleetJob
		p   fleet.Placement
		seq int
	}
	var binds []bound
	for _, im := range images {
		var spec fleet.JobSpec
		if err := json.Unmarshal(im.Config, &spec); err != nil {
			continue // unreadable spec: drop the record, keep the daemon
		}
		fj := &fleetJob{
			spec:      spec,
			specJSON:  im.Config,
			state:     im.State,
			bindSeq:   -1,
			pendSeq:   im.PendSeq,
			dispTick:  im.DispTick,
			attempts:  im.Attempts,
			lastTry:   im.LastTry,
			submitted: im.Submitted,
			updated:   im.Updated,
			errMsg:    im.Error,
		}
		if fj.dispTick >= 0 {
			// The true displacement wall time is gone with the process; the
			// journaled update time is the closest bound, and it only feeds
			// the replacement-latency histogram.
			fj.dispWall = im.Updated
		}
		if im.Summary != nil {
			var sum harness.Summary
			if err := json.Unmarshal(im.Summary, &sum); err == nil {
				fj.summary = &sum
			}
		}
		fa.jobs[spec.ID] = fj
		fa.order = append(fa.order, spec.ID)
		if n := fleetSeq(spec.ID); n > fa.seq {
			fa.seq = n
		}
		if fj.pendSeq > fa.pendSeqCtr {
			fa.pendSeqCtr = fj.pendSeq
		}
		switch {
		case im.Placement != nil:
			var p fleet.Placement
			if err := json.Unmarshal(im.Placement, &p); err != nil {
				fj.state = FleetPending
				fa.pending = append(fa.pending, spec.ID)
				continue
			}
			binds = append(binds, bound{fj, p, im.BindSeq})
		case im.State == FleetPending:
			fa.pending = append(fa.pending, spec.ID)
		}
	}
	// The pending queue retries in pendSeq order; jobs without journaled
	// positions (older journals) keep first-appearance order at the front.
	sort.SliceStable(fa.pending, func(a, b int) bool {
		return fa.jobs[fa.pending[a]].pendSeq < fa.jobs[fa.pending[b]].pendSeq
	})
	sort.SliceStable(binds, func(a, b int) bool { return binds[a].seq < binds[b].seq })
	for _, b := range binds {
		if _, err := fa.f.Bind(b.fj.spec, b.p.DeviceIndex); err != nil {
			// A bind that no longer fits means the journal and topology
			// disagree (changed -fleet spec, say): surface it on the job
			// and keep starting.
			log.Printf("orion-serve: fleet recovery: %v (job re-queued)", err)
			b.fj.state = FleetPending
			b.fj.errMsg = err.Error()
			fa.pending = append(fa.pending, b.fj.spec.ID)
			continue
		}
		// Serve the journaled placement verbatim: Bind recomputes its
		// score against recovery-time device state (clock, haircuts, load
		// without since-displaced residents), but the acknowledged
		// decision — score included — is the one the pre-crash daemon
		// journaled and the uninterrupted run still serves.
		jp := b.p
		b.fj.placement = &jp
		b.fj.bindSeq = fa.binds
		fa.binds++
		if b.fj.state != FleetEvaluated || b.fj.summary == nil {
			b.fj.state = FleetPlaced
			s.fleetEnqueueEval(b.fj.spec.ID)
		}
	}
	// Sweep: a crash between a Down record and its displacement records
	// can leave journaled bindings on a Down device. Re-displace them now
	// (journaling the displacements this run) so the recovered fleet
	// reaches the state the uninterrupted run would have.
	for _, d := range fa.f.Devices() {
		if d.Health == fleet.HealthDown && len(d.Residents) > 0 {
			specs, _ := fa.f.Displace(d.Index)
			s.fleetDisplaceLocked(d.Index, specs, fa.f.Clock())
		}
		// Same for a crash between a Degrade record and its displacement
		// records: shed the memory overflow with the same HP-last,
		// newest-first selection the live run used, so the recovered
		// resident set matches it bit-exactly.
		if d.Health == fleet.HealthDegraded && len(d.Residents) > 0 {
			specs, _ := fa.f.DisplaceOverflow(d.Index)
			s.fleetDisplaceLocked(d.Index, specs, fa.f.Clock())
		}
	}
	// Re-run the placement pass at the recovered clock: a crash between a
	// journaled displacement and its same-tick re-placement leaves the job
	// pending where the uninterrupted run already placed it. The pass is
	// idempotent for journaled history — a job whose failed attempt at
	// this tick was journaled is skipped by its backoff (lastTry equals
	// the recovered clock), and a job that stayed pending fails again
	// against the identical fleet state.
	s.fleetRetryPendingLocked()
	s.fleetGaugesLocked()
}

// fleetImages snapshots the live fleet job table for compaction.
// Callers hold fa.mu (or run before the server starts serving).
func (s *Server) fleetImages() []*journal.FleetImage {
	fa := s.fleet
	images := make([]*journal.FleetImage, 0, len(fa.order))
	for _, id := range fa.order {
		fj := fa.jobs[id]
		im := &journal.FleetImage{
			ID:        id,
			Config:    fj.specJSON,
			State:     fj.state,
			Error:     fj.errMsg,
			Submitted: fj.submitted,
			Updated:   fj.updated,
			BindSeq:   fj.bindSeq,
			PendSeq:   fj.pendSeq,
			DispTick:  fj.dispTick,
			Attempts:  fj.attempts,
			LastTry:   fj.lastTry,
		}
		if fj.placement != nil {
			im.Placement, _ = json.Marshal(fj.placement)
		}
		if fj.summary != nil {
			im.Summary, _ = json.Marshal(fj.summary)
		}
		images = append(images, im)
	}
	return images
}

// fleetSeq extracts the numeric suffix of a server-assigned "flt-%06d"
// id (0 for client-supplied ids).
func fleetSeq(id string) uint64 {
	var n uint64
	if _, err := fmt.Sscanf(id, "flt-%06d", &n); err != nil {
		return 0
	}
	return n
}
