package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"time"

	"orion/internal/checkpoint"
	"orion/internal/harness"
	"orion/internal/journal"
)

// openJournal opens (or creates) the configured journal directory,
// replays it, and rebuilds the job table. It returns the jobs that need
// (re-)execution: jobs journaled as queued, plus jobs that were running
// when the previous incarnation died — those re-enter the queue with
// their restart count bumped and the recovered flag set. Terminal jobs
// restore in place with their summaries. Called from New before the
// worker pool starts, so no locking is needed.
func (s *Server) openJournal() ([]*job, error) {
	jn, recs, err := journal.Open(s.cfg.JournalDir, journal.Options{FS: s.fsys})
	if err != nil {
		return nil, err
	}
	s.jn = jn
	images := journal.Reduce(recs)

	// Bounded retention applies across restarts too: when the journal
	// holds more jobs than the table may keep, drop the oldest terminal
	// ones (live jobs are never dropped — they represent acknowledged,
	// unfinished work).
	if over := len(images) - s.cfg.MaxJobs; over > 0 {
		kept := images[:0]
		for _, im := range images {
			if over > 0 && journalTerminal(im.State) {
				over--
				continue
			}
			kept = append(kept, im)
		}
		images = kept
	}

	var runnable []*job
	for _, im := range images {
		var cfg harness.Config
		if err := json.Unmarshal(im.Config, &cfg); err != nil {
			// A CRC-valid record with an unreadable config should be
			// impossible (we wrote it); dropping the job beats refusing to
			// start the daemon.
			continue
		}
		j := &job{
			id:        im.ID,
			state:     State(im.State),
			cfg:       cfg,
			cfgJSON:   im.Config,
			idemKey:   im.IdemKey,
			restarts:  im.Restarts,
			recovered: im.Restarts > 0,
			submitted: im.Submitted,
			subs:      map[chan Event]bool{},
		}
		s.emit(j, string(StateQueued))
		switch {
		case j.state.terminal():
			j.finished = im.Finished
			j.errMsg = im.Error
			if im.Summary != nil {
				var sum harness.Summary
				if err := json.Unmarshal(im.Summary, &sum); err == nil {
					j.summary = &sum
				}
			}
			// A terminal job needs no checkpoint; a leftover file means the
			// previous incarnation died between journaling the terminal
			// state and the cleanup.
			if p := s.checkpointPath(j.id); p != "" {
				_ = s.fsys.Remove(p)
			}
			s.emit(j, string(j.state))
		case j.state == StateParked:
			// Parked survives restarts as-is: the checkpoint file stays on
			// disk and the job waits for a client's resume call.
			j.finished = im.Finished
			j.errMsg = im.Error
			s.emit(j, string(StateParked))
		case j.state == StateRunning:
			// Interrupted mid-flight: re-execute from the recorded config.
			// The harness is deterministic per seed, so the re-run's answer
			// is exactly what the lost run would have produced. With a
			// persisted checkpoint the replay additionally skips (and
			// byte-verifies) the prefix the lost run already covered.
			j.state = StateQueued
			j.restarts++
			j.recovered = true
			im.State = string(StateQueued)
			im.Restarts = j.restarts
			s.cRecovered.Inc()
			s.attachCheckpoint(j)
			s.emit(j, "recovered")
			runnable = append(runnable, j)
		default: // queued
			if j.recovered {
				s.emit(j, "recovered")
			}
			s.attachCheckpoint(j)
			runnable = append(runnable, j)
		}
		if n := jobSeq(im.ID); n > s.seq {
			s.seq = n
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		// Canceled jobs are excluded from idempotency dedup: they never
		// produced a result, so a client retrying the same key after a
		// drain should get a fresh run, not the tombstone.
		if j.idemKey != "" && j.state != StateCanceled {
			s.idem[j.idemKey] = j.id
		}
	}

	// Fleet jobs replay from their own record stream: bindings re-apply
	// through Fleet.Bind in journaled bind order, no re-scoring, and the
	// device-health stream restores the failure state machine and clock
	// first. With the fleet disabled the records still survive compaction
	// below, so restarting without -fleet does not destroy acknowledged
	// placements or failure history.
	fleetImages, err := journal.ReduceFleet(recs)
	if err != nil {
		// A *SchemaError: the journal holds fleet records from a newer
		// build. Recovering through fields this build cannot read would
		// corrupt placement state — fail startup instead.
		return nil, err
	}
	fleetHealth, err := journal.ReduceFleetHealth(recs)
	if err != nil {
		return nil, err
	}
	if s.fleet != nil {
		s.recoverFleet(fleetImages, fleetHealth)
		fleetImages = s.fleetImages()
		fleetHealth = s.fleetHealthImage()
	}

	// Compact on open: the replayed history (including the restart bumps
	// applied above) collapses to one snapshot, so journal size stays
	// proportional to the job table, not to uptime.
	snap := journal.SnapshotRecords(images)
	snap = append(snap, journal.FleetSnapshotRecords(fleetImages)...)
	if rec, ok := journal.FleetHealthSnapshotRecord(fleetHealth, time.Now()); ok {
		snap = append(snap, rec)
	}
	if err := jn.Compact(snap); err != nil {
		return nil, err
	}
	s.gJournalBytes.Set(float64(jn.SizeBytes()))
	return runnable, nil
}

// journalTerminal mirrors State.terminal for raw journal state strings.
func journalTerminal(st string) bool { return State(st).terminal() }

// attachCheckpoint loads a runnable job's persisted checkpoint, if any:
// the job resumes from it instead of re-executing from event zero. A
// corrupt file is quarantined to <path>.bad — resuming is an
// optimization, so the job falls back to full re-execution, but the
// damaged bytes are kept for post-mortem instead of being silently
// shadowed or deleted.
func (s *Server) attachCheckpoint(j *job) {
	path := s.checkpointPath(j.id)
	if path == "" {
		return
	}
	ck, err := checkpoint.ReadFileFS(s.fsys, path)
	if err == nil {
		j.resume = ck
		return
	}
	if errors.Is(err, fs.ErrNotExist) {
		return
	}
	s.quarantineCheckpoint(j.id, path, err)
}

// quarantineCheckpoint moves a damaged checkpoint aside and records the
// episode (metric + once-per-job log + job annotation).
func (s *Server) quarantineCheckpoint(id, path string, cause error) {
	s.cCkptQuarant.Inc()
	bad, qerr := checkpoint.Quarantine(s.fsys, path)
	if qerr != nil {
		log.Printf("orion-serve: checkpoint for %s unreadable (%v) and quarantine failed: %v", id, cause, qerr)
		return
	}
	log.Printf("orion-serve: checkpoint for %s unreadable (%v): quarantined to %s, job will re-run from event zero", id, cause, bad)
}

// jobSeq extracts the numeric suffix of an "exp-%06d" id (0 if the id
// does not match).
func jobSeq(id string) uint64 {
	var n uint64
	if _, err := fmt.Sscanf(id, "exp-%06d", &n); err != nil {
		return 0
	}
	return n
}

// journalSubmit makes a submission durable. Unlike state transitions
// this error is surfaced: the server must not acknowledge work it could
// lose. An ENOSPC here additionally flips the server into degraded mode.
func (s *Server) journalSubmit(j *job) error {
	if s.jn == nil {
		return nil
	}
	err := s.jn.Append(journal.Record{
		Op:      journal.OpSubmit,
		ID:      j.id,
		Time:    j.submitted,
		Config:  j.cfgJSON,
		IdemKey: j.idemKey,
	})
	s.noteJournalError(err)
	s.journalGauges()
	return err
}

// journalState records a state transition, best-effort: a failed append
// at worst means the transition replays after a crash, and replay is
// idempotent (re-execution is deterministic, cancellation re-applies).
// A failed append stamps the job durability_degraded — its owner ran on
// without the usual crash guarantee — and an ENOSPC flips the server
// into degraded mode.
func (s *Server) journalState(id string, st State, errMsg string, summary *harness.Summary, restarts int) {
	if s.jn == nil {
		return
	}
	var sum json.RawMessage
	if summary != nil {
		sum, _ = json.Marshal(summary)
	}
	err := s.jn.Append(journal.Record{
		Op:       journal.OpState,
		ID:       id,
		Time:     time.Now(),
		State:    string(st),
		Error:    errMsg,
		Summary:  sum,
		Restarts: restarts,
	})
	if err != nil {
		s.markDegraded(id)
		s.noteJournalError(err)
	}
	s.journalGauges()
}

// journalGauges refreshes the journal's size and poison gauges.
func (s *Server) journalGauges() {
	s.gJournalBytes.Set(float64(s.jn.SizeBytes()))
	s.gPoisons.Set(float64(s.jn.Poisons()))
}

// maybeCompact compacts the journal once it outgrows the threshold.
func (s *Server) maybeCompact() {
	if s.jn == nil || s.jn.SizeBytes() <= journalCompactBytes {
		return
	}
	s.compactNow()
}

// compactNow compacts the journal from the live job table (always at
// least as current as the journal), so records appended between the
// snapshot and the rewrite are at worst replayed as a re-execution of a
// deterministic job — never as lost acknowledged work. Degraded-mode
// recovery also calls this directly: the snapshot is what makes the
// journal-less window's transitions durable again.
func (s *Server) compactNow() {
	if s.jn == nil {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	defer s.compacting.Store(false)

	s.mu.Lock()
	images := make([]*journal.JobImage, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		var sum json.RawMessage
		if j.summary != nil {
			sum, _ = json.Marshal(j.summary)
		}
		images = append(images, &journal.JobImage{
			ID:        j.id,
			Config:    j.cfgJSON,
			IdemKey:   j.idemKey,
			State:     string(j.state),
			Error:     j.errMsg,
			Summary:   sum,
			Restarts:  j.restarts,
			Submitted: j.submitted,
			Finished:  j.finished,
		})
	}
	s.mu.Unlock()

	snap := journal.SnapshotRecords(images)
	if s.fleet != nil {
		s.fleet.mu.Lock()
		snap = append(snap, journal.FleetSnapshotRecords(s.fleetImages())...)
		if rec, ok := journal.FleetHealthSnapshotRecord(s.fleetHealthImage(), time.Now()); ok {
			snap = append(snap, rec)
		}
		s.fleet.mu.Unlock()
	}
	if err := s.jn.Compact(snap); err != nil {
		s.noteJournalError(err)
	}
	s.journalGauges()
}
