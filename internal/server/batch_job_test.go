package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"orion/internal/harness"
	"orion/internal/sim"
)

// TestBatchJobAggregate: a multi-seed submission runs through the
// normal admission path, fans out on the batch runner inside one
// worker, and reports the cross-seed aggregate with the per-seed
// summaries riding along — bit-identical to an in-process batch run.
func TestBatchJobAggregate(t *testing.T) {
	cfg := quickConfig(harness.Orion)
	cfg.Seeds = 2

	control, err := harness.RunWireBatch(context.Background(), cfg, harness.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	s := mustNew(t, Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, resp := submit(t, ts, cfg)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	got := pollDone(t, ts, st.ID)
	if got.State != StateDone {
		t.Fatalf("batch job: %q (%s)", got.State, got.Error)
	}
	if len(got.Result.Seeds) != 2 {
		t.Fatalf("result carries %d per-seed summaries, want 2", len(got.Result.Seeds))
	}
	if summaryJSON(t, got.Result) != summaryJSON(t, control.Summary) {
		t.Error("server batch aggregate not bit-identical to in-process RunWireBatch")
	}
}

// TestBatchDeadlineParksAndResumes: the deadline/park/resume lifecycle
// holds for multi-seed jobs — the container checkpoint parks the batch
// at its per-cell cursors, and the resumed run quiesces to the same
// aggregate as an uninterrupted batch.
func TestBatchDeadlineParksAndResumes(t *testing.T) {
	dir := t.TempDir()
	cfg := quickConfig(harness.Orion)
	cfg.Horizon = 10 * sim.Second // per cell; 2 cells cannot finish in 300ms
	cfg.Seeds = 2

	// Run the uninterrupted control first: besides providing the
	// bit-identity reference, it pays the process's cold-start cost
	// (first-run allocation of the workload models and engine arenas is
	// slow under -race) so the server job's deadline budget below is
	// spent simulating, not warming up.
	control, err := harness.RunWireBatch(context.Background(), cfg, harness.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// The deadline must expire after the first container checkpoint lands
	// but well before both 10-simulated-second cells finish (>1s of wall
	// clock even without -race).
	s := mustNew(t, Config{
		Workers: 1, QueueDepth: 4, JournalDir: dir,
		CheckpointStride: sim.InterruptStride, JobDeadline: 300 * time.Millisecond,
	})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, resp := submit(t, ts, cfg)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	parked := pollState(t, ts, st.ID, StateParked)
	if parked.State != StateParked {
		t.Fatalf("batch job: %q (%s)", parked.State, parked.Error)
	}
	ckPath := filepath.Join(dir, "ckpt-"+st.ID+".ck")
	if !fileExists(ckPath) {
		t.Fatal("parked batch has no container checkpoint file")
	}

	if code := postResume(t, ts, st.ID, `{"deadline":"120s"}`); code != http.StatusAccepted {
		t.Fatalf("resume: %d", code)
	}
	got := pollDone(t, ts, st.ID)
	if got.State != StateDone {
		t.Fatalf("resumed batch: %q (%s)", got.State, got.Error)
	}

	if summaryJSON(t, got.Result) != summaryJSON(t, control.Summary) {
		t.Error("parked-and-resumed batch aggregate not bit-identical to uninterrupted batch")
	}
	if got := s.cResumed.Value(); got != 1 {
		t.Errorf("resumed counter = %v, want 1", got)
	}
	if v := s.cReplayed.Value(); v <= 0 {
		t.Errorf("events_replayed_total = %v, want > 0 for a container resume", v)
	}
	if fileExists(ckPath) {
		t.Error("container checkpoint not cleaned up after the batch finished")
	}
}
