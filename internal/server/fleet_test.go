package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"orion/internal/fleet"
	"orion/internal/sim"
)

// tinyFleetSpec is a 2-device single-node fleet: small enough that
// capacity tests can fill it deliberately.
const tinyFleetSpec = "zones=1,racks=1,nodes=1,gpus=2,mix=v100:1,seed=1"

func fleetConfig(journalDir string) Config {
	return Config{
		JournalDir: journalDir,
		FleetSpec:  tinyFleetSpec,
		// Evaluation is exercised by TestFleetEvaluation; the other tests
		// disable it so placement assertions don't race state changes.
		FleetEvalHorizon: -1,
	}
}

func postFleetJobs(t *testing.T, ts *httptest.Server, jobs []fleet.JobSpec) ([]FleetJobStatus, *http.Response) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"jobs": jobs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/fleet/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []FleetJobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp
}

func getFleetJob(t *testing.T, ts *httptest.Server, id string) FleetJobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/fleet/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET fleet job %s = %d", id, resp.StatusCode)
	}
	var st FleetJobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getFleetStatus(t *testing.T, ts *httptest.Server) FleetStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/fleet = %d", resp.StatusCode)
	}
	var st FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestFleetDisabledAnswers404(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/fleet"},
		{http.MethodGet, "/v1/fleet/jobs"},
		{http.MethodGet, "/v1/fleet/jobs/x"},
		{http.MethodPost, "/v1/fleet/jobs"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, bytes.NewReader([]byte("{}")))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

func TestFleetSubmitPlacesAndSnapshots(t *testing.T) {
	s := mustNew(t, fleetConfig(""))
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	jobs := []fleet.JobSpec{
		{Workload: "resnet50-inf", MemoryBytes: 4 << 30},
		{Workload: "bert-inf", MemoryBytes: 4 << 30},
	}
	out, resp := postFleetJobs(t, ts, jobs)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	if len(out) != 2 {
		t.Fatalf("submit returned %d statuses", len(out))
	}
	for _, st := range out {
		if st.State != FleetPlaced || st.Placement == nil {
			t.Fatalf("job %s: state %s, placement %v", st.ID, st.State, st.Placement)
		}
		// The demand vector was derived from the workload profile
		// server-side; the binding must carry a concrete device.
		if st.Placement.Device == "" || st.Placement.Class == "" {
			t.Fatalf("job %s: empty binding %+v", st.ID, st.Placement)
		}
	}

	fs := getFleetStatus(t, ts)
	if fs.Stats.JobsPlaced != 2 || fs.Jobs != 2 || fs.Pending != 0 {
		t.Fatalf("snapshot = %+v", fs)
	}
	if fs.PlacementHash == "" || fs.PlacementHash == "0000000000000000" {
		t.Fatalf("placement hash missing: %q", fs.PlacementHash)
	}
	if fs.Spec != tinyFleetSpec {
		t.Fatalf("spec = %q", fs.Spec)
	}

	if got := getFleetJob(t, ts, out[0].ID); got.State != FleetPlaced {
		t.Fatalf("GET job state = %s", got.State)
	}
}

func TestFleetRejectsBadSubmissions(t *testing.T) {
	s := mustNew(t, fleetConfig(""))
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Unknown workload (demand underivable).
	_, resp := postFleetJobs(t, ts, []fleet.JobSpec{{Workload: "no-such-model", MemoryBytes: 1 << 30}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown workload = %d, want 422", resp.StatusCode)
	}
	// No demand at all.
	_, resp = postFleetJobs(t, ts, []fleet.JobSpec{{ID: "x", MemoryBytes: 1 << 30}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("zero demand = %d, want 422", resp.StatusCode)
	}
	// Duplicate IDs within one batch.
	dup := fleet.JobSpec{ID: "same", Workload: "resnet50-inf", MemoryBytes: 1 << 30}
	_, resp = postFleetJobs(t, ts, []fleet.JobSpec{dup, dup})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("in-batch duplicate = %d, want 409", resp.StatusCode)
	}
	// Duplicate of an existing job.
	if _, resp = postFleetJobs(t, ts, []fleet.JobSpec{dup}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	if _, resp = postFleetJobs(t, ts, []fleet.JobSpec{dup}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("cross-batch duplicate = %d, want 409", resp.StatusCode)
	}
	// Unknown fields fail loudly.
	resp2, err := http.Post(ts.URL+"/v1/fleet/jobs", "application/json",
		bytes.NewReader([]byte(`{"jobs":[],"typo":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field = %d, want 400", resp2.StatusCode)
	}
}

func TestFleetEvictFreesCapacityForPending(t *testing.T) {
	s := mustNew(t, fleetConfig(""))
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Two devices, one near-full job each; the third waits.
	big := fleet.ClassV100().MemoryBytes - (1 << 30)
	mk := func(id string) fleet.JobSpec {
		return fleet.JobSpec{ID: id, Workload: "resnet50-inf", MemoryBytes: big}
	}
	out, resp := postFleetJobs(t, ts, []fleet.JobSpec{mk("a"), mk("b"), mk("c")})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	if out[0].State != FleetPlaced || out[1].State != FleetPlaced || out[2].State != FleetPending {
		t.Fatalf("states = %s/%s/%s", out[0].State, out[1].State, out[2].State)
	}
	if fs := getFleetStatus(t, ts); fs.Pending != 1 {
		t.Fatalf("pending = %d", fs.Pending)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/fleet/jobs/a", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("evict = %d", dresp.StatusCode)
	}
	if st := getFleetJob(t, ts, "a"); st.State != FleetEvicted {
		t.Fatalf("a = %s", st.State)
	}
	// The freed device immediately hosts the queued job.
	if st := getFleetJob(t, ts, "c"); st.State != FleetPlaced {
		t.Fatalf("c = %s after eviction", st.State)
	}
	if fs := getFleetStatus(t, ts); fs.Pending != 0 || fs.Stats.JobsPlaced != 2 {
		t.Fatalf("post-evict snapshot = %+v", fs)
	}
}

func TestFleetHighPriorityPreempts(t *testing.T) {
	s := mustNew(t, fleetConfig(""))
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := fleet.ClassV100().MemoryBytes - (1 << 30)
	out, resp := postFleetJobs(t, ts, []fleet.JobSpec{
		{ID: "be-0", Workload: "resnet50-inf", MemoryBytes: big},
		{ID: "be-1", Workload: "resnet50-inf", MemoryBytes: big},
	})
	if resp.StatusCode != http.StatusAccepted || out[0].State != FleetPlaced || out[1].State != FleetPlaced {
		t.Fatalf("setup failed: %d %+v", resp.StatusCode, out)
	}

	hp, resp := postFleetJobs(t, ts, []fleet.JobSpec{
		{ID: "hp-0", Workload: "bert-inf", Priority: "hp", MemoryBytes: big},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("hp submit = %d", resp.StatusCode)
	}
	if hp[0].State != FleetPlaced || len(hp[0].Preempted) != 1 {
		t.Fatalf("hp outcome = %+v", hp[0])
	}
	victim := getFleetJob(t, ts, hp[0].Preempted[0])
	if victim.State != FleetPending || victim.Placement != nil {
		t.Fatalf("victim = %+v", victim)
	}
	if fs := getFleetStatus(t, ts); fs.Stats.Preemptions != 1 || fs.Pending != 1 {
		t.Fatalf("snapshot = %+v", fs)
	}
}

func TestFleetEvaluation(t *testing.T) {
	s := mustNew(t, Config{
		FleetSpec:        tinyFleetSpec,
		FleetEvalHorizon: 1 * sim.Second,
		FleetEvalWarmup:  250 * sim.Millisecond,
	})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out, resp := postFleetJobs(t, ts, []fleet.JobSpec{
		{ID: "e-0", Workload: "resnet50-inf", Priority: "hp", MemoryBytes: 2 << 30},
		{ID: "e-1", Workload: "mobilenetv2-inf", MemoryBytes: 2 << 30},
	})
	if resp.StatusCode != http.StatusAccepted || len(out) != 2 {
		t.Fatalf("submit = %d %v", resp.StatusCode, out)
	}
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range []string{"e-0", "e-1"} {
		for {
			st := getFleetJob(t, ts, id)
			if st.State == FleetEvaluated {
				if st.Result == nil || len(st.Result.Jobs) == 0 {
					t.Fatalf("%s evaluated without a summary: %+v", id, st)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never evaluated (state %s, err %q)", id, st.State, st.Error)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
}

func TestFleetRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	s := mustNew(t, fleetConfig(dir))
	ts := httptest.NewServer(s.Handler())

	var jobs []fleet.JobSpec
	wls := []string{"resnet50-inf", "bert-inf", "mobilenetv2-inf", "transformer-inf"}
	for i := 0; i < 24; i++ {
		js := fleet.JobSpec{
			Workload:    wls[i%len(wls)],
			MemoryBytes: int64(2+i%4) << 30,
		}
		if i%5 == 0 {
			js.Priority = "hp"
		}
		jobs = append(jobs, js)
	}
	if _, resp := postFleetJobs(t, ts, jobs); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	before := getFleetStatus(t, ts)
	// Evict one so the evicted state must round-trip too.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/fleet/jobs/flt-000003", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	after := getFleetStatus(t, ts)

	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := mustNew(t, fleetConfig(dir))
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	got := getFleetStatus(t, ts2)
	if got.PlacementHash != after.PlacementHash {
		t.Fatalf("recovered hash %s, want %s", got.PlacementHash, after.PlacementHash)
	}
	if got.PlacementHash == before.PlacementHash {
		t.Fatal("eviction did not change the hash; recovery assertion is vacuous")
	}
	if got.Stats.JobsPlaced != after.Stats.JobsPlaced || got.Pending != after.Pending || got.Jobs != after.Jobs {
		t.Fatalf("recovered snapshot %+v, want %+v", got, after)
	}
	if st := getFleetJob(t, ts2, "flt-000003"); st.State != FleetEvicted {
		t.Fatalf("evicted job recovered as %s", st.State)
	}
	// Per-device resident lists must reconstruct in bind order, so the
	// recovered fleet makes the same future decisions: compare the full
	// resident layout, not just the hash.
	layout := func(srv *Server) string {
		srv.fleet.mu.Lock()
		defer srv.fleet.mu.Unlock()
		var b bytes.Buffer
		for _, d := range srv.fleet.f.Devices() {
			fmt.Fprintf(&b, "%d:%v;", d.Index, d.Residents)
		}
		return b.String()
	}
	if l1, l2 := layout(s), layout(s2); l1 != l2 {
		t.Fatalf("resident layout diverged:\n pre %s\npost %s", l1, l2)
	}
}
