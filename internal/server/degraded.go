package server

// Degraded mode: orion-serve's answer to a full journal disk.
//
// The journal-before-ack rule means a server that cannot append cannot
// honestly accept work. But killing in-flight experiments over a full
// disk would throw away hours of deterministic compute that needs no
// durability to finish — the results only need the disk once, at the
// terminal transition. So ENOSPC splits the control plane's behaviour:
//
//   - NEW submissions are rejected with 503 + Retry-After and a
//     durability_degraded flag in the body, so clients can tell "come
//     back later, disk full" from an ordinary drain;
//   - IN-FLIGHT jobs keep running journal-less. Their transitions apply
//     in memory only and each such job is stamped durability_degraded —
//     visible on GET /v1/experiments/{id} — meaning a crash during the
//     window would lose those transitions (replay would re-execute);
//   - a probe goroutine appends a no-op journal record every
//     DegradedProbe until one lands, then compacts the live job table
//     into a fresh snapshot — re-establishing durability for everything
//     that happened during the window — and reopens admission.
//
// Only ENOSPC enters this mode. Other storage faults either self-heal
// inside the journal (a poisoned fsync rotates to a fresh segment) or
// fail the individual operation.

import (
	"log"
	"net/http"
	"time"

	"orion/internal/errfs"
	"orion/internal/journal"
)

// degradedBody is the 503 response while durability is degraded. It is a
// distinct shape from errorBody so clients can detect the condition
// without string-matching.
type degradedBody struct {
	Error              string `json:"error"`
	DurabilityDegraded bool   `json:"durability_degraded"`
}

// rejectDegraded answers a submission attempted while the journal disk
// is full: 503, the usual Retry-After hint, and the degraded flag.
func (s *Server) rejectDegraded(w http.ResponseWriter) {
	s.cRejected.Inc()
	s.retryAfterHeader(w)
	writeJSON(w, http.StatusServiceUnavailable, degradedBody{
		Error:              "journal disk full: durability degraded, not accepting new work",
		DurabilityDegraded: true,
	})
}

// noteJournalError classifies a failed journal append. ENOSPC flips the
// server into degraded mode (once); everything else is left to the
// caller's own error handling. Safe to call with a nil error.
func (s *Server) noteJournalError(err error) {
	if err == nil || !errfs.IsNoSpace(err) {
		return
	}
	if !s.degraded.CompareAndSwap(false, true) {
		return
	}
	s.gDegraded.Set(1)
	log.Printf("orion-serve: journal disk full (%v): entering degraded mode — rejecting new submissions, running jobs continue journal-less", err)
	go s.degradedProbe()
}

// degradedProbe periodically appends an OpNoop record (invisible to
// replay) until one lands — the signal that space came back. It then
// compacts the live job table into a fresh snapshot so every transition
// that happened journal-less during the window becomes durable, and only
// then reopens admission.
func (s *Server) degradedProbe() {
	t := time.NewTicker(s.cfg.DegradedProbe)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			if err := s.jn.Append(journal.Record{Op: journal.OpNoop, Time: time.Now()}); err != nil {
				continue
			}
			s.compactNow()
			s.degraded.Store(false)
			s.gDegraded.Set(0)
			log.Printf("orion-serve: journal disk recovered: degraded mode over, compacted and accepting submissions again")
			return
		}
	}
}

// markDegraded stamps a job as having run through a degraded window:
// one or more of its journal appends never reached disk. Callers hold
// no lock.
func (s *Server) markDegraded(id string) {
	s.mu.Lock()
	if j := s.jobs[id]; j != nil {
		j.degraded = true
	}
	s.mu.Unlock()
}
