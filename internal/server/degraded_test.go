package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"orion/internal/errfs"
	"orion/internal/harness"
	"orion/internal/sim"
)

// TestDegradedModeLifecycle walks the full ENOSPC state machine against
// a live server whose journal sits on a fault-injecting filesystem:
//
//  1. a job is accepted and running when the disk fills;
//  2. the triggering submission and every one after it gets 503 with
//     Retry-After and durability_degraded in the body;
//  3. the in-flight job finishes journal-less and its status is stamped
//     durability_degraded;
//  4. when space returns the probe notices, compacts, and admission
//     reopens;
//  5. the degraded window's terminal transition — which never reached
//     the journal directly — survives a restart, because the recovery
//     compaction snapshotted the live table.
func TestDegradedModeLifecycle(t *testing.T) {
	dir := t.TempDir()
	inj := errfs.New(errfs.OS{}, 1)
	unblock := make(chan struct{})
	a := mustNew(t, Config{
		Workers: 1, QueueDepth: 4, JournalDir: dir, FS: inj,
		DegradedProbe: 20 * time.Millisecond, testBlock: unblock,
	})
	tsA := httptest.NewServer(a.Handler())
	cfg := quickConfig(harness.Orion)

	st, resp := submit(t, tsA, cfg)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit before the disk fills: %d", resp.StatusCode)
	}
	waitRunning(t, a, st.ID)

	// The disk fills. A huge failsUntilClear keeps the budget from
	// self-clearing; the test clears it explicitly below.
	inj.SetWriteBudget(0, 1<<30)

	// The submission that trips over ENOSPC answers 503 + degraded, not
	// a bare 500: the client must be able to tell "disk full" apart from
	// a crash.
	assertDegradedRejection(t, submitRaw(t, tsA, cfg), "triggering submission")
	// Once degraded, rejection happens up front — before touching the
	// journal at all.
	assertDegradedRejection(t, submitRaw(t, tsA, cfg), "subsequent submission")
	if code := postResume(t, tsA, st.ID, ""); code != http.StatusServiceUnavailable {
		t.Errorf("resume while degraded: %d, want 503 (resumption is admission)", code)
	}
	if got := metricLine(t, tsA, "orion_serve_durability_degraded"); got != "orion_serve_durability_degraded 1" {
		t.Errorf("degraded gauge = %q, want 1", got)
	}

	// The in-flight job runs to completion journal-less; its terminal
	// append fails, which stamps it durability_degraded.
	close(unblock)
	got := pollDone(t, tsA, st.ID)
	if got.State != StateDone {
		t.Fatalf("in-flight job during degraded window: %q (%s)", got.State, got.Error)
	}
	if !got.DurabilityDegraded {
		t.Error("job that ran journal-less is not stamped durability_degraded")
	}
	if got.Result == nil {
		t.Error("degraded job lost its summary")
	}

	// Space returns: the probe lands a no-op append, compacts the live
	// table, and reopens admission.
	inj.ClearWriteBudget()
	deadline := time.Now().Add(10 * time.Second)
	accepted := false
	var st2 JobStatus
	for time.Now().Before(deadline) {
		st2, resp = submit(t, tsA, cfg)
		if resp.StatusCode == http.StatusAccepted {
			accepted = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !accepted {
		t.Fatal("admission never reopened after space returned")
	}
	if a.degraded.Load() {
		t.Error("server still flagged degraded after accepting work")
	}
	if got := metricLine(t, tsA, "orion_serve_durability_degraded"); got != "orion_serve_durability_degraded 0" {
		t.Errorf("degraded gauge = %q, want 0", got)
	}
	if pollDone(t, tsA, st2.ID).State != StateDone {
		t.Error("post-recovery job did not finish")
	}

	// The degraded window's transitions were made durable by the
	// recovery compaction: a restart restores the first job as done,
	// summary intact, even though its terminal append never landed.
	if err := a.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	tsA.Close()
	b := mustNew(t, Config{Workers: 1, QueueDepth: 4, JournalDir: dir})
	defer b.Shutdown(context.Background())
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	after := pollDone(t, tsB, st.ID)
	if after.State != StateDone || after.Result == nil {
		t.Fatalf("after restart: state=%q result=%v, want the degraded-window terminal state durable", after.State, after.Result != nil)
	}
}

// rawResponse is a fully-drained HTTP response for rejection asserts.
type rawResponse struct {
	code   int
	header http.Header
	body   []byte
}

// submitRaw posts a submission and drains the response, whatever the
// status — the rejection-path tests need the body of non-202 answers,
// which the submit helper discards.
func submitRaw(t *testing.T, ts *httptest.Server, cfg harness.Config) rawResponse {
	t.Helper()
	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return rawResponse{code: resp.StatusCode, header: resp.Header, body: buf.Bytes()}
}

// assertDegradedRejection checks the 503-with-flag contract.
func assertDegradedRejection(t *testing.T, resp rawResponse, what string) {
	t.Helper()
	if resp.code != http.StatusServiceUnavailable {
		t.Fatalf("%s while degraded: %d, want 503", what, resp.code)
	}
	if resp.header.Get("Retry-After") == "" {
		t.Errorf("%s: degraded 503 missing Retry-After", what)
	}
	var body struct {
		Error              string `json:"error"`
		DurabilityDegraded bool   `json:"durability_degraded"`
	}
	if err := json.Unmarshal(resp.body, &body); err != nil {
		t.Fatalf("%s: bad degraded body: %v", what, err)
	}
	if !body.DurabilityDegraded {
		t.Errorf("%s: body missing durability_degraded: true", what)
	}
	if !strings.Contains(body.Error, "disk full") {
		t.Errorf("%s: error = %q, want the disk-full message", what, body.Error)
	}
}

// metricLine fetches /metrics and returns the line starting with name.
func metricLine(t *testing.T, ts *httptest.Server, name string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, name+" ") || line == name {
			return line
		}
	}
	return ""
}

// TestCheckpointWriteErrorSurfaced: a failing checkpoint write must not
// kill the run — the job finishes, the error shows up once in the
// counter and as checkpoint_error on the job's status.
func TestCheckpointWriteErrorSurfaced(t *testing.T) {
	dir := t.TempDir()
	inj := errfs.New(errfs.OS{}, 1).AddRule(errfs.Rule{
		Op: errfs.OpSync, Path: ".ckpt-*", Nth: 1, Effect: errfs.EffectErr,
	})
	s := mustNew(t, Config{
		Workers: 1, QueueDepth: 4, JournalDir: dir, FS: inj,
		CheckpointStride: sim.InterruptStride,
	})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := quickConfig(harness.Orion)
	st, resp := submit(t, ts, cfg)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	got := pollDone(t, ts, st.ID)
	if got.State != StateDone {
		t.Fatalf("job with a failing checkpoint sink: %q (%s)", got.State, got.Error)
	}
	if got.CheckpointError == "" {
		t.Error("checkpoint_error not surfaced on the job status")
	}
	if got := s.cCkptErrs.Value(); got != 1 {
		t.Errorf("checkpoint_write_errors_total = %v, want 1 (rule fires once)", got)
	}
	if inj.Faults() == 0 {
		t.Error("injector never fired — test exercised nothing")
	}
	if line := metricLine(t, ts, "orion_serve_checkpoint_write_errors_total"); !strings.HasSuffix(line, " 1") {
		t.Errorf("/metrics checkpoint_write_errors_total line = %q", line)
	}
}
