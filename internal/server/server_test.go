package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"orion/internal/harness"
	"orion/internal/sim"
)

// mustNew builds a server or fails the test (New only errors on journal
// problems, which these configs do not have).
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// quickConfig is a short faulted serving experiment that still exercises
// arrivals, deadlines and the fault injector.
func quickConfig(scheme harness.Scheme) harness.Config {
	return harness.Config{
		Scheme:  scheme,
		Horizon: 2 * sim.Second,
		Warmup:  500 * sim.Millisecond,
		Seed:    7,
		Jobs: []harness.JobConfig{
			{Workload: "resnet50-inf", Priority: "hp", Arrival: "poisson", RPS: 40, Deadline: 20 * sim.Millisecond},
			{Workload: "mobilenetv2-train", Priority: "be"},
		},
		DefaultFaults: true,
		FaultSeed:     3,
	}
}

func submit(t *testing.T, ts *httptest.Server, cfg harness.Config) (JobStatus, *http.Response) {
	t.Helper()
	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

func pollDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/experiments/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// TestEndToEnd is the acceptance test: a faulted Orion serving experiment
// submitted over HTTP must return exactly what a direct harness
// invocation with the same seeds produces — and the same must hold for
// the REEF and Streams baselines.
func TestEndToEnd(t *testing.T) {
	s := mustNew(t, Config{Workers: 2, QueueDepth: 8})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, scheme := range []harness.Scheme{harness.Orion, harness.Reef, harness.Streams} {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			cfg := quickConfig(scheme)
			st, resp := submit(t, ts, cfg)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit: %d", resp.StatusCode)
			}
			if st.State != StateQueued && st.State != StateRunning {
				t.Fatalf("fresh job state = %q", st.State)
			}
			got := pollDone(t, ts, st.ID)
			if got.State != StateDone {
				t.Fatalf("job failed: %q (%s)", got.State, got.Error)
			}

			direct, err := harness.RunWire(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := harness.Summarize(direct)

			if len(got.Result.Jobs) != len(want.Jobs) {
				t.Fatalf("job count %d != %d", len(got.Result.Jobs), len(want.Jobs))
			}
			for i := range want.Jobs {
				if got.Result.Jobs[i] != want.Jobs[i] {
					t.Errorf("job %d differs bit-for-bit:\nserved: %+v\ndirect: %+v",
						i, got.Result.Jobs[i], want.Jobs[i])
				}
			}
			if got.Result.Jobs[0].P99Ms != want.Jobs[0].P99Ms {
				t.Errorf("hp p99: served %v != direct %v", got.Result.Jobs[0].P99Ms, want.Jobs[0].P99Ms)
			}
			if got.Result.Jobs[0].ThroughputRPS != want.Jobs[0].ThroughputRPS {
				t.Errorf("hp throughput: served %v != direct %v",
					got.Result.Jobs[0].ThroughputRPS, want.Jobs[0].ThroughputRPS)
			}
			if got.Result.Utilization != want.Utilization {
				t.Errorf("utilization differs: %+v vs %+v", got.Result.Utilization, want.Utilization)
			}
			if got.Result.Robustness == nil || want.Robustness == nil {
				t.Fatal("faulted run must carry a robustness report")
			}
			if got.Result.Robustness.DeniedLaunches != want.Robustness.DeniedLaunches ||
				got.Result.Robustness.DeniedAllocs != want.Robustness.DeniedAllocs {
				t.Errorf("robustness counters differ: %+v vs %+v",
					got.Result.Robustness, want.Robustness)
			}
		})
	}
}

func TestEventsStream(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueDepth: 8})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, resp := submit(t, ts, quickConfig(harness.Orion))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	res, err := http.Get(ts.URL + "/v1/experiments/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	var stages []string
	sc := bufio.NewScanner(res.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatal(err)
		}
		stages = append(stages, e.Stage)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(stages, ",")
	for _, want := range []string{"queued", "running", "profile resnet50-inf", "simulate", "collect", "done"} {
		if !strings.Contains(joined, want) {
			t.Errorf("stream missing stage %q: %v", want, stages)
		}
	}
	if last := stages[len(stages)-1]; last != string(StateDone) {
		t.Errorf("stream must end with the terminal stage, got %q", last)
	}
	// Seqs must be strictly increasing (history replay must not duplicate
	// live events).
	seen := map[string]bool{}
	for _, st := range stages {
		if seen[st] && st != "collect" {
			t.Errorf("duplicated stage %q in %v", st, stages)
		}
		seen[st] = true
	}
}

func TestSubmitValidation(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		body string
		code int
	}{
		{`{not json`, http.StatusBadRequest},
		{`{"scheme":"orion","jobz":[]}`, http.StatusBadRequest},                                    // unknown field
		{`{"scheme":"fifo","jobs":[{"workload":"resnet50-inf"}]}`, http.StatusUnprocessableEntity}, // unknown scheme
		{`{"scheme":"orion","jobs":[{"workload":"nope-inf"}]}`, http.StatusUnprocessableEntity},
		{`{"scheme":"orion","jobs":[{"workload":"resnet50-inf","arrival":"poisson"}]}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("body %q: code = %d, want %d", c.body, resp.StatusCode, c.code)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/experiments/exp-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: code = %d, want 404", resp.StatusCode)
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	body := buf.String()
	for _, want := range []string{
		"orion_serve_jobs_total{state=\"done\"}",
		"orion_serve_queue_depth",
		"orion_serve_workers_busy",
		"orion_serve_submissions_total",
		"orion_serve_recovered_jobs_total",
		"orion_serve_journal_bytes",
		"orion_serve_worker_panics_total",
		"orion_serve_fleet_placement_seconds",
		"orion_serve_fleet_devices_allocated",
		"orion_serve_fleet_fragmentation_score",
		"orion_serve_fleet_jobs_pending",
		"orion_serve_fleet_evictions_total",
		"orion_serve_fleet_preemptions_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	resp, err = http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof = %d", resp.StatusCode)
	}
}
