package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// grayTestProfile is a bounded storm dominated by gray events: hard
// failures rare, ~1 degradation per step across the 8 devices, and
// flapping hot enough to latch the armed detector. Deterministic per
// seed, so the quiesced end state (including which devices sit degraded
// or quarantined at exhaustion) is pinned.
const grayTestProfile = "mtbf=120,mttr=6,suspect=1,probation=3,pnode=5,deadline=12,backoff=4," +
	"dmtbf=6,dmttr=5,dsteps=2,pflap=60,flapwin=16,flapthresh=4,steps=60,seed=3"

func grayStormConfig(dir string) Config {
	cfg := chaosFleetConfig(dir, grayTestProfile)
	cfg.FleetSpec = stormTestSpec
	return cfg
}

// grayWorldState extends the storm digest with everything the gray
// model adds: haircut vectors, memory factors, effective memory
// capacity, windowed flap counts, and quarantine latches.
func grayWorldState(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	var b bytes.Buffer
	for _, d := range getFleetDevices(t, ts) {
		fmt.Fprintf(&b, "dev%d health=%s haircut=%v memfactor=%v memcap=%d flaps=%d quarantined=%v reason=%q residents=%v\n",
			d.Index, d.Health, d.Haircut, d.MemFactor, d.MemCapBytes, d.FlapCount,
			d.Quarantined, d.QuarantineReason, d.Residents)
	}
	fmt.Fprintf(&b, "hash=%s\n", getFleetStatus(t, ts).PlacementHash)
	resp, err := http.Get(ts.URL + "/v1/fleet/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs []FleetJobStatus
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		fmt.Fprintf(&b, "job %s state=%s\n", j.ID, j.State)
	}
	return b.String()
}

// TestFleetGrayStormExposesDegradation runs the gray storm end to end
// in process and checks the operator surface: degraded devices appear
// on GET /v1/fleet/devices with their haircut factors and shrunken
// memory capacity, flap quarantines carry an operator-visible reason,
// and the new gauges/counters move.
func TestFleetGrayStormExposesDegradation(t *testing.T) {
	s := mustNew(t, grayStormConfig(""))
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, resp := postFleetJobs(t, ts, stormJobs()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	postFleetOp(t, ts, "/v1/fleet/chaos/start", nil)
	awaitChaos(t, ts, func(st FleetChaosStatus) bool { return st.Exhausted }, "exhaustion")

	var degraded, quarantined, flapped int
	for _, d := range getFleetDevices(t, ts) {
		if d.Health == "degraded" {
			degraded++
			if len(d.Haircut) != 4 || !(d.MemFactor > 0) || d.MemFactor > 1 {
				t.Fatalf("degraded device %d factors malformed: %+v", d.Index, d)
			}
			if d.MemFactor < 1 && d.MemCapBytes >= 16<<30 {
				t.Fatalf("degraded device %d memory capacity not shrunk: %+v", d.Index, d)
			}
		} else if len(d.Haircut) != 0 || d.MemFactor != 0 {
			t.Fatalf("non-degraded device %d leaks haircut fields: %+v", d.Index, d)
		}
		if d.Quarantined {
			quarantined++
			if !strings.Contains(d.QuarantineReason, "flap-quarantine") {
				t.Fatalf("quarantine without reason: %+v", d)
			}
		}
		if d.FlapCount > 0 {
			flapped++
		}
	}
	if degraded == 0 {
		t.Fatal("gray storm quiesced with no degraded device (profile drifted?)")
	}
	if quarantined == 0 && flapped == 0 {
		t.Fatal("gray storm quiesced with no flap-detector traces")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	body := buf.String()
	for _, want := range []string{
		"orion_serve_fleet_degraded_devices",
		"orion_serve_fleet_capacity_haircut_ratio",
		"orion_serve_fleet_flap_quarantines_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(body, "orion_serve_fleet_flap_quarantines_total 0\n") {
		t.Error("flap quarantine counter never moved")
	}
	if strings.Contains(body, "orion_serve_fleet_degraded_devices 0\n") {
		t.Error("degraded-devices gauge never moved")
	}
}

// TestFleetGrayStormRecoveryBitIdentical is the in-process twin of the
// fleet-gray drill: the same bounded gray storm runs once straight
// through and once interrupted by a mid-storm restart, and both
// quiesced worlds — haircut factors, effective capacities, flap
// counters, quarantine reasons, placements — must match byte for byte.
func TestFleetGrayStormRecoveryBitIdentical(t *testing.T) {
	run := func(interrupt bool) string {
		dir := t.TempDir()
		s := mustNew(t, grayStormConfig(dir))
		ts := httptest.NewServer(s.Handler())
		if _, resp := postFleetJobs(t, ts, stormJobs()); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit = %d", resp.StatusCode)
		}
		var cst FleetChaosStatus
		if r := postFleetOp(t, ts, "/v1/fleet/chaos/start", &cst); r.StatusCode != http.StatusOK || !cst.Armed {
			t.Fatalf("chaos start = %d %+v", r.StatusCode, cst)
		}
		if interrupt {
			awaitChaos(t, ts, func(st FleetChaosStatus) bool { return st.Step >= 20 }, "step 20")
			ts.Close()
			if err := s.Shutdown(context.Background()); err != nil {
				t.Fatal(err)
			}
			s = mustNew(t, grayStormConfig(dir))
			ts = httptest.NewServer(s.Handler())
			if st := getChaosStatus(t, ts); !st.Armed {
				t.Fatalf("recovered daemon lost the armed storm: %+v", st)
			}
		}
		awaitChaos(t, ts, func(st FleetChaosStatus) bool { return st.Exhausted }, "exhaustion")
		world := grayWorldState(t, ts)
		ts.Close()
		if err := s.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		return world
	}

	straight := run(false)
	interrupted := run(true)
	if straight != interrupted {
		t.Fatalf("gray storm outcomes diverged across mid-storm restart:\n--- straight ---\n%s--- interrupted ---\n%s", straight, interrupted)
	}
	if !strings.Contains(straight, "health=degraded") {
		t.Fatalf("gray storm never left a degraded device in the digest:\n%s", straight)
	}
}
