// Package server is the orion-serve control plane: a multi-tenant
// scheduler-as-a-service facade over the simulation harness. Clients POST
// wire-level harness configs to /v1/experiments; jobs run asynchronously
// on a bounded worker pool with admission control (a full queue answers
// 429 with Retry-After), results are polled from /v1/experiments/{id},
// progress streams from /v1/experiments/{id}/events as server-sent
// events, and /metrics exposes Prometheus-text counters, gauges and
// histograms. Graceful shutdown fails readiness first, cancels queued
// jobs, and drains in-flight experiments under a deadline.
//
// With Config.JournalDir set the control plane is crash-safe: every
// accepted submission and state transition is appended (and fsynced,
// group-committed) to a write-ahead journal before it is acknowledged.
// On restart the journal replays — finished jobs restore with their
// summaries, queued jobs re-enqueue, and jobs that were running at crash
// time re-execute from their recorded config and seed. The harness is
// bit-deterministic for equal seeds, so re-execution is exact recovery:
// a recovered job's summary is byte-identical to what the uninterrupted
// run would have produced. Client-supplied Idempotency-Key headers are
// journaled too, so resubmission after a crash deduplicates instead of
// double-running.
//
// This is the deployment shape of the paper's §5 daemon (and of KubeShare
// / Tally-style serving layers): a long-running per-node service that
// concurrent tenants submit work to online, rather than a batch CLI.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"orion/internal/errfs"
	"orion/internal/harness"
	"orion/internal/journal"
	"orion/internal/metrics"
	"orion/internal/sim"
)

// Config tunes the control plane.
type Config struct {
	// Workers is the number of concurrent experiment runners (default 2).
	// Each worker runs one simulation at a time; the pool bounds CPU use.
	Workers int
	// QueueDepth bounds jobs admitted but not yet running (default 16).
	// Submissions beyond it are rejected with 429 + Retry-After.
	QueueDepth int
	// BatchParallelism bounds the worker pool one multi-seed batch job
	// (Config.Seeds > 1) fans out on. Zero defers to the submission's own
	// parallelism field, which in turn defaults to GOMAXPROCS; results
	// are bit-identical at every setting, only wall-clock changes.
	BatchParallelism int
	// MaxJobs bounds retained job records, finished ones included
	// (default 1024). Oldest finished records are evicted first; if every
	// record is live the submission is rejected, keeping memory bounded.
	MaxJobs int
	// RetryAfter is the hint returned with 429/503 responses (default 1s).
	RetryAfter time.Duration
	// JournalDir, when non-empty, enables the crash-safety journal in
	// that directory (created if needed). Empty keeps all state in
	// memory, as before.
	JournalDir string
	// JobDeadline, when positive, bounds each experiment's wall-clock
	// run time. A job that exceeds it is canceled mid-simulation; with
	// checkpointing enabled it parks at its last persisted checkpoint
	// (resumable with a larger deadline via POST
	// /v1/experiments/{id}/resume), otherwise it is marked failed.
	JobDeadline time.Duration
	// CheckpointStride, when positive and JournalDir is set, persists a
	// checkpoint of every running experiment each CheckpointStride
	// simulation events (rounded up to the engine's interrupt stride),
	// stored next to the journal as ckpt-<id>.ck. Recovery resumes an
	// interrupted job from its checkpoint instead of replaying the whole
	// run, and verifies the replayed state byte-for-byte first.
	CheckpointStride uint64
	// Heartbeat is the SSE keep-alive comment interval (default 15s):
	// idle event streams emit ": heartbeat" so dead client connections
	// are detected and their subscriptions torn down promptly.
	Heartbeat time.Duration
	// FS is the filesystem the journal and checkpoint files go through
	// (default the real one). Swapping in an errfs.Injector — directly or
	// via orion-serve's -errfs-profile flag — tortures the durability
	// layer with disk faults.
	FS errfs.FS
	// DegradedProbe is how often a durability-degraded server probes the
	// journal for recovered disk space (default 1s).
	DegradedProbe time.Duration
	// FleetSpec, when non-empty, enables the cluster-scale placement
	// subsystem over the simulated fleet it describes (fleet.ParseSpec
	// syntax, e.g. "zones=2,racks=4,nodes=16,gpus=8,mix=a100:1+v100:1").
	// The /v1/fleet API places a stream of jobs onto the fleet with the
	// interference-aware filter → score → bind pipeline; each per-device
	// Orion scheduler is the leaf of the resulting two-level scheduler.
	FleetSpec string
	// FleetEvalHorizon/FleetEvalWarmup bound each per-device interference
	// evaluation (defaults 2s / 500ms simulated). A negative horizon
	// disables evaluation: placements stop at state "placed".
	FleetEvalHorizon sim.Duration
	FleetEvalWarmup  sim.Duration
	// FleetEvalParallelism is how many evaluator goroutines drain the
	// fleet's evaluation queue (default 2): per-device simulations are
	// independent, so they overlap on idle cores. Results attach under
	// the fleet lock with the same stale-drop rule at any setting.
	FleetEvalParallelism int
	// FleetSeed drives the per-device evaluations (default harness seed).
	FleetSeed int64
	// FleetChaosProfile, when non-empty (and FleetSpec is set), arms the
	// deterministic failure process over the fleet (fleet.ParseChaosSpec
	// syntax, e.g. "mtbf=500,mttr=25,pnode=10,seed=1"). The process stays
	// idle until POST /v1/fleet/chaos/start; every health transition is
	// journaled so recovery replays the failure history bit-identically.
	FleetChaosProfile string
	// FleetChaosTick is the wall-clock interval between failure-process
	// steps once armed (default 250ms).
	FleetChaosTick time.Duration

	// testBlock mirrors Server.testBlock but is installed before the
	// worker pool starts — the only race-free way to pin workers on a
	// server that recovers runnable jobs at startup. Tests only.
	testBlock chan struct{}
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxJobs < c.QueueDepth+c.Workers {
		c.MaxJobs = c.QueueDepth + c.Workers
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 15 * time.Second
	}
	if c.FS == nil {
		c.FS = errfs.OS{}
	}
	if c.DegradedProbe <= 0 {
		c.DegradedProbe = time.Second
	}
	if c.FleetEvalHorizon == 0 {
		c.FleetEvalHorizon = 2 * sim.Second
	}
	if c.FleetEvalWarmup == 0 {
		c.FleetEvalWarmup = sim.Second / 2
	}
	if c.FleetEvalParallelism <= 0 {
		c.FleetEvalParallelism = 2
	}
	if c.FleetSeed == 0 {
		c.FleetSeed = harness.DefaultSeed
	}
	if c.FleetChaosTick <= 0 {
		c.FleetChaosTick = 250 * time.Millisecond
	}
	return c
}

// journalCompactBytes triggers a compaction pass once the journal grows
// past this size; terminal-job records collapse to one snapshot each.
const journalCompactBytes = 4 << 20

// Server is one orion-serve instance.
type Server struct {
	cfg Config

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // insertion order, for bounded retention
	seq    uint64
	idem   map[string]string // Idempotency-Key -> job id
	queued int               // jobs admitted but not yet picked up by a worker

	queue    chan *job
	quit     chan struct{}
	wg       sync.WaitGroup
	draining atomic.Bool

	// jn is nil when journaling is disabled. Appends happen outside mu
	// (the journal has its own locking and group commit), so a slow fsync
	// never blocks reads of the job table.
	jn *journal.Journal
	// fsys is the filesystem checkpoint files go through (the journal
	// carries its own copy via journal.Options.FS).
	fsys errfs.FS
	// compacting serializes compaction passes; overlapping passes would
	// rotate over each other's snapshots.
	compacting atomic.Bool
	// degraded flags the full-disk degraded mode: new submissions answer
	// 503 with durability_degraded set, in-flight jobs keep running
	// journal-less, and a probe goroutine watches for space to return
	// (see degraded.go).
	degraded atomic.Bool

	reg           *metrics.Registry
	cSubmitted    *metrics.Counter
	cRejected     *metrics.Counter
	cRecovered    *metrics.Counter
	cPanics       *metrics.Counter
	cResumed      *metrics.Counter
	cReplayed     *metrics.Counter
	cCkptErrs     *metrics.Counter
	cCkptQuarant  *metrics.Counter
	gQueueDepth   *metrics.Gauge
	gWorkersBusy  *metrics.Gauge
	gJournalBytes *metrics.Gauge
	gPoisons      *metrics.Gauge
	gDegraded     *metrics.Gauge
	gCkptBytes    *metrics.Gauge
	hCkptWrite    *metrics.Histogram

	// fleet is non-nil when Config.FleetSpec enables the cluster-scale
	// placement subsystem; its metrics register unconditionally so the
	// series exist (at zero) even on fleet-less daemons.
	fleet             *fleetAPI
	hFleetPlace       *metrics.Histogram
	gFleetDevices     *metrics.Gauge
	gFleetFrag        *metrics.Gauge
	gFleetPending     *metrics.Gauge
	cFleetSubmitted   *metrics.Counter
	cFleetEvicted     *metrics.Counter
	cFleetPreempted   *metrics.Counter
	gFleetDown        *metrics.Gauge
	gFleetChaosStep   *metrics.Gauge
	cFleetDisplaced   *metrics.Counter
	cFleetReplaced    *metrics.Counter
	cFleetFailed      *metrics.Counter
	gFleetDegraded    *metrics.Gauge
	gFleetHaircut     *metrics.Gauge
	cFleetQuarantined *metrics.Counter
	hFleetReplace     *metrics.Histogram

	// testBlock, when non-nil, parks every worker after it marks its job
	// running until the channel closes — lets tests pin the pool in a
	// known state without timing games. Never set outside tests.
	testBlock chan struct{}
	// testRun, when non-nil, replaces the experiment execution (tests
	// exercise the panic-isolation path with it). Never set outside tests.
	testRun func(cfg harness.Config) (*harness.Result, error)
}

// New builds a Server, replays its journal (when configured), and starts
// the worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	s := &Server{
		cfg:  cfg,
		fsys: cfg.FS,
		jobs: map[string]*job{},
		idem: map[string]string{},
		quit: make(chan struct{}),
		reg:  reg,
		cSubmitted: reg.Counter("orion_serve_submissions_total",
			"Experiment submissions accepted.", nil),
		cRejected: reg.Counter("orion_serve_rejections_total",
			"Experiment submissions rejected by admission control.", nil),
		cRecovered: reg.Counter("orion_serve_recovered_jobs_total",
			"Jobs re-executed after a crash because the journal showed them running.", nil),
		cPanics: reg.Counter("orion_serve_worker_panics_total",
			"Experiment panics caught by the worker pool (job failed, daemon kept serving).", nil),
		cResumed: reg.Counter("orion_serve_resumed_jobs_total",
			"Jobs that continued from a verified checkpoint instead of re-executing from event zero.", nil),
		cReplayed: reg.Counter("orion_serve_events_replayed_total",
			"Simulation events re-executed to reach resume checkpoints (always less than a full re-run).", nil),
		cCkptErrs: reg.Counter("orion_serve_checkpoint_write_errors_total",
			"Experiment checkpoint writes that failed (job keeps running; resume granularity shrinks).", nil),
		cCkptQuarant: reg.Counter("orion_serve_checkpoint_quarantined_total",
			"Corrupt checkpoint files moved aside to .ck.bad (job fell back to full re-run).", nil),
		gQueueDepth: reg.Gauge("orion_serve_queue_depth",
			"Jobs admitted but not yet running.", nil),
		gWorkersBusy: reg.Gauge("orion_serve_workers_busy",
			"Workers currently running an experiment.", nil),
		gJournalBytes: reg.Gauge("orion_serve_journal_bytes",
			"On-disk size of the job journal (0 when journaling is off).", nil),
		gPoisons: reg.Gauge("orion_serve_journal_segment_poisons",
			"Journal segment fds poisoned by fsync failures over this incarnation's lifetime.", nil),
		gDegraded: reg.Gauge("orion_serve_durability_degraded",
			"1 while the journal disk is full: submissions answer 503, running jobs continue journal-less.", nil),
		gCkptBytes: reg.Gauge("orion_serve_checkpoint_bytes",
			"Size of the most recently persisted experiment checkpoint.", nil),
		hCkptWrite: reg.Histogram("orion_serve_checkpoint_write_seconds",
			"Wall-clock cost of persisting one experiment checkpoint.",
			[]float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1}, nil),
		hFleetPlace: reg.Histogram("orion_serve_fleet_placement_seconds",
			"Wall-clock cost of one fleet placement decision (filter + score + bind).",
			[]float64{1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2}, nil),
		gFleetDevices: reg.Gauge("orion_serve_fleet_devices_allocated",
			"Fleet devices hosting at least one placed job.", nil),
		gFleetFrag: reg.Gauge("orion_serve_fleet_fragmentation_score",
			"Mean per-device fragmentation score across the healthy fleet (0 = perfectly packable).", nil),
		gFleetPending: reg.Gauge("orion_serve_fleet_jobs_pending",
			"Fleet jobs admitted but waiting for capacity.", nil),
		cFleetSubmitted: reg.Counter("orion_serve_fleet_jobs_submitted_total",
			"Fleet jobs accepted onto the placement stream.", nil),
		cFleetEvicted: reg.Counter("orion_serve_fleet_evictions_total",
			"Fleet jobs evicted via the API.", nil),
		cFleetPreempted: reg.Counter("orion_serve_fleet_preemptions_total",
			"Best-effort fleet jobs preempted by high-priority placements.", nil),
		gFleetDown: reg.Gauge("orion_serve_fleet_device_down",
			"Fleet devices currently in the Down health state.", nil),
		gFleetChaosStep: reg.Gauge("orion_serve_fleet_chaos_step",
			"Failure-process steps applied to the fleet (0 when chaos is off or unarmed).", nil),
		cFleetDisplaced: reg.Counter("orion_serve_fleet_displaced_jobs_total",
			"Fleet jobs displaced from Down or drained devices.", nil),
		cFleetReplaced: reg.Counter("orion_serve_fleet_replacements_total",
			"Displaced fleet jobs successfully re-placed.", nil),
		cFleetFailed: reg.Counter("orion_serve_fleet_failed_jobs_total",
			"Displaced fleet jobs that exhausted their re-place deadline.", nil),
		gFleetDegraded: reg.Gauge("orion_serve_fleet_degraded_devices",
			"Fleet devices in the Degraded (gray-failure) state: up and serving under a capacity haircut.", nil),
		gFleetHaircut: reg.Gauge("orion_serve_fleet_capacity_haircut_ratio",
			"Aggregate effective/raw capacity ratio across the fleet (1.0 = no gray failures).", nil),
		cFleetQuarantined: reg.Counter("orion_serve_fleet_flap_quarantines_total",
			"Devices quarantined by the flap detector (too many health transitions in the window).", nil),
		hFleetReplace: reg.Histogram("orion_serve_fleet_replacement_seconds",
			"Wall-clock time from displacement to successful re-placement.",
			[]float64{0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}, nil),
		testBlock: cfg.testBlock,
	}
	reg.Gauge("orion_serve_workers", "Worker pool size.", nil).Set(float64(cfg.Workers))
	// Pre-register terminal-state counters so /metrics shows zeros from
	// the first scrape instead of series appearing over time.
	for _, st := range []State{StateDone, StateFailed, StateCanceled} {
		s.cJobs(st)
	}

	// The fleet must exist before journal replay: recovery rebinds
	// journaled placements onto it.
	if cfg.FleetSpec != "" {
		fa, err := newFleetAPI(cfg)
		if err != nil {
			return nil, err
		}
		s.fleet = fa
	}

	var runnable []*job
	if cfg.JournalDir != "" {
		var err error
		runnable, err = s.openJournal()
		if err != nil {
			return nil, err
		}
	}
	// The channel must fit every recovered job on top of the normal
	// admission bound; s.queued enforces the QueueDepth limit for new
	// submissions, so occupancy never exceeds this capacity.
	s.queue = make(chan *job, cfg.QueueDepth+len(runnable))
	for _, j := range runnable {
		s.queue <- j
	}
	s.queued = len(runnable)
	s.gQueueDepth.Set(float64(len(runnable)))

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.fleet != nil && cfg.FleetEvalHorizon >= 0 {
		for i := 0; i < cfg.FleetEvalParallelism; i++ {
			s.wg.Add(1)
			go s.fleetEvaluator()
		}
	}
	if s.fleet != nil && s.fleet.chaos != nil {
		s.wg.Add(1)
		go s.fleetChaosTicker()
	}
	return s, nil
}

// Registry exposes the server's metrics registry (for embedding extra
// collectors or tests).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Handler returns the control plane's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	mux.HandleFunc("GET /v1/experiments", s.handleList)
	mux.HandleFunc("GET /v1/experiments/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/experiments/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/experiments/{id}/resume", s.handleResume)
	mux.HandleFunc("POST /v1/fleet/jobs", s.handleFleetSubmit)
	mux.HandleFunc("GET /v1/fleet/jobs", s.handleFleetList)
	mux.HandleFunc("GET /v1/fleet/jobs/{id}", s.handleFleetJob)
	mux.HandleFunc("DELETE /v1/fleet/jobs/{id}", s.handleFleetEvict)
	mux.HandleFunc("GET /v1/fleet", s.handleFleetSnapshot)
	mux.HandleFunc("GET /v1/fleet/devices", s.handleFleetDevices)
	mux.HandleFunc("POST /v1/fleet/devices/{id}/cordon", s.handleFleetCordon)
	mux.HandleFunc("POST /v1/fleet/devices/{id}/uncordon", s.handleFleetUncordon)
	mux.HandleFunc("POST /v1/fleet/devices/{id}/drain", s.handleFleetDrain)
	mux.HandleFunc("POST /v1/fleet/chaos/start", s.handleFleetChaosStart)
	mux.HandleFunc("GET /v1/fleet/chaos", s.handleFleetChaosStatus)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// maxBodyBytes caps submission bodies; a harness config is tiny.
const maxBodyBytes = 1 << 20

func (s *Server) retryAfterHeader(w http.ResponseWriter) {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// rejectUnavailable is the shared 429/503 path: both overload and drain
// rejections carry the same Retry-After hint so clients back off
// identically.
func (s *Server) rejectUnavailable(w http.ResponseWriter, code int, msg string) {
	s.cRejected.Inc()
	s.retryAfterHeader(w)
	writeJSON(w, code, errorBody{msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.rejectUnavailable(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.degraded.Load() {
		s.rejectDegraded(w)
		return
	}
	cfg, err := harness.ParseConfig(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	// Validate up front so the queue only ever holds runnable work and
	// the client learns about a bad config synchronously.
	if _, err := cfg.Build(); err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{err.Error()})
		return
	}
	j, created, aerr := s.admit(cfg, r.Header.Get("Idempotency-Key"))
	if aerr != nil {
		switch {
		case aerr.degraded:
			s.rejectDegraded(w)
		case aerr.code == http.StatusTooManyRequests || aerr.code == http.StatusServiceUnavailable:
			s.rejectUnavailable(w, aerr.code, aerr.msg)
		default:
			writeJSON(w, aerr.code, errorBody{aerr.msg})
		}
		return
	}
	s.mu.Lock()
	st := j.status()
	s.mu.Unlock()
	w.Header().Set("Location", "/v1/experiments/"+j.id)
	code := http.StatusAccepted
	if !created {
		// Idempotent replay of an earlier submission: report the existing
		// job rather than creating a duplicate.
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) lookup(r *http.Request) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[r.PathValue("id")]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r)
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{"no such experiment"})
		return
	}
	s.mu.Lock()
	st := j.status()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		st := s.jobs[id].status()
		st.Result = nil // keep the listing light; poll the job for results
		out = append(out, st)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleEvents streams a job's progress as server-sent events: the
// history replays first, then live events until a terminal stage. Idle
// streams carry periodic heartbeat comments so a dead client connection
// is noticed and unsubscribed instead of leaking its channel until the
// job finishes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r)
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{"no such experiment"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{"streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, past := s.subscribe(j)
	defer s.unsubscribe(j, ch)
	writeEvent := func(e Event) (terminal bool, err error) {
		b, _ := json.Marshal(e)
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return false, err
		}
		flusher.Flush()
		return State(e.Stage).terminal(), nil
	}
	lastSeq := 0
	for _, e := range past {
		lastSeq = e.Seq
		term, err := writeEvent(e)
		if term || err != nil {
			return
		}
	}
	// Every job is guaranteed a terminal event (done, failed, or
	// canceled at shutdown), so this loop always ends unless the client
	// hangs up first — which the context or a failed heartbeat notices.
	hb := time.NewTicker(s.cfg.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case e, ok := <-ch:
			if !ok {
				return
			}
			if e.Seq <= lastSeq {
				continue // raced with the history replay
			}
			term, err := writeEvent(e)
			if term || err != nil {
				return
			}
		}
	}
}

// Shutdown drains the server: readiness fails and new submissions are
// rejected immediately, queued-but-unstarted jobs are canceled, and
// in-flight experiments run to completion unless ctx expires first.
// Close the HTTP listener only after Shutdown returns, so late polls for
// results still succeed during the drain. When journaling is enabled the
// cancellations are journaled and the journal is sealed, so the next
// incarnation re-enqueues nothing that was already resolved.
func (s *Server) Shutdown(ctx context.Context) error {
	// Flip draining under the admission lock: once this returns, no new
	// job can enter the queue, so the cancel sweep below sees them all.
	s.mu.Lock()
	first := s.draining.CompareAndSwap(false, true)
	s.mu.Unlock()
	if !first {
		return nil
	}
	close(s.quit)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("server: drain incomplete: %w", ctx.Err())
	}
	// Cancel whatever never started. This runs after the workers have
	// stopped (or the deadline expired), so nothing else receives from
	// the queue and every leftover job gets its terminal event.
sweep:
	for {
		select {
		case j := <-s.queue:
			s.mu.Lock()
			s.queued--
			s.gQueueDepth.Dec()
			j.state = StateCanceled
			j.finished = time.Now()
			j.errMsg = "server shut down before the job started"
			s.cJobs(StateCanceled).Inc()
			s.emit(j, string(StateCanceled))
			id, restarts := j.id, j.restarts
			s.mu.Unlock()
			s.journalState(id, StateCanceled, "server shut down before the job started", nil, restarts)
		default:
			break sweep
		}
	}
	if s.jn != nil && err == nil {
		// Seal the journal only on a complete drain; with stragglers still
		// running past the deadline, keep it open so their terminal
		// records can land.
		if cerr := s.jn.Close(); cerr != nil {
			err = cerr
		}
	}
	return err
}
