package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"orion/internal/checkpoint"
	"orion/internal/harness"
	"orion/internal/sim"
)

// captureCheckpoint runs cfg just far enough to produce its first
// checkpoint: the sink stores it and then aborts the run.
func captureCheckpoint(t *testing.T, cfg harness.Config) *checkpoint.Checkpoint {
	t.Helper()
	rc, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	var first *checkpoint.Checkpoint
	rc.Checkpoint = &harness.CheckpointConfig{
		Stride: sim.InterruptStride,
		Sink: func(ck *checkpoint.Checkpoint) error {
			first = ck
			return errors.New("stop after first checkpoint")
		},
	}
	if _, err := harness.RunContext(context.Background(), rc); err == nil {
		t.Fatal("capture run was not aborted by the sink")
	}
	if first == nil {
		t.Fatal("no checkpoint captured")
	}
	return first
}

// pollState waits until the job reaches the wanted state.
func pollState(t *testing.T, ts *httptest.Server, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/experiments/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() && !want.Terminal() {
			t.Fatalf("job %s reached terminal %q while waiting for %q (%s)", id, st.State, want, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return JobStatus{}
}

// TestCheckpointResumeRecovery: a job that was running (with a persisted
// checkpoint) when the daemon died resumes from that checkpoint in the
// next incarnation — fewer events re-executed, byte-identical summary,
// resume metrics bumped, checkpoint cleaned up after the terminal state.
func TestCheckpointResumeRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := quickConfig(harness.Orion)
	ck := captureCheckpoint(t, cfg)

	// Incarnation A journals the job as running, then "dies" with its
	// worker pinned — exactly the window a SIGKILL would hit.
	a := mustNew(t, Config{
		Workers: 1, QueueDepth: 4, JournalDir: dir,
		CheckpointStride: sim.InterruptStride, testBlock: make(chan struct{}),
	})
	tsA := httptest.NewServer(a.Handler())
	st, resp := submit(t, tsA, cfg)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitRunning(t, a, st.ID)
	// The checkpoint the lost run would have persisted by now.
	ckPath := filepath.Join(dir, "ckpt-"+st.ID+".ck")
	if err := checkpoint.WriteFile(ckPath, ck); err != nil {
		t.Fatal(err)
	}
	tsA.Close() // crash

	b := mustNew(t, Config{
		Workers: 1, QueueDepth: 4, JournalDir: dir,
		CheckpointStride: sim.InterruptStride,
	})
	defer b.Shutdown(context.Background())
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()

	got := pollDone(t, tsB, st.ID)
	if got.State != StateDone || !got.Recovered || got.RestartCount != 1 {
		t.Fatalf("recovered job: state=%q recovered=%v restarts=%d (%s)",
			got.State, got.Recovered, got.RestartCount, got.Error)
	}
	direct, err := harness.RunWire(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := summaryJSON(t, harness.Summarize(direct)); summaryJSON(t, got.Result) != want {
		t.Error("resumed summary not bit-identical to direct run")
	}
	if got := b.cResumed.Value(); got != 1 {
		t.Errorf("resumed counter = %v, want 1", got)
	}
	if got := b.cReplayed.Value(); got != float64(ck.Meta.Cursor) {
		t.Errorf("replayed counter = %v, want the checkpoint cursor %d", got, ck.Meta.Cursor)
	}
	if fileExists(ckPath) {
		t.Error("checkpoint file not removed after the job finished")
	}

	var buf bytes.Buffer
	mresp, err := http.Get(tsB.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"orion_serve_resumed_jobs_total 1",
		"orion_serve_events_replayed_total",
		"orion_serve_checkpoint_bytes",
		"orion_serve_checkpoint_write_seconds",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestCorruptCheckpointFallsBack: a damaged checkpoint file must not
// poison recovery — the job re-executes from event zero and still lands
// on the deterministic answer.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	cfg := quickConfig(harness.Reef)

	a := mustNew(t, Config{
		Workers: 1, QueueDepth: 4, JournalDir: dir,
		CheckpointStride: sim.InterruptStride, testBlock: make(chan struct{}),
	})
	tsA := httptest.NewServer(a.Handler())
	st, resp := submit(t, tsA, cfg)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitRunning(t, a, st.ID)
	ckPath := filepath.Join(dir, "ckpt-"+st.ID+".ck")
	if err := os.WriteFile(ckPath, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	tsA.Close() // crash

	b := mustNew(t, Config{
		Workers: 1, QueueDepth: 4, JournalDir: dir,
		CheckpointStride: sim.InterruptStride,
	})
	defer b.Shutdown(context.Background())
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()

	got := pollDone(t, tsB, st.ID)
	if got.State != StateDone || !got.Recovered {
		t.Fatalf("recovered job: state=%q recovered=%v (%s)", got.State, got.Recovered, got.Error)
	}
	if got := b.cResumed.Value(); got != 0 {
		t.Errorf("resumed counter = %v for a corrupt checkpoint, want 0", got)
	}
	// The damaged bytes are quarantined for post-mortem, not deleted or
	// left in place to trip the next recovery.
	if fileExists(ckPath) {
		t.Error("corrupt checkpoint still in place, want it moved aside")
	}
	if !fileExists(ckPath + ".bad") {
		t.Error("quarantined checkpoint missing (want " + ckPath + ".bad)")
	}
	if got := b.cCkptQuarant.Value(); got != 1 {
		t.Errorf("quarantine counter = %v, want 1", got)
	}
}

// TestDeadlineParksAndResumes: a job whose wall-clock deadline expires
// mid-run parks at its last checkpoint instead of failing; the parked
// state survives a restart; POST resume with a larger deadline continues
// the run to the exact deterministic answer.
func TestDeadlineParksAndResumes(t *testing.T) {
	dir := t.TempDir()
	cfg := quickConfig(harness.Orion)
	cfg.Horizon = 10 * sim.Second // ~0.5s+ of wall time: cannot finish in 200ms

	// The control run doubles as process warm-up: a cold first simulation
	// under -race can eat the whole deadline budget before the server
	// job's first checkpoint lands, failing the job instead of parking it.
	direct, err := harness.RunWire(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	a := mustNew(t, Config{
		Workers: 1, QueueDepth: 4, JournalDir: dir,
		CheckpointStride: sim.InterruptStride, JobDeadline: 200 * time.Millisecond,
	})
	tsA := httptest.NewServer(a.Handler())
	st, resp := submit(t, tsA, cfg)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	parked := pollState(t, tsA, st.ID, StateParked)
	if !strings.Contains(parked.Error, "parked") {
		t.Errorf("parked status error = %q", parked.Error)
	}
	ckPath := filepath.Join(dir, "ckpt-"+st.ID+".ck")
	if !fileExists(ckPath) {
		t.Fatal("parked job has no checkpoint file")
	}
	if code := postResume(t, tsA, "exp-999999", ""); code != http.StatusNotFound {
		t.Errorf("resume of an unknown job: %d, want 404", code)
	}

	// Graceful restart: parked is neither queued nor running, so it rides
	// through shutdown untouched and restores as parked.
	if err := a.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	tsA.Close()
	b := mustNew(t, Config{
		Workers: 1, QueueDepth: 4, JournalDir: dir,
		CheckpointStride: sim.InterruptStride, JobDeadline: 200 * time.Millisecond,
	})
	defer b.Shutdown(context.Background())
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	if got := pollState(t, tsB, st.ID, StateParked); got.State != StateParked {
		t.Fatalf("after restart: %q", got.State)
	}
	if !fileExists(ckPath) {
		t.Fatal("restart removed a parked job's checkpoint")
	}

	// Resume with a real budget: the run continues from the checkpoint.
	if code := postResume(t, tsB, st.ID, `{"deadline":"120s"}`); code != http.StatusAccepted {
		t.Fatalf("resume: %d", code)
	}
	got := pollDone(t, tsB, st.ID)
	if got.State != StateDone {
		t.Fatalf("resumed job: %q (%s)", got.State, got.Error)
	}
	if want := summaryJSON(t, harness.Summarize(direct)); summaryJSON(t, got.Result) != want {
		t.Error("parked-and-resumed summary not bit-identical to direct run")
	}
	if got := b.cResumed.Value(); got != 1 {
		t.Errorf("resumed counter = %v, want 1", got)
	}
	if fileExists(ckPath) {
		t.Error("checkpoint not cleaned up after the resumed job finished")
	}
	// Resuming a non-parked (here: done) job is a conflict, and bad resume
	// bodies are rejected up front.
	if code := postResume(t, tsB, st.ID, ""); code != http.StatusConflict {
		t.Errorf("resume of a done job: %d, want 409", code)
	}
	if code := postResume(t, tsB, st.ID, `{"deadline":"yes please"}`); code != http.StatusBadRequest {
		t.Errorf("bad deadline: %d, want 400", code)
	}
}

// postResume POSTs to the resume endpoint and returns the status code.
func postResume(t *testing.T, ts *httptest.Server, id, body string) int {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	resp, err := http.Post(ts.URL+"/v1/experiments/"+id+"/resume", "application/json", rd)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
