package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"time"

	"orion/internal/checkpoint"
)

// resumeRequest is the optional body of POST /v1/experiments/{id}/resume.
type resumeRequest struct {
	// Deadline is the wall-clock budget for the resumed attempt
	// ("30s"-style); empty keeps the job's previous effective deadline.
	Deadline string `json:"deadline,omitempty"`
}

// handleResume re-queues a parked job. The run continues from the job's
// persisted checkpoint (verified byte-for-byte against the deterministic
// replay before any new work happens); if the checkpoint file is gone or
// unreadable the job simply re-executes from event zero. Resumption goes
// through the same admission gates as a fresh submission — draining
// servers and full queues reject it — so a parked job can never bypass
// the queue bound the channel capacity was sized for.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r)
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{"no such experiment"})
		return
	}
	var req resumeRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{"bad resume body: " + err.Error()})
			return
		}
	}
	var deadline time.Duration
	if req.Deadline != "" {
		d, err := time.ParseDuration(req.Deadline)
		if err != nil || d < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("bad deadline %q", req.Deadline)})
			return
		}
		deadline = d
	}

	if s.degraded.Load() {
		// Resumption is admission: a journal-less server must not accept
		// new work it cannot make durable.
		s.rejectDegraded(w)
		return
	}

	// Load the checkpoint before taking the lock; it is a small file and
	// the job cannot leave Parked behind our back (only this handler and
	// the worker move it, and no worker owns a parked job). A corrupt
	// file is quarantined and the resume re-runs from event zero.
	var ck *checkpoint.Checkpoint
	if path := s.checkpointPath(j.id); path != "" {
		loaded, err := checkpoint.ReadFileFS(s.fsys, path)
		switch {
		case err == nil:
			ck = loaded
		case errors.Is(err, fs.ErrNotExist):
		default:
			s.quarantineCheckpoint(j.id, path, err)
		}
	}

	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		s.rejectUnavailable(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if j.state != StateParked {
		st := j.state
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, errorBody{fmt.Sprintf("experiment is %s, only parked jobs can be resumed", st)})
		return
	}
	if s.queued >= s.cfg.QueueDepth {
		n := s.queued
		s.mu.Unlock()
		s.rejectUnavailable(w, http.StatusTooManyRequests, fmt.Sprintf("queue full (%d waiting)", n))
		return
	}
	j.state = StateQueued
	j.resume = ck
	if deadline > 0 {
		j.deadline = deadline
	}
	j.errMsg = ""
	j.finished = time.Time{}
	s.queued++
	s.gQueueDepth.Inc()
	s.emit(j, "resume")
	restarts := j.restarts
	st := j.status()
	s.mu.Unlock()

	s.journalState(j.id, StateQueued, "", nil, restarts)

	s.mu.Lock()
	if s.draining.Load() {
		// Shutdown won the race while we were journaling (same pattern as
		// admit): cancel instead of enqueueing into nowhere.
		s.queued--
		s.gQueueDepth.Dec()
		j.state = StateCanceled
		j.finished = time.Now()
		j.errMsg = "server shut down before the job started"
		s.cJobs(StateCanceled).Inc()
		s.emit(j, string(StateCanceled))
		s.mu.Unlock()
		s.journalState(j.id, StateCanceled, j.errMsg, nil, restarts)
		s.rejectUnavailable(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.queue <- j // capacity reserved by s.queued above; never blocks
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, st)
}
