package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"orion/internal/harness"
	"orion/internal/sim"
)

// TestConcurrentWorkersArenaReuse floods a multi-worker server with
// experiments so several engines are constructed, run, reset, and reused
// concurrently — the -race target for the per-worker arena. Each worker
// owns its arena, so results must stay bit-identical run to run: every
// repetition of the same config has to produce the same summary no matter
// which (possibly warm) arena executed it.
func TestConcurrentWorkersArenaReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 12 concurrent simulations")
	}
	s := mustNew(t, Config{Workers: 4, QueueDepth: 16})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := func(scheme harness.Scheme, seed int64) harness.Config {
		return harness.Config{
			Scheme:  scheme,
			Horizon: sim.Second,
			Warmup:  200 * sim.Millisecond,
			Seed:    seed,
			Jobs: []harness.JobConfig{
				{Workload: "resnet50-inf", Priority: "hp", Arrival: "poisson", RPS: 30},
				{Workload: "mobilenetv2-train", Priority: "be"},
			},
		}
	}

	// Each distinct config is submitted repeatedly; repetitions land on
	// different workers with differently-warmed arenas.
	const repeats = 3
	schemes := []harness.Scheme{harness.Orion, harness.Reef, harness.Streams, harness.Temporal}
	ids := make([][]string, len(schemes))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for si, scheme := range schemes {
		ids[si] = make([]string, repeats)
		for r := 0; r < repeats; r++ {
			si, r, scheme := si, r, scheme
			wg.Add(1)
			go func() {
				defer wg.Done()
				st, resp := submit(t, ts, cfg(scheme, 11))
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("%s rep %d: submit status %d", scheme, r, resp.StatusCode)
					return
				}
				mu.Lock()
				ids[si][r] = st.ID
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for si, scheme := range schemes {
		var first *harness.Summary
		for r := 0; r < repeats; r++ {
			st := pollDone(t, ts, ids[si][r])
			if st.State != StateDone {
				t.Fatalf("%s rep %d: state %q (%s)", scheme, r, st.State, st.Error)
			}
			if first == nil {
				first = st.Result
				continue
			}
			if len(st.Result.Jobs) != len(first.Jobs) {
				t.Fatalf("%s rep %d: job count drifted", scheme, r)
			}
			for i := range first.Jobs {
				if st.Result.Jobs[i] != first.Jobs[i] {
					t.Errorf("%s rep %d job %d differs across arenas:\n  %+v\n  %+v",
						scheme, r, i, st.Result.Jobs[i], first.Jobs[i])
				}
			}
			if st.Result.Utilization != first.Utilization {
				t.Errorf("%s rep %d: utilization drifted across arenas", scheme, r)
			}
		}
	}
}
