package server

import (
	"net/http"
	"strconv"
	"time"

	"orion/internal/fleet"
	"orion/internal/journal"
)

// This file is the failure-dynamics serving layer: the chaos ticker
// that advances the deterministic failure process, the displacement
// path that moves residents of Down (or drained) devices back into the
// pending queue, and the operator endpoints (cordon/uncordon/drain,
// device listing, chaos arm/status). Every transition is journaled
// UNDER fa.mu and BEFORE it is applied, so the journal's failure
// history is a prefix-exact record of what the in-memory fleet did —
// recovery replays it bit-identically.

// FleetDeviceStatus is the wire-level view of one fleet device.
type FleetDeviceStatus struct {
	Index        int      `json:"index"`
	ID           string   `json:"id"`
	Class        string   `json:"class"`
	Health       string   `json:"health"`
	Cordoned     bool     `json:"cordoned,omitempty"`
	Residents    []string `json:"residents,omitempty"`
	MemUsedBytes int64    `json:"mem_used_bytes"`
	MemCapBytes  int64    `json:"mem_cap_bytes"`
	// Displaced is how many residents a drain displaced (drain
	// responses only).
	Displaced int `json:"displaced,omitempty"`
	// Haircut/MemFactor are the gray-failure capacity factors (set only
	// while Health == "degraded"); FlapCount the health transitions
	// inside the flap window; Quarantined/QuarantineReason the
	// flap-detector latch.
	Haircut          []float64 `json:"haircut,omitempty"`
	MemFactor        float64   `json:"mem_factor,omitempty"`
	FlapCount        int       `json:"flap_count,omitempty"`
	Quarantined      bool      `json:"quarantined,omitempty"`
	QuarantineReason string    `json:"quarantine_reason,omitempty"`
}

// FleetChaosStatus is the wire-level view of the failure process.
type FleetChaosStatus struct {
	Profile   string `json:"profile"`
	Armed     bool   `json:"armed"`
	Step      int64  `json:"step"`
	MaxSteps  int64  `json:"max_steps,omitempty"`
	Events    int64  `json:"events"`
	Exhausted bool   `json:"exhausted,omitempty"`
}

func fleetDeviceStatus(d *fleet.Device) FleetDeviceStatus {
	st := FleetDeviceStatus{
		Index:            d.Index,
		ID:               d.ID,
		Class:            d.Class.Name,
		Health:           d.Health.String(),
		Cordoned:         d.Cordoned,
		Residents:        append([]string(nil), d.Residents...),
		MemUsedBytes:     d.MemUsed,
		MemCapBytes:      d.EffMemoryBytes(),
		FlapCount:        len(d.FlapTicks),
		Quarantined:      d.Quarantined,
		QuarantineReason: d.QuarantineReason,
	}
	if d.Health == fleet.HealthDegraded {
		st.Haircut = haircutSlice(d.Haircut)
		st.MemFactor = d.MemFactor
	}
	return st
}

// haircutSlice flattens a fleet.Vector into the wire/journal form.
func haircutSlice(v fleet.Vector) []float64 {
	out := make([]float64, fleet.NumResources)
	for r := 0; r < fleet.NumResources; r++ {
		out[r] = v[r]
	}
	return out
}

// fleetChaosTicker advances the failure process on a wall-clock ticker.
// Each tick takes fa.mu, applies one chaos step's health transitions
// (journaling each first), and runs the re-placement queue — exactly
// the sequence a fleet.Storm performs in-process, with journaling
// interleaved. The process only moves once armed via POST
// /v1/fleet/chaos/start.
func (s *Server) fleetChaosTicker() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.FleetChaosTick)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			fa := s.fleet
			fa.mu.Lock()
			s.fleetChaosStepLocked()
			fa.mu.Unlock()
		}
	}
}

// fleetChaosStepLocked applies one failure-process step. Callers hold
// fa.mu.
func (s *Server) fleetChaosStepLocked() {
	fa := s.fleet
	if fa.chaos == nil || !fa.chaosArmed || fa.chaos.Exhausted() {
		return
	}
	evs := fa.chaos.Step()
	tick := fa.chaos.StepCount()
	for _, ev := range evs {
		if ev.To == fleet.HealthDegraded {
			s.fleetApplyDegradeLocked(ev, tick)
		} else {
			s.fleetApplyHealthLocked(ev.Device, ev.To, tick)
		}
	}
	s.fleetTickHealthLocked(tick)
	s.fleetRetryPendingLocked()
	s.fleetGaugesLocked()
}

// fleetApplyDegradeLocked journals one gray-failure transition (the
// absolute capacity factors travel in the record, stamped with the
// fleet schema version), applies the haircut, and displaces the memory
// overflow. Journal-before-apply as everywhere: a crash in between is
// healed by recovery's degraded-overflow sweep. Callers hold fa.mu.
func (s *Server) fleetApplyDegradeLocked(ev fleet.HealthEvent, tick int64) {
	fa := s.fleet
	devs := fa.f.Devices()
	if ev.Device < 0 || ev.Device >= len(devs) {
		return
	}
	d := devs[ev.Device]
	s.journalFleetHealth(journal.Record{
		Op:        journal.OpFleetDegrade,
		ID:        d.ID,
		Device:    ev.Device,
		Time:      time.Now(),
		State:     "degraded",
		Tick:      tick,
		Haircut:   haircutSlice(ev.Haircut),
		MemFactor: ev.MemFactor,
		Schema:    journal.FleetSchemaVersion,
	})
	displaced, err := fa.f.ApplyDegrade(ev.Device, ev.Haircut, ev.MemFactor, tick)
	if err != nil {
		return // factors come from the chaos process; unreachable
	}
	s.fleetDisplaceLocked(ev.Device, displaced, tick)
}

// fleetTickHealthLocked advances the flap detector and journals each
// quarantine latch change so recovery restores the latch verbatim.
// Callers hold fa.mu.
func (s *Server) fleetTickHealthLocked(tick int64) {
	fa := s.fleet
	fa.f.TickHealth(tick)
	devs := fa.f.Devices()
	for _, q := range fa.f.TakeQuarantineEvents() {
		state := "unquarantine"
		if q.On {
			state = "quarantine"
			s.cFleetQuarantined.Inc()
		}
		var id string
		if q.Device >= 0 && q.Device < len(devs) {
			id = devs[q.Device].ID
		}
		s.journalFleetHealth(journal.Record{
			Op:     journal.OpFleetHealth,
			ID:     id,
			Device: q.Device,
			Time:   time.Now(),
			State:  state,
			Tick:   q.Tick,
			Error:  q.Reason,
			Schema: journal.FleetSchemaVersion,
		})
	}
}

// fleetApplyHealthLocked journals one device health transition, applies
// it, and displaces any residents a Down transition unbinds. The
// journal append happens first: a crash between the append and the
// apply is safe because recovery's post-bind sweep re-displaces
// residents of Down devices. Callers hold fa.mu.
func (s *Server) fleetApplyHealthLocked(deviceIndex int, h fleet.HealthState, tick int64) {
	fa := s.fleet
	devs := fa.f.Devices()
	if deviceIndex < 0 || deviceIndex >= len(devs) {
		return
	}
	d := devs[deviceIndex]
	rec := journal.Record{
		Op:     journal.OpFleetHealth,
		ID:     d.ID,
		Device: deviceIndex,
		Time:   time.Now(),
		State:  h.String(),
		Tick:   tick,
	}
	if h == fleet.HealthDown && d.Health != fleet.HealthDown {
		rec.Domains = d.Domains()
	}
	s.journalFleetHealth(rec)
	displaced, err := fa.f.ApplyHealth(deviceIndex, h, tick)
	if err != nil {
		return // index validated above; unreachable
	}
	s.fleetDisplaceLocked(deviceIndex, displaced, tick)
}

// fleetDisplaceLocked moves displaced jobs into the pending queue with
// fresh queue positions and journals each displacement. The displaced
// job's deadline clock (dispTick) starts here. Callers hold fa.mu.
func (s *Server) fleetDisplaceLocked(deviceIndex int, specs []fleet.JobSpec, tick int64) {
	fa := s.fleet
	now := time.Now()
	for _, spec := range specs {
		fj := fa.jobs[spec.ID]
		if fj == nil {
			continue
		}
		fa.pendSeqCtr++
		fj.pendSeq = fa.pendSeqCtr
		fj.state = FleetPending
		fj.placement = nil
		fj.summary = nil
		fj.bindSeq = -1
		fj.dispTick = tick
		fj.attempts = 0
		fj.lastTry = tick
		fj.dispWall = now
		fj.updated = now
		fa.pending = append(fa.pending, spec.ID)
		s.cFleetDisplaced.Inc()
		s.journalFleetHealth(journal.Record{
			Op:      journal.OpFleetDisplace,
			ID:      spec.ID,
			Device:  deviceIndex,
			Time:    now,
			Tick:    tick,
			PendSeq: fj.pendSeq,
		})
	}
}

// journalFleetHealth appends a failure-stream record, best-effort like
// journalFleetState: a lost append means the transition replays after a
// crash, and the recovery sweep makes that safe. Callers hold fa.mu.
func (s *Server) journalFleetHealth(rec journal.Record) {
	if s.jn == nil {
		return
	}
	if err := s.jn.Append(rec); err != nil {
		s.noteJournalError(err)
	}
	s.journalGauges()
}

// --- operator endpoints -----------------------------------------------------

func (s *Server) handleFleetCordon(w http.ResponseWriter, r *http.Request) {
	s.fleetCordonOp(w, r, true, false)
}

func (s *Server) handleFleetUncordon(w http.ResponseWriter, r *http.Request) {
	s.fleetCordonOp(w, r, false, false)
}

// handleFleetDrain cordons the device and gracefully displaces its
// residents back into the pending queue for re-placement.
func (s *Server) handleFleetDrain(w http.ResponseWriter, r *http.Request) {
	s.fleetCordonOp(w, r, true, true)
}

func (s *Server) fleetCordonOp(w http.ResponseWriter, r *http.Request, on, drain bool) {
	if !s.fleetEnabled() {
		writeJSON(w, http.StatusNotFound, errorBody{"fleet placement is not enabled (start with -fleet)"})
		return
	}
	if s.draining.Load() {
		s.rejectUnavailable(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.degraded.Load() {
		s.rejectDegraded(w)
		return
	}
	idx, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"device id must be a device index"})
		return
	}
	fa := s.fleet
	fa.mu.Lock()
	devs := fa.f.Devices()
	if idx < 0 || idx >= len(devs) {
		fa.mu.Unlock()
		writeJSON(w, http.StatusNotFound, errorBody{"no such fleet device"})
		return
	}
	d := devs[idx]
	state := "uncordon"
	if on {
		state = "cordon"
	}
	tick := fa.f.Clock()
	s.journalFleetHealth(journal.Record{
		Op:     journal.OpFleetHealth,
		ID:     d.ID,
		Device: idx,
		Time:   time.Now(),
		State:  state,
		Tick:   tick,
	})
	_ = fa.f.Cordon(idx, on)
	displaced := 0
	if drain {
		specs, _ := fa.f.Displace(idx)
		s.fleetDisplaceLocked(idx, specs, tick)
		displaced = len(specs)
		// Displaced residents may fit elsewhere right away.
		s.fleetRetryPendingLocked()
	}
	s.fleetGaugesLocked()
	st := fleetDeviceStatus(d)
	st.Displaced = displaced
	fa.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleFleetDevices(w http.ResponseWriter, _ *http.Request) {
	if !s.fleetEnabled() {
		writeJSON(w, http.StatusNotFound, errorBody{"fleet placement is not enabled (start with -fleet)"})
		return
	}
	fa := s.fleet
	fa.mu.Lock()
	devs := fa.f.Devices()
	out := make([]FleetDeviceStatus, 0, len(devs))
	for _, d := range devs {
		out = append(out, fleetDeviceStatus(d))
	}
	fa.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleFleetChaosStart arms the configured failure process
// (idempotently) and journals the arming so a recovered daemon resumes
// the storm instead of sitting idle.
func (s *Server) handleFleetChaosStart(w http.ResponseWriter, _ *http.Request) {
	if !s.fleetEnabled() {
		writeJSON(w, http.StatusNotFound, errorBody{"fleet placement is not enabled (start with -fleet)"})
		return
	}
	if s.draining.Load() {
		s.rejectUnavailable(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.degraded.Load() {
		s.rejectDegraded(w)
		return
	}
	fa := s.fleet
	fa.mu.Lock()
	if fa.chaos == nil {
		fa.mu.Unlock()
		writeJSON(w, http.StatusNotFound, errorBody{"no failure process configured (start with -fleet-chaos-profile)"})
		return
	}
	if !fa.chaosArmed {
		fa.chaosArmed = true
		s.journalFleetHealth(journal.Record{
			Op:    journal.OpFleetHealth,
			Time:  time.Now(),
			State: "chaos-start",
		})
	}
	st := s.fleetChaosStatusLocked()
	fa.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleFleetChaosStatus(w http.ResponseWriter, _ *http.Request) {
	if !s.fleetEnabled() {
		writeJSON(w, http.StatusNotFound, errorBody{"fleet placement is not enabled (start with -fleet)"})
		return
	}
	fa := s.fleet
	fa.mu.Lock()
	if fa.chaos == nil {
		fa.mu.Unlock()
		writeJSON(w, http.StatusNotFound, errorBody{"no failure process configured (start with -fleet-chaos-profile)"})
		return
	}
	st := s.fleetChaosStatusLocked()
	fa.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// fleetChaosStatusLocked builds the chaos status view. Callers hold
// fa.mu with fa.chaos non-nil.
func (s *Server) fleetChaosStatusLocked() FleetChaosStatus {
	fa := s.fleet
	return FleetChaosStatus{
		Profile:   fa.chaosProfile,
		Armed:     fa.chaosArmed,
		Step:      fa.chaos.StepCount(),
		MaxSteps:  fa.chaos.Spec().MaxSteps,
		Events:    fa.chaos.Events(),
		Exhausted: fa.chaos.Exhausted(),
	}
}

// fleetHealthImage reduces the live fleet's health state to the
// compaction snapshot image (nil when nothing ever left the default
// state). Callers hold fa.mu (or run before the server starts serving).
func (s *Server) fleetHealthImage() *journal.FleetHealth {
	fa := s.fleet
	h := &journal.FleetHealth{
		Step:    fa.f.Clock(),
		Started: fa.chaosArmed,
		Domains: fa.f.DomainFailures(),
	}
	for _, d := range fa.f.Devices() {
		if d.Health == fleet.HealthHealthy && !d.Cordoned && !d.Quarantined && len(d.FlapTicks) == 0 {
			continue
		}
		dh := journal.DeviceHealth{
			Device:      d.Index,
			ID:          d.ID,
			Health:      d.Health.String(),
			Cordoned:    d.Cordoned,
			FlapTicks:   append([]int64(nil), d.FlapTicks...),
			Quarantined: d.Quarantined,
			Reason:      d.QuarantineReason,
		}
		if d.Health == fleet.HealthDegraded {
			dh.Haircut = haircutSlice(d.Haircut)
			dh.MemFactor = d.MemFactor
		}
		h.Devices = append(h.Devices, dh)
	}
	if h.Step == 0 && !h.Started && len(h.Devices) == 0 && len(h.Domains) == 0 {
		return nil
	}
	return h
}
