// Package swap implements the layer-by-layer offloading extension the
// paper plans in §5.1.3 (after vDNN [83] / PipeSwitch): when a best-effort
// job's weights do not fit in the GPU memory left over by the
// high-priority task, only a sliding window of its layers stays resident.
// Before a layer's kernels run, its weights are prefetched host-to-device
// on the client's own stream (so the copies order correctly with the
// kernels); least-recently-used layers are evicted to make room.
//
// The manager wraps any sched.Client, so swapping composes with every
// scheduling backend — under Orion, the injected prefetch copies flow
// through the same interception path as all other memory operations.
package swap

import (
	"fmt"

	"orion/internal/gpu"
	"orion/internal/kernels"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

// Client wraps a backend client with a resident-layer window. It
// implements sched.Client.
type Client struct {
	inner  sched.Client
	model  *workload.Model
	window int64 // resident weight budget in bytes

	resident map[int]bool
	lru      []int // least-recently-used order, oldest first
	used     int64

	opIndex   int // position within the current request's op stream
	prefetchN uint64
	evictN    uint64
}

// Wrap builds a swapping client over inner for the given device. window
// is the resident weight budget; it must hold at least two layers (one
// executing, one prefetching) and be below the model's full weights
// (otherwise swapping is pointless — use the plain client).
func Wrap(inner sched.Client, model *workload.Model, dev *gpu.Device, window int64) (*Client, error) {
	if inner == nil || model == nil || dev == nil {
		return nil, fmt.Errorf("swap: nil client, model or device")
	}
	if model.Kind != workload.Inference {
		return nil, fmt.Errorf("swap: %s is a training job; layer swapping requires read-only weights (no write-back path)", model.ID())
	}
	lb := model.LayerBytes()
	if lb <= 0 || model.Layers < 2 {
		return nil, fmt.Errorf("swap: %s has no layer structure", model.ID())
	}
	if window < 2*lb {
		return nil, fmt.Errorf("swap: window %d below two layers (%d)", window, 2*lb)
	}
	if window >= model.WeightsBytes {
		return nil, fmt.Errorf("swap: window %d covers the whole model; swapping is unnecessary", window)
	}
	return &Client{
		inner:    inner,
		model:    model,
		window:   window,
		resident: map[int]bool{},
	}, nil
}

// Stats reports how many layer prefetches and evictions happened.
func (c *Client) Stats() (prefetches, evictions uint64) { return c.prefetchN, c.evictN }

// ResidentBytes reports the weight bytes currently resident.
func (c *Client) ResidentBytes() int64 { return c.used }

// BeginRequest implements sched.Client.
func (c *Client) BeginRequest() {
	c.opIndex = 0
	c.inner.BeginRequest()
}

// LaunchOverhead implements sched.Client.
func (c *Client) LaunchOverhead() sim.Duration { return c.inner.LaunchOverhead() }

// Submit implements sched.Client: weight allocations are replaced by the
// window reservation, and kernels are preceded by their layer's prefetch
// when it is not resident.
func (c *Client) Submit(op *kernels.Descriptor, done func(sim.Time)) error {
	if op == nil {
		return fmt.Errorf("swap: nil op")
	}
	// The driver's one-time weights allocation: allocate only the window;
	// layers rotate through it.
	if op.Op == kernels.OpMalloc && op.Bytes == c.model.WeightsBytes {
		shrunk := *op
		shrunk.Bytes = c.window
		return c.inner.Submit(&shrunk, done)
	}

	if op.Op == kernels.OpKernel {
		layer := c.model.LayerOf(c.indexOf(op))
		if err := c.ensureResident(layer); err != nil {
			return err
		}
	}
	c.opIndex++
	return c.inner.Submit(op, done)
}

// indexOf locates the op in the model stream; ops arrive in order, so the
// running cursor is authoritative, but defensive lookup by ID keeps
// replayed descriptors (which carry their op index as ID) correct.
func (c *Client) indexOf(op *kernels.Descriptor) int {
	if op.ID >= 0 && op.ID < len(c.model.Ops) {
		return op.ID
	}
	return c.opIndex
}

// ensureResident prefetches the layer (and the next one, pipelining the
// PCIe transfer behind the current layer's kernels) if absent, evicting
// LRU layers as needed.
func (c *Client) ensureResident(layer int) error {
	for _, l := range []int{layer, (layer + 1) % c.model.Layers} {
		if c.resident[l] {
			c.touch(l)
			continue
		}
		if err := c.fetch(l); err != nil {
			return err
		}
	}
	return nil
}

func (c *Client) fetch(layer int) error {
	lb := c.model.LayerBytes()
	for c.used+lb > c.window {
		if len(c.lru) == 0 {
			return fmt.Errorf("swap: window too small for layer %d", layer)
		}
		victim := c.lru[0]
		c.lru = c.lru[:copy(c.lru, c.lru[1:])]
		delete(c.resident, victim)
		c.used -= lb
		c.evictN++
		// Weights are read-only: eviction frees the slot with no
		// write-back transfer.
	}
	c.used += lb
	c.resident[layer] = true
	c.lru = append(c.lru, layer)
	c.prefetchN++
	// The prefetch flows through the wrapped client on the same stream,
	// so the layer's kernels, submitted right after, order behind it.
	desc := &kernels.Descriptor{
		ID:   -1,
		Name: fmt.Sprintf("swapin_layer%d", layer),
		Op:   kernels.OpMemcpyH2D,
		// Async copy: prefetches overlap compute, as in PipeSwitch.
		Bytes: lb,
	}
	return c.inner.Submit(desc, nil)
}

// touch marks a layer most-recently-used.
func (c *Client) touch(layer int) {
	for i, l := range c.lru {
		if l == layer {
			copy(c.lru[i:], c.lru[i+1:])
			c.lru[len(c.lru)-1] = layer
			return
		}
	}
}

// EndRequest implements sched.Client.
func (c *Client) EndRequest(cb func(sim.Time)) error {
	return c.inner.EndRequest(cb)
}
