package swap

import (
	"testing"

	"orion/internal/cudart"
	"orion/internal/gpu"
	"orion/internal/kernels"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/trace"
	"orion/internal/workload"
)

func rig(t *testing.T) (*sim.Engine, *gpu.Device, *cudart.Context) {
	t.Helper()
	eng := sim.NewEngine()
	eng.MaxEvents = 500_000_000
	dev, err := gpu.NewDevice(eng, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	return eng, dev, cudart.NewContext(dev)
}

func directClient(t *testing.T, ctx *cudart.Context, m *workload.Model) sched.Client {
	t.Helper()
	backend := sched.NewDirect(ctx)
	c, err := backend.Register(sched.ClientConfig{Name: m.ID(), Priority: sched.BestEffort, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	backend.Start()
	return c
}

func TestWrapValidation(t *testing.T) {
	_, dev, ctx := rig(t)
	m := workload.LLMInference()
	inner := directClient(t, ctx, m)
	if _, err := Wrap(nil, m, dev, m.WeightsBytes/2); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := Wrap(inner, workload.ResNet50Training(), dev, 1<<30); err == nil {
		t.Error("training job accepted (no write-back path)")
	}
	if _, err := Wrap(inner, m, dev, m.LayerBytes()); err == nil {
		t.Error("window below two layers accepted")
	}
	if _, err := Wrap(inner, m, dev, m.WeightsBytes*2); err == nil {
		t.Error("window covering the full model accepted")
	}
	if _, err := Wrap(inner, m, dev, m.WeightsBytes/2); err != nil {
		t.Errorf("valid wrap rejected: %v", err)
	}
}

// A swapped client completes requests while holding only the window, not
// the full model, in device memory.
func TestSwappedClientStaysWithinWindow(t *testing.T) {
	eng, dev, ctx := rig(t)
	m := workload.LLMInference() // 12GB of weights
	window := m.WeightsBytes / 3 // 4GB resident
	inner := directClient(t, ctx, m)
	sc, err := Wrap(inner, m, dev, window)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sched.NewDriver(sched.DriverConfig{
		Engine: eng, Client: sc, Model: m,
		Horizon: sim.Time(sim.Seconds(3)), Warmup: sim.Seconds(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	eng.Run()
	if d.TotalCompleted() < 2 {
		t.Fatalf("only %d requests completed under swapping", d.TotalCompleted())
	}
	if got := dev.AllocatedBytes(); got != window {
		t.Errorf("device holds %d bytes, want the %d-byte window", got, window)
	}
	if sc.ResidentBytes() > window {
		t.Errorf("resident %d exceeds window %d", sc.ResidentBytes(), window)
	}
	pre, evict := sc.Stats()
	if pre == 0 || evict == 0 {
		t.Errorf("prefetches=%d evictions=%d; a 1/3 window must churn", pre, evict)
	}
}

// Swapping costs throughput: with a window below the model size and a
// sequential layer scan, every request streams the whole model over PCIe,
// so throughput drops to the transfer bound — the physics behind the
// paper's note that LLM collocation needs smarter swapping (vLLM-style
// paging) rather than naive full-model streaming.
func TestSwappingCostsThroughput(t *testing.T) {
	run := func(swapped bool) float64 {
		eng, dev, ctx := rig(t)
		m := workload.LLMInference()
		var cl sched.Client = directClient(t, ctx, m)
		if swapped {
			var err error
			cl, err = Wrap(cl, m, dev, m.WeightsBytes/3)
			if err != nil {
				t.Fatal(err)
			}
		}
		d, _ := sched.NewDriver(sched.DriverConfig{
			Engine: eng, Client: cl, Model: m,
			Horizon: sim.Time(sim.Seconds(4)), Warmup: sim.Seconds(1),
		})
		d.Start()
		eng.Run()
		return d.Stats().Throughput()
	}
	full, swapped := run(false), run(true)
	if swapped >= full {
		t.Errorf("swapped throughput %.2f >= resident %.2f; PCIe cost missing", swapped, full)
	}
	// The floor: one full weight transfer per request over PCIe.
	m := workload.LLMInference()
	bound := 1 / (float64(m.WeightsBytes) / gpu.V100().PCIeBandwidth)
	if swapped > bound*1.15 {
		t.Errorf("swapped throughput %.2f req/s beats the PCIe bound %.2f", swapped, bound)
	}
	if swapped < bound*0.5 {
		t.Errorf("swapped throughput %.2f req/s far below the PCIe bound %.2f; prefetch not pipelining", swapped, bound)
	}
}

// The headline scenario of §5.1.3: a best-effort job that does NOT fit
// next to the high-priority job runs anyway once swapped, with the
// high-priority job unharmed.
func TestSwapEnablesOversubscribedCollocation(t *testing.T) {
	eng, dev, ctx := rig(t)
	hpM := workload.ResNet50Training() // 5.1 GB
	beM := workload.LLMInference()     // 12 GB: 17.1 GB total > 16 GB

	backend := sched.NewDirect(ctx)
	hpc, err := backend.Register(sched.ClientConfig{Name: "hp", Priority: sched.HighPriority, Model: hpM})
	if err != nil {
		t.Fatal(err)
	}
	bec, err := backend.Register(sched.ClientConfig{Name: "be", Priority: sched.BestEffort, Model: beM})
	if err != nil {
		t.Fatal(err)
	}
	backend.Start()

	// Without swapping the second weights allocation must fail fast.
	if err := dev.Reserve(hpM.WeightsBytes + beM.WeightsBytes - dev.Spec().MemoryBytes + 1); err == nil {
		dev.Release(hpM.WeightsBytes + beM.WeightsBytes - dev.Spec().MemoryBytes + 1)
	}

	window := dev.Spec().MemoryBytes - hpM.WeightsBytes - (1 << 30) // leave 1GB slack
	swapped, err := Wrap(bec, beM, dev, window)
	if err != nil {
		t.Fatal(err)
	}

	horizon := sim.Time(sim.Seconds(4))
	hpd, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: hpc, Model: hpM, Horizon: horizon, Warmup: sim.Seconds(1)})
	arr, _ := trace.NewPoisson(2, sim.NewRand(3))
	bed, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: swapped, Model: beM, Arrivals: arr, Horizon: horizon, Warmup: sim.Seconds(1)})
	hpd.Start()
	bed.Start()
	eng.Run()

	if dev.AllocatedBytes() > dev.Spec().MemoryBytes {
		t.Fatalf("device oversubscribed: %d allocated", dev.AllocatedBytes())
	}
	if bed.TotalCompleted() == 0 {
		t.Fatal("swapped best-effort job made no progress")
	}
	if hpd.Stats().Throughput() < 0.7*10.3 {
		t.Errorf("high-priority training at %.2f it/s under a swapped partner", hpd.Stats().Throughput())
	}
}

// The non-fitting allocation really is rejected without swapping — the
// failure swapping exists to avoid.
func TestOversubscriptionFailsWithoutSwap(t *testing.T) {
	eng, _, ctx := rig(t)
	hpM := workload.ResNet50Training()
	beM := workload.LLMInference()
	backend := sched.NewDirect(ctx)
	hpc, _ := backend.Register(sched.ClientConfig{Name: "hp", Priority: sched.HighPriority, Model: hpM})
	bec, _ := backend.Register(sched.ClientConfig{Name: "be", Priority: sched.BestEffort, Model: beM})
	backend.Start()
	hpd, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: hpc, Model: hpM, Horizon: sim.Time(sim.Seconds(1))})
	hpd.Start()
	eng.Run()
	// HP weights are resident; the best-effort full allocation must fail.
	alloc := &kernels.Descriptor{Name: "weights_malloc", Op: kernels.OpMalloc, Bytes: beM.WeightsBytes}
	if err := bec.Submit(alloc, nil); err == nil {
		t.Fatal("oversubscribed malloc accepted without swapping")
	}
}
