package baselines

import (
	"fmt"

	"orion/internal/cudart"
	"orion/internal/kernels"
	"orion/internal/sched"
	"orion/internal/sim"
)

// Temporal is the temporal-sharing baseline: the GPU executes one job's
// request (inference batch or training minibatch) at a time, prioritizing
// the high-priority job's pending requests. An incoming request must wait
// for the ongoing request to finish — the head-of-line blocking the paper
// shows in Figure 2 and §6.2.1.
type Temporal struct {
	eng     *sim.Engine
	ctx     *cudart.Context
	clients []*temporalClient
	// current is the client whose request currently holds the GPU.
	current *temporalClient
	rrNext  int
	started bool

	// SwapStates enables Gandiva/Salus-style state swapping on context
	// switches, admitting job sets whose combined memory exceeds the
	// device (see temporal_swap.go).
	SwapStates bool
	lru        []*temporalClient
	swapIns    uint64
}

// NewTemporal creates the temporal-sharing backend.
func NewTemporal(eng *sim.Engine, ctx *cudart.Context) *Temporal {
	return &Temporal{eng: eng, ctx: ctx}
}

// Name implements sched.Backend.
func (t *Temporal) Name() string { return "temporal" }

// Start implements sched.Backend.
func (t *Temporal) Start() { t.started = true }

// Register implements sched.Backend.
func (t *Temporal) Register(cfg sched.ClientConfig) (sched.Client, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("temporal: client %q has no model", cfg.Name)
	}
	c := &temporalClient{
		backend: t,
		cfg:     cfg,
		stream:  t.ctx.StreamCreate(),
	}
	t.clients = append(t.clients, c)
	return c, nil
}

type temporalClient struct {
	backend *Temporal
	cfg     sched.ClientConfig
	stream  *cudart.Stream
	// resident marks the client's model state as on-device (SwapStates).
	resident bool

	// wantsGPU marks a request that has begun submitting but has not yet
	// been granted the device; buffered ops wait here.
	wantsGPU bool
	granted  bool
	buffered []bufferedOp
	// endCb is the pending EndRequest callback (set when the request
	// sealed before being granted).
	endPending bool
	endCb      func(sim.Time)
	// sealed marks a granted request whose release marker is on the
	// stream; gone marks a client removed via Deregister.
	sealed bool
	gone   bool
}

type bufferedOp struct {
	op   *kernels.Descriptor
	done func(sim.Time)
}

func (c *temporalClient) BeginRequest() {}

func (c *temporalClient) LaunchOverhead() sim.Duration { return 0 }

func (c *temporalClient) Submit(op *kernels.Descriptor, done func(sim.Time)) error {
	if op == nil {
		return fmt.Errorf("temporal: nil op")
	}
	if c.gone {
		return fmt.Errorf("temporal: submit on deregistered client %s", c.cfg.Name)
	}
	if handled, err := c.interceptWeightsMalloc(op, done); handled || err != nil {
		return err
	}
	if err := sched.CheckCapacity(c.backend.ctx, op); err != nil {
		return err
	}
	if c.granted {
		if len(c.buffered) > 0 {
			// A transient failure left earlier ops re-buffered; queue
			// behind them so submission order is preserved.
			c.buffered = append(c.buffered, bufferedOp{op, done})
			return nil
		}
		err := sched.SubmitTo(c.backend.ctx, c.stream, op, done)
		if err == nil || !cudart.IsTransient(err) {
			return err
		}
		// Transient device failure: buffer the op and retry shortly.
		c.buffered = append(c.buffered, bufferedOp{op, done})
		c.backend.eng.After(transientRetryInterval, func() {
			if c.granted {
				c.backend.flushGranted(c)
			}
		})
		return nil
	}
	c.buffered = append(c.buffered, bufferedOp{op, done})
	if !c.wantsGPU {
		c.wantsGPU = true
		c.backend.grantNext()
	}
	return nil
}

func (c *temporalClient) EndRequest(cb func(sim.Time)) error {
	if c.granted {
		if len(c.buffered) == 0 {
			return c.finish(cb)
		}
		// Re-buffered ops are still being retried; seal once they drain.
		c.endPending = true
		c.endCb = cb
		return nil
	}
	if !c.wantsGPU {
		// Empty request (no ops buffered): complete immediately.
		if cb != nil {
			cb(c.backend.eng.Now())
		}
		return nil
	}
	c.endPending = true
	c.endCb = cb
	return nil
}

// finish seals the granted request: a marker on the stream releases the
// GPU when everything has drained.
func (c *temporalClient) finish(cb func(sim.Time)) error {
	c.sealed = true
	return c.backend.ctx.StreamSynchronize(c.stream, func(at sim.Time) {
		c.granted = false
		c.sealed = false
		if c.backend.current == c {
			c.backend.current = nil
		}
		if cb != nil {
			cb(at)
		}
		c.backend.grantNext()
	})
}

// grantNext hands the GPU to the next waiting request: the high-priority
// client first, then best-effort clients round-robin.
func (t *Temporal) grantNext() {
	if t.current != nil {
		return
	}
	var pick *temporalClient
	for _, c := range t.clients {
		if c.wantsGPU && c.cfg.Priority == sched.HighPriority {
			pick = c
			break
		}
	}
	if pick == nil {
		n := len(t.clients)
		for i := 0; i < n; i++ {
			c := t.clients[(t.rrNext+i)%n]
			if c.wantsGPU {
				pick = c
				t.rrNext = (t.rrNext + i + 1) % n
				break
			}
		}
	}
	if pick == nil {
		return
	}
	t.current = pick
	pick.wantsGPU = false
	pick.granted = true
	swapBytes, err := t.ensureResident(pick)
	if err != nil {
		panic(fmt.Sprintf("temporal: residency: %v", err))
	}
	if swapBytes > 0 {
		// The context-switch transfer precedes the request on the
		// client's stream.
		if err := sched.SubmitTo(t.ctx, pick.stream, swapDescriptor(swapBytes), nil); err != nil {
			panic(fmt.Sprintf("temporal: swap-in: %v", err))
		}
	}
	t.flushGranted(pick)
}

// flushGranted submits the granted client's buffered operations in order.
// A transient device failure keeps the remaining ops buffered and retries
// shortly, preserving submission order; once the buffer drains, the
// request is sealed if its EndRequest already arrived.
func (t *Temporal) flushGranted(c *temporalClient) {
	for len(c.buffered) > 0 {
		b := c.buffered[0]
		if err := sched.SubmitTo(t.ctx, c.stream, b.op, b.done); err != nil {
			if cudart.IsTransient(err) {
				t.eng.After(transientRetryInterval, func() {
					if c.granted {
						t.flushGranted(c)
					}
				})
				return
			}
			panic(fmt.Sprintf("temporal: flush: %v", err))
		}
		c.buffered = c.buffered[:copy(c.buffered, c.buffered[1:])]
	}
	if c.endPending {
		c.endPending = false
		cb := c.endCb
		c.endCb = nil
		if err := c.finish(cb); err != nil {
			panic(fmt.Sprintf("temporal: finish: %v", err))
		}
	}
}

// Deregister implements sched.Backend: the dead client's buffered request
// is dropped; if it held the GPU mid-request with no seal coming, the
// grant is released once its in-flight operations drain, so the surviving
// clients are not blocked behind a corpse.
func (t *Temporal) Deregister(c sched.Client) error {
	tc, ok := c.(*temporalClient)
	if !ok || tc.backend != t {
		return fmt.Errorf("temporal: deregister of foreign client")
	}
	if tc.gone {
		return nil
	}
	tc.gone = true
	tc.buffered = nil
	tc.wantsGPU = false
	tc.endPending = false
	tc.endCb = nil
	for i, have := range t.clients {
		if have == tc {
			t.clients = append(t.clients[:i], t.clients[i+1:]...)
			if t.rrNext > i {
				t.rrNext--
			}
			if len(t.clients) > 0 {
				t.rrNext %= len(t.clients)
			} else {
				t.rrNext = 0
			}
			break
		}
	}
	for i, have := range t.lru {
		if have == tc {
			t.lru = append(t.lru[:i], t.lru[i+1:]...)
			break
		}
	}
	if t.SwapStates && tc.resident {
		// Reclaim the dead client's swapped-in model state.
		tc.resident = false
		t.ctx.Device().Release(tc.cfg.Model.WeightsBytes)
	}
	if t.current == tc && !tc.sealed {
		// Crashed while holding the GPU, before sealing its request:
		// release the grant once whatever it submitted drains.
		err := t.ctx.StreamSynchronize(tc.stream, func(sim.Time) {
			tc.granted = false
			if t.current == tc {
				t.current = nil
			}
			t.grantNext()
		})
		if err != nil {
			return fmt.Errorf("temporal: releasing crashed client's grant: %w", err)
		}
	}
	return nil
}
