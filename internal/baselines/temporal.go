package baselines

import (
	"fmt"

	"orion/internal/cudart"
	"orion/internal/kernels"
	"orion/internal/sched"
	"orion/internal/sim"
)

// Temporal is the temporal-sharing baseline: the GPU executes one job's
// request (inference batch or training minibatch) at a time, prioritizing
// the high-priority job's pending requests. An incoming request must wait
// for the ongoing request to finish — the head-of-line blocking the paper
// shows in Figure 2 and §6.2.1.
type Temporal struct {
	eng     *sim.Engine
	ctx     *cudart.Context
	clients []*temporalClient
	// current is the client whose request currently holds the GPU.
	current *temporalClient
	rrNext  int
	started bool

	// SwapStates enables Gandiva/Salus-style state swapping on context
	// switches, admitting job sets whose combined memory exceeds the
	// device (see temporal_swap.go).
	SwapStates bool
	lru        []*temporalClient
	swapIns    uint64
}

// NewTemporal creates the temporal-sharing backend.
func NewTemporal(eng *sim.Engine, ctx *cudart.Context) *Temporal {
	return &Temporal{eng: eng, ctx: ctx}
}

// Name implements sched.Backend.
func (t *Temporal) Name() string { return "temporal" }

// Start implements sched.Backend.
func (t *Temporal) Start() { t.started = true }

// Register implements sched.Backend.
func (t *Temporal) Register(cfg sched.ClientConfig) (sched.Client, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("temporal: client %q has no model", cfg.Name)
	}
	c := &temporalClient{
		backend: t,
		cfg:     cfg,
		stream:  t.ctx.StreamCreate(),
	}
	t.clients = append(t.clients, c)
	return c, nil
}

type temporalClient struct {
	backend *Temporal
	cfg     sched.ClientConfig
	stream  *cudart.Stream
	// resident marks the client's model state as on-device (SwapStates).
	resident bool

	// wantsGPU marks a request that has begun submitting but has not yet
	// been granted the device; buffered ops wait here.
	wantsGPU bool
	granted  bool
	buffered []bufferedOp
	// endCb is the pending EndRequest callback (set when the request
	// sealed before being granted).
	endPending bool
	endCb      func(sim.Time)
}

type bufferedOp struct {
	op   *kernels.Descriptor
	done func(sim.Time)
}

func (c *temporalClient) BeginRequest() {}

func (c *temporalClient) LaunchOverhead() sim.Duration { return 0 }

func (c *temporalClient) Submit(op *kernels.Descriptor, done func(sim.Time)) error {
	if op == nil {
		return fmt.Errorf("temporal: nil op")
	}
	if handled, err := c.interceptWeightsMalloc(op, done); handled || err != nil {
		return err
	}
	if err := sched.CheckCapacity(c.backend.ctx, op); err != nil {
		return err
	}
	if c.granted {
		return sched.SubmitTo(c.backend.ctx, c.stream, op, done)
	}
	c.buffered = append(c.buffered, bufferedOp{op, done})
	if !c.wantsGPU {
		c.wantsGPU = true
		c.backend.grantNext()
	}
	return nil
}

func (c *temporalClient) EndRequest(cb func(sim.Time)) error {
	if c.granted {
		return c.finish(cb)
	}
	if !c.wantsGPU {
		// Empty request (no ops buffered): complete immediately.
		if cb != nil {
			cb(c.backend.eng.Now())
		}
		return nil
	}
	c.endPending = true
	c.endCb = cb
	return nil
}

// finish seals the granted request: a marker on the stream releases the
// GPU when everything has drained.
func (c *temporalClient) finish(cb func(sim.Time)) error {
	return c.backend.ctx.StreamSynchronize(c.stream, func(at sim.Time) {
		c.granted = false
		c.backend.current = nil
		if cb != nil {
			cb(at)
		}
		c.backend.grantNext()
	})
}

// grantNext hands the GPU to the next waiting request: the high-priority
// client first, then best-effort clients round-robin.
func (t *Temporal) grantNext() {
	if t.current != nil {
		return
	}
	var pick *temporalClient
	for _, c := range t.clients {
		if c.wantsGPU && c.cfg.Priority == sched.HighPriority {
			pick = c
			break
		}
	}
	if pick == nil {
		n := len(t.clients)
		for i := 0; i < n; i++ {
			c := t.clients[(t.rrNext+i)%n]
			if c.wantsGPU {
				pick = c
				t.rrNext = (t.rrNext + i + 1) % n
				break
			}
		}
	}
	if pick == nil {
		return
	}
	t.current = pick
	pick.wantsGPU = false
	pick.granted = true
	swapBytes, err := t.ensureResident(pick)
	if err != nil {
		panic(fmt.Sprintf("temporal: residency: %v", err))
	}
	if swapBytes > 0 {
		// The context-switch transfer precedes the request on the
		// client's stream.
		if err := sched.SubmitTo(t.ctx, pick.stream, swapDescriptor(swapBytes), nil); err != nil {
			panic(fmt.Sprintf("temporal: swap-in: %v", err))
		}
	}
	buf := pick.buffered
	pick.buffered = nil
	for _, b := range buf {
		if err := sched.SubmitTo(t.ctx, pick.stream, b.op, b.done); err != nil {
			panic(fmt.Sprintf("temporal: flush: %v", err))
		}
	}
	if pick.endPending {
		pick.endPending = false
		cb := pick.endCb
		pick.endCb = nil
		if err := pick.finish(cb); err != nil {
			panic(fmt.Sprintf("temporal: finish: %v", err))
		}
	}
}
