package baselines

import (
	"testing"

	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/trace"
	"orion/internal/workload"
)

// Without SwapStates, a job set exceeding device memory is rejected at
// the weights allocation.
func TestTemporalRejectsOversubscriptionWithoutSwap(t *testing.T) {
	eng, ctx := newRig(t)
	backend := NewTemporal(eng, ctx)
	a, _ := backend.Register(sched.ClientConfig{Name: "a", Model: workload.LLMInference()})
	b, _ := backend.Register(sched.ClientConfig{Name: "b", Model: workload.ResNet50Training()})
	backend.Start()
	da, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: a, Model: workload.LLMInference(), Horizon: sim.Time(sim.Seconds(1))})
	if err := da.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	db, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: b, Model: workload.ResNet50Training(), Horizon: sim.Time(sim.Seconds(1))})
	if err := db.Start(); err == nil {
		t.Fatal("second weights allocation should exceed device memory")
	}
}

// With SwapStates, the same job set runs: state swaps in and out on
// context switches.
func TestTemporalSwapServesOversubscribedSet(t *testing.T) {
	eng, ctx := newRig(t)
	backend := NewTemporal(eng, ctx)
	backend.SwapStates = true
	llm := workload.LLMInference()
	trn := workload.ResNet50Training()
	a, _ := backend.Register(sched.ClientConfig{Name: "a", Priority: sched.HighPriority, Model: llm})
	b, _ := backend.Register(sched.ClientConfig{Name: "b", Priority: sched.BestEffort, Model: trn})
	backend.Start()
	horizon := sim.Time(sim.Seconds(12))
	arr, _ := trace.NewPoisson(1, sim.NewRand(5))
	da, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: a, Model: llm, Arrivals: arr, Horizon: horizon, Warmup: sim.Seconds(2)})
	db, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: b, Model: trn, Horizon: horizon, Warmup: sim.Seconds(2)})
	if err := da.Start(); err != nil {
		t.Fatal(err)
	}
	if err := db.Start(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(horizon)
	if da.TotalCompleted() == 0 || db.TotalCompleted() == 0 {
		t.Fatalf("progress %d/%d; swapping should serve both", da.TotalCompleted(), db.TotalCompleted())
	}
	if backend.SwapIns() < 2 {
		t.Fatalf("only %d swap-ins; alternating grants must churn state", backend.SwapIns())
	}
	// Memory never oversubscribed.
	if got := ctx.Device().AllocatedBytes(); got > ctx.Device().Spec().MemoryBytes {
		t.Fatalf("device holds %d bytes", got)
	}
	// Context switches cost real time: the LLM's latency far exceeds its
	// dedicated ~140ms whenever the trainer ran in between (12GB+5GB of
	// transfers at 12 GB/s is ~1.4s per switch).
	if p50 := da.Stats().Latency.P50(); p50 < sim.Millis(200) {
		t.Errorf("llm p50 %.0fms with swapping; expected context-switch transfer costs", p50.Millis())
	}
}

// Fitting job sets never swap: residency is sticky.
func TestTemporalSwapNoChurnWhenFits(t *testing.T) {
	eng, ctx := newRig(t)
	backend := NewTemporal(eng, ctx)
	backend.SwapStates = true
	m1, m2 := workload.ResNet50Inference(), workload.MobileNetV2Inference()
	a, _ := backend.Register(sched.ClientConfig{Name: "a", Priority: sched.HighPriority, Model: m1})
	b, _ := backend.Register(sched.ClientConfig{Name: "b", Priority: sched.BestEffort, Model: m2})
	backend.Start()
	horizon := sim.Time(sim.Seconds(3))
	arrA, _ := trace.NewPoisson(20, sim.NewRand(1))
	arrB, _ := trace.NewPoisson(20, sim.NewRand(2))
	da, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: a, Model: m1, Arrivals: arrA, Horizon: horizon})
	db, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: b, Model: m2, Arrivals: arrB, Horizon: horizon})
	da.Start()
	db.Start()
	eng.RunUntil(horizon)
	// Both fit: one swap-in each, never evicted.
	if backend.SwapIns() != 2 {
		t.Fatalf("%d swap-ins for a fitting pair, want 2 (cold loads only)", backend.SwapIns())
	}
}
