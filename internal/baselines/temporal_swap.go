package baselines

import (
	"fmt"

	"orion/internal/kernels"
	"orion/internal/sim"
)

// State swapping for temporal sharing — the mechanism the Gandiva / Salus
// / Clockwork line of work builds around (§4): when the models sharing a
// GPU do not fit in device memory together, the time-slicer transfers
// model state in and out on context switches. Enabling SwapStates makes
// the Temporal backend admit such job sets; every grant to a non-resident
// client first evicts least-recently-granted state (device-to-host, the
// state may be dirty) and streams the granted client's weights in
// (host-to-device) on the client's own stream, so the request naturally
// queues behind its own swap-in.
//
// The paper positions Orion as complementary to these systems: they pack
// more models per GPU; Orion fills each resident model's idle
// microseconds.

// ensureResident makes the granted client's state resident, charging
// eviction and swap-in transfers. It returns the bytes to stream in (0 if
// already resident).
func (t *Temporal) ensureResident(c *temporalClient) (int64, error) {
	if !t.SwapStates {
		return 0, nil
	}
	if c.resident {
		t.touch(c)
		return 0, nil
	}
	dev := t.ctx.Device()
	need := c.cfg.Model.WeightsBytes
	var evicted int64
	for dev.AllocatedBytes()+need > dev.Spec().MemoryBytes {
		victim := t.oldestResident(c)
		if victim == nil {
			return 0, fmt.Errorf("temporal: %s (%d bytes) cannot fit even alone", c.cfg.Name, need)
		}
		victim.resident = false
		dev.Release(victim.cfg.Model.WeightsBytes)
		evicted += victim.cfg.Model.WeightsBytes
	}
	if err := dev.Reserve(need); err != nil {
		return 0, err
	}
	c.resident = true
	t.touch(c)
	t.swapIns++
	// Dirty state out + weights in, one PCIe round charged up front.
	return need + evicted, nil
}

// oldestResident returns the least-recently-granted resident client other
// than the one being granted.
func (t *Temporal) oldestResident(granting *temporalClient) *temporalClient {
	for _, c := range t.lru {
		if c != granting && c.resident {
			return c
		}
	}
	return nil
}

// touch marks a client most-recently granted.
func (t *Temporal) touch(c *temporalClient) {
	for i, x := range t.lru {
		if x == c {
			copy(t.lru[i:], t.lru[i+1:])
			t.lru[len(t.lru)-1] = c
			return
		}
	}
	t.lru = append(t.lru, c)
}

// SwapIns reports how many state swap-ins happened.
func (t *Temporal) SwapIns() uint64 { return t.swapIns }

// swapDescriptor builds the transfer charged for a context switch.
func swapDescriptor(bytes int64) *kernels.Descriptor {
	return &kernels.Descriptor{
		ID: -1, Name: "state_swap", Op: kernels.OpMemcpyH2D, Bytes: bytes,
		// Synchronous: the job cannot run until its state is resident,
		// and the paper notes blocking transfers stall kernel dispatch.
		Sync: true,
	}
}

// interceptWeightsMalloc handles the driver's one-time weights allocation
// under SwapStates: residency is managed at grant time instead, so the
// allocation only keeps its device-synchronizing cost.
func (c *temporalClient) interceptWeightsMalloc(op *kernels.Descriptor, done func(sim.Time)) (bool, error) {
	if !c.backend.SwapStates || op.Op != kernels.OpMalloc || op.Bytes != c.cfg.Model.WeightsBytes {
		return false, nil
	}
	// A zero-byte release is a device-synchronizing no-op with the same
	// timing as the malloc it replaces.
	return true, c.backend.ctx.FreeBytes(0, c.stream, done)
}
