package baselines

import (
	"fmt"

	"orion/internal/cudart"
	"orion/internal/kernels"
	"orion/internal/profiler"
	"orion/internal/sched"
	"orion/internal/sim"
)

// DefaultReefQueueDepth is the best-effort software queue depth used by
// REEF-N, per the paper's discussion with the REEF authors (§6.1).
const DefaultReefQueueDepth = 12

// Reef implements the REEF-N policy the paper compares against:
// high-priority kernels bypass best-effort kernels waiting in software
// queues and go straight to a high-priority stream; best-effort kernels
// are admitted up to a bounded device-queue depth, selected by size — a
// best-effort kernel launches only when its SM requirement fits in the SMs
// the currently executing high-priority kernel leaves free. REEF is not
// interference-aware: it considers kernel sizes, never compute/memory
// profiles, and it does not throttle the accumulated duration of admitted
// best-effort work.
type Reef struct {
	eng *sim.Engine
	ctx *cudart.Context
	// QueueDepth bounds outstanding best-effort kernels (default 12).
	QueueDepth int
	// Profiles supplies per-kernel SM requirements, as in Orion.
	Profiles map[string]*profiler.Profile

	hp     *reefClient
	be     []*reefClient
	rrNext int

	// hpSMs is the FIFO of outstanding high-priority kernel SM needs;
	// the front is the kernel currently executing.
	hpSMs []int
	hpOut int

	beOutstanding int // outstanding best-effort kernels on the device

	inSchedule bool
	again      bool
	retryArmed bool
	started    bool

	// flightFree recycles in-flight op records so the steady-state submit
	// path allocates neither the record nor its completion closure.
	flightFree []*reefInflight
}

// NewReef creates the REEF-N backend.
func NewReef(eng *sim.Engine, ctx *cudart.Context, profiles map[string]*profiler.Profile) *Reef {
	return &Reef{eng: eng, ctx: ctx, QueueDepth: DefaultReefQueueDepth, Profiles: profiles}
}

// Name implements sched.Backend.
func (r *Reef) Name() string { return "reef" }

// Start implements sched.Backend.
func (r *Reef) Start() { r.started = true }

// Register implements sched.Backend.
func (r *Reef) Register(cfg sched.ClientConfig) (sched.Client, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("reef: client %q has no model", cfg.Name)
	}
	prof := r.Profiles[cfg.Model.ID()]
	if prof == nil {
		return nil, fmt.Errorf("reef: no profile for %s", cfg.Model.ID())
	}
	prio := 0
	if cfg.Priority == sched.HighPriority {
		prio = 1
	}
	c := &reefClient{
		backend: r,
		cfg:     cfg,
		profile: prof,
		stream:  r.ctx.StreamCreateWithPriority(prio),
		tracker: sched.NewTracker(r.eng),
	}
	if cfg.Priority == sched.HighPriority {
		if r.hp != nil {
			return nil, fmt.Errorf("reef: second high-priority client %q", cfg.Name)
		}
		r.hp = c
	} else {
		r.be = append(r.be, c)
	}
	return c, nil
}

// Deregister implements sched.Backend: the crashed client's queued work
// is purged without firing completion callbacks; kernels it already has
// on the device drain normally (their done closures keep the outstanding
// counters consistent).
func (r *Reef) Deregister(c sched.Client) error {
	rc, ok := c.(*reefClient)
	if !ok || rc.backend != r {
		return fmt.Errorf("reef: deregister of foreign client")
	}
	if rc.gone {
		return nil
	}
	rc.gone = true
	rc.queue = nil
	if rc == r.hp {
		r.hp = nil
	} else {
		for i, have := range r.be {
			if have != rc {
				continue
			}
			r.be = append(r.be[:i], r.be[i+1:]...)
			if r.rrNext > i {
				r.rrNext--
			}
			if len(r.be) > 0 {
				r.rrNext %= len(r.be)
			} else {
				r.rrNext = 0
			}
			break
		}
	}
	r.schedule()
	return nil
}

type reefClient struct {
	backend *Reef
	cfg     sched.ClientConfig
	profile *profiler.Profile
	stream  *cudart.Stream
	tracker *sched.Tracker
	queue   []reefOp
	gone    bool
}

type reefOp struct {
	op   *kernels.Descriptor
	prof *profiler.KernelProfile
	done func(sim.Time)
}

func (c *reefClient) BeginRequest() {}

// LaunchOverhead: REEF's interception cost is comparable to Orion's.
func (c *reefClient) LaunchOverhead() sim.Duration { return 300 * sim.Nanosecond }

func (c *reefClient) Submit(op *kernels.Descriptor, done func(sim.Time)) error {
	if op == nil {
		return fmt.Errorf("reef: nil op")
	}
	if c.gone {
		return fmt.Errorf("reef: submit on deregistered client %s", c.cfg.Name)
	}
	if err := sched.CheckCapacity(c.backend.ctx, op); err != nil {
		return err
	}
	var prof *profiler.KernelProfile
	if op.Op == kernels.OpKernel {
		p, ok := c.profile.Kernel(op.ID)
		if !ok || p.Duration <= 0 || p.Name != op.Name {
			derived, err := profiler.Derive(op, c.backend.ctx.Device().Spec())
			if err != nil {
				return fmt.Errorf("reef: %s kernel %d not profiled and underivable: %w",
					c.cfg.Name, op.ID, err)
			}
			p = derived
		}
		prof = p
	}
	c.tracker.OnSubmit()
	c.queue = append(c.queue, reefOp{op, prof, done})
	c.backend.schedule()
	return nil
}

func (c *reefClient) EndRequest(cb func(sim.Time)) error {
	c.tracker.Sync(cb)
	return nil
}

func (r *Reef) schedule() {
	if r.inSchedule {
		r.again = true
		return
	}
	r.inSchedule = true
	for {
		r.again = false
		progress := true
		for progress {
			progress = false
			if r.hp != nil && r.drainHP() {
				progress = true
			}
			if r.serveBE() {
				progress = true
			}
		}
		if !r.again {
			break
		}
	}
	r.inSchedule = false
}

// drainHP bypasses: every queued high-priority op goes straight to the
// device.
func (r *Reef) drainHP() bool {
	c := r.hp
	progress := false
	for len(c.queue) > 0 {
		q := c.queue[0]
		if !r.trySubmit(c, q, true) {
			break // transient failure: op stays queued, retried later
		}
		c.queue = c.queue[:copy(c.queue, c.queue[1:])]
		if q.op.Op == kernels.OpKernel {
			r.hpSMs = append(r.hpSMs, q.prof.SMsNeeded)
		}
		r.hpOut++
		progress = true
	}
	return progress
}

func (r *Reef) hpActive() bool {
	return r.hp != nil && (r.hpOut > 0 || len(r.hp.queue) > 0)
}

// freeSMsEstimate is the device capacity minus the currently executing
// high-priority kernel's profiled SM need — REEF's size-based selection
// signal.
func (r *Reef) freeSMsEstimate() int {
	total := r.ctx.Device().Spec().NumSMs
	if len(r.hpSMs) == 0 {
		return total
	}
	free := total - r.hpSMs[0]
	if free < 0 {
		free = 0
	}
	return free
}

func (r *Reef) serveBE() bool {
	n := len(r.be)
	progress := false
	for i := 0; i < n; i++ {
		c := r.be[(r.rrNext+i)%n]
		if len(c.queue) == 0 {
			continue
		}
		q := c.queue[0]
		if q.op.Op != kernels.OpKernel {
			if !r.trySubmit(c, q, false) {
				continue // transient failure: retried later
			}
			c.queue = c.queue[:copy(c.queue, c.queue[1:])]
			progress = true
			continue
		}
		if r.beOutstanding >= r.QueueDepth {
			continue
		}
		if r.hpActive() && q.prof.SMsNeeded > r.freeSMsEstimate() {
			continue
		}
		if !r.trySubmit(c, q, false) {
			continue // transient failure: retried later
		}
		c.queue = c.queue[:copy(c.queue, c.queue[1:])]
		r.beOutstanding++
		progress = true
	}
	if n > 0 {
		r.rrNext = (r.rrNext + 1) % n
	}
	return progress
}

// reefInflight is one op lowered onto the device, pooled on the backend.
// doneFn is built once per object and survives recycling, so steady-state
// submission is allocation-free.
type reefInflight struct {
	r      *Reef
	c      *reefClient
	op     *kernels.Descriptor
	hp     bool
	done   func(sim.Time)
	doneFn func(sim.Time)
}

func (r *Reef) allocInflight() *reefInflight {
	if n := len(r.flightFree); n > 0 {
		f := r.flightFree[n-1]
		r.flightFree[n-1] = nil
		r.flightFree = r.flightFree[:n-1]
		return f
	}
	f := &reefInflight{}
	f.doneFn = func(at sim.Time) { f.complete(at) }
	return f
}

func (r *Reef) releaseInflight(f *reefInflight) {
	f.r, f.c, f.op, f.done = nil, nil, nil, nil
	f.hp = false
	r.flightFree = append(r.flightFree, f)
}

// complete unwinds the outstanding counters when the device finishes the
// op; the record is recycled before the caller's callback runs since the
// callback may submit again and reuse it.
func (f *reefInflight) complete(at sim.Time) {
	r := f.r
	if f.hp {
		r.hpOut--
		if f.op.Op == kernels.OpKernel && len(r.hpSMs) > 0 {
			r.hpSMs = r.hpSMs[:copy(r.hpSMs, r.hpSMs[1:])]
		}
	} else if f.op.Op == kernels.OpKernel {
		r.beOutstanding--
	}
	f.c.tracker.OnComplete(at)
	done := f.done
	r.releaseInflight(f)
	if done != nil {
		done(at)
	}
	r.schedule()
}

// trySubmit lowers the op onto the client's stream, reporting whether it
// reached the device. A transient failure re-arms the scheduler one retry
// interval out and leaves the op with the caller; other errors panic.
func (r *Reef) trySubmit(c *reefClient, q reefOp, hp bool) bool {
	f := r.allocInflight()
	f.r, f.c, f.op, f.hp, f.done = r, c, q.op, hp, q.done
	err := sched.SubmitTo(r.ctx, c.stream, q.op, f.doneFn)
	if err == nil {
		return true
	}
	r.releaseInflight(f)
	if cudart.IsTransient(err) {
		r.armRetry()
		return false
	}
	panic(fmt.Sprintf("reef: submit %s: %v", q.op.Name, err))
}

// armRetry schedules one retry pass a retry interval out. Arms coalesce
// so a pass with several failing submissions pends a single retry, not
// one per failure — per-failure arms compound geometrically while a
// failure window is open.
func (r *Reef) armRetry() {
	if r.retryArmed {
		return
	}
	r.retryArmed = true
	r.eng.After(transientRetryInterval, func() {
		r.retryArmed = false
		r.schedule()
	})
}
