package baselines

import "orion/internal/checkpoint"

// The baseline backends implement checkpoint.Snapshotter just like the
// Orion core: each appends the logical scheduling state that a
// deterministic replay must reproduce. Pools (flightFree) and prebuilt
// callbacks are excluded throughout.

// SnapshotTo implements checkpoint.Snapshotter.
func (r *Reef) SnapshotTo(e *checkpoint.Encoder) {
	e.Int(r.rrNext)
	e.Int(r.hpOut)
	e.Int(r.beOutstanding)
	e.Bool(r.inSchedule)
	e.Bool(r.again)
	e.Bool(r.retryArmed)
	e.Bool(r.started)
	e.Int(len(r.hpSMs))
	for _, sms := range r.hpSMs {
		e.Int(sms)
	}
	e.Bool(r.hp != nil)
	if r.hp != nil {
		r.hp.snapshotTo(e)
	}
	e.Int(len(r.be))
	for _, c := range r.be {
		c.snapshotTo(e)
	}
}

func (c *reefClient) snapshotTo(e *checkpoint.Encoder) {
	e.Str(c.cfg.Name)
	e.Bool(c.gone)
	e.Int(len(c.queue))
	for _, q := range c.queue {
		e.Str(q.op.Name)
	}
	c.tracker.SnapshotTo(e)
}

// SnapshotTo implements checkpoint.Snapshotter.
func (t *TickTock) SnapshotTo(e *checkpoint.Encoder) {
	e.Int(t.slotActive)
	e.Bool(t.started)
	e.Int(len(t.clients))
	for _, c := range t.clients {
		e.Str(c.cfg.Name)
		e.Bool(c.gone)
		e.Int(len(c.buffering))
		e.Int(len(c.phases))
		for _, p := range c.phases {
			e.Int(len(p.ops))
			e.Bool(p.skip)
		}
	}
}

// SnapshotTo implements checkpoint.Snapshotter.
func (t *Temporal) SnapshotTo(e *checkpoint.Encoder) {
	e.Int(t.rrNext)
	e.Bool(t.started)
	e.Bool(t.SwapStates)
	e.U64(t.swapIns)
	// Identify the current holder and LRU entries by client index —
	// stable, since clients register in a fixed order.
	e.Int(t.clientIndex(t.current))
	e.Int(len(t.lru))
	for _, c := range t.lru {
		e.Int(t.clientIndex(c))
	}
	e.Int(len(t.clients))
	for _, c := range t.clients {
		e.Str(c.cfg.Name)
		e.Bool(c.resident)
		e.Bool(c.wantsGPU)
		e.Bool(c.granted)
		e.Bool(c.endPending)
		e.Bool(c.sealed)
		e.Bool(c.gone)
		e.Int(len(c.buffered))
	}
}

// clientIndex maps a client pointer to its registration index (-1 for nil
// or unknown).
func (t *Temporal) clientIndex(tc *temporalClient) int {
	if tc == nil {
		return -1
	}
	for i, c := range t.clients {
		if c == tc {
			return i
		}
	}
	return -1
}

// SnapshotTo implements checkpoint.Snapshotter. The pass-through
// baselines hold almost no scheduler state; client count and liveness
// pin what there is.
func (s *Streams) SnapshotTo(e *checkpoint.Encoder) {
	e.Bool(s.UsePriorities)
	snapshotPassClients(e, s.clients)
}

// SnapshotTo implements checkpoint.Snapshotter.
func (m *MPS) SnapshotTo(e *checkpoint.Encoder) {
	snapshotPassClients(e, m.clients)
}

func snapshotPassClients(e *checkpoint.Encoder, clients []*passClient) {
	e.Int(len(clients))
	for _, c := range clients {
		e.Bool(c.gone)
	}
}
