package baselines

import (
	"fmt"

	"orion/internal/cudart"
	"orion/internal/kernels"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

// TickTock implements the Tick-Tock / Zico style training collocation the
// paper compares against in the train-train use case (§6.2.2): the forward
// and backward passes of two collocated training jobs are offset — while
// one job runs its forward pass, the other runs its backward pass — with a
// global barrier at every phase boundary. The barrier makes the fastest
// job wait for the slowest, which is why the paper measures Tick-Tock at
// the lowest aggregate throughput of all baselines.
type TickTock struct {
	eng     *sim.Engine
	ctx     *cudart.Context
	clients []*ttClient
	// slotActive counts phases still executing in the current slot.
	slotActive int
	started    bool
	scheduleFn func() // t.schedule, bound once
}

// NewTickTock creates the Tick-Tock backend.
func NewTickTock(eng *sim.Engine, ctx *cudart.Context) *TickTock {
	t := &TickTock{eng: eng, ctx: ctx}
	t.scheduleFn = t.schedule
	return t
}

// Name implements sched.Backend.
func (t *TickTock) Name() string { return "ticktock" }

// Start implements sched.Backend.
func (t *TickTock) Start() { t.started = true }

// Register implements sched.Backend. Tick-Tock collocates exactly two
// training jobs.
func (t *TickTock) Register(cfg sched.ClientConfig) (sched.Client, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("ticktock: client %q has no model", cfg.Name)
	}
	if cfg.Model.Kind != workload.Training {
		return nil, fmt.Errorf("ticktock: %s is not a training job (Tick-Tock offsets forward/backward passes)", cfg.Model.ID())
	}
	if len(t.clients) >= 2 {
		return nil, fmt.Errorf("ticktock: more than two training jobs")
	}
	c := &ttClient{
		backend: t,
		cfg:     cfg,
		stream:  t.ctx.StreamCreate(),
	}
	if len(t.clients) == 1 {
		// Offset the second job by one slot so forward and backward
		// passes interleave: slot 0 runs only job A's forward pass.
		c.phases = append(c.phases, phase{skip: true})
	}
	t.clients = append(t.clients, c)
	return c, nil
}

type phase struct {
	ops  []bufferedOp
	skip bool // offset placeholder: occupies one slot doing nothing
	cb   func(sim.Time)
}

type ttClient struct {
	backend *TickTock
	cfg     sched.ClientConfig
	stream  *cudart.Stream

	buffering []bufferedOp
	phases    []phase
	gone      bool
}

func (c *ttClient) BeginRequest() {}

func (c *ttClient) LaunchOverhead() sim.Duration { return 0 }

func (c *ttClient) Submit(op *kernels.Descriptor, done func(sim.Time)) error {
	if op == nil {
		return fmt.Errorf("ticktock: nil op")
	}
	if c.gone {
		return fmt.Errorf("ticktock: submit on deregistered client %s", c.cfg.Name)
	}
	if err := sched.CheckCapacity(c.backend.ctx, op); err != nil {
		return err
	}
	c.buffering = append(c.buffering, bufferedOp{op, done})
	return nil
}

// EndRequest seals the buffered iteration into forward and backward
// phases; cb fires when the backward phase completes.
func (c *ttClient) EndRequest(cb func(sim.Time)) error {
	ops := c.buffering
	c.buffering = nil
	if len(ops) == 0 {
		if cb != nil {
			cb(c.backend.eng.Now())
		}
		return nil
	}
	split := c.cfg.Model.PhaseBoundary
	if split <= 0 || split >= len(ops) {
		c.phases = append(c.phases, phase{ops: ops, cb: cb})
	} else {
		c.phases = append(c.phases,
			phase{ops: ops[:split]},
			phase{ops: ops[split:], cb: cb})
	}
	c.backend.schedule()
	return nil
}

// schedule starts a new slot when the previous one has fully drained: one
// pending phase from every client launches concurrently, then the barrier.
func (t *TickTock) schedule() {
	if t.slotActive > 0 {
		return
	}
	var starting []*ttClient
	for _, c := range t.clients {
		if len(c.phases) > 0 {
			starting = append(starting, c)
		}
	}
	if len(starting) == 0 {
		return
	}
	t.slotActive = len(starting)
	for _, c := range starting {
		p := c.phases[0]
		c.phases = c.phases[:copy(c.phases, c.phases[1:])]
		c.runPhase(p)
	}
}

func (c *ttClient) runPhase(p phase) {
	t := c.backend
	finish := func(at sim.Time) {
		if p.cb != nil {
			p.cb(at)
		}
		t.slotActive--
		// Let same-timestamp sealing land before the next slot forms.
		t.eng.At(t.eng.Now(), t.scheduleFn)
	}
	if p.skip {
		finish(t.eng.Now())
		return
	}
	c.submitPhase(p, 0, finish)
}

// submitPhase submits p.ops[i:] in order, then arms the phase barrier. A
// transient device failure pauses at the failed op and retries shortly,
// preserving the phase's submission order; the barrier fires only once
// every op reached the device and drained, so a slot never leaks.
func (c *ttClient) submitPhase(p phase, i int, finish func(sim.Time)) {
	t := c.backend
	for ; i < len(p.ops); i++ {
		b := p.ops[i]
		if err := sched.SubmitTo(t.ctx, c.stream, b.op, b.done); err != nil {
			if cudart.IsTransient(err) {
				next := i
				t.eng.After(transientRetryInterval, func() { c.submitPhase(p, next, finish) })
				return
			}
			panic(fmt.Sprintf("ticktock: submit: %v", err))
		}
	}
	if err := t.ctx.StreamSynchronize(c.stream, finish); err != nil {
		panic(fmt.Sprintf("ticktock: sync: %v", err))
	}
}

// Deregister implements sched.Backend: the dead client's buffered and
// queued phases are dropped (their completion callbacks never fire), a
// phase it has mid-slot drains and releases the barrier normally, and the
// surviving job stops waiting at phase boundaries for a corpse.
func (t *TickTock) Deregister(c sched.Client) error {
	tc, ok := c.(*ttClient)
	if !ok || tc.backend != t {
		return fmt.Errorf("ticktock: deregister of foreign client")
	}
	if tc.gone {
		return nil
	}
	tc.gone = true
	tc.buffering = nil
	tc.phases = nil
	for i, have := range t.clients {
		if have == tc {
			t.clients = append(t.clients[:i], t.clients[i+1:]...)
			break
		}
	}
	// The survivor may have phases queued that were waiting on the dead
	// client's next phase to form a slot.
	t.schedule()
	return nil
}
