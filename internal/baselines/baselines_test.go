package baselines

import (
	"testing"

	"orion/internal/cudart"
	"orion/internal/gpu"
	"orion/internal/profiler"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/trace"
	"orion/internal/workload"
)

func newRig(t *testing.T) (*sim.Engine, *cudart.Context) {
	t.Helper()
	eng := sim.NewEngine()
	eng.MaxEvents = 500_000_000
	dev, err := gpu.NewDevice(eng, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	return eng, cudart.NewContext(dev)
}

func profilesFor(t *testing.T, models ...*workload.Model) map[string]*profiler.Profile {
	t.Helper()
	out := map[string]*profiler.Profile{}
	for _, m := range models {
		p, err := profiler.Collect(m, gpu.V100())
		if err != nil {
			t.Fatal(err)
		}
		out[m.ID()] = p
	}
	return out
}

// runPair drives an HP inference job (Poisson) and a BE training job
// (closed loop) through a backend and returns their stats.
func runPair(t *testing.T, eng *sim.Engine, backend sched.Backend,
	hpModel, beModel *workload.Model, rps float64, horizon sim.Duration) (hp, be *sched.Driver) {
	t.Helper()
	hpc, err := backend.Register(sched.ClientConfig{Name: "hp", Priority: sched.HighPriority, Model: hpModel})
	if err != nil {
		t.Fatal(err)
	}
	bec, err := backend.Register(sched.ClientConfig{Name: "be", Priority: sched.BestEffort, Model: beModel})
	if err != nil {
		t.Fatal(err)
	}
	backend.Start()
	arr, _ := trace.NewPoisson(rps, sim.NewRand(42))
	hp, err = sched.NewDriver(sched.DriverConfig{
		Engine: eng, Client: hpc, Model: hpModel, Arrivals: arr,
		Horizon: sim.Time(horizon), Warmup: horizon / 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	be, err = sched.NewDriver(sched.DriverConfig{
		Engine: eng, Client: bec, Model: beModel,
		Horizon: sim.Time(horizon), Warmup: horizon / 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	hp.Start()
	be.Start()
	eng.Run()
	return hp, be
}

func TestTemporalHeadOfLineBlocking(t *testing.T) {
	eng, ctx := newRig(t)
	backend := NewTemporal(eng, ctx)
	hp, be := runPair(t, eng, backend,
		workload.ResNet50Inference(), workload.ResNet50Training(), 15, sim.Seconds(5))
	// An inference request arriving mid training iteration waits up to a
	// full ~100ms iteration: p99 far above the ~8ms dedicated latency.
	if p99 := hp.Stats().Latency.P99(); p99 < sim.Millis(40) {
		t.Errorf("temporal p99 = %.1fms, expected head-of-line blocking >> 8ms", p99.Millis())
	}
	if be.Stats().Completed == 0 {
		t.Error("best-effort training made no progress under temporal sharing")
	}
}

func TestTemporalPrioritizesHP(t *testing.T) {
	eng, ctx := newRig(t)
	backend := NewTemporal(eng, ctx)
	hp, _ := runPair(t, eng, backend,
		workload.MobileNetV2Inference(), workload.MobileNetV2Training(), 40, sim.Seconds(4))
	// Despite blocking, the high-priority job is served ahead of queued
	// best-effort iterations: its median must stay below one iteration.
	if p50 := hp.Stats().Latency.P50(); p50 > sim.Millis(90) {
		t.Errorf("temporal p50 = %.1fms, HP not being prioritized", p50.Millis())
	}
}

func TestStreamsCollocationRuns(t *testing.T) {
	eng, ctx := newRig(t)
	backend := NewStreams(ctx)
	hp, be := runPair(t, eng, backend,
		workload.ResNet50Inference(), workload.ResNet50Training(), 15, sim.Seconds(5))
	if hp.Stats().Completed == 0 || be.Stats().Completed == 0 {
		t.Fatal("jobs made no progress under Streams")
	}
	// Spatial sharing: no request-granularity blocking, so p50 far below
	// a training iteration; but interference-oblivious, so the tail is
	// well above dedicated (~8ms).
	if p50 := hp.Stats().Latency.P50(); p50 > sim.Millis(60) {
		t.Errorf("streams p50 = %.1fms, spatial sharing should avoid iteration-length waits", p50.Millis())
	}
}

func TestStreamsGILOverheadGrows(t *testing.T) {
	_, ctx := newRig(t)
	backend := NewStreams(ctx)
	a, _ := backend.Register(sched.ClientConfig{Name: "a", Model: workload.ResNet50Inference()})
	if a.LaunchOverhead() != 0 {
		t.Errorf("single client GIL overhead = %v, want 0", a.LaunchOverhead())
	}
	backend.Register(sched.ClientConfig{Name: "b", Model: workload.ResNet50Training()})
	backend.Register(sched.ClientConfig{Name: "c", Model: workload.MobileNetV2Inference()})
	if a.LaunchOverhead() != 2*GILOverheadPerPeer {
		t.Errorf("3-client GIL overhead = %v, want %v", a.LaunchOverhead(), 2*GILOverheadPerPeer)
	}
}

func TestMPSNoStreamPriorities(t *testing.T) {
	_, ctx := newRig(t)
	backend := NewMPS(ctx)
	hp, _ := backend.Register(sched.ClientConfig{Name: "hp", Priority: sched.HighPriority, Model: workload.ResNet50Inference()})
	if hp.(*passClient).stream.Priority() != 0 {
		t.Error("MPS honoured stream priority; it must not")
	}
	if hp.LaunchOverhead() != MPSOverhead {
		t.Errorf("MPS overhead = %v, want %v", hp.LaunchOverhead(), MPSOverhead)
	}
}

func TestMPSCollocationRuns(t *testing.T) {
	eng, ctx := newRig(t)
	backend := NewMPS(ctx)
	hp, be := runPair(t, eng, backend,
		workload.ResNet50Inference(), workload.ResNet50Training(), 15, sim.Seconds(5))
	if hp.Stats().Completed == 0 || be.Stats().Completed == 0 {
		t.Fatal("jobs made no progress under MPS")
	}
}

func TestReefProtectsHPButStarvesBE(t *testing.T) {
	eng, ctx := newRig(t)
	hpM, beM := workload.ResNet50Training(), workload.MobileNetV2Training()
	backend := NewReef(eng, ctx, profilesFor(t, hpM, beM))
	hpc, _ := backend.Register(sched.ClientConfig{Name: "hp", Priority: sched.HighPriority, Model: hpM})
	bec, _ := backend.Register(sched.ClientConfig{Name: "be", Priority: sched.BestEffort, Model: beM})
	backend.Start()
	horizon := sim.Time(sim.Seconds(6))
	hp, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: hpc, Model: hpM, Horizon: horizon, Warmup: sim.Seconds(1)})
	be, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: bec, Model: beM, Horizon: horizon, Warmup: sim.Seconds(1)})
	hp.Start()
	be.Start()
	eng.Run()
	// Paper §6.2.2: REEF keeps HP training within ~8% of dedicated
	// (10.3 it/s) but barely executes the best-effort trainer, whose
	// kernels are too large to fit beside the HP kernels.
	hpThr := hp.Stats().Throughput()
	beThr := be.Stats().Throughput()
	if hpThr < 8.5 {
		t.Errorf("REEF HP training = %.2f it/s, want near dedicated 10.3", hpThr)
	}
	if beThr > 0.35*12.5 {
		t.Errorf("REEF BE training = %.2f it/s, expected heavy starvation (paper: few iterations)", beThr)
	}
}

func TestReefQueueDepthBoundsOutstanding(t *testing.T) {
	eng, ctx := newRig(t)
	beM := workload.MobileNetV2Inference()
	backend := NewReef(eng, ctx, profilesFor(t, beM))
	backend.QueueDepth = 3
	bec, _ := backend.Register(sched.ClientConfig{Name: "be", Priority: sched.BestEffort, Model: beM})
	backend.Start()
	for i := range beM.Ops {
		bec.Submit(&beM.Ops[i], nil)
	}
	maxOut := 0
	for i := 1; i < 1000; i++ {
		eng.At(sim.Time(sim.Micros(float64(i)*10)), func() {
			if backend.beOutstanding > maxOut {
				maxOut = backend.beOutstanding
			}
		})
	}
	eng.Run()
	if maxOut > 3 {
		t.Errorf("outstanding best-effort kernels reached %d, queue depth 3", maxOut)
	}
	if maxOut == 0 {
		t.Error("no best-effort kernels ran")
	}
}

func TestReefRequiresProfile(t *testing.T) {
	eng, ctx := newRig(t)
	backend := NewReef(eng, ctx, nil)
	if _, err := backend.Register(sched.ClientConfig{Name: "x", Model: workload.ResNet50Inference()}); err == nil {
		t.Fatal("client without profile accepted")
	}
}

func TestReefSingleHP(t *testing.T) {
	eng, ctx := newRig(t)
	a, b := workload.ResNet50Inference(), workload.MobileNetV2Inference()
	backend := NewReef(eng, ctx, profilesFor(t, a, b))
	if _, err := backend.Register(sched.ClientConfig{Name: "a", Priority: sched.HighPriority, Model: a}); err != nil {
		t.Fatal(err)
	}
	if _, err := backend.Register(sched.ClientConfig{Name: "b", Priority: sched.HighPriority, Model: b}); err == nil {
		t.Fatal("second HP client accepted")
	}
}

func TestTickTockTrainingOnly(t *testing.T) {
	eng, ctx := newRig(t)
	backend := NewTickTock(eng, ctx)
	if _, err := backend.Register(sched.ClientConfig{Name: "inf", Model: workload.ResNet50Inference()}); err == nil {
		t.Fatal("inference job accepted by Tick-Tock")
	}
	if _, err := backend.Register(sched.ClientConfig{Name: "t1", Model: workload.ResNet50Training()}); err != nil {
		t.Fatal(err)
	}
	if _, err := backend.Register(sched.ClientConfig{Name: "t2", Model: workload.MobileNetV2Training()}); err != nil {
		t.Fatal(err)
	}
	if _, err := backend.Register(sched.ClientConfig{Name: "t3", Model: workload.BERTTraining()}); err == nil {
		t.Fatal("third trainer accepted")
	}
}

func TestTickTockBothTrainersProgressWithBarrier(t *testing.T) {
	eng, ctx := newRig(t)
	backend := NewTickTock(eng, ctx)
	aM, bM := workload.ResNet50Training(), workload.MobileNetV2Training()
	ac, _ := backend.Register(sched.ClientConfig{Name: "a", Priority: sched.HighPriority, Model: aM})
	bc, _ := backend.Register(sched.ClientConfig{Name: "b", Priority: sched.BestEffort, Model: bM})
	backend.Start()
	horizon := sim.Time(sim.Seconds(6))
	ad, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: ac, Model: aM, Horizon: horizon, Warmup: sim.Seconds(1)})
	bd, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: bc, Model: bM, Horizon: horizon, Warmup: sim.Seconds(1)})
	ad.Start()
	bd.Start()
	eng.Run()
	aThr, bThr := ad.Stats().Throughput(), bd.Stats().Throughput()
	if aThr == 0 || bThr == 0 {
		t.Fatalf("trainer starved: %.2f / %.2f it/s", aThr, bThr)
	}
	// Barrier coupling: the faster job (MobileNet, 12.5 it/s dedicated)
	// is dragged down toward the slower one's pace (ResNet50, 10.3).
	if bThr > 0.85*12.5 {
		t.Errorf("Tick-Tock fast job at %.2f it/s, barriers should drag it below dedicated", bThr)
	}
	// The two jobs complete iterations in near lock-step.
	if diff := aThr - bThr; diff > 3 || diff < -3 {
		t.Errorf("Tick-Tock jobs diverge: %.2f vs %.2f it/s", aThr, bThr)
	}
	// High-priority training throughput suffers vs dedicated (paper:
	// 1.93x reduction).
	if aThr > 0.8*10.3 {
		t.Errorf("Tick-Tock HP at %.2f it/s, expected well below dedicated 10.3", aThr)
	}
}

func TestBackendNames(t *testing.T) {
	eng, ctx := newRig(t)
	names := map[string]sched.Backend{
		"temporal": NewTemporal(eng, ctx),
		"streams":  NewStreams(ctx),
		"mps":      NewMPS(ctx),
		"reef":     NewReef(eng, ctx, nil),
		"ticktock": NewTickTock(eng, ctx),
	}
	for want, b := range names {
		if b.Name() != want {
			t.Errorf("Name() = %q, want %q", b.Name(), want)
		}
	}
}

func TestTemporalEmptyRequest(t *testing.T) {
	eng, ctx := newRig(t)
	backend := NewTemporal(eng, ctx)
	c, _ := backend.Register(sched.ClientConfig{Name: "x", Model: workload.ResNet50Inference()})
	backend.Start()
	fired := false
	c.BeginRequest()
	c.EndRequest(func(sim.Time) { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("empty request never completed")
	}
}

func TestTickTockEmptyRequest(t *testing.T) {
	eng, ctx := newRig(t)
	backend := NewTickTock(eng, ctx)
	c, _ := backend.Register(sched.ClientConfig{Name: "x", Model: workload.ResNet50Training()})
	backend.Start()
	fired := false
	c.BeginRequest()
	c.EndRequest(func(sim.Time) { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("empty request never completed")
	}
}
