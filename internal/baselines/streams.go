// Package baselines implements the GPU-sharing techniques the paper
// compares Orion against (§6.1): temporal sharing, GPU Streams, NVIDIA
// MPS, REEF-N, and Tick-Tock. The Ideal baseline (dedicated GPUs) is the
// sched.Direct backend on per-job devices, assembled by the harness.
package baselines

import (
	"fmt"

	"orion/internal/cudart"
	"orion/internal/kernels"
	"orion/internal/sched"
	"orion/internal/sim"
)

// GILOverheadPerPeer is the extra client-side CPU cost each additional
// collocated client adds to every operation under the GPU Streams
// baseline: the clients run as threads of one Python process and contend
// for the global interpreter lock (§6.2.1).
const GILOverheadPerPeer = 1500 * sim.Nanosecond

// MPSOverhead is the per-operation cost of the MPS server hop. MPS
// clients run as separate processes, so there is no GIL contention, but
// stream priorities are unavailable in MPS mode (§6.4).
const MPSOverhead = 400 * sim.Nanosecond

// transientRetryInterval is how long a queue-based baseline waits before
// re-attempting a submission that failed with a transient device error
// (an injected launch or allocation fault) — the same order as a
// scheduler poll interval.
const transientRetryInterval = 20 * sim.Microsecond

// Streams is the GPU Streams baseline: every client submits directly to
// its own CUDA stream from a thread of a shared process. The high-priority
// client gets a high-priority stream; all clients pay GIL contention that
// grows with the number of collocated threads.
type Streams struct {
	ctx *cudart.Context
	// UsePriorities assigns the high-priority client a high-priority
	// stream (the paper's Streams baseline does; the Figure 14 "GPU
	// Streams" ablation point does not).
	UsePriorities bool
	clients       []*passClient
}

// NewStreams creates the GPU Streams baseline backend.
func NewStreams(ctx *cudart.Context) *Streams {
	return &Streams{ctx: ctx, UsePriorities: true}
}

// Name implements sched.Backend.
func (s *Streams) Name() string { return "streams" }

// Start implements sched.Backend.
func (s *Streams) Start() {}

// Register implements sched.Backend.
func (s *Streams) Register(cfg sched.ClientConfig) (sched.Client, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("streams: client %q has no model", cfg.Name)
	}
	prio := 0
	if s.UsePriorities && cfg.Priority == sched.HighPriority {
		prio = 1
	}
	c := &passClient{
		ctx:    s.ctx,
		owner:  s,
		stream: s.ctx.StreamCreateWithPriority(prio),
		overhead: func() sim.Duration {
			// GIL contention scales with the number of peer threads.
			return GILOverheadPerPeer * sim.Duration(len(s.clients)-1)
		},
	}
	s.clients = append(s.clients, c)
	return c, nil
}

// Deregister implements sched.Backend: the dead thread stops contending
// for the GIL, so the surviving clients' per-op overhead drops.
func (s *Streams) Deregister(c sched.Client) error {
	pc, ok := c.(*passClient)
	if !ok || pc.owner != s {
		return fmt.Errorf("streams: deregister of foreign client")
	}
	if pc.gone {
		return nil
	}
	pc.gone = true
	s.clients = removePass(s.clients, pc)
	return nil
}

// MPS is the NVIDIA Multi-Process Service baseline: clients run as
// separate processes spatially sharing the GPU with no interference
// control and no stream priorities.
type MPS struct {
	ctx     *cudart.Context
	clients []*passClient
}

// NewMPS creates the MPS baseline backend.
func NewMPS(ctx *cudart.Context) *MPS {
	return &MPS{ctx: ctx}
}

// Name implements sched.Backend.
func (m *MPS) Name() string { return "mps" }

// Start implements sched.Backend.
func (m *MPS) Start() {}

// Register implements sched.Backend.
func (m *MPS) Register(cfg sched.ClientConfig) (sched.Client, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("mps: client %q has no model", cfg.Name)
	}
	c := &passClient{
		ctx:   m.ctx,
		owner: m,
		// Stream priorities are not honoured under MPS.
		stream:   m.ctx.StreamCreateWithPriority(0),
		overhead: func() sim.Duration { return MPSOverhead },
	}
	m.clients = append(m.clients, c)
	return c, nil
}

// Deregister implements sched.Backend: the dead process detaches from the
// MPS server; its in-flight stream work drains on the device.
func (m *MPS) Deregister(c sched.Client) error {
	pc, ok := c.(*passClient)
	if !ok || pc.owner != m {
		return fmt.Errorf("mps: deregister of foreign client")
	}
	if pc.gone {
		return nil
	}
	pc.gone = true
	m.clients = removePass(m.clients, pc)
	return nil
}

func removePass(clients []*passClient, pc *passClient) []*passClient {
	for i, have := range clients {
		if have == pc {
			return append(clients[:i], clients[i+1:]...)
		}
	}
	return clients
}

// passClient is the shared pass-through client used by Streams and MPS.
type passClient struct {
	ctx      *cudart.Context
	owner    sched.Backend
	stream   *cudart.Stream
	overhead func() sim.Duration
	gone     bool
}

func (c *passClient) BeginRequest() {}

func (c *passClient) LaunchOverhead() sim.Duration { return c.overhead() }

func (c *passClient) Submit(op *kernels.Descriptor, done func(sim.Time)) error {
	if c.gone {
		return fmt.Errorf("baselines: submit on deregistered client")
	}
	// Pass-through backends surface errors — including transient injected
	// faults — synchronously to the submitting client; the driver's
	// retry-with-backoff handles them.
	return sched.SubmitTo(c.ctx, c.stream, op, done)
}

func (c *passClient) EndRequest(cb func(sim.Time)) error {
	return c.ctx.StreamSynchronize(c.stream, cb)
}
