// Package trace provides the request arrival processes used in the paper's
// evaluation (§6.1): uniform and Poisson inter-arrival distributions at the
// Azure-Functions-derived rates of Table 3, a synthetic bursty trace
// standing in for the Apollo autonomous-driving inference trace from the
// DISB benchmark, and replayable recorded traces.
//
// Training jobs submit requests in a closed loop; that behaviour lives in
// the client driver, not here.
package trace

import (
	"fmt"

	"orion/internal/sim"
)

// Process produces successive inter-arrival gaps. Next reports ok=false
// when a finite trace is exhausted.
type Process interface {
	Next() (gap sim.Duration, ok bool)
}

// poisson draws exponential inter-arrival times.
type poisson struct {
	mean sim.Duration
	r    *sim.Rand
}

// NewPoisson returns a Poisson arrival process at the given requests per
// second, representative of event-driven real-time DNN applications.
func NewPoisson(rps float64, r *sim.Rand) (Process, error) {
	if rps <= 0 {
		return nil, fmt.Errorf("trace: non-positive rate %v", rps)
	}
	if r == nil {
		return nil, fmt.Errorf("trace: nil rand")
	}
	return &poisson{mean: sim.Seconds(1 / rps), r: r}, nil
}

func (p *poisson) Next() (sim.Duration, bool) {
	return p.r.ExpDuration(p.mean), true
}

// uniform produces fixed-rate arrivals with a small jitter, representative
// of sensor-driven applications (cameras in autonomous driving).
type uniform struct {
	period sim.Duration
	jitter sim.Duration
	r      *sim.Rand
}

// NewUniform returns a uniform arrival process at the given requests per
// second. Inter-arrival times are uniform in [0.9, 1.1] periods.
func NewUniform(rps float64, r *sim.Rand) (Process, error) {
	if rps <= 0 {
		return nil, fmt.Errorf("trace: non-positive rate %v", rps)
	}
	if r == nil {
		return nil, fmt.Errorf("trace: nil rand")
	}
	period := sim.Seconds(1 / rps)
	return &uniform{period: period, jitter: period / 10, r: r}, nil
}

func (u *uniform) Next() (sim.Duration, bool) {
	return u.r.UniformDuration(u.period-u.jitter, u.period+u.jitter), true
}

// apollo is a synthetic stand-in for the DISB Apollo object-detection
// trace: alternating burst episodes (obstacle-dense scenes, ~2.5x the base
// rate) and calm episodes (~0.4x), with uniform arrivals within each
// episode. The long-run mean rate approximates the base rate.
type apollo struct {
	base      sim.Duration // base period
	r         *sim.Rand
	inBurst   bool
	phaseLeft sim.Duration
}

// NewApollo returns the synthetic Apollo-like bursty process with the
// given long-run mean requests per second.
func NewApollo(meanRPS float64, r *sim.Rand) (Process, error) {
	if meanRPS <= 0 {
		return nil, fmt.Errorf("trace: non-positive rate %v", meanRPS)
	}
	if r == nil {
		return nil, fmt.Errorf("trace: nil rand")
	}
	return &apollo{base: sim.Seconds(1 / meanRPS), r: r}, nil
}

const (
	apolloBurstFactor = 2.5
	apolloCalmFactor  = 0.4
)

func (a *apollo) Next() (sim.Duration, bool) {
	if a.phaseLeft <= 0 {
		a.inBurst = !a.inBurst
		if a.inBurst {
			a.phaseLeft = a.r.UniformDuration(sim.Millis(400), sim.Millis(1200))
		} else {
			a.phaseLeft = a.r.UniformDuration(sim.Millis(700), sim.Millis(2100))
		}
	}
	period := a.base
	if a.inBurst {
		period = sim.Duration(float64(a.base) / apolloBurstFactor)
	} else {
		period = sim.Duration(float64(a.base) / apolloCalmFactor)
	}
	gap := a.r.UniformDuration(period*9/10, period*11/10)
	a.phaseLeft -= gap
	return gap, true
}

// replay replays a recorded gap sequence once.
type replay struct {
	gaps []sim.Duration
	i    int
}

// NewReplay returns a process that replays the given inter-arrival gaps
// and then reports exhaustion.
func NewReplay(gaps []sim.Duration) Process {
	cp := make([]sim.Duration, len(gaps))
	copy(cp, gaps)
	return &replay{gaps: cp}
}

func (t *replay) Next() (sim.Duration, bool) {
	if t.i >= len(t.gaps) {
		return 0, false
	}
	g := t.gaps[t.i]
	t.i++
	return g, true
}

// Record materializes the first n gaps of a process, e.g. to replay the
// same Apollo trace across baselines.
func Record(p Process, n int) []sim.Duration {
	out := make([]sim.Duration, 0, n)
	for i := 0; i < n; i++ {
		g, ok := p.Next()
		if !ok {
			break
		}
		out = append(out, g)
	}
	return out
}

// Scenario selects a column of the paper's Table 3 rate table.
type Scenario int

const (
	// InfInfUniform is the inf-inf best-effort uniform arrival column.
	InfInfUniform Scenario = iota
	// InfInfPoisson is the inf-inf Poisson arrival column.
	InfInfPoisson
	// InfTrainPoisson is the inf-train Poisson arrival column.
	InfTrainPoisson
)

// table3 holds requests-per-second by model name, matching the paper's
// Table 3 (rates derived from the Azure Functions trace's top-20
// functions).
var table3 = map[string][3]float64{
	"resnet50":    {80, 50, 15},
	"mobilenetv2": {100, 65, 40},
	"resnet101":   {40, 25, 9},
	"bert":        {8, 5, 4},
	"transformer": {20, 12, 8},
}

// RPS returns the Table 3 request rate for a model under a scenario.
func RPS(model string, s Scenario) (float64, error) {
	row, ok := table3[model]
	if !ok {
		return 0, fmt.Errorf("trace: no Table 3 row for model %q", model)
	}
	if s < InfInfUniform || s > InfTrainPoisson {
		return 0, fmt.Errorf("trace: unknown scenario %d", int(s))
	}
	return row[s], nil
}
