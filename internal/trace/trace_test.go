package trace

import (
	"math"
	"testing"

	"orion/internal/sim"
)

func meanRate(t *testing.T, p Process, n int) float64 {
	t.Helper()
	var total sim.Duration
	for i := 0; i < n; i++ {
		g, ok := p.Next()
		if !ok {
			t.Fatalf("process exhausted at %d", i)
		}
		total += g
	}
	return float64(n) / total.Seconds()
}

func TestPoissonMeanRate(t *testing.T) {
	p, err := NewPoisson(50, sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	rate := meanRate(t, p, 20000)
	if math.Abs(rate-50) > 2.5 {
		t.Fatalf("Poisson empirical rate %.1f, want ~50", rate)
	}
}

func TestPoissonVariability(t *testing.T) {
	p, _ := NewPoisson(100, sim.NewRand(2))
	var gaps []sim.Duration
	for i := 0; i < 5000; i++ {
		g, _ := p.Next()
		gaps = append(gaps, g)
	}
	// Exponential: stddev ~= mean.
	var sum, sum2 float64
	for _, g := range gaps {
		sum += float64(g)
		sum2 += float64(g) * float64(g)
	}
	mean := sum / float64(len(gaps))
	std := math.Sqrt(sum2/float64(len(gaps)) - mean*mean)
	if std < 0.8*mean || std > 1.2*mean {
		t.Fatalf("Poisson cv = %.2f, want ~1", std/mean)
	}
}

func TestUniformMeanRateAndBounds(t *testing.T) {
	p, err := NewUniform(80, sim.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	period := sim.Seconds(1.0 / 80)
	for i := 0; i < 2000; i++ {
		g, _ := p.Next()
		if g < period*9/10 || g > period*11/10 {
			t.Fatalf("uniform gap %v outside +-10%% of period %v", g, period)
		}
	}
}

func TestApolloMeanRateAndBurstiness(t *testing.T) {
	p, err := NewApollo(30, sim.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	rate := meanRate(t, p, 30000)
	// Long-run mean should be in the vicinity of the base (burst/calm
	// averaging is approximate by design).
	if rate < 15 || rate > 60 {
		t.Fatalf("Apollo empirical rate %.1f, want near 30", rate)
	}
	// Burstiness: the gap distribution must be strongly bimodal — the
	// widest gaps at least 3x the narrowest.
	p2, _ := NewApollo(30, sim.NewRand(4))
	var lo, hi sim.Duration = 1 << 62, 0
	for i := 0; i < 5000; i++ {
		g, _ := p2.Next()
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	if float64(hi)/float64(lo) < 3 {
		t.Fatalf("Apollo gaps not bursty: min %v max %v", lo, hi)
	}
}

func TestApolloAlternatesPhases(t *testing.T) {
	p, _ := NewApollo(30, sim.NewRand(5))
	a := p.(*apollo)
	sawBurst, sawCalm := false, false
	for i := 0; i < 2000; i++ {
		p.Next()
		if a.inBurst {
			sawBurst = true
		} else {
			sawCalm = true
		}
	}
	if !sawBurst || !sawCalm {
		t.Fatalf("phases not alternating: burst=%v calm=%v", sawBurst, sawCalm)
	}
}

func TestReplayExhausts(t *testing.T) {
	gaps := []sim.Duration{10, 20, 30}
	p := NewReplay(gaps)
	for i, want := range gaps {
		g, ok := p.Next()
		if !ok || g != want {
			t.Fatalf("replay[%d] = %v,%v want %v,true", i, g, ok, want)
		}
	}
	if _, ok := p.Next(); ok {
		t.Fatal("exhausted replay still producing")
	}
}

func TestReplayCopiesInput(t *testing.T) {
	gaps := []sim.Duration{10, 20}
	p := NewReplay(gaps)
	gaps[0] = 999
	g, _ := p.Next()
	if g != 10 {
		t.Fatal("replay aliases caller slice")
	}
}

func TestRecordAndReplayIdentical(t *testing.T) {
	p, _ := NewApollo(30, sim.NewRand(6))
	rec := Record(p, 500)
	if len(rec) != 500 {
		t.Fatalf("recorded %d gaps", len(rec))
	}
	q, _ := NewApollo(30, sim.NewRand(6))
	rep := NewReplay(Record(q, 500))
	p2, _ := NewApollo(30, sim.NewRand(6))
	for i := 0; i < 500; i++ {
		a, _ := rep.Next()
		b, _ := p2.Next()
		if a != b {
			t.Fatalf("replay diverges at %d", i)
		}
	}
}

func TestRecordStopsAtExhaustion(t *testing.T) {
	p := NewReplay([]sim.Duration{1, 2})
	rec := Record(p, 10)
	if len(rec) != 2 {
		t.Fatalf("Record returned %d gaps, want 2", len(rec))
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewPoisson(0, sim.NewRand(1)); err == nil {
		t.Error("zero-rate Poisson accepted")
	}
	if _, err := NewPoisson(10, nil); err == nil {
		t.Error("nil rand accepted")
	}
	if _, err := NewUniform(-5, sim.NewRand(1)); err == nil {
		t.Error("negative-rate uniform accepted")
	}
	if _, err := NewUniform(5, nil); err == nil {
		t.Error("nil rand accepted")
	}
	if _, err := NewApollo(0, sim.NewRand(1)); err == nil {
		t.Error("zero-rate Apollo accepted")
	}
	if _, err := NewApollo(5, nil); err == nil {
		t.Error("nil rand accepted")
	}
}

func TestTable3Rates(t *testing.T) {
	cases := []struct {
		model string
		s     Scenario
		want  float64
	}{
		{"resnet50", InfInfUniform, 80},
		{"resnet50", InfInfPoisson, 50},
		{"resnet50", InfTrainPoisson, 15},
		{"mobilenetv2", InfInfUniform, 100},
		{"mobilenetv2", InfTrainPoisson, 40},
		{"resnet101", InfInfPoisson, 25},
		{"bert", InfInfUniform, 8},
		{"bert", InfTrainPoisson, 4},
		{"transformer", InfInfPoisson, 12},
		{"transformer", InfTrainPoisson, 8},
	}
	for _, c := range cases {
		got, err := RPS(c.model, c.s)
		if err != nil {
			t.Errorf("%s/%d: %v", c.model, c.s, err)
			continue
		}
		if got != c.want {
			t.Errorf("RPS(%s,%d) = %v, want %v (Table 3)", c.model, c.s, got, c.want)
		}
	}
	if _, err := RPS("nope", InfInfUniform); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := RPS("resnet50", Scenario(9)); err == nil {
		t.Error("unknown scenario accepted")
	}
}
