package trace

import "orion/internal/checkpoint"

// The arrival processes implement checkpoint.Snapshotter so a driver's
// checkpoint pins the exact position of its arrival stream. math/rand
// exposes no internal state, but each process owns its *sim.Rand, whose
// stream is a pure function of (seed, draw count) — the draw counter plus
// any episode bookkeeping is therefore a complete state fingerprint.

// SnapshotTo implements checkpoint.Snapshotter.
func (p *poisson) SnapshotTo(e *checkpoint.Encoder) {
	e.I64(int64(p.mean))
	e.U64(p.r.Draws())
}

// SnapshotTo implements checkpoint.Snapshotter.
func (u *uniform) SnapshotTo(e *checkpoint.Encoder) {
	e.I64(int64(u.period))
	e.I64(int64(u.jitter))
	e.U64(u.r.Draws())
}

// SnapshotTo implements checkpoint.Snapshotter.
func (a *apollo) SnapshotTo(e *checkpoint.Encoder) {
	e.I64(int64(a.base))
	e.U64(a.r.Draws())
	e.Bool(a.inBurst)
	e.I64(int64(a.phaseLeft))
}

// SnapshotTo implements checkpoint.Snapshotter.
func (t *replay) SnapshotTo(e *checkpoint.Encoder) {
	e.Int(len(t.gaps))
	e.Int(t.i)
}
