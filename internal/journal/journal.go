// Package journal is orion-serve's durability layer: an append-only,
// fsync-batched, checksummed write-ahead journal of job lifecycle
// records. The control plane appends a record before acknowledging a
// submission and after every state transition; on restart it replays the
// journal to rebuild the job table, so a daemon crash (power cut,
// SIGKILL, OOM kill) loses no acknowledged work. Because the simulation
// harness is bit-deterministic for equal seeds, re-executing a job that
// was mid-flight at crash time reproduces the exact answer the
// uninterrupted run would have given — replay is exact recovery, not
// best-effort.
//
// On-disk format: a journal directory holds numbered segment files
// ("seg-00000042.wal"). Each record is one line,
//
//	<len:8 hex> <crc32:8 hex> <payload JSON>\n
//
// where the CRC (IEEE) covers the payload bytes. Appends go to the
// highest-numbered segment and rotate to a fresh one past a size
// threshold. Replay walks segments in order and stops at the first
// frame that is torn (short) or corrupt (CRC or JSON mismatch): the bad
// tail is truncated and any later segments are discarded, never treated
// as fatal. Compaction rewrites the live job images into a fresh
// segment and deletes the older ones; replay is idempotent, so a crash
// mid-compaction at worst replays a record twice.
//
// Storage faults: all I/O goes through an errfs.FS (Options.FS), and the
// journal assumes real-disk failure semantics. A failed fsync may have
// dropped the dirty pages, so it is NEVER retried on the same descriptor
// — the segment fd is poisoned: truncated back to its last-synced size,
// closed, and every append waiting on that sync fails. The next Append
// rotates to a fresh segment. A failed write truncates the torn frame
// back out so the segment stays parseable. Append's error contract is
// the standard WAL one: nil means durable; an error means the record
// must be treated as not written (it is at most a truncated tail that
// replay discards).
package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"orion/internal/errfs"
)

// Op tags a record's kind.
type Op string

const (
	// OpSubmit records an accepted submission: the full wire config, the
	// client's idempotency key, and the submission time. Written (and
	// fsynced) before the server acknowledges with 202.
	OpSubmit Op = "submit"
	// OpState records a state transition; terminal transitions carry the
	// error or the result summary.
	OpState Op = "state"
	// OpNoop is a durability probe: a record with no job ID that Reduce
	// ignores. The server appends one to test whether the journal can
	// accept writes again after a full-disk episode.
	OpNoop Op = "noop"
	// OpFleetSubmit records an accepted fleet job: the job spec (Config)
	// and, when the job was placed synchronously, its binding
	// (Placement). Written (and fsynced) before the server acknowledges
	// the submission.
	OpFleetSubmit Op = "fleet-submit"
	// OpFleetState records a fleet job transition: placed (with
	// Placement), evaluated (with Summary), evicted, failed, or back to
	// pending (with the pending-queue position and retry bookkeeping).
	OpFleetState Op = "fleet-state"
	// OpFleetHealth records one device health transition (State is the
	// health state, "cordon"/"uncordon", or "chaos-start"; Device the
	// index; Tick the failure clock; Domains the failure domains a Down
	// tainted). A record with no ID carries a compacted health snapshot
	// in Config instead (see FleetHealthSnapshotRecord).
	OpFleetHealth Op = "fleet-health"
	// OpFleetDisplace records a job displaced from a Down or draining
	// device back to the pending queue: Device is where it was bound,
	// Tick when the displacement happened, PendSeq its queue position.
	OpFleetDisplace Op = "fleet-displace"
	// OpFleetDegrade records a gray-failure transition: the device
	// entered (or changed depth within) the Degraded state with the
	// absolute capacity factors in Haircut/MemFactor. Displacement of
	// overflow residents follows as OpFleetDisplace records.
	OpFleetDegrade Op = "fleet-degrade"
)

// FleetSchemaVersion is the fleet-stream schema this build writes.
// Records stamped with a higher version (a newer build's journal) are
// rejected with a SchemaError at reduce time rather than silently
// misread. Version 2 introduced OpFleetDegrade and the gray-failure
// fields; version-0 (unstamped) records are the pre-gray stream and
// always accepted.
const FleetSchemaVersion = 2

// SchemaError reports a fleet record written by a newer schema version
// than this build understands.
type SchemaError struct {
	Op     Op
	Schema int
}

func (e *SchemaError) Error() string {
	return fmt.Sprintf("journal: fleet record %q has schema version %d, newer than supported %d — refusing to recover from a newer build's journal",
		e.Op, e.Schema, FleetSchemaVersion)
}

// fleetOp reports whether the record belongs to the fleet streams,
// which reduce separately from experiment jobs (see ReduceFleet and
// ReduceFleetHealth).
func fleetOp(op Op) bool {
	return op == OpFleetSubmit || op == OpFleetState || op == OpFleetHealth || op == OpFleetDisplace || op == OpFleetDegrade
}

// checkFleetSchema returns the typed error for a fleet record stamped
// by a newer schema version.
func checkFleetSchema(r Record) error {
	if fleetOp(r.Op) && r.Schema > FleetSchemaVersion {
		return &SchemaError{Op: r.Op, Schema: r.Schema}
	}
	return nil
}

// Record is one journal entry. Config and Summary stay raw JSON so the
// journal does not depend on the harness packages (and so replayed
// bytes round-trip exactly).
type Record struct {
	Op       Op              `json:"op"`
	ID       string          `json:"id"`
	Time     time.Time       `json:"time"`
	State    string          `json:"state,omitempty"`
	Config   json.RawMessage `json:"config,omitempty"`
	IdemKey  string          `json:"idem_key,omitempty"`
	Error    string          `json:"error,omitempty"`
	Summary  json.RawMessage `json:"summary,omitempty"`
	Restarts int             `json:"restarts,omitempty"`
	// Placement is a fleet job's binding (raw JSON for the same reason
	// as Config); only fleet records carry it.
	Placement json.RawMessage `json:"placement,omitempty"`
	// Device, Tick, Attempts, PendSeq and Domains carry the fleet
	// failure-dynamics stream (OpFleetHealth / OpFleetDisplace, and
	// pending OpFleetState records): the device index a transition
	// applies to, the failure-clock step it happened at, a displaced
	// job's failed re-place attempts, its pending-queue position
	// (1-based; 0 = unset), and the failure-domain keys a Down
	// transition tainted.
	Device   int      `json:"device,omitempty"`
	Tick     int64    `json:"tick,omitempty"`
	Attempts int      `json:"attempts,omitempty"`
	PendSeq  int      `json:"pend_seq,omitempty"`
	Domains  []string `json:"domains,omitempty"`
	// Haircut and MemFactor carry an OpFleetDegrade record's absolute
	// capacity factors (per-resource, then memory). Schema stamps fleet
	// records whose shape post-dates the unversioned stream; see
	// FleetSchemaVersion.
	Haircut   []float64 `json:"haircut,omitempty"`
	MemFactor float64   `json:"mem_factor,omitempty"`
	Schema    int       `json:"schema,omitempty"`
}

// Options tunes a Journal.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 1 MiB).
	SegmentBytes int64
	// NoSync skips fsync entirely (tests only; crash durability is gone).
	NoSync bool
	// FS is the filesystem the journal does all I/O through (default
	// errfs.OS{}); swap in an errfs.Injector to torture the journal.
	FS errfs.FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.FS == nil {
		o.FS = errfs.OS{}
	}
	return o
}

// ErrClosed is returned by Append on a closed journal.
var ErrClosed = errors.New("journal: closed")

type segment struct {
	seq  uint64
	size int64
}

// batch is one group commit: every append whose frame is on disk before
// the syncer's fsync shares the batch, and the fsync outcome is the
// outcome for all of them.
type batch struct {
	done chan struct{}
	err  error
}

// Journal is one open journal directory. Appends are durable when they
// return: concurrent appends share one fsync (group commit), so the
// per-record cost amortizes under load.
type Journal struct {
	dir  string
	opts Options
	fsys errfs.FS

	// mu guards everything below and is held ACROSS the fsync in the
	// syncer. That serializes sync against writes and rotations, which is
	// what makes the poisoning rule exact: when a sync fails, the frames
	// at risk are precisely the active segment's bytes past j.synced, and
	// the appends waiting on j.pending are precisely their writers.
	// Batching still happens — appenders queue on mu during the fsync and
	// all join the next batch.
	mu      sync.Mutex
	cond    *sync.Cond // signals the syncer that a batch is pending
	f       errfs.File // active segment; nil when poisoned (or closed)
	segs    []segment  // in seq order; last is active
	nextSeq uint64     // never reused, even across failed opens (O_EXCL)
	synced  int64      // active segment bytes covered by a successful fsync
	pending *batch
	closed  bool
	done    chan struct{}

	size    atomic.Int64
	poisons atomic.Int64
}

func segName(seq uint64) string { return fmt.Sprintf("seg-%08d.wal", seq) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"), 10, 64)
	return n, err == nil
}

// syncDir fsyncs the directory entry so segment creations and removals
// survive a crash.
func (j *Journal) syncDir() error {
	if j.opts.NoSync {
		return nil
	}
	return j.fsys.SyncDir(j.dir)
}

// Open replays the journal in dir (creating it if needed), truncates any
// corrupt tail, discards segments past a corruption point, and returns
// the surviving records in append order alongside a Journal appending to
// a fresh segment. A fresh segment per Open means a crashed process's
// stale file handle can never interleave with the new incarnation's
// writes.
func Open(dir string, opts Options) (*Journal, []Record, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	j := &Journal{dir: dir, opts: opts, fsys: fsys, done: make(chan struct{})}
	j.cond = sync.NewCond(&j.mu)

	var recs []Record
	corrupt := false
	var maxSeq uint64
	for _, seq := range seqs {
		maxSeq = seq
		path := filepath.Join(dir, segName(seq))
		if corrupt {
			// Everything after a corruption point is unreachable history:
			// remove it so it cannot resurface on a later replay.
			_ = fsys.Remove(path)
			continue
		}
		data, err := fsys.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		rs, valid, ok := decodeFrames(data)
		recs = append(recs, rs...)
		size := int64(len(data))
		if !ok {
			if err := fsys.Truncate(path, valid); err != nil {
				return nil, nil, fmt.Errorf("journal: truncate corrupt tail: %w", err)
			}
			size = valid
			corrupt = true
		}
		j.segs = append(j.segs, segment{seq: seq, size: size})
		j.size.Add(size)
	}

	f, err := fsys.OpenFile(filepath.Join(dir, segName(maxSeq+1)), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if err := j.syncDir(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.segs = append(j.segs, segment{seq: maxSeq + 1})
	j.nextSeq = maxSeq + 2
	if opts.NoSync {
		close(j.done)
	} else {
		go j.syncer()
	}
	return j, recs, nil
}

// FrameHeaderLen is the fixed "<len:8 hex> <crc32:8 hex> " prefix every
// frame carries before its payload.
const FrameHeaderLen = 18

// EncodeFrame wraps an arbitrary payload in the journal's length+CRC
// framing: "<len:8 hex> <crc32:8 hex> <payload>\n" with an IEEE CRC over
// the payload bytes. The checkpoint files written by the harness reuse
// this framing so one verifier covers both formats.
func EncodeFrame(payload []byte) []byte {
	out := make([]byte, 0, FrameHeaderLen+len(payload)+1)
	out = append(out, fmt.Sprintf("%08x %08x ", len(payload), crc32.ChecksumIEEE(payload))...)
	out = append(out, payload...)
	return append(out, '\n')
}

// DecodeFrame verifies and strips one frame from the front of data. It
// returns the payload, the total bytes the frame occupies, and whether
// the frame verified; a torn (short) or corrupt (malformed header, CRC
// mismatch, missing terminator) frame returns ok=false and consumes
// nothing. The payload aliases data — callers that retain it across
// buffer reuse must copy.
func DecodeFrame(data []byte) (payload []byte, n int, ok bool) {
	if len(data) < FrameHeaderLen+1 || data[8] != ' ' || data[17] != ' ' {
		return nil, 0, false
	}
	plen, err1 := strconv.ParseUint(string(data[:8]), 16, 32)
	crc, err2 := strconv.ParseUint(string(data[9:17]), 16, 32)
	if err1 != nil || err2 != nil {
		return nil, 0, false
	}
	end := FrameHeaderLen + int(plen) + 1
	if end > len(data) || end < FrameHeaderLen || data[end-1] != '\n' {
		return nil, 0, false
	}
	payload = data[FrameHeaderLen : end-1]
	if crc32.ChecksumIEEE(payload) != uint32(crc) {
		return nil, 0, false
	}
	return payload, end, true
}

// decodeFrames parses records until the data ends or a frame fails to
// verify. It returns the records decoded, the byte offset up to which
// the data was valid, and whether the whole buffer parsed cleanly.
func decodeFrames(data []byte) (recs []Record, valid int64, ok bool) {
	off := 0
	for off < len(data) {
		payload, n, ok := DecodeFrame(data[off:])
		if !ok {
			return recs, int64(off), false
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, int64(off), false
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, int64(off), true
}

// Append writes one record and returns once it is durable (fsynced,
// shared with any concurrently appending goroutines). On error the
// record must be treated as not written: its bytes are either truncated
// back out immediately or, after a poisoned sync, cut when the segment
// fd is dropped — replay never surfaces them.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	frame := EncodeFrame(payload)

	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	if j.f == nil {
		// A previous sync failure poisoned the segment fd; rotate to a
		// fresh segment (fresh descriptor) before accepting new records.
		if err := j.openNextLocked(); err != nil {
			j.mu.Unlock()
			return err
		}
	}
	active := &j.segs[len(j.segs)-1]
	if active.size > 0 && active.size+int64(len(frame)) > j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			j.mu.Unlock()
			return err
		}
		active = &j.segs[len(j.segs)-1]
	}
	if n, err := j.f.Write(frame); err != nil {
		// The frame is torn: n of its bytes may be in the file. Cut it
		// back out so the segment stays parseable for later appends; if
		// even that fails the fd is unusable — poison it.
		if n > 0 {
			if terr := j.f.Truncate(active.size); terr != nil {
				j.poisonLocked()
			}
		}
		j.mu.Unlock()
		return fmt.Errorf("journal: append: %w", err)
	}
	active.size += int64(len(frame))
	j.size.Add(int64(len(frame)))

	if j.opts.NoSync {
		j.synced = active.size
		j.mu.Unlock()
		return nil
	}
	// Group commit: join the pending batch (creating it wakes the syncer)
	// and wait for its fsync verdict.
	if j.pending == nil {
		j.pending = &batch{done: make(chan struct{})}
		j.cond.Broadcast()
	}
	b := j.pending
	j.mu.Unlock()

	<-b.done
	return b.err
}

// poisonLocked implements the fsync-failure rule: assume the unsynced
// suffix of the active segment is gone (a failed fsync may have dropped
// the dirty pages — retrying on the same fd would lie about durability),
// truncate the segment back to its last-synced size, drop the fd, and
// fail any appends waiting on the pending batch. The next Append opens a
// fresh segment. Callers hold j.mu.
func (j *Journal) poisonLocked() {
	j.poisons.Add(1)
	active := &j.segs[len(j.segs)-1]
	if j.f != nil {
		_ = j.f.Truncate(j.synced)
		_ = j.f.Close()
		j.f = nil
	}
	j.size.Add(j.synced - active.size)
	active.size = j.synced
	if j.pending != nil {
		j.pending.err = fmt.Errorf("journal: sync failed, segment %s poisoned", segName(active.seq))
		close(j.pending.done)
		j.pending = nil
	}
}

// openNextLocked opens a fresh segment after the active one was sealed
// or poisoned. Callers hold j.mu, with j.f nil. The sequence counter
// advances even when the open fails partway (the O_EXCL create may have
// succeeded before the directory sync failed), so a retry never
// collides with its own debris.
func (j *Journal) openNextLocked() error {
	seq := j.nextSeq
	j.nextSeq++
	f, err := j.fsys.OpenFile(filepath.Join(j.dir, segName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	if err := j.syncDir(); err != nil {
		f.Close()
		_ = j.fsys.Remove(f.Name())
		return fmt.Errorf("journal: rotate: %w", err)
	}
	j.f = f
	j.segs = append(j.segs, segment{seq: seq})
	j.synced = 0
	return nil
}

// sealLocked makes the active segment durable and closes it. A seal-time
// sync failure poisons the fd like any other. Callers hold j.mu; j.f is
// nil afterwards.
func (j *Journal) sealLocked() error {
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			j.poisonLocked()
			return fmt.Errorf("journal: rotate sync: %w", err)
		}
		j.synced = j.segs[len(j.segs)-1].size
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("journal: rotate close: %w", err)
	}
	return nil
}

// rotateLocked seals the active segment (fsync + close) and opens the
// next one. Callers hold j.mu.
func (j *Journal) rotateLocked() error {
	if err := j.sealLocked(); err != nil {
		return err
	}
	return j.openNextLocked()
}

// syncer is the group-commit loop: one fsync per batch of appends. It
// holds j.mu across the fsync (see the Journal comment), so the batch it
// takes covers exactly the active segment's bytes, and appenders that
// arrive during the fsync queue on the mutex and form the next batch.
func (j *Journal) syncer() {
	defer close(j.done)
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		for j.pending == nil && !j.closed {
			j.cond.Wait()
		}
		if j.pending == nil {
			return // closed and drained
		}
		b := j.pending
		j.pending = nil
		// Invariant: a pending batch implies a live fd — poisonLocked
		// fails the batch and nils the fd under the same mutex.
		if err := j.f.Sync(); err != nil {
			j.poisonLocked()
			b.err = fmt.Errorf("journal: sync: %w", err)
		} else {
			j.synced = j.segs[len(j.segs)-1].size
		}
		close(b.done)
	}
}

// Compact rewrites the journal to exactly recs — the caller's snapshot
// of live job state (see SnapshotRecords) — in a fresh segment, then
// deletes every older segment. Replay after a crash mid-compaction sees
// old records followed by the snapshot, which Reduce resolves to the
// same state. Old segments are only removed after the snapshot is
// durable, so a failed compaction never loses history.
func (j *Journal) Compact(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.f == nil {
		if err := j.openNextLocked(); err != nil {
			return err
		}
	}
	if err := j.rotateLocked(); err != nil {
		return err
	}
	active := &j.segs[len(j.segs)-1]
	var n int64
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("journal: compact marshal: %w", err)
		}
		frame := EncodeFrame(payload)
		if _, err := j.f.Write(frame); err != nil {
			return fmt.Errorf("journal: compact: %w", err)
		}
		n += int64(len(frame))
	}
	active.size += n
	j.size.Add(n)
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			j.poisonLocked()
			return fmt.Errorf("journal: compact sync: %w", err)
		}
		j.synced = active.size
	} else {
		j.synced = active.size
	}
	// Snapshot is durable: older segments are dead weight.
	for _, seg := range j.segs[:len(j.segs)-1] {
		if err := j.fsys.Remove(filepath.Join(j.dir, segName(seg.seq))); err != nil {
			return fmt.Errorf("journal: compact remove: %w", err)
		}
		j.size.Add(-seg.size)
	}
	j.segs = j.segs[len(j.segs)-1:]
	return j.syncDir()
}

// SizeBytes reports the journal's on-disk size across all segments.
func (j *Journal) SizeBytes() int64 { return j.size.Load() }

// Segments reports how many segment files the journal currently holds.
func (j *Journal) Segments() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.segs)
}

// Poisons reports how many segment fds were poisoned by fsync failures
// over the journal's lifetime.
func (j *Journal) Poisons() int64 { return j.poisons.Load() }

// Close seals the journal: pending appends settle, the active segment is
// fsynced and closed. Further Appends return ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		<-j.done
		return nil
	}
	j.closed = true
	j.cond.Broadcast()
	j.mu.Unlock()
	<-j.done // syncer drains the last batch and exits

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	var err error
	if !j.opts.NoSync {
		if serr := j.f.Sync(); serr != nil {
			j.poisonLocked()
			return fmt.Errorf("journal: close sync: %w", serr)
		}
		j.synced = j.segs[len(j.segs)-1].size
	}
	if j.f != nil {
		err = j.f.Close()
		j.f = nil
	}
	return err
}

// --- replay reduction -------------------------------------------------------

// JobImage is one job's state as reduced from the journal.
type JobImage struct {
	ID        string
	Config    json.RawMessage
	IdemKey   string
	State     string
	Error     string
	Summary   json.RawMessage
	Restarts  int
	Submitted time.Time
	Finished  time.Time
}

// terminalState mirrors the server's terminal job states.
func terminalState(s string) bool {
	return s == "done" || s == "failed" || s == "canceled"
}

// Reduce folds a replayed record stream into per-job images, in first-
// appearance order. It is idempotent and tolerant: duplicate submits
// (possible after a crash mid-compaction) keep the first config, and a
// state record whose submit was compacted away still creates the job so
// a later snapshot record can fill the config in. Records with no job ID
// (OpNoop durability probes) are skipped.
func Reduce(recs []Record) []*JobImage {
	byID := map[string]*JobImage{}
	var order []*JobImage
	get := func(id string) *JobImage {
		im, ok := byID[id]
		if !ok {
			im = &JobImage{ID: id, State: "queued"}
			byID[id] = im
			order = append(order, im)
		}
		return im
	}
	for _, r := range recs {
		if r.ID == "" || fleetOp(r.Op) {
			continue
		}
		im := get(r.ID)
		switch r.Op {
		case OpSubmit:
			if im.Config == nil {
				im.Config = r.Config
			}
			if im.IdemKey == "" {
				im.IdemKey = r.IdemKey
			}
			if im.Submitted.IsZero() {
				im.Submitted = r.Time
			}
		case OpState:
			im.State = r.State
			if r.Error != "" {
				im.Error = r.Error
			}
			if r.Summary != nil {
				im.Summary = r.Summary
			}
			if r.Restarts > im.Restarts {
				im.Restarts = r.Restarts
			}
			if terminalState(r.State) {
				im.Finished = r.Time
			} else {
				im.Finished = time.Time{}
			}
		}
	}
	return order
}

// SnapshotRecords renders job images back into the minimal record set a
// compacted journal needs: one submit per job, plus one state record
// when the job has left the queued state.
func SnapshotRecords(images []*JobImage) []Record {
	var recs []Record
	for _, im := range images {
		recs = append(recs, Record{
			Op: OpSubmit, ID: im.ID, Time: im.Submitted,
			Config: im.Config, IdemKey: im.IdemKey,
		})
		if im.State != "queued" || im.Restarts > 0 {
			recs = append(recs, Record{
				Op: OpState, ID: im.ID, Time: im.Finished,
				State: im.State, Error: im.Error,
				Summary: im.Summary, Restarts: im.Restarts,
			})
		}
	}
	return recs
}

// --- fleet reduction --------------------------------------------------------

// FleetImage is one fleet job's state as reduced from the journal.
type FleetImage struct {
	ID     string
	Config json.RawMessage
	// State is pending, placed, evaluated, evicted, or failed.
	State string
	// Placement is the job's current binding (nil when
	// pending/evicted/failed).
	Placement json.RawMessage
	Summary   json.RawMessage
	Error     string
	Submitted time.Time
	Updated   time.Time
	// BindSeq orders placements by when each job's current binding was
	// journaled; recovery rebinds in this order so per-device resident
	// lists (and thus future preemption-victim choices) reconstruct
	// exactly.
	BindSeq int
	// PendSeq orders pending jobs by when they (last) entered the
	// pending queue (1-based; 0 = unset), so recovery rebuilds the
	// retry queue in the pre-crash order.
	PendSeq int
	// DispTick is the failure-clock tick the job was displaced at (-1 =
	// never displaced: no re-place deadline or backoff applies).
	DispTick int64
	// Attempts counts failed re-place attempts since displacement, and
	// LastTry the failure-clock tick of the most recent one — together
	// they reconstruct the exponential-backoff schedule.
	Attempts int
	LastTry  int64
}

// ReduceFleet folds the replayed stream's fleet records into per-job
// images, in first-appearance order. Like Reduce it is idempotent and
// duplicate-tolerant; non-fleet records are skipped. A fleet record
// stamped by a newer schema version aborts the reduction with a
// *SchemaError — recovering placement state through fields this build
// cannot read would corrupt it silently.
func ReduceFleet(recs []Record) ([]*FleetImage, error) {
	byID := map[string]*FleetImage{}
	var order []*FleetImage
	get := func(id string) *FleetImage {
		im, ok := byID[id]
		if !ok {
			im = &FleetImage{ID: id, State: "pending", BindSeq: -1, DispTick: -1}
			byID[id] = im
			order = append(order, im)
		}
		return im
	}
	for seq, r := range recs {
		if err := checkFleetSchema(r); err != nil {
			return nil, err
		}
		if r.ID == "" || !fleetOp(r.Op) || r.Op == OpFleetHealth || r.Op == OpFleetDegrade {
			continue
		}
		im := get(r.ID)
		switch r.Op {
		case OpFleetSubmit:
			if im.Config == nil {
				im.Config = r.Config
			}
			if im.Submitted.IsZero() {
				im.Submitted = r.Time
			}
			if r.State != "" {
				im.State = r.State
			}
		case OpFleetState:
			if r.State != "" {
				im.State = r.State
			}
			if r.State == "pending" {
				if r.PendSeq > 0 {
					im.PendSeq = r.PendSeq
				}
				if r.Attempts > 0 {
					im.Attempts = r.Attempts
					im.LastTry = r.Tick
				}
			}
			im.Updated = r.Time
		case OpFleetDisplace:
			im.State = "pending"
			im.DispTick = r.Tick
			im.LastTry = r.Tick
			im.Attempts = 0
			if r.PendSeq > 0 {
				im.PendSeq = r.PendSeq
			}
			im.Updated = r.Time
		}
		if r.Error != "" {
			im.Error = r.Error
		}
		if r.Summary != nil {
			im.Summary = r.Summary
		}
		if r.Placement != nil {
			im.Placement = r.Placement
			im.BindSeq = seq
		}
		if im.State == "pending" || im.State == "evicted" || im.State == "failed" {
			im.Placement = nil
			im.BindSeq = -1
		}
		if im.State != "pending" {
			// Leaving pending clears the retry bookkeeping: a re-placed
			// job that is displaced again starts a fresh deadline.
			im.PendSeq, im.Attempts, im.DispTick, im.LastTry = 0, 0, -1, 0
		}
	}
	return order, nil
}

// FleetSnapshotRecords renders fleet images back into the minimal record
// set a compacted journal needs: every job's submit (in first-appearance
// order, which preserves the pending queue), then one state record per
// bound or terminal job, bound jobs ordered by BindSeq so a replay of
// the snapshot reconstructs the same bind order.
func FleetSnapshotRecords(images []*FleetImage) []Record {
	var recs []Record
	for _, im := range images {
		recs = append(recs, Record{
			Op: OpFleetSubmit, ID: im.ID, Time: im.Submitted, Config: im.Config,
		})
	}
	bound := make([]*FleetImage, 0, len(images))
	for _, im := range images {
		if im.Placement != nil {
			bound = append(bound, im)
			continue
		}
		if im.State != "pending" {
			recs = append(recs, Record{
				Op: OpFleetState, ID: im.ID, Time: im.Updated,
				State: im.State, Error: im.Error, Summary: im.Summary,
			})
			continue
		}
		// Pending jobs with retry bookkeeping re-emit it so the queue
		// order, deadline and backoff schedule survive compaction.
		if im.DispTick >= 0 {
			recs = append(recs, Record{
				Op: OpFleetDisplace, ID: im.ID, Time: im.Updated,
				Tick: im.DispTick, PendSeq: im.PendSeq,
			})
		}
		if im.Attempts > 0 || (im.PendSeq > 0 && im.DispTick < 0) {
			recs = append(recs, Record{
				Op: OpFleetState, ID: im.ID, Time: im.Updated, State: "pending",
				PendSeq: im.PendSeq, Attempts: im.Attempts, Tick: im.LastTry,
			})
		}
	}
	sort.SliceStable(bound, func(a, b int) bool { return bound[a].BindSeq < bound[b].BindSeq })
	for _, im := range bound {
		recs = append(recs, Record{
			Op: OpFleetState, ID: im.ID, Time: im.Updated,
			State: im.State, Error: im.Error,
			Summary: im.Summary, Placement: im.Placement,
		})
	}
	return recs
}

// --- fleet health reduction -------------------------------------------------

// DeviceHealth is one device's reduced health state. Only devices that
// ever left the default (healthy, uncordoned) state appear in a
// FleetHealth image.
type DeviceHealth struct {
	Device   int    `json:"device"`
	ID       string `json:"id,omitempty"`
	Health   string `json:"health,omitempty"`
	Cordoned bool   `json:"cordoned,omitempty"`
	// Haircut/MemFactor are the gray-failure capacity factors while
	// Health == "degraded". FlapTicks are the health-transition ticks
	// inside the flap window; Quarantined/Reason the flap-detector
	// latch. All restored verbatim by recovery.
	Haircut     []float64 `json:"haircut,omitempty"`
	MemFactor   float64   `json:"mem_factor,omitempty"`
	FlapTicks   []int64   `json:"flap_ticks,omitempty"`
	Quarantined bool      `json:"quarantined,omitempty"`
	Reason      string    `json:"reason,omitempty"`
}

// FleetHealth is the reduced device-health state of the fleet: the
// failure clock, whether the chaos process was armed, per-device final
// states, and the recently-failed failure domains the anti-affinity
// penalty reads.
type FleetHealth struct {
	Step    int64            `json:"step"`
	Started bool             `json:"started,omitempty"`
	Devices []DeviceHealth   `json:"devices,omitempty"`
	Domains map[string]int64 `json:"domains,omitempty"`
}

// ReduceFleetHealth folds the replayed stream's OpFleetHealth and
// OpFleetDegrade records (incremental transitions and compacted
// snapshots) into the final health image. Returns nil when the stream
// has no health records, and a *SchemaError when a fleet record was
// stamped by a newer schema version than this build understands.
func ReduceFleetHealth(recs []Record) (*FleetHealth, error) {
	var h *FleetHealth
	byDev := map[int]*DeviceHealth{}
	ensure := func(idx int, id string) *DeviceHealth {
		d, ok := byDev[idx]
		if !ok {
			d = &DeviceHealth{Device: idx, ID: id, Health: "healthy"}
			byDev[idx] = d
		}
		return d
	}
	for _, r := range recs {
		if err := checkFleetSchema(r); err != nil {
			return nil, err
		}
		if r.Op != OpFleetHealth && r.Op != OpFleetDegrade {
			continue
		}
		if h == nil {
			h = &FleetHealth{}
		}
		if r.Op == OpFleetHealth && r.ID == "" && len(r.Config) > 0 {
			// Compacted snapshot: replaces everything reduced so far.
			var snap FleetHealth
			if err := json.Unmarshal(r.Config, &snap); err != nil {
				continue
			}
			h = &snap
			byDev = map[int]*DeviceHealth{}
			for i := range h.Devices {
				byDev[h.Devices[i].Device] = &h.Devices[i]
			}
			continue
		}
		if r.Tick > h.Step {
			h.Step = r.Tick
		}
		if r.Op == OpFleetDegrade {
			d := ensure(r.Device, r.ID)
			d.Health = "degraded"
			d.Haircut = append([]float64(nil), r.Haircut...)
			d.MemFactor = r.MemFactor
			d.FlapTicks = append(d.FlapTicks, r.Tick)
			continue
		}
		switch r.State {
		case "chaos-start":
			h.Started = true
			continue
		case "cordon":
			ensure(r.Device, r.ID).Cordoned = true
		case "uncordon":
			ensure(r.Device, r.ID).Cordoned = false
		case "quarantine":
			// The flap-detector latch is journaled as its own record (the
			// reason travels in Error) and restored verbatim — it counts
			// as no transition itself.
			d := ensure(r.Device, r.ID)
			d.Quarantined, d.Reason = true, r.Error
		case "unquarantine":
			d := ensure(r.Device, r.ID)
			d.Quarantined, d.Reason, d.FlapTicks = false, "", nil
		default:
			d := ensure(r.Device, r.ID)
			d.Health = r.State
			d.FlapTicks = append(d.FlapTicks, r.Tick)
			if r.State != "degraded" {
				// Leaving Degraded clears the haircut (ApplyHealth does
				// the same on the live fleet).
				d.Haircut, d.MemFactor = nil, 0
			}
		}
		for _, dom := range r.Domains {
			if h.Domains == nil {
				h.Domains = map[string]int64{}
			}
			h.Domains[dom] = r.Tick
		}
	}
	if h == nil {
		return nil, nil
	}
	// Flatten the pointer map into a fresh dense slice in index order
	// (byDev may alias the old h.Devices backing array).
	idxs := make([]int, 0, len(byDev))
	for i := range byDev {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]DeviceHealth, 0, len(byDev))
	for _, i := range idxs {
		out = append(out, *byDev[i])
	}
	h.Devices = out
	return h, nil
}

// FleetHealthSnapshotRecord renders the reduced health image into the
// single record a compacted journal carries (an OpFleetHealth record
// with no ID and the image as Config). Returns ok=false for a nil or
// empty image, which needs no record.
func FleetHealthSnapshotRecord(h *FleetHealth, now time.Time) (Record, bool) {
	if h == nil || (h.Step == 0 && !h.Started && len(h.Devices) == 0 && len(h.Domains) == 0) {
		return Record{}, false
	}
	cfg, err := json.Marshal(h)
	if err != nil {
		return Record{}, false
	}
	return Record{Op: OpFleetHealth, Time: now, Config: cfg}, true
}
