package journal

// Storage-fault torture for the journal: for every injectable fault site
// in the append path, inject the fault via errfs, restart recovery, and
// assert the WAL invariant:
//
//	acked ⊆ visible ⊆ attempted   (in attempt order)
//
// — no acknowledged record may be lost, and nothing that was never
// attempted may appear. For the faults below the errfs model is strict
// enough (failed syncs drop pages, torn frames are truncated back out)
// that the tests assert the tight form, visible == acked. A second
// replay of the same directory must reduce to bit-identical job images:
// recovery is deterministic, not merely correct.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"orion/internal/errfs"
)

// tortureAppend drives n appends through a journal on fsys, returning
// the IDs in attempt order and the subset that was acked (Append
// returned nil). Unlike the regular helpers it tolerates append errors —
// they are the point.
func tortureAppend(t *testing.T, dir string, fsys errfs.FS, n int) (attempted, acked []string) {
	t.Helper()
	j, _, err := Open(dir, Options{SegmentBytes: 256, FS: fsys})
	if err != nil {
		t.Fatalf("open under injection: %v", err)
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("exp-%04d", i)
		attempted = append(attempted, id)
		err := j.Append(Record{Op: OpSubmit, ID: id, Config: json.RawMessage(`{"seed":7}`)})
		if err == nil {
			acked = append(acked, id)
		}
	}
	_ = j.Close() // the workload may have poisoned the tail; Close may error
	return attempted, acked
}

// recoveredIDs reopens dir on the clean filesystem and returns the
// replayed record IDs in order, plus the reduced job images as JSON (the
// bit-identity probe).
func recoveredIDs(t *testing.T, dir string) ([]string, string) {
	t.Helper()
	j, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer j.Close()
	var ids []string
	for _, r := range recs {
		if r.ID != "" {
			ids = append(ids, r.ID)
		}
	}
	images, err := json.Marshal(Reduce(recs))
	if err != nil {
		t.Fatal(err)
	}
	return ids, string(images)
}

// assertWALInvariant checks acked ⊆ visible ⊆ attempted in order, and
// (tight=true) visible == acked.
func assertWALInvariant(t *testing.T, attempted, acked, visible []string, tight bool) {
	t.Helper()
	pos := map[string]int{}
	for i, id := range attempted {
		pos[id] = i
	}
	last := -1
	for _, id := range visible {
		p, ok := pos[id]
		if !ok {
			t.Fatalf("recovered record %q was never attempted", id)
		}
		if p <= last {
			t.Fatalf("recovered records out of attempt order at %q", id)
		}
		last = p
	}
	vis := map[string]bool{}
	for _, id := range visible {
		vis[id] = true
	}
	for _, id := range acked {
		if !vis[id] {
			t.Fatalf("ACKED RECORD LOST: %q was acknowledged but did not survive recovery", id)
		}
	}
	if tight && len(visible) != len(acked) {
		t.Fatalf("visible (%d) != acked (%d): an unacknowledged record survived recovery", len(visible), len(acked))
	}
}

// TestTortureCrashpointMatrix is the crashpoint matrix: one scripted
// workload per injectable fault site.
func TestTortureCrashpointMatrix(t *testing.T) {
	const n = 40
	cases := []struct {
		name string
		arm  func(*errfs.Injector)
		// minAcked guards against the fault wedging the journal: appends
		// after the (one-shot or clearing) fault must succeed again.
		minAcked int
	}{
		{"write-error", func(i *errfs.Injector) {
			i.AddRule(errfs.Rule{Op: errfs.OpWrite, Path: "seg-*.wal", Nth: 5, Effect: errfs.EffectErr})
		}, n - 1},
		{"torn-write-1byte", func(i *errfs.Injector) {
			i.AddRule(errfs.Rule{Op: errfs.OpWrite, Path: "seg-*.wal", Nth: 5, Effect: errfs.EffectShortWrite, TearAt: 1})
		}, n - 1},
		{"torn-write-mid-header", func(i *errfs.Injector) {
			i.AddRule(errfs.Rule{Op: errfs.OpWrite, Path: "seg-*.wal", Nth: 7, Effect: errfs.EffectShortWrite, TearAt: FrameHeaderLen - 3})
		}, n - 1},
		{"torn-write-mid-payload", func(i *errfs.Injector) {
			i.AddRule(errfs.Rule{Op: errfs.OpWrite, Path: "seg-*.wal", Nth: 9, Effect: errfs.EffectShortWrite, TearAt: FrameHeaderLen + 11})
		}, n - 1},
		{"sync-loss-first-batch", func(i *errfs.Injector) {
			i.AddRule(errfs.Rule{Op: errfs.OpSync, Path: "seg-*.wal", Nth: 1, Effect: errfs.EffectSyncLoss})
		}, n - 1},
		{"sync-loss-later-batch", func(i *errfs.Injector) {
			i.AddRule(errfs.Rule{Op: errfs.OpSync, Path: "seg-*.wal", Nth: 6, Effect: errfs.EffectSyncLoss})
		}, n - 1},
		{"sync-error-pages-survive", func(i *errfs.Injector) {
			// The benign variant: fsync fails but the pages are intact. The
			// journal must STILL poison and drop the suffix — it cannot tell
			// this apart from the lossy case, and retrying would lie.
			i.AddRule(errfs.Rule{Op: errfs.OpSync, Path: "seg-*.wal", Nth: 3, Effect: errfs.EffectErr})
		}, n - 1},
		{"enospc-then-clear", func(i *errfs.Injector) {
			i.SetWriteBudget(1024, 3)
		}, 1},
		{"rotation-open-fails", func(i *errfs.Injector) {
			// First open happens inside Open(); the 2nd is the first rotation.
			i.AddRule(errfs.Rule{Op: errfs.OpOpen, Path: "seg-*.wal", Nth: 2, Effect: errfs.EffectErr})
		}, n - 1},
		{"dir-sync-fails-on-rotation", func(i *errfs.Injector) {
			i.AddRule(errfs.Rule{Op: errfs.OpSyncDir, Nth: 2, Effect: errfs.EffectErr})
		}, n - 1},
		{"double-fault-torn-then-sync-loss", func(i *errfs.Injector) {
			i.AddRule(errfs.Rule{Op: errfs.OpWrite, Path: "seg-*.wal", Nth: 4, Effect: errfs.EffectShortWrite, TearAt: 3})
			i.AddRule(errfs.Rule{Op: errfs.OpSync, Path: "seg-*.wal", Nth: 5, Effect: errfs.EffectSyncLoss})
		}, n - 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := errfs.New(errfs.OS{}, 1)
			tc.arm(inj)
			attempted, acked := tortureAppend(t, dir, inj, n)
			if inj.Faults() == 0 {
				t.Fatal("fault never fired: the crashpoint is not exercising anything")
			}
			if len(acked) < tc.minAcked {
				t.Fatalf("only %d/%d appends acked: journal wedged after the fault", len(acked), n)
			}
			visible, images := recoveredIDs(t, dir)
			assertWALInvariant(t, attempted, acked, visible, true)
			// Recovery must be deterministic: replay again, bit-compare.
			visible2, images2 := recoveredIDs(t, dir)
			if images != images2 || len(visible) != len(visible2) {
				t.Fatal("two replays of the same directory reduced to different images")
			}
		})
	}
}

// TestTortureFlakySweep runs seeded random write/sync faults across many
// seeds; whatever the schedule, no acked record may be lost and no
// unacked record may surface.
func TestTortureFlakySweep(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			inj := errfs.New(errfs.OS{}, seed)
			inj.SetFlaky(0.05, 0.05)
			attempted, acked := tortureAppend(t, dir, inj, 60)
			visible, _ := recoveredIDs(t, dir)
			assertWALInvariant(t, attempted, acked, visible, true)
		})
	}
}

// TestTorturePoisonRotates: a sync failure must rotate to a fresh
// segment — the poisoned fd is never reused, and the poison counter
// records the episode.
func TestTorturePoisonRotates(t *testing.T) {
	dir := t.TempDir()
	inj := errfs.New(errfs.OS{}, 1)
	inj.AddRule(errfs.Rule{Op: errfs.OpSync, Path: "seg-*.wal", Nth: 1, Effect: errfs.EffectSyncLoss})
	j, _, err := Open(dir, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpSubmit, ID: "exp-1"}); err == nil {
		t.Fatal("append over the failed fsync was acked")
	}
	if got := j.Poisons(); got != 1 {
		t.Fatalf("Poisons() = %d, want 1", got)
	}
	// The journal recovers on the very next append, into a new segment.
	if err := j.Append(Record{Op: OpSubmit, ID: "exp-2"}); err != nil {
		t.Fatalf("append after poison: %v", err)
	}
	if got := j.Segments(); got != 2 {
		t.Fatalf("Segments() = %d after poison rotation, want 2", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// The poisoned segment's unsynced suffix is gone; the fresh segment
	// holds exp-2.
	_, recs := mustOpen(t, dir, Options{})
	if len(recs) != 1 || recs[0].ID != "exp-2" {
		t.Fatalf("recovered %+v, want only exp-2", recs)
	}
}

// TestTortureENOSPCPartialFrame: a full disk mid-frame must not leave a
// torn frame behind — the partial prefix is truncated back out so the
// segment stays parseable.
func TestTortureENOSPCPartialFrame(t *testing.T) {
	dir := t.TempDir()
	inj := errfs.New(errfs.OS{}, 1)
	j, _, err := Open(dir, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpSubmit, ID: "exp-1"}); err != nil {
		t.Fatal(err)
	}
	// Budget that tears the next frame partway through.
	inj.SetWriteBudget(10, 0)
	if err := j.Append(Record{Op: OpSubmit, ID: "exp-2"}); !errfs.IsNoSpace(err) {
		t.Fatalf("append on full disk = %v, want ENOSPC", err)
	}
	// Space comes back: the journal keeps going on the same segment.
	inj.ClearWriteBudget()
	if err := j.Append(Record{Op: OpSubmit, ID: "exp-3"}); err != nil {
		t.Fatalf("append after space freed: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := mustOpen(t, dir, Options{})
	var ids []string
	for _, r := range recs {
		ids = append(ids, r.ID)
	}
	want := []string{"exp-1", "exp-3"}
	if len(ids) != len(want) || ids[0] != want[0] || ids[1] != want[1] {
		t.Fatalf("recovered %v, want %v", ids, want)
	}
}

// TestTortureCompactSyncFailureKeepsHistory: a failed fsync of the
// compaction snapshot must not delete the old segments — recovery still
// sees the full history.
func TestTortureCompactSyncFailureKeepsHistory(t *testing.T) {
	dir := t.TempDir()
	inj := errfs.New(errfs.OS{}, 1)
	j, _, err := Open(dir, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(Record{Op: OpSubmit, ID: fmt.Sprintf("exp-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Next sync is the compaction snapshot's: lose it.
	inj.AddRule(errfs.Rule{Op: errfs.OpSync, Path: "seg-*.wal", Nth: 0, Effect: errfs.EffectSyncLoss})
	snap := SnapshotRecords(Reduce(mustReplay(t, dir)))
	err = j.Compact(snap)
	if err == nil {
		t.Fatal("compact over a failed snapshot sync was acked")
	}
	_ = j.Close()
	visible, _ := recoveredIDs(t, dir)
	if len(visible) != 5 {
		t.Fatalf("recovered %d records after failed compaction, want all 5", len(visible))
	}
}

// mustReplay re-reads dir without keeping a journal open (helper for
// building compaction snapshots in tests).
func mustReplay(t *testing.T, dir string) []Record {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); !ok {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		rs, _, _ := decodeFrames(data)
		recs = append(recs, rs...)
	}
	return recs
}

// TestTruncationSweep cuts a three-record segment at EVERY byte offset
// and checks recovery at each: the records whose frames fit entirely
// under the cut survive, nothing else does, and the corrupt tail is
// truncated from the file (complementing FuzzJournalReplay, which
// explores random corruption rather than the exhaustive torn-tail
// space).
func TestTruncationSweep(t *testing.T) {
	// Build the reference segment and the per-record frame boundaries.
	recs := []Record{
		{Op: OpSubmit, ID: "exp-a", Config: json.RawMessage(`{"seed":1}`), IdemKey: "ka"},
		{Op: OpState, ID: "exp-a", State: "running"},
		{Op: OpState, ID: "exp-a", State: "done", Summary: json.RawMessage(`{"p99":2.25}`)},
	}
	var data []byte
	var ends []int // cumulative end offset of each frame
	for _, r := range recs {
		payload, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, EncodeFrame(payload)...)
		ends = append(ends, len(data))
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		path := filepath.Join(dir, segName(1))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// Independent oracle: frames wholly under the cut survive.
		wantN, wantValid := 0, 0
		for i, end := range ends {
			if end <= cut {
				wantN, wantValid = i+1, end
			}
		}
		j, got := mustOpen(t, dir, Options{NoSync: true})
		if len(got) != wantN {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(got), wantN)
		}
		for i := range got {
			if got[i].State != recs[i].State || got[i].ID != recs[i].ID {
				t.Fatalf("cut=%d: record %d = %+v, want %+v", cut, i, got[i], recs[i])
			}
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != int64(wantValid) {
			t.Fatalf("cut=%d: torn tail not truncated: size %d, want %d", cut, fi.Size(), wantValid)
		}
		// The reopened journal accepts appends and a second recovery sees
		// the survivors plus the new record.
		if err := j.Append(Record{Op: OpState, ID: "exp-new", State: "queued"}); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		_, again := mustOpen(t, dir, Options{NoSync: true})
		if len(again) != wantN+1 || again[len(again)-1].ID != "exp-new" {
			t.Fatalf("cut=%d: second recovery saw %d records, want %d", cut, len(again), wantN+1)
		}
	}
}

// TestTortureCorruptReadAtOpen: a bit flip surfacing at read time is a
// corruption point — the damaged record and everything after it are
// dropped, never fatal.
func TestTortureCorruptReadAtOpen(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{NoSync: true})
	appendN(t, j, 3)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	inj := errfs.New(errfs.OS{}, 1)
	// Flip a bit deep in the segment payload area on the first read.
	inj.AddRule(errfs.Rule{Op: errfs.OpRead, Path: "seg-*.wal", Nth: 1, Effect: errfs.EffectCorruptRead, BitPos: 4000})
	j2, recs, err := Open(dir, Options{FS: inj})
	if err != nil {
		t.Fatalf("open over corrupt read: %v", err)
	}
	defer j2.Close()
	if len(recs) >= 9 {
		t.Fatalf("corrupt read recovered all %d records, want a truncated prefix", len(recs))
	}
}
