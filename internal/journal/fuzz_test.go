package journal

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// chaosLikeRecords mirrors the record stream the chaos drill's journals
// contain (submit + state transitions with config/summary payloads), so
// the seed corpus exercises the same shapes the SIGKILL artifacts do.
func chaosLikeRecords() []Record {
	cfg := json.RawMessage(`{"scheme":"orion","seed":3,"horizon":"2s","jobs":[{"workload":"resnet50-inf","priority":"hp","arrival":"poisson","rps":20}]}`)
	sum := json.RawMessage(`{"scheme":"orion","jobs":[{"name":"job-0","completed":37}]}`)
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	return []Record{
		{Op: OpSubmit, ID: "exp-1", Time: t0, Config: cfg, IdemKey: "k-1"},
		{Op: OpState, ID: "exp-1", Time: t0.Add(time.Second), State: "running"},
		{Op: OpState, ID: "exp-1", Time: t0.Add(2 * time.Second), State: "running", Restarts: 1},
		{Op: OpState, ID: "exp-1", Time: t0.Add(3 * time.Second), State: "done", Summary: sum},
		{Op: OpState, ID: "exp-2", Time: t0, State: "failed", Error: "worker panic: boom"},
	}
}

func encodeRecords(t testing.TB, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range recs {
		payload, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(EncodeFrame(payload))
	}
	return buf.Bytes()
}

// FuzzJournalReplay hammers the frame parser with mutated journal
// segments. Whatever the corruption — truncation, bit flips, hostile
// lengths — replay must truncate-and-continue: no panic, no out-of-range
// valid offset, and the surviving prefix must itself replay cleanly to
// the same records (the invariant Open relies on when it truncates a
// corrupt tail and keeps appending).
func FuzzJournalReplay(f *testing.F) {
	full := encodeRecords(f, chaosLikeRecords())
	f.Add(full)
	f.Add([]byte{})
	f.Add([]byte("00000002 deadbeef {}\n"))
	f.Add(full[:len(full)/2]) // torn tail mid-frame
	flipped := append([]byte(nil), full...)
	flipped[FrameHeaderLen+3] ^= 0x40 // payload bit flip: CRC must catch it
	f.Add(flipped)
	badLen := append([]byte(nil), full...)
	copy(badLen, "ffffffff") // hostile length field
	f.Add(badLen)
	f.Add(bytes.Repeat([]byte{0x00}, 64))
	f.Add([]byte("not a journal at all\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, ok := decodeFrames(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d outside [0,%d]", valid, len(data))
		}
		if ok && valid != int64(len(data)) {
			t.Fatalf("clean parse but valid=%d != len=%d", valid, len(data))
		}
		if !ok && valid == int64(len(data)) {
			t.Fatal("corrupt parse consumed the whole buffer")
		}
		// Truncate-and-continue: the surviving prefix is a valid journal
		// yielding exactly the records already decoded.
		again, validAgain, okAgain := decodeFrames(data[:valid])
		if !okAgain || validAgain != valid {
			t.Fatalf("truncated prefix did not replay cleanly: ok=%v valid=%d want %d", okAgain, validAgain, valid)
		}
		if len(again) != len(recs) {
			t.Fatalf("truncated prefix replayed %d records, first pass %d", len(again), len(recs))
		}
		for i := range recs {
			a, _ := json.Marshal(recs[i])
			b, _ := json.Marshal(again[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("record %d drifted across replays:\n  %s\n  %s", i, a, b)
			}
		}
	})
}
