package journal

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// grayRecs interleaves binary health transitions, gray degradations,
// displacements and flap-detector latches the way a live chaos tick
// writes them.
func grayRecs() []Record {
	t0 := time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)
	return []Record{
		{Op: OpFleetSubmit, ID: "a", Time: t0, State: "placed",
			Config: []byte(`{"workload":"bert-inf"}`), Placement: []byte(`{"device_index":3}`)},
		// Device 3 takes a thermal haircut; job a is displaced as overflow.
		{Op: OpFleetDegrade, ID: "z0/r0/n0/g3", Device: 3, State: "degraded", Tick: 10,
			Haircut: []float64{0.7, 1, 0.7, 1}, MemFactor: 0.9, Schema: FleetSchemaVersion},
		{Op: OpFleetDisplace, ID: "a", Time: t0.Add(time.Second), Device: 3, Tick: 10, PendSeq: 1},
		// A partial repair narrows the haircut.
		{Op: OpFleetDegrade, ID: "z0/r0/n0/g3", Device: 3, State: "degraded", Tick: 14,
			Haircut: []float64{0.85, 1, 0.85, 1}, MemFactor: 0.95, Schema: FleetSchemaVersion},
		// Device 4 flaps its way into quarantine, then ages out of it.
		{Op: OpFleetHealth, ID: "z0/r0/n1/g0", Device: 4, State: "suspect", Tick: 15},
		{Op: OpFleetHealth, ID: "z0/r0/n1/g0", Device: 4, State: "healthy", Tick: 16},
		{Op: OpFleetHealth, ID: "z0/r0/n1/g0", Device: 4, State: "quarantine", Tick: 16,
			Error: "flap-quarantine: 6 transitions in 32 ticks", Schema: FleetSchemaVersion},
		// Device 3 heals fully: the haircut must clear.
		{Op: OpFleetHealth, ID: "z0/r0/n0/g3", Device: 3, State: "healthy", Tick: 20},
	}
}

func TestReduceFleetHealthGray(t *testing.T) {
	recs := grayRecs()
	// Cut the stream right after the partial repair: device 3 must carry
	// the latest absolute factors, not the first ones.
	h := mustReduceFleetHealth(t, recs[:4])
	if h == nil || h.Step != 14 {
		t.Fatalf("health image = %+v, want step 14", h)
	}
	if len(h.Devices) != 1 {
		t.Fatalf("devices = %+v", h.Devices)
	}
	d3 := h.Devices[0]
	if d3.Health != "degraded" || d3.MemFactor != 0.95 ||
		!reflect.DeepEqual(d3.Haircut, []float64{0.85, 1, 0.85, 1}) {
		t.Fatalf("degraded device = %+v (latest factors must win)", d3)
	}
	// Both degrade ticks count toward the flap window.
	if !reflect.DeepEqual(d3.FlapTicks, []int64{10, 14}) {
		t.Fatalf("flap ticks = %v", d3.FlapTicks)
	}

	// The full stream: device 3 healed (haircut cleared), device 4
	// latched in quarantine with its reason.
	h = mustReduceFleetHealth(t, recs)
	if len(h.Devices) != 2 {
		t.Fatalf("devices = %+v", h.Devices)
	}
	d3, d4 := h.Devices[0], h.Devices[1]
	if d3.Health != "healthy" || d3.Haircut != nil || d3.MemFactor != 0 {
		t.Fatalf("healed device kept its haircut: %+v", d3)
	}
	if !d4.Quarantined || d4.Reason != "flap-quarantine: 6 transitions in 32 ticks" {
		t.Fatalf("quarantine latch = %+v", d4)
	}
	// The latch record itself is no transition: device 4 has exactly the
	// suspect and healthy ticks.
	if !reflect.DeepEqual(d4.FlapTicks, []int64{15, 16}) {
		t.Fatalf("d4 flap ticks = %v", d4.FlapTicks)
	}

	// An unquarantine record clears the latch and the window.
	h = mustReduceFleetHealth(t, append(recs,
		Record{Op: OpFleetHealth, ID: "z0/r0/n1/g0", Device: 4, State: "unquarantine", Tick: 50,
			Schema: FleetSchemaVersion}))
	d4 = h.Devices[1]
	if d4.Quarantined || d4.Reason != "" || d4.FlapTicks != nil {
		t.Fatalf("unquarantine left residue: %+v", d4)
	}

	// The job reducer skips degrade records entirely: no device ID leaks
	// in as a job, and job a's displacement bookkeeping still folds.
	ims := mustReduceFleet(t, recs)
	if len(ims) != 1 || ims[0].ID != "a" {
		t.Fatalf("job images = %+v", ims)
	}
	if ims[0].Placement != nil || ims[0].DispTick != 10 || ims[0].PendSeq != 1 {
		t.Fatalf("displacement did not fold: %+v", ims[0])
	}
}

func TestFleetHealthGraySnapshotRoundTrip(t *testing.T) {
	orig := mustReduceFleetHealth(t, grayRecs()[:7])
	rec, ok := FleetHealthSnapshotRecord(orig, time.Date(2026, 2, 2, 0, 0, 0, 0, time.UTC))
	if !ok {
		t.Fatal("gray health image produced no snapshot record")
	}
	replayed := mustReduceFleetHealth(t, []Record{rec})
	if replayed.Step != orig.Step || len(replayed.Devices) != len(orig.Devices) {
		t.Fatalf("round trip diverged:\n orig %+v\n repl %+v", orig, replayed)
	}
	for i := range orig.Devices {
		if !reflect.DeepEqual(orig.Devices[i], replayed.Devices[i]) {
			t.Fatalf("device %d diverged:\n orig %+v\n repl %+v", i, orig.Devices[i], replayed.Devices[i])
		}
	}
}

// TestFleetSchemaRejection pins the forward-compatibility contract: a
// fleet record stamped by a newer schema version fails both reducers
// with the typed *SchemaError instead of being silently misread.
func TestFleetSchemaRejection(t *testing.T) {
	newer := Record{Op: OpFleetDegrade, ID: "z0/r0/n0/g3", Device: 3, State: "degraded",
		Tick: 30, Haircut: []float64{0.7, 1, 0.7, 1}, MemFactor: 0.9,
		Schema: FleetSchemaVersion + 1}
	recs := append(grayRecs(), newer)

	if _, err := ReduceFleet(recs); err == nil {
		t.Fatal("ReduceFleet accepted a newer-schema record")
	} else {
		var se *SchemaError
		if !errors.As(err, &se) || se.Op != OpFleetDegrade || se.Schema != FleetSchemaVersion+1 {
			t.Fatalf("ReduceFleet error = %v, want *SchemaError for %s", err, OpFleetDegrade)
		}
	}
	if _, err := ReduceFleetHealth(recs); err == nil {
		t.Fatal("ReduceFleetHealth accepted a newer-schema record")
	} else {
		var se *SchemaError
		if !errors.As(err, &se) {
			t.Fatalf("ReduceFleetHealth error = %v, want *SchemaError", err)
		}
	}

	// Records at or below the current version pass.
	if _, err := ReduceFleetHealth(grayRecs()); err != nil {
		t.Fatalf("current-schema stream rejected: %v", err)
	}
	// A newer schema stamp on a non-fleet record is not our contract to
	// enforce — the experiment stream has no versioning yet.
	if _, err := ReduceFleet([]Record{{Op: OpSubmit, ID: "exp-1", Schema: 99,
		Config: []byte(`{}`)}}); err != nil {
		t.Fatalf("non-fleet record tripped the fleet schema check: %v", err)
	}
}
