package journal

import (
	"encoding/json"
	"testing"
	"time"
)

func fleetRecs() []Record {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return []Record{
		// a: submitted and placed in one record, later evaluated.
		{Op: OpFleetSubmit, ID: "a", Time: t0, State: "placed",
			Config: json.RawMessage(`{"workload":"bert-inf"}`), Placement: json.RawMessage(`{"device_index":3}`)},
		// b: pending at submit, placed later.
		{Op: OpFleetSubmit, ID: "b", Time: t0, Config: json.RawMessage(`{"workload":"llm-inf"}`)},
		// noise the fleet reducer must skip and vice versa.
		{Op: OpSubmit, ID: "exp-1", Time: t0, Config: json.RawMessage(`{"scheme":"orion"}`)},
		{Op: OpNoop},
		{Op: OpFleetState, ID: "a", Time: t0.Add(time.Second), State: "evaluated",
			Summary: json.RawMessage(`{"throughput":12.5}`)},
		{Op: OpFleetState, ID: "b", Time: t0.Add(2 * time.Second), State: "placed",
			Placement: json.RawMessage(`{"device_index":7}`)},
		// c: placed then evicted.
		{Op: OpFleetSubmit, ID: "c", Time: t0, State: "placed",
			Config: json.RawMessage(`{"workload":"resnet50-inf"}`), Placement: json.RawMessage(`{"device_index":1}`)},
		{Op: OpFleetState, ID: "c", Time: t0.Add(3 * time.Second), State: "evicted"},
	}
}

func TestReduceFleet(t *testing.T) {
	ims := ReduceFleet(fleetRecs())
	if len(ims) != 3 {
		t.Fatalf("%d fleet images, want 3", len(ims))
	}
	a, b, c := ims[0], ims[1], ims[2]
	if a.ID != "a" || a.State != "evaluated" || a.Placement == nil || a.Summary == nil {
		t.Fatalf("a = %+v", a)
	}
	if b.ID != "b" || b.State != "placed" || string(b.Placement) != `{"device_index":7}` {
		t.Fatalf("b = %+v", b)
	}
	if c.ID != "c" || c.State != "evicted" || c.Placement != nil {
		t.Fatalf("c = %+v (eviction must clear the binding)", c)
	}
	// Bind order: a was bound at record 0, b at record 5.
	if !(a.BindSeq < b.BindSeq) || c.BindSeq != -1 {
		t.Fatalf("bind seqs a=%d b=%d c=%d", a.BindSeq, b.BindSeq, c.BindSeq)
	}
}

func TestReduceSkipsFleetRecords(t *testing.T) {
	ims := Reduce(fleetRecs())
	if len(ims) != 1 || ims[0].ID != "exp-1" {
		t.Fatalf("experiment reduce saw fleet records: %+v", ims)
	}
}

func TestFleetSnapshotRoundTrip(t *testing.T) {
	orig := ReduceFleet(fleetRecs())
	snap := FleetSnapshotRecords(orig)
	replayed := ReduceFleet(snap)
	if len(replayed) != len(orig) {
		t.Fatalf("round trip lost images: %d vs %d", len(replayed), len(orig))
	}
	// Experiment reduce must also ignore the snapshot records.
	if exp := Reduce(snap); len(exp) != 0 {
		t.Fatalf("fleet snapshot leaked into experiment reduce: %+v", exp)
	}
	for i := range orig {
		o, r := orig[i], replayed[i]
		if o.ID != r.ID || o.State != r.State || string(o.Config) != string(r.Config) ||
			string(o.Placement) != string(r.Placement) || string(o.Summary) != string(r.Summary) {
			t.Fatalf("image %d diverged:\n orig %+v\n repl %+v", i, o, r)
		}
	}
	// Relative bind order must survive the round trip.
	bindOrder := func(ims []*FleetImage) []string {
		type bs struct {
			id  string
			seq int
		}
		var bound []bs
		for _, im := range ims {
			if im.Placement != nil {
				bound = append(bound, bs{im.ID, im.BindSeq})
			}
		}
		for i := 1; i < len(bound); i++ {
			if bound[i-1].seq > bound[i].seq {
				bound[i-1], bound[i] = bound[i], bound[i-1]
			}
		}
		ids := make([]string, len(bound))
		for i, b := range bound {
			ids[i] = b.id
		}
		return ids
	}
	ob, rb := bindOrder(orig), bindOrder(replayed)
	if len(ob) != len(rb) {
		t.Fatalf("bound counts differ: %v vs %v", ob, rb)
	}
	for i := range ob {
		if ob[i] != rb[i] {
			t.Fatalf("bind order changed: %v vs %v", ob, rb)
		}
	}
}

func TestFleetRecordsSurviveAppendReplay(t *testing.T) {
	dir := t.TempDir()
	j, recs, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	for _, r := range fleetRecs() {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recs, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	ims := ReduceFleet(recs)
	if len(ims) != 3 || ims[0].State != "evaluated" || ims[2].State != "evicted" {
		t.Fatalf("replayed fleet images wrong: %+v", ims)
	}
	if string(ims[0].Placement) != `{"device_index":3}` {
		t.Fatalf("placement did not round-trip: %s", ims[0].Placement)
	}
}
