package journal

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

func fleetRecs() []Record {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return []Record{
		// a: submitted and placed in one record, later evaluated.
		{Op: OpFleetSubmit, ID: "a", Time: t0, State: "placed",
			Config: json.RawMessage(`{"workload":"bert-inf"}`), Placement: json.RawMessage(`{"device_index":3}`)},
		// b: pending at submit, placed later.
		{Op: OpFleetSubmit, ID: "b", Time: t0, Config: json.RawMessage(`{"workload":"llm-inf"}`)},
		// noise the fleet reducer must skip and vice versa.
		{Op: OpSubmit, ID: "exp-1", Time: t0, Config: json.RawMessage(`{"scheme":"orion"}`)},
		{Op: OpNoop},
		{Op: OpFleetState, ID: "a", Time: t0.Add(time.Second), State: "evaluated",
			Summary: json.RawMessage(`{"throughput":12.5}`)},
		{Op: OpFleetState, ID: "b", Time: t0.Add(2 * time.Second), State: "placed",
			Placement: json.RawMessage(`{"device_index":7}`)},
		// c: placed then evicted.
		{Op: OpFleetSubmit, ID: "c", Time: t0, State: "placed",
			Config: json.RawMessage(`{"workload":"resnet50-inf"}`), Placement: json.RawMessage(`{"device_index":1}`)},
		{Op: OpFleetState, ID: "c", Time: t0.Add(3 * time.Second), State: "evicted"},
		// d: placed, displaced by a device failure, one failed re-place
		// attempt.
		{Op: OpFleetSubmit, ID: "d", Time: t0, State: "placed",
			Config: json.RawMessage(`{"workload":"bert-inf"}`), Placement: json.RawMessage(`{"device_index":5}`)},
		{Op: OpFleetDisplace, ID: "d", Time: t0.Add(4 * time.Second), Device: 5, Tick: 17, PendSeq: 3},
		{Op: OpFleetState, ID: "d", Time: t0.Add(5 * time.Second), State: "pending",
			PendSeq: 3, Attempts: 2, Tick: 19},
		// e: displaced and terminally failed at its re-place deadline.
		{Op: OpFleetSubmit, ID: "e", Time: t0, State: "placed",
			Config: json.RawMessage(`{"workload":"llm-inf"}`), Placement: json.RawMessage(`{"device_index":6}`)},
		{Op: OpFleetDisplace, ID: "e", Time: t0.Add(4 * time.Second), Device: 6, Tick: 17, PendSeq: 4},
		{Op: OpFleetState, ID: "e", Time: t0.Add(6 * time.Second), State: "failed",
			Error: "re-place deadline exhausted"},
		// device health transitions the job reducers must skip.
		{Op: OpFleetHealth, ID: "z0/r0/n1/g1", Device: 5, State: "down", Tick: 17,
			Domains: []string{"z0/r0", "z0/r0/n1"}},
		{Op: OpFleetHealth, ID: "z0/r0/n1/g1", Device: 5, State: "recovering", Tick: 29},
		{Op: OpFleetHealth, ID: "z0/r1/n0/g0", Device: 8, State: "cordon"},
		{Op: OpFleetHealth, State: "chaos-start"},
	}
}

// mustReduceFleet / mustReduceFleetHealth unwrap the reducers for
// tests whose record streams are known to carry no newer-schema
// records.
func mustReduceFleet(t *testing.T, recs []Record) []*FleetImage {
	t.Helper()
	ims, err := ReduceFleet(recs)
	if err != nil {
		t.Fatalf("ReduceFleet: %v", err)
	}
	return ims
}

func mustReduceFleetHealth(t *testing.T, recs []Record) *FleetHealth {
	t.Helper()
	h, err := ReduceFleetHealth(recs)
	if err != nil {
		t.Fatalf("ReduceFleetHealth: %v", err)
	}
	return h
}

func TestReduceFleet(t *testing.T) {
	ims := mustReduceFleet(t, fleetRecs())
	if len(ims) != 5 {
		t.Fatalf("%d fleet images, want 5", len(ims))
	}
	a, b, c, d, e := ims[0], ims[1], ims[2], ims[3], ims[4]
	if a.ID != "a" || a.State != "evaluated" || a.Placement == nil || a.Summary == nil {
		t.Fatalf("a = %+v", a)
	}
	if b.ID != "b" || b.State != "placed" || string(b.Placement) != `{"device_index":7}` {
		t.Fatalf("b = %+v", b)
	}
	if c.ID != "c" || c.State != "evicted" || c.Placement != nil {
		t.Fatalf("c = %+v (eviction must clear the binding)", c)
	}
	// Bind order: a was bound at record 0, b at record 5.
	if !(a.BindSeq < b.BindSeq) || c.BindSeq != -1 {
		t.Fatalf("bind seqs a=%d b=%d c=%d", a.BindSeq, b.BindSeq, c.BindSeq)
	}
	// d was displaced: binding cleared, retry bookkeeping folded in.
	if d.State != "pending" || d.Placement != nil || d.BindSeq != -1 {
		t.Fatalf("d = %+v (displacement must clear the binding)", d)
	}
	if d.DispTick != 17 || d.PendSeq != 3 || d.Attempts != 2 || d.LastTry != 19 {
		t.Fatalf("d bookkeeping = disp %d seq %d attempts %d lastTry %d",
			d.DispTick, d.PendSeq, d.Attempts, d.LastTry)
	}
	// e hit its re-place deadline: terminal, bookkeeping cleared.
	if e.State != "failed" || e.Placement != nil || e.Error == "" {
		t.Fatalf("e = %+v", e)
	}
	if e.DispTick != -1 || e.PendSeq != 0 || e.Attempts != 0 {
		t.Fatalf("terminal e kept retry bookkeeping: %+v", e)
	}
}

func TestReduceSkipsFleetRecords(t *testing.T) {
	ims := Reduce(fleetRecs())
	if len(ims) != 1 || ims[0].ID != "exp-1" {
		t.Fatalf("experiment reduce saw fleet records: %+v", ims)
	}
}

func TestFleetSnapshotRoundTrip(t *testing.T) {
	orig := mustReduceFleet(t, fleetRecs())
	snap := FleetSnapshotRecords(orig)
	replayed := mustReduceFleet(t, snap)
	if len(replayed) != len(orig) {
		t.Fatalf("round trip lost images: %d vs %d", len(replayed), len(orig))
	}
	// Experiment reduce must also ignore the snapshot records.
	if exp := Reduce(snap); len(exp) != 0 {
		t.Fatalf("fleet snapshot leaked into experiment reduce: %+v", exp)
	}
	for i := range orig {
		o, r := orig[i], replayed[i]
		if o.ID != r.ID || o.State != r.State || string(o.Config) != string(r.Config) ||
			string(o.Placement) != string(r.Placement) || string(o.Summary) != string(r.Summary) {
			t.Fatalf("image %d diverged:\n orig %+v\n repl %+v", i, o, r)
		}
	}
	// Relative bind order must survive the round trip.
	bindOrder := func(ims []*FleetImage) []string {
		type bs struct {
			id  string
			seq int
		}
		var bound []bs
		for _, im := range ims {
			if im.Placement != nil {
				bound = append(bound, bs{im.ID, im.BindSeq})
			}
		}
		for i := 1; i < len(bound); i++ {
			if bound[i-1].seq > bound[i].seq {
				bound[i-1], bound[i] = bound[i], bound[i-1]
			}
		}
		ids := make([]string, len(bound))
		for i, b := range bound {
			ids[i] = b.id
		}
		return ids
	}
	ob, rb := bindOrder(orig), bindOrder(replayed)
	if len(ob) != len(rb) {
		t.Fatalf("bound counts differ: %v vs %v", ob, rb)
	}
	for i := range ob {
		if ob[i] != rb[i] {
			t.Fatalf("bind order changed: %v vs %v", ob, rb)
		}
	}
	// Retry bookkeeping (queue position, deadline clock, backoff state)
	// must survive compaction too, or a recovered daemon would retry a
	// displaced job on the wrong schedule.
	for i := range orig {
		o, r := orig[i], replayed[i]
		if o.PendSeq != r.PendSeq || o.DispTick != r.DispTick ||
			o.Attempts != r.Attempts || o.LastTry != r.LastTry {
			t.Fatalf("retry bookkeeping for %s diverged:\n orig %+v\n repl %+v", o.ID, o, r)
		}
	}
}

func TestFleetRecordsSurviveAppendReplay(t *testing.T) {
	dir := t.TempDir()
	j, recs, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	for _, r := range fleetRecs() {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recs, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	ims := mustReduceFleet(t, recs)
	if len(ims) != 5 || ims[0].State != "evaluated" || ims[2].State != "evicted" {
		t.Fatalf("replayed fleet images wrong: %+v", ims)
	}
	if string(ims[0].Placement) != `{"device_index":3}` {
		t.Fatalf("placement did not round-trip: %s", ims[0].Placement)
	}
	if ims[3].DispTick != 17 || ims[3].PendSeq != 3 || ims[3].Attempts != 2 {
		t.Fatalf("displacement bookkeeping did not round-trip: %+v", ims[3])
	}
	h := mustReduceFleetHealth(t, recs)
	if h == nil || h.Step != 29 || !h.Started {
		t.Fatalf("health image did not round-trip: %+v", h)
	}
}

func TestReduceFleetHealth(t *testing.T) {
	recs := fleetRecs()
	h := mustReduceFleetHealth(t, recs)
	if h == nil {
		t.Fatal("health records produced no image")
	}
	if h.Step != 29 || !h.Started {
		t.Fatalf("image = %+v, want step 29, started", h)
	}
	if len(h.Devices) != 2 {
		t.Fatalf("devices = %+v, want 2 (only devices that left the default state)", h.Devices)
	}
	d5, d8 := h.Devices[0], h.Devices[1]
	if d5.Device != 5 || d5.Health != "recovering" || d5.Cordoned || d5.ID != "z0/r0/n1/g1" {
		t.Fatalf("device 5 = %+v", d5)
	}
	if d8.Device != 8 || d8.Health != "healthy" || !d8.Cordoned {
		t.Fatalf("device 8 = %+v", d8)
	}
	if h.Domains["z0/r0"] != 17 || h.Domains["z0/r0/n1"] != 17 {
		t.Fatalf("domains = %v", h.Domains)
	}
	// The job reducer must ignore health records entirely: the device ID
	// ("z0/r0/n1/g1") must not appear as a fleet job.
	for _, im := range mustReduceFleet(t, recs) {
		if im.ID == "z0/r0/n1/g1" || im.ID == "z0/r1/n0/g0" {
			t.Fatalf("health record leaked into the job reduce: %+v", im)
		}
	}
	// A stream with no health records reduces to nil.
	if got := mustReduceFleetHealth(t, recs[:8]); got != nil {
		t.Fatalf("health image from job-only records: %+v", got)
	}
}

func TestFleetHealthSnapshotRoundTrip(t *testing.T) {
	orig := mustReduceFleetHealth(t, fleetRecs())
	rec, ok := FleetHealthSnapshotRecord(orig, time.Date(2026, 1, 2, 0, 0, 0, 0, time.UTC))
	if !ok {
		t.Fatal("non-empty health image produced no snapshot record")
	}
	if rec.ID != "" || rec.Op != OpFleetHealth {
		t.Fatalf("snapshot record = %+v", rec)
	}
	replayed := mustReduceFleetHealth(t, []Record{rec})
	if replayed == nil {
		t.Fatal("snapshot record reduced to nil")
	}
	if replayed.Step != orig.Step || replayed.Started != orig.Started ||
		len(replayed.Devices) != len(orig.Devices) || len(replayed.Domains) != len(orig.Domains) {
		t.Fatalf("round trip diverged:\n orig %+v\n repl %+v", orig, replayed)
	}
	for i := range orig.Devices {
		if !reflect.DeepEqual(orig.Devices[i], replayed.Devices[i]) {
			t.Fatalf("device %d diverged: %+v vs %+v", i, orig.Devices[i], replayed.Devices[i])
		}
	}
	for dom, tick := range orig.Domains {
		if replayed.Domains[dom] != tick {
			t.Fatalf("domain %s diverged: %d vs %d", dom, replayed.Domains[dom], tick)
		}
	}
	// Incremental records after a snapshot fold on top of it.
	after := mustReduceFleetHealth(t, []Record{rec,
		{Op: OpFleetHealth, ID: "z0/r0/n1/g1", Device: 5, State: "healthy", Tick: 33},
		{Op: OpFleetHealth, ID: "z0/r1/n0/g0", Device: 8, State: "uncordon"},
	})
	if after.Step != 33 || after.Devices[0].Health != "healthy" || after.Devices[1].Cordoned {
		t.Fatalf("post-snapshot fold = %+v", after)
	}
	// Empty and nil images need no record.
	if _, ok := FleetHealthSnapshotRecord(nil, time.Time{}); ok {
		t.Fatal("nil image produced a record")
	}
	if _, ok := FleetHealthSnapshotRecord(&FleetHealth{}, time.Time{}); ok {
		t.Fatal("empty image produced a record")
	}
}
