package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

func appendN(t *testing.T, j *Journal, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("exp-%06d", i+1)
		if err := j.Append(Record{Op: OpSubmit, ID: id, Config: json.RawMessage(`{"seed":7}`), IdemKey: "k-" + id}); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(Record{Op: OpState, ID: id, State: "running"}); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(Record{Op: OpState, ID: id, State: "done", Summary: json.RawMessage(`{"p99":1.5}`)}); err != nil {
			t.Fatal(err)
		}
	}
}

// lastSegment returns the path of the highest-numbered segment holding
// data (the previous incarnation's active segment after Close).
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for i := len(names) - 1; i >= 0; i-- {
		fi, err := os.Stat(filepath.Join(dir, names[i]))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > 0 {
			return filepath.Join(dir, names[i])
		}
	}
	t.Fatal("no non-empty segment")
	return ""
}

func TestRoundtripAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	j, recs := mustOpen(t, dir, Options{SegmentBytes: 256})
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	appendN(t, j, 10)
	if j.Segments() < 3 {
		t.Errorf("expected rotation with 256-byte segments, got %d segments", j.Segments())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs := mustOpen(t, dir, Options{SegmentBytes: 256})
	defer j2.Close()
	if want := 30; len(recs) != want {
		t.Fatalf("replayed %d records, want %d", len(recs), want)
	}
	images := Reduce(recs)
	if len(images) != 10 {
		t.Fatalf("reduced to %d jobs, want 10", len(images))
	}
	for _, im := range images {
		if im.State != "done" || im.Summary == nil || im.IdemKey != "k-"+im.ID {
			t.Errorf("job %s: state=%q summary=%s idem=%q", im.ID, im.State, im.Summary, im.IdemKey)
		}
	}
}

func TestTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	appendN(t, j, 3)
	j.Close()

	// Simulate a torn write: the tail of the last record is missing.
	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs := mustOpen(t, dir, Options{})
	defer j2.Close()
	if want := 8; len(recs) != want { // 9 written, tail record torn
		t.Fatalf("replayed %d records after torn tail, want %d", len(recs), want)
	}
	// The torn bytes must be gone from disk, so the next replay is clean.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= int64(len(data)) {
		t.Errorf("torn tail not truncated: %d bytes", fi.Size())
	}
}

func TestBitFlipMidFile(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	appendN(t, j, 4) // 12 records in one segment
	j.Close()

	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit roughly mid-file (inside some record's JSON).
	pos := len(data) / 2
	for data[pos] == '\n' {
		pos++
	}
	data[pos] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs := mustOpen(t, dir, Options{})
	defer j2.Close()
	if len(recs) == 0 || len(recs) >= 12 {
		t.Fatalf("bit flip mid-file: replayed %d records, want a strict prefix", len(recs))
	}
	// Appending must still work after recovery.
	if err := j2.Append(Record{Op: OpSubmit, ID: "exp-000099"}); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionDropsLaterSegments: a corrupt record in an early segment
// must not let records from later segments replay out from under it.
func TestCorruptionDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	appendN(t, j, 8)
	if j.Segments() < 3 {
		t.Fatalf("need multiple segments, got %d", j.Segments())
	}
	j.Close()

	// Corrupt the first non-empty segment's first record payload.
	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	first := filepath.Join(dir, names[0])
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[FrameHeaderLen+2] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs := mustOpen(t, dir, Options{SegmentBytes: 256})
	defer j2.Close()
	if len(recs) != 0 {
		t.Fatalf("corrupt first record must drop everything, replayed %d", len(recs))
	}
}

func TestEmptySegment(t *testing.T) {
	dir := t.TempDir()
	// A crash immediately after Open leaves an empty active segment.
	j, _ := mustOpen(t, dir, Options{})
	j.Close()
	j, _ = mustOpen(t, dir, Options{})
	j.Close()

	j3, recs := mustOpen(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("empty segments replayed %d records", len(recs))
	}
	if err := j3.Append(Record{Op: OpSubmit, ID: "exp-000001"}); err != nil {
		t.Fatal(err)
	}
	j3.Close()
	j4, recs := mustOpen(t, dir, Options{})
	defer j4.Close()
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
}

func TestCompactionAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	appendN(t, j, 12)
	segsBefore, sizeBefore := j.Segments(), j.SizeBytes()
	if segsBefore < 4 {
		t.Fatalf("need several segments before compaction, got %d", segsBefore)
	}

	// Compact down to only the last 2 jobs (the rest "evicted").
	if err := j.Compact(SnapshotRecords(Reduce(liveRecords(t, 12)[30:]))); err != nil {
		t.Fatal(err)
	}
	if j.Segments() != 1 {
		t.Errorf("segments after compaction = %d, want 1", j.Segments())
	}
	if j.SizeBytes() >= sizeBefore {
		t.Errorf("compaction did not shrink the journal: %d -> %d", sizeBefore, j.SizeBytes())
	}
	// Appends continue into the compacted segment.
	if err := j.Append(Record{Op: OpSubmit, ID: "exp-000099"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, replayed := mustOpen(t, dir, Options{})
	defer j2.Close()
	images := Reduce(replayed)
	if len(images) != 3 {
		t.Fatalf("post-compaction replay has %d jobs, want 3", len(images))
	}
	for _, im := range images[:2] {
		if im.State != "done" || im.Summary == nil {
			t.Errorf("compacted job %s lost state: %q %s", im.ID, im.State, im.Summary)
		}
	}
}

// liveRecords regenerates the record stream appendN writes, for building
// compaction snapshots in tests.
func liveRecords(t *testing.T, n int) []Record {
	t.Helper()
	var recs []Record
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("exp-%06d", i+1)
		recs = append(recs,
			Record{Op: OpSubmit, ID: id, Config: json.RawMessage(`{"seed":7}`), IdemKey: "k-" + id},
			Record{Op: OpState, ID: id, State: "running"},
			Record{Op: OpState, ID: id, State: "done", Summary: json.RawMessage(`{"p99":1.5}`)})
	}
	return recs
}

// TestReduceOrderings drives Reduce through every state-transition
// ordering the server can journal, including the recovery and
// mid-compaction shapes.
func TestReduceOrderings(t *testing.T) {
	sub := func(id string) Record {
		return Record{Op: OpSubmit, ID: id, Config: json.RawMessage(`{}`), IdemKey: "k" + id, Time: time.Unix(1, 0)}
	}
	st := func(id, state string, restarts int) Record {
		r := Record{Op: OpState, ID: id, State: state, Restarts: restarts, Time: time.Unix(2, 0)}
		if state == "failed" {
			r.Error = "boom"
		}
		if state == "done" {
			r.Summary = json.RawMessage(`{"ok":true}`)
		}
		return r
	}
	cases := []struct {
		name     string
		recs     []Record
		state    string
		restarts int
		err      string
		summary  bool
	}{
		{"submitted only", []Record{sub("a")}, "queued", 0, "", false},
		{"queued->running", []Record{sub("a"), st("a", "running", 0)}, "running", 0, "", false},
		{"running->done", []Record{sub("a"), st("a", "running", 0), st("a", "done", 0)}, "done", 0, "", true},
		{"running->failed", []Record{sub("a"), st("a", "running", 0), st("a", "failed", 0)}, "failed", 0, "boom", false},
		{"queued->canceled", []Record{sub("a"), st("a", "canceled", 0)}, "canceled", 0, "", false},
		{"crash recovery requeue", []Record{sub("a"), st("a", "running", 0), st("a", "queued", 1)}, "queued", 1, "", false},
		{"recovered rerun done", []Record{sub("a"), st("a", "running", 0), st("a", "queued", 1), st("a", "running", 1), st("a", "done", 1)}, "done", 1, "", true},
		{"double crash", []Record{sub("a"), st("a", "running", 0), st("a", "queued", 1), st("a", "running", 1), st("a", "queued", 2)}, "queued", 2, "", false},
		{"duplicate submit after compaction", []Record{sub("a"), st("a", "done", 0), sub("a"), st("a", "done", 0)}, "done", 0, "", true},
		{"state before submit (compacted prefix)", []Record{st("a", "running", 0), sub("a")}, "running", 0, "", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			images := Reduce(c.recs)
			if len(images) != 1 {
				t.Fatalf("reduced to %d jobs, want 1", len(images))
			}
			im := images[0]
			if im.State != c.state || im.Restarts != c.restarts || im.Error != c.err {
				t.Errorf("got state=%q restarts=%d err=%q, want %q/%d/%q",
					im.State, im.Restarts, im.Error, c.state, c.restarts, c.err)
			}
			if (im.Summary != nil) != c.summary {
				t.Errorf("summary presence = %v, want %v", im.Summary != nil, c.summary)
			}
			if im.Config == nil {
				t.Error("config lost in reduction")
			}
			// Snapshot + re-reduce must be a fixed point.
			again := Reduce(SnapshotRecords(images))
			if len(again) != 1 || again[0].State != im.State || again[0].Restarts != im.Restarts {
				t.Errorf("snapshot not a fixed point: %+v vs %+v", again[0], im)
			}
		})
	}
}

// TestGroupCommitConcurrentAppends hammers Append from many goroutines;
// everything must replay, in a consistent per-job order.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{SegmentBytes: 4096})
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := fmt.Sprintf("exp-%02d-%03d", w, i)
				if err := j.Append(Record{Op: OpSubmit, ID: id}); err != nil {
					t.Error(err)
					return
				}
				if err := j.Append(Record{Op: OpState, ID: id, State: "done"}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	j.Close()

	j2, recs := mustOpen(t, dir, Options{})
	defer j2.Close()
	if want := workers * per * 2; len(recs) != want {
		t.Fatalf("replayed %d records, want %d", len(recs), want)
	}
	for _, im := range Reduce(recs) {
		if im.State != "done" {
			t.Errorf("job %s: %q", im.ID, im.State)
		}
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	j.Close()
	if err := j.Append(Record{Op: OpSubmit, ID: "x"}); err == nil {
		t.Fatal("append after close must fail")
	}
	if err := j.Close(); err != nil { // double close is fine
		t.Fatal(err)
	}
}

func TestFrameEncoding(t *testing.T) {
	payload := []byte(`{"op":"submit","id":"exp-000001"}`)
	frame := EncodeFrame(payload)
	recs, valid, ok := decodeFrames(frame)
	if !ok || len(recs) != 1 || valid != int64(len(frame)) {
		t.Fatalf("roundtrip failed: ok=%v n=%d valid=%d", ok, len(recs), valid)
	}
	if !bytes.HasSuffix(frame, []byte("\n")) {
		t.Error("frame must end in newline")
	}
	// Garbage header is corrupt at offset 0.
	if _, valid, ok := decodeFrames([]byte("zzzz")); ok || valid != 0 {
		t.Errorf("garbage decoded: ok=%v valid=%d", ok, valid)
	}
}
