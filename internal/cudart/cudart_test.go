package cudart

import (
	"testing"

	"orion/internal/gpu"
	"orion/internal/kernels"
	"orion/internal/sim"
)

func newCtx(t *testing.T) (*sim.Engine, *Context) {
	t.Helper()
	eng := sim.NewEngine()
	dev, err := gpu.NewDevice(eng, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	return eng, NewContext(dev)
}

func kdesc(id int, dur sim.Duration) *kernels.Descriptor {
	return &kernels.Descriptor{
		ID: id, Name: "k", Op: kernels.OpKernel,
		Launch:   kernels.LaunchConfig{Blocks: 40, ThreadsPerBlock: 256, RegsPerThread: 32},
		Duration: dur, ComputeUtil: 0.5, MemBWUtil: 0.3,
	}
}

func cdesc(id int, op kernels.Op, bytes int64) *kernels.Descriptor {
	return &kernels.Descriptor{ID: id, Name: "cp", Op: op, Bytes: bytes}
}

func TestLaunchKernelCompletes(t *testing.T) {
	eng, ctx := newCtx(t)
	s := ctx.StreamCreate()
	var done sim.Time
	if err := ctx.LaunchKernel(kdesc(1, sim.Micros(100)), s, func(at sim.Time) { done = at }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if done == 0 {
		t.Fatal("kernel never completed")
	}
}

func TestLaunchOnForeignStream(t *testing.T) {
	eng, ctx := newCtx(t)
	_, other := newCtx(t)
	s := other.StreamCreate()
	if err := ctx.LaunchKernel(kdesc(1, sim.Micros(10)), s, nil); err == nil {
		t.Fatal("foreign stream accepted")
	}
	if err := ctx.LaunchKernel(kdesc(1, sim.Micros(10)), nil, nil); err == nil {
		t.Fatal("nil stream accepted")
	}
	eng.Run()
}

func TestStreamPriorities(t *testing.T) {
	_, ctx := newCtx(t)
	hi := ctx.StreamCreateWithPriority(3)
	lo := ctx.StreamCreate()
	if hi.Priority() != 3 || lo.Priority() != 0 {
		t.Fatalf("priorities: hi=%d lo=%d", hi.Priority(), lo.Priority())
	}
}

func TestStreamPendingAndIdle(t *testing.T) {
	eng, ctx := newCtx(t)
	s := ctx.StreamCreate()
	if !s.Idle() {
		t.Fatal("fresh stream not idle")
	}
	ctx.LaunchKernel(kdesc(1, sim.Micros(100)), s, nil)
	ctx.LaunchKernel(kdesc(2, sim.Micros(100)), s, nil)
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	eng.Run()
	if !s.Idle() {
		t.Fatal("stream not idle after drain")
	}
}

func TestMemcpyValidation(t *testing.T) {
	eng, ctx := newCtx(t)
	s := ctx.StreamCreate()
	if err := ctx.Memcpy(kdesc(1, 10), s, nil); err == nil {
		t.Fatal("memcpy with kernel descriptor accepted")
	}
	if err := ctx.MemcpyAsync(cdesc(2, kernels.OpMemcpyH2D, 1024), nil, nil); err == nil {
		t.Fatal("nil stream accepted")
	}
	if err := ctx.Memcpy(cdesc(3, kernels.OpMemcpyH2D, 1024), s, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
}

func TestMemsetValidation(t *testing.T) {
	eng, ctx := newCtx(t)
	s := ctx.StreamCreate()
	if err := ctx.Memset(cdesc(1, kernels.OpMemcpyH2D, 10), s, nil); err == nil {
		t.Fatal("memset with memcpy descriptor accepted")
	}
	var done bool
	if err := ctx.Memset(cdesc(2, kernels.OpMemset, 1<<20), s, func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done {
		t.Fatal("memset never completed")
	}
}

func TestMallocReservesAndFreeReleases(t *testing.T) {
	eng, ctx := newCtx(t)
	s := ctx.StreamCreate()
	a, err := ctx.Malloc(4<<30, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Device().AllocatedBytes() != 4<<30 {
		t.Fatalf("allocated = %d", ctx.Device().AllocatedBytes())
	}
	if a.Bytes() != 4<<30 {
		t.Fatalf("Bytes() = %d", a.Bytes())
	}
	var freedAt sim.Time
	if err := ctx.Free(a, s, func(at sim.Time) { freedAt = at }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if ctx.Device().AllocatedBytes() != 0 {
		t.Fatalf("allocated after free = %d", ctx.Device().AllocatedBytes())
	}
	if freedAt == 0 {
		t.Fatal("free callback never fired")
	}
}

func TestMallocOOM(t *testing.T) {
	eng, ctx := newCtx(t)
	s := ctx.StreamCreate()
	if _, err := ctx.Malloc(20<<30, s, nil); err == nil {
		t.Fatal("over-capacity malloc accepted")
	}
	if _, err := ctx.Malloc(0, s, nil); err == nil {
		t.Fatal("zero-byte malloc accepted")
	}
	eng.Run()
}

func TestDoubleFree(t *testing.T) {
	eng, ctx := newCtx(t)
	s := ctx.StreamCreate()
	a, err := ctx.Malloc(1<<20, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Free(a, s, nil); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Free(a, s, nil); err == nil {
		t.Fatal("double free accepted")
	}
	if err := ctx.Free(nil, s, nil); err == nil {
		t.Fatal("nil free accepted")
	}
	eng.Run()
}

func TestEventQuerySemantics(t *testing.T) {
	eng, ctx := newCtx(t)
	s := ctx.StreamCreate()
	e := ctx.EventCreate()
	if !e.Query() {
		t.Fatal("unrecorded event must query true (CUDA semantics)")
	}
	ctx.LaunchKernel(kdesc(1, sim.Millis(1)), s, nil)
	if err := ctx.EventRecord(e, s); err != nil {
		t.Fatal(err)
	}
	if e.Query() {
		t.Fatal("event complete before the kernel ahead of it")
	}
	eng.Run()
	if !e.Query() {
		t.Fatal("event incomplete after drain")
	}
	if e.CompletedAt() < sim.Time(sim.Millis(1)) {
		t.Fatalf("event completed at %v, before the 1ms kernel", e.CompletedAt())
	}
}

func TestEventRerecordResets(t *testing.T) {
	eng, ctx := newCtx(t)
	s := ctx.StreamCreate()
	e := ctx.EventCreate()
	ctx.EventRecord(e, s)
	eng.Run()
	if !e.Query() {
		t.Fatal("event incomplete")
	}
	ctx.LaunchKernel(kdesc(1, sim.Millis(1)), s, nil)
	ctx.EventRecord(e, s)
	if e.Query() {
		t.Fatal("re-recorded event did not reset")
	}
	eng.Run()
	if !e.Query() {
		t.Fatal("re-recorded event never completed")
	}
}

func TestEventOnComplete(t *testing.T) {
	eng, ctx := newCtx(t)
	s := ctx.StreamCreate()
	e := ctx.EventCreate()
	ctx.LaunchKernel(kdesc(1, sim.Millis(1)), s, nil)
	ctx.EventRecord(e, s)
	var fired sim.Time
	e.OnComplete(func(at sim.Time) { fired = at })
	eng.Run()
	if fired == 0 {
		t.Fatal("OnComplete never fired")
	}
	// Already-complete event: immediate callback.
	count := 0
	e.OnComplete(func(sim.Time) { count++ })
	if count != 1 {
		t.Fatal("OnComplete on completed event not immediate")
	}
	e.OnComplete(nil) // must not panic
}

func TestEventRecordValidation(t *testing.T) {
	_, ctx := newCtx(t)
	s := ctx.StreamCreate()
	if err := ctx.EventRecord(nil, s); err == nil {
		t.Fatal("nil event accepted")
	}
	if err := ctx.EventRecord(ctx.EventCreate(), nil); err == nil {
		t.Fatal("nil stream accepted")
	}
}

func TestStreamSynchronize(t *testing.T) {
	eng, ctx := newCtx(t)
	s := ctx.StreamCreate()
	ctx.LaunchKernel(kdesc(1, sim.Millis(2)), s, nil)
	var at sim.Time
	if err := ctx.StreamSynchronize(s, func(tt sim.Time) { at = tt }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if at < sim.Time(sim.Millis(2)) {
		t.Fatalf("synchronize fired at %v, before the 2ms kernel", at)
	}
}

func TestDeviceSynchronizeWaitsForAllStreams(t *testing.T) {
	eng, ctx := newCtx(t)
	s1, s2 := ctx.StreamCreate(), ctx.StreamCreate()
	ctx.LaunchKernel(kdesc(1, sim.Millis(1)), s1, nil)
	ctx.LaunchKernel(kdesc(2, sim.Millis(3)), s2, nil)
	var at sim.Time
	if err := ctx.DeviceSynchronize(func(tt sim.Time) { at = tt }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if at < sim.Time(sim.Millis(3)) {
		t.Fatalf("device sync at %v, before the slowest stream drained", at)
	}
}

func TestDeviceSynchronizeNoStreams(t *testing.T) {
	_, ctx := newCtx(t)
	fired := false
	if err := ctx.DeviceSynchronize(func(sim.Time) { fired = true }); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("device sync with no streams should complete immediately")
	}
}

// End-to-end: a mini inference request through the cudart API — H2D input
// copy, kernels, D2H result copy, stream sync — with sensible timing.
func TestMiniRequestLifecycle(t *testing.T) {
	eng, ctx := newCtx(t)
	s := ctx.StreamCreate()
	if err := ctx.MemcpyAsync(cdesc(0, kernels.OpMemcpyH2D, 1_200_000), s, nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := ctx.LaunchKernel(kdesc(i, sim.Micros(200)), s, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctx.MemcpyAsync(cdesc(6, kernels.OpMemcpyD2H, 4000), s, nil); err != nil {
		t.Fatal(err)
	}
	var done sim.Time
	ctx.StreamSynchronize(s, func(at sim.Time) { done = at })
	eng.Run()
	// copy ~110us + 5 kernels ~1.015ms + tiny d2h ~10us
	if done < sim.Time(sim.Millis(1.1)) || done > sim.Time(sim.Millis(1.3)) {
		t.Fatalf("request completed at %v, want ~1.14ms", done)
	}
}

// Re-recording an event while its previous marker is still in flight must
// invalidate the old recording (CUDA's move-the-event semantics): the
// event completes only when the NEW marker does.
func TestEventRerecordInvalidatesInFlightMarker(t *testing.T) {
	eng, ctx := newCtx(t)
	s := ctx.StreamCreate()
	e := ctx.EventCreate()
	ctx.LaunchKernel(kdesc(1, sim.Millis(1)), s, nil)
	if err := ctx.EventRecord(e, s); err != nil {
		t.Fatal(err)
	}
	// Re-record behind a second kernel before the first marker fires.
	ctx.LaunchKernel(kdesc(2, sim.Millis(1)), s, nil)
	if err := ctx.EventRecord(e, s); err != nil {
		t.Fatal(err)
	}
	// Run until just after the first kernel (and the superseded marker).
	eng.RunUntil(sim.Time(sim.Millis(1.5)))
	if e.Query() {
		t.Fatal("superseded marker completed the event")
	}
	eng.Run()
	if !e.Query() {
		t.Fatal("event never completed")
	}
	if e.CompletedAt() < sim.Time(sim.Millis(2)) {
		t.Fatalf("event completed at %v, before the second kernel", e.CompletedAt())
	}
}

func TestFreeBytes(t *testing.T) {
	eng, ctx := newCtx(t)
	s := ctx.StreamCreate()
	if _, err := ctx.Malloc(1<<20, s, nil); err != nil {
		t.Fatal(err)
	}
	if err := ctx.FreeBytes(2<<20, s, nil); err == nil {
		t.Fatal("over-free accepted")
	}
	var done sim.Time
	if err := ctx.FreeBytes(1<<20, s, func(at sim.Time) { done = at }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if done == 0 {
		t.Fatal("FreeBytes never completed")
	}
	if ctx.Device().AllocatedBytes() != 0 {
		t.Fatalf("allocated %d after FreeBytes", ctx.Device().AllocatedBytes())
	}
	// Zero-byte release is a device-synchronizing no-op.
	if err := ctx.FreeBytes(0, s, nil); err != nil {
		t.Fatal(err)
	}
	if err := ctx.FreeBytes(1, nil, nil); err == nil {
		t.Fatal("nil stream accepted")
	}
	eng.Run()
}
