package cudart

import (
	"errors"
	"fmt"
	"testing"

	"orion/internal/kernels"
	"orion/internal/sim"
)

// Every shim error must expose its taxonomy sentinel through errors.Is —
// the contract recovery paths are built on.
func TestTypedErrorTaxonomy(t *testing.T) {
	eng, ctx := newCtx(t)
	_, other := newCtx(t)
	s := ctx.StreamCreate()

	if err := ctx.LaunchKernel(kdesc(1, sim.Micros(10)), other.StreamCreate(), nil); !errors.Is(err, ErrForeignStream) {
		t.Errorf("foreign-stream launch: %v, want ErrForeignStream", err)
	}
	if err := ctx.Memcpy(kdesc(1, 10), s, nil); !errors.Is(err, ErrInvalidValue) {
		t.Errorf("memcpy with kernel descriptor: %v, want ErrInvalidValue", err)
	}
	if _, err := ctx.Malloc(0, s, nil); !errors.Is(err, ErrInvalidValue) {
		t.Errorf("zero-byte malloc: %v, want ErrInvalidValue", err)
	}

	// A genuine capacity OOM is NOT transient: there is no point retrying
	// until someone frees memory.
	_, err := ctx.Malloc(20<<30, s, nil)
	if !errors.Is(err, ErrOOM) {
		t.Errorf("over-capacity malloc: %v, want ErrOOM", err)
	}
	if IsTransient(err) {
		t.Errorf("capacity OOM classified transient: %v", err)
	}

	a, err := ctx.Malloc(1<<20, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Free(a, s, nil); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Free(a, s, nil); !errors.Is(err, ErrDoubleFree) {
		t.Errorf("double free: %v, want ErrDoubleFree", err)
	}
	if err := ctx.Free(nil, s, nil); !errors.Is(err, ErrForeignAllocation) {
		t.Errorf("nil free: %v, want ErrForeignAllocation", err)
	}

	// An allocation from another context is foreign here.
	b, err := other.Malloc(1<<20, other.StreamCreate(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Free(b, s, nil); !errors.Is(err, ErrForeignAllocation) {
		t.Errorf("foreign-allocation free: %v, want ErrForeignAllocation", err)
	}
	eng.Run()
}

// The fault hook gates launches and allocations: its error is returned
// verbatim, so an injected transient failure classifies as both its
// taxonomy sentinel and ErrTransient.
func TestFaultHookGatesLaunchAndAlloc(t *testing.T) {
	eng, ctx := newCtx(t)
	s := ctx.StreamCreate()
	var launches, allocs int
	ctx.SetFaultHook(func(p InjectPoint, desc *kernels.Descriptor) error {
		switch p {
		case InjectLaunch:
			launches++
			return fmt.Errorf("test: %w (%w)", ErrLaunchFailed, ErrTransient)
		case InjectAlloc:
			allocs++
			return fmt.Errorf("test: %w (%w)", ErrOOM, ErrTransient)
		}
		return nil
	})

	err := ctx.LaunchKernel(kdesc(1, sim.Micros(10)), s, nil)
	if !errors.Is(err, ErrLaunchFailed) || !IsTransient(err) {
		t.Errorf("hooked launch: %v, want ErrLaunchFailed + transient", err)
	}
	_, err = ctx.Malloc(1<<20, s, nil)
	if !errors.Is(err, ErrOOM) || !IsTransient(err) {
		t.Errorf("hooked malloc: %v, want ErrOOM + transient", err)
	}
	if launches != 1 || allocs != 1 {
		t.Errorf("hook consulted launches=%d allocs=%d, want 1/1", launches, allocs)
	}

	// Removing the hook restores normal operation.
	ctx.SetFaultHook(nil)
	if err := ctx.LaunchKernel(kdesc(2, sim.Micros(10)), s, nil); err != nil {
		t.Errorf("launch after hook removal: %v", err)
	}
	if _, err := ctx.Malloc(1<<20, s, nil); err != nil {
		t.Errorf("malloc after hook removal: %v", err)
	}
	eng.Run()
}

// The hook must not intercept validation failures: a foreign stream is
// rejected before the hook runs.
func TestFaultHookAfterValidation(t *testing.T) {
	_, ctx := newCtx(t)
	called := false
	ctx.SetFaultHook(func(InjectPoint, *kernels.Descriptor) error {
		called = true
		return nil
	})
	if err := ctx.LaunchKernel(kdesc(1, sim.Micros(10)), nil, nil); !errors.Is(err, ErrForeignStream) {
		t.Fatalf("nil stream: %v", err)
	}
	if called {
		t.Error("fault hook consulted for an invalid launch")
	}
}
