package cudart

import (
	"errors"

	"orion/internal/kernels"
)

// The typed error taxonomy of the CUDA-runtime shim. Every error the shim
// returns wraps one of these sentinels, so callers branch with errors.Is
// instead of string matching — the contract schedulers and the fault
// injector build their recovery paths on.
var (
	// ErrForeignStream: the stream handle is nil or belongs to another
	// context (cudaErrorInvalidResourceHandle).
	ErrForeignStream = errors.New("foreign or nil stream")
	// ErrForeignAllocation: the allocation handle is nil or belongs to
	// another context.
	ErrForeignAllocation = errors.New("foreign or nil allocation")
	// ErrOOM: device memory is exhausted (cudaErrorMemoryAllocation).
	ErrOOM = errors.New("out of device memory")
	// ErrDoubleFree: the allocation was already freed.
	ErrDoubleFree = errors.New("double free")
	// ErrLaunchFailed: the kernel launch failed (cudaErrorLaunchFailure).
	ErrLaunchFailed = errors.New("kernel launch failed")
	// ErrInvalidValue: a descriptor argument is malformed for the call
	// (cudaErrorInvalidValue).
	ErrInvalidValue = errors.New("invalid value")

	// ErrTransient marks an error as retryable: the condition is expected
	// to clear on its own (an injected fault window, a momentary driver
	// hiccup). Injected failures wrap both their taxonomy sentinel and
	// ErrTransient; a genuine capacity OOM wraps only ErrOOM.
	ErrTransient = errors.New("transient condition")
)

// IsTransient reports whether the error is worth retrying after a backoff
// — the predicate drivers and schedulers use to separate recoverable
// faults from programming errors.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// InjectPoint identifies an interception site where a fault hook may fail
// a call.
type InjectPoint int

const (
	// InjectLaunch gates kernel launches (cudaLaunchKernel).
	InjectLaunch InjectPoint = iota
	// InjectAlloc gates device memory allocations (cudaMalloc).
	InjectAlloc
)

func (p InjectPoint) String() string {
	switch p {
	case InjectLaunch:
		return "launch"
	case InjectAlloc:
		return "alloc"
	default:
		return "inject-point(?)"
	}
}

// FaultHook decides whether a runtime call fails before it reaches the
// device. A nil return lets the call proceed; a non-nil return is handed
// to the caller verbatim, so hooks must wrap the matching taxonomy
// sentinel (ErrLaunchFailed for InjectLaunch, ErrOOM for InjectAlloc) and
// ErrTransient when the failure is retryable.
type FaultHook func(p InjectPoint, desc *kernels.Descriptor) error

// SetFaultHook installs (or, with nil, removes) the context's fault hook.
func (c *Context) SetFaultHook(h FaultHook) { c.fault = h }
