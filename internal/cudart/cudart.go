// Package cudart provides a CUDA-runtime-style API over the simulated GPU
// device: streams with priorities, kernel launches, synchronous and
// asynchronous memory operations, and CUDA events.
//
// This is the surface the real Orion intercepts with dynamically linked
// wrappers (§5.3); here it is the surface through which schedulers and
// example applications drive the device model. All "blocking" calls take
// completion callbacks because everything runs inside the discrete-event
// engine: a caller models blocking by not issuing further work until the
// callback fires.
package cudart

import (
	"fmt"

	"orion/internal/gpu"
	"orion/internal/kernels"
	"orion/internal/sim"
)

// Context wraps one GPU device, mirroring a CUDA context.
type Context struct {
	dev     *gpu.Device
	streams []*Stream
	// fault, when non-nil, may fail launches and allocations before they
	// reach the device (the fault-injection seam).
	fault FaultHook
}

// NewContext creates a context on the device.
func NewContext(dev *gpu.Device) *Context {
	return &Context{dev: dev}
}

// Device returns the underlying device.
func (c *Context) Device() *gpu.Device { return c.dev }

// Stream is a CUDA stream handle.
type Stream struct {
	ctx *Context
	gs  *gpu.Stream
}

// StreamCreateWithPriority creates a stream; higher priority dispatches
// first, mirroring cudaStreamCreateWithPriority.
func (c *Context) StreamCreateWithPriority(priority int) *Stream {
	s := &Stream{ctx: c, gs: c.dev.CreateStream(priority)}
	c.streams = append(c.streams, s)
	return s
}

// StreamCreate creates a default-priority stream.
func (c *Context) StreamCreate() *Stream { return c.StreamCreateWithPriority(0) }

// Priority returns the stream's priority.
func (s *Stream) Priority() int { return s.gs.Priority() }

// Pending reports queued-but-incomplete operations on the stream.
func (s *Stream) Pending() int { return s.gs.Pending() }

// Idle reports whether the stream has drained.
func (s *Stream) Idle() bool { return s.gs.Idle() }

// LaunchKernel submits a kernel to a stream (cudaLaunchKernel). onComplete,
// if non-nil, fires when the kernel finishes on the device.
func (c *Context) LaunchKernel(desc *kernels.Descriptor, s *Stream, onComplete func(sim.Time)) error {
	if s == nil || s.ctx != c {
		return fmt.Errorf("cudart: launch: %w", ErrForeignStream)
	}
	if c.fault != nil {
		if err := c.fault(InjectLaunch, desc); err != nil {
			return err
		}
	}
	return c.dev.SubmitKernel(s.gs, desc, onComplete)
}

// Memcpy submits a synchronous copy (cudaMemcpy): kernel dispatch stalls
// while the transfer is in flight, and the caller should treat onComplete
// as the unblock point.
func (c *Context) Memcpy(desc *kernels.Descriptor, s *Stream, onComplete func(sim.Time)) error {
	return c.memcpy(desc, s, true, onComplete)
}

// MemcpyAsync submits an asynchronous copy (cudaMemcpyAsync).
func (c *Context) MemcpyAsync(desc *kernels.Descriptor, s *Stream, onComplete func(sim.Time)) error {
	return c.memcpy(desc, s, false, onComplete)
}

func (c *Context) memcpy(desc *kernels.Descriptor, s *Stream, sync bool, onComplete func(sim.Time)) error {
	if s == nil || s.ctx != c {
		return fmt.Errorf("cudart: memcpy: %w", ErrForeignStream)
	}
	if desc == nil || !desc.Op.IsMemcpy() {
		return fmt.Errorf("cudart: memcpy with non-memcpy descriptor: %w", ErrInvalidValue)
	}
	return c.dev.SubmitCopy(s.gs, desc, sync, onComplete)
}

// Memset submits a device-memory fill (cudaMemsetAsync semantics).
func (c *Context) Memset(desc *kernels.Descriptor, s *Stream, onComplete func(sim.Time)) error {
	if s == nil || s.ctx != c {
		return fmt.Errorf("cudart: memset: %w", ErrForeignStream)
	}
	if desc == nil || desc.Op != kernels.OpMemset {
		return fmt.Errorf("cudart: memset with wrong descriptor op %v: %w", descOp(desc), ErrInvalidValue)
	}
	return c.dev.SubmitCopy(s.gs, desc, false, onComplete)
}

func descOp(d *kernels.Descriptor) kernels.Op {
	if d == nil {
		return kernels.Op(-1)
	}
	return d.Op
}

// Allocation is a device memory allocation handle.
type Allocation struct {
	ctx   *Context
	bytes int64
	freed bool
}

// Bytes reports the allocation size.
func (a *Allocation) Bytes() int64 { return a.bytes }

// Malloc reserves device memory (cudaMalloc). The capacity check is
// immediate; the device-synchronizing cost of the allocation is modelled
// by a sync-op task, and onComplete fires when it finishes.
func (c *Context) Malloc(bytes int64, s *Stream, onComplete func(sim.Time)) (*Allocation, error) {
	if s == nil || s.ctx != c {
		return nil, fmt.Errorf("cudart: malloc: %w", ErrForeignStream)
	}
	if bytes <= 0 {
		return nil, fmt.Errorf("cudart: malloc of %d bytes: %w", bytes, ErrInvalidValue)
	}
	if c.fault != nil {
		if err := c.fault(InjectAlloc, &kernels.Descriptor{Name: "cudaMalloc", Op: kernels.OpMalloc, Bytes: bytes}); err != nil {
			return nil, err
		}
	}
	if err := c.dev.Reserve(bytes); err != nil {
		return nil, fmt.Errorf("cudart: malloc of %d bytes: %v: %w", bytes, err, ErrOOM)
	}
	a := &Allocation{ctx: c, bytes: bytes}
	desc := &kernels.Descriptor{Name: "cudaMalloc", Op: kernels.OpMalloc, Bytes: bytes}
	if err := c.dev.SubmitSyncOp(s.gs, desc, onComplete); err != nil {
		c.dev.Release(bytes)
		return nil, err
	}
	return a, nil
}

// Free releases an allocation (cudaFree); it also device-synchronizes.
func (c *Context) Free(a *Allocation, s *Stream, onComplete func(sim.Time)) error {
	if s == nil || s.ctx != c {
		return fmt.Errorf("cudart: free: %w", ErrForeignStream)
	}
	if a == nil || a.ctx != c {
		return fmt.Errorf("cudart: free: %w", ErrForeignAllocation)
	}
	if a.freed {
		return fmt.Errorf("cudart: free of %d bytes: %w", a.bytes, ErrDoubleFree)
	}
	a.freed = true
	desc := &kernels.Descriptor{Name: "cudaFree", Op: kernels.OpFree, Bytes: a.bytes}
	bytes := a.bytes
	return c.dev.SubmitSyncOp(s.gs, desc, func(at sim.Time) {
		c.dev.Release(bytes)
		if onComplete != nil {
			onComplete(at)
		}
	})
}

// FreeBytes releases device memory capacity by size rather than by
// allocation handle — the form workload traces carry, since they record
// profiled operation streams, not live pointers. Like Free, it
// device-synchronizes before completing.
func (c *Context) FreeBytes(bytes int64, s *Stream, onComplete func(sim.Time)) error {
	if s == nil || s.ctx != c {
		return fmt.Errorf("cudart: free: %w", ErrForeignStream)
	}
	if bytes < 0 || bytes > c.dev.AllocatedBytes() {
		return fmt.Errorf("cudart: freeing %d of %d allocated bytes: %w",
			bytes, c.dev.AllocatedBytes(), ErrInvalidValue)
	}
	desc := &kernels.Descriptor{Name: "cudaFree", Op: kernels.OpFree, Bytes: bytes}
	return c.dev.SubmitSyncOp(s.gs, desc, func(at sim.Time) {
		c.dev.Release(bytes)
		if onComplete != nil {
			onComplete(at)
		}
	})
}

// Event is a CUDA event: a marker recorded into a stream whose completion
// can be polled without blocking (cudaEventQuery) — the mechanism Orion
// uses to track outstanding best-effort kernels (§5.1.2).
type Event struct {
	recorded bool
	done     bool
	at       sim.Time
	waiters  []func(sim.Time)
	// gen invalidates in-flight recordings when the event is re-recorded:
	// only the marker from the latest EventRecord may complete the event,
	// matching CUDA's move-the-event semantics.
	gen uint64
}

// EventCreate returns a fresh event.
func (c *Context) EventCreate() *Event { return &Event{} }

// EventRecord records the event into the stream: it completes when every
// operation submitted to the stream before this call has completed.
// Re-recording a completed event resets it.
func (c *Context) EventRecord(e *Event, s *Stream) error {
	if s == nil || s.ctx != c {
		return fmt.Errorf("cudart: record: %w", ErrForeignStream)
	}
	if e == nil {
		return fmt.Errorf("cudart: record of nil event: %w", ErrInvalidValue)
	}
	e.recorded = true
	e.done = false
	e.gen++
	gen := e.gen
	return c.dev.SubmitMarker(s.gs, func(at sim.Time) {
		if e.gen != gen {
			return // superseded by a later EventRecord
		}
		e.done = true
		e.at = at
		ws := e.waiters
		e.waiters = nil
		for _, w := range ws {
			w(at)
		}
	})
}

// Query reports whether the event has completed (cudaEventQuery). An event
// that was never recorded reports true, matching CUDA.
func (e *Event) Query() bool {
	return !e.recorded || e.done
}

// CompletedAt reports when the event completed.
func (e *Event) CompletedAt() sim.Time { return e.at }

// OnComplete registers a callback for the event's completion. If the
// event is already complete (or never recorded), the callback is invoked
// immediately.
func (e *Event) OnComplete(cb func(sim.Time)) {
	if cb == nil {
		return
	}
	if e.Query() {
		cb(e.at)
		return
	}
	e.waiters = append(e.waiters, cb)
}

// StreamSynchronize invokes cb when every operation currently submitted to
// the stream has completed (cudaStreamSynchronize).
func (c *Context) StreamSynchronize(s *Stream, cb func(sim.Time)) error {
	if s == nil || s.ctx != c {
		return fmt.Errorf("cudart: synchronize: %w", ErrForeignStream)
	}
	return c.dev.SubmitMarker(s.gs, cb)
}

// DeviceSynchronize invokes cb when all work submitted to all of the
// context's streams has completed (cudaDeviceSynchronize).
func (c *Context) DeviceSynchronize(cb func(sim.Time)) error {
	pending := 0
	var fire sim.Time
	done := func(at sim.Time) {
		pending--
		if at > fire {
			fire = at
		}
		if pending == 0 && cb != nil {
			cb(fire)
		}
	}
	for _, s := range c.streams {
		pending++
		if err := c.dev.SubmitMarker(s.gs, done); err != nil {
			return err
		}
	}
	if pending == 0 {
		// No streams: already synchronized.
		if cb != nil {
			cb(c.dev.Engine().Now())
		}
	}
	return nil
}
