package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestMapCanonicalOrder checks results land in cell order no matter how
// many workers raced over the batch.
func TestMapCanonicalOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := Map(context.Background(), workers, 50, func() int { return 0 },
			func(_ context.Context, cell int, _ int) (int, error) {
				if cell%3 == 0 {
					time.Sleep(time.Millisecond) // skew completion order
				}
				return cell * 2, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*2 {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*2)
			}
		}
	}
}

// TestMapScratchPerWorker checks scratch values are built once per
// worker and never shared: each cell bumps its worker's private counter,
// and the per-worker counts must sum to n.
func TestMapScratchPerWorker(t *testing.T) {
	const n, workers = 40, 4
	var built atomic.Int64
	counters := make([]*int64, 0, workers)
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	scratch := func() *int64 {
		built.Add(1)
		c := new(int64)
		<-mu
		counters = append(counters, c)
		mu <- struct{}{}
		return c
	}
	_, err := Map(context.Background(), workers, n, scratch,
		func(_ context.Context, _ int, c *int64) (struct{}, error) {
			*c++ // no atomics: a shared scratch would trip the race detector
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if b := built.Load(); b > workers {
		t.Fatalf("scratch built %d times, want <= %d", b, workers)
	}
	var total int64
	for _, c := range counters {
		total += *c
	}
	if total != n {
		t.Fatalf("per-worker counts sum to %d, want %d", total, n)
	}
}

// TestMapLowestError checks the reported failure is the lowest-indexed
// real error, not a secondary cancellation from the fail-fast abort.
func TestMapLowestError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(context.Background(), 4, 30, func() struct{} { return struct{}{} },
		func(ctx context.Context, cell int, _ struct{}) (int, error) {
			switch cell {
			case 5, 17:
				return 0, fmt.Errorf("cell says: %w", boom)
			}
			return cell, nil
		})
	if err == nil {
		t.Fatal("want error")
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not *CellError", err)
	}
	if ce.Cell != 5 && ce.Cell != 17 {
		t.Fatalf("CellError.Cell = %d, want 5 or 17", ce.Cell)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("errors.Is(err, boom) = false for %v", err)
	}
}

// TestMapFailFast checks a cell failure cancels in-flight cells and
// skips unclaimed ones instead of running the batch to completion.
func TestMapFailFast(t *testing.T) {
	start := time.Now()
	_, err := Map(context.Background(), 2, 8, func() struct{} { return struct{}{} },
		func(ctx context.Context, cell int, _ struct{}) (int, error) {
			if cell == 0 {
				return 0, errors.New("first cell fails")
			}
			select {
			case <-ctx.Done(): // released by the fail-fast cancel
				return 0, ctx.Err()
			case <-time.After(5 * time.Second):
				return cell, nil
			}
		})
	if err == nil {
		t.Fatal("want error")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("batch took %v: fail-fast cancellation did not propagate", d)
	}
}

// TestMapParentCancel checks a canceled parent context surfaces (rather
// than hanging or returning partial results as success).
func TestMapParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 4, 10, func() struct{} { return struct{}{} },
		func(ctx context.Context, cell int, _ struct{}) (int, error) {
			return cell, ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMapDeadlineSurvivesWrapping checks errors.Is sees a deadline
// through the CellError wrapper — the server's parked-job logic depends
// on it.
func TestMapDeadlineSurvivesWrapping(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := Map(ctx, 2, 4, func() struct{} { return struct{}{} },
		func(ctx context.Context, cell int, _ struct{}) (int, error) {
			return 0, fmt.Errorf("run canceled: %w", ctx.Err())
		})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded through the wrapper", err)
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, 0,
		func() struct{} { t.Fatal("scratch built for empty batch"); return struct{}{} },
		func(_ context.Context, cell int, _ struct{}) (int, error) { return cell, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}
