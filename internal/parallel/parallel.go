// Package parallel provides the deterministic batch runner under every
// multi-core sweep in the repository: a bounded worker pool that
// executes independent cells — one (scheme, seed, workload-pair)
// simulation per cell — and merges results in canonical cell order.
//
// Determinism argument: each cell is a pure function of its index (the
// simulation engine is single-threaded and bit-deterministic per seed;
// pooled arenas reset to a bit-identical initial state), cells share no
// mutable state, and results land in a slice slot owned by exactly one
// cell. Scheduling therefore affects only wall-clock, never values:
// running at parallelism 1, 2, or NumCPU yields byte-identical merged
// output.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// CellError reports which cell of a batch failed. It unwraps to the
// cell's own error so errors.Is/As see through it (the server relies on
// errors.Is(err, context.DeadlineExceeded) to park deadline-hit jobs).
type CellError struct {
	// Cell is the canonical index of the failed cell.
	Cell int
	// Err is the cell's error.
	Err error
}

func (e *CellError) Error() string { return fmt.Sprintf("cell %d: %v", e.Cell, e.Err) }

func (e *CellError) Unwrap() error { return e.Err }

// Workers resolves a parallelism knob: n itself when positive,
// otherwise GOMAXPROCS (the "use all cores" default).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn over cells 0..n-1 on a bounded pool of workers
// (Workers(workers), capped at n) and returns the results in cell
// order. Each worker builds one scratch value (e.g. a pooled
// harness.Arena) at start and reuses it for every cell it claims, so
// scratch values are never shared between goroutines. Cells are claimed
// in index order off an atomic counter; completion order is free but
// results[i] is written only by cell i's owner, so the merged slice is
// canonical regardless of scheduling.
//
// The first cell failure cancels the context passed to the remaining
// cells (fail-fast). Map then reports the lowest-indexed failure that
// is not a secondary cancellation, wrapped in *CellError; if every
// recorded error is a cancellation (the parent ctx was canceled), the
// lowest-indexed one is reported. On error the partial results are
// discarded.
func Map[S, R any](ctx context.Context, workers, n int, scratch func() S,
	fn func(ctx context.Context, cell int, s S) (R, error)) ([]R, error) {

	results := make([]R, n)
	if n == 0 {
		return results, ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := scratch()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := cctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				r, err := runCell(cctx, i, s, fn)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()

	firstErr := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if firstErr < 0 {
			firstErr = i
		}
		if !errors.Is(err, context.Canceled) {
			return nil, &CellError{Cell: i, Err: err}
		}
	}
	if firstErr >= 0 {
		return nil, &CellError{Cell: firstErr, Err: errs[firstErr]}
	}
	return results, nil
}

// runCell invokes fn with a panic bulkhead: cells run on pool
// goroutines, where a caller's recover cannot reach, so a panicking
// cell would otherwise kill the whole process. It fails the batch as an
// ordinary error instead, stack attached.
func runCell[S, R any](ctx context.Context, i int, s S,
	fn func(ctx context.Context, cell int, s S) (R, error)) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panicked: %v\n%s", p, debug.Stack())
		}
	}()
	return fn(ctx, i, s)
}
