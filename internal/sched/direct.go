package sched

import (
	"fmt"

	"orion/internal/cudart"
	"orion/internal/kernels"
	"orion/internal/sim"
)

// Direct is the pass-through backend: every client submits straight to its
// own CUDA stream with no interposed scheduling. With one client per
// device this is the paper's "Ideal" dedicated-GPU configuration; with
// several clients on one device and priority mapping enabled it is the
// GPU-Streams-with-priorities configuration of the Figure 14 ablation.
type Direct struct {
	ctx *cudart.Context
	// UsePriorities maps client priority onto CUDA stream priority.
	// Disabled, all clients share the default priority (plain
	// GPU-Streams behaviour).
	UsePriorities bool
	// PerOpOverhead is added client-side to every submission,
	// modelling interception or runtime costs of derived backends.
	PerOpOverhead sim.Duration
	clients       []*directClient
}

// NewDirect creates a pass-through backend on the context.
func NewDirect(ctx *cudart.Context) *Direct {
	return &Direct{ctx: ctx, UsePriorities: true}
}

// Name implements Backend.
func (d *Direct) Name() string { return "direct" }

// Start implements Backend; Direct has no scheduler loop.
func (d *Direct) Start() {}

// Register implements Backend.
func (d *Direct) Register(cfg ClientConfig) (Client, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("sched: client %q has no model", cfg.Name)
	}
	prio := 0
	if d.UsePriorities && cfg.Priority == HighPriority {
		prio = 1
	}
	c := &directClient{
		backend: d,
		stream:  d.ctx.StreamCreateWithPriority(prio),
	}
	d.clients = append(d.clients, c)
	return c, nil
}

// Deregister implements Backend. Direct clients have no scheduler state
// beyond their stream, so removal only stops tracking them; in-flight
// stream work drains on the device.
func (d *Direct) Deregister(c Client) error {
	dc, ok := c.(*directClient)
	if !ok || dc.backend != d {
		return fmt.Errorf("sched: deregister of foreign client")
	}
	for i, have := range d.clients {
		if have == dc {
			d.clients = append(d.clients[:i], d.clients[i+1:]...)
			break
		}
	}
	return nil
}

type directClient struct {
	backend *Direct
	stream  *cudart.Stream
}

func (c *directClient) BeginRequest() {}

func (c *directClient) LaunchOverhead() sim.Duration { return c.backend.PerOpOverhead }

// CheckCapacity rejects a memory allocation that cannot fit on the
// device. Queue-based backends call it at interception time so the OOM
// surfaces to the submitting client synchronously (as cudaMalloc does)
// rather than failing deep inside a scheduling pass.
func CheckCapacity(ctx *cudart.Context, op *kernels.Descriptor) error {
	if op == nil || op.Op != kernels.OpMalloc {
		return nil
	}
	dev := ctx.Device()
	if dev.AllocatedBytes()+op.Bytes > dev.Spec().MemoryBytes {
		return fmt.Errorf("sched: malloc of %d bytes exceeds device memory (%d of %d in use): %w",
			op.Bytes, dev.AllocatedBytes(), dev.Spec().MemoryBytes, cudart.ErrOOM)
	}
	return nil
}

// SubmitTo maps an operation descriptor onto the right cudart call — the
// shared lowering used by every backend once an op is cleared to reach the
// device.
func SubmitTo(ctx *cudart.Context, s *cudart.Stream, op *kernels.Descriptor, done func(sim.Time)) error {
	switch op.Op {
	case kernels.OpKernel:
		return ctx.LaunchKernel(op, s, done)
	case kernels.OpMemcpyH2D, kernels.OpMemcpyD2H, kernels.OpMemcpyD2D:
		if op.Sync {
			return ctx.Memcpy(op, s, done)
		}
		return ctx.MemcpyAsync(op, s, done)
	case kernels.OpMemset:
		return ctx.Memset(op, s, done)
	case kernels.OpMalloc:
		_, err := ctx.Malloc(op.Bytes, s, done)
		return err
	case kernels.OpFree:
		// Workload streams carry free sizes, not allocation handles.
		if err := ctx.FreeBytes(op.Bytes, s, done); err != nil {
			return fmt.Errorf("sched: free: %w", err)
		}
		return nil
	default:
		return fmt.Errorf("sched: unsupported op %v: %w", op.Op, cudart.ErrInvalidValue)
	}
}

func (c *directClient) Submit(op *kernels.Descriptor, done func(sim.Time)) error {
	return SubmitTo(c.backend.ctx, c.stream, op, done)
}

func (c *directClient) EndRequest(cb func(sim.Time)) error {
	return c.backend.ctx.StreamSynchronize(c.stream, cb)
}
