package sched

import (
	"testing"

	"orion/internal/cudart"
	"orion/internal/gpu"
	"orion/internal/kernels"
	"orion/internal/sim"
	"orion/internal/trace"
	"orion/internal/workload"
)

func newRig(t *testing.T) (*sim.Engine, *cudart.Context) {
	t.Helper()
	eng := sim.NewEngine()
	eng.MaxEvents = 200_000_000
	dev, err := gpu.NewDevice(eng, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	return eng, cudart.NewContext(dev)
}

func TestDriverClosedLoopTraining(t *testing.T) {
	eng, ctx := newRig(t)
	be := NewDirect(ctx)
	cl, err := be.Register(ClientConfig{Name: "rn50", Priority: HighPriority, Model: workload.ResNet50Training()})
	if err != nil {
		t.Fatal(err)
	}
	be.Start()
	d, err := NewDriver(DriverConfig{
		Engine: eng, Client: cl, Model: workload.ResNet50Training(),
		Horizon: sim.Time(sim.Seconds(3)), Warmup: sim.Seconds(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	thr := d.Stats().Throughput()
	// Paper Table 4: dedicated ResNet50 training runs 10.3 iterations/sec.
	if thr < 9.0 || thr > 11.0 {
		t.Errorf("dedicated ResNet50 training = %.2f it/s, want ~10 (Table 4: 10.3)", thr)
	}
	if d.Stats().Latency.Count() == 0 {
		t.Fatal("no latencies recorded")
	}
}

func TestDriverOpenLoopInference(t *testing.T) {
	eng, ctx := newRig(t)
	be := NewDirect(ctx)
	model := workload.ResNet50Inference()
	cl, _ := be.Register(ClientConfig{Name: "rn50i", Priority: HighPriority, Model: model})
	be.Start()
	arr, _ := trace.NewPoisson(50, sim.NewRand(7))
	d, err := NewDriver(DriverConfig{
		Engine: eng, Client: cl, Model: model, Arrivals: arr,
		Horizon: sim.Time(sim.Seconds(3)), Warmup: sim.Seconds(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	thr := d.Stats().Throughput()
	if thr < 40 || thr > 60 {
		t.Errorf("throughput %.1f req/s, want ~50 (Poisson open loop)", thr)
	}
	// Dedicated latency: ~2ms of kernels + copies + overheads, light queueing.
	p50 := d.Stats().Latency.P50()
	if p50 < sim.Millis(2) || p50 > sim.Millis(4) {
		t.Errorf("dedicated p50 = %.2fms, want ~2.6ms", p50.Millis())
	}
}

func TestDriverWeightsAllocated(t *testing.T) {
	eng, ctx := newRig(t)
	be := NewDirect(ctx)
	model := workload.BERTInference()
	cl, _ := be.Register(ClientConfig{Name: "bert", Priority: HighPriority, Model: model})
	be.Start()
	d, _ := NewDriver(DriverConfig{
		Engine: eng, Client: cl, Model: model,
		Horizon: sim.Time(sim.Seconds(1)), Warmup: 0,
	})
	d.Start()
	eng.Run()
	if got := ctx.Device().AllocatedBytes(); got != model.WeightsBytes {
		t.Errorf("allocated %d bytes, want %d (weights)", got, model.WeightsBytes)
	}
}

func TestDriverSkipWeightAlloc(t *testing.T) {
	eng, ctx := newRig(t)
	be := NewDirect(ctx)
	model := workload.MobileNetV2Inference()
	cl, _ := be.Register(ClientConfig{Name: "m", Priority: BestEffort, Model: model})
	arr, _ := trace.NewUniform(100, sim.NewRand(1))
	d, _ := NewDriver(DriverConfig{
		Engine: eng, Client: cl, Model: model, Arrivals: arr,
		Horizon: sim.Time(sim.Seconds(1)), SkipWeightAlloc: true,
	})
	d.Start()
	eng.Run()
	if ctx.Device().AllocatedBytes() != 0 {
		t.Error("weights allocated despite SkipWeightAlloc")
	}
	if d.TotalCompleted() == 0 {
		t.Error("no requests completed")
	}
}

func TestDriverStopsAtHorizon(t *testing.T) {
	eng, ctx := newRig(t)
	be := NewDirect(ctx)
	model := workload.MobileNetV2Inference()
	cl, _ := be.Register(ClientConfig{Name: "m", Priority: BestEffort, Model: model})
	arr, _ := trace.NewUniform(100, sim.NewRand(2))
	horizon := sim.Time(sim.Seconds(1))
	d, _ := NewDriver(DriverConfig{Engine: eng, Client: cl, Model: model, Arrivals: arr, Horizon: horizon})
	d.Start()
	eng.Run()
	// ~100 rps for 1s: roughly 100 arrivals, all served (4ms each).
	if d.TotalCompleted() < 80 || d.TotalCompleted() > 110 {
		t.Errorf("completed %d requests, want ~95", d.TotalCompleted())
	}
	// No request should complete after roughly horizon + one request time.
	if eng.Now() > horizon.Add(sim.Millis(50)) {
		t.Errorf("engine ran to %v, far past horizon", eng.Now())
	}
}

func TestDriverQueueingUnderOverload(t *testing.T) {
	eng, ctx := newRig(t)
	be := NewDirect(ctx)
	model := workload.ResNet101Inference() // ~4.5ms per request
	cl, _ := be.Register(ClientConfig{Name: "r101", Priority: HighPriority, Model: model})
	arr, _ := trace.NewUniform(400, sim.NewRand(3)) // far beyond capacity
	d, _ := NewDriver(DriverConfig{
		Engine: eng, Client: cl, Model: model, Arrivals: arr,
		Horizon: sim.Time(sim.Seconds(2)), Warmup: sim.Seconds(0.5),
	})
	d.Start()
	eng.Run()
	// Overloaded: p99 must reflect queueing, far above service time.
	if d.Stats().Latency.P99() < sim.Millis(100) {
		t.Errorf("p99 = %v under 200rps overload, expected heavy queueing", d.Stats().Latency.P99())
	}
}

func TestDriverConfigValidation(t *testing.T) {
	eng, ctx := newRig(t)
	be := NewDirect(ctx)
	model := workload.ResNet50Inference()
	cl, _ := be.Register(ClientConfig{Name: "x", Model: model})
	cases := []DriverConfig{
		{Engine: nil, Client: cl, Model: model, Horizon: 1000},
		{Engine: eng, Client: nil, Model: model, Horizon: 1000},
		{Engine: eng, Client: cl, Model: nil, Horizon: 1000},
		{Engine: eng, Client: cl, Model: model, Horizon: 0},
		{Engine: eng, Client: cl, Model: model, Horizon: 1000, Warmup: 2000},
	}
	for i, cfg := range cases {
		if _, err := NewDriver(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDriverDoubleStart(t *testing.T) {
	eng, ctx := newRig(t)
	be := NewDirect(ctx)
	model := workload.ResNet50Inference()
	cl, _ := be.Register(ClientConfig{Name: "x", Model: model})
	d, _ := NewDriver(DriverConfig{Engine: eng, Client: cl, Model: model, Horizon: sim.Time(sim.Millis(100))})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestRegisterRequiresModel(t *testing.T) {
	_, ctx := newRig(t)
	be := NewDirect(ctx)
	if _, err := be.Register(ClientConfig{Name: "x"}); err == nil {
		t.Fatal("client without model accepted")
	}
}

func TestDirectPriorityMapping(t *testing.T) {
	_, ctx := newRig(t)
	be := NewDirect(ctx)
	hp, _ := be.Register(ClientConfig{Name: "hp", Priority: HighPriority, Model: workload.ResNet50Inference()})
	beC, _ := be.Register(ClientConfig{Name: "be", Priority: BestEffort, Model: workload.ResNet50Training()})
	if hp.(*directClient).stream.Priority() <= beC.(*directClient).stream.Priority() {
		t.Error("high-priority client did not get a higher-priority stream")
	}
	noPrio := NewDirect(ctx)
	noPrio.UsePriorities = false
	hp2, _ := noPrio.Register(ClientConfig{Name: "hp2", Priority: HighPriority, Model: workload.ResNet50Inference()})
	if hp2.(*directClient).stream.Priority() != 0 {
		t.Error("UsePriorities=false still mapped priority")
	}
}

func TestSubmitToAllOpKinds(t *testing.T) {
	eng, ctx := newRig(t)
	s := ctx.StreamCreate()
	ops := []*kernels.Descriptor{
		{ID: 0, Name: "m", Op: kernels.OpMalloc, Bytes: 1 << 20},
		{ID: 1, Name: "h2d", Op: kernels.OpMemcpyH2D, Bytes: 1 << 20, Sync: true},
		{ID: 2, Name: "k", Op: kernels.OpKernel,
			Launch:   kernels.LaunchConfig{Blocks: 8, ThreadsPerBlock: 128, RegsPerThread: 32},
			Duration: sim.Micros(50), ComputeUtil: 0.5, MemBWUtil: 0.2},
		{ID: 3, Name: "set", Op: kernels.OpMemset, Bytes: 4096},
		{ID: 4, Name: "d2d", Op: kernels.OpMemcpyD2D, Bytes: 4096},
		{ID: 5, Name: "d2h", Op: kernels.OpMemcpyD2H, Bytes: 4096},
		{ID: 6, Name: "f", Op: kernels.OpFree, Bytes: 1 << 20},
	}
	completed := 0
	for _, op := range ops {
		if err := SubmitTo(ctx, s, op, func(sim.Time) { completed++ }); err != nil {
			t.Fatalf("%s: %v", op.Name, err)
		}
	}
	eng.Run()
	if completed != len(ops) {
		t.Fatalf("completed %d of %d ops", completed, len(ops))
	}
	if ctx.Device().AllocatedBytes() != 0 {
		t.Fatalf("leaked %d bytes", ctx.Device().AllocatedBytes())
	}
}

func TestTrackerSyncFiresWhenDrained(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracker(eng)
	tr.OnSubmit()
	tr.OnSubmit()
	fired := false
	tr.Sync(func(sim.Time) { fired = true })
	tr.OnComplete(10)
	if fired {
		t.Fatal("sync fired with work outstanding")
	}
	tr.OnComplete(20)
	if !fired {
		t.Fatal("sync never fired")
	}
}

func TestTrackerSyncImmediateWhenIdle(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracker(eng)
	fired := false
	tr.Sync(func(sim.Time) { fired = true })
	if !fired {
		t.Fatal("idle sync not immediate")
	}
	tr.Sync(nil) // must not panic
}

func TestTrackerSyncOnlyWaitsForPriorOps(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracker(eng)
	tr.OnSubmit()
	fired := false
	tr.Sync(func(sim.Time) { fired = true })
	tr.OnSubmit() // submitted after the sync point
	tr.OnComplete(5)
	if !fired {
		t.Fatal("sync waited for an op submitted after the sync point")
	}
	if tr.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d, want 1", tr.Outstanding())
	}
}

func TestTrackerMultipleWaiters(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracker(eng)
	var order []int
	tr.OnSubmit()
	tr.Sync(func(sim.Time) { order = append(order, 1) })
	tr.OnSubmit()
	tr.Sync(func(sim.Time) { order = append(order, 2) })
	tr.OnComplete(1)
	tr.OnComplete(2)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("waiter order %v, want [1 2]", order)
	}
}

func TestPriorityString(t *testing.T) {
	if HighPriority.String() != "high-priority" || BestEffort.String() != "best-effort" {
		t.Fatal("Priority.String mismatch")
	}
}

// Stopping a driver mid-run abandons queued work; in-flight work drains
// and the engine still quiesces.
func TestDriverStopMidRun(t *testing.T) {
	eng, ctx := newRig(t)
	be := NewDirect(ctx)
	model := workload.ResNet50Training()
	cl, _ := be.Register(ClientConfig{Name: "t", Priority: HighPriority, Model: model})
	be.Start()
	d, _ := NewDriver(DriverConfig{
		Engine: eng, Client: cl, Model: model,
		Horizon: sim.Time(sim.Seconds(10)), Warmup: 0,
	})
	d.Start()
	eng.At(sim.Time(sim.Millis(350)), d.Stop)
	eng.Run()
	if !d.Stopped() {
		t.Fatal("driver not stopped")
	}
	// ~3 iterations in 350ms, plus the in-flight one draining.
	if n := d.TotalCompleted(); n < 3 || n > 5 {
		t.Fatalf("completed %d iterations, want ~4 then stop", n)
	}
	if eng.Now() > sim.Time(sim.Millis(600)) {
		t.Fatalf("engine ran to %v after the stop", eng.Now())
	}
}
