package sched

import (
	"fmt"

	"orion/internal/cudart"
	"orion/internal/kernels"
	"orion/internal/metrics"
	"orion/internal/sim"
	"orion/internal/trace"
	"orion/internal/workload"
)

// DefaultFrameworkOverhead is the client-side CPU cost per operation in
// native PyTorch (kernel launch through the framework and CUDA runtime).
const DefaultFrameworkOverhead = 3 * sim.Microsecond

// DefaultRetryBackoff is the initial virtual-time backoff after a
// transient submit failure; it doubles on every retry of the same
// operation.
const DefaultRetryBackoff = 50 * sim.Microsecond

// DefaultMaxRetries bounds how often one operation is retried after
// transient failures before its request is abandoned and counted in
// JobStats.Failed.
const DefaultMaxRetries = 6

// DriverConfig configures a client driver.
type DriverConfig struct {
	// Engine is the simulation engine everything runs on.
	Engine *sim.Engine
	// Client is the backend handle the driver submits through.
	Client Client
	// Model is the workload to replay.
	Model *workload.Model
	// Arrivals produces request inter-arrival gaps. Nil means closed
	// loop: a new iteration starts as soon as the previous completes
	// (how training jobs behave, §6.1).
	Arrivals trace.Process
	// FrameworkOverhead is the per-op client CPU cost before any
	// backend-added interception overhead. Zero selects
	// DefaultFrameworkOverhead.
	FrameworkOverhead sim.Duration
	// Horizon is the simulation time after which no new requests start.
	Horizon sim.Time
	// Warmup excludes early requests from statistics: only requests
	// completing in (Warmup, Horizon] are recorded.
	Warmup sim.Duration
	// SkipWeightAlloc skips the initial weights allocation (used when a
	// caller manages memory itself).
	SkipWeightAlloc bool
	// Deadline, when positive, is the per-request latency SLO: a request
	// completing later than arrival+Deadline is counted in
	// JobStats.TimedOut (it still completes and is recorded).
	Deadline sim.Duration
	// RetryBackoff is the initial backoff after a transient submit
	// failure (doubles per retry). Zero selects DefaultRetryBackoff.
	RetryBackoff sim.Duration
	// MaxRetries bounds per-operation retries of transient submit
	// failures. Zero selects DefaultMaxRetries; negative disables
	// retrying entirely.
	MaxRetries int
}

// Driver replays a workload through a backend client: it generates request
// arrivals, walks each request's operation stream with realistic CPU
// submission gaps, honours blocking semantics, and records latency and
// throughput statistics.
type Driver struct {
	cfg   DriverConfig
	stats metrics.JobStats

	queue   []sim.Time // arrival times of requests waiting to start
	busy    bool
	stopped bool
	crashed bool
	started bool

	// The driver runs at most one request at a time (busy gates startNext),
	// so the in-flight request's continuation state lives in fields and the
	// continuation callbacks are built once in NewDriver — the per-op
	// closures that used to dominate the driver's allocation profile are
	// gone from the steady-state path.
	curArrival  sim.Time          // arrival of the in-flight request
	nextIdx     int               // next op index of the in-flight request
	nextArrival sim.Time          // firing time of the pending arrival event
	advance     func()            // submits op nextIdx of the current request
	blockDone   func(sim.Time)    // blocking-op completion: gap, then advance
	endDone     func(at sim.Time) // request completion epilogue
	arrivalFn   func()            // open-loop arrival: enqueue + re-arm

	// Requests completed in total (including warmup).
	totalCompleted int
}

// NewDriver validates the configuration and builds a driver.
func NewDriver(cfg DriverConfig) (*Driver, error) {
	if cfg.Engine == nil || cfg.Client == nil || cfg.Model == nil {
		return nil, fmt.Errorf("sched: driver needs engine, client and model")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sched: driver needs a positive horizon")
	}
	if sim.Duration(cfg.Horizon) <= cfg.Warmup {
		return nil, fmt.Errorf("sched: warmup %v >= horizon %v", cfg.Warmup, cfg.Horizon)
	}
	if cfg.FrameworkOverhead == 0 {
		cfg.FrameworkOverhead = DefaultFrameworkOverhead
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if cfg.RetryBackoff < 0 {
		return nil, fmt.Errorf("sched: negative retry backoff %v", cfg.RetryBackoff)
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	d := &Driver{cfg: cfg}
	d.stats.Name = cfg.Model.ID()
	d.stats.Window = sim.Duration(cfg.Horizon) - cfg.Warmup
	d.advance = func() { d.trySubmit(d.nextIdx, 0) }
	d.blockDone = func(sim.Time) { d.cfg.Engine.After(d.opGap(), d.advance) }
	d.endDone = func(at sim.Time) { d.finishRequest(d.curArrival, at) }
	d.arrivalFn = func() {
		d.enqueue(d.nextArrival)
		d.scheduleArrival()
	}
	return d, nil
}

// Stats returns the driver's accumulated statistics. Valid once the
// simulation has run.
func (d *Driver) Stats() *metrics.JobStats { return &d.stats }

// Stop makes the driver abandon its workload: no new requests are
// admitted or started; the in-flight request (if any) drains normally.
// Models a client crashing or being descheduled mid-run — the scheduler
// underneath must absorb the churn.
func (d *Driver) Stop() {
	d.stopped = true
	d.queue = nil
}

// Crash models the client process dying: the driver abandons its
// workload immediately — queued requests are dropped and the in-flight
// request, if any, is orphaned (its completion callbacks are ignored and
// its latency is never recorded). The backend must be told separately via
// Backend.Deregister so it releases the client's scheduler state.
func (d *Driver) Crash() {
	d.stopped = true
	d.crashed = true
	d.queue = nil
}

// Stopped reports whether the driver has been stopped (explicitly or by
// reaching the horizon).
func (d *Driver) Stopped() bool { return d.stopped }

// Crashed reports whether the driver was killed with Crash.
func (d *Driver) Crashed() bool { return d.crashed }

// TotalCompleted reports all completed requests including warmup.
func (d *Driver) TotalCompleted() int { return d.totalCompleted }

// Start arms the driver: it allocates the model's weights and then begins
// generating requests. Call before running the engine.
func (d *Driver) Start() error {
	if d.started {
		return fmt.Errorf("sched: driver started twice")
	}
	d.started = true
	begin := func() {
		if d.cfg.Arrivals == nil {
			// Closed loop: first iteration starts immediately.
			d.enqueue(d.cfg.Engine.Now())
		} else {
			d.scheduleArrival()
		}
	}
	if d.cfg.SkipWeightAlloc {
		begin()
		return nil
	}
	alloc := &kernels.Descriptor{
		Name: "weights_malloc", Op: kernels.OpMalloc, Bytes: d.cfg.Model.WeightsBytes,
	}
	d.cfg.Client.BeginRequest()
	if err := d.cfg.Client.Submit(alloc, nil); err != nil {
		return fmt.Errorf("sched: weight allocation for %s: %w", d.cfg.Model.ID(), err)
	}
	return d.cfg.Client.EndRequest(func(sim.Time) { begin() })
}

// scheduleArrival arms the next open-loop arrival event.
func (d *Driver) scheduleArrival() {
	gap, ok := d.cfg.Arrivals.Next()
	if !ok {
		return
	}
	at := d.cfg.Engine.Now().Add(gap)
	if at >= d.cfg.Horizon {
		return
	}
	// At most one arrival event is pending per driver, so the firing time
	// rides in a field and the prebuilt arrivalFn is reused for every
	// arrival.
	d.nextArrival = at
	d.cfg.Engine.At(at, d.arrivalFn)
}

// enqueue admits a request that arrived at the given time.
func (d *Driver) enqueue(arrival sim.Time) {
	d.queue = append(d.queue, arrival)
	if !d.busy {
		d.startNext()
	}
}

// startNext pops the oldest queued request and replays its op stream.
func (d *Driver) startNext() {
	if len(d.queue) == 0 || d.stopped {
		return
	}
	arrival := d.queue[0]
	d.queue = d.queue[:copy(d.queue, d.queue[1:])]
	d.busy = true
	d.curArrival = arrival
	d.cfg.Client.BeginRequest()
	d.trySubmit(0, 0)
}

// CaptureReplayer is implemented by clients that replay pre-captured
// request graphs (CUDA-graph style): per-operation framework overhead is
// skipped, since operations feed a capture buffer rather than the GPU.
type CaptureReplayer interface {
	ReplaysCapture() bool
}

// opGap is the CPU-side spacing between consecutive submissions.
func (d *Driver) opGap() sim.Duration {
	if cr, ok := d.cfg.Client.(CaptureReplayer); ok && cr.ReplaysCapture() {
		return d.cfg.Client.LaunchOverhead()
	}
	return d.cfg.FrameworkOverhead + d.cfg.Client.LaunchOverhead()
}

// trySubmit submits op i of the in-flight request (attempt counts prior
// transient failures of this op), then continues the request via the
// prebuilt continuation slots. Transient submit failures — injected
// launch failures, momentary OOM — are retried with exponential backoff
// in virtual time; an op that exhausts its retries abandons the request,
// which is drained and counted in JobStats.Failed. Non-transient errors
// remain modelling bugs and panic.
func (d *Driver) trySubmit(i, attempt int) {
	if d.crashed {
		return
	}
	eng := d.cfg.Engine
	model := d.cfg.Model
	if i >= len(model.Ops) {
		if err := d.cfg.Client.EndRequest(d.endDone); err != nil {
			panic(fmt.Sprintf("sched: end request: %v", err))
		}
		return
	}
	op := &model.Ops[i]
	blocking := op.Op.Blocking() || (op.Op.IsMemcpy() && op.Sync)
	// Set before Submit: a backend may fire the done callback inline.
	d.nextIdx = i + 1
	var done func(sim.Time)
	if blocking {
		// The client CPU blocks until the op completes, then pays the
		// next submission gap.
		done = d.blockDone
	}
	if err := d.cfg.Client.Submit(op, done); err != nil {
		if !cudart.IsTransient(err) {
			panic(fmt.Sprintf("sched: submit %s op %d: %v", model.ID(), i, err))
		}
		if attempt >= d.cfg.MaxRetries {
			d.failRequest()
			return
		}
		d.stats.Retried++
		// Retries are rare; a per-retry closure is fine here.
		eng.After(d.cfg.RetryBackoff<<attempt, func() { d.trySubmit(i, attempt+1) })
		return
	}
	if !blocking {
		eng.After(d.opGap(), d.advance)
	}
}

// failRequest abandons the in-flight request after an op exhausted its
// retries: whatever was already submitted drains, the failure is counted,
// and the driver moves on to the next request one backoff later. The
// pause guarantees forward progress in virtual time — a closed-loop
// client whose first op fails instantly (for example with retrying
// disabled) would otherwise re-enter the loop at the same instant
// forever.
func (d *Driver) failRequest() {
	d.stats.Failed++
	err := d.cfg.Client.EndRequest(func(sim.Time) {
		d.cfg.Engine.After(d.cfg.RetryBackoff, func() {
			d.afterRequest(d.cfg.Engine.Now())
		})
	})
	if err != nil {
		panic(fmt.Sprintf("sched: end failed request: %v", err))
	}
}

// finishRequest records stats and starts the next request.
func (d *Driver) finishRequest(arrival, completed sim.Time) {
	if d.crashed {
		return
	}
	d.totalCompleted++
	if completed > sim.Time(d.cfg.Warmup) && completed <= d.cfg.Horizon {
		d.stats.Completed++
		d.stats.Latency.Record(completed.Sub(arrival))
		if d.cfg.Deadline > 0 && completed.Sub(arrival) > d.cfg.Deadline {
			d.stats.TimedOut++
		}
	}
	d.afterRequest(completed)
}

// afterRequest is the request epilogue shared by completion and failure.
func (d *Driver) afterRequest(completed sim.Time) {
	if d.crashed {
		return
	}
	d.busy = false
	if completed >= d.cfg.Horizon {
		d.stopped = true
		return
	}
	if d.cfg.Arrivals == nil {
		// Closed loop: immediately begin the next iteration.
		d.enqueue(completed)
		return
	}
	d.startNext()
}
