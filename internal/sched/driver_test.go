package sched

import (
	"fmt"
	"testing"

	"orion/internal/cudart"
	"orion/internal/kernels"
	"orion/internal/sim"
	"orion/internal/workload"
)

// tinyModel is a three-kernel request used by the retry tests.
func tinyModel(kernelDur sim.Duration) *workload.Model {
	mk := func(id int) kernels.Descriptor {
		return kernels.Descriptor{
			ID: id, Name: fmt.Sprintf("k%d", id), Op: kernels.OpKernel,
			Launch:   kernels.LaunchConfig{Blocks: 40, ThreadsPerBlock: 256, RegsPerThread: 32},
			Duration: kernelDur, ComputeUtil: 0.5, MemBWUtil: 0.3,
		}
	}
	return &workload.Model{
		Name: "tiny", Kind: workload.Inference, Batch: 1,
		Ops:          []kernels.Descriptor{mk(0), mk(1), mk(2)},
		WeightsBytes: 1 << 20, TargetDuration: 3 * kernelDur,
	}
}

// launchFailer fails every kernel launch until the cutoff time with a
// transient typed error.
func launchFailer(eng *sim.Engine, until sim.Time) cudart.FaultHook {
	return func(p cudart.InjectPoint, desc *kernels.Descriptor) error {
		if p == cudart.InjectLaunch && eng.Now() < until {
			return fmt.Errorf("test: %w (%w)", cudart.ErrLaunchFailed, cudart.ErrTransient)
		}
		return nil
	}
}

func startDriver(t *testing.T, cfg DriverConfig) *Driver {
	t.Helper()
	d, err := NewDriver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	return d
}

// Transient launch failures are retried with backoff and the request
// still completes; nothing is abandoned.
func TestDriverRetriesTransientFailures(t *testing.T) {
	eng, ctx := newRig(t)
	ctx.SetFaultHook(launchFailer(eng, sim.Time(sim.Micros(300))))
	be := NewDirect(ctx)
	m := tinyModel(sim.Micros(100))
	cl, err := be.Register(ClientConfig{Name: "tiny", Priority: HighPriority, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	be.Start()
	d := startDriver(t, DriverConfig{
		Engine: eng, Client: cl, Model: m, Horizon: sim.Time(sim.Millis(50)),
	})
	eng.Run()

	s := d.Stats()
	if s.Retried == 0 {
		t.Error("no retries recorded though launches failed for 300us")
	}
	if s.Failed != 0 {
		t.Errorf("Failed = %d; transient window shorter than the retry budget must not abandon requests", s.Failed)
	}
	if s.Completed == 0 {
		t.Fatal("no requests completed")
	}
}

// An op that fails past MaxRetries abandons its request, counts it, and
// the driver moves on to the next one.
func TestDriverAbandonsAfterMaxRetries(t *testing.T) {
	eng, ctx := newRig(t)
	ctx.SetFaultHook(launchFailer(eng, sim.Time(sim.Seconds(1000)))) // never heals
	be := NewDirect(ctx)
	m := tinyModel(sim.Micros(100))
	cl, _ := be.Register(ClientConfig{Name: "tiny", Priority: HighPriority, Model: m})
	be.Start()
	d := startDriver(t, DriverConfig{
		Engine: eng, Client: cl, Model: m, Horizon: sim.Time(sim.Millis(100)),
	})
	eng.Run()

	s := d.Stats()
	if s.Completed != 0 {
		t.Errorf("Completed = %d with every launch failing", s.Completed)
	}
	if s.Failed == 0 {
		t.Fatal("no failures counted")
	}
	// Each failed request burned the full retry budget.
	if want := s.Failed * DefaultMaxRetries; s.Retried != want {
		t.Errorf("Retried = %d, want %d (%d failures x %d retries)",
			s.Retried, want, s.Failed, DefaultMaxRetries)
	}
}

// MaxRetries < 0 disables retrying: the first transient failure abandons
// the request.
func TestDriverNegativeMaxRetriesDisablesRetry(t *testing.T) {
	eng, ctx := newRig(t)
	ctx.SetFaultHook(launchFailer(eng, sim.Time(sim.Seconds(1000))))
	be := NewDirect(ctx)
	m := tinyModel(sim.Micros(100))
	cl, _ := be.Register(ClientConfig{Name: "tiny", Priority: HighPriority, Model: m})
	be.Start()
	d := startDriver(t, DriverConfig{
		Engine: eng, Client: cl, Model: m, Horizon: sim.Time(sim.Millis(10)),
		MaxRetries: -1,
	})
	eng.Run()

	s := d.Stats()
	if s.Retried != 0 {
		t.Errorf("Retried = %d with retrying disabled", s.Retried)
	}
	if s.Failed == 0 {
		t.Error("no failures counted with retrying disabled")
	}
}

// Requests completing past the deadline are counted in TimedOut but still
// complete and record latency.
func TestDriverDeadline(t *testing.T) {
	eng, ctx := newRig(t)
	be := NewDirect(ctx)
	m := tinyModel(sim.Millis(1)) // ~3ms per request
	cl, _ := be.Register(ClientConfig{Name: "tiny", Priority: HighPriority, Model: m})
	be.Start()
	d := startDriver(t, DriverConfig{
		Engine: eng, Client: cl, Model: m, Horizon: sim.Time(sim.Millis(50)),
		Deadline: sim.Millis(1),
	})
	eng.Run()

	s := d.Stats()
	if s.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if s.TimedOut != s.Completed {
		t.Errorf("TimedOut = %d of %d completed; every 3ms request misses a 1ms deadline",
			s.TimedOut, s.Completed)
	}

	// And with a generous deadline nothing times out.
	eng2, ctx2 := newRig(t)
	be2 := NewDirect(ctx2)
	cl2, _ := be2.Register(ClientConfig{Name: "tiny", Priority: HighPriority, Model: m})
	be2.Start()
	d2 := startDriver(t, DriverConfig{
		Engine: eng2, Client: cl2, Model: m, Horizon: sim.Time(sim.Millis(50)),
		Deadline: sim.Millis(100),
	})
	eng2.Run()
	if s2 := d2.Stats(); s2.TimedOut != 0 {
		t.Errorf("TimedOut = %d with a generous deadline", s2.TimedOut)
	}
}

// Crash drops the workload instantly: the in-flight request is orphaned
// (never recorded) and no further requests start.
func TestDriverCrashOrphansInFlight(t *testing.T) {
	eng, ctx := newRig(t)
	be := NewDirect(ctx)
	m := tinyModel(sim.Millis(1))
	cl, _ := be.Register(ClientConfig{Name: "tiny", Priority: HighPriority, Model: m})
	be.Start()
	d := startDriver(t, DriverConfig{
		Engine: eng, Client: cl, Model: m, Horizon: sim.Time(sim.Millis(100)),
	})
	// Crash mid-request: 10.5ms is inside the 4th request's ~3ms span.
	eng.At(sim.Time(sim.Micros(10_500)), d.Crash)
	eng.Run()

	if !d.Crashed() || !d.Stopped() {
		t.Fatalf("Crashed=%v Stopped=%v after Crash", d.Crashed(), d.Stopped())
	}
	done := d.TotalCompleted()
	if done == 0 {
		t.Fatal("no requests completed before the crash")
	}
	// ~3 requests fit before 10.5ms; anything close to the horizon's ~33
	// means the driver kept running.
	if done > 4 {
		t.Errorf("TotalCompleted = %d, want the pre-crash handful", done)
	}
	if got := d.Stats().Latency.Count(); got > done {
		t.Errorf("recorded %d latencies after completing %d requests", got, done)
	}
}
