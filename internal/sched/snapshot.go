package sched

import "orion/internal/checkpoint"

// SnapshotTo implements checkpoint.Snapshotter: the driver's request
// pipeline state — queued arrivals, the in-flight request's continuation
// cursor, the pending open-loop arrival — plus accumulated statistics and
// the arrival process's stream position. The prebuilt continuation
// closures are rebuilt by NewDriver on a restore and carry no state of
// their own.
func (d *Driver) SnapshotTo(e *checkpoint.Encoder) {
	e.Bool(d.busy)
	e.Bool(d.stopped)
	e.Bool(d.crashed)
	e.Bool(d.started)
	e.I64(int64(d.curArrival))
	e.Int(d.nextIdx)
	e.I64(int64(d.nextArrival))
	e.Int(d.totalCompleted)
	e.Int(len(d.queue))
	for _, at := range d.queue {
		e.I64(int64(at))
	}
	d.stats.SnapshotTo(e)
	if s, ok := d.cfg.Arrivals.(checkpoint.Snapshotter); ok {
		s.SnapshotTo(e)
	}
}

// SnapshotTo implements checkpoint.Snapshotter: submission/completion
// counters and the thresholds of pending waiters (their callbacks are
// re-registered by the harness on a restore replay).
func (t *Tracker) SnapshotTo(e *checkpoint.Encoder) {
	e.U64(t.submitted)
	e.U64(t.completed)
	e.Int(len(t.waiters))
	for _, w := range t.waiters {
		e.U64(w.threshold)
	}
}
