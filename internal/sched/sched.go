// Package sched defines the interface between DNN clients and GPU
// scheduling backends, and provides the client driver that replays a
// workload's operation stream through any backend.
//
// A Backend is one GPU-sharing technique (Orion, temporal sharing, GPU
// Streams, MPS, REEF-N, Tick-Tock, or direct dedicated execution). Clients
// register with a priority; the backend decides how and when each client's
// intercepted operations reach the device.
package sched

import (
	"orion/internal/kernels"
	"orion/internal/sim"
	"orion/internal/workload"
)

// Priority partitions clients the way the paper does: one high-priority
// latency- or throughput-critical job, and any number of best-effort jobs
// harvesting spare capacity.
type Priority int

const (
	// BestEffort jobs harvest spare GPU capacity.
	BestEffort Priority = iota
	// HighPriority marks the latency/throughput-critical job.
	HighPriority
)

func (p Priority) String() string {
	if p == HighPriority {
		return "high-priority"
	}
	return "best-effort"
}

// ClientConfig describes a client registering with a backend.
type ClientConfig struct {
	// Name identifies the client in output (typically the workload ID).
	Name string
	// Priority is HighPriority or BestEffort.
	Priority Priority
	// Model is the client's workload; backends that need offline profile
	// information (Orion, REEF) read the descriptors' profiled attributes,
	// mirroring the paper's profile lookup table.
	Model *workload.Model
}

// Client is a registered client's handle for submitting intercepted
// operations.
type Client interface {
	// BeginRequest marks the start of one inference request or training
	// iteration — the granularity at which temporal sharing time-slices.
	BeginRequest()
	// Submit forwards one operation. done, if non-nil, fires when the
	// operation completes on the device.
	Submit(op *kernels.Descriptor, done func(sim.Time)) error
	// EndRequest marks the request complete once every operation
	// submitted since BeginRequest has finished on the device; cb fires
	// at that point.
	EndRequest(cb func(sim.Time)) error
	// LaunchOverhead is the client-side CPU cost this backend adds to
	// every submitted operation (interception, queue insertion, lock
	// contention). The driver spaces submissions by this plus its own
	// framework overhead.
	LaunchOverhead() sim.Duration
}

// Backend is one GPU-sharing technique.
type Backend interface {
	// Name identifies the technique in output.
	Name() string
	// Register adds a client. All clients register before Start.
	Register(cfg ClientConfig) (Client, error)
	// Start begins backend activity (scheduler polling loops). Called
	// once after registration.
	Start()
	// Deregister removes a client whose process has died: the backend
	// drops the client's queued work without running its completion
	// callbacks, releases any scheduler state pinned on the client's
	// behalf (CUDA events, duration budgets, round-robin cursors), and
	// stops serving it. Operations the client already has on the device
	// drain normally. Deregistering a client the backend does not own is
	// an error; deregistering the same client twice is a no-op.
	Deregister(c Client) error
}
