package sched

import (
	"fmt"

	"orion/internal/kernels"
	"orion/internal/sim"
)

// GraphClient wraps a backend client so each request is captured into a
// single CUDA-graph-like unit and launched with one call — modelling the
// CUDA Graphs trend the paper's §7 discusses: the host submits the whole
// request at once and the hardware schedules it internally, so an
// interposed scheduler like Orion sees one coarse operation instead of
// hundreds of kernels.
//
// The captured graph becomes one synthetic kernel whose duration is the
// sum of the captured kernels, whose SM footprint is their maximum, whose
// compute/memory profile is their time-weighted average, and whose block
// waves retire at the cadence of the underlying kernels. Comparing a
// best-effort client in graph mode against kernel mode quantifies how
// much of Orion's benefit comes from its fine scheduling granularity.
type GraphClient struct {
	inner Client

	capturing bool
	kernels   []*kernels.Descriptor
	memOps    []capturedOp
	dones     []func(sim.Time)
	graphs    uint64
}

type capturedOp struct {
	op   *kernels.Descriptor
	done func(sim.Time)
}

// NewGraphClient wraps inner in request-granularity graph capture.
func NewGraphClient(inner Client) (*GraphClient, error) {
	if inner == nil {
		return nil, fmt.Errorf("sched: nil inner client")
	}
	return &GraphClient{inner: inner}, nil
}

// GraphsLaunched reports how many captured graphs have been submitted.
func (g *GraphClient) GraphsLaunched() uint64 { return g.graphs }

// BeginRequest implements Client: capture starts.
func (g *GraphClient) BeginRequest() {
	g.capturing = true
	g.inner.BeginRequest()
}

// LaunchOverhead implements Client. Graph launches amortize per-kernel
// interception: the capture itself is client-side and cheap.
func (g *GraphClient) LaunchOverhead() sim.Duration { return 0 }

// ReplaysCapture implements CaptureReplayer: after the first capture, the
// framework replays the graph with a single launch call, paying no
// per-operation overhead.
func (g *GraphClient) ReplaysCapture() bool { return true }

// Submit implements Client: kernels are captured; memory operations pass
// through immediately (CUDA graphs capture kernels; the surrounding
// copies stay eager here, preserving stream order because they are
// submitted before the graph launch).
func (g *GraphClient) Submit(op *kernels.Descriptor, done func(sim.Time)) error {
	if op == nil {
		return fmt.Errorf("sched: nil op")
	}
	if !g.capturing || op.Op != kernels.OpKernel {
		return g.inner.Submit(op, done)
	}
	g.kernels = append(g.kernels, op)
	if done != nil {
		g.dones = append(g.dones, done)
	}
	return nil
}

// EndRequest implements Client: the captured kernels launch as one unit,
// then the request synchronizes as usual.
func (g *GraphClient) EndRequest(cb func(sim.Time)) error {
	g.capturing = false
	if len(g.kernels) > 0 {
		graph := g.fuse()
		dones := g.dones
		g.kernels = nil
		g.dones = nil
		g.graphs++
		err := g.inner.Submit(graph, func(at sim.Time) {
			for _, d := range dones {
				d(at)
			}
		})
		if err != nil {
			return err
		}
	}
	return g.inner.EndRequest(cb)
}

// fuse builds the synthetic graph kernel from the captured ones.
func (g *GraphClient) fuse() *kernels.Descriptor {
	var total sim.Duration
	var cw, mw float64
	maxLaunch := g.kernels[0].Launch
	maxBlocks := 0
	for _, k := range g.kernels {
		total += k.Duration
		cw += k.ComputeUtil * float64(k.Duration)
		mw += k.MemBWUtil * float64(k.Duration)
		if k.Launch.Blocks > maxBlocks {
			maxBlocks = k.Launch.Blocks
			maxLaunch = k.Launch
		}
	}
	// Blocks scaled so the graph sheds SMs at the cadence of its
	// constituent kernels: waves == number of captured kernels.
	launch := maxLaunch
	launch.Blocks = maxLaunch.Blocks * len(g.kernels)
	return &kernels.Descriptor{
		ID:          g.kernels[0].ID,
		Name:        fmt.Sprintf("graph_%dk", len(g.kernels)),
		Op:          kernels.OpKernel,
		Launch:      launch,
		Duration:    total,
		ComputeUtil: cw / float64(total),
		MemBWUtil:   mw / float64(total),
	}
}
