package sched

import "orion/internal/sim"

// Tracker counts a client's submitted and completed operations and fires
// synchronization callbacks once everything submitted up to the sync point
// has completed on the device. Queue-based backends (Orion, REEF-N,
// temporal sharing) use it to implement EndRequest, since their clients'
// operations do not map one-to-one onto a single CUDA stream they could
// stream-synchronize.
type Tracker struct {
	eng       *sim.Engine
	submitted uint64
	completed uint64
	waiters   []trackWaiter
}

type trackWaiter struct {
	threshold uint64
	cb        func(sim.Time)
}

// NewTracker builds a tracker on the engine.
func NewTracker(eng *sim.Engine) *Tracker {
	return &Tracker{eng: eng}
}

// OnSubmit records one submitted operation.
func (t *Tracker) OnSubmit() { t.submitted++ }

// OnComplete records one completed operation and fires any satisfied
// waiters, in registration order.
func (t *Tracker) OnComplete(at sim.Time) {
	t.completed++
	for len(t.waiters) > 0 && t.waiters[0].threshold <= t.completed {
		cb := t.waiters[0].cb
		t.waiters = t.waiters[:copy(t.waiters, t.waiters[1:])]
		cb(at)
	}
}

// Outstanding reports operations submitted but not yet completed.
func (t *Tracker) Outstanding() uint64 { return t.submitted - t.completed }

// Sync registers cb to fire once every operation submitted so far has
// completed. If nothing is outstanding it fires immediately.
func (t *Tracker) Sync(cb func(sim.Time)) {
	if cb == nil {
		return
	}
	if t.completed >= t.submitted {
		cb(t.eng.Now())
		return
	}
	t.waiters = append(t.waiters, trackWaiter{threshold: t.submitted, cb: cb})
}
