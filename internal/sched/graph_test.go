package sched

import (
	"testing"

	"orion/internal/kernels"
	"orion/internal/sim"
	"orion/internal/workload"
)

func TestGraphClientValidation(t *testing.T) {
	if _, err := NewGraphClient(nil); err == nil {
		t.Fatal("nil inner accepted")
	}
}

// A graph client fuses the request's kernels into one launch: the device
// sees one kernel per request.
func TestGraphClientFusesKernels(t *testing.T) {
	eng, ctx := newRig(t)
	backend := NewDirect(ctx)
	model := workload.ResNet50Inference()
	inner, err := backend.Register(ClientConfig{Name: "g", Priority: HighPriority, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	backend.Start()
	gc, err := NewGraphClient(inner)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(DriverConfig{
		Engine: eng, Client: gc, Model: model,
		Horizon: sim.Time(sim.Seconds(1)), SkipWeightAlloc: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	eng.Run()
	if d.TotalCompleted() < 2 {
		t.Fatalf("only %d requests completed in graph mode", d.TotalCompleted())
	}
	if got := gc.GraphsLaunched(); got != uint64(d.TotalCompleted()) {
		t.Errorf("%d graphs for %d requests", got, d.TotalCompleted())
	}
	// One fused kernel per request instead of ~130.
	if got := ctx.Device().KernelsCompleted(); got != gc.GraphsLaunched() {
		t.Errorf("device ran %d kernels for %d graphs", got, gc.GraphsLaunched())
	}
}

// The fused graph preserves total work: request latency in graph mode is
// close to (and not less than the kernel-time of) the unfused run, minus
// the per-kernel launch gaps graphs exist to eliminate.
func TestGraphModeEliminatesLaunchGaps(t *testing.T) {
	model := workload.ResNet50Inference()
	run := func(graph bool) sim.Duration {
		eng, ctx := newRig(t)
		backend := NewDirect(ctx)
		inner, _ := backend.Register(ClientConfig{Name: "g", Priority: HighPriority, Model: model})
		backend.Start()
		var cl Client = inner
		if graph {
			cl, _ = NewGraphClient(inner)
		}
		d, _ := NewDriver(DriverConfig{
			Engine: eng, Client: cl, Model: model,
			Horizon: sim.Time(sim.Seconds(2)), Warmup: sim.Seconds(0.3),
		})
		d.Start()
		eng.Run()
		return d.Stats().Latency.P50()
	}
	fused, unfused := run(true), run(false)
	if fused >= unfused {
		t.Errorf("graph p50 %.3fms >= kernel-mode %.3fms; launch gaps not eliminated",
			fused.Millis(), unfused.Millis())
	}
	if fused < model.TotalKernelTime() {
		t.Errorf("graph p50 %.3fms below the %.3fms of kernel work it contains",
			fused.Millis(), model.TotalKernelTime().Millis())
	}
}

// Graph capture keeps memory operations eager and ordered before the
// fused launch.
func TestGraphClientPassesMemOpsThrough(t *testing.T) {
	eng, ctx := newRig(t)
	backend := NewDirect(ctx)
	model := workload.ResNet50Inference()
	inner, _ := backend.Register(ClientConfig{Name: "g", Priority: HighPriority, Model: model})
	backend.Start()
	gc, _ := NewGraphClient(inner)
	gc.BeginRequest()
	var copyDone, kernelDone sim.Time
	cp := kernels.Descriptor{ID: 0, Name: "h2d", Op: kernels.OpMemcpyH2D, Bytes: 1 << 20}
	if err := gc.Submit(&cp, func(at sim.Time) { copyDone = at }); err != nil {
		t.Fatal(err)
	}
	k := kernels.Descriptor{ID: 1, Name: "k", Op: kernels.OpKernel,
		Launch:   kernels.LaunchConfig{Blocks: 16, ThreadsPerBlock: 256, RegsPerThread: 32},
		Duration: sim.Micros(100), ComputeUtil: 0.4, MemBWUtil: 0.2}
	gc.Submit(&k, func(at sim.Time) { kernelDone = at })
	gc.EndRequest(nil)
	eng.Run()
	if copyDone == 0 || kernelDone == 0 {
		t.Fatal("captured ops never completed")
	}
	if kernelDone < copyDone {
		t.Errorf("fused kernel at %v finished before the copy at %v", kernelDone, copyDone)
	}
	if err := gc.Submit(nil, nil); err == nil {
		t.Fatal("nil op accepted")
	}
}

// An empty request (no kernels captured) still synchronizes.
func TestGraphClientEmptyRequest(t *testing.T) {
	eng, ctx := newRig(t)
	backend := NewDirect(ctx)
	model := workload.ResNet50Inference()
	inner, _ := backend.Register(ClientConfig{Name: "g", Model: model})
	backend.Start()
	gc, _ := NewGraphClient(inner)
	gc.BeginRequest()
	fired := false
	gc.EndRequest(func(sim.Time) { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("empty graph request never completed")
	}
}
