package fault

import (
	"errors"
	"testing"

	"orion/internal/cudart"
	"orion/internal/gpu"
	"orion/internal/kernels"
	"orion/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	bad := []Config{
		{},            // nil engine
		{Engine: eng}, // no horizon
		{Engine: eng, Horizon: 1, CrashMTBF: -1},
		{Engine: eng, Horizon: 1, LaunchFailMTBF: sim.Second}, // no window duration
		{Engine: eng, Horizon: 1, AllocFailMTBF: sim.Second},
		{Engine: eng, Horizon: 1, SlowdownMTBF: sim.Second},
		{Engine: eng, Horizon: 1, SlowdownMTBF: sim.Second, SlowdownDuration: sim.Second, SlowdownFactor: 1.5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	in, err := New(Config{Engine: eng, Horizon: sim.Time(sim.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Start(); err != nil {
		t.Fatal(err)
	}
	if err := in.Start(); err == nil {
		t.Error("double Start accepted")
	}
}

// scheduleFor runs an injector over the given config on a fresh engine
// and returns the formatted fault log.
func scheduleFor(t *testing.T, seed int64) string {
	t.Helper()
	eng := sim.NewEngine()
	horizon := sim.Time(10 * sim.Second)
	in, err := New(Config{
		Engine: eng, Seed: seed, Horizon: horizon,
		CrashMTBF:          4 * sim.Second,
		LaunchFailMTBF:     2 * sim.Second,
		LaunchFailDuration: 5 * sim.Millisecond,
		AllocFailMTBF:      3 * sim.Second,
		AllocFailDuration:  5 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	in.RegisterCrashTarget("be#1", func() {})
	in.RegisterCrashTarget("be#2", func() {})
	if err := in.Start(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(horizon)
	return FormatLog(in.Log())
}

// The whole point of the seeded injector: equal seeds give bit-identical
// fault schedules, different seeds give different ones.
func TestScheduleDeterminism(t *testing.T) {
	a := scheduleFor(t, 7)
	b := scheduleFor(t, 7)
	if a != b {
		t.Errorf("same seed, different schedules:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty fault schedule; rates too low for the horizon?")
	}
	c := scheduleFor(t, 8)
	if a == c {
		t.Error("different seeds produced identical schedules")
	}
}

// Crashes fire each target's kill exactly once, at the logged instant,
// inside the horizon.
func TestCrashScheduling(t *testing.T) {
	eng := sim.NewEngine()
	horizon := sim.Time(60 * sim.Second)
	in, err := New(Config{
		Engine: eng, Seed: 3, Horizon: horizon, CrashMTBF: 5 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	killed := map[string]sim.Time{}
	for _, name := range []string{"a", "b", "c"} {
		name := name
		in.RegisterCrashTarget(name, func() {
			if _, dup := killed[name]; dup {
				t.Errorf("target %s killed twice", name)
			}
			killed[name] = eng.Now()
		})
	}
	if err := in.Start(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(horizon)

	// With a 5s MTBF and a 60s horizon each target crashes with
	// probability 1-e^-12; all three missing would mean broken scheduling.
	if len(killed) == 0 {
		t.Fatal("no crash fired in 12 MTBFs")
	}
	crashes := 0
	for _, e := range in.Log() {
		if e.Kind != KindCrash {
			continue
		}
		crashes++
		at, ok := killed[e.Target]
		if !ok {
			t.Errorf("logged crash of %s never killed it", e.Target)
			continue
		}
		if at != e.At {
			t.Errorf("%s killed at %v, logged at %v", e.Target, at, e.At)
		}
		if e.At >= horizon {
			t.Errorf("crash of %s at %v, beyond horizon", e.Target, e.At)
		}
	}
	if crashes != len(killed) {
		t.Errorf("%d crashes logged, %d targets killed", crashes, len(killed))
	}
}

// The hook fails calls inside an open window with errors wrapping both
// the taxonomy sentinel and ErrTransient, and passes them otherwise.
func TestHookWindowSemantics(t *testing.T) {
	eng := sim.NewEngine()
	in, err := New(Config{Engine: eng, Seed: 1, Horizon: sim.Time(sim.Second)})
	if err != nil {
		t.Fatal(err)
	}
	desc := &kernels.Descriptor{Name: "conv", Op: kernels.OpKernel}

	if err := in.hook(cudart.InjectLaunch, desc); err != nil {
		t.Errorf("launch outside window failed: %v", err)
	}
	in.launchFailUntil = sim.Time(sim.Millisecond)
	err = in.hook(cudart.InjectLaunch, desc)
	if !errors.Is(err, cudart.ErrLaunchFailed) || !cudart.IsTransient(err) {
		t.Errorf("launch inside window: %v, want ErrLaunchFailed + transient", err)
	}

	if err := in.hook(cudart.InjectAlloc, nil); err != nil {
		t.Errorf("alloc outside window failed: %v", err)
	}
	in.allocFailUntil = sim.Time(sim.Millisecond)
	err = in.hook(cudart.InjectAlloc, nil)
	if !errors.Is(err, cudart.ErrOOM) || !cudart.IsTransient(err) {
		t.Errorf("alloc inside window: %v, want ErrOOM + transient", err)
	}

	launches, allocs := in.Denied()
	if launches != 1 || allocs != 1 {
		t.Errorf("Denied() = %d, %d, want 1, 1", launches, allocs)
	}
}

// Slowdown windows degrade every attached device and restore full speed
// when they close.
func TestSlowdownWindows(t *testing.T) {
	eng := sim.NewEngine()
	d1, err := gpu.NewDevice(eng, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := gpu.NewDevice(eng, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	horizon := sim.Time(10 * sim.Second)
	in, err := New(Config{
		Engine: eng, Seed: 5, Horizon: horizon,
		SlowdownMTBF: 2 * sim.Second, SlowdownDuration: 100 * sim.Millisecond,
		SlowdownFactor: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	in.AttachDevice(d1)
	in.AttachDevice(d2)
	if err := in.Start(); err != nil {
		t.Fatal(err)
	}

	// Sample the speed factor while the engine runs.
	var sawSlow bool
	var sample func()
	sample = func() {
		if d1.SpeedFactor() == 0.25 && d2.SpeedFactor() == 0.25 {
			sawSlow = true
		}
		if eng.Now() < horizon {
			eng.After(sim.Millisecond, sample)
		}
	}
	sample()
	// Run to exhaustion rather than to the horizon: a window opening just
	// before the horizon closes just after it.
	eng.Run()

	if !sawSlow {
		t.Error("devices never observed at the degraded speed")
	}
	if d1.SpeedFactor() != 1 || d2.SpeedFactor() != 1 {
		t.Errorf("speeds %v/%v after the run, want full speed restored",
			d1.SpeedFactor(), d2.SpeedFactor())
	}
	var opens, closes int
	for _, e := range in.Log() {
		switch e.Kind {
		case KindSlowdown:
			opens++
			if e.Until <= e.At {
				t.Errorf("slowdown window %v with no extent", e)
			}
		case KindSlowdownEnd:
			closes++
		}
	}
	if opens == 0 {
		t.Fatal("no slowdown window in 5 MTBFs")
	}
	if opens != closes {
		t.Errorf("%d windows opened, %d closed", opens, closes)
	}
}
