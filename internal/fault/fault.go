// Package fault injects failures into a simulated Orion deployment: client
// process crashes, transient CUDA launch and allocation failures, and
// degraded-device slowdown windows. The injector is driven entirely by the
// discrete-event engine and seeded RNG streams, so a given seed produces a
// bit-identical fault schedule — the property the robustness experiments
// and the determinism regression test rely on.
//
// Transient failures are modelled as Poisson-arriving windows: while a
// window is open, every kernel launch (or allocation) fails with an error
// that wraps both the matching cudart taxonomy sentinel and
// cudart.ErrTransient, so schedulers and drivers can classify it with
// errors.Is and retry. Crashes are one-shot: each registered target draws
// an exponential time-to-crash and, if it lands inside the horizon, the
// target's kill function runs at that instant.
package fault

import (
	"fmt"
	"strings"

	"orion/internal/cudart"
	"orion/internal/gpu"
	"orion/internal/kernels"
	"orion/internal/sim"
)

// Kind enumerates injected fault classes.
type Kind int

const (
	// KindCrash is a best-effort client process crash.
	KindCrash Kind = iota
	// KindLaunchWindow opens a transient kernel-launch failure window.
	KindLaunchWindow
	// KindAllocWindow opens a transient allocation (OOM) failure window.
	KindAllocWindow
	// KindSlowdown opens a degraded-device window.
	KindSlowdown
	// KindSlowdownEnd closes a degraded-device window.
	KindSlowdownEnd
)

func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindLaunchWindow:
		return "launch-fail-window"
	case KindAllocWindow:
		return "alloc-fail-window"
	case KindSlowdown:
		return "slowdown"
	case KindSlowdownEnd:
		return "slowdown-end"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one entry in the fault log.
type Event struct {
	// At is when the fault fired.
	At sim.Time
	// Kind classifies the fault.
	Kind Kind
	// Target names what was hit: a client for crashes, the device for
	// windows.
	Target string
	// Until is the window's closing time (windows only).
	Until sim.Time
}

func (e Event) String() string {
	if e.Until > e.At {
		return fmt.Sprintf("%.3fms %s %s until %.3fms",
			float64(e.At)/1e6, e.Kind, e.Target, float64(e.Until)/1e6)
	}
	return fmt.Sprintf("%.3fms %s %s", float64(e.At)/1e6, e.Kind, e.Target)
}

// Config tunes the injector. Zero-valued rates disable the corresponding
// fault class.
//
// Config is wire-serializable: every tunable carries a JSON tag so fault
// options can travel inside an orion-serve experiment submission. Duration
// fields accept either nanosecond integers or Go duration strings ("5ms",
// "8s"); the Engine and Horizon fields are runtime wiring filled in by the
// harness and never cross the wire.
type Config struct {
	// Engine is the simulation engine faults are scheduled on.
	Engine *sim.Engine `json:"-"`
	// Seed feeds the injector's RNG streams. Runs with equal seeds and
	// configurations produce identical fault schedules.
	Seed int64 `json:"seed,omitempty"`
	// Horizon bounds fault scheduling: no fault fires at or after it.
	Horizon sim.Time `json:"-"`

	// CrashMTBF is each registered crash target's mean time to failure
	// (exponential). Zero disables crashes.
	CrashMTBF sim.Duration `json:"crash_mtbf,omitempty"`

	// LaunchFailMTBF is the mean gap between transient kernel-launch
	// failure windows; LaunchFailDuration is each window's length. A zero
	// MTBF disables launch faults.
	LaunchFailMTBF     sim.Duration `json:"launch_fail_mtbf,omitempty"`
	LaunchFailDuration sim.Duration `json:"launch_fail_duration,omitempty"`

	// AllocFailMTBF / AllocFailDuration: same, for transient allocation
	// (OOM) failures.
	AllocFailMTBF     sim.Duration `json:"alloc_fail_mtbf,omitempty"`
	AllocFailDuration sim.Duration `json:"alloc_fail_duration,omitempty"`

	// SlowdownMTBF / SlowdownDuration open degraded-device windows during
	// which the attached device runs at SlowdownFactor of nominal speed
	// (thermal throttling, ECC scrubbing). A zero MTBF disables them;
	// SlowdownFactor defaults to DefaultSlowdownFactor.
	SlowdownMTBF     sim.Duration `json:"slowdown_mtbf,omitempty"`
	SlowdownDuration sim.Duration `json:"slowdown_duration,omitempty"`
	SlowdownFactor   float64      `json:"slowdown_factor,omitempty"`
}

// DefaultSlowdownFactor is the degraded-device execution speed used when
// Config.SlowdownFactor is zero.
const DefaultSlowdownFactor = 0.5

// Injector schedules and applies faults.
type Injector struct {
	eng *sim.Engine
	cfg Config

	// Independent RNG streams, split once in a fixed order so adding one
	// fault class never perturbs another's schedule.
	crashRng  *sim.Rand
	launchRng *sim.Rand
	allocRng  *sim.Rand
	slowRng   *sim.Rand

	devs []*gpu.Device

	launchFailUntil sim.Time
	allocFailUntil  sim.Time

	log            []Event
	deniedLaunches uint64
	deniedAllocs   uint64

	targets []crashTarget
	started bool
}

type crashTarget struct {
	name string
	kill func()
}

// New validates the configuration and builds an injector.
func New(cfg Config) (*Injector, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("fault: nil engine")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("fault: injector needs a positive horizon")
	}
	if cfg.CrashMTBF < 0 || cfg.LaunchFailMTBF < 0 || cfg.AllocFailMTBF < 0 || cfg.SlowdownMTBF < 0 {
		return nil, fmt.Errorf("fault: negative MTBF")
	}
	if cfg.LaunchFailMTBF > 0 && cfg.LaunchFailDuration <= 0 {
		return nil, fmt.Errorf("fault: launch failures need a positive window duration")
	}
	if cfg.AllocFailMTBF > 0 && cfg.AllocFailDuration <= 0 {
		return nil, fmt.Errorf("fault: alloc failures need a positive window duration")
	}
	if cfg.SlowdownMTBF > 0 && cfg.SlowdownDuration <= 0 {
		return nil, fmt.Errorf("fault: slowdowns need a positive window duration")
	}
	if cfg.SlowdownFactor == 0 {
		cfg.SlowdownFactor = DefaultSlowdownFactor
	}
	if cfg.SlowdownFactor <= 0 || cfg.SlowdownFactor >= 1 {
		return nil, fmt.Errorf("fault: SlowdownFactor %v outside (0,1)", cfg.SlowdownFactor)
	}
	base := sim.NewRand(cfg.Seed)
	return &Injector{
		eng:       cfg.Engine,
		cfg:       cfg,
		crashRng:  base.Split("crash"),
		launchRng: base.Split("launch"),
		allocRng:  base.Split("alloc"),
		slowRng:   base.Split("slowdown"),
	}, nil
}

// InstallHook wires the injector into a cudart context so launches and
// allocations consult the failure windows. Install on every context whose
// device the injector should disturb.
func (in *Injector) InstallHook(ctx *cudart.Context) {
	ctx.SetFaultHook(in.hook)
}

// AttachDevice gives the injector a device to slow down during
// degraded-device windows. Slowdown windows affect every attached device
// so schemes using dedicated per-job devices degrade comparably.
func (in *Injector) AttachDevice(dev *gpu.Device) { in.devs = append(in.devs, dev) }

// RegisterCrashTarget adds a client the injector may crash. kill runs at
// the crash instant and must tear the client down (stop its driver,
// deregister it from its backend). Targets must be registered in a
// deterministic order before Start: each registration consumes a draw
// from the crash RNG stream.
func (in *Injector) RegisterCrashTarget(name string, kill func()) {
	in.targets = append(in.targets, crashTarget{name: name, kill: kill})
}

// Start schedules every configured fault. Call once, after all crash
// targets are registered and before the engine runs.
func (in *Injector) Start() error {
	if in.started {
		return fmt.Errorf("fault: injector started twice")
	}
	in.started = true
	if in.cfg.CrashMTBF > 0 {
		for _, t := range in.targets {
			t := t
			at := in.eng.Now().Add(in.crashRng.Split(t.name).ExpDuration(in.cfg.CrashMTBF))
			if at >= in.cfg.Horizon {
				continue
			}
			in.eng.At(at, func() {
				in.record(Event{At: at, Kind: KindCrash, Target: t.name})
				t.kill()
			})
		}
	}
	if in.cfg.LaunchFailMTBF > 0 {
		in.scheduleWindows(in.launchRng, in.cfg.LaunchFailMTBF, in.cfg.LaunchFailDuration,
			KindLaunchWindow, func(until sim.Time) { in.launchFailUntil = until })
	}
	if in.cfg.AllocFailMTBF > 0 {
		in.scheduleWindows(in.allocRng, in.cfg.AllocFailMTBF, in.cfg.AllocFailDuration,
			KindAllocWindow, func(until sim.Time) { in.allocFailUntil = until })
	}
	if in.cfg.SlowdownMTBF > 0 && len(in.devs) > 0 {
		in.scheduleWindows(in.slowRng, in.cfg.SlowdownMTBF, in.cfg.SlowdownDuration,
			KindSlowdown, func(until sim.Time) {
				for _, d := range in.devs {
					d.SetSpeedFactor(in.cfg.SlowdownFactor)
				}
				in.eng.At(until, func() {
					in.record(Event{At: until, Kind: KindSlowdownEnd, Target: "device"})
					for _, d := range in.devs {
						d.SetSpeedFactor(1)
					}
				})
			})
	}
	return nil
}

// scheduleWindows arms a Poisson sequence of failure windows: each window
// opens an exponential gap after the previous one closed.
func (in *Injector) scheduleWindows(rng *sim.Rand, mtbf, dur sim.Duration,
	kind Kind, open func(until sim.Time)) {
	var arm func(from sim.Time)
	arm = func(from sim.Time) {
		at := from.Add(rng.ExpDuration(mtbf))
		if at >= in.cfg.Horizon {
			return
		}
		until := at.Add(dur)
		in.eng.At(at, func() {
			in.record(Event{At: at, Kind: kind, Target: "device", Until: until})
			open(until)
		})
		arm(until)
	}
	arm(in.eng.Now())
}

// hook is the cudart fault seam: it fails launches and allocations that
// land inside an open failure window with transient typed errors.
func (in *Injector) hook(p cudart.InjectPoint, desc *kernels.Descriptor) error {
	now := in.eng.Now()
	switch p {
	case cudart.InjectLaunch:
		if now < in.launchFailUntil {
			in.deniedLaunches++
			return fmt.Errorf("fault: injected launch failure of %s: %w (%w)",
				descName(desc), cudart.ErrLaunchFailed, cudart.ErrTransient)
		}
	case cudart.InjectAlloc:
		if now < in.allocFailUntil {
			in.deniedAllocs++
			return fmt.Errorf("fault: injected allocation failure of %d bytes: %w (%w)",
				descBytes(desc), cudart.ErrOOM, cudart.ErrTransient)
		}
	}
	return nil
}

func descName(d *kernels.Descriptor) string {
	if d == nil {
		return "<nil>"
	}
	return d.Name
}

func descBytes(d *kernels.Descriptor) int64 {
	if d == nil {
		return 0
	}
	return d.Bytes
}

func (in *Injector) record(e Event) { in.log = append(in.log, e) }

// Log returns the chronological fault log.
func (in *Injector) Log() []Event { return in.log }

// Denied reports how many launches and allocations the open windows
// failed (every retry of the same operation counts).
func (in *Injector) Denied() (launches, allocs uint64) {
	return in.deniedLaunches, in.deniedAllocs
}

// FormatLog renders the fault log one event per line — a stable, seeded
// fingerprint of the run's fault schedule.
func FormatLog(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
