package fault

import "orion/internal/checkpoint"

// SnapshotTo implements checkpoint.Snapshotter: the injector's RNG stream
// positions (one draw counter per fault class — the streams are split in
// a fixed order, so (seed, draws) pins each), the active fail windows and
// the event tally.
func (inj *Injector) SnapshotTo(e *checkpoint.Encoder) {
	e.Bool(inj.started)
	e.U64(inj.crashRng.Draws())
	e.U64(inj.launchRng.Draws())
	e.U64(inj.allocRng.Draws())
	e.U64(inj.slowRng.Draws())
	e.I64(int64(inj.launchFailUntil))
	e.I64(int64(inj.allocFailUntil))
	e.Int(len(inj.log))
	e.U64(inj.deniedLaunches)
	e.U64(inj.deniedAllocs)
	e.Int(len(inj.targets))
}
