package cluster

import (
	"testing"
	"testing/quick"

	"orion/internal/gpu"
	"orion/internal/kernels"
	"orion/internal/profiler"
	"orion/internal/workload"
)

func summaries(t *testing.T, models ...*workload.Model) []Summary {
	t.Helper()
	var out []Summary
	for _, m := range models {
		p, err := profiler.Collect(m, gpu.V100())
		if err != nil {
			t.Fatal(err)
		}
		s, err := Summarize(p, m.WeightsBytes)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

func TestSummarizeMatchesTable1(t *testing.T) {
	s := summaries(t, workload.BERTInference())[0]
	// BERT-large inference: ~72% compute, ~28% membw (Table 1).
	if s.Compute < 0.65 || s.Compute > 0.80 {
		t.Errorf("BERT compute %.2f, want ~0.72", s.Compute)
	}
	if s.MemBW < 0.20 || s.MemBW > 0.36 {
		t.Errorf("BERT membw %.2f, want ~0.28", s.MemBW)
	}
	if s.Profile() != kernels.ProfileCompute {
		t.Errorf("BERT profile %v, want compute", s.Profile())
	}
}

func TestSummarizeRejectsEmpty(t *testing.T) {
	if _, err := Summarize(nil, 0); err == nil {
		t.Fatal("nil profile accepted")
	}
	if _, err := Summarize(&profiler.Profile{Workload: "x"}, 0); err == nil {
		t.Fatal("kernel-less profile accepted")
	}
}

func TestComplementarityPrefersOpposites(t *testing.T) {
	compute := Summary{Workload: "c", Compute: 0.8, MemBW: 0.2}
	memory := Summary{Workload: "m", Compute: 0.15, MemBW: 0.75}
	opposite := Complementarity(compute, memory)
	sameC := Complementarity(compute, compute)
	sameM := Complementarity(memory, memory)
	if opposite <= sameC || opposite <= sameM {
		t.Fatalf("complementarity opposite=%.3f sameC=%.3f sameM=%.3f; opposites must score highest",
			opposite, sameC, sameM)
	}
}

func TestComplementaritySymmetric(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		x := Summary{Compute: float64(a%100) / 100, MemBW: float64(b%100) / 100}
		y := Summary{Compute: float64(c%100) / 100, MemBW: float64(d%100) / 100}
		return Complementarity(x, y) == Complementarity(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceGreedyPairsOpposites(t *testing.T) {
	jobs := []Summary{
		{Workload: "compute1", Compute: 0.8, MemBW: 0.2, MemoryBytes: 1 << 30},
		{Workload: "compute2", Compute: 0.75, MemBW: 0.25, MemoryBytes: 1 << 30},
		{Workload: "memory1", Compute: 0.15, MemBW: 0.7, MemoryBytes: 1 << 30},
		{Workload: "memory2", Compute: 0.1, MemBW: 0.8, MemoryBytes: 1 << 30},
	}
	pairs := PlaceGreedy(jobs, 16<<30)
	if len(pairs) != 2 {
		t.Fatalf("%d pairs, want 2", len(pairs))
	}
	for _, p := range pairs {
		if !p.HasB() {
			t.Fatalf("unpaired job %s", p.A.Workload)
		}
		// Every pair must mix a compute- and a memory-leaning job.
		aC := p.A.Compute > p.A.MemBW
		bC := p.B.Compute > p.B.MemBW
		if aC == bC {
			t.Errorf("pair (%s,%s) not complementary", p.A.Workload, p.B.Workload)
		}
	}
}

func TestPlaceGreedyRespectsMemory(t *testing.T) {
	jobs := []Summary{
		{Workload: "big1", Compute: 0.8, MemBW: 0.2, MemoryBytes: 12 << 30},
		{Workload: "big2", Compute: 0.1, MemBW: 0.8, MemoryBytes: 12 << 30},
	}
	pairs := PlaceGreedy(jobs, 16<<30)
	if len(pairs) != 2 {
		t.Fatalf("%d GPUs, want 2 (jobs don't fit together)", len(pairs))
	}
	for _, p := range pairs {
		if p.HasB() {
			t.Fatal("over-capacity pair produced")
		}
	}
}

func TestPlaceGreedyOddJobOut(t *testing.T) {
	jobs := []Summary{
		{Workload: "a", Compute: 0.8, MemBW: 0.2, MemoryBytes: 1 << 30},
		{Workload: "b", Compute: 0.1, MemBW: 0.8, MemoryBytes: 1 << 30},
		{Workload: "c", Compute: 0.5, MemBW: 0.5, MemoryBytes: 1 << 30},
	}
	pairs := PlaceGreedy(jobs, 16<<30)
	if GPUs(pairs) != 2 {
		t.Fatalf("%d GPUs, want 2", GPUs(pairs))
	}
	single := 0
	for _, p := range pairs {
		if !p.HasB() {
			single++
		}
	}
	if single != 1 {
		t.Fatalf("%d singles, want 1", single)
	}
}

func TestPlaceNaivePairsInOrder(t *testing.T) {
	jobs := []Summary{
		{Workload: "a", MemoryBytes: 1 << 30},
		{Workload: "b", MemoryBytes: 1 << 30},
		{Workload: "c", MemoryBytes: 1 << 30},
	}
	pairs := PlaceNaive(jobs, 16<<30)
	if len(pairs) != 2 {
		t.Fatalf("%d pairs, want 2", len(pairs))
	}
	if pairs[0].A.Workload != "a" || pairs[0].B.Workload != "b" || pairs[1].A.Workload != "c" {
		t.Fatalf("naive order wrong: %+v", pairs)
	}
}

// Property: greedy placement never exceeds device memory, never duplicates
// or drops a job.
func TestPlaceGreedyProperty(t *testing.T) {
	f := func(seeds []uint8) bool {
		if len(seeds) == 0 || len(seeds) > 16 {
			return true
		}
		var jobs []Summary
		for i, s := range seeds {
			jobs = append(jobs, Summary{
				Workload:    string(rune('a' + i)),
				Compute:     float64(s%100) / 100,
				MemBW:       float64((s>>1)%100) / 100,
				MemoryBytes: int64(s%12+1) << 30,
			})
		}
		pairs := PlaceGreedy(jobs, 16<<30)
		seen := map[string]int{}
		for _, p := range pairs {
			seen[p.A.Workload]++
			var mem int64 = p.A.MemoryBytes
			if p.HasB() {
				seen[p.B.Workload]++
				mem += p.B.MemoryBytes
			}
			if mem > 16<<30 {
				return false
			}
		}
		if len(seen) != len(jobs) {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end sanity with real workloads: BERT inference (compute) pairs
// with an LLM-style memory-bound job rather than with another compute job.
func TestGreedyOnRealProfiles(t *testing.T) {
	jobs := summaries(t,
		workload.BERTInference(),        // compute-bound
		workload.TransformerInference(), // compute-leaning
		workload.ResNet101Inference(),   // memory-leaning
		workload.MobileNetV2Inference(),
	)
	pairs := PlaceGreedy(jobs, 16<<30)
	if len(pairs) != 2 {
		t.Fatalf("%d pairs, want 2", len(pairs))
	}
	// BERT must not pair with Transformer (both compute-leaning).
	for _, p := range pairs {
		if !p.HasB() {
			continue
		}
		both := p.A.Workload + "+" + p.B.Workload
		if both == "bert-inf+transformer-inf" || both == "transformer-inf+bert-inf" {
			t.Errorf("greedy paired the two compute-bound jobs: %s", both)
		}
	}
}
