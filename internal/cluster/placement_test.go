package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"orion/internal/profiler"
	"orion/internal/sim"
)

func TestSummarizeRejectsBadKernels(t *testing.T) {
	mk := func(k ...profiler.KernelProfile) *profiler.Profile {
		return &profiler.Profile{Workload: "w", Kernels: k}
	}
	good := profiler.KernelProfile{Duration: sim.Duration(1000), ComputeUtil: 0.5, MemBWUtil: 0.5}
	cases := []struct {
		name  string
		prof  *profiler.Profile
		field string
	}{
		{"negative duration", mk(good, profiler.KernelProfile{Duration: -1, ComputeUtil: 0.5, MemBWUtil: 0.5}), "duration"},
		{"nan compute", mk(good, profiler.KernelProfile{Duration: 10, ComputeUtil: math.NaN(), MemBWUtil: 0.5}), "compute_util"},
		{"negative compute", mk(good, profiler.KernelProfile{Duration: 10, ComputeUtil: -0.1, MemBWUtil: 0.5}), "compute_util"},
		{"compute above one", mk(good, profiler.KernelProfile{Duration: 10, ComputeUtil: 1.5, MemBWUtil: 0.5}), "compute_util"},
		{"nan membw", mk(good, profiler.KernelProfile{Duration: 10, ComputeUtil: 0.5, MemBWUtil: math.NaN()}), "membw_util"},
		{"membw above one", mk(good, profiler.KernelProfile{Duration: 10, ComputeUtil: 0.5, MemBWUtil: 2}), "membw_util"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Summarize(tc.prof, 1<<30)
			var pe *ProfileError
			if !errors.As(err, &pe) {
				t.Fatalf("want *ProfileError, got %v", err)
			}
			if pe.Field != tc.field || pe.Workload != "w" || pe.Kernel != 1 {
				t.Fatalf("error detail wrong: %+v", pe)
			}
			if !strings.Contains(pe.Error(), tc.field) {
				t.Fatalf("message %q omits field", pe.Error())
			}
		})
	}
}

func TestSummarizeSkipsZeroDurationKernels(t *testing.T) {
	// Memory-op slots legitimately occupy zero compute time; they must
	// be skipped, not rejected, and must not skew the averages.
	p := &profiler.Profile{Workload: "w", Kernels: []profiler.KernelProfile{
		{Duration: 0, ComputeUtil: 1, MemBWUtil: 1},
		{Duration: 1000, ComputeUtil: 0.6, MemBWUtil: 0.4},
	}}
	s, err := Summarize(p, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if s.Compute != 0.6 || s.MemBW != 0.4 {
		t.Fatalf("zero-duration kernel skewed summary: %+v", s)
	}
	// All-zero durations is still "no kernels".
	if _, err := Summarize(&profiler.Profile{Workload: "w", Kernels: []profiler.KernelProfile{
		{Duration: 0, ComputeUtil: 0.5, MemBWUtil: 0.5},
	}}, 0); err == nil {
		t.Fatal("all-zero-duration profile accepted")
	}
}

// canonicalPlacement renders a placement as an order-independent
// string: members sorted within each pair, pairs sorted overall.
func canonicalPlacement(pairs []Pair) string {
	keys := make([]string, 0, len(pairs))
	for _, p := range pairs {
		a, b := p.A.Workload, p.B.Workload
		if p.HasB() && b < a {
			a, b = b, a
		}
		keys = append(keys, a+"+"+b)
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

func randomJobs(rng *rand.Rand, n int) []Summary {
	jobs := make([]Summary, n)
	for i := range jobs {
		jobs[i] = Summary{
			Workload:    fmt.Sprintf("w%03d", i),
			Compute:     float64(rng.Intn(101)) / 100,
			MemBW:       float64(rng.Intn(101)) / 100,
			MemoryBytes: int64(rng.Intn(12)+1) << 30,
		}
	}
	return jobs
}

// FuzzPlaceGreedyPermutationInvariant is the placement-determinism
// property: for any seeded job set, PlaceGreedy produces the same
// placement (as a set of pairs) for every permutation of the input.
func FuzzPlaceGreedyPermutationInvariant(f *testing.F) {
	f.Add(int64(1), uint8(6))
	f.Add(int64(42), uint8(17))
	f.Add(int64(7), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		count := int(n%24) + 2
		rng := rand.New(rand.NewSource(seed))
		jobs := randomJobs(rng, count)
		want := canonicalPlacement(PlaceGreedy(jobs, 16<<30))
		for trial := 0; trial < 4; trial++ {
			perm := append([]Summary(nil), jobs...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			if got := canonicalPlacement(PlaceGreedy(perm, 16<<30)); got != want {
				t.Fatalf("permuted placement differs:\n got %s\nwant %s", got, want)
			}
		}
	})
}

// placeGreedyQuadratic is the pre-optimization reference: materialize
// every feasible pair, sort, match. Kept in test code as the benchmark
// baseline and as a semantic cross-check at small n.
func placeGreedyQuadratic(jobs []Summary, deviceMemory int64) []Pair {
	type cand struct {
		i, j  int
		score float64
	}
	var cands []cand
	for i := 0; i < len(jobs); i++ {
		for j := i + 1; j < len(jobs); j++ {
			if jobs[i].MemoryBytes+jobs[j].MemoryBytes > deviceMemory {
				continue
			}
			cands = append(cands, cand{i, j, Complementarity(jobs[i], jobs[j])})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		if cands[a].i != cands[b].i {
			return cands[a].i < cands[b].i
		}
		return cands[a].j < cands[b].j
	})
	used := make([]bool, len(jobs))
	var out []Pair
	for _, c := range cands {
		if used[c.i] || used[c.j] {
			continue
		}
		used[c.i], used[c.j] = true, true
		out = append(out, Pair{A: jobs[c.i], B: jobs[c.j]})
	}
	for i, u := range used {
		if !u {
			out = append(out, Pair{A: jobs[i]})
		}
	}
	return out
}

// TestPlaceGreedyPairsEverythingPairable: like the quadratic reference,
// the capped placer keeps pairing rounds going until no feasible pair
// remains, so it never uses more GPUs than the reference.
func TestPlaceGreedyPairsEverythingPairable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		jobs := randomJobs(rng, 2+rng.Intn(60))
		got := GPUs(PlaceGreedy(jobs, 16<<30))
		ref := GPUs(placeGreedyQuadratic(jobs, 16<<30))
		if got > ref {
			t.Fatalf("trial %d: capped placer used %d GPUs, reference %d", trial, got, ref)
		}
	}
}

func benchJobs(n int) []Summary {
	return randomJobs(rand.New(rand.NewSource(99)), n)
}

func BenchmarkPlaceGreedy1k(b *testing.B) {
	jobs := benchJobs(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PlaceGreedy(jobs, 16<<30)
	}
}

// BenchmarkPlaceGreedyQuadraticRef1k is the old O(n²) materialization,
// kept so the allocation win of the capped placer stays measurable.
func BenchmarkPlaceGreedyQuadraticRef1k(b *testing.B) {
	jobs := benchJobs(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		placeGreedyQuadratic(jobs, 16<<30)
	}
}
