// Package cluster prototypes the cluster-manager co-design the paper's §7
// proposes: using each job's offline compute/memory-intensity profile, the
// cluster manager places jobs with complementary resource profiles on the
// same GPU, so that the per-GPU Orion scheduler has opposite-profile
// kernels to interleave.
//
// The placer works on profile summaries (time-weighted average compute
// and memory-bandwidth intensity, plus resident memory) and produces GPU
// pairings; the harness evaluates a placement by running every pair under
// Orion and summing throughput.
package cluster

import (
	"fmt"
	"sort"

	"orion/internal/kernels"
	"orion/internal/profiler"
	"orion/internal/sim"
)

// Summary condenses a workload's offline profile into the signals the
// placer uses.
type Summary struct {
	// Workload is the workload id.
	Workload string
	// Compute and MemBW are time-weighted average intensities (0..1).
	Compute float64
	MemBW   float64
	// MemoryBytes is the job's resident device memory.
	MemoryBytes int64
	// RequestLatency is the dedicated request latency.
	RequestLatency sim.Duration
}

// ProfileError reports an invalid kernel measurement in a profile
// handed to Summarize: a negative duration or a NaN/out-of-range
// utilization. It is a typed error so callers can distinguish corrupt
// profiles from merely empty ones.
type ProfileError struct {
	// Workload is the profile's workload ID; Kernel the offending
	// kernel's index.
	Workload string
	Kernel   int
	// Field names the bad measurement; Value is what it held.
	Field string
	Value float64
}

func (e *ProfileError) Error() string {
	return fmt.Sprintf("cluster: profile %s kernel %d: bad %s %v", e.Workload, e.Kernel, e.Field, e.Value)
}

// Summarize condenses a profile (plus the job's memory footprint) for
// placement. Kernels with zero duration (memory-op slots that occupy no
// compute time) are skipped; a negative duration or a NaN/out-of-range
// utilization is a *ProfileError — placement decisions built on corrupt
// measurements would be silently wrong.
func Summarize(p *profiler.Profile, memoryBytes int64) (Summary, error) {
	if p == nil {
		return Summary{}, fmt.Errorf("cluster: nil profile")
	}
	var total, c, m float64
	for i, k := range p.Kernels {
		if k.Duration < 0 {
			return Summary{}, &ProfileError{Workload: p.Workload, Kernel: i, Field: "duration", Value: float64(k.Duration)}
		}
		if !(k.ComputeUtil >= 0) || k.ComputeUtil > 1 {
			return Summary{}, &ProfileError{Workload: p.Workload, Kernel: i, Field: "compute_util", Value: k.ComputeUtil}
		}
		if !(k.MemBWUtil >= 0) || k.MemBWUtil > 1 {
			return Summary{}, &ProfileError{Workload: p.Workload, Kernel: i, Field: "membw_util", Value: k.MemBWUtil}
		}
		if k.Duration == 0 {
			continue
		}
		d := float64(k.Duration)
		total += d
		c += k.ComputeUtil * d
		m += k.MemBWUtil * d
	}
	if total == 0 {
		return Summary{}, fmt.Errorf("cluster: profile %s has no kernels", p.Workload)
	}
	return Summary{
		Workload:       p.Workload,
		Compute:        c / total,
		MemBW:          m / total,
		MemoryBytes:    memoryBytes,
		RequestLatency: p.RequestLatency,
	}, nil
}

// Profile classifies a summary with the same roofline rule kernels use.
func (s Summary) Profile() kernels.Profile {
	return kernels.Classify(s.Compute, s.MemBW)
}

// Complementarity scores how well two jobs collocate: high when one is
// compute-leaning and the other memory-leaning (their kernels interleave
// without contending), low when both stress the same resource.
func Complementarity(a, b Summary) float64 {
	return a.Compute*b.MemBW + a.MemBW*b.Compute - a.Compute*b.Compute - a.MemBW*b.MemBW
}

// Pair is two jobs placed on one GPU (B may be empty for an odd job out).
type Pair struct {
	A, B Summary
}

// HasB reports whether the pair has a second job.
func (p Pair) HasB() bool { return p.B.Workload != "" }

// maxGreedyCandidates caps how many partners each job nominates per
// matching round: with jobs ordered by roofline leaning, a job's best
// partners sit at one end of the order, so a short scan from that end
// captures the same top pairs the exhaustive O(n²) enumeration would.
const maxGreedyCandidates = 8

// PlaceGreedy pairs jobs by descending complementarity, skipping pairs
// whose combined memory exceeds the device. Leftover jobs (odd counts,
// memory misfits) get their own GPU.
//
// Complementarity factors as (a.Compute-a.MemBW)·(b.MemBW-b.Compute),
// so with jobs sorted by leaning d = Compute-MemBW descending, a job's
// best partners among later positions are at the far end (compute-
// leaning jobs) or immediately adjacent (memory-leaning jobs). Each
// round every unmatched job nominates up to maxGreedyCandidates
// memory-feasible partners from that extreme, the candidates are
// matched greedily by score, and rounds repeat until no pair forms —
// allocating O(n·K) candidates instead of materializing all O(n²)
// pairs. Output is deterministic and invariant under permutations of
// the input as long as (leaning, workload, memory) triples are
// distinct: ties break on workload IDs, never on input positions.
func PlaceGreedy(jobs []Summary, deviceMemory int64) []Pair {
	n := len(jobs)
	lean := make([]float64, n)
	for i, j := range jobs {
		lean[i] = j.Compute - j.MemBW
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if lean[ia] != lean[ib] {
			return lean[ia] > lean[ib]
		}
		if jobs[ia].Workload != jobs[ib].Workload {
			return jobs[ia].Workload < jobs[ib].Workload
		}
		if jobs[ia].MemoryBytes != jobs[ib].MemoryBytes {
			return jobs[ia].MemoryBytes < jobs[ib].MemoryBytes
		}
		return ia < ib
	})

	type cand struct {
		a, b  int // indices into jobs
		score float64
	}
	var cands []cand // reused across rounds
	used := make([]bool, n)
	var out []Pair
	// active is compacted in place between rounds; copy so order stays
	// intact for the leftover sweep.
	active := append([]int(nil), order...)
	for len(active) > 1 {
		cands = cands[:0]
		for pi, i := range active {
			rest := active[pi+1:]
			feasible := 0
			// Compute-leaning jobs (lean >= 0) find their best partners
			// at the memory-leaning back of the order; memory-leaning
			// jobs among the closest (least memory-leaning) successors.
			if lean[i] >= 0 {
				for k := len(rest) - 1; k >= 0 && feasible < maxGreedyCandidates; k-- {
					j := rest[k]
					if jobs[i].MemoryBytes+jobs[j].MemoryBytes > deviceMemory {
						continue
					}
					cands = append(cands, cand{i, j, Complementarity(jobs[i], jobs[j])})
					feasible++
				}
			} else {
				for k := 0; k < len(rest) && feasible < maxGreedyCandidates; k++ {
					j := rest[k]
					if jobs[i].MemoryBytes+jobs[j].MemoryBytes > deviceMemory {
						continue
					}
					cands = append(cands, cand{i, j, Complementarity(jobs[i], jobs[j])})
					feasible++
				}
			}
		}
		sort.Slice(cands, func(x, y int) bool {
			cx, cy := cands[x], cands[y]
			if cx.score != cy.score {
				return cx.score > cy.score
			}
			if jobs[cx.a].Workload != jobs[cy.a].Workload {
				return jobs[cx.a].Workload < jobs[cy.a].Workload
			}
			return jobs[cx.b].Workload < jobs[cy.b].Workload
		})
		matched := 0
		for _, c := range cands {
			if used[c.a] || used[c.b] {
				continue
			}
			used[c.a], used[c.b] = true, true
			out = append(out, Pair{A: jobs[c.a], B: jobs[c.b]})
			matched++
		}
		if matched == 0 {
			break
		}
		next := active[:0]
		for _, i := range active {
			if !used[i] {
				next = append(next, i)
			}
		}
		active = next
	}
	for _, i := range order {
		if !used[i] {
			out = append(out, Pair{A: jobs[i]})
		}
	}
	return out
}

// PlaceNaive pairs jobs in arrival order — the profile-oblivious baseline
// a cluster manager without the co-design would produce.
func PlaceNaive(jobs []Summary, deviceMemory int64) []Pair {
	var out []Pair
	for i := 0; i < len(jobs); {
		if i+1 < len(jobs) && jobs[i].MemoryBytes+jobs[i+1].MemoryBytes <= deviceMemory {
			out = append(out, Pair{A: jobs[i], B: jobs[i+1]})
			i += 2
			continue
		}
		out = append(out, Pair{A: jobs[i]})
		i++
	}
	return out
}

// GPUs reports how many devices a placement uses.
func GPUs(pairs []Pair) int { return len(pairs) }
