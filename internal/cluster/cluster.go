// Package cluster prototypes the cluster-manager co-design the paper's §7
// proposes: using each job's offline compute/memory-intensity profile, the
// cluster manager places jobs with complementary resource profiles on the
// same GPU, so that the per-GPU Orion scheduler has opposite-profile
// kernels to interleave.
//
// The placer works on profile summaries (time-weighted average compute
// and memory-bandwidth intensity, plus resident memory) and produces GPU
// pairings; the harness evaluates a placement by running every pair under
// Orion and summing throughput.
package cluster

import (
	"fmt"
	"sort"

	"orion/internal/kernels"
	"orion/internal/profiler"
	"orion/internal/sim"
)

// Summary condenses a workload's offline profile into the signals the
// placer uses.
type Summary struct {
	// Workload is the workload id.
	Workload string
	// Compute and MemBW are time-weighted average intensities (0..1).
	Compute float64
	MemBW   float64
	// MemoryBytes is the job's resident device memory.
	MemoryBytes int64
	// RequestLatency is the dedicated request latency.
	RequestLatency sim.Duration
}

// Summarize condenses a profile (plus the job's memory footprint) for
// placement.
func Summarize(p *profiler.Profile, memoryBytes int64) (Summary, error) {
	if p == nil {
		return Summary{}, fmt.Errorf("cluster: nil profile")
	}
	var total, c, m float64
	for _, k := range p.Kernels {
		if k.Duration <= 0 {
			continue
		}
		d := float64(k.Duration)
		total += d
		c += k.ComputeUtil * d
		m += k.MemBWUtil * d
	}
	if total == 0 {
		return Summary{}, fmt.Errorf("cluster: profile %s has no kernels", p.Workload)
	}
	return Summary{
		Workload:       p.Workload,
		Compute:        c / total,
		MemBW:          m / total,
		MemoryBytes:    memoryBytes,
		RequestLatency: p.RequestLatency,
	}, nil
}

// Profile classifies a summary with the same roofline rule kernels use.
func (s Summary) Profile() kernels.Profile {
	return kernels.Classify(s.Compute, s.MemBW)
}

// Complementarity scores how well two jobs collocate: high when one is
// compute-leaning and the other memory-leaning (their kernels interleave
// without contending), low when both stress the same resource.
func Complementarity(a, b Summary) float64 {
	return a.Compute*b.MemBW + a.MemBW*b.Compute - a.Compute*b.Compute - a.MemBW*b.MemBW
}

// Pair is two jobs placed on one GPU (B may be empty for an odd job out).
type Pair struct {
	A, B Summary
}

// HasB reports whether the pair has a second job.
func (p Pair) HasB() bool { return p.B.Workload != "" }

// PlaceGreedy pairs jobs by descending complementarity, skipping pairs
// whose combined memory exceeds the device. Leftover jobs (odd counts,
// memory misfits) get their own GPU.
func PlaceGreedy(jobs []Summary, deviceMemory int64) []Pair {
	type cand struct {
		i, j  int
		score float64
	}
	var cands []cand
	for i := 0; i < len(jobs); i++ {
		for j := i + 1; j < len(jobs); j++ {
			if jobs[i].MemoryBytes+jobs[j].MemoryBytes > deviceMemory {
				continue
			}
			cands = append(cands, cand{i, j, Complementarity(jobs[i], jobs[j])})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		if cands[a].i != cands[b].i {
			return cands[a].i < cands[b].i
		}
		return cands[a].j < cands[b].j
	})
	used := make([]bool, len(jobs))
	var out []Pair
	for _, c := range cands {
		if used[c.i] || used[c.j] {
			continue
		}
		used[c.i], used[c.j] = true, true
		out = append(out, Pair{A: jobs[c.i], B: jobs[c.j]})
	}
	for i, u := range used {
		if !u {
			out = append(out, Pair{A: jobs[i]})
		}
	}
	return out
}

// PlaceNaive pairs jobs in arrival order — the profile-oblivious baseline
// a cluster manager without the co-design would produce.
func PlaceNaive(jobs []Summary, deviceMemory int64) []Pair {
	var out []Pair
	for i := 0; i < len(jobs); {
		if i+1 < len(jobs) && jobs[i].MemoryBytes+jobs[i+1].MemoryBytes <= deviceMemory {
			out = append(out, Pair{A: jobs[i], B: jobs[i+1]})
			i += 2
			continue
		}
		out = append(out, Pair{A: jobs[i]})
		i++
	}
	return out
}

// GPUs reports how many devices a placement uses.
func GPUs(pairs []Pair) int { return len(pairs) }
