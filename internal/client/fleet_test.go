package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"orion/internal/fleet"
	"orion/internal/server"
)

func TestFleetRoundTrip(t *testing.T) {
	s, err := server.New(server.Config{
		FleetSpec:        "zones=1,racks=1,nodes=1,gpus=2,mix=v100:1,seed=1",
		FleetEvalHorizon: -1, // placement only; evaluation has its own tests
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := New(ts.URL, fastOpts())
	ctx := context.Background()

	sts, err := c.SubmitFleetJobs(ctx, []fleet.JobSpec{
		{ID: "a", Workload: "resnet50-inf", MemoryBytes: 2 << 30},
		{ID: "b", Workload: "bert-inf", Priority: "hp", MemoryBytes: 2 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 || sts[0].State != server.FleetPlaced || sts[1].State != server.FleetPlaced {
		t.Fatalf("submit outcomes: %+v", sts)
	}

	st, err := c.FleetJob(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Placement == nil || st.Placement.Device == "" {
		t.Fatalf("job a has no binding: %+v", st)
	}

	snap, err := c.FleetSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stats.JobsPlaced != 2 || snap.PlacementHash == "" {
		t.Fatalf("snapshot: %+v", snap)
	}

	ev, err := c.EvictFleetJob(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if ev.State != server.FleetEvicted {
		t.Fatalf("evict state = %s", ev.State)
	}
	snap, err = c.FleetSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stats.JobsPlaced != 1 || snap.Stats.Evictions != 1 {
		t.Fatalf("post-evict snapshot: %+v", snap)
	}
}

// TestFleetOperatorRoundTrip drives the operator surface through the
// client: list devices, drain one (cordon + displacement), uncordon it,
// and arm/inspect the failure process.
func TestFleetOperatorRoundTrip(t *testing.T) {
	s, err := server.New(server.Config{
		FleetSpec:         "zones=1,racks=1,nodes=1,gpus=2,mix=v100:1,seed=1",
		FleetEvalHorizon:  -1,
		FleetChaosProfile: "mtbf=1000000,mttr=10,steps=1,seed=1",
		FleetChaosTick:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := New(ts.URL, fastOpts())
	ctx := context.Background()

	if _, err := c.SubmitFleetJobs(ctx, []fleet.JobSpec{
		{ID: "a", Workload: "resnet50-inf", MemoryBytes: 2 << 30},
	}); err != nil {
		t.Fatal(err)
	}
	devs, err := c.FleetDevices(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 2 {
		t.Fatalf("devices = %d, want 2", len(devs))
	}
	var bound int
	for _, d := range devs {
		if len(d.Residents) > 0 {
			bound = d.Index
		}
	}
	dst, err := c.DrainDevice(ctx, bound)
	if err != nil {
		t.Fatal(err)
	}
	if !dst.Cordoned || dst.Displaced != 1 {
		t.Fatalf("drain outcome: %+v", dst)
	}
	st, err := c.FleetJob(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.FleetPlaced || st.Placement.DeviceIndex == bound {
		t.Fatalf("drained resident not re-placed elsewhere: %+v", st)
	}
	ust, err := c.UncordonDevice(ctx, bound)
	if err != nil {
		t.Fatal(err)
	}
	if ust.Cordoned {
		t.Fatalf("uncordon left the device cordoned: %+v", ust)
	}

	cst, err := c.FleetChaosStart(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !cst.Armed {
		t.Fatalf("chaos start did not arm: %+v", cst)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cst, err = c.FleetChaosStatus(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if cst.Exhausted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("chaos never exhausted its 1-step bound: %+v", cst)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFleetOpsDegradedParity: the fleet operator endpoints answer a
// durability-degraded daemon's 503 exactly like experiment submissions,
// so every fleet client call must surface ErrDurabilityDegraded and
// honor the Retry-After hint between attempts.
func TestFleetOpsDegradedParity(t *testing.T) {
	degraded := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"error":               "journal disk full: durability degraded, not accepting new work",
			"durability_degraded": true,
		})
	}))
	defer degraded.Close()

	opts := fastOpts()
	opts.MaxAttempts = 2
	c := New(degraded.URL, opts)
	ctx := context.Background()

	calls := map[string]func() error{
		"CordonDevice":    func() error { _, err := c.CordonDevice(ctx, 0); return err },
		"DrainDevice":     func() error { _, err := c.DrainDevice(ctx, 0); return err },
		"FleetChaosStart": func() error { _, err := c.FleetChaosStart(ctx); return err },
		"SubmitFleetJobs": func() error {
			_, err := c.SubmitFleetJobs(ctx, []fleet.JobSpec{{ID: "x", Workload: "resnet50-inf", MemoryBytes: 1 << 30}})
			return err
		},
	}
	for name, call := range calls {
		start := time.Now()
		err := call()
		if err == nil {
			t.Fatalf("%s against a degraded server must fail", name)
		}
		if !errors.Is(err, ErrDurabilityDegraded) {
			t.Errorf("%s: errors.Is(err, ErrDurabilityDegraded) = false; err = %v", name, err)
		}
		if wait := time.Since(start); wait < time.Second {
			t.Errorf("%s: gave up after %v, Retry-After demanded >= 1s between attempts", name, wait)
		}
	}
}
