package client

import (
	"context"
	"net/http/httptest"
	"testing"

	"orion/internal/fleet"
	"orion/internal/server"
)

func TestFleetRoundTrip(t *testing.T) {
	s, err := server.New(server.Config{
		FleetSpec:        "zones=1,racks=1,nodes=1,gpus=2,mix=v100:1,seed=1",
		FleetEvalHorizon: -1, // placement only; evaluation has its own tests
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := New(ts.URL, fastOpts())
	ctx := context.Background()

	sts, err := c.SubmitFleetJobs(ctx, []fleet.JobSpec{
		{ID: "a", Workload: "resnet50-inf", MemoryBytes: 2 << 30},
		{ID: "b", Workload: "bert-inf", Priority: "hp", MemoryBytes: 2 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 || sts[0].State != server.FleetPlaced || sts[1].State != server.FleetPlaced {
		t.Fatalf("submit outcomes: %+v", sts)
	}

	st, err := c.FleetJob(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Placement == nil || st.Placement.Device == "" {
		t.Fatalf("job a has no binding: %+v", st)
	}

	snap, err := c.FleetSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stats.JobsPlaced != 2 || snap.PlacementHash == "" {
		t.Fatalf("snapshot: %+v", snap)
	}

	ev, err := c.EvictFleetJob(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if ev.State != server.FleetEvicted {
		t.Fatalf("evict state = %s", ev.State)
	}
	snap, err = c.FleetSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stats.JobsPlaced != 1 || snap.Stats.Evictions != 1 {
		t.Fatalf("post-evict snapshot: %+v", snap)
	}
}
