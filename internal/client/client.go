// Package client is a resilient Go client for the orion-serve control
// plane. It wraps the HTTP API with per-request timeouts, exponential
// backoff with jitter that honors Retry-After hints, and idempotent
// resubmission: Submit attaches a client-supplied Idempotency-Key, so a
// retry after an ambiguous failure (timeout, crashed daemon, dropped
// response) lands on the already-accepted job instead of double-running
// it — the server journals the key, so this holds across daemon
// restarts too.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"orion/internal/harness"
	"orion/internal/server"
)

// ErrDurabilityDegraded marks a rejection from a server whose journal
// disk is full: the 503 body carried "durability_degraded": true. The
// client still retries with the server's Retry-After hint like any
// other 503 (the condition is transient by design — the server probes
// for space and reopens admission), but callers that exhaust their
// attempts can tell this apart from a drain with
// errors.Is(err, ErrDurabilityDegraded) and decide, say, to page an
// operator about disk space instead of silently re-queueing.
var ErrDurabilityDegraded = errors.New("orion-serve: durability degraded (journal disk full)")

// Options tunes a Client.
type Options struct {
	// Timeout bounds each individual HTTP attempt (default 10s).
	Timeout time.Duration
	// MaxAttempts bounds retries per call, first try included (default 6).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms); attempt n
	// waits BaseDelay<<n, capped at MaxDelay, jittered to [d/2, d), and
	// overridden upward by a server Retry-After hint.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 5s).
	MaxDelay time.Duration
	// HTTPClient overrides the transport (tests). Its Timeout is left
	// alone; per-attempt deadlines come from the request context.
	HTTPClient *http.Client
	// rng seeds the jitter deterministically in tests.
	rng *rand.Rand
	// now overrides the clock for HTTP-date Retry-After parsing (tests).
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 6
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 100 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 5 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// APIError is a non-retryable server rejection (4xx other than 429).
type APIError struct {
	Code int
	Msg  string
}

func (e *APIError) Error() string { return fmt.Sprintf("orion-serve: %d: %s", e.Code, e.Msg) }

// Client talks to one orion-serve base URL ("http://host:port").
type Client struct {
	base string
	opts Options
}

// New builds a client for the given base URL.
func New(base string, opts Options) *Client {
	return &Client{base: base, opts: opts.withDefaults()}
}

// retryable reports whether a status code is worth another attempt:
// overload (429), drain (503), and transient server faults.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// backoff computes the wait before the next attempt, honoring a
// Retry-After hint when it is longer than the exponential schedule.
func (c *Client) backoff(attempt int, retryAfter string) time.Duration {
	d := c.opts.BaseDelay << attempt
	if d > c.opts.MaxDelay || d <= 0 {
		d = c.opts.MaxDelay
	}
	// Full jitter on the upper half keeps retry storms decorrelated
	// without ever going below half the schedule.
	if c.opts.rng != nil {
		d = d/2 + time.Duration(c.opts.rng.Int63n(int64(d/2)+1))
	} else {
		d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	}
	if ra := parseRetryAfter(retryAfter, c.opts.now()); ra > d {
		d = ra
	}
	return d
}

// parseRetryAfter interprets a Retry-After header, which RFC 7231
// permits as either delta-seconds or an HTTP-date. Both the 429
// overload and the 503 drain rejection paths funnel through here, so a
// draining daemon's hint stretches the backoff the same way an
// overloaded one's does. Zero means no usable hint.
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// do runs one request with retries. build must return a fresh request
// each attempt (bodies are consumed). A nil error means resp has a
// 2xx status and its body is fully read into the returned bytes.
func (c *Client) do(ctx context.Context, build func() (*http.Request, error)) (int, http.Header, []byte, error) {
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			ra := ""
			if lastErr != nil {
				if re, ok := lastErr.(*retryError); ok {
					ra = re.retryAfter
				}
			}
			select {
			case <-ctx.Done():
				return 0, nil, nil, fmt.Errorf("client: %w (last: %v)", ctx.Err(), lastErr)
			case <-time.After(c.backoff(attempt-1, ra)):
			}
		}
		req, err := build()
		if err != nil {
			return 0, nil, nil, err
		}
		actx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
		req = req.WithContext(actx)
		resp, err := c.opts.HTTPClient.Do(req)
		if err != nil {
			cancel()
			lastErr = err // network-level failure: retry
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode < 300:
			return resp.StatusCode, resp.Header, body, nil
		case retryable(resp.StatusCode):
			lastErr = &retryError{
				code:       resp.StatusCode,
				msg:        errorMessage(body),
				retryAfter: resp.Header.Get("Retry-After"),
				degraded:   durabilityDegraded(body),
			}
			continue
		default:
			return 0, nil, nil, &APIError{Code: resp.StatusCode, Msg: errorMessage(body)}
		}
	}
	return 0, nil, nil, fmt.Errorf("client: giving up after %d attempts: %w", c.opts.MaxAttempts, lastErr)
}

// retryError carries a retryable HTTP rejection between attempts.
type retryError struct {
	code       int
	msg        string
	retryAfter string
	degraded   bool
}

func (e *retryError) Error() string { return fmt.Sprintf("orion-serve: %d: %s", e.code, e.msg) }

// Is lets errors.Is(err, ErrDurabilityDegraded) see through the
// give-up wrapper when the final rejection came from a degraded server.
func (e *retryError) Is(target error) bool {
	return target == ErrDurabilityDegraded && e.degraded
}

// durabilityDegraded reports whether a rejection body carries the
// server's degraded-mode marker.
func durabilityDegraded(body []byte) bool {
	var db struct {
		DurabilityDegraded bool `json:"durability_degraded"`
	}
	return json.Unmarshal(body, &db) == nil && db.DurabilityDegraded
}

// errorMessage extracts the server's {"error": ...} body, falling back
// to the raw bytes.
func errorMessage(body []byte) string {
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		return eb.Error
	}
	return string(bytes.TrimSpace(body))
}

// Submit sends an experiment, keyed by idemKey when non-empty. Safe to
// call again with the same key after any failure: the server (and its
// journal, across crashes) deduplicates, so at most one job runs.
func (c *Client) Submit(ctx context.Context, cfg harness.Config, idemKey string) (server.JobStatus, error) {
	body, err := json.Marshal(cfg)
	if err != nil {
		return server.JobStatus{}, err
	}
	_, _, out, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, c.base+"/v1/experiments", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if idemKey != "" {
			req.Header.Set("Idempotency-Key", idemKey)
		}
		return req, nil
	})
	if err != nil {
		return server.JobStatus{}, err
	}
	var st server.JobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		return server.JobStatus{}, fmt.Errorf("client: decode submit response: %w", err)
	}
	return st, nil
}

// Resume re-queues a parked job — one whose wall-clock deadline expired
// after a checkpoint was persisted — optionally with a larger deadline
// for the resumed attempt (zero keeps the job's previous budget). The
// run continues from the persisted checkpoint. A 503 from a draining
// daemon retries with the server's Retry-After hint like any other
// call; resuming a job that is not parked fails with a 409 APIError.
func (c *Client) Resume(ctx context.Context, id string, deadline time.Duration) (server.JobStatus, error) {
	var body []byte
	if deadline > 0 {
		var err error
		if body, err = json.Marshal(map[string]string{"deadline": deadline.String()}); err != nil {
			return server.JobStatus{}, err
		}
	}
	_, _, out, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, c.base+"/v1/experiments/"+id+"/resume", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return server.JobStatus{}, err
	}
	var st server.JobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		return server.JobStatus{}, fmt.Errorf("client: decode resume response: %w", err)
	}
	return st, nil
}

// Status fetches one job.
func (c *Client) Status(ctx context.Context, id string) (server.JobStatus, error) {
	_, _, out, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+"/v1/experiments/"+id, nil)
	})
	if err != nil {
		return server.JobStatus{}, err
	}
	var st server.JobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		return server.JobStatus{}, fmt.Errorf("client: decode status: %w", err)
	}
	return st, nil
}

// List fetches every retained job (results elided by the server).
func (c *Client) List(ctx context.Context) ([]server.JobStatus, error) {
	_, _, out, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+"/v1/experiments", nil)
	})
	if err != nil {
		return nil, err
	}
	var sts []server.JobStatus
	if err := json.Unmarshal(out, &sts); err != nil {
		return nil, fmt.Errorf("client: decode list: %w", err)
	}
	return sts, nil
}

// Await polls a job until it reaches a terminal state or ctx expires.
// Transient polling failures (daemon restarting mid-poll, say) retry
// inside Status; Await itself only fails on a non-retryable error or
// context expiry.
func (c *Client) Await(ctx context.Context, id string, poll time.Duration) (server.JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return server.JobStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, fmt.Errorf("client: await %s: %w", id, ctx.Err())
		case <-time.After(poll):
		}
	}
}
