package client

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"orion/internal/harness"
	"orion/internal/server"
	"orion/internal/sim"
)

func testConfig() harness.Config {
	return harness.Config{
		Scheme:  harness.Orion,
		Horizon: 2 * sim.Second,
		Warmup:  500 * sim.Millisecond,
		Seed:    7,
		Jobs: []harness.JobConfig{
			{Workload: "resnet50-inf", Priority: "hp", Arrival: "poisson", RPS: 40},
			{Workload: "mobilenetv2-train", Priority: "be"},
		},
	}
}

// fastOpts keeps retries snappy and the jitter deterministic.
func fastOpts() Options {
	return Options{
		Timeout:     2 * time.Second,
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		rng:         rand.New(rand.NewSource(1)),
	}
}

// flakyHandler fails the first n requests with code, then delegates.
type flakyHandler struct {
	mu       sync.Mutex
	failures int
	code     int
	header   http.Header
	attempts int
	inner    http.Handler
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.attempts++
	fail := f.attempts <= f.failures
	f.mu.Unlock()
	if fail {
		for k, vs := range f.header {
			for _, v := range vs {
				w.Header().Set(k, v)
			}
		}
		http.Error(w, `{"error":"induced failure"}`, f.code)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func (f *flakyHandler) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts
}

// TestRetriesTransientFailures: 429 and 5xx responses retry with
// backoff until the server recovers; the call succeeds transparently.
func TestRetriesTransientFailures(t *testing.T) {
	for _, code := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusInternalServerError} {
		s, err := server.New(server.Config{Workers: 1, QueueDepth: 4})
		if err != nil {
			t.Fatal(err)
		}
		fh := &flakyHandler{failures: 3, code: code, inner: s.Handler()}
		ts := httptest.NewServer(fh)

		c := New(ts.URL, fastOpts())
		st, err := c.Submit(context.Background(), testConfig(), "retry-"+http.StatusText(code))
		if err != nil {
			t.Fatalf("code %d: submit failed despite retries: %v", code, err)
		}
		if got := fh.count(); got != 4 {
			t.Errorf("code %d: %d attempts, want 4 (3 failures + 1 success)", code, got)
		}
		final, err := c.Await(context.Background(), st.ID, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("code %d: await: %v", code, err)
		}
		if final.State != server.StateDone {
			t.Errorf("code %d: job state %q (%s)", code, final.State, final.Error)
		}
		ts.Close()
		s.Shutdown(context.Background())
	}
}

// TestHonorsRetryAfter: a Retry-After hint longer than the backoff
// schedule stretches the wait.
func TestHonorsRetryAfter(t *testing.T) {
	s, err := server.New(server.Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	h := http.Header{}
	h.Set("Retry-After", "1")
	fh := &flakyHandler{failures: 1, code: http.StatusTooManyRequests, header: h, inner: s.Handler()}
	ts := httptest.NewServer(fh)
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	start := time.Now()
	if _, err := c.Submit(context.Background(), testConfig(), ""); err != nil {
		t.Fatal(err)
	}
	if wait := time.Since(start); wait < time.Second {
		t.Errorf("retried after %v, Retry-After demanded >= 1s", wait)
	}
}

// TestGivesUpAfterMaxAttempts: a persistently failing server eventually
// surfaces the last error instead of retrying forever.
func TestGivesUpAfterMaxAttempts(t *testing.T) {
	fh := &flakyHandler{failures: 1 << 30, code: http.StatusServiceUnavailable,
		inner: http.NotFoundHandler()}
	ts := httptest.NewServer(fh)
	defer ts.Close()

	opts := fastOpts()
	opts.MaxAttempts = 3
	c := New(ts.URL, opts)
	_, err := c.Submit(context.Background(), testConfig(), "")
	if err == nil {
		t.Fatal("submit must fail once attempts are exhausted")
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Errorf("error = %v", err)
	}
	if got := fh.count(); got != 3 {
		t.Errorf("%d attempts, want 3", got)
	}
}

// TestNonRetryableErrors: a 4xx rejection (bad config) fails
// immediately with an APIError — no pointless retries.
func TestNonRetryableErrors(t *testing.T) {
	s, err := server.New(server.Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	fh := &flakyHandler{inner: s.Handler()}
	ts := httptest.NewServer(fh)
	defer ts.Close()

	cfg := testConfig()
	cfg.Scheme = "no-such-scheme"
	c := New(ts.URL, fastOpts())
	_, err = c.Submit(context.Background(), cfg, "")
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("error = %v (%T), want *APIError", err, err)
	}
	if apiErr.Code != http.StatusUnprocessableEntity {
		t.Errorf("code = %d, want 422", apiErr.Code)
	}
	if got := fh.count(); got != 1 {
		t.Errorf("%d attempts for a non-retryable error, want 1", got)
	}
}

// TestIdempotentResubmission: retrying a submit with the same key —
// even when the client never saw the first acknowledgement — lands on
// one job, not two.
func TestIdempotentResubmission(t *testing.T) {
	s, err := server.New(server.Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	// ackEater swallows the first successful response after passing the
	// request through, simulating an ack lost on the wire.
	first := true
	var mu sync.Mutex
	inner := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		eat := first && r.Method == http.MethodPost
		first = false
		mu.Unlock()
		if eat {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r) // server accepts and journals the job
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("hijacking unsupported")
				return
			}
			conn, _, _ := hj.Hijack()
			conn.Close() // client sees a dropped connection
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	st, err := c.Submit(context.Background(), testConfig(), "lost-ack")
	if err != nil {
		t.Fatalf("submit with eaten ack: %v", err)
	}
	final, err := c.Await(context.Background(), st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateDone {
		t.Fatalf("job: %q (%s)", final.State, final.Error)
	}
	jobs, err := c.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		b, _ := json.Marshal(jobs)
		t.Errorf("lost ack + retry produced %d jobs, want 1: %s", len(jobs), b)
	}
}

// TestAwaitRespectsContext: Await returns promptly when its context
// expires while the job is still queued.
func TestAwaitRespectsContext(t *testing.T) {
	unblocked := make(chan struct{})
	defer close(unblocked)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Always "queued": the job never finishes.
		json.NewEncoder(w).Encode(server.JobStatus{ID: "exp-000001", State: server.StateQueued})
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := c.Await(ctx, "exp-000001", 10*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "context deadline exceeded") {
		t.Fatalf("await error = %v", err)
	}
}

// TestParseRetryAfter: both RFC 7231 forms — delta-seconds and
// HTTP-date — must yield a usable wait; garbage and stale dates must
// not.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0}, // stale date
		{"soon", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in, now); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestHonorsRetryAfterHTTPDate: an HTTP-date Retry-After stretches the
// backoff exactly like the delta-seconds form.
func TestHonorsRetryAfterHTTPDate(t *testing.T) {
	s, err := server.New(server.Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	// Freeze the clock the parser sees so the date→duration conversion is
	// deterministic; the actual sleep still happens in real time.
	base := time.Now().Truncate(time.Second)
	h := http.Header{}
	h.Set("Retry-After", base.Add(time.Second).UTC().Format(http.TimeFormat))
	fh := &flakyHandler{failures: 1, code: http.StatusServiceUnavailable, header: h, inner: s.Handler()}
	ts := httptest.NewServer(fh)
	defer ts.Close()

	opts := fastOpts()
	opts.now = func() time.Time { return base }
	c := New(ts.URL, opts)
	start := time.Now()
	if _, err := c.Submit(context.Background(), testConfig(), ""); err != nil {
		t.Fatal(err)
	}
	if wait := time.Since(start); wait < time.Second {
		t.Errorf("retried after %v, HTTP-date Retry-After demanded >= 1s", wait)
	}
}

// TestDrainRejectionsBackOff: a genuinely draining orion-serve answers
// 503 with its configured Retry-After hint; the client must stretch its
// backoff to that hint between attempts — the drain path is exactly as
// header-aware as the 429 overload path — and surface the drain message
// once attempts are exhausted.
func TestDrainRejectionsBackOff(t *testing.T) {
	s, err := server.New(server.Config{Workers: 1, QueueDepth: 4, RetryAfter: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The handler outlives the drain: every request now gets 503 +
	// Retry-After, the worst case a client can hit.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	opts := fastOpts()
	opts.MaxAttempts = 2
	c := New(ts.URL, opts)
	start := time.Now()
	_, err = c.Submit(context.Background(), testConfig(), "")
	if err == nil {
		t.Fatal("submit to a draining server must eventually fail")
	}
	if !strings.Contains(err.Error(), "draining") {
		t.Errorf("error = %v, want the drain rejection surfaced", err)
	}
	if wait := time.Since(start); wait < time.Second {
		t.Errorf("gave up after %v, Retry-After demanded >= 1s between attempts", wait)
	}
}

// TestResumeEndpoint: Resume round-trips through the client — resuming
// a job that is not parked is a 409 APIError, not a retry loop.
func TestResumeEndpoint(t *testing.T) {
	s, err := server.New(server.Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	st, err := c.Submit(context.Background(), testConfig(), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Await(context.Background(), st.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	_, err = c.Resume(context.Background(), st.ID, 30*time.Second)
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("resume of a done job: %v (%T), want *APIError", err, err)
	}
	if apiErr.Code != http.StatusConflict {
		t.Errorf("code = %d, want 409", apiErr.Code)
	}
}

// TestDegradedRejectionsAreDistinguishable: a 503 whose body carries
// "durability_degraded": true (journal disk full) must surface as
// ErrDurabilityDegraded after retries are exhausted — so callers can
// page about disk space instead of treating it as an ordinary drain —
// while a plain drain 503 must NOT match the sentinel. The degraded
// path keeps the same Retry-After-aware backoff as every other 503.
func TestDegradedRejectionsAreDistinguishable(t *testing.T) {
	degraded := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"error":               "journal disk full: durability degraded, not accepting new work",
			"durability_degraded": true,
		})
	}))
	defer degraded.Close()

	opts := fastOpts()
	opts.MaxAttempts = 2
	c := New(degraded.URL, opts)
	start := time.Now()
	_, err := c.Submit(context.Background(), testConfig(), "")
	if err == nil {
		t.Fatal("submit to a degraded server must eventually fail")
	}
	if !errors.Is(err, ErrDurabilityDegraded) {
		t.Errorf("errors.Is(err, ErrDurabilityDegraded) = false, want true; err = %v", err)
	}
	if !strings.Contains(err.Error(), "disk full") {
		t.Errorf("error = %v, want the server's message surfaced", err)
	}
	if wait := time.Since(start); wait < time.Second {
		t.Errorf("gave up after %v, Retry-After demanded >= 1s between attempts", wait)
	}

	// Control: an ordinary drain 503 does not match the sentinel.
	s, err := server.New(server.Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	draining := httptest.NewServer(s.Handler())
	defer draining.Close()
	c = New(draining.URL, opts)
	_, err = c.Submit(context.Background(), testConfig(), "")
	if err == nil {
		t.Fatal("submit to a draining server must eventually fail")
	}
	if errors.Is(err, ErrDurabilityDegraded) {
		t.Errorf("drain rejection matched ErrDurabilityDegraded; err = %v", err)
	}
}
