package client

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"orion/internal/harness"
	"orion/internal/server"
	"orion/internal/sim"
)

func testConfig() harness.Config {
	return harness.Config{
		Scheme:  harness.Orion,
		Horizon: 2 * sim.Second,
		Warmup:  500 * sim.Millisecond,
		Seed:    7,
		Jobs: []harness.JobConfig{
			{Workload: "resnet50-inf", Priority: "hp", Arrival: "poisson", RPS: 40},
			{Workload: "mobilenetv2-train", Priority: "be"},
		},
	}
}

// fastOpts keeps retries snappy and the jitter deterministic.
func fastOpts() Options {
	return Options{
		Timeout:     2 * time.Second,
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		rng:         rand.New(rand.NewSource(1)),
	}
}

// flakyHandler fails the first n requests with code, then delegates.
type flakyHandler struct {
	mu       sync.Mutex
	failures int
	code     int
	header   http.Header
	attempts int
	inner    http.Handler
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.attempts++
	fail := f.attempts <= f.failures
	f.mu.Unlock()
	if fail {
		for k, vs := range f.header {
			for _, v := range vs {
				w.Header().Set(k, v)
			}
		}
		http.Error(w, `{"error":"induced failure"}`, f.code)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func (f *flakyHandler) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts
}

// TestRetriesTransientFailures: 429 and 5xx responses retry with
// backoff until the server recovers; the call succeeds transparently.
func TestRetriesTransientFailures(t *testing.T) {
	for _, code := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusInternalServerError} {
		s, err := server.New(server.Config{Workers: 1, QueueDepth: 4})
		if err != nil {
			t.Fatal(err)
		}
		fh := &flakyHandler{failures: 3, code: code, inner: s.Handler()}
		ts := httptest.NewServer(fh)

		c := New(ts.URL, fastOpts())
		st, err := c.Submit(context.Background(), testConfig(), "retry-"+http.StatusText(code))
		if err != nil {
			t.Fatalf("code %d: submit failed despite retries: %v", code, err)
		}
		if got := fh.count(); got != 4 {
			t.Errorf("code %d: %d attempts, want 4 (3 failures + 1 success)", code, got)
		}
		final, err := c.Await(context.Background(), st.ID, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("code %d: await: %v", code, err)
		}
		if final.State != server.StateDone {
			t.Errorf("code %d: job state %q (%s)", code, final.State, final.Error)
		}
		ts.Close()
		s.Shutdown(context.Background())
	}
}

// TestHonorsRetryAfter: a Retry-After hint longer than the backoff
// schedule stretches the wait.
func TestHonorsRetryAfter(t *testing.T) {
	s, err := server.New(server.Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	h := http.Header{}
	h.Set("Retry-After", "1")
	fh := &flakyHandler{failures: 1, code: http.StatusTooManyRequests, header: h, inner: s.Handler()}
	ts := httptest.NewServer(fh)
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	start := time.Now()
	if _, err := c.Submit(context.Background(), testConfig(), ""); err != nil {
		t.Fatal(err)
	}
	if wait := time.Since(start); wait < time.Second {
		t.Errorf("retried after %v, Retry-After demanded >= 1s", wait)
	}
}

// TestGivesUpAfterMaxAttempts: a persistently failing server eventually
// surfaces the last error instead of retrying forever.
func TestGivesUpAfterMaxAttempts(t *testing.T) {
	fh := &flakyHandler{failures: 1 << 30, code: http.StatusServiceUnavailable,
		inner: http.NotFoundHandler()}
	ts := httptest.NewServer(fh)
	defer ts.Close()

	opts := fastOpts()
	opts.MaxAttempts = 3
	c := New(ts.URL, opts)
	_, err := c.Submit(context.Background(), testConfig(), "")
	if err == nil {
		t.Fatal("submit must fail once attempts are exhausted")
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Errorf("error = %v", err)
	}
	if got := fh.count(); got != 3 {
		t.Errorf("%d attempts, want 3", got)
	}
}

// TestNonRetryableErrors: a 4xx rejection (bad config) fails
// immediately with an APIError — no pointless retries.
func TestNonRetryableErrors(t *testing.T) {
	s, err := server.New(server.Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	fh := &flakyHandler{inner: s.Handler()}
	ts := httptest.NewServer(fh)
	defer ts.Close()

	cfg := testConfig()
	cfg.Scheme = "no-such-scheme"
	c := New(ts.URL, fastOpts())
	_, err = c.Submit(context.Background(), cfg, "")
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("error = %v (%T), want *APIError", err, err)
	}
	if apiErr.Code != http.StatusUnprocessableEntity {
		t.Errorf("code = %d, want 422", apiErr.Code)
	}
	if got := fh.count(); got != 1 {
		t.Errorf("%d attempts for a non-retryable error, want 1", got)
	}
}

// TestIdempotentResubmission: retrying a submit with the same key —
// even when the client never saw the first acknowledgement — lands on
// one job, not two.
func TestIdempotentResubmission(t *testing.T) {
	s, err := server.New(server.Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	// ackEater swallows the first successful response after passing the
	// request through, simulating an ack lost on the wire.
	first := true
	var mu sync.Mutex
	inner := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		eat := first && r.Method == http.MethodPost
		first = false
		mu.Unlock()
		if eat {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r) // server accepts and journals the job
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("hijacking unsupported")
				return
			}
			conn, _, _ := hj.Hijack()
			conn.Close() // client sees a dropped connection
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	st, err := c.Submit(context.Background(), testConfig(), "lost-ack")
	if err != nil {
		t.Fatalf("submit with eaten ack: %v", err)
	}
	final, err := c.Await(context.Background(), st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateDone {
		t.Fatalf("job: %q (%s)", final.State, final.Error)
	}
	jobs, err := c.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		b, _ := json.Marshal(jobs)
		t.Errorf("lost ack + retry produced %d jobs, want 1: %s", len(jobs), b)
	}
}

// TestAwaitRespectsContext: Await returns promptly when its context
// expires while the job is still queued.
func TestAwaitRespectsContext(t *testing.T) {
	unblocked := make(chan struct{})
	defer close(unblocked)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Always "queued": the job never finishes.
		json.NewEncoder(w).Encode(server.JobStatus{ID: "exp-000001", State: server.StateQueued})
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := c.Await(ctx, "exp-000001", 10*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "context deadline exceeded") {
		t.Fatalf("await error = %v", err)
	}
}
