package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"orion/internal/fleet"
	"orion/internal/server"
)

// SubmitFleetJobs streams a batch of jobs onto the fleet placer and
// returns each job's placement outcome (placed with a binding, or
// pending when nothing currently fits). Retries follow the same backoff
// policy as experiment submissions; note that unlike Submit there is no
// idempotency key — supply explicit JobSpec IDs to make retries after
// ambiguous failures detectable (a duplicate ID answers 409).
func (c *Client) SubmitFleetJobs(ctx context.Context, jobs []fleet.JobSpec) ([]server.FleetJobStatus, error) {
	body, err := json.Marshal(map[string][]fleet.JobSpec{"jobs": jobs})
	if err != nil {
		return nil, err
	}
	_, _, out, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, c.base+"/v1/fleet/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return nil, err
	}
	var sts []server.FleetJobStatus
	if err := json.Unmarshal(out, &sts); err != nil {
		return nil, fmt.Errorf("client: decode fleet submit response: %w", err)
	}
	return sts, nil
}

// FleetJob fetches one fleet job's placement and, once the background
// evaluation has run, its per-device interference summary.
func (c *Client) FleetJob(ctx context.Context, id string) (server.FleetJobStatus, error) {
	_, _, out, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+"/v1/fleet/jobs/"+id, nil)
	})
	if err != nil {
		return server.FleetJobStatus{}, err
	}
	var st server.FleetJobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		return server.FleetJobStatus{}, fmt.Errorf("client: decode fleet job: %w", err)
	}
	return st, nil
}

// FleetSnapshot fetches the fleet-wide utilization/fragmentation
// snapshot, including the placement hash the recovery drill compares.
func (c *Client) FleetSnapshot(ctx context.Context) (server.FleetStatus, error) {
	_, _, out, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+"/v1/fleet", nil)
	})
	if err != nil {
		return server.FleetStatus{}, err
	}
	var st server.FleetStatus
	if err := json.Unmarshal(out, &st); err != nil {
		return server.FleetStatus{}, fmt.Errorf("client: decode fleet snapshot: %w", err)
	}
	return st, nil
}

// EvictFleetJob removes a fleet job, freeing its device capacity (the
// server re-places queued jobs immediately). Evicting an already-evicted
// job is idempotent.
func (c *Client) EvictFleetJob(ctx context.Context, id string) (server.FleetJobStatus, error) {
	_, _, out, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodDelete, c.base+"/v1/fleet/jobs/"+id, nil)
	})
	if err != nil {
		return server.FleetJobStatus{}, err
	}
	var st server.FleetJobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		return server.FleetJobStatus{}, fmt.Errorf("client: decode fleet evict: %w", err)
	}
	return st, nil
}

// AwaitFleetEvaluation polls a fleet job until its interference
// evaluation lands (state "evaluated"), it is evicted, or ctx expires.
func (c *Client) AwaitFleetEvaluation(ctx context.Context, id string, poll time.Duration) (server.FleetJobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		st, err := c.FleetJob(ctx, id)
		if err != nil {
			return server.FleetJobStatus{}, err
		}
		if st.State == server.FleetEvaluated || st.State == server.FleetEvicted {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, fmt.Errorf("client: await fleet job %s: %w", id, ctx.Err())
		case <-time.After(poll):
		}
	}
}
