package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"orion/internal/fleet"
	"orion/internal/server"
)

// SubmitFleetJobs streams a batch of jobs onto the fleet placer and
// returns each job's placement outcome (placed with a binding, or
// pending when nothing currently fits). Retries follow the same backoff
// policy as experiment submissions; note that unlike Submit there is no
// idempotency key — supply explicit JobSpec IDs to make retries after
// ambiguous failures detectable (a duplicate ID answers 409).
func (c *Client) SubmitFleetJobs(ctx context.Context, jobs []fleet.JobSpec) ([]server.FleetJobStatus, error) {
	body, err := json.Marshal(map[string][]fleet.JobSpec{"jobs": jobs})
	if err != nil {
		return nil, err
	}
	_, _, out, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, c.base+"/v1/fleet/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return nil, err
	}
	var sts []server.FleetJobStatus
	if err := json.Unmarshal(out, &sts); err != nil {
		return nil, fmt.Errorf("client: decode fleet submit response: %w", err)
	}
	return sts, nil
}

// FleetJob fetches one fleet job's placement and, once the background
// evaluation has run, its per-device interference summary.
func (c *Client) FleetJob(ctx context.Context, id string) (server.FleetJobStatus, error) {
	_, _, out, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+"/v1/fleet/jobs/"+id, nil)
	})
	if err != nil {
		return server.FleetJobStatus{}, err
	}
	var st server.FleetJobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		return server.FleetJobStatus{}, fmt.Errorf("client: decode fleet job: %w", err)
	}
	return st, nil
}

// FleetSnapshot fetches the fleet-wide utilization/fragmentation
// snapshot, including the placement hash the recovery drill compares.
func (c *Client) FleetSnapshot(ctx context.Context) (server.FleetStatus, error) {
	_, _, out, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+"/v1/fleet", nil)
	})
	if err != nil {
		return server.FleetStatus{}, err
	}
	var st server.FleetStatus
	if err := json.Unmarshal(out, &st); err != nil {
		return server.FleetStatus{}, fmt.Errorf("client: decode fleet snapshot: %w", err)
	}
	return st, nil
}

// EvictFleetJob removes a fleet job, freeing its device capacity (the
// server re-places queued jobs immediately). Evicting an already-evicted
// job is idempotent.
func (c *Client) EvictFleetJob(ctx context.Context, id string) (server.FleetJobStatus, error) {
	_, _, out, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodDelete, c.base+"/v1/fleet/jobs/"+id, nil)
	})
	if err != nil {
		return server.FleetJobStatus{}, err
	}
	var st server.FleetJobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		return server.FleetJobStatus{}, fmt.Errorf("client: decode fleet evict: %w", err)
	}
	return st, nil
}

// fleetDeviceOp posts one operator action against a device and decodes
// the resulting device view. Like every client call it funnels through
// do, so a draining or durability-degraded daemon's 503 is retried with
// its Retry-After hint and surfaces errors.Is(err, ErrDurabilityDegraded).
func (c *Client) fleetDeviceOp(ctx context.Context, index int, op string) (server.FleetDeviceStatus, error) {
	_, _, out, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodPost,
			fmt.Sprintf("%s/v1/fleet/devices/%d/%s", c.base, index, op), nil)
	})
	if err != nil {
		return server.FleetDeviceStatus{}, err
	}
	var st server.FleetDeviceStatus
	if err := json.Unmarshal(out, &st); err != nil {
		return server.FleetDeviceStatus{}, fmt.Errorf("client: decode fleet device %s: %w", op, err)
	}
	return st, nil
}

// CordonDevice marks a device administratively unschedulable; residents
// stay bound.
func (c *Client) CordonDevice(ctx context.Context, index int) (server.FleetDeviceStatus, error) {
	return c.fleetDeviceOp(ctx, index, "cordon")
}

// UncordonDevice makes a cordoned device schedulable again.
func (c *Client) UncordonDevice(ctx context.Context, index int) (server.FleetDeviceStatus, error) {
	return c.fleetDeviceOp(ctx, index, "uncordon")
}

// DrainDevice cordons a device and gracefully displaces its residents
// into the pending queue for re-placement elsewhere.
func (c *Client) DrainDevice(ctx context.Context, index int) (server.FleetDeviceStatus, error) {
	return c.fleetDeviceOp(ctx, index, "drain")
}

// FleetDevices lists every device with its health, cordon and resident
// state.
func (c *Client) FleetDevices(ctx context.Context) ([]server.FleetDeviceStatus, error) {
	_, _, out, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+"/v1/fleet/devices", nil)
	})
	if err != nil {
		return nil, err
	}
	var sts []server.FleetDeviceStatus
	if err := json.Unmarshal(out, &sts); err != nil {
		return nil, fmt.Errorf("client: decode fleet devices: %w", err)
	}
	return sts, nil
}

// FleetChaosStart arms the server's configured failure process
// (idempotent) and returns its status.
func (c *Client) FleetChaosStart(ctx context.Context) (server.FleetChaosStatus, error) {
	_, _, out, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodPost, c.base+"/v1/fleet/chaos/start", nil)
	})
	if err != nil {
		return server.FleetChaosStatus{}, err
	}
	var st server.FleetChaosStatus
	if err := json.Unmarshal(out, &st); err != nil {
		return server.FleetChaosStatus{}, fmt.Errorf("client: decode fleet chaos start: %w", err)
	}
	return st, nil
}

// FleetChaosStatus reports the failure process's progress.
func (c *Client) FleetChaosStatus(ctx context.Context) (server.FleetChaosStatus, error) {
	_, _, out, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+"/v1/fleet/chaos", nil)
	})
	if err != nil {
		return server.FleetChaosStatus{}, err
	}
	var st server.FleetChaosStatus
	if err := json.Unmarshal(out, &st); err != nil {
		return server.FleetChaosStatus{}, fmt.Errorf("client: decode fleet chaos status: %w", err)
	}
	return st, nil
}

// AwaitFleetEvaluation polls a fleet job until its interference
// evaluation lands (state "evaluated"), it is evicted, or ctx expires.
func (c *Client) AwaitFleetEvaluation(ctx context.Context, id string, poll time.Duration) (server.FleetJobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		st, err := c.FleetJob(ctx, id)
		if err != nil {
			return server.FleetJobStatus{}, err
		}
		if st.State == server.FleetEvaluated || st.State == server.FleetEvicted {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, fmt.Errorf("client: await fleet job %s: %w", id, ctx.Err())
		case <-time.After(poll):
		}
	}
}
