package viz

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestBarChartBasics(t *testing.T) {
	out := BarChart("latency", "ms", 20, []Bar{
		{Label: "ideal", Value: 2.0},
		{Label: "orion", Value: 3.0, Annotation: "1.5x"},
		{Label: "temporal", Value: 20.0},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want title + 3 bars:\n%s", len(lines), out)
	}
	if lines[0] != "latency" {
		t.Errorf("title line %q", lines[0])
	}
	// The max bar fills the width; smaller bars scale down.
	if !strings.Contains(lines[3], strings.Repeat("#", 20)) {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if strings.Count(lines[1], "#") >= strings.Count(lines[3], "#") {
		t.Errorf("smaller value drew a bigger bar:\n%s", out)
	}
	if !strings.Contains(lines[2], "1.5x") {
		t.Errorf("annotation missing:\n%s", out)
	}
	if !strings.Contains(lines[1], "2.00ms") {
		t.Errorf("value+unit missing:\n%s", out)
	}
}

func TestBarChartEmptyAndClamps(t *testing.T) {
	if BarChart("t", "", 10, nil) != "" {
		t.Error("empty chart should render nothing")
	}
	out := BarChart("", "", 10, []Bar{{Label: "neg", Value: -5}, {Label: "pos", Value: 5}})
	if strings.Contains(strings.Split(out, "\n")[0], "#") {
		t.Errorf("negative bar drew:\n%s", out)
	}
	// Tiny positive values still show one mark.
	out = BarChart("", "", 10, []Bar{{Label: "tiny", Value: 0.001}, {Label: "big", Value: 100}})
	if !strings.Contains(strings.Split(out, "\n")[0], "#") {
		t.Errorf("tiny positive bar invisible:\n%s", out)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	out := BarChart("", "", 10, []Bar{{Label: "a", Value: 0}, {Label: "b", Value: 0}})
	if strings.Contains(out, "#") {
		t.Errorf("all-zero chart drew bars:\n%s", out)
	}
}

func TestSparklineShape(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1.0}, 1.0)
	if utf8.RuneCountInString(s) != 3 {
		t.Fatalf("sparkline %q has wrong length", s)
	}
	runes := []rune(s)
	if runes[0] != ' ' || runes[2] != '█' {
		t.Errorf("sparkline endpoints wrong: %q", s)
	}
}

func TestSparklineAutoscale(t *testing.T) {
	s := Sparkline([]float64{10, 20, 40}, 0)
	runes := []rune(s)
	if runes[2] != '█' {
		t.Errorf("autoscaled max should hit the top block: %q", s)
	}
	if Sparkline(nil, 0) != "" {
		t.Error("empty series should render nothing")
	}
	if s := Sparkline([]float64{0, 0}, 0); utf8.RuneCountInString(s) != 2 {
		t.Errorf("all-zero series mis-rendered: %q", s)
	}
}

// Property: sparkline glyphs are monotone in the value.
func TestSparklineMonotoneProperty(t *testing.T) {
	rank := map[rune]int{}
	for i, r := range sparkLevels {
		rank[r] = i
	}
	f := func(a, b uint8) bool {
		x, y := float64(a), float64(b)
		s := []rune(Sparkline([]float64{x, y}, 255))
		if x <= y {
			return rank[s[0]] <= rank[s[1]]
		}
		return rank[s[0]] >= rank[s[1]]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeriesPanel(t *testing.T) {
	p := TimeSeries{
		Title:  "compute utilization",
		XLabel: "5ms buckets",
		Rows: []TimeSeriesRow{
			{Name: "alone", Values: []float64{0.1, 0.0, 0.1}},
			{Name: "collocated", Values: []float64{0.4, 0.4, 0.4}},
		},
	}
	out := p.Render()
	if !strings.Contains(out, "compute utilization") ||
		!strings.Contains(out, "alone") || !strings.Contains(out, "collocated") {
		t.Fatalf("panel missing parts:\n%s", out)
	}
	if !strings.Contains(out, "avg 0.4") {
		t.Errorf("average missing:\n%s", out)
	}
	if !strings.Contains(out, "scale 0..0.4") {
		t.Errorf("scale annotation missing:\n%s", out)
	}
	empty := TimeSeries{}
	if empty.Render() != "" {
		t.Error("empty panel should render nothing")
	}
}
