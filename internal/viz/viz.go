// Package viz renders experiment results as terminal charts: horizontal
// bar charts for the paper's figure comparisons and braille-free block
// sparklines for utilization time series. Pure text, deterministic,
// suitable for golden tests.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one row of a horizontal bar chart.
type Bar struct {
	// Label names the row (scheme, variant, model).
	Label string
	// Value is the bar magnitude.
	Value float64
	// Annotation is printed after the value (e.g. "1.33x ideal").
	Annotation string
}

// BarChart renders labelled horizontal bars scaled to width characters.
// Negative values are clamped at zero. A nil or empty input renders an
// empty string.
func BarChart(title, unit string, width int, bars []Bar) string {
	if len(bars) == 0 {
		return ""
	}
	if width < 8 {
		width = 8
	}
	maxV := 0.0
	labelW := 0
	for _, b := range bars {
		if b.Value > maxV {
			maxV = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var out strings.Builder
	if title != "" {
		fmt.Fprintf(&out, "%s\n", title)
	}
	for _, b := range bars {
		v := b.Value
		if v < 0 {
			v = 0
		}
		n := 0
		if maxV > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		if v > 0 && n == 0 {
			n = 1
		}
		bar := strings.Repeat("#", n)
		ann := b.Annotation
		if ann != "" {
			ann = "  " + ann
		}
		fmt.Fprintf(&out, "%-*s %-*s %.2f%s%s\n", labelW, b.Label, width, bar, b.Value, unit, ann)
	}
	return out.String()
}

// sparkLevels are the eighth-block characters used by Sparkline.
var sparkLevels = []rune(" ▁▂▃▄▅▆▇█")

// Sparkline renders a series as a one-line block graph scaled to
// [0, max]. max <= 0 autoscales to the series maximum.
func Sparkline(series []float64, max float64) string {
	if len(series) == 0 {
		return ""
	}
	if max <= 0 {
		for _, v := range series {
			if v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		max = 1
	}
	var out strings.Builder
	for _, v := range series {
		if v < 0 {
			v = 0
		}
		idx := int(math.Round(v / max * float64(len(sparkLevels)-1)))
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		out.WriteRune(sparkLevels[idx])
	}
	return out.String()
}

// TimeSeries renders a labelled multi-row sparkline panel: one row per
// series, sharing the scale, with min/max annotations — the shape of the
// paper's utilization-over-time figures.
type TimeSeries struct {
	// Title heads the panel.
	Title string
	// XLabel describes the time axis (e.g. "2ms buckets over 160ms").
	XLabel string
	// Rows holds (name, series) pairs sharing one scale.
	Rows []TimeSeriesRow
	// Max fixes the scale top; <= 0 autoscales over all rows.
	Max float64
}

// TimeSeriesRow is one named series.
type TimeSeriesRow struct {
	Name   string
	Values []float64
}

// Render draws the panel.
func (t *TimeSeries) Render() string {
	if len(t.Rows) == 0 {
		return ""
	}
	max := t.Max
	if max <= 0 {
		for _, r := range t.Rows {
			for _, v := range r.Values {
				if v > max {
					max = v
				}
			}
		}
	}
	nameW := 0
	for _, r := range t.Rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	var out strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&out, "%s\n", t.Title)
	}
	for _, r := range t.Rows {
		var avg float64
		for _, v := range r.Values {
			avg += v
		}
		if len(r.Values) > 0 {
			avg /= float64(len(r.Values))
		}
		fmt.Fprintf(&out, "%-*s |%s| avg %.1f\n", nameW, r.Name, Sparkline(r.Values, max), avg)
	}
	if t.XLabel != "" {
		fmt.Fprintf(&out, "%-*s  %s (scale 0..%.1f)\n", nameW, "", t.XLabel, max)
	}
	return out.String()
}
