// Package core implements the Orion scheduler — the paper's primary
// contribution: a fine-grained, interference-aware GPU scheduler that
// intercepts the operations of clients sharing a GPU and decides, per
// kernel, when to submit them to the hardware.
//
// The policy follows Listing 1 of the paper:
//
//   - high-priority operations go straight to a dedicated high-priority
//     CUDA stream;
//   - a best-effort kernel is submitted only if no high-priority task is
//     running, or if it is small (sm_needed < SM_THRESHOLD) and has the
//     opposite compute/memory profile to the currently running
//     high-priority kernel (unknown-profile kernels pair with anything);
//   - because submitted kernels cannot be preempted, the total expected
//     duration of outstanding best-effort kernels is throttled to
//     DUR_THRESHOLD percent of the high-priority job's dedicated request
//     latency, tracked with CUDA events (cudaEventQuery, never blocking);
//   - memory operations bypass the policy and go straight to the device
//     (§5.1.3);
//   - multiple best-effort clients are served round-robin, each on its
//     own stream.
package core

import (
	"fmt"

	"orion/internal/cudart"
	"orion/internal/kernels"
	"orion/internal/profiler"
	"orion/internal/sched"
	"orion/internal/sim"
)

// DefaultDurThreshold is the paper's default DUR_THRESHOLD: outstanding
// best-effort kernel time is capped at 2.5% of the high-priority job's
// request latency (§5.1.1, §6.4).
const DefaultDurThreshold = 0.025

// DefaultInterceptOverhead is the client-side CPU cost of Orion's kernel
// launch interception and queue insertion; the paper measures the total
// interception overhead at under 1% (§6.5).
const DefaultInterceptOverhead = 300 * sim.Nanosecond

// DefaultPollInterval is the scheduler's reaction time to a best-effort
// completion event: the cudaEventQuery poll plus the kernel-launch round
// trip of the scheduler thread. Every serialized best-effort kernel pays
// it, which is what keeps throttled best-effort jobs below their dedicated
// throughput (paper Table 4).
const DefaultPollInterval = 20 * sim.Microsecond

// Config tunes the Orion scheduler. The zero value plus a profile table
// gives the paper's defaults; the ablation flags reproduce the Figure 14
// policy breakdown when selectively disabled.
// Config is wire-serializable apart from Profiles (runtime wiring the
// harness fills in): every policy knob carries a JSON tag so ablation
// settings can travel inside an orion-serve experiment submission.
type Config struct {
	// Profiles maps workload ID to its offline profile. Every client
	// registered must have an entry (run profiler.Collect first).
	Profiles map[string]*profiler.Profile `json:"-"`

	// SMThreshold is the size cap for collocating a best-effort kernel
	// alongside a running high-priority kernel. Zero selects the paper's
	// default: the total number of SMs on the device.
	SMThreshold int `json:"sm_threshold,omitempty"`

	// DurThreshold is the outstanding best-effort duration cap as a
	// fraction of high-priority request latency. Zero selects
	// DefaultDurThreshold (2.5%).
	DurThreshold float64 `json:"dur_threshold,omitempty"`

	// DisableStreamPriorities runs all streams at the same priority
	// (Figure 14: Orion works even where priorities are unavailable,
	// e.g. under MPS).
	DisableStreamPriorities bool `json:"disable_stream_priorities,omitempty"`
	// DisableProfileCheck drops the compute/memory opposite-profile
	// condition (Figure 14 "Stream Priorities" / "+SM size" ablations).
	DisableProfileCheck bool `json:"disable_profile_check,omitempty"`
	// DisableSMCheck drops the sm_needed < SM_THRESHOLD condition.
	DisableSMCheck bool `json:"disable_sm_check,omitempty"`
	// DisableDurThrottle drops the outstanding-duration throttle.
	DisableDurThrottle bool `json:"disable_dur_throttle,omitempty"`

	// InterceptOverhead is the per-op client-side interception cost.
	// Zero selects DefaultInterceptOverhead.
	InterceptOverhead sim.Duration `json:"intercept_overhead,omitempty"`

	// PollInterval is the scheduler's wakeup delay after a best-effort
	// completion event. Zero selects DefaultPollInterval.
	PollInterval sim.Duration `json:"poll_interval,omitempty"`

	// ScheduleMemcpys enables the §5.1.3 extension: instead of passing
	// best-effort memory copies straight through, Orion defers them while
	// any high-priority transfer is in flight, so best-effort H2D/D2H
	// traffic never contends with the high-priority job for PCIe
	// bandwidth. Off by default, matching the paper's current design.
	ScheduleMemcpys bool `json:"schedule_memcpys,omitempty"`

	// SLOGuard enables the degradation path: the scheduler watches a
	// sliding window of recent high-priority request latencies and, when
	// too many violate the SLO, suspends best-effort admission entirely
	// (HP-only mode) until the window recovers. The guard has hysteresis:
	// it trips at SLOTripFraction violations and resumes only at
	// SLOResumeFraction.
	SLOGuard bool `json:"slo_guard,omitempty"`
	// SLOFactor defines the SLO: a high-priority request violates it when
	// its latency exceeds SLOFactor times the profiled dedicated request
	// latency. Zero selects DefaultSLOFactor.
	SLOFactor float64 `json:"slo_factor,omitempty"`
	// SLOWindow is the sliding-window length in requests. Zero selects
	// DefaultSLOWindow.
	SLOWindow int `json:"slo_window,omitempty"`
	// SLOTripFraction is the violation fraction that trips the guard.
	// Zero selects DefaultSLOTripFraction.
	SLOTripFraction float64 `json:"slo_trip_fraction,omitempty"`
	// SLOResumeFraction is the violation fraction at which a tripped
	// guard resumes best-effort admission. Zero selects
	// DefaultSLOResumeFraction. Must stay below SLOTripFraction.
	SLOResumeFraction float64 `json:"slo_resume_fraction,omitempty"`

	// AutoTuneSM selects the dynamic SM_THRESHOLD tuning mode (§5.1.1).
	// The default enables the binary-search tuner exactly when the
	// high-priority client is a training job.
	AutoTuneSM AutoTuneMode `json:"auto_tune_sm,omitempty"`
	// TuneInterval is the tuner's sampling period (default 500 ms).
	TuneInterval sim.Duration `json:"tune_interval,omitempty"`
	// TuneTolerance is the accepted high-priority throughput loss while
	// raising the threshold (default 0.15).
	TuneTolerance float64 `json:"tune_tolerance,omitempty"`
}

// Orion is the scheduler backend.
type Orion struct {
	eng *sim.Engine
	ctx *cudart.Context
	cfg Config

	hp      *client
	be      []*client
	rrNext  int
	started bool

	// hpProfiles is the FIFO of outstanding high-priority kernel
	// profiles; the front is the kernel currently executing (stream
	// order guarantees in-order completion).
	hpProfiles []kernels.Profile
	hpOut      int // outstanding high-priority ops of any kind

	// beOutstanding is the expected total duration of outstanding
	// best-effort kernels (be_duration in Listing 1).
	beOutstanding sim.Duration

	// hpCopiesOut counts outstanding high-priority memory copies, the
	// PCIe-pressure signal for the ScheduleMemcpys extension.
	hpCopiesOut int

	inSchedule bool
	again      bool
	retryArmed bool
	tuner      *tuner
	decisions  *decisionLog
	slo        *sloGuard

	// opFree pools queuedOps: each carries its completion closure, built
	// once per object, so the steady-state intercept path allocates
	// neither the op nor a callback. The callbacks below are likewise
	// built once in New and reused for every submission.
	opFree      []*queuedOp
	scheduleFn  func()
	eventDoneFn func(sim.Time)
	retryFn     func()

	// stats
	beDeferred   uint64 // policy said "not now" for a best-effort kernel
	beSubmitted  uint64
	hpSubmitted  uint64
	throttleHits uint64

	// robustness counters
	evictions        uint64 // clients removed via Deregister
	purgedOps        uint64 // queued ops dropped at eviction
	transientRetries uint64 // scheduler-side retries of transient submit failures
}

type client struct {
	o       *Orion
	cfg     sched.ClientConfig
	profile *profiler.Profile
	stream  *cudart.Stream
	tracker *sched.Tracker
	queue   []*queuedOp
	// event tracks the most recently submitted best-effort kernel
	// (be_submitted in Listing 1), polled with cudaEventQuery.
	event *cudart.Event
	// requests counts completed requests (EndRequest firings), the
	// throughput signal the SM_THRESHOLD tuner watches.
	requests uint64
	// begin is when the in-flight request started (BeginRequest), the
	// latency origin the SLO guard measures from.
	begin sim.Time
	// gone marks a client removed via Deregister: its queue has been
	// purged and further submissions are rejected.
	gone bool
}

type queuedOp struct {
	op   *kernels.Descriptor
	prof *profiler.KernelProfile
	done func(sim.Time)
	// Submission context for the pooled completion callback.
	c  *client
	hp bool
	// doneFn is the completion callback handed to the device, a closure
	// over this queuedOp built once when the object is first allocated and
	// reused across pool recycles.
	doneFn func(sim.Time)
}

// allocOp takes a queuedOp from the pool (or builds one, wiring its
// completion closure) and fills the submission fields.
func (o *Orion) allocOp(op *kernels.Descriptor, prof *profiler.KernelProfile, done func(sim.Time)) *queuedOp {
	var q *queuedOp
	if n := len(o.opFree); n > 0 {
		q = o.opFree[n-1]
		o.opFree[n-1] = nil
		o.opFree = o.opFree[:n-1]
	} else {
		q = &queuedOp{}
		q.doneFn = func(at sim.Time) { o.opComplete(q, at) }
	}
	q.op = op
	q.prof = prof
	q.done = done
	return q
}

// releaseOp drops the op's references and returns it to the pool. Ops
// purged at Deregister are simply dropped (never released): the pool
// shrinks by that many objects, nothing dangles.
func (o *Orion) releaseOp(q *queuedOp) {
	q.op = nil
	q.prof = nil
	q.done = nil
	q.c = nil
	q.hp = false
	o.opFree = append(o.opFree, q)
}

// New creates an Orion scheduler over the context.
func New(eng *sim.Engine, ctx *cudart.Context, cfg Config) (*Orion, error) {
	if eng == nil || ctx == nil {
		return nil, fmt.Errorf("orion: nil engine or context")
	}
	if cfg.DurThreshold == 0 {
		cfg.DurThreshold = DefaultDurThreshold
	}
	if cfg.DurThreshold < 0 || cfg.DurThreshold > 1 {
		return nil, fmt.Errorf("orion: DurThreshold %v outside (0,1]", cfg.DurThreshold)
	}
	if cfg.SMThreshold == 0 {
		cfg.SMThreshold = ctx.Device().Spec().NumSMs
	}
	if cfg.SMThreshold < 0 {
		return nil, fmt.Errorf("orion: negative SMThreshold")
	}
	if cfg.InterceptOverhead == 0 {
		cfg.InterceptOverhead = DefaultInterceptOverhead
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	if cfg.PollInterval < 0 {
		return nil, fmt.Errorf("orion: negative PollInterval")
	}
	if cfg.SLOFactor == 0 {
		cfg.SLOFactor = DefaultSLOFactor
	}
	if cfg.SLOFactor < 1 {
		return nil, fmt.Errorf("orion: SLOFactor %v below 1", cfg.SLOFactor)
	}
	if cfg.SLOWindow == 0 {
		cfg.SLOWindow = DefaultSLOWindow
	}
	if cfg.SLOWindow < 1 {
		return nil, fmt.Errorf("orion: SLOWindow %d below 1", cfg.SLOWindow)
	}
	if cfg.SLOTripFraction == 0 {
		cfg.SLOTripFraction = DefaultSLOTripFraction
	}
	if cfg.SLOResumeFraction == 0 {
		cfg.SLOResumeFraction = DefaultSLOResumeFraction
	}
	if cfg.SLOTripFraction <= 0 || cfg.SLOTripFraction > 1 ||
		cfg.SLOResumeFraction < 0 || cfg.SLOResumeFraction >= cfg.SLOTripFraction {
		return nil, fmt.Errorf("orion: SLO fractions need 0 <= resume (%v) < trip (%v) <= 1",
			cfg.SLOResumeFraction, cfg.SLOTripFraction)
	}
	o := &Orion{
		eng: eng, ctx: ctx, cfg: cfg,
		decisions: newDecisionLog(DefaultDecisionLogSize),
	}
	o.scheduleFn = o.schedule
	o.eventDoneFn = func(sim.Time) {
		// The scheduler notices the completion at its next poll.
		o.eng.After(o.cfg.PollInterval, o.scheduleFn)
	}
	o.retryFn = func() {
		o.retryArmed = false
		o.schedule()
	}
	return o, nil
}

// Name implements sched.Backend.
func (o *Orion) Name() string { return "orion" }

// Register implements sched.Backend. Exactly one high-priority client may
// register; any number of best-effort clients may.
func (o *Orion) Register(cc sched.ClientConfig) (sched.Client, error) {
	if o.started {
		return nil, fmt.Errorf("orion: register after Start")
	}
	if cc.Model == nil {
		return nil, fmt.Errorf("orion: client %q has no model", cc.Name)
	}
	prof := o.cfg.Profiles[cc.Model.ID()]
	if prof == nil {
		return nil, fmt.Errorf("orion: no offline profile for %s (run profiler.Collect)", cc.Model.ID())
	}
	if prof.RequestLatency <= 0 {
		return nil, fmt.Errorf("orion: profile for %s has no request latency", cc.Model.ID())
	}
	prio := 0
	if cc.Priority == sched.HighPriority && !o.cfg.DisableStreamPriorities {
		prio = 1
	}
	c := &client{
		o:       o,
		cfg:     cc,
		profile: prof,
		stream:  o.ctx.StreamCreateWithPriority(prio),
		tracker: sched.NewTracker(o.eng),
		event:   o.ctx.EventCreate(),
	}
	if cc.Priority == sched.HighPriority {
		if o.hp != nil {
			return nil, fmt.Errorf("orion: second high-priority client %q", cc.Name)
		}
		o.hp = c
	} else {
		o.be = append(o.be, c)
	}
	return c, nil
}

// Start implements sched.Backend.
func (o *Orion) Start() {
	o.started = true
	if o.cfg.SLOGuard && o.hp != nil {
		limit := sim.Duration(float64(o.hp.profile.RequestLatency) * o.cfg.SLOFactor)
		o.slo = newSLOGuard(limit, o.cfg.SLOWindow, o.cfg.SLOTripFraction, o.cfg.SLOResumeFraction)
	}
	o.startTuner()
}

// Deregister implements sched.Backend: it evicts a crashed client. The
// client's queued operations are purged without running their completion
// callbacks, its scheduler state is released — for a best-effort client
// that unpins the DUR_THRESHOLD budget (its CUDA event no longer holds
// the throttle) and rebalances the round-robin cursor; for the
// high-priority client it lifts the duration budget entirely — and
// operations it already has on the device drain normally.
func (o *Orion) Deregister(sc sched.Client) error {
	c, ok := sc.(*client)
	if !ok || c.o != o {
		return fmt.Errorf("orion: deregister of foreign client")
	}
	if c.gone {
		return nil
	}
	c.gone = true
	o.purgedOps += uint64(len(c.queue))
	c.queue = nil
	if c == o.hp {
		// Outstanding high-priority counters drain through the completion
		// closures already armed on the device; with no high-priority
		// client the duration budget becomes unbounded.
		o.hp = nil
	} else {
		for i, have := range o.be {
			if have != c {
				continue
			}
			o.be = append(o.be[:i], o.be[i+1:]...)
			// Keep the round-robin cursor on the client it pointed at so
			// the surviving clients' service order is undisturbed.
			if o.rrNext > i {
				o.rrNext--
			}
			if len(o.be) > 0 {
				o.rrNext %= len(o.be)
			} else {
				o.rrNext = 0
			}
			break
		}
	}
	o.evictions++
	// The eviction may have unblocked deferred work (throttle budget,
	// HP-idle): run a scheduling pass.
	o.schedule()
	return nil
}

// FaultStats reports robustness counters: clients evicted via
// Deregister, queued operations purged at eviction, and transient submit
// failures retried inside scheduler passes.
func (o *Orion) FaultStats() (evictions, purgedOps, transientRetries uint64) {
	return o.evictions, o.purgedOps, o.transientRetries
}

// SetSMThreshold adjusts the SM threshold at runtime (used by the dynamic
// tuner and the sensitivity benches).
func (o *Orion) SetSMThreshold(v int) {
	if v < 0 {
		v = 0
	}
	o.cfg.SMThreshold = v
}

// SMThreshold reports the current SM threshold.
func (o *Orion) SMThreshold() int { return o.cfg.SMThreshold }

// Stats reports scheduler counters: high-priority and best-effort kernels
// submitted, best-effort deferrals, and duration-throttle hits.
func (o *Orion) Stats() (hpSubmitted, beSubmitted, beDeferred, throttleHits uint64) {
	return o.hpSubmitted, o.beSubmitted, o.beDeferred, o.throttleHits
}

// --- sched.Client implementation -----------------------------------------

func (c *client) BeginRequest() { c.begin = c.o.eng.Now() }

func (c *client) LaunchOverhead() sim.Duration { return c.o.cfg.InterceptOverhead }

// Submit intercepts one client operation into the client's software queue
// and pokes the scheduler.
func (c *client) Submit(op *kernels.Descriptor, done func(sim.Time)) error {
	if op == nil {
		return fmt.Errorf("orion: nil op")
	}
	if c.gone {
		return fmt.Errorf("orion: submit on deregistered client %s", c.cfg.Name)
	}
	if err := sched.CheckCapacity(c.o.ctx, op); err != nil {
		return err
	}
	var prof *profiler.KernelProfile
	if op.Op == kernels.OpKernel {
		p, ok := c.profile.Kernel(op.ID)
		if !ok || p.Duration <= 0 || p.Name != op.Name {
			// Not part of the offline profile (e.g. a fused CUDA graph):
			// characterize it from its launch parameters on the fly.
			derived, err := profiler.Derive(op, c.o.ctx.Device().Spec())
			if err != nil {
				return fmt.Errorf("orion: %s kernel %d not profiled and underivable: %w",
					c.cfg.Name, op.ID, err)
			}
			p = derived
		}
		prof = p
	}
	c.tracker.OnSubmit()
	c.queue = append(c.queue, c.o.allocOp(op, prof, done))
	c.o.schedule()
	return nil
}

// EndRequest fires cb once everything the client submitted has completed.
func (c *client) EndRequest(cb func(sim.Time)) error {
	c.tracker.Sync(func(at sim.Time) {
		c.requests++
		if c.o.slo != nil && c == c.o.hp {
			if c.o.slo.observe(at.Sub(c.begin)) {
				// Guard resumed: deferred best-effort work may flow again.
				c.o.schedule()
			}
		}
		if cb != nil {
			cb(at)
		}
	})
	return nil
}

// --- scheduler ------------------------------------------------------------

// schedule runs the Listing 1 policy loop until no further operation can
// be submitted. It is re-entrant-safe: activations during a pass coalesce
// into another pass.
func (o *Orion) schedule() {
	if o.inSchedule {
		o.again = true
		return
	}
	o.inSchedule = true
	for {
		o.again = false
		progress := true
		for progress {
			progress = false
			if o.hp != nil && o.drainHP() {
				progress = true
			}
			if o.serveBE() {
				progress = true
			}
		}
		if !o.again {
			break
		}
	}
	o.inSchedule = false
}

// drainHP submits every queued high-priority op directly to the dedicated
// high-priority stream (Listing 1 lines 7-9).
func (o *Orion) drainHP() bool {
	c := o.hp
	progress := false
	for len(c.queue) > 0 {
		q := c.queue[0]
		if !o.trySubmit(c, q, true) {
			// Transient device failure: the op stays at the head of the
			// queue and is retried at the next scheduling pass.
			break
		}
		c.queue = c.queue[:copy(c.queue, c.queue[1:])]
		if q.op.Op == kernels.OpKernel {
			o.hpProfiles = append(o.hpProfiles, q.prof.Class)
		}
		if q.op.Op.IsMemcpy() {
			o.hpCopiesOut++
		}
		o.hpOut++
		o.hpSubmitted++
		progress = true
	}
	return progress
}

// hpTaskRunning reports whether any high-priority work is queued or
// outstanding on the device.
func (o *Orion) hpTaskRunning() bool {
	if o.hp == nil {
		return false
	}
	return o.hpOut > 0 || len(o.hp.queue) > 0
}

// currentHPProfile is the profile of the high-priority kernel currently
// executing (front of the outstanding FIFO).
func (o *Orion) currentHPProfile() kernels.Profile {
	if len(o.hpProfiles) == 0 {
		return kernels.ProfileUnknown
	}
	return o.hpProfiles[0]
}

// durBudget is DUR_THRESHOLD expressed in time: a fraction of the
// high-priority job's dedicated request latency. With no high-priority
// client there is nothing to protect and the throttle is off.
func (o *Orion) durBudget() sim.Duration {
	if o.hp == nil {
		return 1 << 62
	}
	return sim.Duration(float64(o.hp.profile.RequestLatency) * o.cfg.DurThreshold)
}

// serveBE makes one round-robin pass over best-effort clients, submitting
// at most one operation per client (Listing 1 lines 10-21 generalized to
// N clients).
func (o *Orion) serveBE() bool {
	n := len(o.be)
	progress := false
	for i := 0; i < n; i++ {
		c := o.be[(o.rrNext+i)%n]
		if len(c.queue) == 0 {
			continue
		}
		q := c.queue[0]

		if q.op.Op != kernels.OpKernel {
			// Memory operations bypass the kernel policy (§5.1.3) —
			// unless PCIe-aware scheduling is on, in which case a
			// best-effort copy waits out in-flight high-priority
			// transfers.
			if o.cfg.ScheduleMemcpys && q.op.Op.IsMemcpy() && o.hpCopiesOut > 0 {
				o.beDeferred++
				o.decisions.record(Decision{
					At: o.eng.Now(), Client: c.cfg.Name, Kernel: q.op.Name,
					Verdict: DeferredPCIe,
				})
				continue
			}
			if !o.trySubmit(c, q, false) {
				// Transient failure: keep the op queued, retry later.
				continue
			}
			c.queue = c.queue[:copy(c.queue, c.queue[1:])]
			progress = true
			continue
		}

		verdict := o.admitBE(q)
		o.decisions.record(Decision{
			At: o.eng.Now(), Client: c.cfg.Name, Kernel: q.op.Name, Verdict: verdict,
		})
		if !verdict.Admitted() {
			o.beDeferred++
			continue
		}
		if !o.trySubmit(c, q, false) {
			// Transient failure after admission: keep the op queued; the
			// admission verdict is re-evaluated when it is retried.
			continue
		}
		c.queue = c.queue[:copy(c.queue, c.queue[1:])]
		o.beOutstanding += q.prof.Duration
		o.beSubmitted++
		// Record the submission in a CUDA event (be_submitted.record).
		if err := o.ctx.EventRecord(c.event, c.stream); err != nil {
			panic(fmt.Sprintf("orion: event record: %v", err))
		}
		c.event.OnComplete(o.eventDoneFn)
		progress = true
	}
	if n > 0 {
		o.rrNext = (o.rrNext + 1) % n
	}
	return progress
}

// admitBE is schedule_be plus the duration throttle of Listing 1,
// returning the reason for its verdict.
func (o *Orion) admitBE(q *queuedOp) Verdict {
	// Degradation path: while the SLO guard is tripped the scheduler runs
	// HP-only and admits no best-effort kernels at all.
	if o.slo != nil && o.slo.tripped {
		return DeferredSLOGuard
	}

	// Duration throttle (lines 12-16): outstanding best-effort work must
	// stay under the budget; it resets only when the last submitted
	// best-effort kernels have finished (cudaEventQuery, non-blocking).
	if !o.cfg.DisableDurThrottle && o.beOutstanding > o.durBudget() {
		if o.allBEEventsFinished() {
			o.beOutstanding = 0
		} else {
			o.throttleHits++
			return DeferredThrottle
		}
	}

	// schedule_be (lines 23-30).
	if !o.hpTaskRunning() {
		return AdmittedIdle
	}
	if !o.cfg.DisableSMCheck && q.prof.SMsNeeded >= o.cfg.SMThreshold {
		return DeferredSMs
	}
	if !o.cfg.DisableProfileCheck &&
		!kernels.Opposite(q.prof.Class, o.currentHPProfile()) {
		return DeferredProfile
	}
	return AdmittedOpposite
}

// allBEEventsFinished polls every best-effort client's last-submission
// event without blocking.
func (o *Orion) allBEEventsFinished() bool {
	for _, c := range o.be {
		if !c.event.Query() {
			return false
		}
	}
	return true
}

// trySubmit lowers an operation onto the client's stream and hooks
// completion back into the scheduler. It reports whether the submission
// reached the device: a transient failure (an injected launch or
// allocation fault) leaves the op with the caller to retry — the
// scheduler is re-armed one poll interval out — while any other error
// remains a modelling bug and panics.
func (o *Orion) trySubmit(c *client, q *queuedOp, hp bool) bool {
	q.c = c
	q.hp = hp
	err := sched.SubmitTo(o.ctx, c.stream, q.op, q.doneFn)
	if err == nil {
		return true
	}
	if cudart.IsTransient(err) {
		o.transientRetries++
		o.armRetry()
		return false
	}
	panic(fmt.Sprintf("orion: submit %s: %v", q.op.Name, err))
}

// opComplete is the device-side completion of a submitted op: it unwinds
// the scheduler's outstanding counters, notifies the client, and runs a
// scheduling pass. The queuedOp returns to the pool afterwards.
func (o *Orion) opComplete(q *queuedOp, at sim.Time) {
	if q.hp {
		o.hpOut--
		if q.op.Op == kernels.OpKernel && len(o.hpProfiles) > 0 {
			o.hpProfiles = o.hpProfiles[:copy(o.hpProfiles, o.hpProfiles[1:])]
		}
		if q.op.Op.IsMemcpy() {
			o.hpCopiesOut--
		}
	}
	q.c.tracker.OnComplete(at)
	if q.done != nil {
		q.done(at)
	}
	o.releaseOp(q)
	o.schedule()
}

// armRetry schedules one retry pass a poll interval out. Arms coalesce:
// however many submissions fail while a failure window is open, at most
// one retry poll is pending — without this, every failed attempt in a
// pass would arm its own pass and the event count would grow
// geometrically for as long as the window stayed open.
func (o *Orion) armRetry() {
	if o.retryArmed {
		return
	}
	o.retryArmed = true
	o.eng.After(o.cfg.PollInterval, o.retryFn)
}
