package core

import (
	"testing"

	"orion/internal/cudart"
	"orion/internal/gpu"
	"orion/internal/profiler"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

// The guard trips only on a full window, resumes with hysteresis, and
// counts both transitions.
func (g *sloGuard) feed(lat sim.Duration, n int) (resumed bool) {
	for i := 0; i < n; i++ {
		if g.observe(lat) {
			resumed = true
		}
	}
	return resumed
}

func TestSLOGuardTripAndResume(t *testing.T) {
	g := &sloGuard{
		limit: sim.Millis(10), window: make([]bool, 8),
		trip: 0.5, resume: 0.125,
	}
	// Seven violations: window not yet full, must not trip.
	g.feed(sim.Millis(20), 7)
	if g.tripped {
		t.Fatal("guard tripped before the window filled")
	}
	// Eighth fills the window at 8/8 violations >= 50%.
	g.feed(sim.Millis(20), 1)
	if !g.tripped {
		t.Fatal("guard did not trip on a full violating window")
	}
	if g.trips != 1 {
		t.Errorf("trips = %d, want 1", g.trips)
	}
	// Healthy latencies wash violations out; at 1/8 = 12.5% <= resume the
	// guard re-opens and reports the transition exactly once.
	if g.feed(sim.Millis(1), 6) {
		t.Error("guard resumed above the resume fraction")
	}
	if !g.feed(sim.Millis(1), 1) {
		t.Error("guard did not resume at the resume fraction")
	}
	if g.tripped {
		t.Error("guard still tripped after resuming")
	}
	if g.resumes != 1 {
		t.Errorf("resumes = %d, want 1", g.resumes)
	}
	// Observing at exactly the limit is not a violation.
	g.feed(sim.Millis(10), 8)
	if g.tripped {
		t.Error("at-limit latencies tripped the guard")
	}
}

func TestSLOGuardConfigValidation(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "k", sim.Micros(100), 0.9, 0.2, 40))
	bad := []Config{
		{SLOGuard: true, SLOFactor: 0.5},
		{SLOGuard: true, SLOWindow: -1},
		{SLOGuard: true, SLOTripFraction: 1.5},
		{SLOGuard: true, SLOTripFraction: 0.25, SLOResumeFraction: 0.5},
	}
	for i, cfg := range bad {
		eng := sim.NewEngine()
		dev, err := gpu.NewDevice(eng, gpu.V100())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Profiles = map[string]*profiler.Profile{
			hp.ID(): mkProfile(hp, sim.Millis(1), gpu.V100()),
		}
		if _, err := New(eng, cudart.NewContext(dev), cfg); err == nil {
			t.Errorf("bad SLO config %d accepted", i)
		}
	}
}

// A tripped guard suspends best-effort admission entirely (HP-only mode)
// and records DeferredSLOGuard verdicts.
func TestSLOGuardSuspendsBestEffort(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "hpconv", sim.Millis(1), 0.9, 0.2, 40))
	be := mkModel("be", workload.Training, mkKernel(0, "bebn", sim.Micros(100), 0.1, 0.8, 10))
	r := newRig(t, Config{SLOGuard: true, SLOWindow: 4, SLOTripFraction: 0.5}, hp, be)
	hpc := register(t, r.o, hp, sched.HighPriority)
	bec := register(t, r.o, be, sched.BestEffort)
	r.o.Start()

	active, suspended, _, _ := r.o.SLOGuardState()
	if !active || suspended {
		t.Fatalf("guard state active=%v suspended=%v, want active and open", active, suspended)
	}

	// Trip the guard directly: the integration path (EndRequest feeding
	// observe) is covered by the harness tests.
	for i := 0; i < 4; i++ {
		r.o.slo.observe(r.o.slo.limit * 2)
	}
	_, suspended, trips, _ := r.o.SLOGuardState()
	if !suspended || trips != 1 {
		t.Fatalf("guard suspended=%v trips=%d after violating window", suspended, trips)
	}

	hpc.Submit(&hp.Ops[0], nil)
	bec.Submit(&be.Ops[0], nil)
	r.eng.Run()
	hpSub, beSub, _, _ := r.o.Stats()
	if hpSub != 1 {
		t.Errorf("hpSubmitted = %d, want 1 (HP-only mode still serves HP)", hpSub)
	}
	if beSub != 0 {
		t.Errorf("beSubmitted = %d, want 0 while the guard is tripped", beSub)
	}
	found := false
	for _, d := range r.o.RecentDecisions(16) {
		if d.Verdict == DeferredSLOGuard {
			found = true
		}
	}
	if !found {
		t.Error("no DeferredSLOGuard verdict recorded")
	}

	// Resume: healthy observations re-open admission and the deferred
	// best-effort kernel runs.
	for i := 0; i < 4; i++ {
		if r.o.slo.observe(0) {
			r.o.schedule()
		}
	}
	r.eng.Run()
	if _, beSub, _, _ := r.o.Stats(); beSub != 1 {
		t.Errorf("beSubmitted = %d after resume, want 1", beSub)
	}
}
