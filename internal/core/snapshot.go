package core

import "orion/internal/checkpoint"

// SnapshotTo implements checkpoint.Snapshotter: the scheduler's Listing 1
// state — outstanding high-priority profiles, best-effort duration,
// per-client queues — plus the tuner/SLO-guard state and policy counters.
// The queuedOp pool (opFree) and the prebuilt callbacks are deliberately
// excluded: arena reuse varies the pool without affecting behaviour, and
// the closures are rebuilt by New on a restore.
func (o *Orion) SnapshotTo(e *checkpoint.Encoder) {
	// SMThreshold is the one config field mutated at runtime (by the
	// tuner), so it is state, not config.
	e.Int(o.cfg.SMThreshold)
	e.Int(o.rrNext)
	e.Bool(o.started)
	e.Bool(o.inSchedule)
	e.Bool(o.again)
	e.Bool(o.retryArmed)
	e.Int(o.hpOut)
	e.Int(o.hpCopiesOut)
	e.I64(int64(o.beOutstanding))
	e.Int(len(o.hpProfiles))
	for _, p := range o.hpProfiles {
		e.Int(int(p))
	}
	e.U64(o.beDeferred)
	e.U64(o.beSubmitted)
	e.U64(o.hpSubmitted)
	e.U64(o.throttleHits)
	e.U64(o.evictions)
	e.U64(o.purgedOps)
	e.U64(o.transientRetries)

	e.Bool(o.hp != nil)
	if o.hp != nil {
		o.hp.snapshotTo(e)
	}
	e.Int(len(o.be))
	for _, c := range o.be {
		c.snapshotTo(e)
	}

	e.Bool(o.slo != nil)
	if o.slo != nil {
		s := o.slo
		e.Bool(s.tripped)
		e.Int(s.next)
		e.Int(s.filled)
		e.Int(s.violations)
		e.U64(s.trips)
		e.U64(s.resumes)
	}
	e.Bool(o.tuner != nil)
	if o.tuner != nil {
		t := o.tuner
		e.Int(t.lo)
		e.Int(t.hi)
		e.F64(t.reference)
		e.I64(int64(t.windowStart))
		e.U64(t.windowCount)
	}
	e.Bool(o.decisions != nil)
	if o.decisions != nil {
		// Count and ring cursor only: the per-verdict tally is a map and
		// map iteration order is nondeterministic; the total pins it.
		e.U64(o.decisions.count)
		e.Int(o.decisions.next)
	}
}

// snapshotTo appends one client's state: its pending queue, request
// counters and trackers. Queued ops are identified by their descriptor
// name and priority; their completion closures are rebuilt on replay.
func (c *client) snapshotTo(e *checkpoint.Encoder) {
	e.Str(c.cfg.Model.ID())
	e.U64(c.requests)
	e.I64(int64(c.begin))
	e.Bool(c.gone)
	e.Int(len(c.queue))
	for _, q := range c.queue {
		e.Str(q.op.Name)
		e.Bool(q.hp)
	}
	c.tracker.SnapshotTo(e)
}
