package core

import (
	"orion/internal/sim"
	"orion/internal/workload"
)

// AutoTuneMode controls the dynamic SM_THRESHOLD tuner of §5.1.1: when the
// high-priority job is throughput-oriented (training), SM_THRESHOLD can be
// raised for more aggressive collocation, found by binary search on the
// high-priority job's throughput. The search runs between zero and the
// maximum SM requirement of any best-effort kernel.
type AutoTuneMode int

const (
	// AutoTuneDefault enables tuning exactly when the high-priority
	// client is a training job — the paper's behaviour.
	AutoTuneDefault AutoTuneMode = iota
	// AutoTuneOn always tunes.
	AutoTuneOn
	// AutoTuneOff pins SM_THRESHOLD at its configured value.
	AutoTuneOff
)

// Tuning defaults.
const (
	// DefaultTuneInterval is how often the tuner re-evaluates
	// high-priority throughput.
	DefaultTuneInterval = 500 * sim.Millisecond
	// DefaultTuneTolerance is the throughput degradation the tuner
	// accepts while raising the threshold (the paper reports keeping
	// high-priority training within 16% of dedicated).
	DefaultTuneTolerance = 0.15
)

// tuner runs the binary search. All state lives on the engine's virtual
// clock; the search converges in log2(maxSM) intervals.
type tuner struct {
	o         *Orion
	interval  sim.Duration
	tolerance float64

	lo, hi    int // search bounds on SM_THRESHOLD
	reference float64
	tickFn    func() // t.tick, bound once

	// measurement window: the tuner only judges throughput once enough
	// requests completed for the estimate to beat quantization noise.
	windowStart sim.Time
	windowCount uint64
}

// tuneMinRequests is the minimum completed high-priority requests per
// measurement before the tuner adjusts the threshold; below it, a single
// request of jitter would exceed the tolerance being enforced.
const tuneMinRequests = 8

// startTuner arms the tuner if the configuration and client mix call for
// it. Called from Orion.Start.
func (o *Orion) startTuner() {
	switch o.cfg.AutoTuneSM {
	case AutoTuneOff:
		return
	case AutoTuneDefault:
		if o.hp == nil || o.hp.cfg.Model.Kind != workload.Training || len(o.be) == 0 {
			return
		}
	case AutoTuneOn:
		if o.hp == nil || len(o.be) == 0 {
			return
		}
	}
	maxSM := 0
	for _, c := range o.be {
		for _, k := range c.profile.Kernels {
			if k.SMsNeeded > maxSM {
				maxSM = k.SMsNeeded
			}
		}
	}
	if maxSM == 0 {
		return
	}
	interval := o.cfg.TuneInterval
	if interval == 0 {
		interval = DefaultTuneInterval
	}
	tolerance := o.cfg.TuneTolerance
	if tolerance == 0 {
		tolerance = DefaultTuneTolerance
	}
	t := &tuner{
		o:         o,
		interval:  interval,
		tolerance: tolerance,
		lo:        0,
		hi:        maxSM + 1,
		reference: 1 / o.hp.profile.RequestLatency.Seconds(),
	}
	// Start optimistic: admit everything the search range allows, then
	// back off if high-priority throughput degrades.
	o.SetSMThreshold(t.hi)
	t.tickFn = t.tick
	t.windowStart = o.eng.Now()
	t.windowCount = o.hp.requests
	o.tuner = t
	o.eng.AfterWeak(t.interval, t.tickFn)
}

// tick measures high-priority request throughput over the accumulated
// window and halves the search range accordingly. Windows with too few
// completions keep accumulating instead of judging on noise.
func (t *tuner) tick() {
	o := t.o
	completed := o.hp.requests - t.windowCount
	if completed < tuneMinRequests {
		o.eng.AfterWeak(t.interval, t.tickFn)
		return
	}
	elapsed := o.eng.Now().Sub(t.windowStart).Seconds()
	// Half a request of slack absorbs window-boundary quantization.
	rate := (float64(completed) + 0.5) / elapsed
	t.windowStart = o.eng.Now()
	t.windowCount = o.hp.requests

	if rate >= (1-t.tolerance)*t.reference {
		// High-priority job healthy: current threshold is admissible.
		t.lo = o.SMThreshold()
	} else {
		// Too much interference: current threshold is too high.
		t.hi = o.SMThreshold() - 1
		if t.hi < t.lo {
			t.hi = t.lo
		}
	}
	next := (t.lo + t.hi + 1) / 2
	o.SetSMThreshold(next)
	o.schedule()
	o.eng.AfterWeak(t.interval, t.tickFn)
}
