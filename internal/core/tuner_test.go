package core

import (
	"testing"

	"orion/internal/cudart"
	"orion/internal/gpu"
	"orion/internal/profiler"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

// collocateTrainers runs HP + BE training jobs under Orion with the given
// config and returns (hp it/s, be it/s, final SM threshold).
func collocateTrainers(t *testing.T, cfg Config, hpM, beM *workload.Model) (float64, float64, int) {
	t.Helper()
	hpProf, err := profiler.Collect(hpM, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	beProf, err := profiler.Collect(beM, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	eng.MaxEvents = 500_000_000
	dev, _ := gpu.NewDevice(eng, gpu.V100())
	ctx := cudartContext(dev)
	cfg.Profiles = map[string]*profiler.Profile{hpM.ID(): hpProf, beM.ID(): beProf}
	o, err := New(eng, ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hpc, err := o.Register(sched.ClientConfig{Name: "hp", Priority: sched.HighPriority, Model: hpM})
	if err != nil {
		t.Fatal(err)
	}
	bec, err := o.Register(sched.ClientConfig{Name: "be", Priority: sched.BestEffort, Model: beM})
	if err != nil {
		t.Fatal(err)
	}
	o.Start()
	horizon := sim.Time(sim.Seconds(10))
	hpd, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: hpc, Model: hpM, Horizon: horizon, Warmup: sim.Seconds(3)})
	bed, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: bec, Model: beM, Horizon: horizon, Warmup: sim.Seconds(3)})
	hpd.Start()
	bed.Start()
	eng.Run()
	return hpd.Stats().Throughput(), bed.Stats().Throughput(), o.SMThreshold()
}

// The §5.1.1 tuner: with a high-priority training job, the threshold is
// raised so best-effort device-filling kernels collocate, while the
// high-priority job keeps most of its dedicated throughput.
func TestTunerEnablesTrainTrainHarvest(t *testing.T) {
	hpThr, beThr, final := collocateTrainers(t, Config{},
		workload.ResNet50Training(), workload.MobileNetV2Training())
	if beThr < 2 {
		t.Errorf("tuned best-effort trainer at %.2f it/s, want real harvest", beThr)
	}
	if hpThr < 0.75*10.3 {
		t.Errorf("tuned high-priority trainer at %.2f it/s, dropped below 75%% of dedicated 10.3", hpThr)
	}
	if final <= 80 {
		t.Logf("final SM threshold %d (tuner backed off)", final)
	}
}

// AutoTuneOff pins the threshold: device-filling best-effort kernels stay
// blocked and the best-effort trainer starves.
func TestTunerOffStarvesBigBEKernels(t *testing.T) {
	_, beThr, final := collocateTrainers(t, Config{AutoTuneSM: AutoTuneOff},
		workload.ResNet50Training(), workload.MobileNetV2Training())
	if final != 80 {
		t.Errorf("threshold moved to %d despite AutoTuneOff", final)
	}
	if beThr > 1.5 {
		t.Errorf("best-effort trainer at %.2f it/s with 80-SM threshold; its conv kernels should be blocked", beThr)
	}
}

// AutoTuneDefault must not tune for a high-priority inference job:
// latency-critical jobs keep the conservative default.
func TestTunerDefaultOffForInference(t *testing.T) {
	hpM, beM := workload.ResNet50Inference(), workload.ResNet50Training()
	hpProf, _ := profiler.Collect(hpM, gpu.V100())
	beProf, _ := profiler.Collect(beM, gpu.V100())
	eng := sim.NewEngine()
	dev, _ := gpu.NewDevice(eng, gpu.V100())
	o, err := New(eng, cudartContext(dev), Config{
		Profiles: map[string]*profiler.Profile{hpM.ID(): hpProf, beM.ID(): beProf},
	})
	if err != nil {
		t.Fatal(err)
	}
	o.Register(sched.ClientConfig{Name: "hp", Priority: sched.HighPriority, Model: hpM})
	o.Register(sched.ClientConfig{Name: "be", Priority: sched.BestEffort, Model: beM})
	o.Start()
	if o.tuner != nil {
		t.Fatal("tuner armed for a high-priority inference job under AutoTuneDefault")
	}
	if o.SMThreshold() != 80 {
		t.Fatalf("threshold %d, want default 80", o.SMThreshold())
	}
}

// AutoTuneOn arms the tuner even for inference high-priority jobs.
func TestTunerOnForInference(t *testing.T) {
	hpM, beM := workload.ResNet50Inference(), workload.ResNet50Training()
	hpProf, _ := profiler.Collect(hpM, gpu.V100())
	beProf, _ := profiler.Collect(beM, gpu.V100())
	eng := sim.NewEngine()
	dev, _ := gpu.NewDevice(eng, gpu.V100())
	o, err := New(eng, cudartContext(dev), Config{
		AutoTuneSM: AutoTuneOn,
		Profiles:   map[string]*profiler.Profile{hpM.ID(): hpProf, beM.ID(): beProf},
	})
	if err != nil {
		t.Fatal(err)
	}
	o.Register(sched.ClientConfig{Name: "hp", Priority: sched.HighPriority, Model: hpM})
	o.Register(sched.ClientConfig{Name: "be", Priority: sched.BestEffort, Model: beM})
	o.Start()
	if o.tuner == nil {
		t.Fatal("tuner not armed under AutoTuneOn")
	}
}

// Without best-effort clients there is nothing to tune.
func TestTunerIdleWithoutBEClients(t *testing.T) {
	hpM := workload.ResNet50Training()
	hpProf, _ := profiler.Collect(hpM, gpu.V100())
	eng := sim.NewEngine()
	dev, _ := gpu.NewDevice(eng, gpu.V100())
	o, _ := New(eng, cudartContext(dev), Config{
		Profiles: map[string]*profiler.Profile{hpM.ID(): hpProf},
	})
	o.Register(sched.ClientConfig{Name: "hp", Priority: sched.HighPriority, Model: hpM})
	o.Start()
	if o.tuner != nil {
		t.Fatal("tuner armed with no best-effort clients")
	}
}

// cudartContext is a tiny helper hiding the cudart import.
func cudartContext(dev *gpu.Device) *cudart.Context { return cudart.NewContext(dev) }
