package core

import (
	"testing"

	"orion/internal/cudart"
	"orion/internal/gpu"
	"orion/internal/kernels"
	"orion/internal/profiler"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/trace"
	"orion/internal/workload"
)

// --- hand-built micro-workloads for policy-level tests --------------------

// mkKernel builds a kernel descriptor with an exact SM footprint.
func mkKernel(id int, name string, dur sim.Duration, cu, mu float64, sms int) kernels.Descriptor {
	return kernels.Descriptor{
		ID: id, Name: name, Op: kernels.OpKernel,
		Launch:   kernels.LaunchConfig{Blocks: 4 * sms, ThreadsPerBlock: 256, RegsPerThread: 64},
		Duration: dur, ComputeUtil: cu, MemBWUtil: mu,
	}
}

func mkModel(name string, kind workload.Kind, ops ...kernels.Descriptor) *workload.Model {
	var total sim.Duration
	for i := range ops {
		ops[i].ID = i
		if ops[i].Op == kernels.OpKernel {
			total += ops[i].Duration
		}
	}
	return &workload.Model{
		Name: name, Kind: kind, Batch: 1, Ops: ops,
		WeightsBytes: 1 << 20, TargetDuration: total,
	}
}

// mkProfile hand-builds the offline profile core would get from
// profiler.Collect.
func mkProfile(m *workload.Model, reqLatency sim.Duration, spec gpu.Spec) *profiler.Profile {
	p := &profiler.Profile{Workload: m.ID(), Device: spec.Name, RequestLatency: reqLatency}
	for i := range m.Ops {
		op := &m.Ops[i]
		kp := profiler.KernelProfile{ID: op.ID, Name: op.Name}
		if op.Op == kernels.OpKernel {
			need, err := kernels.SMsNeeded(op.Launch, spec.SM)
			if err != nil {
				panic(err)
			}
			if need > spec.NumSMs {
				need = spec.NumSMs
			}
			kp.Duration = op.Duration
			kp.ComputeUtil = op.ComputeUtil
			kp.MemBWUtil = op.MemBWUtil
			kp.SMsNeeded = need
			kp.Class = kernels.Classify(op.ComputeUtil, op.MemBWUtil)
		}
		p.Kernels = append(p.Kernels, kp)
	}
	return p
}

type rig struct {
	eng *sim.Engine
	dev *gpu.Device
	ctx *cudart.Context
	o   *Orion
}

func newRig(t *testing.T, cfg Config, models ...*workload.Model) *rig {
	t.Helper()
	eng := sim.NewEngine()
	eng.MaxEvents = 200_000_000
	dev, err := gpu.NewDevice(eng, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	ctx := cudart.NewContext(dev)
	if cfg.Profiles == nil {
		cfg.Profiles = map[string]*profiler.Profile{}
	}
	for _, m := range models {
		if _, ok := cfg.Profiles[m.ID()]; !ok {
			cfg.Profiles[m.ID()] = mkProfile(m, m.TargetDuration+sim.Millis(1), gpu.V100())
		}
	}
	o, err := New(eng, ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, dev: dev, ctx: ctx, o: o}
}

func register(t *testing.T, o *Orion, m *workload.Model, p sched.Priority) sched.Client {
	t.Helper()
	c, err := o.Register(sched.ClientConfig{Name: m.ID(), Priority: p, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// --- constructor and registration ------------------------------------------

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	dev, _ := gpu.NewDevice(eng, gpu.V100())
	ctx := cudart.NewContext(dev)
	if _, err := New(nil, ctx, Config{}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(eng, nil, Config{}); err == nil {
		t.Error("nil context accepted")
	}
	if _, err := New(eng, ctx, Config{DurThreshold: 1.5}); err == nil {
		t.Error("DurThreshold > 1 accepted")
	}
	if _, err := New(eng, ctx, Config{SMThreshold: -1}); err == nil {
		t.Error("negative SMThreshold accepted")
	}
	o, err := New(eng, ctx, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.DurThreshold != DefaultDurThreshold {
		t.Errorf("default DurThreshold = %v", o.cfg.DurThreshold)
	}
	if o.SMThreshold() != 80 {
		t.Errorf("default SMThreshold = %d, want NumSMs=80", o.SMThreshold())
	}
}

func TestRegisterRequiresProfile(t *testing.T) {
	m := mkModel("x", workload.Inference, mkKernel(0, "k", sim.Micros(50), 0.5, 0.2, 10))
	r := newRig(t, Config{Profiles: map[string]*profiler.Profile{}})
	if _, err := r.o.Register(sched.ClientConfig{Name: "x", Model: m}); err == nil {
		t.Fatal("client without profile accepted")
	}
}

func TestRegisterSingleHighPriority(t *testing.T) {
	m1 := mkModel("a", workload.Inference, mkKernel(0, "k", sim.Micros(50), 0.5, 0.2, 10))
	m2 := mkModel("b", workload.Inference, mkKernel(0, "k", sim.Micros(50), 0.5, 0.2, 10))
	r := newRig(t, Config{}, m1, m2)
	register(t, r.o, m1, sched.HighPriority)
	if _, err := r.o.Register(sched.ClientConfig{Name: "b", Priority: sched.HighPriority, Model: m2}); err == nil {
		t.Fatal("second high-priority client accepted")
	}
}

func TestRegisterAfterStart(t *testing.T) {
	m := mkModel("a", workload.Inference, mkKernel(0, "k", sim.Micros(50), 0.5, 0.2, 10))
	r := newRig(t, Config{}, m)
	r.o.Start()
	if _, err := r.o.Register(sched.ClientConfig{Name: "a", Model: m}); err == nil {
		t.Fatal("register after Start accepted")
	}
}

// --- policy behaviour -------------------------------------------------------

// A best-effort kernel runs immediately when no high-priority work exists.
func TestBEFreeWhenHPIdle(t *testing.T) {
	be := mkModel("be", workload.Inference, mkKernel(0, "k", sim.Micros(100), 0.7, 0.2, 40))
	r := newRig(t, Config{}, be)
	c := register(t, r.o, be, sched.BestEffort)
	r.o.Start()
	var done sim.Time
	c.Submit(&be.Ops[0], func(at sim.Time) { done = at })
	r.eng.Run()
	if done == 0 || done > sim.Time(sim.Micros(110)) {
		t.Fatalf("best-effort kernel completed at %v, want ~103us (no gating)", done)
	}
}

// A same-profile best-effort kernel is deferred while a high-priority
// kernel runs, and runs after it completes.
func TestBESameProfileDeferredDuringHP(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "hpconv", sim.Millis(1), 0.9, 0.2, 40))
	be := mkModel("be", workload.Inference, mkKernel(0, "beconv", sim.Micros(100), 0.9, 0.2, 10))
	r := newRig(t, Config{}, hp, be)
	hpc := register(t, r.o, hp, sched.HighPriority)
	bec := register(t, r.o, be, sched.BestEffort)
	r.o.Start()
	var hpDone, beDone sim.Time
	hpc.Submit(&hp.Ops[0], func(at sim.Time) { hpDone = at })
	bec.Submit(&be.Ops[0], func(at sim.Time) { beDone = at })
	r.eng.Run()
	if beDone < hpDone {
		t.Fatalf("same-profile best-effort kernel finished at %v before high-priority at %v", beDone, hpDone)
	}
	_, _, deferred, _ := r.o.Stats()
	if deferred == 0 {
		t.Fatal("no deferral recorded")
	}
}

// An opposite-profile, small best-effort kernel is collocated while the
// high-priority kernel runs.
func TestBEOppositeProfileCollocated(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "hpconv", sim.Millis(2), 0.9, 0.2, 40))
	be := mkModel("be", workload.Inference, mkKernel(0, "bebn", sim.Micros(200), 0.1, 0.8, 10))
	r := newRig(t, Config{}, hp, be)
	hpc := register(t, r.o, hp, sched.HighPriority)
	bec := register(t, r.o, be, sched.BestEffort)
	r.o.Start()
	var hpDone, beDone sim.Time
	hpc.Submit(&hp.Ops[0], func(at sim.Time) { hpDone = at })
	bec.Submit(&be.Ops[0], func(at sim.Time) { beDone = at })
	r.eng.Run()
	if beDone >= hpDone {
		t.Fatalf("opposite-profile kernel finished at %v, after high-priority at %v (not collocated)", beDone, hpDone)
	}
}

// Unknown-profile best-effort kernels collocate with anything.
func TestBEUnknownProfileCollocated(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "hpconv", sim.Millis(2), 0.9, 0.2, 40))
	be := mkModel("be", workload.Inference, mkKernel(0, "tiny", sim.Micros(50), 0.1, 0.1, 4))
	r := newRig(t, Config{}, hp, be)
	hpc := register(t, r.o, hp, sched.HighPriority)
	bec := register(t, r.o, be, sched.BestEffort)
	r.o.Start()
	var hpDone, beDone sim.Time
	hpc.Submit(&hp.Ops[0], func(at sim.Time) { hpDone = at })
	bec.Submit(&be.Ops[0], func(at sim.Time) { beDone = at })
	r.eng.Run()
	if beDone >= hpDone {
		t.Fatal("unknown-profile kernel was not collocated")
	}
}

// A best-effort kernel at or above SM_THRESHOLD is deferred while
// high-priority work runs, even with an opposite profile.
func TestBESMThresholdDefers(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "hpconv", sim.Millis(1), 0.9, 0.2, 20))
	be := mkModel("be", workload.Inference, mkKernel(0, "bigbn", sim.Micros(200), 0.1, 0.8, 60))
	r := newRig(t, Config{SMThreshold: 40}, hp, be)
	hpc := register(t, r.o, hp, sched.HighPriority)
	bec := register(t, r.o, be, sched.BestEffort)
	r.o.Start()
	var hpDone, beDone sim.Time
	hpc.Submit(&hp.Ops[0], func(at sim.Time) { hpDone = at })
	bec.Submit(&be.Ops[0], func(at sim.Time) { beDone = at })
	r.eng.Run()
	if beDone < hpDone {
		t.Fatalf("oversized best-effort kernel collocated (be %v < hp %v)", beDone, hpDone)
	}
}

// DisableSMCheck admits the oversized kernel again.
func TestDisableSMCheck(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "hpconv", sim.Millis(1), 0.9, 0.2, 20))
	be := mkModel("be", workload.Inference, mkKernel(0, "bigbn", sim.Micros(200), 0.1, 0.8, 60))
	r := newRig(t, Config{SMThreshold: 40, DisableSMCheck: true}, hp, be)
	hpc := register(t, r.o, hp, sched.HighPriority)
	bec := register(t, r.o, be, sched.BestEffort)
	r.o.Start()
	var hpDone, beDone sim.Time
	hpc.Submit(&hp.Ops[0], func(at sim.Time) { hpDone = at })
	bec.Submit(&be.Ops[0], func(at sim.Time) { beDone = at })
	r.eng.Run()
	if beDone >= hpDone {
		t.Fatal("DisableSMCheck did not admit the oversized kernel")
	}
}

// DisableProfileCheck admits a same-profile kernel during high-priority
// execution.
func TestDisableProfileCheck(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "hpconv", sim.Millis(2), 0.9, 0.2, 40))
	be := mkModel("be", workload.Inference, mkKernel(0, "beconv", sim.Micros(100), 0.9, 0.2, 10))
	r := newRig(t, Config{DisableProfileCheck: true}, hp, be)
	hpc := register(t, r.o, hp, sched.HighPriority)
	bec := register(t, r.o, be, sched.BestEffort)
	r.o.Start()
	var hpDone, beDone sim.Time
	hpc.Submit(&hp.Ops[0], func(at sim.Time) { hpDone = at })
	bec.Submit(&be.Ops[0], func(at sim.Time) { beDone = at })
	r.eng.Run()
	if beDone >= hpDone {
		t.Fatal("DisableProfileCheck did not admit the same-profile kernel")
	}
}

// The duration throttle caps outstanding best-effort work: a stream of
// opposite-profile kernels is serialized once the budget is exceeded.
func TestDurThrottleCapsOutstandingBE(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "hpconv", sim.Millis(8), 0.9, 0.2, 40))
	var ops []kernels.Descriptor
	for i := 0; i < 10; i++ {
		ops = append(ops, mkKernel(i, "bebn", sim.Micros(150), 0.1, 0.8, 10))
	}
	be := mkModel("be", workload.Inference, ops...)
	// HP request latency 10ms, DurThreshold 2.5% -> 250us budget.
	profiles := map[string]*profiler.Profile{
		hp.ID(): mkProfile(hp, sim.Millis(10), gpu.V100()),
		be.ID(): mkProfile(be, sim.Millis(2), gpu.V100()),
	}
	r := newRig(t, Config{Profiles: profiles})
	hpc := register(t, r.o, hp, sched.HighPriority)
	bec := register(t, r.o, be, sched.BestEffort)
	r.o.Start()
	hpc.Submit(&hp.Ops[0], nil)
	for i := range be.Ops {
		bec.Submit(&be.Ops[i], nil)
	}
	maxOutstanding := 0
	poll := func() {
		if n := r.dev.ResidentKernels(); n > maxOutstanding {
			maxOutstanding = n
		}
	}
	for i := 1; i < 2000; i++ {
		r.eng.At(sim.Time(sim.Micros(float64(i)*5)), poll)
	}
	r.eng.Run()
	_, _, _, throttleHits := r.o.Stats()
	if throttleHits == 0 {
		t.Fatal("duration throttle never engaged")
	}
	// Budget 250us / 150us kernels: at most ~2 best-effort kernels + 1 hp
	// resident at once.
	if maxOutstanding > 4 {
		t.Fatalf("max resident kernels %d, throttle not capping outstanding work", maxOutstanding)
	}
}

// DisableDurThrottle lets the backlog flood the device.
func TestDisableDurThrottle(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "hpconv", sim.Millis(8), 0.9, 0.2, 40))
	var ops []kernels.Descriptor
	for i := 0; i < 10; i++ {
		ops = append(ops, mkKernel(i, "bebn", sim.Micros(150), 0.1, 0.8, 4))
	}
	be := mkModel("be", workload.Inference, ops...)
	profiles := map[string]*profiler.Profile{
		hp.ID(): mkProfile(hp, sim.Millis(10), gpu.V100()),
		be.ID(): mkProfile(be, sim.Millis(2), gpu.V100()),
	}
	r := newRig(t, Config{Profiles: profiles, DisableDurThrottle: true})
	hpc := register(t, r.o, hp, sched.HighPriority)
	bec := register(t, r.o, be, sched.BestEffort)
	r.o.Start()
	hpc.Submit(&hp.Ops[0], nil)
	for i := range be.Ops {
		bec.Submit(&be.Ops[i], nil)
	}
	r.eng.Run()
	_, _, _, throttleHits := r.o.Stats()
	if throttleHits != 0 {
		t.Fatal("throttle engaged despite DisableDurThrottle")
	}
}

// Memory operations bypass the scheduling policy even while high-priority
// work runs.
func TestBEMemoryOpsBypass(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "hpconv", sim.Millis(5), 0.9, 0.2, 40))
	be := mkModel("be", workload.Inference,
		kernels.Descriptor{ID: 0, Name: "h2d", Op: kernels.OpMemcpyH2D, Bytes: 1 << 20})
	r := newRig(t, Config{}, hp, be)
	hpc := register(t, r.o, hp, sched.HighPriority)
	bec := register(t, r.o, be, sched.BestEffort)
	r.o.Start()
	var copyDone sim.Time
	hpc.Submit(&hp.Ops[0], nil)
	bec.Submit(&be.Ops[0], func(at sim.Time) { copyDone = at })
	r.eng.Run()
	// ~1MB at 12GB/s + 10us latency = ~97us: completes long before the
	// 5ms high-priority kernel.
	if copyDone > sim.Time(sim.Millis(1)) {
		t.Fatalf("memory op completed at %v, should bypass the policy", copyDone)
	}
}

// Round-robin: with several best-effort clients, all make progress.
func TestMultipleBEClientsRoundRobin(t *testing.T) {
	mk := func(name string) *workload.Model {
		var ops []kernels.Descriptor
		for i := 0; i < 20; i++ {
			ops = append(ops, mkKernel(i, "k", sim.Micros(100), 0.3, 0.3, 8))
		}
		return mkModel(name, workload.Inference, ops...)
	}
	a, b, c := mk("a"), mk("b"), mk("c")
	r := newRig(t, Config{}, a, b, c)
	ca := register(t, r.o, a, sched.BestEffort)
	cb := register(t, r.o, b, sched.BestEffort)
	cc := register(t, r.o, c, sched.BestEffort)
	r.o.Start()
	var doneA, doneB, doneC int
	for i := 0; i < 20; i++ {
		ca.Submit(&a.Ops[i], func(sim.Time) { doneA++ })
		cb.Submit(&b.Ops[i], func(sim.Time) { doneB++ })
		cc.Submit(&c.Ops[i], func(sim.Time) { doneC++ })
	}
	r.eng.Run()
	if doneA != 20 || doneB != 20 || doneC != 20 {
		t.Fatalf("completions %d/%d/%d, want 20 each", doneA, doneB, doneC)
	}
}

func TestEndRequestSynchronizes(t *testing.T) {
	be := mkModel("be", workload.Inference,
		mkKernel(0, "k1", sim.Micros(100), 0.3, 0.3, 8),
		mkKernel(1, "k2", sim.Micros(100), 0.3, 0.3, 8))
	r := newRig(t, Config{}, be)
	c := register(t, r.o, be, sched.BestEffort)
	r.o.Start()
	c.BeginRequest()
	c.Submit(&be.Ops[0], nil)
	c.Submit(&be.Ops[1], nil)
	var syncAt sim.Time
	c.EndRequest(func(at sim.Time) { syncAt = at })
	r.eng.Run()
	if syncAt < sim.Time(sim.Micros(200)) {
		t.Fatalf("EndRequest fired at %v, before both kernels finished", syncAt)
	}
}

func TestSubmitUnknownKernelDerivesProfile(t *testing.T) {
	be := mkModel("be", workload.Inference, mkKernel(0, "k", sim.Micros(100), 0.3, 0.3, 8))
	r := newRig(t, Config{}, be)
	c := register(t, r.o, be, sched.BestEffort)
	r.o.Start()
	// A kernel absent from the offline profile (e.g. a fused CUDA graph)
	// is characterized from its launch parameters on the fly.
	rogue := mkKernel(99, "rogue", sim.Micros(10), 0.1, 0.1, 1)
	var done sim.Time
	if err := c.Submit(&rogue, func(at sim.Time) { done = at }); err != nil {
		t.Fatalf("derivable kernel rejected: %v", err)
	}
	r.eng.Run()
	if done == 0 {
		t.Fatal("derived kernel never completed")
	}
	// Underivable descriptors (invalid launch config) still fail.
	bad := kernels.Descriptor{ID: 100, Name: "bad", Op: kernels.OpKernel,
		Launch: kernels.LaunchConfig{Blocks: 0, ThreadsPerBlock: 1}, Duration: 1}
	if err := c.Submit(&bad, nil); err == nil {
		t.Fatal("underivable kernel accepted")
	}
	if err := c.Submit(nil, nil); err == nil {
		t.Fatal("nil op accepted")
	}
}

func TestSetSMThreshold(t *testing.T) {
	m := mkModel("a", workload.Inference, mkKernel(0, "k", sim.Micros(50), 0.5, 0.2, 10))
	r := newRig(t, Config{}, m)
	r.o.SetSMThreshold(33)
	if r.o.SMThreshold() != 33 {
		t.Fatal("SetSMThreshold did not stick")
	}
	r.o.SetSMThreshold(-5)
	if r.o.SMThreshold() != 0 {
		t.Fatal("negative threshold not clamped")
	}
}

// --- integration: full workloads through Orion -----------------------------

// §6.5: interception overhead on a dedicated job is under 1%.
func TestInterceptionOverheadUnder1Percent(t *testing.T) {
	model := workload.ResNet50Inference()
	prof, err := profiler.Collect(model, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}

	run := func(useOrion bool) sim.Duration {
		eng := sim.NewEngine()
		eng.MaxEvents = 200_000_000
		dev, _ := gpu.NewDevice(eng, gpu.V100())
		ctx := cudart.NewContext(dev)
		var backend sched.Backend
		if useOrion {
			o, err := New(eng, ctx, Config{Profiles: map[string]*profiler.Profile{model.ID(): prof}})
			if err != nil {
				t.Fatal(err)
			}
			backend = o
		} else {
			backend = sched.NewDirect(ctx)
		}
		cl, err := backend.Register(sched.ClientConfig{Name: "hp", Priority: sched.HighPriority, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		backend.Start()
		d, err := sched.NewDriver(sched.DriverConfig{
			Engine: eng, Client: cl, Model: model,
			Horizon: sim.Time(sim.Seconds(2)), Warmup: sim.Seconds(0.2),
		})
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		eng.Run()
		return d.Stats().Latency.Mean()
	}

	native := run(false)
	orion := run(true)
	overhead := float64(orion-native) / float64(native)
	if overhead > 0.01 {
		t.Errorf("interception overhead %.2f%%, paper reports <1%%", overhead*100)
	}
	if overhead < -0.005 {
		t.Errorf("orion mysteriously faster than native by %.2f%%", -overhead*100)
	}
}

// Inference (high-priority, Poisson) collocated with training (best-effort):
// Orion must keep inference latency near dedicated while training makes
// progress — the paper's headline result in miniature.
func TestInfTrainCollocationShape(t *testing.T) {
	hpModel := workload.ResNet50Inference()
	beModel := workload.ResNet50Training()
	hpProf, err := profiler.Collect(hpModel, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	beProf, err := profiler.Collect(beModel, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}

	eng := sim.NewEngine()
	eng.MaxEvents = 500_000_000
	dev, _ := gpu.NewDevice(eng, gpu.V100())
	ctx := cudart.NewContext(dev)
	o, err := New(eng, ctx, Config{Profiles: map[string]*profiler.Profile{
		hpModel.ID(): hpProf, beModel.ID(): beProf,
	}})
	if err != nil {
		t.Fatal(err)
	}
	hpc, _ := o.Register(sched.ClientConfig{Name: "hp", Priority: sched.HighPriority, Model: hpModel})
	bec, _ := o.Register(sched.ClientConfig{Name: "be", Priority: sched.BestEffort, Model: beModel})
	o.Start()

	arr, _ := trace.NewPoisson(15, sim.NewRand(11)) // Table 3 inf-train rate
	horizon := sim.Time(sim.Seconds(6))
	hpd, _ := sched.NewDriver(sched.DriverConfig{
		Engine: eng, Client: hpc, Model: hpModel, Arrivals: arr,
		Horizon: horizon, Warmup: sim.Seconds(1),
	})
	bed, _ := sched.NewDriver(sched.DriverConfig{
		Engine: eng, Client: bec, Model: beModel,
		Horizon: horizon, Warmup: sim.Seconds(1),
	})
	hpd.Start()
	bed.Start()
	eng.Run()

	hpP99 := hpd.Stats().Latency.P99()
	ideal := hpProf.RequestLatency
	if hpP99 > ideal*3 {
		t.Errorf("collocated inference p99 %.2fms vs dedicated %.2fms: interference not contained",
			hpP99.Millis(), ideal.Millis())
	}
	beThroughput := bed.Stats().Throughput()
	if beThroughput < 1.0 {
		t.Errorf("best-effort training only %.2f it/s, starving (REEF-like behaviour)", beThroughput)
	}
	if hpd.Stats().Completed == 0 {
		t.Fatal("no inference requests measured")
	}
}

// With several best-effort clients contending under a busy high-priority
// job, round-robin service keeps their progress balanced.
func TestMultiBEFairnessUnderHPLoad(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "hpconv", sim.Millis(5), 0.9, 0.2, 40))
	mkBE := func(name string) *workload.Model {
		var ops []kernels.Descriptor
		for i := 0; i < 40; i++ {
			ops = append(ops, mkKernel(i, "bn", sim.Micros(50), 0.1, 0.8, 8))
		}
		return mkModel(name, workload.Inference, ops...)
	}
	a, b, c := mkBE("a"), mkBE("b"), mkBE("c")
	r := newRig(t, Config{}, hp, a, b, c)
	hpc := register(t, r.o, hp, sched.HighPriority)
	ca := register(t, r.o, a, sched.BestEffort)
	cb := register(t, r.o, b, sched.BestEffort)
	cc := register(t, r.o, c, sched.BestEffort)
	r.o.Start()
	hpc.Submit(&hp.Ops[0], nil)
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		ca.Submit(&a.Ops[i], func(sim.Time) { counts["a"]++ })
		cb.Submit(&b.Ops[i], func(sim.Time) { counts["b"]++ })
		cc.Submit(&c.Ops[i], func(sim.Time) { counts["c"]++ })
	}
	// Stop mid-flight: fairness is about progress while contended, so
	// compare after a fixed window rather than at drain.
	r.eng.RunUntil(sim.Time(sim.Millis(4)))
	lo, hi := 1<<30, 0
	for _, n := range counts {
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if lo == 0 {
		t.Fatalf("a client starved: %v", counts)
	}
	if hi-lo > 3 {
		t.Fatalf("round-robin imbalance: %v", counts)
	}
	r.eng.Run()
}

// DisableStreamPriorities registers the high-priority client on a
// default-priority stream (the MPS-mode deployment of Figure 14).
func TestDisableStreamPriorities(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "k", sim.Micros(50), 0.5, 0.2, 10))
	r := newRig(t, Config{DisableStreamPriorities: true}, hp)
	c := register(t, r.o, hp, sched.HighPriority)
	r.o.Start()
	if got := c.(*client).stream.Priority(); got != 0 {
		t.Fatalf("stream priority %d with priorities disabled", got)
	}
}
