package core

import (
	"orion/internal/sim"
)

// DefaultSLOFactor is the SLO multiplier the guard watches: a
// high-priority request violates its SLO when its latency exceeds
// SLOFactor times the profiled dedicated request latency.
const DefaultSLOFactor = 1.5

// DefaultSLOWindow is the number of recent high-priority requests the
// guard's sliding window covers.
const DefaultSLOWindow = 32

// DefaultSLOTripFraction is the violation fraction at which the guard
// trips into HP-only mode.
const DefaultSLOTripFraction = 0.5

// DefaultSLOResumeFraction is the violation fraction at or below which a
// tripped guard resumes best-effort admission. Keeping it well under the
// trip fraction gives the guard hysteresis: it will not flap between
// modes on a borderline window.
const DefaultSLOResumeFraction = 0.125

// sloGuard is the degradation path: a sliding window of recent
// high-priority request latencies, judged against the SLO. When too many
// recent requests violate the SLO — under fault injection, a device
// slowdown, or plain overload — the guard trips and the scheduler stops
// admitting best-effort kernels entirely (HP-only mode) until the window
// recovers.
type sloGuard struct {
	// limit is the SLO expressed in time: SLOFactor × the high-priority
	// job's profiled dedicated request latency.
	limit sim.Duration

	// window is a ring of violation flags for the most recent requests.
	window     []bool
	next       int
	filled     int
	violations int

	trip    float64 // violation fraction that trips the guard
	resume  float64 // violation fraction at which it resumes
	tripped bool

	trips   uint64
	resumes uint64
}

func newSLOGuard(limit sim.Duration, window int, trip, resume float64) *sloGuard {
	return &sloGuard{
		limit:  limit,
		window: make([]bool, window),
		trip:   trip,
		resume: resume,
	}
}

// observe records one completed high-priority request latency and
// updates the guard state. It reports whether the guard just resumed
// best-effort admission, in which case the caller should poke the
// scheduler so deferred work flows again.
func (g *sloGuard) observe(latency sim.Duration) (resumed bool) {
	v := latency > g.limit
	if g.filled == len(g.window) {
		if g.window[g.next] {
			g.violations--
		}
	} else {
		g.filled++
	}
	g.window[g.next] = v
	if v {
		g.violations++
	}
	g.next = (g.next + 1) % len(g.window)

	frac := float64(g.violations) / float64(g.filled)
	if !g.tripped {
		// Trip only on a full window so a couple of early warmup
		// outliers cannot shut best-effort work down.
		if g.filled == len(g.window) && frac >= g.trip {
			g.tripped = true
			g.trips++
		}
		return false
	}
	if frac <= g.resume {
		g.tripped = false
		g.resumes++
		return true
	}
	return false
}

// SLOGuardState reports the guard's status: whether it is configured,
// whether best-effort admission is currently suspended, and how many
// times it has tripped and resumed.
func (o *Orion) SLOGuardState() (active, suspended bool, trips, resumes uint64) {
	if o.slo == nil {
		return false, false, 0, 0
	}
	return true, o.slo.tripped, o.slo.trips, o.slo.resumes
}
