package core

import (
	"testing"

	"orion/internal/gpu"
	"orion/internal/kernels"
	"orion/internal/profiler"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

// copyModel builds a workload that is one big H2D copy.
func copyModel(name string, bytes int64) *workload.Model {
	return &workload.Model{
		Name: name, Kind: workload.Inference, Batch: 1,
		Ops: []kernels.Descriptor{
			{ID: 0, Name: "h2d", Op: kernels.OpMemcpyH2D, Bytes: bytes},
		},
		WeightsBytes: 1 << 20, TargetDuration: sim.Millis(1),
	}
}

// With ScheduleMemcpys, a best-effort copy waits for the in-flight
// high-priority transfer; without it, both queue on the engine FIFO.
func TestScheduleMemcpysDefersBECopies(t *testing.T) {
	run := func(enabled bool) (hpDone, beDone sim.Time) {
		hpM := copyModel("hpcp", 12_000_000) // ~1ms on PCIe
		beM := copyModel("becp", 12_000_000)
		profiles := map[string]*profiler.Profile{
			hpM.ID(): mkProfile(hpM, sim.Millis(2), gpu.V100()),
			beM.ID(): mkProfile(beM, sim.Millis(2), gpu.V100()),
		}
		r := newRig(t, Config{Profiles: profiles, ScheduleMemcpys: enabled})
		hpc := register(t, r.o, hpM, sched.HighPriority)
		bec := register(t, r.o, beM, sched.BestEffort)
		r.o.Start()
		// Best-effort copy submitted first; high-priority copy arrives
		// 100us later.
		bec.Submit(&beM.Ops[0], func(at sim.Time) { beDone = at })
		r.eng.At(sim.Time(sim.Micros(100)), func() {
			hpc.Submit(&hpM.Ops[0], func(at sim.Time) { hpDone = at })
		})
		r.eng.Run()
		return
	}
	// Disabled: the BE copy (submitted first) occupies the engine; the HP
	// copy queues behind it.
	hpOff, _ := run(false)
	if hpOff < sim.Time(sim.Millis(1.9)) {
		t.Errorf("without memcpy scheduling, hp copy finished at %v; expected to queue behind the be copy", hpOff)
	}
	// Enabled: same ordering — the BE copy was already in flight (no
	// preemption), but a SECOND be copy must wait for the hp transfer.
	hpM := copyModel("hpcp", 12_000_000)
	beM := &workload.Model{
		Name: "becp2", Kind: workload.Inference, Batch: 1,
		Ops: []kernels.Descriptor{
			{ID: 0, Name: "h2d_a", Op: kernels.OpMemcpyH2D, Bytes: 1_000_000},
			{ID: 1, Name: "h2d_b", Op: kernels.OpMemcpyH2D, Bytes: 1_000_000},
		},
		WeightsBytes: 1 << 20, TargetDuration: sim.Millis(1),
	}
	profiles := map[string]*profiler.Profile{
		hpM.ID(): mkProfile(hpM, sim.Millis(2), gpu.V100()),
		beM.ID(): mkProfile(beM, sim.Millis(2), gpu.V100()),
	}
	r := newRig(t, Config{Profiles: profiles, ScheduleMemcpys: true})
	hpc := register(t, r.o, hpM, sched.HighPriority)
	bec := register(t, r.o, beM, sched.BestEffort)
	r.o.Start()
	var hpDone, be2Done sim.Time
	bec.Submit(&beM.Ops[0], nil)
	r.eng.At(sim.Time(sim.Micros(10)), func() {
		hpc.Submit(&hpM.Ops[0], func(at sim.Time) { hpDone = at })
	})
	r.eng.At(sim.Time(sim.Micros(20)), func() {
		bec.Submit(&beM.Ops[1], func(at sim.Time) { be2Done = at })
	})
	r.eng.Run()
	if be2Done < hpDone {
		t.Errorf("second best-effort copy at %v finished before the high-priority transfer at %v",
			be2Done, hpDone)
	}
}
