package core

import (
	"fmt"
	"testing"

	"orion/internal/cudart"
	"orion/internal/gpu"
	"orion/internal/kernels"
	"orion/internal/profiler"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/trace"
	"orion/internal/workload"
)

// Deregister of a best-effort client must purge its queue, keep the
// round-robin cursor on the client it pointed at, and leave the survivors
// schedulable — with the dead client's outstanding throttle events still
// in flight on the device.
func TestDeregisterPurgesQueueAndRebalancesCursor(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "hpconv", sim.Millis(5), 0.9, 0.2, 40))
	mkBE := func(name string) *workload.Model {
		return mkModel(name, workload.Training,
			mkKernel(0, name+"0", sim.Micros(100), 0.9, 0.2, 20),
			mkKernel(1, name+"1", sim.Micros(100), 0.9, 0.2, 20),
			mkKernel(2, name+"2", sim.Micros(100), 0.9, 0.2, 20))
	}
	beA, beB, beC := mkBE("beA"), mkBE("beB"), mkBE("beC")
	r := newRig(t, Config{}, hp, beA, beB, beC)
	hpc := register(t, r.o, hp, sched.HighPriority)
	ca := register(t, r.o, beA, sched.BestEffort)
	cb := register(t, r.o, beB, sched.BestEffort)
	cc := register(t, r.o, beC, sched.BestEffort)
	r.o.Start()

	// A long high-priority kernel occupies the device, so the same-profile
	// best-effort queues pile up behind the admission policy.
	hpc.Submit(&hp.Ops[0], nil)
	for i := 0; i < 3; i++ {
		ca.Submit(&beA.Ops[i], nil)
		cb.Submit(&beB.Ops[i], nil)
		cc.Submit(&beC.Ops[i], nil)
	}
	r.eng.RunUntil(sim.Time(sim.Millis(1)))

	queuedB := len(cb.(*client).queue)
	if queuedB == 0 {
		t.Fatal("beB queue empty; test needs deferred work to purge")
	}
	r.o.rrNext = 2 // cursor past beB
	if err := r.o.Deregister(cb); err != nil {
		t.Fatal(err)
	}
	evictions, purged, _ := r.o.FaultStats()
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	if purged != uint64(queuedB) {
		t.Errorf("purged %d ops, want %d", purged, queuedB)
	}
	if len(r.o.be) != 2 {
		t.Fatalf("%d best-effort clients left, want 2", len(r.o.be))
	}
	// The cursor pointed at beC (index 2); with beB (index 1) gone the
	// eviction shifts it to beC's new index 1, and the scheduling pass
	// Deregister runs advances it one step — to a valid index either way.
	// An unadjusted cursor would sit at 2 == len(be) and index out of
	// range on the next pass.
	if r.o.rrNext < 0 || r.o.rrNext >= len(r.o.be) {
		t.Errorf("round-robin cursor out of range after eviction: rrNext=%d with %d clients",
			r.o.rrNext, len(r.o.be))
	}

	// Deregister is idempotent, rejects foreigners, and the dead client's
	// submissions bounce.
	if err := r.o.Deregister(cb); err != nil {
		t.Errorf("second deregister: %v", err)
	}
	if evictions, _, _ := r.o.FaultStats(); evictions != 1 {
		t.Errorf("idempotent deregister bumped evictions to %d", evictions)
	}
	if err := r.o.Deregister(nil); err == nil {
		t.Error("nil client deregistered")
	}
	if err := cb.Submit(&beB.Ops[0], nil); err == nil {
		t.Error("submit on deregistered client accepted")
	}

	// The survivors drain once the high-priority kernel finishes; the dead
	// client's queue stays purged.
	r.eng.Run()
	_, beSubmitted, _, _ := r.o.Stats()
	if want := uint64(6); beSubmitted != want {
		t.Errorf("beSubmitted = %d, want %d (survivors' ops only)", beSubmitted, want)
	}
	if cb.(*client).queue != nil {
		t.Error("deregistered client's queue repopulated")
	}
}

// Evicting the high-priority client mid-request lifts the duration
// throttle (the budget becomes unbounded) and frees best-effort work.
func TestDeregisterHPUnpinsBudget(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "hpconv", sim.Millis(10), 0.9, 0.2, 40))
	be := mkModel("be", workload.Training,
		mkKernel(0, "be0", sim.Millis(1), 0.9, 0.2, 20),
		mkKernel(1, "be1", sim.Millis(1), 0.9, 0.2, 20))
	r := newRig(t, Config{}, hp, be)
	hpc := register(t, r.o, hp, sched.HighPriority)
	bec := register(t, r.o, be, sched.BestEffort)
	r.o.Start()

	hpc.Submit(&hp.Ops[0], nil)
	bec.Submit(&be.Ops[0], nil)
	bec.Submit(&be.Ops[1], nil)
	r.eng.RunUntil(sim.Time(sim.Millis(1)))
	if _, beSubmitted, _, _ := r.o.Stats(); beSubmitted != 0 {
		t.Fatalf("best-effort admitted under a same-profile high-priority kernel")
	}

	if err := r.o.Deregister(hpc); err != nil {
		t.Fatal(err)
	}
	if r.o.hp != nil {
		t.Fatal("high-priority slot still occupied")
	}
	if got := r.o.durBudget(); got != 1<<62 {
		t.Errorf("durBudget = %v with no high-priority client, want unbounded", got)
	}
	r.eng.Run()
	if _, beSubmitted, _, _ := r.o.Stats(); beSubmitted != 2 {
		t.Errorf("beSubmitted = %d after high-priority eviction, want 2", beSubmitted)
	}
}

// End-to-end eviction under load: a best-effort trainer with outstanding
// throttle events dies mid-run; the high-priority tail returns to its
// dedicated level, the surviving trainer keeps making progress, and the
// throttle budget drains rather than staying pinned by the dead client.
func TestEvictionRecoveryUnderLoad(t *testing.T) {
	hpM := workload.ResNet50Inference()
	beM := workload.MobileNetV2Training()
	beM2 := workload.ResNet50Training()
	hpProf, err := profiler.Collect(hpM, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	beProf, err := profiler.Collect(beM, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	beProf2, err := profiler.Collect(beM2, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}

	eng := sim.NewEngine()
	eng.MaxEvents = 500_000_000
	dev, _ := gpu.NewDevice(eng, gpu.V100())
	ctx := cudart.NewContext(dev)
	o, err := New(eng, ctx, Config{Profiles: map[string]*profiler.Profile{
		hpM.ID(): hpProf, beM.ID(): beProf, beM2.ID(): beProf2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	hpc, _ := o.Register(sched.ClientConfig{Name: "hp", Priority: sched.HighPriority, Model: hpM})
	bec, _ := o.Register(sched.ClientConfig{Name: "be", Priority: sched.BestEffort, Model: beM})
	bec2, _ := o.Register(sched.ClientConfig{Name: "be2", Priority: sched.BestEffort, Model: beM2})
	o.Start()

	horizon := sim.Time(sim.Seconds(8))
	arr, _ := trace.NewPoisson(30, sim.NewRand(11))
	hpd, _ := sched.NewDriver(sched.DriverConfig{
		Engine: eng, Client: hpc, Model: hpM, Arrivals: arr,
		Horizon: horizon, Warmup: sim.Seconds(4), // measure after the crash
	})
	bed, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: bec, Model: beM, Horizon: horizon})
	bed2, _ := sched.NewDriver(sched.DriverConfig{
		Engine: eng, Client: bec2, Model: beM2,
		Horizon: horizon, Warmup: sim.Seconds(4),
	})
	hpd.Start()
	bed.Start()
	bed2.Start()

	// The first trainer's process dies at t=3s with work queued and its
	// last-submission event still outstanding on the device.
	eng.At(sim.Time(sim.Seconds(3)), func() {
		bed.Crash()
		if err := o.Deregister(bec); err != nil {
			t.Errorf("deregister at crash: %v", err)
		}
	})
	eng.RunUntil(horizon)

	evictions, purged, _ := o.FaultStats()
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	if purged == 0 {
		t.Error("crash purged no queued ops; trainer should have had work queued")
	}
	// No leak: the dead client holds no queued ops, and the throttle
	// budget drained (it would pin best-effort admission forever if the
	// dead client's outstanding durations never reset).
	if n := len(bec.(*client).queue); n != 0 {
		t.Errorf("dead client still holds %d queued ops", n)
	}
	if bed2.Stats().Completed == 0 {
		t.Fatal("surviving trainer made no measured progress after the crash")
	}
	// Post-crash, the high-priority tail should sit near its dedicated
	// latency: the evicted trainer must not keep costing interference.
	p50 := hpd.Stats().Latency.P50()
	if p50 > hpProf.RequestLatency*12/10 {
		t.Errorf("post-crash p50 %.2fms vs dedicated %.2fms; scheduler did not recover",
			p50.Millis(), hpProf.RequestLatency.Millis())
	}
}

// Transient launch failures inside an injection window are retried by the
// scheduler without losing or reordering operations.
func TestTransientLaunchFailuresRetried(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "hpconv", sim.Micros(500), 0.9, 0.2, 40))
	be := mkModel("be", workload.Training,
		mkKernel(0, "be0", sim.Micros(100), 0.1, 0.8, 10),
		mkKernel(1, "be1", sim.Micros(100), 0.1, 0.8, 10))
	r := newRig(t, Config{}, hp, be)
	hpc := register(t, r.o, hp, sched.HighPriority)
	bec := register(t, r.o, be, sched.BestEffort)
	r.o.Start()

	// Fail every launch for the first 200us.
	failUntil := sim.Time(sim.Micros(200))
	var denials int
	r.ctx.SetFaultHook(func(p cudart.InjectPoint, desc *kernels.Descriptor) error {
		if p == cudart.InjectLaunch && r.eng.Now() < failUntil {
			denials++
			return fmt.Errorf("test: %w (%w)", cudart.ErrLaunchFailed, cudart.ErrTransient)
		}
		return nil
	})

	var order []string
	track := func(name string) func(sim.Time) {
		return func(sim.Time) { order = append(order, name) }
	}
	hpc.Submit(&hp.Ops[0], track("hp0"))
	bec.Submit(&be.Ops[0], track("be0"))
	bec.Submit(&be.Ops[1], track("be1"))
	r.eng.Run()

	if denials == 0 {
		t.Fatal("fault hook never denied a launch")
	}
	_, _, retries := r.o.FaultStats()
	if retries == 0 {
		t.Fatal("no scheduler-side transient retries recorded")
	}
	if len(order) != 3 {
		t.Fatalf("completions %v, want all three ops", order)
	}
	// Per-client submission order survives the retries: be0 before be1.
	i0, i1 := -1, -1
	for i, name := range order {
		switch name {
		case "be0":
			i0 = i
		case "be1":
			i1 = i
		}
	}
	if i0 < 0 || i1 < 0 || i0 > i1 {
		t.Errorf("per-client op order broken: %v", order)
	}
}
