package core

import (
	"strings"
	"testing"

	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

func TestDecisionLogRecordsVerdicts(t *testing.T) {
	hp := mkModel("hp", workload.Inference, mkKernel(0, "hpconv", sim.Millis(1), 0.9, 0.2, 40))
	be := mkModel("be", workload.Inference,
		mkKernel(0, "beconv", sim.Micros(100), 0.9, 0.2, 10), // same profile: deferred
		mkKernel(1, "bebn", sim.Micros(100), 0.1, 0.8, 10))   // opposite: admitted
	r := newRig(t, Config{}, hp, be)
	hpc := register(t, r.o, hp, sched.HighPriority)
	bec := register(t, r.o, be, sched.BestEffort)
	r.o.Start()
	hpc.Submit(&hp.Ops[0], nil)
	bec.Submit(&be.Ops[0], nil)
	bec.Submit(&be.Ops[1], nil)
	r.eng.Run()

	counts := r.o.VerdictCounts()
	if counts[DeferredProfile] == 0 {
		t.Errorf("no same-profile deferral recorded: %v", counts)
	}
	if counts[AdmittedIdle] == 0 {
		t.Errorf("the deferred kernel should eventually be admitted idle: %v", counts)
	}
	recent := r.o.RecentDecisions(10)
	if len(recent) == 0 {
		t.Fatal("no decisions retained")
	}
	// Newest-last ordering.
	for i := 1; i < len(recent); i++ {
		if recent[i].At < recent[i-1].At {
			t.Fatal("decision log out of order")
		}
	}
	out := FormatDecisions(recent)
	if !strings.Contains(out, "verdict") || !strings.Contains(out, "be-inf") {
		t.Errorf("FormatDecisions output:\n%s", out)
	}
}

func TestDecisionVerdictStrings(t *testing.T) {
	cases := map[Verdict]string{
		AdmittedIdle:     "admitted:hp-idle",
		AdmittedOpposite: "admitted:opposite-profile",
		DeferredThrottle: "deferred:duration-throttle",
		DeferredSMs:      "deferred:sm-threshold",
		DeferredProfile:  "deferred:same-profile",
		DeferredPCIe:     "deferred:pcie-busy",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
		wantAdmit := strings.HasPrefix(want, "admitted")
		if v.Admitted() != wantAdmit {
			t.Errorf("%v.Admitted() = %v", v, v.Admitted())
		}
	}
	if !strings.Contains(Verdict(99).String(), "99") {
		t.Error("unknown verdict string should embed the value")
	}
}

func TestDecisionRingWraps(t *testing.T) {
	l := newDecisionLog(4)
	for i := 0; i < 10; i++ {
		l.record(Decision{At: sim.Time(i), Verdict: AdmittedIdle})
	}
	recent := l.recent(10)
	if len(recent) != 4 {
		t.Fatalf("retained %d, want 4", len(recent))
	}
	if recent[0].At != 6 || recent[3].At != 9 {
		t.Fatalf("ring contents wrong: %+v", recent)
	}
	if l.byVerdict[AdmittedIdle] != 10 {
		t.Fatalf("tally %d, want 10 (counts survive eviction)", l.byVerdict[AdmittedIdle])
	}
}

func TestDecisionRingZeroCapacity(t *testing.T) {
	l := newDecisionLog(0)
	l.record(Decision{Verdict: DeferredSMs}) // must not panic
	if got := l.recent(5); len(got) != 0 {
		t.Fatalf("zero-capacity ring returned %d entries", len(got))
	}
	if l.byVerdict[DeferredSMs] != 1 {
		t.Fatal("tally lost")
	}
}

func TestRecentDecisionsFewerThanAsked(t *testing.T) {
	l := newDecisionLog(8)
	l.record(Decision{At: 1})
	l.record(Decision{At: 2})
	got := l.recent(5)
	if len(got) != 2 || got[0].At != 1 || got[1].At != 2 {
		t.Fatalf("recent = %+v", got)
	}
}
