package core

import (
	"testing"

	"orion/internal/cudart"
	"orion/internal/gpu"
	"orion/internal/profiler"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/trace"
	"orion/internal/workload"
)

// Client churn: a best-effort client dies mid-run; the high-priority job's
// latency returns to its dedicated level and the scheduler keeps working.
func TestBEClientChurn(t *testing.T) {
	hpM := workload.ResNet50Inference()
	beM := workload.ResNet50Training()
	hpProf, err := profiler.Collect(hpM, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	beProf, err := profiler.Collect(beM, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}

	eng := sim.NewEngine()
	eng.MaxEvents = 500_000_000
	dev, _ := gpu.NewDevice(eng, gpu.V100())
	ctx := cudart.NewContext(dev)
	o, err := New(eng, ctx, Config{Profiles: map[string]*profiler.Profile{
		hpM.ID(): hpProf, beM.ID(): beProf,
	}})
	if err != nil {
		t.Fatal(err)
	}
	hpc, _ := o.Register(sched.ClientConfig{Name: "hp", Priority: sched.HighPriority, Model: hpM})
	bec, _ := o.Register(sched.ClientConfig{Name: "be", Priority: sched.BestEffort, Model: beM})
	o.Start()

	horizon := sim.Time(sim.Seconds(8))
	arr, _ := trace.NewPoisson(30, sim.NewRand(9))
	hpd, _ := sched.NewDriver(sched.DriverConfig{
		Engine: eng, Client: hpc, Model: hpM, Arrivals: arr,
		Horizon: horizon, Warmup: sim.Seconds(4), // measure only after the churn
	})
	bed, _ := sched.NewDriver(sched.DriverConfig{
		Engine: eng, Client: bec, Model: beM, Horizon: horizon,
	})
	hpd.Start()
	bed.Start()

	// The best-effort trainer dies at t=3s.
	eng.At(sim.Time(sim.Seconds(3)), bed.Stop)
	eng.RunUntil(horizon)

	if !bed.Stopped() {
		t.Fatal("best-effort driver not stopped")
	}
	beIters := bed.TotalCompleted()
	if beIters == 0 || beIters > 35 {
		t.Fatalf("best-effort completed %d iterations, want ~30 then death", beIters)
	}
	// Post-churn, the high-priority job has the device to itself: its
	// measured window (4s..8s) should sit at the dedicated level.
	p50 := hpd.Stats().Latency.P50()
	if p50 > hpProf.RequestLatency*11/10 {
		t.Errorf("post-churn p50 %.2fms vs dedicated %.2fms; scheduler did not recover",
			p50.Millis(), hpProf.RequestLatency.Millis())
	}
	if hpd.Stats().Completed == 0 {
		t.Fatal("no high-priority requests measured")
	}
}

// High-priority churn: the HP client stops; best-effort work floods the
// now-idle device (hp_task_running goes false for good).
func TestHPClientChurnFreesBestEffort(t *testing.T) {
	hpM := workload.BERTInference()
	beM := workload.MobileNetV2Training()
	hpProf, _ := profiler.Collect(hpM, gpu.V100())
	beProf, _ := profiler.Collect(beM, gpu.V100())

	eng := sim.NewEngine()
	eng.MaxEvents = 500_000_000
	dev, _ := gpu.NewDevice(eng, gpu.V100())
	ctx := cudart.NewContext(dev)
	o, _ := New(eng, ctx, Config{Profiles: map[string]*profiler.Profile{
		hpM.ID(): hpProf, beM.ID(): beProf,
	}})
	hpc, _ := o.Register(sched.ClientConfig{Name: "hp", Priority: sched.HighPriority, Model: hpM})
	bec, _ := o.Register(sched.ClientConfig{Name: "be", Priority: sched.BestEffort, Model: beM})
	o.Start()

	horizon := sim.Time(sim.Seconds(8))
	arr, _ := trace.NewPoisson(5, sim.NewRand(10))
	hpd, _ := sched.NewDriver(sched.DriverConfig{Engine: eng, Client: hpc, Model: hpM, Arrivals: arr, Horizon: horizon})
	bed, _ := sched.NewDriver(sched.DriverConfig{
		Engine: eng, Client: bec, Model: beM,
		Horizon: horizon, Warmup: sim.Seconds(4),
	})
	hpd.Start()
	bed.Start()
	eng.At(sim.Time(sim.Seconds(3)), hpd.Stop)
	eng.RunUntil(horizon)

	// With the high-priority client gone, the trainer should run at its
	// throttled-but-unblocked rate in the 4s..8s window.
	thr := bed.Stats().Throughput()
	if thr < 9 {
		t.Errorf("best-effort at %.2f it/s after high-priority churn, want near dedicated 12.5", thr)
	}
}
