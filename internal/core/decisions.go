package core

import (
	"fmt"
	"strings"

	"orion/internal/sim"
)

// Decision records one scheduling verdict for a best-effort kernel — the
// scheduler's explanation of why a kernel was admitted or deferred.
// Decisions feed the decision log, a bounded ring buffer for debugging
// and the orion-sim introspection output.
type Decision struct {
	// At is when the verdict was made.
	At sim.Time
	// Client is the best-effort client's name.
	Client string
	// Kernel is the kernel's name.
	Kernel string
	// Verdict is the outcome.
	Verdict Verdict
}

// Verdict enumerates the reasons a best-effort kernel is admitted or
// deferred, mirroring the branches of Listing 1.
type Verdict int

const (
	// AdmittedIdle: no high-priority work was active.
	AdmittedIdle Verdict = iota
	// AdmittedOpposite: small kernel with opposite (or unknown) profile
	// to the executing high-priority kernel.
	AdmittedOpposite
	// DeferredThrottle: outstanding best-effort duration exceeded
	// DUR_THRESHOLD and prior kernels were still in flight.
	DeferredThrottle
	// DeferredSMs: the kernel's SM requirement met or exceeded
	// SM_THRESHOLD.
	DeferredSMs
	// DeferredProfile: the kernel's profile matched the executing
	// high-priority kernel's.
	DeferredProfile
	// DeferredPCIe: a best-effort memory copy waited out an in-flight
	// high-priority transfer (ScheduleMemcpys extension).
	DeferredPCIe
	// DeferredSLOGuard: the SLO guard had suspended best-effort admission
	// because too many recent high-priority requests missed their SLO.
	DeferredSLOGuard
)

// Admitted reports whether the verdict allowed submission.
func (v Verdict) Admitted() bool { return v == AdmittedIdle || v == AdmittedOpposite }

func (v Verdict) String() string {
	switch v {
	case AdmittedIdle:
		return "admitted:hp-idle"
	case AdmittedOpposite:
		return "admitted:opposite-profile"
	case DeferredThrottle:
		return "deferred:duration-throttle"
	case DeferredSMs:
		return "deferred:sm-threshold"
	case DeferredProfile:
		return "deferred:same-profile"
	case DeferredPCIe:
		return "deferred:pcie-busy"
	case DeferredSLOGuard:
		return "deferred:slo-guard"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// decisionLog is a fixed-capacity ring of the most recent decisions.
type decisionLog struct {
	buf   []Decision
	next  int
	count uint64
	// byVerdict tallies every decision ever made, not just retained ones.
	byVerdict map[Verdict]uint64
}

func newDecisionLog(capacity int) *decisionLog {
	return &decisionLog{
		buf:       make([]Decision, capacity),
		byVerdict: map[Verdict]uint64{},
	}
}

func (l *decisionLog) record(d Decision) {
	l.byVerdict[d.Verdict]++
	if len(l.buf) == 0 {
		return
	}
	l.buf[l.next] = d
	l.next = (l.next + 1) % len(l.buf)
	l.count++
}

// recent returns up to n of the latest decisions, newest last.
func (l *decisionLog) recent(n int) []Decision {
	if len(l.buf) == 0 || n <= 0 {
		return nil
	}
	have := int(l.count)
	if have > len(l.buf) {
		have = len(l.buf)
	}
	if n > have {
		n = have
	}
	out := make([]Decision, 0, n)
	start := (l.next - n + len(l.buf)) % len(l.buf)
	for i := 0; i < n; i++ {
		out = append(out, l.buf[(start+i)%len(l.buf)])
	}
	return out
}

// DefaultDecisionLogSize bounds the retained decision history.
const DefaultDecisionLogSize = 1024

// RecentDecisions returns up to n of the scheduler's latest best-effort
// verdicts, oldest first. Empty until best-effort kernels flow.
func (o *Orion) RecentDecisions(n int) []Decision {
	if o.decisions == nil {
		return nil
	}
	return o.decisions.recent(n)
}

// VerdictCounts tallies every verdict the scheduler has issued.
func (o *Orion) VerdictCounts() map[Verdict]uint64 {
	out := map[Verdict]uint64{}
	if o.decisions == nil {
		return out
	}
	for k, v := range o.decisions.byVerdict {
		out[k] = v
	}
	return out
}

// FormatDecisions renders decisions as a debugging table.
func FormatDecisions(ds []Decision) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-18s %-22s %s\n", "t(ms)", "client", "kernel", "verdict")
	for _, d := range ds {
		fmt.Fprintf(&b, "%-12.3f %-18s %-22s %s\n",
			float64(d.At)/1e6, d.Client, d.Kernel, d.Verdict)
	}
	return b.String()
}
