package errfs

import (
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// Op classifies an FS operation for rule matching.
type Op int

const (
	// OpOpen covers OpenFile and CreateTemp.
	OpOpen Op = iota
	// OpWrite covers File.Write.
	OpWrite
	// OpSync covers File.Sync.
	OpSync
	// OpRead covers FS.ReadFile.
	OpRead
	// OpRename covers FS.Rename.
	OpRename
	// OpRemove covers FS.Remove.
	OpRemove
	// OpTruncate covers FS.Truncate and File.Truncate.
	OpTruncate
	// OpSyncDir covers FS.SyncDir.
	OpSyncDir
	opCount
)

func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRead:
		return "read"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpSyncDir:
		return "syncdir"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Effect is what an injected fault does to the matched operation.
type Effect int

const (
	// EffectErr fails the operation outright with no side effect on disk
	// (write: nothing lands; sync: pages survive — the benign variant).
	EffectErr Effect = iota
	// EffectShortWrite writes only the first TearAt bytes of the buffer
	// (half when TearAt is 0), then fails — a torn frame at a chosen
	// offset.
	EffectShortWrite
	// EffectSyncLoss fails the fsync AND drops every byte written since
	// the last successful fsync (the kernel discarded the dirty pages),
	// then poisons the descriptor: all later Syncs on it fail too. This is
	// the fsyncgate scenario the journal's poisoning rule exists for.
	EffectSyncLoss
	// EffectCorruptRead flips one bit (BitPos, modulo the data length) in
	// the returned data without touching the file.
	EffectCorruptRead
)

// Rule is one deterministic crashpoint: on the Nth operation matching
// (Op, Path), apply Effect.
type Rule struct {
	// Op is the operation class the rule watches.
	Op Op
	// Path, when non-empty, is a glob matched against the base name of
	// the operation's path ("seg-*.wal", ".ckpt-*"). Empty matches all.
	Path string
	// Nth fires the rule on the nth matching operation (1-based). Zero
	// fires on every match.
	Nth int
	// Effect is the injected behaviour.
	Effect Effect
	// Err overrides the returned error (default ErrInjected).
	Err error
	// TearAt is EffectShortWrite's surviving byte count.
	TearAt int64
	// BitPos is EffectCorruptRead's bit index.
	BitPos int64

	seen  int
	fired bool
}

func (r *Rule) errOr(def error) error {
	if r.Err != nil {
		return r.Err
	}
	return def
}

// Injector wraps another FS and injects faults per its rules, its ENOSPC
// byte budget, and its seeded flaky rates. All mutation is mutex-guarded;
// the fault sequence is a pure function of (rules, budget, seed, op
// sequence), so single-goroutine torture tests are fully deterministic.
type Injector struct {
	base FS

	mu    sync.Mutex
	rules []*Rule
	rng   *rand.Rand
	// pWrite / pSync are the flaky-mode fault probabilities (0 = off).
	pWrite, pSync float64

	// budget is the ENOSPC model: total bytes writable across the FS.
	// Negative means unlimited. After budget exhaustion, enospcFails
	// counts down on every refused write; at zero the budget clears
	// (space was freed) — that self-clearing is what lets a live drill
	// exercise the server's degraded-mode recovery without a side
	// channel into the daemon.
	budget      int64
	enospcFails int

	faults int64
}

// New wraps base (OS{} when nil) with a fault injector seeded for the
// flaky mode. With no rules, budget or rates set it is a passthrough.
func New(base FS, seed int64) *Injector {
	if base == nil {
		base = OS{}
	}
	return &Injector{base: base, rng: rand.New(rand.NewSource(seed)), budget: -1}
}

// AddRule arms one crashpoint rule.
func (i *Injector) AddRule(r Rule) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = append(i.rules, &r)
	return i
}

// SetWriteBudget arms the ENOSPC model: bytes may land before the disk
// "fills"; after failsUntilClear refused writes the budget lifts (space
// freed). failsUntilClear <= 0 keeps the disk full until ClearWriteBudget.
func (i *Injector) SetWriteBudget(bytes int64, failsUntilClear int) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.budget = bytes
	i.enospcFails = failsUntilClear
	return i
}

// ClearWriteBudget lifts the ENOSPC condition (space was freed).
func (i *Injector) ClearWriteBudget() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.budget = -1
}

// SetFlaky arms seeded random faults: each write fails (short, half the
// buffer) with probability pWrite, each sync fails with loss with
// probability pSync.
func (i *Injector) SetFlaky(pWrite, pSync float64) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.pWrite, i.pSync = pWrite, pSync
	return i
}

// Faults reports how many faults have fired.
func (i *Injector) Faults() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.faults
}

// decide consults the rules (then flaky rates) for one operation. It
// returns nil when the operation should proceed normally. Callers apply
// the effect; decide only picks it. Callers hold no injector lock.
func (i *Injector) decide(op Op, name string) *Rule {
	i.mu.Lock()
	defer i.mu.Unlock()
	base := baseName(name)
	for _, r := range i.rules {
		if r.Op != op {
			continue
		}
		if r.Path != "" {
			if ok, _ := filepath.Match(r.Path, base); !ok {
				continue
			}
		}
		r.seen++
		if r.Nth == 0 || (r.seen == r.Nth && !r.fired) {
			r.fired = true
			i.faults++
			return r
		}
	}
	switch op {
	case OpWrite:
		if i.pWrite > 0 && i.rng.Float64() < i.pWrite {
			i.faults++
			return &Rule{Op: OpWrite, Effect: EffectShortWrite}
		}
	case OpSync:
		if i.pSync > 0 && i.rng.Float64() < i.pSync {
			i.faults++
			return &Rule{Op: OpSync, Effect: EffectSyncLoss}
		}
	}
	return nil
}

// charge debits the ENOSPC budget for an n-byte write. It returns how
// many bytes may land and a nil error, or the allowed prefix plus
// ErrNoSpace once the budget is gone.
func (i *Injector) charge(n int) (int, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.budget < 0 {
		return n, nil
	}
	if int64(n) <= i.budget {
		i.budget -= int64(n)
		return n, nil
	}
	allowed := int(i.budget)
	i.budget = 0
	i.faults++
	if i.enospcFails > 0 {
		i.enospcFails--
		if i.enospcFails == 0 {
			// Space freed: the next write succeeds again.
			i.budget = -1
		}
	}
	return allowed, ErrNoSpace
}

// --- FS implementation ------------------------------------------------------

// OpenFile opens through the base FS unless an open rule fires.
func (i *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if r := i.decide(OpOpen, name); r != nil {
		return nil, fmt.Errorf("open %s: %w", name, r.errOr(ErrInjected))
	}
	f, err := i.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	size := int64(0)
	if flag&os.O_TRUNC == 0 {
		if fi, err := i.base.Stat(name); err == nil {
			size = fi.Size()
		}
	}
	return &injFile{inj: i, f: f, size: size, synced: size}, nil
}

// CreateTemp creates through the base FS unless an open rule fires.
func (i *Injector) CreateTemp(dir, pattern string) (File, error) {
	if r := i.decide(OpOpen, filepath.Join(dir, pattern)); r != nil {
		return nil, fmt.Errorf("create temp %s: %w", pattern, r.errOr(ErrInjected))
	}
	f, err := i.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f}, nil
}

// ReadFile reads through the base FS; a read rule can fail the read or
// flip a bit in the returned data.
func (i *Injector) ReadFile(name string) ([]byte, error) {
	data, err := i.base.ReadFile(name)
	if err != nil {
		return data, err
	}
	if r := i.decide(OpRead, name); r != nil {
		switch r.Effect {
		case EffectCorruptRead:
			if len(data) > 0 {
				bit := r.BitPos % (int64(len(data)) * 8)
				data[bit/8] ^= 1 << (bit % 8)
			}
		default:
			return nil, fmt.Errorf("read %s: %w", name, r.errOr(ErrInjected))
		}
	}
	return data, nil
}

// ReadDir lists through the base FS (never injected: replay enumerates
// segments through it and a fault here is indistinguishable from an open
// error, which OpOpen already covers).
func (i *Injector) ReadDir(name string) ([]fs.DirEntry, error) { return i.base.ReadDir(name) }

// Stat stats through the base FS.
func (i *Injector) Stat(name string) (fs.FileInfo, error) { return i.base.Stat(name) }

// Rename renames through the base FS unless a rename rule fires.
func (i *Injector) Rename(oldpath, newpath string) error {
	if r := i.decide(OpRename, oldpath); r != nil {
		return fmt.Errorf("rename %s: %w", oldpath, r.errOr(ErrInjected))
	}
	return i.base.Rename(oldpath, newpath)
}

// Remove removes through the base FS unless a remove rule fires.
func (i *Injector) Remove(name string) error {
	if r := i.decide(OpRemove, name); r != nil {
		return fmt.Errorf("remove %s: %w", name, r.errOr(ErrInjected))
	}
	return i.base.Remove(name)
}

// Truncate resizes through the base FS unless a truncate rule fires.
func (i *Injector) Truncate(name string, size int64) error {
	if r := i.decide(OpTruncate, name); r != nil {
		return fmt.Errorf("truncate %s: %w", name, r.errOr(ErrInjected))
	}
	return i.base.Truncate(name, size)
}

// MkdirAll creates through the base FS.
func (i *Injector) MkdirAll(path string, perm fs.FileMode) error {
	return i.base.MkdirAll(path, perm)
}

// SyncDir syncs through the base FS unless a syncdir rule fires.
func (i *Injector) SyncDir(dir string) error {
	if r := i.decide(OpSyncDir, dir); r != nil {
		return fmt.Errorf("sync dir %s: %w", dir, r.errOr(ErrInjected))
	}
	return i.base.SyncDir(dir)
}

// injFile wraps one open file with fault injection. It tracks the bytes
// written and the bytes covered by the last successful sync, which is
// what lets EffectSyncLoss emulate dropped dirty pages by truncating the
// underlying file back to the synced prefix.
type injFile struct {
	inj      *Injector
	f        File
	size     int64
	synced   int64
	poisoned bool
}

// Write applies write rules, the flaky rate and the ENOSPC budget, in
// that order. Short and torn writes land their surviving prefix in the
// underlying file, exactly like a real partial append.
func (x *injFile) Write(p []byte) (int, error) {
	if r := x.inj.decide(OpWrite, x.f.Name()); r != nil {
		switch r.Effect {
		case EffectShortWrite:
			tear := r.TearAt
			if tear <= 0 {
				tear = int64(len(p)) / 2
			}
			if tear > int64(len(p)) {
				tear = int64(len(p))
			}
			n, _ := x.f.Write(p[:tear])
			x.size += int64(n)
			return n, fmt.Errorf("write %s: %w", x.f.Name(), r.errOr(ErrInjected))
		default:
			return 0, fmt.Errorf("write %s: %w", x.f.Name(), r.errOr(ErrInjected))
		}
	}
	allowed, cerr := x.inj.charge(len(p))
	if allowed > 0 || cerr == nil {
		n, werr := x.f.Write(p[:allowed])
		x.size += int64(n)
		if werr != nil {
			return n, werr
		}
	}
	if cerr != nil {
		return allowed, fmt.Errorf("write %s: %w", x.f.Name(), cerr)
	}
	return allowed, nil
}

// Sync applies sync rules. EffectSyncLoss drops the unsynced suffix and
// poisons the descriptor: every later Sync fails too, so a caller that
// retries fsync on the same fd can never be fooled into thinking the
// lost bytes became durable.
func (x *injFile) Sync() error {
	if x.poisoned {
		return fmt.Errorf("sync %s: fd poisoned by earlier fsync failure: %w", x.f.Name(), ErrInjected)
	}
	if r := x.inj.decide(OpSync, x.f.Name()); r != nil {
		switch r.Effect {
		case EffectSyncLoss:
			// The kernel dropped the dirty pages: the unsynced suffix is
			// gone from the file, and this fd will never sync again.
			_ = x.f.Truncate(x.synced)
			x.size = x.synced
			x.poisoned = true
		}
		return fmt.Errorf("sync %s: %w", x.f.Name(), r.errOr(ErrInjected))
	}
	if err := x.f.Sync(); err != nil {
		return err
	}
	x.synced = x.size
	return nil
}

// Truncate resizes through (rules under OpTruncate).
func (x *injFile) Truncate(size int64) error {
	if r := x.inj.decide(OpTruncate, x.f.Name()); r != nil {
		return fmt.Errorf("truncate %s: %w", x.f.Name(), r.errOr(ErrInjected))
	}
	if err := x.f.Truncate(size); err != nil {
		return err
	}
	x.size = size
	if x.synced > size {
		x.synced = size
	}
	return nil
}

// Close closes the underlying file.
func (x *injFile) Close() error { return x.f.Close() }

// Name reports the underlying path.
func (x *injFile) Name() string { return x.f.Name() }

// --- profiles ---------------------------------------------------------------

// FromProfile builds an injector over the OS filesystem from a drill
// profile spec. Profiles combine with ';':
//
//	enospc:bytes=8192,fails=40   full disk after 8 KiB; clears after 40 refused writes
//	syncfail:nth=3               3rd fsync fails with page loss and fd poisoning
//	syncerr:nth=3                3rd fsync fails benignly (pages survive)
//	torn:nth=5,at=7              5th write tears after 7 bytes
//	writefail:nth=5              5th write fails outright
//	openfail:nth=2               2nd open/create fails
//	renamefail:nth=1             1st rename fails
//	corrupt:nth=1,bit=200        1st read comes back with bit 200 flipped
//	flaky:pwrite=0.01,psync=0.01 seeded random write/sync failures
//
// The seed drives only the flaky profile; everything else is exact.
func FromProfile(spec string, seed int64) (*Injector, error) {
	inj := New(OS{}, seed)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, argstr, _ := strings.Cut(part, ":")
		args := map[string]string{}
		if argstr != "" {
			for _, kv := range strings.Split(argstr, ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("errfs: profile %q: bad arg %q", part, kv)
				}
				args[strings.TrimSpace(k)] = strings.TrimSpace(v)
			}
		}
		geti := func(k string, def int64) (int64, error) {
			v, ok := args[k]
			if !ok {
				return def, nil
			}
			return strconv.ParseInt(v, 10, 64)
		}
		getf := func(k string, def float64) (float64, error) {
			v, ok := args[k]
			if !ok {
				return def, nil
			}
			return strconv.ParseFloat(v, 64)
		}
		var err error
		switch name {
		case "enospc":
			var bytes, fails int64
			if bytes, err = geti("bytes", 4096); err == nil {
				fails, err = geti("fails", 0)
			}
			inj.SetWriteBudget(bytes, int(fails))
		case "syncfail", "syncerr":
			var nth int64
			nth, err = geti("nth", 1)
			eff := EffectSyncLoss
			if name == "syncerr" {
				eff = EffectErr
			}
			inj.AddRule(Rule{Op: OpSync, Nth: int(nth), Effect: eff})
		case "torn":
			var nth, at int64
			if nth, err = geti("nth", 1); err == nil {
				at, err = geti("at", 0)
			}
			inj.AddRule(Rule{Op: OpWrite, Nth: int(nth), Effect: EffectShortWrite, TearAt: at})
		case "writefail":
			var nth int64
			nth, err = geti("nth", 1)
			inj.AddRule(Rule{Op: OpWrite, Nth: int(nth), Effect: EffectErr})
		case "openfail":
			var nth int64
			nth, err = geti("nth", 1)
			inj.AddRule(Rule{Op: OpOpen, Nth: int(nth), Effect: EffectErr})
		case "renamefail":
			var nth int64
			nth, err = geti("nth", 1)
			inj.AddRule(Rule{Op: OpRename, Nth: int(nth), Effect: EffectErr})
		case "corrupt":
			var nth, bit int64
			if nth, err = geti("nth", 1); err == nil {
				bit, err = geti("bit", 0)
			}
			inj.AddRule(Rule{Op: OpRead, Nth: int(nth), Effect: EffectCorruptRead, BitPos: bit})
		case "flaky":
			var pw, ps float64
			if pw, err = getf("pwrite", 0.01); err == nil {
				ps, err = getf("psync", 0.01)
			}
			inj.SetFlaky(pw, ps)
		default:
			return nil, fmt.Errorf("errfs: unknown profile %q", name)
		}
		if err != nil {
			return nil, fmt.Errorf("errfs: profile %q: %w", part, err)
		}
	}
	return inj, nil
}
