// Package errfs is the storage-fault seam under orion-serve's durability
// layer: a minimal filesystem abstraction (FS/File) with a passthrough OS
// implementation and a deterministic fault-injecting wrapper. The journal
// and checkpoint packages do all their I/O through an FS, so a torture
// test (or a live drill via orion-serve's -errfs-profile flag) can make
// the "disk" produce exactly the failures real filesystems produce:
//
//   - failed writes and short writes (a torn frame at a chosen offset);
//   - failed fsyncs that DROP the unsynced bytes and poison the fd —
//     the fsyncgate semantics where retrying fsync on the same descriptor
//     returns success while the data is already gone;
//   - ENOSPC after a byte budget, with the partial write landing on disk
//     the way a real full disk tears an append;
//   - corrupt-on-read bit flips;
//   - open, rename, remove, truncate and directory-sync errors.
//
// Everything the Injector does is driven by explicit rules and a seeded
// RNG, so a given (profile, seed) reproduces the same fault schedule —
// the same idiom internal/fault uses for GPU faults.
package errfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// File is the subset of *os.File the durability layer needs.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage. After a Sync error the
	// caller must assume the unsynced suffix is gone and must not retry
	// Sync on the same descriptor (see the package comment).
	Sync() error
	// Truncate changes the file's size (used to cut torn tails).
	Truncate(size int64) error
	// Name reports the path the file was opened with.
	Name() string
}

// FS is the filesystem seam. Implementations: OS (passthrough) and
// Injector (deterministic fault injection around another FS).
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	MkdirAll(path string, perm fs.FileMode) error
	// SyncDir fsyncs a directory entry so file creations, removals and
	// renames inside it survive a crash.
	SyncDir(dir string) error
}

// OS is the passthrough implementation over the real filesystem.
type OS struct{}

// OpenFile opens a file exactly like os.OpenFile.
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// CreateTemp creates a temp file exactly like os.CreateTemp.
func (OS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

// ReadFile reads a whole file.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir lists a directory.
func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// Stat stats a path.
func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// Rename renames a path.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove removes a path.
func (OS) Remove(name string) error { return os.Remove(name) }

// Truncate resizes a path.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// MkdirAll creates a directory tree.
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// SyncDir opens the directory and fsyncs it.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ErrInjected is the base error every injected fault wraps (unless a rule
// overrides it), so tests can tell injected failures from real ones.
var ErrInjected = errors.New("errfs: injected fault")

// ErrNoSpace is the injected full-disk error; it wraps syscall.ENOSPC so
// errors.Is(err, syscall.ENOSPC) classifies injected and real full disks
// the same way.
var ErrNoSpace = fmt.Errorf("errfs: disk full: %w", syscall.ENOSPC)

// IsNoSpace reports whether err is a full-disk condition, injected or
// real.
func IsNoSpace(err error) bool { return errors.Is(err, syscall.ENOSPC) }

// baseName is filepath.Base tolerant of empty paths.
func baseName(name string) string {
	if name == "" {
		return ""
	}
	return filepath.Base(name)
}
