package errfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func openForAppend(t *testing.T, fsys FS, path string) File {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestOSPassthrough: the OS implementation behaves like the os package.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fsys := OS{}
	path := filepath.Join(dir, "a.txt")
	f := openForAppend(t, fsys, path)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "b.txt" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
}

// TestShortWriteLandsPrefix: a torn write leaves exactly TearAt bytes in
// the file and fails with ErrInjected.
func TestShortWriteLandsPrefix(t *testing.T) {
	dir := t.TempDir()
	inj := New(OS{}, 1)
	inj.AddRule(Rule{Op: OpWrite, Nth: 2, Effect: EffectShortWrite, TearAt: 3})
	path := filepath.Join(dir, "w.log")
	f := openForAppend(t, inj, path)
	defer f.Close()

	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	n, err := f.Write([]byte("bbbb"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2 err = %v, want ErrInjected", err)
	}
	if n != 3 {
		t.Fatalf("write 2 n = %d, want 3", n)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "aaaabbb" {
		t.Fatalf("file = %q, want aaaabbb", data)
	}
	if inj.Faults() != 1 {
		t.Fatalf("faults = %d", inj.Faults())
	}
}

// TestSyncLossPoisonsAndDropsPages: the fsyncgate scenario — the failed
// fsync erases the unsynced suffix and every later Sync on the fd fails.
func TestSyncLossPoisonsAndDropsPages(t *testing.T) {
	dir := t.TempDir()
	inj := New(OS{}, 1)
	inj.AddRule(Rule{Op: OpSync, Nth: 2, Effect: EffectSyncLoss})
	path := filepath.Join(dir, "s.log")
	f := openForAppend(t, inj, path)
	defer f.Close()

	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	f.Write([]byte("+lost"))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2 err = %v, want ErrInjected", err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "durable" {
		t.Fatalf("file after sync loss = %q, want only the synced prefix", data)
	}
	// The descriptor is poisoned: the retry also fails even though no rule
	// matches the 3rd sync.
	if err := f.Sync(); err == nil {
		t.Fatal("sync on poisoned fd succeeded")
	}
}

// TestWriteBudgetENOSPCAndClear: writes fail with ENOSPC once the budget
// is spent (partial prefix landing), and the disk "frees up" after the
// configured number of refused writes.
func TestWriteBudgetENOSPCAndClear(t *testing.T) {
	dir := t.TempDir()
	inj := New(OS{}, 1)
	inj.SetWriteBudget(6, 2)
	path := filepath.Join(dir, "e.log")
	f := openForAppend(t, inj, path)
	defer f.Close()

	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	// 4 of 6 bytes used: this write tears after 2 bytes.
	n, err := f.Write([]byte("bbbb"))
	if n != 2 || !IsNoSpace(err) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("over budget: n=%d err=%v", n, err)
	}
	// Second refused write: budget clears afterwards (fails=2).
	if _, err := f.Write([]byte("cccc")); !IsNoSpace(err) {
		t.Fatalf("still full: %v", err)
	}
	if _, err := f.Write([]byte("dddd")); err != nil {
		t.Fatalf("after space freed: %v", err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "aaaabbdddd" {
		t.Fatalf("file = %q", data)
	}
}

// TestCorruptReadFlipsOneBit: the read fault flips exactly the requested
// bit and leaves the file on disk intact.
func TestCorruptReadFlipsOneBit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.bin")
	if err := os.WriteFile(path, []byte{0x00, 0x00}, 0o644); err != nil {
		t.Fatal(err)
	}
	inj := New(OS{}, 1)
	inj.AddRule(Rule{Op: OpRead, Nth: 1, Effect: EffectCorruptRead, BitPos: 9})
	got, err := inj.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x00 || got[1] != 0x02 {
		t.Fatalf("corrupt read = %x", got)
	}
	// Second read is clean (Nth=1 fires once) and the file never changed.
	got, _ = inj.ReadFile(path)
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("second read = %x, want pristine", got)
	}
}

// TestPathGlobAndNth: rules match on the base name glob and fire exactly
// once at the Nth occurrence.
func TestPathGlobAndNth(t *testing.T) {
	dir := t.TempDir()
	inj := New(OS{}, 1)
	boom := errors.New("boom")
	inj.AddRule(Rule{Op: OpRename, Path: "seg-*.wal", Nth: 2, Err: boom})

	mk := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	other := mk("other.txt")
	s1 := mk("seg-00000001.wal")
	s2 := mk("seg-00000002.wal")
	s3 := mk("seg-00000003.wal")

	if err := inj.Rename(other, other+".x"); err != nil {
		t.Fatalf("non-matching path: %v", err)
	}
	if err := inj.Rename(s1, s1+".x"); err != nil {
		t.Fatalf("1st match: %v", err)
	}
	if err := inj.Rename(s2, s2+".x"); !errors.Is(err, boom) {
		t.Fatalf("2nd match err = %v, want boom", err)
	}
	if err := inj.Rename(s3, s3+".x"); err != nil {
		t.Fatalf("3rd match: %v", err)
	}
}

// TestFlakyDeterministic: the same seed produces the same fault schedule.
func TestFlakyDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		dir := t.TempDir()
		inj := New(OS{}, seed)
		inj.SetFlaky(0.3, 0)
		f := openForAppend(t, inj, filepath.Join(dir, "f.log"))
		defer f.Close()
		var outcomes []bool
		for i := 0; i < 64; i++ {
			_, err := f.Write([]byte("x"))
			outcomes = append(outcomes, err != nil)
		}
		return outcomes
	}
	a, b := run(7), run(7)
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at write %d", i)
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("flaky p=0.3 produced %d/%d faults", faults, len(a))
	}
	if c := run(8); equalBools(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func equalBools(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFromProfile: the drill grammar builds the intended rules.
func TestFromProfile(t *testing.T) {
	inj, err := FromProfile("enospc:bytes=8,fails=1; syncfail:nth=1; torn:nth=1,at=2", 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	f := openForAppend(t, inj, filepath.Join(dir, "p.log"))
	defer f.Close()
	// torn:nth=1,at=2 tears the first write after 2 bytes.
	if n, err := f.Write([]byte("abcd")); n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn: n=%d err=%v", n, err)
	}
	// syncfail:nth=1 loses the torn prefix too (nothing was ever synced).
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("syncfail: %v", err)
	}
	// budget: rule-matched writes bypass the budget, so all 8 bytes remain.
	f2 := openForAppend(t, inj, filepath.Join(dir, "q.log"))
	defer f2.Close()
	if _, err := f2.Write([]byte("12345678")); err != nil {
		t.Fatalf("exact budget: %v", err)
	}
	if _, err := f2.Write([]byte("xx")); !IsNoSpace(err) {
		t.Fatalf("enospc: %v", err)
	}
	// fails=1: cleared now.
	if _, err := f2.Write([]byte("ok")); err != nil {
		t.Fatalf("after clear: %v", err)
	}

	for _, bad := range []string{"wat:nth=1", "torn:nth", "enospc:bytes=x"} {
		if _, err := FromProfile(bad, 1); err == nil {
			t.Errorf("FromProfile(%q) accepted", bad)
		}
	}
	if _, err := FromProfile("", 1); err != nil {
		t.Errorf("empty profile: %v", err)
	}
}

// TestOpenFileTracksExistingSize: reopening an existing file for append
// seeds the synced watermark at the current size, so a sync-loss fault
// only drops bytes written through THIS descriptor.
func TestOpenFileTracksExistingSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.log")
	if err := os.WriteFile(path, []byte("old!"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := New(OS{}, 1)
	inj.AddRule(Rule{Op: OpSync, Nth: 1, Effect: EffectSyncLoss})
	f := openForAppend(t, inj, path)
	defer f.Close()
	f.Write([]byte("new"))
	if err := f.Sync(); err == nil {
		t.Fatal("sync should fail")
	}
	data, _ := os.ReadFile(path)
	if string(data) != "old!" {
		t.Fatalf("file = %q, want the pre-open content preserved", data)
	}
}
