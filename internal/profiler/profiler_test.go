package profiler

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"orion/internal/gpu"
	"orion/internal/kernels"
	"orion/internal/sim"
	"orion/internal/workload"
)

func TestCollectResNet50Inference(t *testing.T) {
	m := workload.ResNet50Inference()
	p, err := Collect(m, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	if p.Workload != "resnet50-inf" || p.Device != "V100-16GB" {
		t.Fatalf("header: %s on %s", p.Workload, p.Device)
	}
	if len(p.Kernels) != len(m.Ops) {
		t.Fatalf("profile has %d rows, model has %d ops", len(p.Kernels), len(m.Ops))
	}
	// Dedicated latency: ~2ms kernels + input copy + launch overheads.
	if p.RequestLatency < sim.Millis(2) || p.RequestLatency > sim.Millis(3.5) {
		t.Errorf("request latency %v, want ~2.6ms", p.RequestLatency)
	}
}

func TestCollectClassifiesKernels(t *testing.T) {
	p, err := Collect(workload.ResNet50Training(), gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[kernels.Profile]int{}
	for _, k := range p.Kernels {
		if k.Duration > 0 {
			counts[k.Class]++
		}
	}
	if counts[kernels.ProfileCompute] == 0 || counts[kernels.ProfileMemory] == 0 || counts[kernels.ProfileUnknown] == 0 {
		t.Fatalf("class mix %v, want all three roofline classes", counts)
	}
}

func TestCollectSMRequirements(t *testing.T) {
	m := workload.BERTInference()
	p, err := Collect(m, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range p.Kernels {
		if k.Duration == 0 {
			continue
		}
		if k.SMsNeeded < 1 || k.SMsNeeded > 80 {
			t.Fatalf("kernel %s: SMsNeeded = %d, want 1..80", k.Name, k.SMsNeeded)
		}
	}
}

func TestTrainingIterationLatencyMatchesTable4(t *testing.T) {
	// Table 4: dedicated training iterations/sec. The simulated dedicated
	// latency must land near 1/rate.
	cases := []struct {
		model *workload.Model
		rate  float64
	}{
		{workload.ResNet50Training(), 10.3},
		{workload.MobileNetV2Training(), 12.5},
		{workload.ResNet101Training(), 6.3},
		{workload.BERTTraining(), 4.91},
		{workload.TransformerTraining(), 6.0},
	}
	for _, c := range cases {
		p, err := Collect(c.model, gpu.V100())
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / c.rate
		got := p.RequestLatency.Seconds()
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("%s: dedicated iteration %.1fms, Table 4 implies %.1fms",
				c.model.ID(), got*1000, want*1000)
		}
	}
}

func TestKernelLookup(t *testing.T) {
	p, err := Collect(workload.MobileNetV2Inference(), gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	k, ok := p.Kernel(1)
	if !ok || k.ID != 1 {
		t.Fatalf("Kernel(1) = %+v, %v", k, ok)
	}
	if _, ok := p.Kernel(-1); ok {
		t.Fatal("negative id found")
	}
	if _, ok := p.Kernel(len(p.Kernels)); ok {
		t.Fatal("out-of-range id found")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p, err := Collect(workload.TransformerInference(), gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Workload != p.Workload || q.RequestLatency != p.RequestLatency || len(q.Kernels) != len(p.Kernels) {
		t.Fatal("round trip mismatch")
	}
	for i := range p.Kernels {
		if p.Kernels[i] != q.Kernels[i] {
			t.Fatalf("kernel %d mismatch after round trip", i)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader("{}")); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func TestCollectNilModel(t *testing.T) {
	if _, err := Collect(nil, gpu.V100()); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestCollectOnA100(t *testing.T) {
	p, err := Collect(workload.ResNet50Inference(), gpu.A100())
	if err != nil {
		t.Fatal(err)
	}
	if p.Device != "A100-40GB" {
		t.Fatalf("device = %s", p.Device)
	}
	if p.RequestLatency <= 0 {
		t.Fatal("no latency measured on A100")
	}
}
