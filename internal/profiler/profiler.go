// Package profiler implements Orion's offline workload profiling phase
// (§5.2): before a workload may be scheduled, each of its kernels is
// characterized — duration, compute-throughput and memory-bandwidth
// utilization, SM requirements, and a roofline class — and the workload's
// dedicated-GPU request latency is measured. The scheduler loads the
// result as an in-memory lookup table indexed by kernel ID.
//
// Where the paper drives Nsight Compute / Nsight Systems over the first
// ten requests of the real job, this profiler replays the workload's
// operation stream on a dedicated simulated device.
package profiler

import (
	"encoding/json"
	"fmt"
	"io"

	"orion/internal/cudart"
	"orion/internal/gpu"
	"orion/internal/kernels"
	"orion/internal/sched"
	"orion/internal/sim"
	"orion/internal/workload"
)

// KernelProfile is one row of the profile lookup table.
type KernelProfile struct {
	// ID is the kernel's position in the workload's op stream.
	ID int `json:"id"`
	// Name is the kernel name.
	Name string `json:"name"`
	// Duration is the dedicated-GPU execution time.
	Duration sim.Duration `json:"duration_ns"`
	// ComputeUtil and MemBWUtil are dedicated-run utilizations (0..1).
	ComputeUtil float64 `json:"compute_util"`
	MemBWUtil   float64 `json:"membw_util"`
	// SMsNeeded is sm_needed_k = ceil(blocks / blocks_per_sm), capped at
	// the device size.
	SMsNeeded int `json:"sms_needed"`
	// Class is the roofline classification (compute / memory / unknown).
	Class kernels.Profile `json:"class"`
}

// Profile is the offline profile of one workload on one device.
type Profile struct {
	// Workload is the profiled workload's ID.
	Workload string `json:"workload"`
	// Device is the profiled device's name.
	Device string `json:"device"`
	// RequestLatency is the measured dedicated-GPU latency of one
	// request (inference) or iteration (training), averaged over the
	// profiled requests. Orion's DUR_THRESHOLD throttle is a percentage
	// of this value.
	RequestLatency sim.Duration `json:"request_latency_ns"`
	// Kernels holds one entry per operation in the workload's stream
	// (memory operations get zero-valued kernel fields but keep their
	// slot so the table stays indexed by op ID).
	Kernels []KernelProfile `json:"kernels"`
}

// ProfiledRequests is how many dedicated requests the latency measurement
// averages over, mirroring the paper's "first 10 mini-batches or requests".
const ProfiledRequests = 10

// Collect profiles a workload on a dedicated device of the given spec.
func Collect(m *workload.Model, spec gpu.Spec) (*Profile, error) {
	if m == nil {
		return nil, fmt.Errorf("profiler: nil model")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	p := &Profile{Workload: m.ID(), Device: spec.Name}

	for i := range m.Ops {
		op := &m.Ops[i]
		kp := KernelProfile{ID: op.ID, Name: op.Name}
		if op.Op == kernels.OpKernel {
			need, err := kernels.SMsNeeded(op.Launch, spec.SM)
			if err != nil {
				return nil, fmt.Errorf("profiler: %s kernel %q: %w", m.ID(), op.Name, err)
			}
			if need > spec.NumSMs {
				need = spec.NumSMs
			}
			kp.Duration = op.Duration
			kp.ComputeUtil = op.ComputeUtil
			kp.MemBWUtil = op.MemBWUtil
			kp.SMsNeeded = need
			kp.Class = kernels.Classify(op.ComputeUtil, op.MemBWUtil)
		}
		p.Kernels = append(p.Kernels, kp)
	}

	lat, err := measureLatency(m, spec)
	if err != nil {
		return nil, err
	}
	p.RequestLatency = lat
	return p, nil
}

// measureLatency runs the workload closed-loop on a fresh dedicated device
// and averages the latency of ProfiledRequests requests after a one-request
// warmup.
func measureLatency(m *workload.Model, spec gpu.Spec) (sim.Duration, error) {
	eng := sim.NewEngine()
	eng.MaxEvents = 500_000_000
	dev, err := gpu.NewDevice(eng, spec)
	if err != nil {
		return 0, err
	}
	ctx := cudart.NewContext(dev)
	backend := sched.NewDirect(ctx)
	client, err := backend.Register(sched.ClientConfig{
		Name: m.ID(), Priority: sched.HighPriority, Model: m,
	})
	if err != nil {
		return 0, err
	}
	backend.Start()
	// Budget generously: (ProfiledRequests + warmup + slack) requests.
	est := sim.Duration(float64(m.TargetDuration)*1.5) + sim.Millis(20)
	horizon := sim.Time(est * (ProfiledRequests + 4))
	driver, err := sched.NewDriver(sched.DriverConfig{
		Engine: eng, Client: client, Model: m,
		Horizon: horizon, Warmup: est, // skip the first request & malloc
	})
	if err != nil {
		return 0, err
	}
	if err := driver.Start(); err != nil {
		return 0, err
	}
	eng.Run()
	st := driver.Stats()
	if st.Latency.Count() == 0 {
		return 0, fmt.Errorf("profiler: %s completed no requests in %v", m.ID(), horizon)
	}
	return st.Latency.Mean(), nil
}

// Derive characterizes a kernel from its descriptor alone — the fallback
// for operations that were not part of the offline profiling pass, such
// as synthetic fused graphs or dynamically generated kernels. The result
// carries the same fields an offline row would.
func Derive(op *kernels.Descriptor, spec gpu.Spec) (*KernelProfile, error) {
	if op == nil || op.Op != kernels.OpKernel {
		return nil, fmt.Errorf("profiler: derive needs a kernel descriptor")
	}
	if err := op.Validate(); err != nil {
		return nil, err
	}
	need, err := kernels.SMsNeeded(op.Launch, spec.SM)
	if err != nil {
		return nil, err
	}
	if need > spec.NumSMs {
		need = spec.NumSMs
	}
	return &KernelProfile{
		ID: op.ID, Name: op.Name,
		Duration: op.Duration, ComputeUtil: op.ComputeUtil, MemBWUtil: op.MemBWUtil,
		SMsNeeded: need, Class: kernels.Classify(op.ComputeUtil, op.MemBWUtil),
	}, nil
}

// Kernel returns the profile row for an op ID.
func (p *Profile) Kernel(id int) (*KernelProfile, bool) {
	if id < 0 || id >= len(p.Kernels) {
		return nil, false
	}
	return &p.Kernels[id], true
}

// WriteJSON serializes the profile.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadJSON deserializes a profile written by WriteJSON.
func ReadJSON(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("profiler: decode: %w", err)
	}
	if p.Workload == "" || len(p.Kernels) == 0 {
		return nil, fmt.Errorf("profiler: profile missing workload or kernels")
	}
	return &p, nil
}
