package sim

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameTimeEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("FIFO tie-break violated: order = %v", order)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(1234, func() { at = e.Now() })
	e.Run()
	if at != 1234 {
		t.Fatalf("clock at event = %v, want 1234", at)
	}
	if e.Now() != 1234 {
		t.Fatalf("final clock = %v, want 1234", e.Now())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.At(100, func() {
		e.After(50, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 1 || times[0] != 150 {
		t.Fatalf("times = %v, want [150]", times)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	e.At(10, nil)
}

func TestCancelPreventsExecution(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	e := NewEngine()
	ev := e.At(10, func() {})
	e.Cancel(ev)
	e.Cancel(ev) // must not panic
	e.Cancel(nil)
	e.Run()
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine()
	ev := e.At(10, func() {})
	e.Run()
	e.Cancel(ev) // must not panic
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var order []int
	evs := make([]*Event, 0, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, e.At(Time(i*10), func() { order = append(order, i) }))
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Run()
	if len(order) != 8 {
		t.Fatalf("got %d events, want 8: %v", len(order), order)
	}
	for _, v := range order {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, tt := range []Time{10, 20, 30, 40} {
		tt := tt
		e.At(tt, func() { fired = append(fired, tt) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10,20 only", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %v, want 25 (advanced to deadline)", e.Now())
	}
	// Remaining events still run afterwards.
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("after Run, fired = %v, want all 4", fired)
	}
}

func TestRunUntilInclusiveAtDeadline(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(25, func() { fired = true })
	e.RunUntil(25)
	if !fired {
		t.Fatal("event at deadline did not fire")
	}
}

func TestMaxEventsGuard(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 100
	var loop func()
	loop = func() { e.After(1, loop) }
	e.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Error("runaway loop did not trip MaxEvents")
		}
	}()
	e.Run()
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			e.After(10, recurse)
		}
	}
	e.At(0, recurse)
	e.Run()
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if e.Now() != 40 {
		t.Fatalf("Now() = %v, want 40", e.Now())
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Processed() != 7 {
		t.Fatalf("Processed() = %d, want 7", e.Processed())
	}
}

// Property: for any set of non-negative event offsets, events fire in
// non-decreasing time order and the final clock equals the max offset.
func TestEventOrderingProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		var maxT Time
		for _, o := range offsets {
			tt := Time(o)
			if tt > maxT {
				maxT = tt
			}
			e.At(tt, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return e.Now() == maxT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationConversions(t *testing.T) {
	if Millisecond != Duration(time.Millisecond) {
		t.Fatal("Millisecond mismatch with time package")
	}
	if d := Micros(2.5); d != 2500 {
		t.Fatalf("Micros(2.5) = %d, want 2500", d)
	}
	if d := Millis(1.5); d != 1500000 {
		t.Fatalf("Millis(1.5) = %d, want 1500000", d)
	}
	if d := Seconds(0.001); d != Millisecond {
		t.Fatalf("Seconds(0.001) = %d, want 1ms", d)
	}
	if got := (3 * Millisecond).Millis(); got != 3 {
		t.Fatalf("Millis() = %v, want 3", got)
	}
	if got := (1500 * Nanosecond).Micros(); got != 1.5 {
		t.Fatalf("Micros() = %v, want 1.5", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Fatalf("Seconds() = %v, want 2", got)
	}
	if got := Time(5000).Sub(Time(2000)); got != 3000 {
		t.Fatalf("Sub = %v, want 3000", got)
	}
	if got := Time(2000).Add(500); got != 2500 {
		t.Fatalf("Add = %v, want 2500", got)
	}
	if FromStd(time.Microsecond) != Microsecond {
		t.Fatal("FromStd mismatch")
	}
	if Microsecond.Std() != time.Microsecond {
		t.Fatal("Std mismatch")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandSplitIndependence(t *testing.T) {
	// Children with different labels should differ; same construction
	// should be reproducible.
	p1 := NewRand(7)
	p2 := NewRand(7)
	c1 := p1.Split("arrivals")
	c2 := p2.Split("arrivals")
	for i := 0; i < 50; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("Split not reproducible")
		}
	}
	d1 := NewRand(7).Split("arrivals")
	d2 := NewRand(7).Split("jitter")
	diff := false
	for i := 0; i < 20; i++ {
		if d1.Float64() != d2.Float64() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different labels produced identical streams")
	}
}

func TestExpDurationNonNegativeAndMean(t *testing.T) {
	r := NewRand(1)
	var sum Duration
	const n = 20000
	mean := 10 * Millisecond
	for i := 0; i < n; i++ {
		d := r.ExpDuration(mean)
		if d < 0 {
			t.Fatal("negative exponential duration")
		}
		sum += d
	}
	got := float64(sum) / n
	if got < 0.9*float64(mean) || got > 1.1*float64(mean) {
		t.Fatalf("empirical mean %.0f, want ~%d", got, mean)
	}
}

func TestUniformDurationBounds(t *testing.T) {
	r := NewRand(2)
	lo, hi := 5*Microsecond, 10*Microsecond
	for i := 0; i < 1000; i++ {
		d := r.UniformDuration(lo, hi)
		if d < lo || d > hi {
			t.Fatalf("uniform draw %v outside [%v,%v]", d, lo, hi)
		}
	}
	if d := r.UniformDuration(hi, lo); d != hi {
		t.Fatalf("degenerate range should return lo, got %v", d)
	}
}

func TestNormDurationClampsAtZero(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		if d := r.NormDuration(Microsecond, 100*Microsecond); d < 0 {
			t.Fatal("normal draw went negative")
		}
	}
}

func TestWeakEventsDoNotKeepRunAlive(t *testing.T) {
	e := NewEngine()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		e.AfterWeak(100, tick) // self-rearming monitor
	}
	e.AfterWeak(100, tick)
	e.At(250, func() {}) // real work ends at 250
	e.Run()
	// The monitor fired at 100 and 200; with no strong work left, Run
	// returned instead of spinning on the weak chain.
	if ticks != 2 {
		t.Fatalf("weak monitor fired %d times, want 2", ticks)
	}
	if e.Now() != 250 {
		t.Fatalf("Now() = %v, want 250", e.Now())
	}
}

func TestWeakOnlyQueueRunsNothing(t *testing.T) {
	e := NewEngine()
	fired := false
	e.AtWeak(10, func() { fired = true })
	e.Run()
	if fired {
		t.Fatal("weak event fired with no strong work at all")
	}
}

func TestWeakEventsFireUnderRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.AtWeak(10, func() { fired++ })
	e.AtWeak(20, func() { fired++ })
	e.RunUntil(15)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (RunUntil drives weak events by time)", fired)
	}
}

func TestCancelWeakEvent(t *testing.T) {
	e := NewEngine()
	ev := e.AtWeak(10, func() {})
	e.Cancel(ev)
	e.At(20, func() {})
	e.Run() // must not panic or miscount strong events
	if e.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", e.Now())
	}
}

// TestInterruptStopsRunawayCascade: a self-rescheduling event chain that
// never drains (and never advances past the deadline) must still stop
// once the Interrupt hook trips — the seam the serving layer's per-job
// deadlines cancel runaway experiments through.
func TestInterruptStopsRunawayCascade(t *testing.T) {
	e := NewEngine()
	var reschedule func()
	reschedule = func() { e.After(1, reschedule) }
	e.At(0, reschedule)

	var stop atomic.Bool
	e.Interrupt = stop.Load
	done := make(chan struct{})
	go func() {
		e.RunUntil(1 << 40)
		close(done)
	}()
	stop.Store(true)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("RunUntil never observed the interrupt")
	}

	// Run must honor the hook too.
	e2 := NewEngine()
	var cascade func()
	cascade = func() { e2.After(1, cascade) }
	e2.At(0, cascade)
	n := uint64(0)
	e2.Interrupt = func() bool { n++; return n > 3 }
	e2.Run()
	if e2.Processed() == 0 {
		t.Fatal("engine stopped before doing any work")
	}

	// Drain path: a cancellation that lands inside a same-timestamp cascade
	// at the TAIL of the run — after the last stride poll, before the queue
	// drains — must still be observed. Without the drain-path poll, RunUntil
	// would fast-forward the clock to the deadline as if the run completed.
	e3 := NewEngine()
	var tripped atomic.Bool
	fires := 0
	var tail func()
	tail = func() {
		fires++
		if fires == 50 {
			// Cancel mid-cascade; fewer than InterruptStride events ever
			// run, so no stride-boundary poll after this can observe it.
			tripped.Store(true)
		}
		if fires < 100 {
			e3.At(e3.Now(), tail) // same-timestamp cascade, then drains
		}
	}
	e3.At(5, tail)
	e3.Interrupt = tripped.Load
	e3.RunUntil(1 << 40)
	if got := e3.Now(); got != 5 {
		t.Fatalf("Now() = %v after tail-cascade interrupt, want 5 (clock must not overshoot to the deadline)", got)
	}
}
