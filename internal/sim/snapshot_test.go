package sim

import (
	"reflect"
	"testing"
)

// drive schedules a small deterministic workload: a few timers, a weak
// monitor, a cancellation, and a cascade, then runs n events.
func drive(e *Engine, n int) {
	var tick func()
	tick = func() { e.After(3, tick) }
	e.At(0, tick)
	e.After(1, func() {})
	ev := e.After(100, func() {})
	e.AfterWeak(2, func() {})
	e.Cancel(ev)
	for i := 0; i < n; i++ {
		e.Step()
	}
}

func TestSnapshotDeterministicAcrossReplay(t *testing.T) {
	a := NewEngine()
	drive(a, 10)
	sa := a.Snapshot()

	// An independent engine executing the same schedule must fingerprint
	// identically — the property checkpoint restore relies on.
	b := NewEngine()
	drive(b, 10)
	if err := b.Restore(sa); err != nil {
		t.Fatalf("replayed engine diverged from snapshot: %v", err)
	}
	if !reflect.DeepEqual(sa, b.Snapshot()) {
		t.Fatal("snapshots of identical replays differ")
	}

	// An engine reset from a warm arena (non-empty pool, sized queue) must
	// also fingerprint identically: pool state is excluded by design.
	b.Reset()
	drive(b, 10)
	if err := b.Restore(sa); err != nil {
		t.Fatalf("arena-reset replay diverged from snapshot: %v", err)
	}
}

func TestRestoreDetectsDivergence(t *testing.T) {
	a := NewEngine()
	drive(a, 10)
	sa := a.Snapshot()

	b := NewEngine()
	drive(b, 10)
	b.After(7, func() {}) // extra event: states must no longer match
	if err := b.Restore(sa); err == nil {
		t.Fatal("Restore accepted a diverged engine")
	}

	c := NewEngine()
	drive(c, 9) // one event short of the cursor
	if err := c.Restore(sa); err == nil {
		t.Fatal("Restore accepted a short replay")
	}
}

func TestRandDrawsFingerprint(t *testing.T) {
	a := NewRand(42)
	if a.Draws() != 0 {
		t.Fatalf("fresh Rand has %d draws", a.Draws())
	}
	a.Float64()
	a.Intn(10)
	a.ExpDuration(Second)
	child := a.Split("job-0")
	if a.Draws() != 4 {
		t.Fatalf("parent draws = %d, want 4 (Split consumes a value)", a.Draws())
	}
	if child.Draws() != 0 {
		t.Fatalf("child draws = %d, want 0", child.Draws())
	}

	// Same seed + same draw count ⇒ same stream position.
	b := NewRand(42)
	b.Float64()
	b.Intn(10)
	b.ExpDuration(Second)
	b.Split("job-0")
	if a.Draws() != b.Draws() {
		t.Fatalf("draw counts diverged: %d vs %d", a.Draws(), b.Draws())
	}
	if got, want := a.Float64(), b.Float64(); got != want {
		t.Fatalf("streams diverged at equal draw counts: %v vs %v", got, want)
	}
}
