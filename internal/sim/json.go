package sim

import (
	"encoding/json"
	"fmt"
	"time"
)

// UnmarshalJSON accepts either a bare integer (nanoseconds, the type's
// native representation and what MarshalJSON emits) or a Go duration
// string such as "5ms" or "8s". The string form is what wire configs
// (orion-serve requests, fault options) are expected to use; the numeric
// form keeps marshal/unmarshal round trips exact.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		std, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("sim: bad duration %q: %w", s, err)
		}
		*d = FromStd(std)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("sim: duration must be nanoseconds or a duration string: %w", err)
	}
	*d = Duration(ns)
	return nil
}
