package sim

import (
	"encoding/json"
	"testing"
)

func TestDurationUnmarshalJSON(t *testing.T) {
	cases := []struct {
		in      string
		want    Duration
		wantErr bool
	}{
		{`5000000`, 5 * Millisecond, false},
		{`"5ms"`, 5 * Millisecond, false},
		{`"8s"`, 8 * Second, false},
		{`"1.5ms"`, 1500 * Microsecond, false},
		{`"bogus"`, 0, true},
		{`{}`, 0, true},
	}
	for _, c := range cases {
		var d Duration
		err := json.Unmarshal([]byte(c.in), &d)
		if (err != nil) != c.wantErr {
			t.Errorf("unmarshal %s: err=%v, wantErr=%v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && d != c.want {
			t.Errorf("unmarshal %s = %v, want %v", c.in, d, c.want)
		}
	}
}

func TestDurationJSONRoundTrip(t *testing.T) {
	orig := 1500 * Microsecond
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Duration
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Fatalf("round trip: %v != %v", back, orig)
	}
}
