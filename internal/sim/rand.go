package sim

import "math/rand"

// Rand wraps a seeded math/rand source so every stochastic component of an
// experiment (arrival processes, jitter) draws from an explicitly owned
// stream. Experiments construct one Rand per component from a master seed,
// which keeps runs reproducible even when components are added or removed.
type Rand struct {
	r *rand.Rand
	// draws counts values handed out. math/rand exposes no internal state,
	// but the stream is a pure function of (seed, draws), so the counter is
	// a complete fingerprint for checkpoint verification.
	draws uint64
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Reseed rewinds the generator to the exact state NewRand(seed) would
// produce, zeroing the draw counter. Pooled arenas use it to recycle one
// allocation across runs at different seeds: a cell's injector/arrival
// RNG state must never leak into the next cell, and (seed, draws=0) is
// the complete fingerprint of a fresh stream.
func (r *Rand) Reseed(seed int64) {
	r.r.Seed(seed)
	r.draws = 0
}

// Draws reports how many values this generator has handed out. Together
// with the construction seed it pins the generator's exact state: replaying
// the same draw count from the same seed reproduces the stream.
func (r *Rand) Draws() uint64 { return r.draws }

// Split derives an independent child generator. The child's stream is a
// pure function of the parent seed and the label, so reordering unrelated
// draws in the parent does not perturb the child.
func (r *Rand) Split(label string) *Rand {
	var h int64 = 1469598103934665603 // FNV-1a offset basis (truncated)
	for _, c := range label {
		h ^= int64(c)
		h *= 1099511628211
	}
	r.draws++
	return NewRand(h ^ r.r.Int63())
}

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 {
	r.draws++
	return r.r.Float64()
}

// Intn returns a uniform int in [0,n).
func (r *Rand) Intn(n int) int {
	r.draws++
	return r.r.Intn(n)
}

// ExpDuration draws an exponentially distributed duration with the given
// mean — the inter-arrival time of a Poisson process.
func (r *Rand) ExpDuration(mean Duration) Duration {
	r.draws++
	d := Duration(r.r.ExpFloat64() * float64(mean))
	if d < 0 {
		d = 0
	}
	return d
}

// UniformDuration draws uniformly from [lo, hi].
func (r *Rand) UniformDuration(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	r.draws++
	return lo + Duration(r.r.Int63n(int64(hi-lo)+1))
}

// NormDuration draws a normally distributed duration clamped at zero.
func (r *Rand) NormDuration(mean, stddev Duration) Duration {
	r.draws++
	d := Duration(r.r.NormFloat64()*float64(stddev) + float64(mean))
	if d < 0 {
		d = 0
	}
	return d
}
