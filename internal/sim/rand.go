package sim

import "math/rand"

// Rand wraps a seeded math/rand source so every stochastic component of an
// experiment (arrival processes, jitter) draws from an explicitly owned
// stream. Experiments construct one Rand per component from a master seed,
// which keeps runs reproducible even when components are added or removed.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child generator. The child's stream is a
// pure function of the parent seed and the label, so reordering unrelated
// draws in the parent does not perturb the child.
func (r *Rand) Split(label string) *Rand {
	var h int64 = 1469598103934665603 // FNV-1a offset basis (truncated)
	for _, c := range label {
		h ^= int64(c)
		h *= 1099511628211
	}
	return NewRand(h ^ r.r.Int63())
}

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Intn returns a uniform int in [0,n).
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// ExpDuration draws an exponentially distributed duration with the given
// mean — the inter-arrival time of a Poisson process.
func (r *Rand) ExpDuration(mean Duration) Duration {
	d := Duration(r.r.ExpFloat64() * float64(mean))
	if d < 0 {
		d = 0
	}
	return d
}

// UniformDuration draws uniformly from [lo, hi].
func (r *Rand) UniformDuration(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(r.r.Int63n(int64(hi-lo)+1))
}

// NormDuration draws a normally distributed duration clamped at zero.
func (r *Rand) NormDuration(mean, stddev Duration) Duration {
	d := Duration(r.r.NormFloat64()*float64(stddev) + float64(mean))
	if d < 0 {
		d = 0
	}
	return d
}
