// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the GPU device model, the Orion scheduler, the baseline schedulers
// and the workload clients run inside a single sim.Engine. Virtual time is
// an int64 nanosecond counter; events are callbacks ordered by (time, seq)
// so that runs are bit-for-bit reproducible.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time: simulated clocks
// never consult the wall clock.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts freely
// to and from time.Duration, which uses the same representation.
type Duration int64

// Convenient duration units, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Std converts a virtual duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// FromStd converts a time.Duration to a virtual Duration.
func FromStd(d time.Duration) Duration { return Duration(d) }

// Micros reports the duration as fractional microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Millis reports the duration as fractional milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Seconds reports the duration as fractional seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros constructs a Duration from fractional microseconds.
func Micros(us float64) Duration { return Duration(us * float64(Microsecond)) }

// Millis constructs a Duration from fractional milliseconds.
func Millis(ms float64) Duration { return Duration(ms * float64(Millisecond)) }

// Seconds constructs a Duration from fractional seconds.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

func (t Time) String() string {
	return fmt.Sprintf("t=%.3fms", float64(t)/float64(Millisecond))
}

func (d Duration) String() string { return d.Std().String() }
