package sim

import "fmt"

// Event is a scheduled callback. Events are created by Engine.At / After
// (and their Call/Weak variants) and may be cancelled before they fire.
//
// Events are pooled: once an event has fired or been cancelled, its handle
// is dead — the engine recycles the object for a later At, and a stale
// handle may alias an unrelated future event. Holders that cancel events
// must therefore drop their reference immediately after Cancel (and in
// callbacks, before scheduling replacements), which every in-tree caller
// does. Cancelled() stays readable on a dead handle until reuse.
type Event struct {
	time Time
	seq  uint64 // tie-break for deterministic ordering
	// fn is the closure form; when nil, the event fires fnArg(arg) — the
	// allocation-free form used by hot paths (the callback is a long-lived
	// func value and arg a pointer, so scheduling allocates nothing beyond
	// the pooled event itself).
	fn        func()
	fnArg     func(any)
	arg       any
	index     int // heap index; -1 when not queued
	cancelled bool
	// weak events (periodic monitors, tuners) do not keep the simulation
	// alive: Run returns once only weak events remain queued.
	weak bool
}

// Time reports when the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.time }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// Engine is a single-threaded discrete-event simulator. All simulated
// components (devices, schedulers, clients) are driven by callbacks that
// execute inside Run; none of them may block.
//
// The event queue is an inlined 4-ary heap over pooled events: no
// interface boxing, no container/heap dispatch, and steady-state
// scheduling performs zero heap allocations once the pool has warmed up.
type Engine struct {
	now     Time
	queue   []*Event
	free    []*Event // recycled events, reused by At before allocating
	seq     uint64
	strong  int // queued non-weak events
	stopped bool
	// processed counts events executed, for diagnostics and runaway guards.
	processed uint64
	// MaxEvents, when non-zero, aborts Run with a panic after that many
	// events; it is a backstop against accidental infinite self-scheduling.
	MaxEvents uint64
	// Interrupt, when non-nil, is polled every interruptStride events by
	// Run/RunUntil; returning true stops the loop like Stop. It lets a
	// caller cancel a runaway simulation from outside virtual time (the
	// serving layer's per-job deadline) without relying on any event
	// actually firing — cascades of same-timestamp events are caught too.
	Interrupt func() bool
}

// InterruptStride bounds how many events run between Interrupt polls;
// cheap enough to leave the hot loop unmeasurable, tight enough that
// cancellation lands within microseconds of wall time. Checkpoint capture
// piggybacks on the same poll, so checkpoint cursors are always a
// multiple of this stride.
const InterruptStride = 1024

// interrupted polls the Interrupt hook at the stride boundary.
func (e *Engine) interrupted() bool {
	return e.Interrupt != nil && e.processed%InterruptStride == 0 && e.Interrupt()
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Reset returns the engine to its initial state — clock at zero, queue
// empty, sequence and event counters cleared — while keeping the event
// pool and queue capacity warm. A reset engine behaves exactly like a
// fresh NewEngine (same seq numbering, same ordering), so arenas reuse
// engines across runs without perturbing determinism.
func (e *Engine) Reset() {
	for _, ev := range e.queue {
		e.release(ev)
	}
	e.queue = e.queue[:0]
	e.now = 0
	e.seq = 0
	e.strong = 0
	e.stopped = false
	e.processed = 0
	e.MaxEvents = 0
	e.Interrupt = nil
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.queue) }

// PooledEvents reports how many recycled events sit on the free list
// (diagnostics and pool tests).
func (e *Engine) PooledEvents() int { return len(e.free) }

// alloc takes an event from the pool, or allocates one when the pool is
// dry, and stamps the schedule-time fields.
func (e *Engine) alloc(t Time) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.cancelled = false
		ev.weak = false
	} else {
		ev = &Event{}
	}
	ev.time = t
	ev.seq = e.seq
	e.seq++
	return ev
}

// release puts a fired or cancelled event back on the pool. Callback and
// argument references are dropped so the pool never pins client objects;
// the cancelled flag is left intact so a dead handle still answers
// Cancelled() truthfully until the object is reused.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.fnArg = nil
	ev.arg = nil
	ev.index = -1
	e.free = append(e.free, ev)
}

// checkAt validates an absolute schedule time. Scheduling in the past
// (t < Now) panics: it always indicates a modelling bug.
func (e *Engine) checkAt(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
}

// schedule queues a prepared event as a strong event.
func (e *Engine) schedule(ev *Event) *Event {
	e.strong++
	e.heapPush(ev)
	return ev
}

// At schedules fn to run at absolute time t.
func (e *Engine) At(t Time, fn func()) *Event {
	e.checkAt(t)
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := e.alloc(t)
	ev.fn = fn
	return e.schedule(ev)
}

// AtCall schedules fn(arg) to run at absolute time t. It is the
// AfterFunc-style preallocated-slot variant of At: fn is typically a
// package-level function or a field initialized once, and arg a pointer,
// so steady-state scheduling creates no new heap objects (the event
// itself comes from the pool).
func (e *Engine) AtCall(t Time, fn func(any), arg any) *Event {
	e.checkAt(t)
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := e.alloc(t)
	ev.fnArg = fn
	ev.arg = arg
	return e.schedule(ev)
}

// AfterCall schedules fn(arg) to run d after the current time; the
// allocation-free counterpart of After (see AtCall).
func (e *Engine) AfterCall(d Duration, fn func(any), arg any) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.AtCall(e.now.Add(d), fn, arg)
}

// AtWeak schedules a weak event: it fires like a normal event, but Run
// treats a queue holding only weak events as drained. Periodic monitors
// (e.g. the SM_THRESHOLD tuner) use weak events so they never keep a
// finished simulation spinning.
func (e *Engine) AtWeak(t Time, fn func()) *Event {
	ev := e.At(t, fn)
	ev.weak = true
	e.strong--
	return ev
}

// AfterWeak schedules a weak event d after the current time.
func (e *Engine) AfterWeak(d Duration, fn func()) *Event {
	ev := e.After(d, fn)
	ev.weak = true
	e.strong--
	return ev
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a pending event and recycles it. Cancelling an event
// that already fired or was already cancelled only marks the handle; the
// object is (or was) recycled by whoever popped it from the queue.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		if ev != nil {
			ev.cancelled = true
		}
		return
	}
	ev.cancelled = true
	if !ev.weak {
		e.strong--
	}
	e.heapRemove(ev.index)
	e.release(ev)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and advances the clock
// to its timestamp. It reports false when the queue is empty. The fired
// event returns to the pool once its callback has run.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.heapPop()
	if !ev.weak {
		e.strong--
	}
	e.now = ev.time
	e.processed++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.fnArg(ev.arg)
	}
	e.release(ev)
	return true
}

// Run executes events until only weak events remain, the queue drains, or
// Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped {
		if e.MaxEvents > 0 && e.processed >= e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at %v", e.MaxEvents, e.now))
		}
		if e.interrupted() {
			return
		}
		if e.strong == 0 {
			return
		}
		if !e.Step() {
			return
		}
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if e.MaxEvents > 0 && e.processed >= e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at %v", e.MaxEvents, e.now))
		}
		if e.interrupted() {
			return
		}
		if len(e.queue) == 0 || e.queue[0].time > deadline {
			break
		}
		e.Step()
	}
	// Drain-path poll: a cancellation that lands mid-stride during a
	// same-timestamp cascade at the tail would otherwise be ignored here
	// and the clock fast-forwarded to the deadline as if the run had
	// completed — the caller could no longer tell it was interrupted.
	if e.Interrupt != nil && e.Interrupt() {
		return
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// --- event heap -------------------------------------------------------------
//
// An inlined 4-ary min-heap ordered by (time, seq). Compared to
// container/heap's binary heap this halves tree depth (fewer cache-missing
// parent hops on push) and removes the interface-method dispatch and the
// any-boxing of Push/Pop — the single hottest structure in the simulator.

// evLess orders events by firing time, then by scheduling sequence.
func evLess(a, b *Event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// heapPush inserts ev and sifts it up to its position.
func (e *Engine) heapPush(ev *Event) {
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue) - 1)
}

// heapPop removes and returns the earliest event.
func (e *Engine) heapPop() *Event {
	q := e.queue
	root := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		e.queue[0] = last
		e.siftDown(0)
	}
	root.index = -1
	return root
}

// heapRemove removes the event at heap position i.
func (e *Engine) heapRemove(i int) {
	q := e.queue
	n := len(q) - 1
	removed := q[i]
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if i < n {
		e.queue[i] = last
		// The replacement may need to move either way.
		e.siftDown(i)
		if e.queue[i] == last {
			e.siftUp(i)
		}
	}
	removed.index = -1
}

// siftUp moves the event at position i toward the root until its parent
// fires no later than it does. The moving event is written once, into its
// final slot.
func (e *Engine) siftUp(i int) {
	ev := e.queue[i]
	for i > 0 {
		p := (i - 1) >> 2
		pe := e.queue[p]
		if !evLess(ev, pe) {
			break
		}
		e.queue[i] = pe
		pe.index = i
		i = p
	}
	e.queue[i] = ev
	ev.index = i
}

// siftDown moves the event at position i toward the leaves until no child
// fires earlier.
func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	ev := q[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if evLess(q[j], q[m]) {
				m = j
			}
		}
		if !evLess(q[m], ev) {
			break
		}
		q[i] = q[m]
		q[i].index = i
		i = m
	}
	q[i] = ev
	ev.index = i
}
