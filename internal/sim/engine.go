package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are created by Engine.At / After
// and may be cancelled before they fire.
type Event struct {
	time      Time
	seq       uint64 // tie-break for deterministic ordering
	fn        func()
	index     int // heap index; -1 when not queued
	cancelled bool
	// weak events (periodic monitors, tuners) do not keep the simulation
	// alive: Run returns once only weak events remain queued.
	weak bool
}

// Time reports when the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.time }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. All simulated
// components (devices, schedulers, clients) are driven by callbacks that
// execute inside Run; none of them may block.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	strong  int // queued non-weak events
	stopped bool
	// processed counts events executed, for diagnostics and runaway guards.
	processed uint64
	// MaxEvents, when non-zero, aborts Run with a panic after that many
	// events; it is a backstop against accidental infinite self-scheduling.
	MaxEvents uint64
	// Interrupt, when non-nil, is polled every interruptStride events by
	// Run/RunUntil; returning true stops the loop like Stop. It lets a
	// caller cancel a runaway simulation from outside virtual time (the
	// serving layer's per-job deadline) without relying on any event
	// actually firing — cascades of same-timestamp events are caught too.
	Interrupt func() bool
}

// interruptStride bounds how many events run between Interrupt polls;
// cheap enough to leave the hot loop unmeasurable, tight enough that
// cancellation lands within microseconds of wall time.
const interruptStride = 1024

// interrupted polls the Interrupt hook at the stride boundary.
func (e *Engine) interrupted() bool {
	return e.Interrupt != nil && e.processed%interruptStride == 0 && e.Interrupt()
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it always indicates a modelling bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := &Event{time: t, seq: e.seq, fn: fn}
	e.seq++
	e.strong++
	heap.Push(&e.queue, ev)
	return ev
}

// AtWeak schedules a weak event: it fires like a normal event, but Run
// treats a queue holding only weak events as drained. Periodic monitors
// (e.g. the SM_THRESHOLD tuner) use weak events so they never keep a
// finished simulation spinning.
func (e *Engine) AtWeak(t Time, fn func()) *Event {
	ev := e.At(t, fn)
	ev.weak = true
	e.strong--
	return ev
}

// AfterWeak schedules a weak event d after the current time.
func (e *Engine) AfterWeak(d Duration, fn func()) *Event {
	ev := e.After(d, fn)
	ev.weak = true
	e.strong--
	return ev
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an event that already fired
// or was already cancelled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		if ev != nil {
			ev.cancelled = true
		}
		return
	}
	ev.cancelled = true
	if !ev.weak {
		e.strong--
	}
	heap.Remove(&e.queue, ev.index)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and advances the clock
// to its timestamp. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	if !ev.weak {
		e.strong--
	}
	e.now = ev.time
	e.processed++
	ev.fn()
	return true
}

// Run executes events until only weak events remain, the queue drains, or
// Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped {
		if e.MaxEvents > 0 && e.processed >= e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at %v", e.MaxEvents, e.now))
		}
		if e.interrupted() {
			return
		}
		if e.strong == 0 {
			return
		}
		if !e.Step() {
			return
		}
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if e.MaxEvents > 0 && e.processed >= e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at %v", e.MaxEvents, e.now))
		}
		if e.interrupted() {
			return
		}
		if len(e.queue) == 0 || e.queue[0].time > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
