package sim

import (
	"fmt"
	"sort"
)

// EventState is the serializable fingerprint of one queued event. The
// callback itself is a closure and cannot cross a process boundary; what
// can is the event's position in virtual time and its deterministic
// sequence number, which together identify it uniquely within a run.
type EventState struct {
	Time Time
	Seq  uint64
	Weak bool
}

// EngineState is a deterministic fingerprint of the engine: the clock,
// the allocation counters, and every queued event in (time, seq) order.
// Two engines that executed the same event sequence from the same inputs
// produce byte-identical EngineStates; pool and capacity state (warm free
// lists, slice capacities) is deliberately excluded because arena reuse
// varies it without affecting behaviour.
type EngineState struct {
	Now       Time
	Seq       uint64
	Strong    int
	Processed uint64
	Events    []EventState
}

// Snapshot captures the engine's logical state. It allocates (the event
// list is copied and sorted) and must only be called off the hot path —
// in practice at Interrupt-stride boundaries, never per event.
func (e *Engine) Snapshot() EngineState {
	s := EngineState{
		Now:       e.now,
		Seq:       e.seq,
		Strong:    e.strong,
		Processed: e.processed,
		Events:    make([]EventState, 0, len(e.queue)),
	}
	for _, ev := range e.queue {
		s.Events = append(s.Events, EventState{Time: ev.time, Seq: ev.seq, Weak: ev.weak})
	}
	// Heap-array order is itself deterministic, but (time, seq) order makes
	// the fingerprint independent of heap layout entirely, which keeps the
	// determinism argument local to this function.
	sort.Slice(s.Events, func(i, j int) bool {
		if s.Events[i].Time != s.Events[j].Time {
			return s.Events[i].Time < s.Events[j].Time
		}
		return s.Events[i].Seq < s.Events[j].Seq
	})
	return s
}

// Restore completes the checkpoint/restore contract. Event callbacks are
// closures, so a checkpoint cannot rebuild the heap directly; instead the
// caller reconstructs the simulation from its config and deterministically
// re-executes events until Processed() reaches the checkpoint cursor, then
// calls Restore with the checkpointed state. Restore verifies the replayed
// engine is bit-identical to the checkpointed one — clock, counters, and
// the full queued-event fingerprint — and returns a descriptive error on
// any divergence, at which point the caller must discard the checkpoint
// rather than continue from silently wrong state.
func (e *Engine) Restore(want EngineState) error {
	got := e.Snapshot()
	if got.Now != want.Now {
		return fmt.Errorf("sim: restore clock mismatch: replayed %v, checkpoint %v", got.Now, want.Now)
	}
	if got.Seq != want.Seq {
		return fmt.Errorf("sim: restore seq mismatch: replayed %d, checkpoint %d", got.Seq, want.Seq)
	}
	if got.Strong != want.Strong {
		return fmt.Errorf("sim: restore strong-count mismatch: replayed %d, checkpoint %d", got.Strong, want.Strong)
	}
	if got.Processed != want.Processed {
		return fmt.Errorf("sim: restore cursor mismatch: replayed %d events, checkpoint %d", got.Processed, want.Processed)
	}
	if len(got.Events) != len(want.Events) {
		return fmt.Errorf("sim: restore queue mismatch: replayed %d events queued, checkpoint %d", len(got.Events), len(want.Events))
	}
	for i := range got.Events {
		if got.Events[i] != want.Events[i] {
			return fmt.Errorf("sim: restore queued event %d mismatch: replayed %+v, checkpoint %+v",
				i, got.Events[i], want.Events[i])
		}
	}
	return nil
}
