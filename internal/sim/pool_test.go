package sim

import "testing"

// TestPoolRecyclesFiredEvents checks that events return to the free list
// after firing and are reused by later scheduling.
func TestPoolRecyclesFiredEvents(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 4; i++ {
		e.After(Duration(i+1)*Millisecond, func() {})
	}
	e.Run()
	if got := e.PooledEvents(); got != 4 {
		t.Fatalf("pooled events after run = %d, want 4", got)
	}
	// Rescheduling drains the pool instead of allocating.
	ev := e.After(Millisecond, func() {})
	if got := e.PooledEvents(); got != 3 {
		t.Fatalf("pooled events after reschedule = %d, want 3", got)
	}
	if ev.Cancelled() {
		t.Fatal("recycled event reported cancelled before Cancel")
	}
	e.Run()
}

// TestPoolCancelThenReuse checks the cancel path: a cancelled event goes
// back to the pool, its dead handle still answers Cancelled, and the
// recycled object comes back clean for the next scheduling call.
func TestPoolCancelThenReuse(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(Millisecond, func() { fired = true })
	e.Cancel(ev)
	if !ev.Cancelled() {
		t.Fatal("cancelled event does not report Cancelled")
	}
	if got := e.PooledEvents(); got != 1 {
		t.Fatalf("pooled events after cancel = %d, want 1", got)
	}

	// Reuse: the same object is handed back, with the cancelled flag
	// cleared, and fires normally.
	ran := false
	ev2 := e.After(2*Millisecond, func() { ran = true })
	if ev2 != ev {
		t.Fatal("cancel did not recycle the event object")
	}
	if ev2.Cancelled() {
		t.Fatal("recycled event still marked cancelled")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled callback ran")
	}
	if !ran {
		t.Fatal("recycled event did not fire")
	}

	// Double-cancel of the dead (already recycled and fired) handle is a
	// safe no-op: it only marks the handle.
	e.Cancel(ev)
	if got := e.PooledEvents(); got != 1 {
		t.Fatalf("pooled events after dead-handle cancel = %d, want 1 (no double release)", got)
	}
}

// TestPoolWeakEventAccounting checks that weak events keep the
// strong-event bookkeeping intact through the pool: recycled weak events
// must not leak weakness into their next incarnation.
func TestPoolWeakEventAccounting(t *testing.T) {
	e := NewEngine()
	weakFired := 0
	e.AfterWeak(Millisecond, func() { weakFired++ })
	e.Run() // weak-only queue: runs nothing
	if weakFired != 0 {
		t.Fatal("weak-only queue fired under Run")
	}
	ev := e.queue[0]
	e.Cancel(ev) // recycle the weak event
	if got := e.PooledEvents(); got != 1 {
		t.Fatalf("pooled events after weak cancel = %d, want 1", got)
	}

	// The recycled object must come back strong.
	ran := false
	ev2 := e.After(Millisecond, func() { ran = true })
	if ev2 != ev {
		t.Fatal("weak cancel did not recycle the event object")
	}
	if ev2.weak {
		t.Fatal("recycled event kept its weak flag")
	}
	e.Run()
	if !ran {
		t.Fatal("recycled strong event did not fire")
	}

	// Cancelling a weak event must not disturb the strong counter: one
	// strong event left means Run still executes it.
	strongRan := false
	e.After(Millisecond, func() { strongRan = true })
	w := e.AfterWeak(Millisecond, func() {})
	e.Cancel(w)
	e.Run()
	if !strongRan {
		t.Fatal("strong event lost after weak cancel (strong counter corrupted)")
	}
}

// TestSchedulingSteadyStateAllocs checks the tentpole property at the
// engine level: once the pool is warm, the schedule→fire cycle performs
// zero heap allocations for the Call variants and none for the event
// object itself.
func TestSchedulingSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	nop := func(any) {}
	// Warm the pool.
	e.AtCall(e.Now(), nop, nil)
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		e.AtCall(e.Now().Add(Microsecond), nop, e)
		e.AfterCall(2*Microsecond, nop, e)
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state schedule/fire allocates %v objects per cycle, want 0", avg)
	}
}

// TestResetRestoresInitialState checks that a Reset engine is
// indistinguishable from a fresh one: clock, sequence numbering (event
// ordering), counters — while queued events are recycled into the pool.
func TestResetRestoresInitialState(t *testing.T) {
	order := func(e *Engine) []int {
		var got []int
		for i := 0; i < 3; i++ {
			i := i
			e.At(Time(Millisecond), func() { got = append(got, i) })
		}
		e.Run()
		return got
	}

	fresh := NewEngine()
	want := order(fresh)

	e2 := NewEngine()
	e2.After(Millisecond, func() { t.Fatal("stale event fired after Reset") })
	e2.AfterWeak(2*Millisecond, func() {})
	e2.MaxEvents = 5
	e2.Reset()
	if e2.Now() != 0 || e2.Pending() != 0 || e2.Processed() != 0 || e2.MaxEvents != 0 {
		t.Fatalf("Reset left state behind: now=%v pending=%d processed=%d maxEvents=%d",
			e2.Now(), e2.Pending(), e2.Processed(), e2.MaxEvents)
	}
	if got := e2.PooledEvents(); got != 2 {
		t.Fatalf("Reset recycled %d events, want 2", got)
	}
	if got := order(e2); len(got) != len(want) {
		t.Fatalf("reset engine ran %d events, fresh ran %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("reset engine order %v differs from fresh %v", got, want)
			}
		}
	}
}
