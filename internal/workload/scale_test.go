package workload

import (
	"math"
	"testing"
	"testing/quick"

	"orion/internal/kernels"
)

func TestWithBatchValidation(t *testing.T) {
	m := MobileNetV2Training()
	if _, err := m.WithBatch(0); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := m.WithBatch(-4); err == nil {
		t.Error("negative batch accepted")
	}
	noBase := &Model{Name: "x", Ops: m.Ops, WeightsBytes: 1}
	if _, err := noBase.WithBatch(8); err == nil {
		t.Error("model without base batch accepted")
	}
}

func TestWithBatchSameBatchIsCopy(t *testing.T) {
	m := ResNet50Inference()
	cp, err := m.WithBatch(m.Batch)
	if err != nil {
		t.Fatal(err)
	}
	if cp == m {
		t.Fatal("same pointer returned")
	}
	cp.Ops[0].Bytes = 42
	if m.Ops[0].Bytes == 42 {
		t.Fatal("ops aliased")
	}
}

// The paper's Figure 1 runs MobileNetV2 training at batch 96; our recipe
// is calibrated at 64.
func TestWithBatch96MobileNet(t *testing.T) {
	base := MobileNetV2Training()
	scaled, err := base.WithBatch(96)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Batch != 96 {
		t.Fatalf("batch = %d", scaled.Batch)
	}
	ratio := 96.0 / 64.0
	wantDur := float64(base.TotalKernelTime()) * math.Pow(ratio, durationBatchExponent)
	got := float64(scaled.TotalKernelTime())
	if math.Abs(got-wantDur)/wantDur > 0.02 {
		t.Errorf("scaled kernel time %.1fms, want %.1fms", got/1e6, wantDur/1e6)
	}
	// Memory grows on the activation share only.
	if scaled.WeightsBytes <= base.WeightsBytes {
		t.Error("memory did not grow")
	}
	if scaled.WeightsBytes >= int64(float64(base.WeightsBytes)*ratio) {
		t.Error("memory grew fully linearly; weights should not scale")
	}
	if err := scaled.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithBatchShrinks(t *testing.T) {
	base := ResNet50Training() // batch 32
	small, err := base.WithBatch(8)
	if err != nil {
		t.Fatal(err)
	}
	if small.TotalKernelTime() >= base.TotalKernelTime() {
		t.Error("smaller batch not faster")
	}
	for i := range small.Ops {
		if small.Ops[i].Op == kernels.OpKernel && small.Ops[i].Launch.Blocks < 1 {
			t.Fatal("kernel lost all blocks")
		}
	}
}

func TestWithBatchScalesTransfers(t *testing.T) {
	base := ResNet50Inference() // batch 4
	big, err := base.WithBatch(8)
	if err != nil {
		t.Fatal(err)
	}
	if big.Ops[0].Op != kernels.OpMemcpyH2D {
		t.Fatal("first op not the input copy")
	}
	if big.Ops[0].Bytes != base.Ops[0].Bytes*2 {
		t.Errorf("input bytes %d, want %d", big.Ops[0].Bytes, base.Ops[0].Bytes*2)
	}
}

// Property: scaling preserves op count, kind sequence and IDs; durations
// and block counts are monotone in the batch.
func TestWithBatchMonotoneProperty(t *testing.T) {
	base := TransformerInference()
	f := func(b1, b2 uint8) bool {
		n1, n2 := int(b1%32)+1, int(b2%32)+1
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		s1, err1 := base.WithBatch(n1)
		s2, err2 := base.WithBatch(n2)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(s1.Ops) != len(base.Ops) || len(s2.Ops) != len(base.Ops) {
			return false
		}
		for i := range base.Ops {
			if s1.Ops[i].Op != base.Ops[i].Op || s1.Ops[i].ID != base.Ops[i].ID {
				return false
			}
			if base.Ops[i].Op == kernels.OpKernel {
				if n1 != n2 && s1.Ops[i].Duration > s2.Ops[i].Duration {
					return false
				}
				if s1.Ops[i].Launch.Blocks > s2.Ops[i].Launch.Blocks {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
