package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"orion/internal/kernels"
	"orion/internal/sim"
)

// The JSON form lets users bring their own kernel traces: profile a real
// application (e.g. with Nsight Systems + Nsight Compute, the paper's
// §5.2 flow), convert the per-kernel rows into this schema, and schedule
// the workload with any backend in this repository.

// jsonModel is the serialized form of a Model.
type jsonModel struct {
	Name           string               `json:"name"`
	Kind           string               `json:"kind"` // "inf" or "train"
	Batch          int                  `json:"batch"`
	WeightsBytes   int64                `json:"weights_bytes"`
	TargetDuration sim.Duration         `json:"target_duration_ns"`
	PhaseBoundary  int                  `json:"phase_boundary,omitempty"`
	Layers         int                  `json:"layers,omitempty"`
	Ops            []kernels.Descriptor `json:"ops"`
}

// WriteJSON serializes the model.
func (m *Model) WriteJSON(w io.Writer) error {
	out := jsonModel{
		Name:           m.Name,
		Kind:           m.Kind.String(),
		Batch:          m.Batch,
		WeightsBytes:   m.WeightsBytes,
		TargetDuration: m.TargetDuration,
		PhaseBoundary:  m.PhaseBoundary,
		Layers:         m.Layers,
	}
	out.Ops = m.Ops
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// ReadJSON loads and validates a model written by WriteJSON (or authored
// by hand from an external profile).
func ReadJSON(r io.Reader) (*Model, error) {
	var in jsonModel
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: decode: %w", err)
	}
	m := &Model{
		Name:           in.Name,
		Batch:          in.Batch,
		WeightsBytes:   in.WeightsBytes,
		TargetDuration: in.TargetDuration,
		PhaseBoundary:  in.PhaseBoundary,
		Layers:         in.Layers,
	}
	switch in.Kind {
	case "inf", "":
		m.Kind = Inference
	case "train":
		m.Kind = Training
	default:
		return nil, fmt.Errorf("workload: unknown kind %q", in.Kind)
	}
	if m.Name == "" {
		return nil, fmt.Errorf("workload: model without name")
	}
	m.Ops = in.Ops
	// Normalize op IDs to stream positions, which the schedulers key
	// profiles by.
	for i := range m.Ops {
		m.Ops[i].ID = i
	}
	if m.Layers == 0 {
		m.Layers = len(m.Ops) / 12
		if m.Layers < 1 {
			m.Layers = 1
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
