package workload

import (
	"testing"
	"testing/quick"
)

func TestLayerStructure(t *testing.T) {
	for _, m := range append(Catalog(), Extensions()...) {
		if m.Layers < 8 || m.Layers > 48 {
			t.Errorf("%s: %d layers, want 8..48", m.ID(), m.Layers)
		}
		if m.LayerBytes() <= 0 {
			t.Errorf("%s: non-positive layer bytes", m.ID())
		}
		if m.LayerBytes()*int64(m.Layers) > m.WeightsBytes {
			t.Errorf("%s: layers exceed total weights", m.ID())
		}
	}
}

func TestLayerOfMonotoneAndBounded(t *testing.T) {
	m := ResNet50Training()
	prev := 0
	seen := map[int]bool{}
	for i := range m.Ops {
		l := m.LayerOf(i)
		if l < 0 || l >= m.Layers {
			t.Fatalf("op %d: layer %d out of range", i, l)
		}
		if l < prev {
			t.Fatalf("op %d: layer %d < previous %d (must walk forward)", i, l, prev)
		}
		prev = l
		seen[l] = true
	}
	if len(seen) != m.Layers {
		t.Fatalf("only %d of %d layers referenced", len(seen), m.Layers)
	}
}

func TestLayerOfEdgeCases(t *testing.T) {
	m := ResNet50Inference()
	if m.LayerOf(-5) != 0 {
		t.Error("negative index should map to layer 0")
	}
	if got := m.LayerOf(len(m.Ops) + 100); got != m.Layers-1 {
		t.Errorf("overflow index maps to %d, want last layer %d", got, m.Layers-1)
	}
	empty := &Model{Layers: 0, WeightsBytes: 100}
	if empty.LayerOf(3) != 0 {
		t.Error("layerless model should map to 0")
	}
	if empty.LayerBytes() != 100 {
		t.Error("layerless model LayerBytes should be the whole footprint")
	}
}

func TestLayerOfProperty(t *testing.T) {
	m := BERTTraining()
	f := func(a, b uint16) bool {
		i, j := int(a)%len(m.Ops), int(b)%len(m.Ops)
		if i > j {
			i, j = j, i
		}
		return m.LayerOf(i) <= m.LayerOf(j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseBoundaryOnTraining(t *testing.T) {
	for _, m := range TrainingModels() {
		if m.PhaseBoundary <= 0 || m.PhaseBoundary >= len(m.Ops) {
			t.Errorf("%s: phase boundary %d outside (0,%d)", m.ID(), m.PhaseBoundary, len(m.Ops))
			continue
		}
		// The forward pass holds roughly 38% of kernel time.
		var fwd, total float64
		for i := range m.Ops {
			d := float64(m.Ops[i].Duration)
			total += d
			if i < m.PhaseBoundary {
				fwd += d
			}
		}
		frac := fwd / total
		if frac < 0.30 || frac > 0.46 {
			t.Errorf("%s: forward share %.2f, want ~0.38", m.ID(), frac)
		}
	}
}

func TestPhaseBoundaryZeroForInference(t *testing.T) {
	for _, m := range InferenceModels() {
		if m.PhaseBoundary != 0 {
			t.Errorf("%s: inference model has phase boundary %d", m.ID(), m.PhaseBoundary)
		}
	}
}
