package workload

import (
	"bytes"
	"strings"
	"testing"

	"orion/internal/kernels"
)

func TestJSONRoundTripModel(t *testing.T) {
	m := ResNet50Training()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != m.ID() || got.Batch != m.Batch || got.WeightsBytes != m.WeightsBytes {
		t.Fatalf("header mismatch: %s/%d/%d", got.ID(), got.Batch, got.WeightsBytes)
	}
	if got.PhaseBoundary != m.PhaseBoundary || got.Layers != m.Layers {
		t.Fatalf("structure mismatch: %d/%d vs %d/%d",
			got.PhaseBoundary, got.Layers, m.PhaseBoundary, m.Layers)
	}
	if len(got.Ops) != len(m.Ops) {
		t.Fatalf("%d ops, want %d", len(got.Ops), len(m.Ops))
	}
	for i := range m.Ops {
		if got.Ops[i] != m.Ops[i] {
			t.Fatalf("op %d mismatch:\n%+v\n%+v", i, got.Ops[i], m.Ops[i])
		}
	}
}

func TestJSONOpsAreStrings(t *testing.T) {
	m := ResNet50Inference()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"op": "kernel"`) || !strings.Contains(s, `"op": "memcpyH2D"`) {
		t.Error("ops not serialized as readable names")
	}
	if !strings.Contains(s, `"kind": "inf"`) {
		t.Error("kind not serialized as name")
	}
}

func TestReadJSONHandAuthored(t *testing.T) {
	src := `{
	  "name": "custom", "kind": "inf", "batch": 1,
	  "weights_bytes": 1048576, "target_duration_ns": 300000,
	  "ops": [
	    {"name": "in", "op": "memcpyH2D", "bytes": 4096, "sync": true},
	    {"name": "gemm", "op": "kernel",
	     "launch": {"Blocks": 64, "ThreadsPerBlock": 256, "RegsPerThread": 64},
	     "duration_ns": 250000, "compute_util": 0.8, "membw_util": 0.2},
	    {"name": "out", "op": "memcpyD2H", "bytes": 128}
	  ]
	}`
	m, err := ReadJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.ID() != "custom-inf" || len(m.Ops) != 3 {
		t.Fatalf("loaded %s with %d ops", m.ID(), len(m.Ops))
	}
	// IDs normalized to stream positions; layers defaulted.
	for i := range m.Ops {
		if m.Ops[i].ID != i {
			t.Fatalf("op %d has ID %d", i, m.Ops[i].ID)
		}
	}
	if m.Layers < 1 {
		t.Fatal("layers not defaulted")
	}
	if m.Ops[1].Profile() != kernels.ProfileCompute {
		t.Fatal("hand-authored kernel misclassified")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{`,
		`{"name": "", "batch": 1, "weights_bytes": 1, "ops": [{"name":"k","op":"kernel","launch":{"Blocks":1,"ThreadsPerBlock":1},"duration_ns":1}]}`,
		`{"name": "x", "kind": "nope", "batch": 1, "weights_bytes": 1, "ops": []}`,
		`{"name": "x", "batch": 1, "weights_bytes": 1, "ops": []}`,
		`{"name": "x", "batch": 1, "weights_bytes": 1, "ops": [{"name":"bad","op":"teleport"}]}`,
		`{"name": "x", "batch": 1, "weights_bytes": 1, "ops": [{"name":"k","op":"kernel","launch":{"Blocks":0,"ThreadsPerBlock":1},"duration_ns":1}]}`,
	}
	for i, src := range cases {
		if _, err := ReadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestProfileJSONNames(t *testing.T) {
	var p kernels.Profile
	if err := p.UnmarshalJSON([]byte(`"memory"`)); err != nil || p != kernels.ProfileMemory {
		t.Fatalf("profile name decode: %v %v", p, err)
	}
	if err := p.UnmarshalJSON([]byte(`2`)); err != nil || p != kernels.ProfileMemory {
		t.Fatalf("profile int decode: %v %v", p, err)
	}
	if err := p.UnmarshalJSON([]byte(`"hot"`)); err == nil {
		t.Fatal("bogus profile accepted")
	}
}
