// Package workload provides synthetic kernel traces for the DNN models the
// paper evaluates: ResNet50, ResNet101, MobileNetV2, BERT and Transformer,
// each as an inference and a training variant at the paper's batch sizes
// (Table 1).
//
// A workload is a repeating sequence of operation descriptors — memory
// copies and kernels with durations, compute/memory-bandwidth intensities
// and SM footprints. The sequences are generated from per-model recipes
// whose class mix is calibrated so that the dedicated-GPU request latency
// matches the paper's measurements (Table 4 iteration times, Table 3
// sustainable request rates) and the time-weighted utilization averages
// match Table 1. Orion never inspects tensor contents — only these
// profiled attributes — so traces carrying them exercise the same
// scheduler code paths as real PyTorch models.
package workload

import (
	"fmt"

	"orion/internal/kernels"
	"orion/internal/sim"
)

// Kind distinguishes inference from training variants.
type Kind int

const (
	// Inference serves forward passes at small batch size.
	Inference Kind = iota
	// Training runs forward + backward + optimizer-update iterations.
	Training
)

func (k Kind) String() string {
	if k == Training {
		return "train"
	}
	return "inf"
}

// Model is one DNN workload: the operation sequence of a single request
// (inference) or iteration (training), plus its memory footprint.
type Model struct {
	// Name identifies the model (e.g. "resnet50").
	Name string
	// Kind is Inference or Training.
	Kind Kind
	// Batch is the batch size, matching the paper's Table 1.
	Batch int
	// Ops is the per-request operation sequence, in submission order.
	Ops []kernels.Descriptor
	// WeightsBytes is resident device memory (weights, activations,
	// optimizer state) allocated once at client start.
	WeightsBytes int64
	// TargetDuration is the design-point dedicated-GPU latency of one
	// request; the generated kernel durations sum close to it.
	TargetDuration sim.Duration
	// PhaseBoundary is the index of the first backward-pass operation in
	// a training iteration (the Tick-Tock baseline offsets forward and
	// backward passes of collocated trainers). Zero for inference.
	PhaseBoundary int
	// Layers is the number of weight layers the model's parameters are
	// grouped into, the granularity of the layer-by-layer swapping
	// extension (§5.1.3): each layer holds WeightsBytes/Layers bytes.
	Layers int
}

// LayerOf maps an operation index onto its weight layer: operations are
// assigned to layers contiguously in execution order, mirroring how a
// network's kernels walk its layers.
func (m *Model) LayerOf(opIndex int) int {
	if m.Layers <= 1 || len(m.Ops) == 0 {
		return 0
	}
	if opIndex < 0 {
		return 0
	}
	if opIndex >= len(m.Ops) {
		opIndex = len(m.Ops) - 1
	}
	l := opIndex * m.Layers / len(m.Ops)
	if l >= m.Layers {
		l = m.Layers - 1
	}
	return l
}

// LayerBytes is the size of one weight layer.
func (m *Model) LayerBytes() int64 {
	if m.Layers <= 0 {
		return m.WeightsBytes
	}
	return m.WeightsBytes / int64(m.Layers)
}

// ID returns the canonical "<name>-<kind>" workload identifier.
func (m *Model) ID() string { return fmt.Sprintf("%s-%s", m.Name, m.Kind) }

// KernelCount reports the number of compute kernels in one request.
func (m *Model) KernelCount() int {
	n := 0
	for i := range m.Ops {
		if m.Ops[i].Op == kernels.OpKernel {
			n++
		}
	}
	return n
}

// TotalKernelTime sums the dedicated-GPU durations of the request's
// kernels.
func (m *Model) TotalKernelTime() sim.Duration {
	var d sim.Duration
	for i := range m.Ops {
		if m.Ops[i].Op == kernels.OpKernel {
			d += m.Ops[i].Duration
		}
	}
	return d
}

// Validate checks every descriptor in the model.
func (m *Model) Validate() error {
	if len(m.Ops) == 0 {
		return fmt.Errorf("workload %s: no operations", m.ID())
	}
	if m.WeightsBytes <= 0 {
		return fmt.Errorf("workload %s: no memory footprint", m.ID())
	}
	for i := range m.Ops {
		if err := m.Ops[i].Validate(); err != nil {
			return fmt.Errorf("workload %s op %d: %w", m.ID(), i, err)
		}
	}
	return nil
}

// class is one kernel archetype within a recipe: a fraction of the
// request's GPU time spent in kernels with the given resource profile.
type class struct {
	name    string
	share   float64      // fraction of total kernel time
	compute float64      // compute-throughput demand while running
	membw   float64      // memory-bandwidth demand while running
	sms     int          // SM footprint (capped at device size)
	waves   int          // block waves (>1 only for device-filling kernels)
	meanDur sim.Duration // mean kernel duration before normalization
}

// recipe is the generator input for one model variant.
type recipe struct {
	name    string
	kind    Kind
	batch   int
	total   sim.Duration // target sum of kernel durations
	weights int64        // resident memory
	inputB  int64        // H2D bytes per request (0 for none)
	outputB int64        // D2H bytes per request (0 for none)
	classes []class
}

// blocksFor builds a launch configuration whose occupancy math yields the
// requested SM footprint and wave count on the V100/A100 SM limits used
// throughout (256 threads, 64 registers -> 4 blocks per SM).
func blocksFor(sms, waves int) kernels.LaunchConfig {
	if sms < 1 {
		sms = 1
	}
	if waves < 1 {
		waves = 1
	}
	return kernels.LaunchConfig{
		Blocks:          4 * sms * waves,
		ThreadsPerBlock: 256,
		RegsPerThread:   64,
	}
}

// build generates the model from a recipe, deterministically: the jitter
// stream is seeded from the recipe name, so repeated builds are identical.
func (r recipe) build() *Model {
	rng := sim.NewRand(seedFor(r.name + r.kind.String()))
	m := &Model{
		Name:           r.name,
		Kind:           r.kind,
		Batch:          r.batch,
		WeightsBytes:   r.weights,
		TargetDuration: r.total,
	}
	id := 0
	if r.inputB > 0 {
		// Inference ingest is a synchronous cudaMemcpy (it stalls kernel
		// dispatch, §6.2.1); training loaders prefetch asynchronously.
		m.Ops = append(m.Ops, kernels.Descriptor{
			ID: id, Name: "input_h2d", Op: kernels.OpMemcpyH2D, Bytes: r.inputB,
			Sync: r.kind == Inference,
		})
		id++
	}

	// Per class: choose a kernel count from the time share and mean
	// duration, draw jittered durations, then rescale the class to hit
	// its share of the total exactly.
	type gen struct {
		class class
		durs  []sim.Duration
	}
	gens := make([]gen, len(r.classes))
	for ci, c := range r.classes {
		budget := sim.Duration(float64(r.total) * c.share)
		n := int(float64(budget)/float64(c.meanDur) + 0.5)
		if n < 1 {
			n = 1
		}
		durs := make([]sim.Duration, n)
		var sum sim.Duration
		for i := range durs {
			// ±35% deterministic jitter around the class mean.
			lo := sim.Duration(float64(c.meanDur) * 0.65)
			hi := sim.Duration(float64(c.meanDur) * 1.35)
			durs[i] = rng.UniformDuration(lo, hi)
			sum += durs[i]
		}
		scale := float64(budget) / float64(sum)
		for i := range durs {
			durs[i] = sim.Duration(float64(durs[i]) * scale)
			if durs[i] < sim.Microsecond {
				durs[i] = sim.Microsecond
			}
		}
		gens[ci] = gen{class: c, durs: durs}
	}

	// Interleave classes with fractional striding so the sequence mixes
	// archetypes the way layer patterns do (conv, bn, relu, conv, ...).
	remaining := 0
	for _, g := range gens {
		remaining += len(g.durs)
	}
	idx := make([]int, len(gens))
	frac := make([]float64, len(gens))
	for remaining > 0 {
		best := -1
		bestLag := -1.0
		for ci := range gens {
			left := len(gens[ci].durs) - idx[ci]
			if left == 0 {
				continue
			}
			frac[ci] += float64(left)
			if frac[ci] > bestLag {
				bestLag = frac[ci]
				best = ci
			}
		}
		c := gens[best].class
		d := gens[best].durs[idx[best]]
		frac[best] = 0
		idx[best]++
		remaining--
		m.Ops = append(m.Ops, kernels.Descriptor{
			ID:          id,
			Name:        fmt.Sprintf("%s_%d", c.name, id),
			Op:          kernels.OpKernel,
			Launch:      blocksFor(c.sms, c.waves),
			Duration:    d,
			ComputeUtil: c.compute,
			MemBWUtil:   c.membw,
		})
		id++
	}

	if r.outputB > 0 {
		m.Ops = append(m.Ops, kernels.Descriptor{
			ID: id, Name: "output_d2h", Op: kernels.OpMemcpyD2H, Bytes: r.outputB,
		})
	}

	// Group kernels into weight layers for the swapping extension:
	// roughly a dozen operations per layer, clamped to a plausible range.
	m.Layers = len(m.Ops) / 12
	if m.Layers < 8 {
		m.Layers = 8
	}
	if m.Layers > 48 {
		m.Layers = 48
	}

	if r.kind == Training {
		// Mark where the backward pass begins: the forward pass is
		// roughly the first 38% of a training iteration's kernel time.
		var acc, total sim.Duration
		for i := range m.Ops {
			if m.Ops[i].Op == kernels.OpKernel {
				total += m.Ops[i].Duration
			}
		}
		for i := range m.Ops {
			if m.Ops[i].Op == kernels.OpKernel {
				acc += m.Ops[i].Duration
			}
			if float64(acc) >= 0.38*float64(total) {
				m.PhaseBoundary = i + 1
				break
			}
		}
	}
	return m
}

// seedFor hashes a label into a deterministic RNG seed.
func seedFor(label string) int64 {
	var h int64 = 1125899906842597
	for _, c := range label {
		h = h*31 + int64(c)
	}
	return h
}

// InputSync reports whether the model's input copy is synchronous
// (inference ingest uses cudaMemcpy, training prefetch uses
// cudaMemcpyAsync).
func (m *Model) InputSync() bool {
	for i := range m.Ops {
		if m.Ops[i].Op == kernels.OpMemcpyH2D {
			return m.Ops[i].Sync
		}
	}
	return false
}
