package workload

import (
	"math"
	"testing"

	"orion/internal/kernels"
	"orion/internal/sim"
)

func TestCatalogHasTenWorkloads(t *testing.T) {
	cat := Catalog()
	if len(cat) != 10 {
		t.Fatalf("catalog has %d workloads, want 10 (paper Table 1)", len(cat))
	}
	seen := map[string]bool{}
	for _, m := range cat {
		if seen[m.ID()] {
			t.Errorf("duplicate workload id %s", m.ID())
		}
		seen[m.ID()] = true
	}
}

func TestAllModelsValidate(t *testing.T) {
	for _, m := range Catalog() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.ID(), err)
		}
	}
}

func TestModelsAreDeterministic(t *testing.T) {
	a, b := ResNet50Inference(), ResNet50Inference()
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("op counts differ: %d vs %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs between builds: %+v vs %+v", i, a.Ops[i], b.Ops[i])
		}
	}
}

func TestKernelTimeMatchesTarget(t *testing.T) {
	for _, m := range Catalog() {
		total := m.TotalKernelTime()
		ratio := float64(total) / float64(m.TargetDuration)
		if ratio < 0.97 || ratio > 1.03 {
			t.Errorf("%s: kernel time %v vs target %v (ratio %.3f)", m.ID(), total, m.TargetDuration, ratio)
		}
	}
}

// Calibration against the paper's Table 1: the time-weighted average
// compute-throughput, memory-bandwidth, and SM-busy of each workload's
// kernel mix must sit near the measured V100 values.
func TestTable1Calibration(t *testing.T) {
	targets := map[string]struct{ sm, compute, membw float64 }{
		"resnet50-inf":      {0.24, 0.30, 0.22},
		"mobilenetv2-inf":   {0.06, 0.18, 0.21},
		"resnet101-inf":     {0.29, 0.24, 0.37},
		"bert-inf":          {0.95, 0.72, 0.28},
		"transformer-inf":   {0.61, 0.52, 0.29},
		"resnet50-train":    {0.81, 0.48, 0.45},
		"mobilenetv2-train": {0.71, 0.34, 0.49},
		"resnet101-train":   {0.85, 0.50, 0.43},
		"bert-train":        {0.61, 0.44, 0.21},
		"transformer-train": {0.495, 0.29, 0.30},
	}
	sm := kernels.SMLimits{MaxThreads: 2048, MaxBlocks: 32, Registers: 65536, SharedMem: 96 * 1024}
	for _, m := range Catalog() {
		want, ok := targets[m.ID()]
		if !ok {
			t.Fatalf("no Table 1 target for %s", m.ID())
		}
		var total, c, mb, smw float64
		for i := range m.Ops {
			op := &m.Ops[i]
			if op.Op != kernels.OpKernel {
				continue
			}
			d := float64(op.Duration)
			total += d
			c += op.ComputeUtil * d
			mb += op.MemBWUtil * d
			need, err := kernels.SMsNeeded(op.Launch, sm)
			if err != nil {
				t.Fatalf("%s %s: %v", m.ID(), op.Name, err)
			}
			if need > 80 {
				need = 80
			}
			smw += float64(need) / 80 * d
		}
		c /= total
		mb /= total
		smw /= total
		if math.Abs(c-want.compute) > 0.05 {
			t.Errorf("%s: compute %.3f, Table 1 says %.2f", m.ID(), c, want.compute)
		}
		if math.Abs(mb-want.membw) > 0.06 {
			t.Errorf("%s: membw %.3f, Table 1 says %.2f", m.ID(), mb, want.membw)
		}
		if math.Abs(smw-want.sm) > 0.09 {
			t.Errorf("%s: SM busy %.3f, Table 1 says %.2f", m.ID(), smw, want.sm)
		}
	}
}

// Memory capacity calibration against Table 1's memory-capacity column.
func TestMemoryFootprintCalibration(t *testing.T) {
	targets := map[string]float64{
		"resnet50-inf": 0.09, "mobilenetv2-inf": 0.07, "resnet101-inf": 0.09,
		"bert-inf": 0.14, "transformer-inf": 0.10,
		"resnet50-train": 0.32, "mobilenetv2-train": 0.43, "resnet101-train": 0.39,
		"bert-train": 0.38, "transformer-train": 0.53,
	}
	for _, m := range Catalog() {
		frac := float64(m.WeightsBytes) / float64(16<<30)
		if math.Abs(frac-targets[m.ID()]) > 0.02 {
			t.Errorf("%s: memory fraction %.3f, Table 1 says %.2f", m.ID(), frac, targets[m.ID()])
		}
	}
}

// Figure 4: kernel durations — inference kernels run 10s-100s of us,
// training kernels 100s-1000s of us.
func TestKernelDurationRanges(t *testing.T) {
	for _, m := range Catalog() {
		var lo, hi sim.Duration = 1 << 62, 0
		for i := range m.Ops {
			if m.Ops[i].Op != kernels.OpKernel {
				continue
			}
			d := m.Ops[i].Duration
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		if lo < sim.Micros(1) {
			t.Errorf("%s: kernel as short as %v", m.ID(), lo)
		}
		maxAllowed := sim.Millis(1)
		if m.Kind == Training {
			maxAllowed = sim.Millis(2)
		}
		if hi > maxAllowed {
			t.Errorf("%s: kernel as long as %v, exceeds Fig 4 range", m.ID(), hi)
		}
	}
}

// Figure 4: every workload mixes compute-bound and memory-bound kernels,
// and training workloads contain unknown-profile update kernels.
func TestKernelProfileMix(t *testing.T) {
	for _, m := range Catalog() {
		counts := map[kernels.Profile]int{}
		for i := range m.Ops {
			if m.Ops[i].Op == kernels.OpKernel {
				counts[m.Ops[i].Profile()]++
			}
		}
		if counts[kernels.ProfileCompute] == 0 {
			t.Errorf("%s: no compute-bound kernels", m.ID())
		}
		if counts[kernels.ProfileMemory] == 0 {
			t.Errorf("%s: no memory-bound kernels", m.ID())
		}
		if m.Kind == Training && counts[kernels.ProfileUnknown] == 0 {
			t.Errorf("%s: training workload without unknown-profile update kernels", m.ID())
		}
	}
}

func TestInferenceModelsHaveIOCopies(t *testing.T) {
	for _, m := range InferenceModels() {
		if m.Ops[0].Op != kernels.OpMemcpyH2D {
			t.Errorf("%s: first op is %v, want input H2D copy", m.ID(), m.Ops[0].Op)
		}
		last := m.Ops[len(m.Ops)-1]
		if last.Op != kernels.OpMemcpyD2H {
			t.Errorf("%s: last op is %v, want output D2H copy", m.ID(), last.Op)
		}
		if !m.InputSync() {
			t.Errorf("%s: inference ingest should be a synchronous copy", m.ID())
		}
	}
	for _, m := range TrainingModels() {
		if m.Ops[0].Op != kernels.OpMemcpyH2D {
			t.Errorf("%s: first op is %v, want input H2D copy", m.ID(), m.Ops[0].Op)
		}
		if m.InputSync() {
			t.Errorf("%s: training prefetch should be asynchronous", m.ID())
		}
	}
}

func TestKernelIDsAreSequentialAndUnique(t *testing.T) {
	for _, m := range Catalog() {
		for i := range m.Ops {
			if m.Ops[i].ID != i {
				t.Fatalf("%s: op %d has ID %d", m.ID(), i, m.Ops[i].ID)
			}
		}
	}
}

func TestByID(t *testing.T) {
	m, err := ByID("resnet50-train")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "resnet50" || m.Kind != Training {
		t.Fatalf("ByID returned %s", m.ID())
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestKernelCountsPlausible(t *testing.T) {
	// Per §3.1, real DNN requests launch tens to hundreds of kernels.
	for _, m := range Catalog() {
		n := m.KernelCount()
		if n < 50 || n > 1800 {
			t.Errorf("%s: %d kernels per request, implausible", m.ID(), n)
		}
	}
	// Deeper model has more kernels.
	if ResNet101Inference().KernelCount() <= ResNet50Inference().KernelCount() {
		t.Error("ResNet101 should launch more kernels than ResNet50")
	}
}

func TestTrainingSlowerThanInference(t *testing.T) {
	pairs := [][2]*Model{
		{ResNet50Inference(), ResNet50Training()},
		{MobileNetV2Inference(), MobileNetV2Training()},
		{ResNet101Inference(), ResNet101Training()},
		{BERTInference(), BERTTraining()},
		{TransformerInference(), TransformerTraining()},
	}
	for _, p := range pairs {
		if p[1].TotalKernelTime() <= p[0].TotalKernelTime() {
			t.Errorf("%s: training iteration not slower than inference request", p[0].Name)
		}
	}
}

func TestListsConsistent(t *testing.T) {
	if len(InferenceModels()) != 5 || len(TrainingModels()) != 5 {
		t.Fatal("want 5 inference and 5 training workloads")
	}
	if len(VisionInference()) != 3 {
		t.Fatal("want 3 vision inference workloads")
	}
	for _, m := range InferenceModels() {
		if m.Kind != Inference {
			t.Errorf("%s in InferenceModels", m.ID())
		}
	}
	for _, m := range TrainingModels() {
		if m.Kind != Training {
			t.Errorf("%s in TrainingModels", m.ID())
		}
	}
}

func TestKindString(t *testing.T) {
	if Inference.String() != "inf" || Training.String() != "train" {
		t.Fatal("Kind.String mismatch")
	}
}

func TestBlocksForClamps(t *testing.T) {
	c := blocksFor(0, 0)
	if c.Blocks != 4 {
		t.Fatalf("blocksFor(0,0).Blocks = %d, want 4", c.Blocks)
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	m := &Model{Name: "x"}
	if err := m.Validate(); err == nil {
		t.Fatal("empty model accepted")
	}
	m2 := &Model{Name: "x", Ops: ResNet50Inference().Ops}
	if err := m2.Validate(); err == nil {
		t.Fatal("model without memory footprint accepted")
	}
}
