package workload

import (
	"testing"

	"orion/internal/kernels"
	"orion/internal/sim"
)

func TestLLMInferenceValidates(t *testing.T) {
	m := LLMInference()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.ID() != "llm-inf" {
		t.Fatalf("ID = %s", m.ID())
	}
}

func TestLLMIsMemoryHeavy(t *testing.T) {
	m := LLMInference()
	// ~75% of a 16GB device: the large-weights regime of §3/§7.
	frac := float64(m.WeightsBytes) / float64(16<<30)
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("weights fraction %.2f, want ~0.75", frac)
	}
}

func TestLLMDecodePhaseIsMemoryBound(t *testing.T) {
	m := LLMInference()
	var total, mem sim.Duration
	for i := range m.Ops {
		op := &m.Ops[i]
		if op.Op != kernels.OpKernel {
			continue
		}
		total += op.Duration
		if op.Profile() == kernels.ProfileMemory {
			mem += op.Duration
		}
	}
	// The token-generation phase dominates and is memory-bound.
	if float64(mem)/float64(total) < 0.6 {
		t.Fatalf("memory-bound kernel time fraction %.2f, want > 0.6", float64(mem)/float64(total))
	}
}

func TestLLMComputeUnderutilized(t *testing.T) {
	m := LLMInference()
	var total, c float64
	for i := range m.Ops {
		op := &m.Ops[i]
		if op.Op != kernels.OpKernel {
			continue
		}
		d := float64(op.Duration)
		total += d
		c += op.ComputeUtil * d
	}
	// Average compute throughput well below 50%: the collocation
	// opportunity §7 identifies.
	if c/total > 0.40 {
		t.Fatalf("avg compute %.2f, want < 0.40 (decode underutilizes compute)", c/total)
	}
}

func TestLLMHasPrefillComputePhase(t *testing.T) {
	m := LLMInference()
	compute := 0
	for i := range m.Ops {
		if m.Ops[i].Op == kernels.OpKernel && m.Ops[i].Profile() == kernels.ProfileCompute {
			compute++
		}
	}
	if compute == 0 {
		t.Fatal("no compute-bound prefill kernels")
	}
}

func TestLLMDoesNotFitWithTrainingJobs(t *testing.T) {
	// The §7 observation: LLM weights leave no room for a training
	// partner on a 16GB device — collocation partners must be small.
	llm := LLMInference()
	train := ResNet50Training()
	if llm.WeightsBytes+train.WeightsBytes <= 16<<30 {
		t.Fatal("LLM + training unexpectedly fit; the memory-pressure scenario is gone")
	}
	inf := BERTInference()
	if llm.WeightsBytes+inf.WeightsBytes > 16<<30 {
		t.Fatal("LLM + BERT inference should fit")
	}
}
