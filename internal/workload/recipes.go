package workload

import (
	"fmt"
	"sort"

	"orion/internal/sim"
)

// The recipes below are calibrated against the paper's measurements:
//
//   - dedicated request latency / iteration time: Table 4 (training
//     iterations/sec) and the sustainable rates implied by Table 3;
//   - time-weighted average utilization: Table 1 (SM busy, compute
//     throughput, memory bandwidth, memory capacity on a V100-16GB);
//   - kernel count and duration ranges: §3.1/Figure 4 (inference kernels
//     run 10s-100s of µs, training kernels 100s-1000s of µs; vision models
//     mix compute-bound convolutions with memory-bound normalization and
//     elementwise kernels; NLP models are GEMM-dominated; optimizer-update
//     kernels are tiny with "unknown" roofline profiles).
//
// Class shares are chosen so that sum(share*compute) ≈ Table 1 compute
// throughput, sum(share*membw) ≈ memory bandwidth, and
// sum(share*sms)/80 ≈ SM-busy — see the calibration test.

const gb = int64(1) << 30

// memFrac converts a Table 1 memory-capacity fraction into bytes on the
// paper's 16 GB V100.
func memFrac(frac float64) int64 {
	return int64(frac * 16 * float64(gb))
}

// ResNet50Inference returns the ResNet50 inference workload (batch 4).
func ResNet50Inference() *Model {
	return recipe{
		name: "resnet50", kind: Inference, batch: 4,
		total:   sim.Millis(2.0),
		weights: memFrac(0.09),
		inputB:  4 * 3 * 224 * 224 * 4,
		outputB: 4 * 1000 * 4,
		classes: []class{
			{"conv2d", 0.42, 0.62, 0.18, 28, 1, sim.Micros(25)},
			{"bn2d", 0.22, 0.10, 0.62, 18, 1, sim.Micros(18)},
			{"elemwise", 0.36, 0.05, 0.08, 4, 1, sim.Micros(10)},
		},
	}.build()
}

// MobileNetV2Inference returns the MobileNetV2 inference workload (batch 4).
func MobileNetV2Inference() *Model {
	return recipe{
		name: "mobilenetv2", kind: Inference, batch: 4,
		total:   sim.Millis(1.2),
		weights: memFrac(0.07),
		inputB:  4 * 3 * 224 * 224 * 4,
		outputB: 4 * 1000 * 4,
		classes: []class{
			{"conv_pw", 0.22, 0.62, 0.20, 8, 1, sim.Micros(12)},
			{"conv_dw", 0.21, 0.10, 0.65, 5, 1, sim.Micros(9)},
			{"elemwise", 0.57, 0.04, 0.08, 2, 1, sim.Micros(6)},
		},
	}.build()
}

// ResNet101Inference returns the ResNet101 inference workload (batch 4).
func ResNet101Inference() *Model {
	return recipe{
		name: "resnet101", kind: Inference, batch: 4,
		total:   sim.Millis(3.5),
		weights: memFrac(0.09),
		inputB:  4 * 3 * 224 * 224 * 4,
		outputB: 4 * 1000 * 4,
		classes: []class{
			{"conv2d", 0.28, 0.62, 0.22, 30, 1, sim.Micros(28)},
			{"bn2d", 0.43, 0.12, 0.68, 22, 1, sim.Micros(18)},
			{"elemwise", 0.29, 0.05, 0.10, 5, 1, sim.Micros(10)},
		},
	}.build()
}

// BERTInference returns the BERT-large inference workload (batch 2).
func BERTInference() *Model {
	return recipe{
		name: "bert", kind: Inference, batch: 2,
		total:   sim.Millis(28.0),
		weights: memFrac(0.14),
		inputB:  2 * 384 * 4,
		outputB: 2 * 384 * 4,
		classes: []class{
			{"gemm", 0.78, 0.88, 0.26, 80, 3, sim.Micros(200)},
			{"softmax_ln", 0.08, 0.25, 0.68, 76, 1, sim.Micros(130)},
			{"elemwise", 0.14, 0.10, 0.20, 60, 1, sim.Micros(70)},
		},
	}.build()
}

// TransformerInference returns the Transformer-XL inference workload
// (batch 4).
func TransformerInference() *Model {
	return recipe{
		name: "transformer", kind: Inference, batch: 4,
		total:   sim.Millis(9.0),
		weights: memFrac(0.10),
		inputB:  4 * 512 * 4,
		outputB: 4 * 512 * 4,
		classes: []class{
			{"gemm", 0.60, 0.80, 0.25, 56, 1, sim.Micros(90)},
			{"softmax_ln", 0.21, 0.15, 0.65, 44, 1, sim.Micros(60)},
			{"elemwise", 0.19, 0.05, 0.15, 10, 1, sim.Micros(30)},
		},
	}.build()
}

// ResNet50Training returns the ResNet50 training workload (batch 32).
func ResNet50Training() *Model {
	return recipe{
		name: "resnet50", kind: Training, batch: 32,
		total:   sim.Millis(97.0), // 10.3 iterations/sec dedicated (Table 4)
		weights: memFrac(0.32),
		inputB:  32 * 3 * 224 * 224 * 4,
		classes: []class{
			{"conv_fwd_bwd", 0.56, 0.72, 0.40, 80, 6, sim.Micros(450)},
			{"bn_elemwise", 0.34, 0.12, 0.64, 56, 1, sim.Micros(90)},
			{"update", 0.10, 0.08, 0.28, 12, 1, sim.Micros(40)},
		},
	}.build()
}

// MobileNetV2Training returns the MobileNetV2 training workload (batch 64).
func MobileNetV2Training() *Model {
	return recipe{
		name: "mobilenetv2", kind: Training, batch: 64,
		total:   sim.Millis(80.0), // 12.5 iterations/sec dedicated
		weights: memFrac(0.43),
		inputB:  64 * 3 * 224 * 224 * 4,
		classes: []class{
			{"conv_fwd_bwd", 0.42, 0.62, 0.42, 80, 4, sim.Micros(300)},
			{"bn_elemwise", 0.46, 0.14, 0.66, 56, 1, sim.Micros(80)},
			{"update", 0.12, 0.06, 0.25, 10, 1, sim.Micros(35)},
		},
	}.build()
}

// ResNet101Training returns the ResNet101 training workload (batch 32).
func ResNet101Training() *Model {
	return recipe{
		name: "resnet101", kind: Training, batch: 32,
		total:   sim.Millis(159.0), // 6.3 iterations/sec dedicated
		weights: memFrac(0.39),
		inputB:  32 * 3 * 224 * 224 * 4,
		classes: []class{
			{"conv_fwd_bwd", 0.60, 0.72, 0.38, 80, 7, sim.Micros(500)},
			{"bn_elemwise", 0.31, 0.12, 0.62, 56, 1, sim.Micros(90)},
			{"update", 0.09, 0.08, 0.28, 14, 1, sim.Micros(45)},
		},
	}.build()
}

// BERTTraining returns the BERT-basic training workload (batch 8).
func BERTTraining() *Model {
	return recipe{
		name: "bert", kind: Training, batch: 8,
		total:   sim.Millis(204.0), // 4.91 iterations/sec dedicated
		weights: memFrac(0.38),
		inputB:  8 * 384 * 4,
		classes: []class{
			{"gemm_fwd_bwd", 0.60, 0.66, 0.20, 64, 1, sim.Micros(130)},
			{"softmax_ln", 0.06, 0.12, 0.62, 40, 1, sim.Micros(90)},
			{"update", 0.34, 0.08, 0.15, 20, 1, sim.Micros(150)},
		},
	}.build()
}

// TransformerTraining returns the Transformer training workload (batch 8).
func TransformerTraining() *Model {
	return recipe{
		name: "transformer", kind: Training, batch: 8,
		total:   sim.Millis(167.0), // 6 iterations/sec dedicated
		weights: memFrac(0.53),
		inputB:  8 * 512 * 4,
		classes: []class{
			{"gemm_fwd_bwd", 0.45, 0.60, 0.26, 52, 1, sim.Micros(130)},
			{"softmax_ln", 0.18, 0.12, 0.64, 36, 1, sim.Micros(90)},
			{"update", 0.37, 0.06, 0.18, 24, 1, sim.Micros(150)},
		},
	}.build()
}

// Catalog lists every workload variant the paper evaluates.
func Catalog() []*Model {
	return []*Model{
		ResNet50Inference(), MobileNetV2Inference(), ResNet101Inference(),
		BERTInference(), TransformerInference(),
		ResNet50Training(), MobileNetV2Training(), ResNet101Training(),
		BERTTraining(), TransformerTraining(),
	}
}

// VisionInference lists the three vision inference workloads used in the
// inf-inf experiments (Figures 11-12).
func VisionInference() []*Model {
	return []*Model{ResNet50Inference(), MobileNetV2Inference(), ResNet101Inference()}
}

// InferenceModels lists all five inference workloads.
func InferenceModels() []*Model {
	return []*Model{
		ResNet50Inference(), MobileNetV2Inference(), ResNet101Inference(),
		BERTInference(), TransformerInference(),
	}
}

// TrainingModels lists all five training workloads.
func TrainingModels() []*Model {
	return []*Model{
		ResNet50Training(), MobileNetV2Training(), ResNet101Training(),
		BERTTraining(), TransformerTraining(),
	}
}

// Extensions lists workloads beyond the paper's Table 1 set (the §7
// large-language-model scenario).
func Extensions() []*Model {
	return []*Model{LLMInference()}
}

// ByID returns the workload with the given "<name>-<kind>" identifier,
// searching the Table 1 catalog and the extension set.
func ByID(id string) (*Model, error) {
	all := append(Catalog(), Extensions()...)
	for _, m := range all {
		if m.ID() == id {
			return m, nil
		}
	}
	ids := make([]string, 0, len(all))
	for _, m := range all {
		ids = append(ids, m.ID())
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("workload: unknown id %q (have %v)", id, ids)
}
