package workload

import (
	"fmt"
	"math"

	"orion/internal/kernels"
	"orion/internal/sim"
)

// Batch-scaling exponents. Durations grow sublinearly with batch size
// (larger batches improve parallel efficiency until the device saturates);
// roughly half of a job's footprint is activations, which scale with the
// batch, while weights do not.
const (
	durationBatchExponent = 0.9
	activationShare       = 0.5
)

// WithBatch returns a copy of the model rescaled to a new batch size:
//
//   - kernel durations scale by (new/old)^0.9;
//   - grid sizes (and so SM footprints) scale linearly, re-quantized to
//     whole blocks;
//   - input/output transfer sizes scale linearly;
//   - resident memory scales on its activation share only.
//
// The result carries the same kernel IDs and layer structure, so offline
// profiles must be re-collected for the new batch (as the paper's
// profiling phase would).
func (m *Model) WithBatch(batch int) (*Model, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("workload: batch %d", batch)
	}
	if m.Batch <= 0 {
		return nil, fmt.Errorf("workload %s: model has no base batch", m.ID())
	}
	if batch == m.Batch {
		cp := *m
		cp.Ops = append([]kernels.Descriptor(nil), m.Ops...)
		return &cp, nil
	}
	ratio := float64(batch) / float64(m.Batch)
	durScale := math.Pow(ratio, durationBatchExponent)

	out := *m
	out.Batch = batch
	out.WeightsBytes = int64(float64(m.WeightsBytes) * ((1 - activationShare) + activationShare*ratio))
	out.TargetDuration = sim.Duration(float64(m.TargetDuration) * durScale)
	out.Ops = make([]kernels.Descriptor, len(m.Ops))
	for i, op := range m.Ops {
		switch op.Op {
		case kernels.OpKernel:
			op.Duration = sim.Duration(float64(op.Duration) * durScale)
			if op.Duration < sim.Microsecond {
				op.Duration = sim.Microsecond
			}
			blocks := int(math.Ceil(float64(op.Launch.Blocks) * ratio))
			if blocks < 1 {
				blocks = 1
			}
			op.Launch.Blocks = blocks
		case kernels.OpMemcpyH2D, kernels.OpMemcpyD2H, kernels.OpMemcpyD2D, kernels.OpMemset:
			b := int64(float64(op.Bytes) * ratio)
			if b < 1 {
				b = 1
			}
			op.Bytes = b
		}
		out.Ops[i] = op
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("workload: scaling %s to batch %d: %w", m.ID(), batch, err)
	}
	return &out, nil
}
