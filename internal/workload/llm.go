package workload

import "orion/internal/sim"

// LLMInference returns a large-language-model inference workload — the §7
// extension of the paper. One request is a generation: a compute-bound
// prefill phase (prompt processing, large GEMMs saturating the device)
// followed by a sequential, memory-bandwidth-bound token-generation phase
// (per-token GEMVs streaming the full weight matrix, underutilizing
// compute throughput and SMs — the property prior work [55, 60] observes
// and the paper proposes exploiting by collocating LLM inference with
// computationally intensive workloads).
//
// The model is sized like a ~6B-parameter fp16 model on a V100-16GB:
// weights plus KV cache occupy ~75% of device memory, leaving room only
// for small collocation partners — the limited-sharing regime §3 notes.
func LLMInference() *Model {
	return recipe{
		name: "llm", kind: Inference, batch: 1,
		// Prefill ~30ms + 8 tokens x ~14ms of bandwidth-bound decode.
		total:   sim.Millis(140.0),
		weights: memFrac(0.75),
		inputB:  2048 * 4, // prompt token ids
		outputB: 8 * 4,    // generated token ids
		classes: []class{
			// Prompt prefill: device-filling multi-wave GEMMs.
			{"prefill_gemm", 0.20, 0.85, 0.30, 80, 3, sim.Micros(350)},
			// Token generation: weight-streaming GEMVs, memory-bound,
			// leaving compute units and SMs idle.
			{"decode_gemv", 0.70, 0.12, 0.78, 44, 1, sim.Micros(110)},
			// Sampling, layernorm, KV-cache bookkeeping.
			{"decode_misc", 0.10, 0.06, 0.18, 8, 1, sim.Micros(30)},
		},
	}.build()
}
