package fleet

import "testing"

// The golden failure-storm suite: a 1024-device fleet places a
// 5000-job stream, then rides out 200 failure events (device wear,
// node and rack losses) with displacement, triaged re-placement,
// backoff and terminal failures. The end state must hash identically
// on every run — the chaos process, the health machine, and the
// re-placement loop contain no nondeterminism. The serving layer's
// fleet-chaos drill proves the same property across SIGKILL/recovery.
const (
	stormTopoSpec   = "zones=2,racks=4,nodes=16,gpus=8,mix=a100:1+v100:2+mig2g:1,seed=7,unhealthy=25"
	stormChaosSpec  = "mtbf=4000,mttr=12,suspect=1,probation=4,pnode=8,prack=2,deadline=40,seed=9"
	stormJobs       = 5000
	stormStreamSeed = 42
	stormDownEvents = 200

	// stormGoldenHash pins the end-state placement hash after the storm
	// (550 displaced, 534 replaced, 13 failed at 250 steps).
	stormGoldenHash = "9e61256d046ba9a0"
)

type stormResult struct {
	hash      string
	steps     int64
	displaced int
	replaced  int
	failed    int
	placed    int
}

func runGoldenStorm(t *testing.T, naive bool) stormResult {
	t.Helper()
	topo, err := ParseSpec(stormTopoSpec)
	if err != nil {
		t.Fatal(err)
	}
	f, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := SyntheticStream(stormJobs, stormStreamSeed)
	if err != nil {
		t.Fatal(err)
	}
	if naive {
		for _, j := range jobs {
			if _, err := f.PlaceNaive(j); err != nil {
				continue
			}
		}
	} else {
		if _, _, err := f.PlaceBatch(jobs); err != nil {
			t.Fatal(err)
		}
	}
	spec, err := ParseChaosSpec(stormChaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChaos(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	// The storm queue holds only displaced jobs: the 5000-job stream
	// oversubscribes the fleet by design, and re-retrying thousands of
	// never-placeable leftovers each step would drown the displacement
	// churn the suite pins down.
	s := NewStorm(f, c)
	s.Naive = naive
	steps := s.Run(stormDownEvents)
	return stormResult{
		hash:      f.HashString(),
		steps:     steps,
		displaced: s.Displaced,
		replaced:  s.Replaced,
		failed:    s.Failed,
		placed:    f.Snapshot().JobsPlaced,
	}
}

func TestGoldenFailureStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("storm suite is seconds of work; skipped in -short")
	}
	a := runGoldenStorm(t, false)
	t.Logf("storm: hash %s after %d steps; displaced %d, replaced %d, failed %d, placed %d",
		a.hash, a.steps, a.displaced, a.replaced, a.failed, a.placed)
	if a.displaced == 0 || a.replaced == 0 {
		t.Fatalf("storm produced no displacement churn: %+v", a)
	}
	if a.hash != stormGoldenHash {
		t.Fatalf("storm hash = %s, want golden %s (placement under failures drifted — "+
			"if intentional, update the golden constants)", a.hash, stormGoldenHash)
	}
	// A second fresh run must land on the identical end state.
	b := runGoldenStorm(t, false)
	if b != a {
		t.Fatalf("storm not deterministic across runs:\n a=%+v\n b=%+v", a, b)
	}
}

// TestStormQuietFleetKeepsGoldenHash pins that the failure-dynamics
// layer is inert until failures actually happen: placing the golden
// stream with the anti-affinity term compiled in (but no failures
// recorded) must reproduce PR 7's golden placement hash exactly.
func TestStormQuietFleetKeepsGoldenHash(t *testing.T) {
	topo, err := ParseSpec(goldenSpec)
	if err != nil {
		t.Fatal(err)
	}
	f, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := SyntheticStream(goldenJobs, goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.PlaceBatch(jobs); err != nil {
		t.Fatal(err)
	}
	if f.HashString() != goldenHash {
		t.Fatalf("quiet-fleet hash = %s, want %s", f.HashString(), goldenHash)
	}
}
